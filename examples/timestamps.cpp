// timestamps: measure latency over a cable with hardware timestamping —
// the equivalent of the paper's timestamps.lua (Section 9, used for the
// Table 3 accuracy evaluation).
//
// Usage: timestamps [cable_m] [fiber|copper] [samples]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "nic/chip.hpp"
#include "wire/link.hpp"

namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mw = moongen::wire;

int main(int argc, char** argv) {
  const double cable_m = argc > 1 ? std::atof(argv[1]) : 8.5;
  const bool fiber = argc <= 2 || std::strcmp(argv[2], "fiber") == 0;
  const auto samples = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 100'000ull;
  std::printf("timestamps: %.1f m %s loopback, %llu samples\n\n", cable_m,
              fiber ? "OM3 fiber (82599)" : "Cat 5e copper (X540)",
              static_cast<unsigned long long>(samples));

  ms::EventQueue events;
  const auto chip = fiber ? mn::intel_82599() : mn::intel_x540();
  mn::Port a(events, chip, 10'000, 1);
  mn::Port b(events, chip, 10'000, 2);
  b.ptp_clock() = a.ptp_clock();  // one oscillator per card
  mw::Link link(a, b, fiber ? mw::fiber_om3(cable_m) : mw::cat5e_10gbaset(cable_m), 3);

  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 3'300;
  cfg.sync_clocks_each_sample = false;
  cfg.hist_bin_ps = 100;
  mc::Timestamper ts(events, a, 0, b, mc::make_ptp_ethernet_frame(80), cfg);
  ts.start();
  events.run_until(static_cast<ms::SimTime>(samples) * 250'000);
  ts.stop();

  std::printf("samples: %llu (lost %llu)\n",
              static_cast<unsigned long long>(ts.samples()),
              static_cast<unsigned long long>(ts.lost()));
  std::printf("latency: mean %.1f ns, median %.1f ns, min %.1f, max %.1f\n",
              ts.latency_ns().mean(), static_cast<double>(ts.histogram().median()) / 1e3,
              ts.latency_ns().min(), ts.latency_ns().max());
  std::printf("\ndistribution (NIC timer granularity: %.1f ns):\n",
              static_cast<double>(chip.ptp_increment_ps) / 1e3);
  const auto& h = ts.histogram();
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    if (h.bin(i) == 0) continue;
    const double frac = static_cast<double>(h.bin(i)) / static_cast<double>(h.total());
    if (frac < 0.001) continue;
    std::printf("  %7.1f ns  %5.1f %%\n", static_cast<double>(h.bin_lower(i)) / 1e3,
                frac * 100.0);
  }
  return 0;
}
