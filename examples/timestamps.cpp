// timestamps: measure latency over a cable with hardware timestamping —
// the equivalent of the paper's timestamps.lua (Section 9, used for the
// Table 3 accuracy evaluation).
//
// Usage: timestamps [cable_m] [fiber|copper] [samples]
#include <cstdio>

#include "cli.hpp"
#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "nic/chip.hpp"
#include "testbed/scenario.hpp"
#include "wire/cable.hpp"

namespace mc = moongen::core;
namespace me = moongen::examples;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mtb = moongen::testbed;
namespace mw = moongen::wire;

namespace {

constexpr const char* kUsage = "usage: timestamps [cable_m] [fiber|copper] [samples] [--seed N]\n";

}  // namespace

int main(int argc, char** argv) {
  const auto cli = me::parse_cli(argc, argv, kUsage);
  if (!cli) return 2;
  const double cable_m = cli->number(0, 8.5);
  const bool fiber = cli->positional.size() <= 1 || cli->arg(1) == "fiber";
  const auto samples = static_cast<unsigned long long>(cli->number(2, 100'000));
  std::printf("timestamps: %.1f m %s loopback, %llu samples\n\n", cable_m,
              fiber ? "OM3 fiber (82599)" : "Cat 5e copper (X540)", samples);

  // The timestamper injects on port a and reads back on port b, and both
  // share one oscillator — they must live on one engine (couple).
  const auto chip = fiber ? mn::intel_82599() : mn::intel_x540();
  auto tb = mtb::Scenario()
                .seed(cli->seed)
                .telemetry(false)
                .device(0, chip).name("a").with_seed(1)
                .device(1, chip).name("b").with_seed(2)
                .link(0, 1).cable(fiber ? mw::fiber_om3(cable_m) : mw::cat5e_10gbaset(cable_m))
                .with_seed(3)
                .couple(0, 1)
                .build();
  auto& a = tb->port("a");
  auto& b = tb->port("b");
  b.ptp_clock() = a.ptp_clock();  // one oscillator per card

  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 3'300;
  cfg.sync_clocks_each_sample = false;
  cfg.hist_bin_ps = 100;
  mc::Timestamper ts(tb->engine(0), a, 0, b, mc::make_ptp_ethernet_frame(80), cfg);
  ts.start();
  tb->run_until(static_cast<ms::SimTime>(samples) * 250'000);
  ts.stop();

  std::printf("samples: %llu (lost %llu)\n",
              static_cast<unsigned long long>(ts.samples()),
              static_cast<unsigned long long>(ts.lost()));
  std::printf("latency: mean %.1f ns, median %.1f ns, min %.1f, max %.1f\n",
              ts.latency_ns().mean(), static_cast<double>(ts.histogram().median()) / 1e3,
              ts.latency_ns().min(), ts.latency_ns().max());
  std::printf("\ndistribution (NIC timer granularity: %.1f ns):\n",
              static_cast<double>(chip.ptp_increment_ps) / 1e3);
  const auto& h = ts.histogram();
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    if (h.bin(i) == 0) continue;
    const double frac = static_cast<double>(h.bin(i)) / static_cast<double>(h.total());
    if (frac < 0.001) continue;
    std::printf("  %7.1f ns  %5.1f %%\n", static_cast<double>(h.bin_lower(i)) / 1e3,
                frac * 100.0);
  }
  return 0;
}
