// l2-load-latency: load a device under test and measure its forwarding
// latency with hardware timestamping — the workhorse script of the paper
// (used for Figures 10/11 and most latency results).
//
// Runs in the virtual-time simulation: an X540 generator port sends CBR
// load through an Open vSwitch-like forwarder; a timestamping task samples
// packets of the stream (PTP type flip, Section 6.4) and reports latency
// percentiles from the hardware timestamps.
//
// With `poisson` as the third argument it becomes the paper's
// l2-poisson-load-latency.lua: the Poisson pattern requires the CRC-based
// software rate control (Section 8.3).
//
// With `--json FILE` the telemetry registry (port TX/RX counters, load
// generator valid/gap split, latency histogram) is sampled every 100 ms of
// virtual time and the snapshot series is written as JSON (schema in
// DESIGN.md, "Telemetry"); stdout is unchanged.
//
// With `--faults SPEC` a deterministic fault plane is installed on the
// testbed (frame loss/corruption/reordering, link flaps, DuT stalls, clock
// faults — see src/fault/fault.hpp for the spec mini-language); fault and
// recovery counters are printed and exported with the telemetry.
//
// With `--shards N` the two halves of the testbed (generator+sink vs. the
// DuT pair) run on parallel event engines bridged by the cables' latency
// (DESIGN.md Section 10); the output is byte-identical to --shards 1.
#include <cstdio>
#include <functional>
#include <memory>
#include <string_view>

#include "cli.hpp"
#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "nic/chip.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "testbed/scenario.hpp"

namespace mc = moongen::core;
namespace me = moongen::examples;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mt = moongen::telemetry;
namespace mtb = moongen::testbed;

namespace {

constexpr const char* kUsage =
    "usage: l2_load_latency [rate_mpps] [seconds] [cbr|poisson]\n"
    "                       [--json FILE] [--faults SPEC] [--seed N] [--shards N]\n"
    "                       [--stream FILE]\n";

}  // namespace

int main(int argc, char** argv) {
  const auto cli = me::parse_cli(argc, argv, kUsage);
  if (!cli) return 2;
  const double rate_mpps = cli->number(0, 1.0);
  const double seconds = cli->number(1, 1.0);
  const bool poisson = cli->arg(2) == "poisson";
  std::printf("l2-load-latency: %.2f Mpps %s through an OVS-like DuT, %.1f s\n\n", rate_mpps,
              poisson ? "Poisson" : "CBR", seconds);

  // Testbed: generator -> DuT -> sink (all X540 at 10 GbE). The timestamper
  // spans gen_tx and sink, so those two share a shard (couple); the
  // forwarder couples the DuT pair. With --shards 2 each pair gets its own
  // engine, bridged at the cables.
  // The DuT ports see frames mid-journey, so they count stamp conservation
  // but do not fold into the end-to-end RTT histograms (rtt_record(false));
  // only the sink's RX is an end-to-end measurement point.
  auto scenario = mtb::Scenario()
                      .seed(cli->seed)
                      .shards(cli->shards)
                      .faults(cli->faults)
                      .device(0, mn::intel_x540()).name("gen_tx").with_seed(1)
                      .device(1, mn::intel_x540()).name("dut_in").with_seed(2).rtt_record(false)
                      .device(2, mn::intel_x540()).name("dut_out").with_seed(3).rtt_record(false)
                      .device(3, mn::intel_x540()).name("sink").with_seed(4).rx_store(false)
                      .link(0, 1).with_seed(5)
                      .link(2, 3).with_seed(6)
                      .forwarder(1, 2)
                      .couple(0, 3);
  if (cli->has_stream()) scenario.stream_telemetry(cli->stream_path, 100'000'000);
  auto tb = scenario.build();
  mt::MetricRegistry& registry = tb->registry();
  registry.shard(0).gauge("load.offered_mpps").set(rate_mpps);

  // Background load: UDP packets carrying a PTP payload with a type the
  // timestamp units ignore.
  mc::UdpTemplateOptions bg;
  bg.frame_size = 96;
  bg.ptp_payload = true;
  bg.ptp_message_type = 5;
  auto& gen_tx = tb->port("gen_tx");
  auto& queue = gen_tx.tx_queue(0);
  std::unique_ptr<mc::SimLoadGen> gen;
  if (poisson) {
    gen = mc::SimLoadGen::crc_paced(queue, mc::make_udp_frame(bg),
                                    std::make_unique<mc::PoissonPattern>(rate_mpps, 77),
                                    10'000);
  } else {
    queue.set_rate_mpps(rate_mpps, 100);
    gen = mc::SimLoadGen::hardware_paced(queue, mc::make_udp_frame(bg));
  }
  gen->bind_telemetry(registry, "loadgen");

  // Timestamping task: flip every sampled packet's PTP type into the
  // stampable range. It touches gen_tx and sink directly, so it lives on
  // their (shared) engine.
  mc::UdpTemplateOptions stamped = bg;
  stamped.ptp_message_type = 0;
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 100 * ms::kPsPerUs;
  cfg.hist_bin_ps = 50'000;
  mc::Timestamper ts(tb->engine(0), gen_tx, *gen, mc::make_udp_frame(stamped),
                     tb->port("sink"), cfg);
  ts.bind_telemetry(registry, "timestamper");
  ts.start();

  // Sample the registry every 100 ms of *virtual* time on the global
  // timeline: the tick runs while every shard is quiesced at the sample
  // instant, so the snapshot is a consistent cut across shards.
  mt::SamplerConfig sampler_cfg;
  sampler_cfg.period_ns = 100'000'000;
  mt::Sampler sampler(registry, [&tb] { return tb->now() / 1'000; }, sampler_cfg);
  const auto end_ps = static_cast<ms::SimTime>(seconds * 1e12);
  std::function<void()> sample_tick = [&] {
    tb->publish_engine_telemetry();  // engine deltas are flushed, not per-event
    sampler.poll();
    if (tb->now() < end_ps) tb->schedule_global(tb->now() + 100 * ms::kPsPerMs, sample_tick);
  };
  if (cli->has_json()) tb->schedule_global(0, sample_tick);

  tb->run_until(end_ps);
  ts.stop();

  auto& forwarder = tb->forwarder();
  auto& dut_in = tb->port("dut_in");
  const auto& h = ts.histogram();
  std::printf("load:     %.2f Mpps offered, %.2f Mpps forwarded\n", rate_mpps,
              static_cast<double>(forwarder.forwarded()) / seconds / 1e6);
  std::printf("samples:  %llu timestamped packets (%llu lost)\n",
              static_cast<unsigned long long>(ts.samples()),
              static_cast<unsigned long long>(ts.lost()));
  std::printf("latency:  min %.2f us / p25 %.2f / median %.2f / p75 %.2f / p99 %.2f / max %.2f\n",
              ts.latency_ns().min() / 1e3, static_cast<double>(h.percentile(25)) / 1e6,
              static_cast<double>(h.percentile(50)) / 1e6,
              static_cast<double>(h.percentile(75)) / 1e6,
              static_cast<double>(h.percentile(99)) / 1e6, ts.latency_ns().max() / 1e3);
  // Always-on in-path RTT plane: every frame's end-to-end latency, not just
  // the timestamper's samples. Deterministic across shard counts and
  // unchanged by --stream (virtual-time values, commutative merges).
  {
    auto& plane = tb->rtt_plane();
    const auto cum = plane.cumulative();
    std::printf("rtt:      %llu frames in-path, p50 %.2f us / p99 %.2f / p99.9 %.2f "
                "(%llu windows, %llu dropped)\n",
                static_cast<unsigned long long>(plane.recorded()),
                static_cast<double>(cum.percentile(50.0)) / 1e3,
                static_cast<double>(cum.percentile(99.0)) / 1e3,
                static_cast<double>(cum.percentile(99.9)) / 1e3,
                static_cast<unsigned long long>(plane.windows_closed()),
                static_cast<unsigned long long>(plane.dropped()));
  }
  std::printf("DuT:      %llu interrupts, %llu polls, RX drops %llu\n",
              static_cast<unsigned long long>(forwarder.interrupts()),
              static_cast<unsigned long long>(forwarder.polls()),
              static_cast<unsigned long long>(dut_in.stats().rx_ring_drops));
  if (tb->has_faults()) {
    auto& l1 = tb->link(0, 1);
    std::printf("faults:   %llu injected (l1: %llu lost / %llu corrupt / %llu flaps, "
                "dut stalls %llu, crc errors %llu)\n",
                static_cast<unsigned long long>(tb->fault_fires()),
                static_cast<unsigned long long>(l1.fault_drops() + l1.flap_drops()),
                static_cast<unsigned long long>(l1.corrupted()),
                static_cast<unsigned long long>(l1.flaps()),
                static_cast<unsigned long long>(forwarder.stalls()),
                static_cast<unsigned long long>(dut_in.stats().crc_errors));
    // Flaps pause the link's *transmitting* port, so resumes land on
    // gen_tx/dut_out (l1/l2 senders); sum every port to catch both.
    std::printf("recover:  %llu link resumes, %llu timestamper resyncs\n",
                static_cast<unsigned long long>(
                    gen_tx.stats().link_up_events + dut_in.stats().link_up_events +
                    tb->port("dut_out").stats().link_up_events +
                    tb->port("sink").stats().link_up_events),
                static_cast<unsigned long long>(ts.resyncs()));
  }

  if (cli->has_json()) {
    tb->publish_engine_telemetry();  // engine.events_executed / wheel / heap / rate
    registry.shard(0).gauge("load.forwarded_mpps")
        .set(static_cast<double>(forwarder.forwarded()) / seconds / 1e6);
    registry.shard(0).gauge("dut.interrupts").set(static_cast<double>(forwarder.interrupts()));
    registry.shard(0).gauge("dut.polls").set(static_cast<double>(forwarder.polls()));
    sampler.sample_now();  // final snapshot incl. the end-of-run gauges
    if (mt::dump_json_series_to_file(cli->json_path, sampler.series()))
      std::fprintf(stderr, "telemetry series written to %s\n", cli->json_path.c_str());
    else
      std::fprintf(stderr, "failed to write telemetry series to %s\n", cli->json_path.c_str());
  }
  if (cli->has_stream() && tb->stream() != nullptr) {
    std::fprintf(stderr, "telemetry streamed to %s (%llu ticks, %llu rtt windows)\n",
                 cli->stream_path.c_str(),
                 static_cast<unsigned long long>(tb->stream()->ticks()),
                 static_cast<unsigned long long>(tb->stream()->windows_streamed()));
  }
  return 0;
}
