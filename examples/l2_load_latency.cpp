// l2-load-latency: load a device under test and measure its forwarding
// latency with hardware timestamping — the workhorse script of the paper
// (used for Figures 10/11 and most latency results).
//
// Runs in the virtual-time simulation: an X540 generator port sends CBR
// load through an Open vSwitch-like forwarder; a timestamping task samples
// packets of the stream (PTP type flip, Section 6.4) and reports latency
// percentiles from the hardware timestamps.
//
// With `poisson` as the third argument it becomes the paper's
// l2-poisson-load-latency.lua: the Poisson pattern requires the CRC-based
// software rate control (Section 8.3).
//
// With `--json FILE` the telemetry registry (port TX/RX counters, load
// generator valid/gap split, latency histogram) is sampled every 100 ms of
// virtual time and the snapshot series is written as JSON (schema in
// DESIGN.md, "Telemetry"); stdout is unchanged.
//
// With `--faults SPEC` a deterministic fault plane is installed on the
// testbed (frame loss/corruption/reordering, link flaps, DuT stalls, clock
// faults — see src/fault/fault.hpp for the spec mini-language); fault and
// recovery counters are printed and exported with the telemetry.
//
// Usage: l2_load_latency [rate_mpps] [seconds] [cbr|poisson] [--json FILE]
//                        [--faults SPEC]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "dut/forwarder.hpp"
#include "fault/fault.hpp"
#include "nic/chip.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "wire/link.hpp"

namespace mc = moongen::core;
namespace md = moongen::dut;
namespace mf = moongen::fault;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mt = moongen::telemetry;
namespace mw = moongen::wire;

int main(int argc, char** argv) {
  std::string json_path;
  std::string fault_spec_text;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      fault_spec_text = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  mf::FaultSpec fault_spec;
  if (!fault_spec_text.empty()) {
    try {
      fault_spec = mf::FaultSpec::parse(fault_spec_text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --faults spec: %s\n", e.what());
      return 2;
    }
  }
  const double rate_mpps = positional.size() > 0 ? std::atof(positional[0]) : 1.0;
  const double seconds = positional.size() > 1 ? std::atof(positional[1]) : 1.0;
  const bool poisson = positional.size() > 2 && std::string_view(positional[2]) == "poisson";
  std::printf("l2-load-latency: %.2f Mpps %s through an OVS-like DuT, %.1f s\n\n", rate_mpps,
              poisson ? "Poisson" : "CBR", seconds);

  // Testbed: generator -> DuT -> sink (all X540 at 10 GbE).
  ms::EventQueue events;
  mn::Port gen_tx(events, mn::intel_x540(), 10'000, 1);
  mn::Port dut_in(events, mn::intel_x540(), 10'000, 2);
  mn::Port dut_out(events, mn::intel_x540(), 10'000, 3);
  mn::Port sink(events, mn::intel_x540(), 10'000, 4);
  mw::Link l1(gen_tx, dut_in, mw::cat5e_10gbaset(2.0), 5);
  mw::Link l2(dut_out, sink, mw::cat5e_10gbaset(2.0), 6);
  md::Forwarder forwarder(events, dut_in, 0, dut_out, 0);
  sink.rx_queue(0).set_store(false);

  // Fault plane: one seeded plane per run; every site draws its own RNG
  // stream, so the fault sequence is reproducible for a fixed spec.
  std::unique_ptr<mf::FaultPlane> faults;
  if (!fault_spec.empty()) {
    faults = std::make_unique<mf::FaultPlane>(fault_spec, &events);
    l1.install_faults(*faults, "wire.l1");
    l2.install_faults(*faults, "wire.l2");
    dut_in.install_faults(*faults, "nic.dut_in");
    sink.install_faults(*faults, "nic.sink");
    forwarder.install_faults(*faults, "dut.fwd");
    faults->arm_clock_faults(gen_tx.ptp_clock(), "clock.gen_tx");
    faults->arm_clock_faults(sink.ptp_clock(), "clock.sink");
  }

  mt::MetricRegistry registry;
  if (faults) faults->bind_telemetry(registry);
  events.bind_telemetry(registry, "engine");
  gen_tx.bind_telemetry(registry, "port.gen_tx");
  dut_in.bind_telemetry(registry, "port.dut_in");
  dut_out.bind_telemetry(registry, "port.dut_out");
  sink.bind_telemetry(registry, "port.sink");
  registry.gauge("load.offered_mpps").set(rate_mpps);

  // Background load: UDP packets carrying a PTP payload with a type the
  // timestamp units ignore.
  mc::UdpTemplateOptions bg;
  bg.frame_size = 96;
  bg.ptp_payload = true;
  bg.ptp_message_type = 5;
  auto& queue = gen_tx.tx_queue(0);
  std::unique_ptr<mc::SimLoadGen> gen;
  if (poisson) {
    gen = mc::SimLoadGen::crc_paced(queue, mc::make_udp_frame(bg),
                                    std::make_unique<mc::PoissonPattern>(rate_mpps, 77),
                                    10'000);
  } else {
    queue.set_rate_mpps(rate_mpps, 100);
    gen = mc::SimLoadGen::hardware_paced(queue, mc::make_udp_frame(bg));
  }
  gen->bind_telemetry(registry, "loadgen");

  // Timestamping task: flip every sampled packet's PTP type into the
  // stampable range.
  mc::UdpTemplateOptions stamped = bg;
  stamped.ptp_message_type = 0;
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 100 * ms::kPsPerUs;
  cfg.hist_bin_ps = 50'000;
  mc::Timestamper ts(events, gen_tx, *gen, mc::make_udp_frame(stamped), sink, cfg);
  ts.bind_telemetry(registry, "timestamper");
  ts.start();

  // Sample the registry every 100 ms of *virtual* time: the Sampler's time
  // source reads the event queue clock (ps -> ns).
  mt::SamplerConfig sampler_cfg;
  sampler_cfg.period_ns = 100'000'000;
  mt::Sampler sampler(registry, [&events] { return events.now() / 1'000; }, sampler_cfg);
  const auto end_ps = static_cast<ms::SimTime>(seconds * 1e12);
  std::function<void()> sample_tick = [&] {
    events.publish_telemetry();  // engine deltas are flushed, not per-event
    sampler.poll();
    if (events.now() < end_ps) events.schedule_in(100 * ms::kPsPerMs, sample_tick);
  };
  if (!json_path.empty()) sample_tick();

  events.run_until(end_ps);
  ts.stop();

  const auto& h = ts.histogram();
  std::printf("load:     %.2f Mpps offered, %.2f Mpps forwarded\n", rate_mpps,
              static_cast<double>(forwarder.forwarded()) / seconds / 1e6);
  std::printf("samples:  %llu timestamped packets (%llu lost)\n",
              static_cast<unsigned long long>(ts.samples()),
              static_cast<unsigned long long>(ts.lost()));
  std::printf("latency:  min %.2f us / p25 %.2f / median %.2f / p75 %.2f / p99 %.2f / max %.2f\n",
              ts.latency_ns().min() / 1e3, static_cast<double>(h.percentile(25)) / 1e6,
              static_cast<double>(h.percentile(50)) / 1e6,
              static_cast<double>(h.percentile(75)) / 1e6,
              static_cast<double>(h.percentile(99)) / 1e6, ts.latency_ns().max() / 1e3);
  std::printf("DuT:      %llu interrupts, %llu polls, RX drops %llu\n",
              static_cast<unsigned long long>(forwarder.interrupts()),
              static_cast<unsigned long long>(forwarder.polls()),
              static_cast<unsigned long long>(dut_in.stats().rx_ring_drops));
  if (faults) {
    std::printf("faults:   %llu injected (l1: %llu lost / %llu corrupt / %llu flaps, "
                "dut stalls %llu, crc errors %llu)\n",
                static_cast<unsigned long long>(faults->total_fires()),
                static_cast<unsigned long long>(l1.fault_drops() + l1.flap_drops()),
                static_cast<unsigned long long>(l1.corrupted()),
                static_cast<unsigned long long>(l1.flaps()),
                static_cast<unsigned long long>(forwarder.stalls()),
                static_cast<unsigned long long>(dut_in.stats().crc_errors));
    // Flaps pause the link's *transmitting* port, so resumes land on
    // gen_tx/dut_out (l1/l2 senders); sum every port to catch both.
    std::printf("recover:  %llu link resumes, %llu timestamper resyncs\n",
                static_cast<unsigned long long>(
                    gen_tx.stats().link_up_events + dut_in.stats().link_up_events +
                    dut_out.stats().link_up_events + sink.stats().link_up_events),
                static_cast<unsigned long long>(ts.resyncs()));
  }

  if (!json_path.empty()) {
    events.publish_telemetry();  // engine.events_executed / wheel / heap / rate
    registry.gauge("load.forwarded_mpps")
        .set(static_cast<double>(forwarder.forwarded()) / seconds / 1e6);
    registry.gauge("dut.interrupts").set(static_cast<double>(forwarder.interrupts()));
    registry.gauge("dut.polls").set(static_cast<double>(forwarder.polls()));
    sampler.sample_now();  // final snapshot incl. the end-of-run gauges
    if (mt::dump_json_series_to_file(json_path, sampler.series()))
      std::fprintf(stderr, "telemetry series written to %s\n", json_path.c_str());
    else
      std::fprintf(stderr, "failed to write telemetry series to %s\n", json_path.c_str());
  }
  return 0;
}
