-- quality-of-service-test: the running example of the paper (Listings 1-3).
--
-- Generates two UDP flows (background and prioritized foreground traffic,
-- distinguished by UDP destination port) at different rates and counts the
-- received traffic per flow. Usage:
--   moongen quality-of-service-test.lua [txPort] [rxPort] [fgRate] [bgRate]
--
-- The code matches the paper's listings; the only additions are the
-- explicit tDev:connectTo(rDev) (the virtual testbed has no physical
-- cables) and a bounded runtime.

local PKT_SIZE = 124

function master(txPort, rxPort, fgRate, bgRate)
	txPort = txPort or 0
	rxPort = rxPort or 1
	fgRate = fgRate or 100
	bgRate = bgRate or 800
	local tDev = device.config(txPort, 1, 2)
	local rDev = device.config(rxPort)
	device.waitForLinks()
	tDev:connectTo(rDev)
	tDev:getTxQueue(0):setRate(bgRate)
	tDev:getTxQueue(1):setRate(fgRate)
	mg.launchLua("loadSlave", tDev:getTxQueue(0), 42)
	mg.launchLua("loadSlave", tDev:getTxQueue(1), 43)
	mg.launchLua("counterSlave", rDev:getRxQueue(0))
	mg.stopAfter(3)
	mg.waitForSlaves()
end

function loadSlave(queue, port)
	local mem = memory.createMemPool(function(buf)
		buf:getUdpPacket():fill{
			pktLength = PKT_SIZE,
			ethSrc = queue, -- get MAC from device
			ethDst = "10:11:12:13:14:15",
			ipDst = "192.168.1.1",
			udpSrc = 1234,
			udpDst = port,
		}
	end)
	local txCtr = stats:newManualTxCounter(port, "plain")
	local baseIP = parseIPAddress("10.0.0.1")
	local bufs = mem:bufArray()
	while dpdk.running() do
		bufs:alloc(PKT_SIZE)
		for _, buf in ipairs(bufs) do
			local pkt = buf:getUdpPacket()
			pkt.ip.src:set(baseIP + math.random(255) - 1)
		end
		bufs:offloadUdpChecksums()
		local sent = queue:send(bufs)
		txCtr:updateWithSize(sent, PKT_SIZE)
	end
	txCtr:finalize()
end

function counterSlave(queue)
	local bufs = memory.bufArray()
	local counters = {}
	while dpdk.running() do
		local rx = queue:recv(bufs)
		for i = 1, rx do
			local buf = bufs[i]
			local port = buf:getUdpPacket().udp:getDstPort()
			local ctr = counters[port]
			if not ctr then
				ctr = stats:newPktRxCounter(port, "plain")
				counters[port] = ctr
			end
			ctr:countPacket(buf)
		end
		bufs:freeAll()
	end
	for _, ctr in pairs(counters) do
		ctr:finalize()
	end
end
