-- quickstart.lua: minimal load generator userscript.
--
--   moongen quickstart.lua [seconds] [rateMbit]

local PKT_SIZE = 60

function master(seconds, rate)
	seconds = seconds or 2
	local tDev = device.config(0, 1, 1)
	local rDev = device.config(1)
	device.waitForLinks()
	tDev:connectTo(rDev)
	if rate then
		tDev:getTxQueue(0):setRate(rate)
	end
	mg.launchLua("loadSlave", tDev:getTxQueue(0))
	mg.launchLua("counterSlave", rDev:getRxQueue(0))
	mg.stopAfter(seconds)
	mg.waitForSlaves()
	print("done")
end

function loadSlave(queue)
	local mem = memory.createMemPool(function(buf)
		buf:getUdpPacket():fill{
			pktLength = PKT_SIZE,
			ethDst = "10:11:12:13:14:15",
			ipDst = "192.168.1.1",
			udpSrc = 1234,
			udpDst = 319,
		}
	end)
	local txCtr = stats:newManualTxCounter("tx", "plain")
	local baseIP = parseIPAddress("10.0.0.1")
	local bufs = mem:bufArray()
	while dpdk.running() do
		bufs:alloc(PKT_SIZE)
		for _, buf in ipairs(bufs) do
			buf:getUdpPacket().ip.src:set(baseIP + math.random(255) - 1)
		end
		bufs:offloadUdpChecksums()
		txCtr:updateWithSize(queue:send(bufs), PKT_SIZE)
	end
	txCtr:finalize()
end

function counterSlave(queue)
	local bufs = memory.bufArray()
	local rxCtr = stats:newPktRxCounter("rx", "plain")
	while dpdk.running() do
		local rx = queue:recv(bufs)
		for i = 1, rx do
			rxCtr:countPacket(bufs[i])
		end
		bufs:freeAll()
	end
	rxCtr:finalize()
end
