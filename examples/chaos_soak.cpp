// chaos-soak: seeded multi-phase fault-churn soak with the runtime health
// plane armed — the repo's standing answer to "does a long adversarial run
// still conserve every frame, buffer and request?"
//
// One testbed carries both traffic planes:
//   * an L2 chain (gen_tx -> DuT forwarder -> sink) under CBR load, and
//   * two open-loop RPC client/server pairs on their own duplex wires,
// plus a mempool-churn task that allocates and frees packet buffers in a
// steady rhythm. A built-in fault schedule ramps through phases over the
// run: light frame loss; heavy loss + corruption + link flaps + allocation
// failures; server stalls + injected RX overflow; then a recovery phase
// with every rule off. All of it is seeded and windowed in *virtual* time,
// so a given (--seed, --shards, flags) tuple replays byte-identically.
//
// The health plane runs throughout: invariant checkers (engine audit, link
// frame conservation, port accounting, RPC request conservation, mempool
// conservation) every millisecond at quiesced window boundaries, the
// flight recorder tracing every shard, a wall-clock watchdog over the
// lookahead barrier, and a degradation governor that sheds open-loop load
// under sustained allocation/overflow pressure and restores it with
// hysteresis once the pressure clears.
//
// Exit codes: 0 clean; 2 invariant violation (flight-recorder JSON dumped
// to --fr-dump or stderr); 4 watchdog trip (ditto). CI runs this across
// seeds and shard counts and additionally diffs `--no-chaos` stdout against
// `--no-chaos --no-health` — checkers are observation-only, so those two
// runs must be byte-identical.
//
// Flags (besides the shared example flags):
//   --no-health     run without the health plane (byte-identity baseline)
//   --no-chaos      drop the built-in fault schedule (still honors --faults)
//   --inject-leak   deliberately leak one mempool buffer mid-run: the
//                   conservation checker must catch it within one window
//                   (negative test for the detection machinery itself)
//   --fr-dump FILE  write the flight-recorder dump here instead of stderr
#include <array>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "core/rate_control.hpp"
#include "health/monitor.hpp"
#include "membuf/mempool.hpp"
#include "nic/chip.hpp"
#include "rpc/open_loop.hpp"
#include "rpc/server_model.hpp"
#include "testbed/scenario.hpp"

namespace mc = moongen::core;
namespace me = moongen::examples;
namespace mf = moongen::fault;
namespace mh = moongen::health;
namespace mm = moongen::membuf;
namespace mn = moongen::nic;
namespace mr = moongen::rpc;
namespace ms = moongen::sim;
namespace mtb = moongen::testbed;

namespace {

constexpr const char* kUsage =
    "usage: chaos_soak [seconds] [l2_mpps] [--seed N] [--shards N] [--faults SPEC]\n"
    "                  [--no-health] [--no-chaos] [--inject-leak] [--fr-dump FILE]\n";

/// Steady allocate/hold/free rhythm against a private mempool, with its
/// alloc-failure fault site armed. The held() count is the component's own
/// books — exactly what the mempool conservation checker reconciles against
/// the pool's free list. leak_one() allocates a buffer and drops the
/// pointer: the books no longer balance, and the checker must say so.
class PoolChurn {
 public:
  PoolChurn(ms::EventQueue& events, std::size_t capacity)
      : events_(events), pool_(capacity) {}

  [[nodiscard]] mm::Mempool& pool() { return pool_; }
  [[nodiscard]] std::size_t held() const { return held_.size(); }
  [[nodiscard]] std::uint64_t leaked() const { return leaked_; }

  void start(ms::SimTime end_ps) {
    end_ps_ = end_ps;
    events_.schedule_at(events_.now() + kGapPs, [this] { tick(); });
  }

  void leak_one() {
    if (pool_.alloc(64) != nullptr) ++leaked_;
  }

 private:
  static constexpr ms::SimTime kGapPs = 2 * ms::kPsPerUs;

  void tick() {
    while (held_.size() > 16) {
      pool_.free(held_.front());
      held_.pop_front();
    }
    std::array<mm::PktBuf*, 8> batch{};
    const std::size_t got = pool_.alloc_batch({batch.data(), batch.size()}, 64);
    for (std::size_t i = 0; i < got; ++i) held_.push_back(batch[i]);
    if (events_.now() + kGapPs < end_ps_) events_.schedule_in(kGapPs, [this] { tick(); });
  }

  ms::EventQueue& events_;
  mm::Mempool pool_;
  std::deque<mm::PktBuf*> held_;
  std::uint64_t leaked_ = 0;
  ms::SimTime end_ps_ = 0;
};

/// The built-in multi-phase schedule: every window is a fraction of the run
/// so the phases scale with [seconds]. Seeded from the scenario seed —
/// byte-identical replays per (seed, shards).
mf::FaultSpec phased_schedule(std::uint64_t seed, ms::SimTime end_ps) {
  const auto at = [end_ps](double f) {
    return static_cast<ms::SimTime>(f * static_cast<double>(end_ps));
  };
  const auto rule = [](mf::FaultKind kind, const char* site, double p, std::uint32_t burst,
                       ms::SimTime from, ms::SimTime to, double param = 0.0) {
    mf::FaultRule r;
    r.kind = kind;
    r.site = site;
    r.probability = p;
    r.burst = burst;
    r.window_start_ps = from;
    r.window_end_ps = to;
    r.param = param;
    return r;
  };
  mf::FaultSpec spec;
  spec.seed = seed;
  // Phase 1 — light frame loss everywhere.
  spec.rules.push_back(rule(mf::FaultKind::kFrameLoss, "wire", 5e-4, 1, at(0.05), at(0.25)));
  // Phase 2 — heavy loss, corruption, a flapping first hop, alloc failures.
  spec.rules.push_back(rule(mf::FaultKind::kFrameLoss, "wire", 2e-3, 2, at(0.25), at(0.50)));
  spec.rules.push_back(
      rule(mf::FaultKind::kFrameCorrupt, "wire.l1", 5e-4, 1, at(0.25), at(0.50)));
  spec.rules.push_back(
      rule(mf::FaultKind::kLinkFlap, "wire.l1", 2e-6, 1, at(0.25), at(0.50), 2e8));
  spec.rules.push_back(
      rule(mf::FaultKind::kAllocFail, "pool.churn", 0.3, 8, at(0.25), at(0.50)));
  // Phase 3 — server stalls and injected RX overflow at the L2 sink.
  spec.rules.push_back(
      rule(mf::FaultKind::kStall, "rpc", 5e-3, 1, at(0.50), at(0.70), 2e8));
  spec.rules.push_back(
      rule(mf::FaultKind::kRxOverflow, "nic.sink", 2e-3, 16, at(0.50), at(0.70)));
  spec.rules.push_back(rule(mf::FaultKind::kFrameLoss, "wire", 2e-4, 1, at(0.50), at(0.70)));
  // Phase 4 — recovery: no rules; governors must return to steady state.
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  // Pre-filter this example's own flags; everything else goes to the shared
  // parser (unknown flags would otherwise land in positional and be
  // silently misread as [seconds]).
  bool health_enabled = true;
  bool chaos_enabled = true;
  bool inject_leak = false;
  std::string fr_dump_path;
  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--no-health") {
      health_enabled = false;
    } else if (a == "--no-chaos") {
      chaos_enabled = false;
    } else if (a == "--inject-leak") {
      inject_leak = true;
    } else if (a == "--fr-dump" && i + 1 < argc) {
      fr_dump_path = argv[++i];
    } else {
      filtered.push_back(argv[i]);
    }
  }
  const auto cli = me::parse_cli(static_cast<int>(filtered.size()), filtered.data(), kUsage);
  if (!cli) return 1;
  const double seconds = cli->number(0, 0.08);
  const double l2_mpps = cli->number(1, 2.0);
  const auto end_ps = static_cast<ms::SimTime>(seconds * 1e12);
  const ms::SimTime drain_ps = end_ps + 20 * ms::kPsPerMs;

  mf::FaultSpec spec = cli->faults;
  if (chaos_enabled && !cli->has_faults()) spec = phased_schedule(cli->seed, end_ps);

  std::printf("chaos-soak: %.0f ms, %.2f Mpps L2 + 2x open-loop RPC, %zu fault rules\n\n",
              seconds * 1e3, l2_mpps, spec.rules.size());

  auto tb = mtb::Scenario()
                .seed(cli->seed)
                .shards(cli->shards)
                .faults(spec)
                .device(0, mn::intel_x540()).name("gen_tx").with_seed(1)
                .device(1, mn::intel_x540()).name("dut_in").with_seed(2)
                .device(2, mn::intel_x540()).name("dut_out").with_seed(3)
                .device(3, mn::intel_x540()).name("sink").with_seed(4).rx_store(false)
                .device(4, mn::intel_x540()).name("rpc_c0").with_seed(5).rx_store(false)
                .device(5, mn::intel_x540()).name("rpc_s0").with_seed(6).rx_store(false)
                .device(6, mn::intel_x540()).name("rpc_c1").with_seed(7).rx_store(false)
                .device(7, mn::intel_x540()).name("rpc_s1").with_seed(8).rx_store(false)
                .link(0, 1).with_seed(11)
                .link(2, 3).with_seed(12)
                .link(4, 5).with_seed(13).duplex()
                .link(6, 7).with_seed(14).duplex()
                .forwarder(1, 2)
                .couple(0, 3)
                .build();

  // --- L2 plane: CBR load through the forwarder ----------------------------
  mc::UdpTemplateOptions bg;
  bg.frame_size = 96;
  auto& l2_queue = tb->port("gen_tx").tx_queue(0);
  l2_queue.set_rate_mpps(l2_mpps, 100);
  auto l2_gen = mc::SimLoadGen::hardware_paced(l2_queue, mc::make_udp_frame(bg));

  // --- RPC plane: two independent open-loop pairs --------------------------
  std::vector<std::unique_ptr<mr::ServerModel>> servers;
  std::vector<std::unique_ptr<mr::LatencyRecorder>> recorders;
  std::vector<std::unique_ptr<mr::OpenLoopGenerator>> gens;
  for (int i = 0; i < 2; ++i) {
    const int client_dev = 4 + 2 * i;
    const int server_dev = 5 + 2 * i;
    mr::ServerConfig sc;
    sc.workers = 1;
    sc.service = mr::ServerConfig::Service::kExponential;
    sc.service_mean_ps = 4.0 * static_cast<double>(ms::kPsPerUs);
    sc.seed = 7 + static_cast<std::uint64_t>(i);
    servers.push_back(std::make_unique<mr::ServerModel>(tb->port(server_dev), sc));
    if (tb->has_faults())
      servers.back()->install_faults(*tb->fault_plane(tb->shard_of(server_dev)),
                                     "rpc.s" + std::to_string(i));
    recorders.push_back(std::make_unique<mr::LatencyRecorder>());
    mr::WorkloadConfig wc;
    wc.offered_rps = 100'000.0;
    wc.seed = 42 + static_cast<std::uint64_t>(i);
    wc.timeout_ps = 5 * ms::kPsPerMs;
    wc.seq_base = 1 + (static_cast<std::uint64_t>(i) << 32);
    gens.push_back(std::make_unique<mr::OpenLoopGenerator>(tb->port(client_dev), *recorders.back(),
                                                           wc));
    gens.back()->start(0, end_ps);
  }

  // --- mempool churn --------------------------------------------------------
  PoolChurn churn(tb->engine(0), 256);
  if (tb->has_faults())
    churn.pool().install_faults(*tb->fault_plane(tb->shard_of(0)), "pool.churn");
  churn.start(end_ps);
  if (inject_leak)
    tb->schedule_global(end_ps / 3, [&churn] { churn.leak_one(); });

  // --- health plane ---------------------------------------------------------
  std::unique_ptr<mh::HealthMonitor> mon;
  mh::DegradationGovernor* governor = nullptr;
  if (health_enabled) {
    mh::MonitorConfig hc;
    hc.window_ps = 1 * ms::kPsPerMs;
    hc.enable_watchdog = true;
    hc.watchdog.poll_ms = 100;
    hc.watchdog.budget_ms = 5000;
    mon = std::make_unique<mh::HealthMonitor>(*tb, hc);
    for (std::size_t i = 0; i < gens.size(); ++i)
      mon->checkers().add("rpc.client" + std::to_string(i), mh::make_rpc_checker(*gens[i]));
    mon->checkers().add("mempool.churn", mh::make_mempool_checker(
                                             churn.pool(), [&churn] { return churn.held(); }));
    // Shed open-loop load under sustained allocation/overflow pressure;
    // restore with hysteresis once the fault phases pass.
    mh::GovernorConfig gc;
    gc.pressure_threshold = 20;
    gc.enter_windows = 3;
    gc.exit_windows = 5;
    gc.degraded_keep = 0.6;
    governor = &mon->add_governor(
        "overload", gc,
        [&] { return churn.pool().exhausted_events() + tb->port("sink").stats().rx_ring_drops; },
        [&gens](bool, double keep) {
          for (auto& g : gens) g->set_keep_fraction(keep);
        });
    // A watchdog trip means the barrier is wedged: dump what the recorder
    // has (lock-free path only) and hard-exit — nothing else will.
    mon->watchdog()->set_on_trip([&](const mh::Watchdog::StallReport& report) {
      std::ostringstream os;
      os << "watchdog: no shard progress for " << report.stalled_ms << " ms";
      if (!fr_dump_path.empty()) {
        std::ofstream f(fr_dump_path);
        mon->dump(f, os.str(), /*quiesced=*/false);
      } else {
        mon->dump(std::cerr, os.str(), /*quiesced=*/false);
      }
      std::_Exit(4);
    });
    mon->start(drain_ps);
  }

  tb->run_until(drain_ps);

  // --- traffic report (stdout: byte-identical per seed/shards/flags) -------
  const auto& sink = tb->port("sink").stats();
  std::printf("l2:       %llu forwarded, %llu received at sink, %llu sink ring drops\n",
              static_cast<unsigned long long>(tb->forwarder().forwarded()),
              static_cast<unsigned long long>(sink.rx_packets),
              static_cast<unsigned long long>(sink.rx_ring_drops));
  for (std::size_t i = 0; i < gens.size(); ++i) {
    const auto& g = *gens[i];
    std::printf("rpc%zu:     issued %llu matched %llu timed_out %llu drops %llu shed %llu\n", i,
                static_cast<unsigned long long>(g.issued()),
                static_cast<unsigned long long>(g.matched()),
                static_cast<unsigned long long>(g.timed_out()),
                static_cast<unsigned long long>(g.send_drops()),
                static_cast<unsigned long long>(g.shed_departures()));
  }
  std::printf("pool:     %zu held, %llu exhausted events, low watermark %zu\n", churn.held(),
              static_cast<unsigned long long>(churn.pool().exhausted_events()),
              churn.pool().low_watermark());
  std::printf("faults:   %llu fires total\n",
              static_cast<unsigned long long>(tb->fault_fires()));

  if (mon == nullptr) return 0;

  // Final quiesced checker pass, then the health summary (stderr: the
  // byte-identity diff covers stdout only).
  mon->check_now();
  const auto& violations = mon->violations();
  std::fprintf(stderr, "health:   %llu ticks, %llu checks, %zu violations, %llu watchdog trips\n",
               static_cast<unsigned long long>(mon->ticks()),
               static_cast<unsigned long long>(mon->checkers().checks_run()),
               violations.size(), static_cast<unsigned long long>(mon->watchdog_trips()));
  std::fprintf(stderr, "degraded: %llu enters, %llu recovers, active %d\n",
               static_cast<unsigned long long>(governor->enters()),
               static_cast<unsigned long long>(governor->recovers()),
               governor->active() ? 1 : 0);
  if (violations.empty()) return 0;

  std::fprintf(stderr, "INVARIANT VIOLATIONS:\n");
  for (const auto& v : violations)
    std::fprintf(stderr, "  [%s] at %llu ps: %s\n", v.checker.c_str(),
                 static_cast<unsigned long long>(v.when_ps), v.detail.c_str());
  const std::string reason =
      "invariant violation: " + violations.front().checker + ": " + violations.front().detail;
  if (!fr_dump_path.empty()) {
    std::ofstream f(fr_dump_path);
    mon->dump(f, reason);
    std::fprintf(stderr, "flight recorder written to %s\n", fr_dump_path.c_str());
  } else {
    mon->dump(std::cerr, reason);
  }
  return 2;
}
