// inter-arrival-times: measure a generator's timing precision with an
// Intel 82580, which can timestamp every received packet in hardware
// (paper Sections 6 and 7.3).
//
// Generates CBR traffic at GbE with a selectable rate-control mechanism and
// prints the inter-arrival histogram — the measurement behind Table 4 and
// Figure 8.
//
// Usage: inter_arrival_times [kpps] [mechanism: hw|crc|pktgen|zsend]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>

#include "baseline/sw_paced.hpp"
#include "core/rate_control.hpp"
#include "nic/chip.hpp"
#include "wire/link.hpp"
#include "wire/recorder.hpp"

namespace mb = moongen::baseline;
namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mw = moongen::wire;

int main(int argc, char** argv) {
  const double kpps = argc > 1 ? std::atof(argv[1]) : 500.0;
  const char* mechanism = argc > 2 ? argv[2] : "hw";
  const double mpps = kpps / 1e3;
  std::printf("inter-arrival-times: %.0f kpps via '%s' rate control, GbE, 82580 capture\n\n",
              kpps, mechanism);

  ms::EventQueue events;
  mn::Port tx(events, mn::intel_x540(), 1'000, 7);
  mn::Port rx(events, mn::intel_82580(), 1'000, 8);
  mw::Link link(tx, rx, mw::cat5e_gbe(2.0), 9);
  mw::InterArrivalRecorder recorder(rx, 0);

  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  const auto frame = mc::make_udp_frame(opts);

  std::unique_ptr<mc::SimLoadGen> gen;
  std::unique_ptr<mb::PktgenLikePacer> pktgen;
  std::unique_ptr<mb::ZsendLikePacer> zsend;
  if (std::strcmp(mechanism, "hw") == 0) {
    tx.tx_queue(0).set_rate_mpps(mpps, 64);
    gen = mc::SimLoadGen::hardware_paced(tx.tx_queue(0), frame);
  } else if (std::strcmp(mechanism, "crc") == 0) {
    gen = mc::SimLoadGen::crc_paced(tx.tx_queue(0), frame,
                                    std::make_unique<mc::CbrPattern>(mpps), 1'000);
  } else if (std::strcmp(mechanism, "pktgen") == 0) {
    pktgen = std::make_unique<mb::PktgenLikePacer>(events, tx.tx_queue(0), frame,
                                                   mb::PktgenLikePacer::Config{.mpps = mpps});
    pktgen->start();
  } else if (std::strcmp(mechanism, "zsend") == 0) {
    zsend = std::make_unique<mb::ZsendLikePacer>(events, tx.tx_queue(0), frame,
                                                 mb::ZsendLikePacer::Config{.mpps = mpps});
    zsend->start();
  } else {
    std::fprintf(stderr, "unknown mechanism '%s' (hw|crc|pktgen|zsend)\n", mechanism);
    return 1;
  }

  events.run_until(ms::kPsPerSec);  // one second

  const auto target = static_cast<ms::SimTime>(1e6 / mpps);
  std::printf("%llu packets captured\n",
              static_cast<unsigned long long>(recorder.samples() + 1));
  std::printf("micro-bursts: %.2f %%\n", recorder.micro_burst_fraction() * 100.0);
  for (ms::SimTime w : {64'000u, 128'000u, 256'000u, 512'000u}) {
    std::printf("within +-%3llu ns of target: %.1f %%\n",
                static_cast<unsigned long long>(w / 1000),
                recorder.fraction_within(target, w) * 100.0);
  }
  std::printf("\nhistogram (64 ns bins, >0.5%% only):\n");
  recorder.histogram().print(std::cout, 0.005);
  return 0;
}
