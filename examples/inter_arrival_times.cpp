// inter-arrival-times: measure a generator's timing precision with an
// Intel 82580, which can timestamp every received packet in hardware
// (paper Sections 6 and 7.3).
//
// Generates CBR traffic at GbE with a selectable rate-control mechanism and
// prints the inter-arrival histogram — the measurement behind Table 4 and
// Figure 8.
//
// With `--json FILE` the final measurement (sample count, micro-burst
// fraction, the within-window fractions) is exported as a one-snapshot
// telemetry series; stdout is unchanged.
//
// Usage: inter_arrival_times [kpps] [mechanism: hw|crc|pktgen|zsend]
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "baseline/sw_paced.hpp"
#include "cli.hpp"
#include "core/rate_control.hpp"
#include "nic/chip.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"
#include "testbed/scenario.hpp"
#include "wire/recorder.hpp"

namespace mb = moongen::baseline;
namespace mc = moongen::core;
namespace me = moongen::examples;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mt = moongen::telemetry;
namespace mtb = moongen::testbed;
namespace mw = moongen::wire;

namespace {

constexpr const char* kUsage =
    "usage: inter_arrival_times [kpps] [mechanism: hw|crc|pktgen|zsend]\n"
    "                           [--json FILE] [--seed N]\n";

}  // namespace

int main(int argc, char** argv) {
  const auto cli = me::parse_cli(argc, argv, kUsage);
  if (!cli) return 2;
  const double kpps = cli->number(0, 500.0);
  const std::string mechanism = cli->arg(1, "hw");
  const double mpps = kpps / 1e3;
  std::printf("inter-arrival-times: %.0f kpps via '%s' rate control, GbE, 82580 capture\n\n",
              kpps, mechanism.c_str());

  // GbE frame times exceed the short cable's latency, so the two ports
  // cannot run on separate shards — couple() keeps them on one engine.
  auto tb = mtb::Scenario()
                .seed(cli->seed)
                .faults(cli->faults)
                .telemetry(false)
                .device(0, mn::intel_x540()).name("tx").link_mbit(1'000).with_seed(7)
                .device(1, mn::intel_82580()).name("rx").link_mbit(1'000).with_seed(8)
                .link(0, 1).cable(mw::cat5e_gbe(2.0)).with_seed(9)
                .couple(0, 1)
                .build();
  auto& tx = tb->port("tx");
  mw::InterArrivalRecorder recorder(tb->port("rx"), 0);

  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  const auto frame = mc::make_udp_frame(opts);

  std::unique_ptr<mc::SimLoadGen> gen;
  std::unique_ptr<mb::PktgenLikePacer> pktgen;
  std::unique_ptr<mb::ZsendLikePacer> zsend;
  if (mechanism == "hw") {
    tx.tx_queue(0).set_rate_mpps(mpps, 64);
    gen = mc::SimLoadGen::hardware_paced(tx.tx_queue(0), frame);
  } else if (mechanism == "crc") {
    gen = mc::SimLoadGen::crc_paced(tx.tx_queue(0), frame,
                                    std::make_unique<mc::CbrPattern>(mpps), 1'000);
  } else if (mechanism == "pktgen") {
    pktgen = std::make_unique<mb::PktgenLikePacer>(tb->engine(0), tx.tx_queue(0), frame,
                                                   mb::PktgenLikePacer::Config{.mpps = mpps});
    pktgen->start();
  } else if (mechanism == "zsend") {
    zsend = std::make_unique<mb::ZsendLikePacer>(tb->engine(0), tx.tx_queue(0), frame,
                                                 mb::ZsendLikePacer::Config{.mpps = mpps});
    zsend->start();
  } else {
    std::fprintf(stderr, "unknown mechanism '%s' (hw|crc|pktgen|zsend)\n", mechanism.c_str());
    return 1;
  }

  tb->run_until(ms::kPsPerSec);  // one second

  const auto target = static_cast<ms::SimTime>(1e6 / mpps);
  std::printf("%llu packets captured\n",
              static_cast<unsigned long long>(recorder.samples() + 1));
  std::printf("micro-bursts: %.2f %%\n", recorder.micro_burst_fraction() * 100.0);
  for (ms::SimTime w : {64'000u, 128'000u, 256'000u, 512'000u}) {
    std::printf("within +-%3llu ns of target: %.1f %%\n",
                static_cast<unsigned long long>(w / 1000),
                recorder.fraction_within(target, w) * 100.0);
  }
  std::printf("\nhistogram (64 ns bins, >0.5%% only):\n");
  recorder.histogram().print(std::cout, 0.005);

  if (cli->has_json()) {
    mt::MetricRegistry registry;
    registry.shard(0).gauge("interarrival.target_gap_ps").set(static_cast<double>(target));
    registry.shard(0).gauge("interarrival.samples").set(static_cast<double>(recorder.samples() + 1));
    registry.shard(0).gauge("interarrival.micro_burst_fraction").set(recorder.micro_burst_fraction());
    for (ms::SimTime w : {64'000u, 128'000u, 256'000u, 512'000u}) {
      registry.shard(0).gauge("interarrival.within_" + std::to_string(w / 1000) + "ns")
          .set(recorder.fraction_within(target, w));
    }
    const std::vector<mt::Snapshot> series{registry.snapshot(ms::kPsPerSec / 1'000)};
    if (mt::dump_json_series_to_file(cli->json_path, series))
      std::fprintf(stderr, "telemetry written to %s\n", cli->json_path.c_str());
    else
      std::fprintf(stderr, "failed to write telemetry to %s\n", cli->json_path.c_str());
  }
  return 0;
}
