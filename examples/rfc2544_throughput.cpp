// rfc2544-throughput: binary search for the loss-free forwarding rate of a
// device under test — the classic benchmark hardware packet generators are
// bought for (RFC 2544 [3], discussed in Section 2 of the paper).
//
// For each frame size, the search offers CBR load for a trial period and
// halves the interval on loss; latency of the final passing rate is
// sampled with hardware timestamps. This demonstrates that the commodity
// generator covers the headline use case of IXIA/Spirent appliances.
//
// Usage: rfc2544_throughput [trial_seconds]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "dut/forwarder.hpp"
#include "nic/chip.hpp"
#include "nic/throughput_model.hpp"
#include "wire/link.hpp"

namespace mc = moongen::core;
namespace md = moongen::dut;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mw = moongen::wire;

namespace {

struct TrialResult {
  bool loss_free;
  double forwarded_mpps;
  double median_latency_us;
};

TrialResult run_trial(std::size_t frame_size, double mpps, double seconds) {
  ms::EventQueue events;
  mn::Port gen_tx(events, mn::intel_x540(), 10'000, 11);
  mn::Port dut_in(events, mn::intel_x540(), 10'000, 12);
  mn::Port dut_out(events, mn::intel_x540(), 10'000, 13);
  mn::Port sink(events, mn::intel_x540(), 10'000, 14);
  mw::Link l1(gen_tx, dut_in, mw::cat5e_10gbaset(2.0), 15);
  mw::Link l2(dut_out, sink, mw::cat5e_10gbaset(2.0), 16);
  md::Forwarder forwarder(events, dut_in, 0, dut_out, 0);
  sink.rx_queue(0).set_store(false);
  std::uint64_t sink_count = 0;
  sink.rx_queue(0).set_callback([&](const mn::RxQueueModel::Entry&) { ++sink_count; });

  mc::UdpTemplateOptions bg;
  bg.frame_size = frame_size - 4;  // buffer length without FCS
  bg.ptp_payload = true;
  bg.ptp_message_type = 5;
  auto& queue = gen_tx.tx_queue(0);
  queue.set_rate_mpps(mpps, frame_size);
  auto gen = mc::SimLoadGen::hardware_paced(queue, mc::make_udp_frame(bg));

  // Timestampable variant of the stream packet. UDP PTP packets below 80 B
  // are refused by the timestamp units (Section 6.4), so small frames use
  // PTP-over-Ethernet probes of the same size instead.
  mn::Frame stamped_frame;
  if (frame_size >= 84) {
    mc::UdpTemplateOptions stamped = bg;
    stamped.ptp_message_type = 0;
    stamped_frame = mc::make_udp_frame(stamped);
  } else {
    stamped_frame = mc::make_ptp_ethernet_frame(frame_size - 4, 0);
  }
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 200 * ms::kPsPerUs;
  cfg.hist_bin_ps = 50'000;
  mc::Timestamper ts(events, gen_tx, *gen, stamped_frame, sink, cfg);
  ts.start();

  events.run_until(static_cast<ms::SimTime>(seconds * 1e12));
  ts.stop();

  TrialResult r;
  // RFC 2544 throughput criterion: zero loss. In this testbed the only
  // loss point is the DuT's RX ring overflowing; packets still in flight in
  // the pipeline at the end of the trial are not losses.
  (void)sink_count;
  r.loss_free = dut_in.stats().rx_ring_drops == 0;
  r.forwarded_mpps = static_cast<double>(forwarder.forwarded()) / seconds / 1e6;
  r.median_latency_us = static_cast<double>(ts.histogram().median()) / 1e6;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // Short trials under-detect loss (the DuT's 4096-slot ring absorbs the
  // excess); 0.5 s is enough for the overload backlog to hit the ring.
  const double trial_s = argc > 1 ? std::atof(argv[1]) : 0.5;
  std::printf("RFC 2544-style throughput search (loss-free rate, OVS-like DuT)\n");
  std::printf("trial duration %.2f s, binary search to 1%% resolution\n\n", trial_s);
  std::printf("  %-10s %16s %16s %18s\n", "frame [B]", "line rate [Mpps]",
              "loss-free [Mpps]", "median lat. [us]");

  for (std::size_t frame_size : {64u, 128u, 256u, 512u, 1024u, 1518u}) {
    const double line = mn::line_rate_pps(10'000, frame_size) / 1e6;
    double lo = 0.0, hi = line;
    TrialResult best{};
    // DuT capacity is ~1.94 Mpps: start the search from the line rate.
    for (int iter = 0; iter < 8 && (hi - lo) / hi > 0.01; ++iter) {
      const double mid = (lo + hi) / 2.0;
      const auto r = run_trial(frame_size, mid, trial_s);
      if (r.loss_free) {
        lo = mid;
        best = r;
      } else {
        hi = mid;
      }
    }
    std::printf("  %-10zu %16.2f %16.2f %18.2f\n", frame_size, line, lo,
                best.median_latency_us);
  }
  std::printf("\n(the DuT forwards ~1.94 Mpps regardless of frame size: small frames are\n"
              " CPU-bound; large frames approach their line rate)\n");
  return 0;
}
