// rfc2544-throughput: binary search for the loss-free forwarding rate of a
// device under test — the classic benchmark hardware packet generators are
// bought for (RFC 2544 [3], discussed in Section 2 of the paper).
//
// For each frame size, the search offers CBR load for a trial period and
// halves the interval on loss; latency of the final passing rate is
// sampled with hardware timestamps. This demonstrates that the commodity
// generator covers the headline use case of IXIA/Spirent appliances.
//
// With `--faults SPEC` a deterministic fault plane (src/fault) is installed
// on every trial testbed, so the binary search runs against real loss,
// corruption, flapping links and a stalling DuT instead of a perfect lab.
// The RFC 2544 criterion is unchanged — a trial passes only if the DuT
// dropped nothing — so wire faults upstream of the DuT shrink the delivered
// load while DuT-side faults (stalls, rx_overflow) shrink the loss-free rate.
//
// Usage: rfc2544_throughput [trial_seconds] [--faults SPEC]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>

#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "dut/forwarder.hpp"
#include "fault/fault.hpp"
#include "nic/chip.hpp"
#include "nic/throughput_model.hpp"
#include "wire/link.hpp"

namespace mc = moongen::core;
namespace md = moongen::dut;
namespace mf = moongen::fault;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mw = moongen::wire;

namespace {

struct TrialResult {
  bool loss_free;
  double forwarded_mpps;
  double median_latency_us;
  std::uint64_t faults_fired = 0;
};

TrialResult run_trial(std::size_t frame_size, double mpps, double seconds,
                      const mf::FaultSpec* fault_spec) {
  ms::EventQueue events;
  mn::Port gen_tx(events, mn::intel_x540(), 10'000, 11);
  mn::Port dut_in(events, mn::intel_x540(), 10'000, 12);
  mn::Port dut_out(events, mn::intel_x540(), 10'000, 13);
  mn::Port sink(events, mn::intel_x540(), 10'000, 14);
  mw::Link l1(gen_tx, dut_in, mw::cat5e_10gbaset(2.0), 15);
  mw::Link l2(dut_out, sink, mw::cat5e_10gbaset(2.0), 16);
  md::Forwarder forwarder(events, dut_in, 0, dut_out, 0);
  sink.rx_queue(0).set_store(false);

  // Per-trial fault plane: every trial sees the same seeded fault sequence,
  // so the binary search stays deterministic and comparable across rates.
  std::unique_ptr<mf::FaultPlane> faults;
  if (fault_spec != nullptr && !fault_spec->empty()) {
    faults = std::make_unique<mf::FaultPlane>(*fault_spec, &events);
    l1.install_faults(*faults, "wire.l1");
    l2.install_faults(*faults, "wire.l2");
    dut_in.install_faults(*faults, "nic.dut_in");
    forwarder.install_faults(*faults, "dut.fwd");
    faults->arm_clock_faults(gen_tx.ptp_clock(), "clock.gen_tx");
    faults->arm_clock_faults(sink.ptp_clock(), "clock.sink");
  }
  std::uint64_t sink_count = 0;
  sink.rx_queue(0).set_callback([&](const mn::RxQueueModel::Entry&) { ++sink_count; });

  mc::UdpTemplateOptions bg;
  bg.frame_size = frame_size - 4;  // buffer length without FCS
  bg.ptp_payload = true;
  bg.ptp_message_type = 5;
  auto& queue = gen_tx.tx_queue(0);
  queue.set_rate_mpps(mpps, frame_size);
  auto gen = mc::SimLoadGen::hardware_paced(queue, mc::make_udp_frame(bg));

  // Timestampable variant of the stream packet. UDP PTP packets below 80 B
  // are refused by the timestamp units (Section 6.4), so small frames use
  // PTP-over-Ethernet probes of the same size instead.
  mn::Frame stamped_frame;
  if (frame_size >= 84) {
    mc::UdpTemplateOptions stamped = bg;
    stamped.ptp_message_type = 0;
    stamped_frame = mc::make_udp_frame(stamped);
  } else {
    stamped_frame = mc::make_ptp_ethernet_frame(frame_size - 4, 0);
  }
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 200 * ms::kPsPerUs;
  cfg.hist_bin_ps = 50'000;
  mc::Timestamper ts(events, gen_tx, *gen, stamped_frame, sink, cfg);
  ts.start();

  events.run_until(static_cast<ms::SimTime>(seconds * 1e12));
  ts.stop();

  TrialResult r;
  // RFC 2544 throughput criterion: zero loss. In this testbed the only
  // loss point is the DuT's RX ring overflowing; packets still in flight in
  // the pipeline at the end of the trial are not losses.
  (void)sink_count;
  r.loss_free = dut_in.stats().rx_ring_drops == 0;
  r.forwarded_mpps = static_cast<double>(forwarder.forwarded()) / seconds / 1e6;
  r.median_latency_us = static_cast<double>(ts.histogram().median()) / 1e6;
  r.faults_fired = faults ? faults->total_fires() : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string fault_spec_text;
  double trial_s = 0.5;
  // Short trials under-detect loss (the DuT's 4096-slot ring absorbs the
  // excess); 0.5 s is enough for the overload backlog to hit the ring.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      fault_spec_text = argv[++i];
    } else {
      trial_s = std::atof(argv[i]);
    }
  }
  mf::FaultSpec fault_spec;
  if (!fault_spec_text.empty()) {
    try {
      fault_spec = mf::FaultSpec::parse(fault_spec_text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --faults spec: %s\n", e.what());
      return 2;
    }
  }
  std::printf("RFC 2544-style throughput search (loss-free rate, OVS-like DuT)\n");
  std::printf("trial duration %.2f s, binary search to 1%% resolution\n", trial_s);
  if (!fault_spec.empty())
    std::printf("fault plane: \"%s\" (seed %llu)\n", fault_spec_text.c_str(),
                static_cast<unsigned long long>(fault_spec.seed));
  std::printf("\n  %-10s %16s %16s %18s\n", "frame [B]", "line rate [Mpps]",
              "loss-free [Mpps]", "median lat. [us]");

  std::uint64_t total_faults = 0;
  for (std::size_t frame_size : {64u, 128u, 256u, 512u, 1024u, 1518u}) {
    const double line = mn::line_rate_pps(10'000, frame_size) / 1e6;
    double lo = 0.0, hi = line;
    TrialResult best{};
    // DuT capacity is ~1.94 Mpps: start the search from the line rate.
    for (int iter = 0; iter < 8 && (hi - lo) / hi > 0.01; ++iter) {
      const double mid = (lo + hi) / 2.0;
      const auto r = run_trial(frame_size, mid, trial_s, &fault_spec);
      total_faults += r.faults_fired;
      if (r.loss_free) {
        lo = mid;
        best = r;
      } else {
        hi = mid;
      }
    }
    std::printf("  %-10zu %16.2f %16.2f %18.2f\n", frame_size, line, lo,
                best.median_latency_us);
  }
  std::printf("\n(the DuT forwards ~1.94 Mpps regardless of frame size: small frames are\n"
              " CPU-bound; large frames approach their line rate)\n");
  if (!fault_spec.empty())
    std::printf("faults injected across all trials: %llu\n",
                static_cast<unsigned long long>(total_faults));
  return 0;
}
