// rfc2544-throughput: binary search for the loss-free forwarding rate of a
// device under test — the classic benchmark hardware packet generators are
// bought for (RFC 2544 [3], discussed in Section 2 of the paper).
//
// For each frame size, the search offers CBR load for a trial period and
// halves the interval on loss; latency of the final passing rate is
// sampled with hardware timestamps. This demonstrates that the commodity
// generator covers the headline use case of IXIA/Spirent appliances.
//
// With `--faults SPEC` a deterministic fault plane (src/fault) is installed
// on every trial testbed, so the binary search runs against real loss,
// corruption, flapping links and a stalling DuT instead of a perfect lab.
// The RFC 2544 criterion is unchanged — a trial passes only if the DuT
// dropped nothing — so wire faults upstream of the DuT shrink the delivered
// load while DuT-side faults (stalls, rx_overflow) shrink the loss-free rate.
//
// Usage: rfc2544_throughput [trial_seconds] [--faults SPEC] [--shards N]
#include <cstdio>
#include <memory>

#include "cli.hpp"
#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "nic/chip.hpp"
#include "nic/throughput_model.hpp"
#include "testbed/scenario.hpp"

namespace mc = moongen::core;
namespace me = moongen::examples;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mtb = moongen::testbed;

namespace {

constexpr const char* kUsage =
    "usage: rfc2544_throughput [trial_seconds] [--faults SPEC] [--seed N] [--shards N]\n";

struct TrialResult {
  bool loss_free;
  double forwarded_mpps;
  double median_latency_us;
  std::uint64_t faults_fired = 0;
};

TrialResult run_trial(std::size_t frame_size, double mpps, double seconds,
                      const me::Cli& cli) {
  // Per-trial testbed (and per-trial fault plane: every trial sees the same
  // seeded fault sequence, so the binary search stays deterministic and
  // comparable across rates). Telemetry is off — trials read stats directly.
  auto tb = mtb::Scenario()
                .seed(cli.seed)
                .shards(cli.shards)
                .faults(cli.faults)
                .telemetry(false)
                .device(0, mn::intel_x540()).name("gen_tx").with_seed(11)
                .device(1, mn::intel_x540()).name("dut_in").with_seed(12)
                .device(2, mn::intel_x540()).name("dut_out").with_seed(13)
                .device(3, mn::intel_x540()).name("sink").with_seed(14).rx_store(false)
                .link(0, 1).with_seed(15)
                .link(2, 3).with_seed(16)
                .forwarder(1, 2)
                .couple(0, 3)
                .build();
  auto& gen_tx = tb->port("gen_tx");
  auto& dut_in = tb->port("dut_in");
  auto& sink = tb->port("sink");

  std::uint64_t sink_count = 0;
  sink.rx_queue(0).set_callback([&](const mn::RxQueueModel::Entry&) { ++sink_count; });

  mc::UdpTemplateOptions bg;
  bg.frame_size = frame_size - 4;  // buffer length without FCS
  bg.ptp_payload = true;
  bg.ptp_message_type = 5;
  auto& queue = gen_tx.tx_queue(0);
  queue.set_rate_mpps(mpps, frame_size);
  auto gen = mc::SimLoadGen::hardware_paced(queue, mc::make_udp_frame(bg));

  // Timestampable variant of the stream packet. UDP PTP packets below 80 B
  // are refused by the timestamp units (Section 6.4), so small frames use
  // PTP-over-Ethernet probes of the same size instead.
  mn::Frame stamped_frame;
  if (frame_size >= 84) {
    mc::UdpTemplateOptions stamped = bg;
    stamped.ptp_message_type = 0;
    stamped_frame = mc::make_udp_frame(stamped);
  } else {
    stamped_frame = mc::make_ptp_ethernet_frame(frame_size - 4, 0);
  }
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 200 * ms::kPsPerUs;
  cfg.hist_bin_ps = 50'000;
  mc::Timestamper ts(tb->engine(0), gen_tx, *gen, stamped_frame, sink, cfg);
  ts.start();

  tb->run_until(static_cast<ms::SimTime>(seconds * 1e12));
  ts.stop();

  TrialResult r;
  // RFC 2544 throughput criterion: zero loss. In this testbed the only
  // loss point is the DuT's RX ring overflowing; packets still in flight in
  // the pipeline at the end of the trial are not losses.
  (void)sink_count;
  r.loss_free = dut_in.stats().rx_ring_drops == 0;
  r.forwarded_mpps = static_cast<double>(tb->forwarder().forwarded()) / seconds / 1e6;
  r.median_latency_us = static_cast<double>(ts.histogram().median()) / 1e6;
  r.faults_fired = tb->fault_fires();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = me::parse_cli(argc, argv, kUsage);
  if (!cli) return 2;
  // Short trials under-detect loss (the DuT's 4096-slot ring absorbs the
  // excess); 0.5 s is enough for the overload backlog to hit the ring.
  const double trial_s = cli->number(0, 0.5);
  std::printf("RFC 2544-style throughput search (loss-free rate, OVS-like DuT)\n");
  std::printf("trial duration %.2f s, binary search to 1%% resolution\n", trial_s);
  if (cli->has_faults())
    std::printf("fault plane: \"%s\" (seed %llu)\n", cli->faults_text.c_str(),
                static_cast<unsigned long long>(cli->faults.seed));
  std::printf("\n  %-10s %16s %16s %18s\n", "frame [B]", "line rate [Mpps]",
              "loss-free [Mpps]", "median lat. [us]");

  std::uint64_t total_faults = 0;
  for (std::size_t frame_size : {64u, 128u, 256u, 512u, 1024u, 1518u}) {
    const double line = mn::line_rate_pps(10'000, frame_size) / 1e6;
    double lo = 0.0, hi = line;
    TrialResult best{};
    // DuT capacity is ~1.94 Mpps: start the search from the line rate.
    for (int iter = 0; iter < 8 && (hi - lo) / hi > 0.01; ++iter) {
      const double mid = (lo + hi) / 2.0;
      const auto r = run_trial(frame_size, mid, trial_s, *cli);
      total_faults += r.faults_fired;
      if (r.loss_free) {
        lo = mid;
        best = r;
      } else {
        hi = mid;
      }
    }
    std::printf("  %-10zu %16.2f %16.2f %18.2f\n", frame_size, line, lo,
                best.median_latency_us);
  }
  std::printf("\n(the DuT forwards ~1.94 Mpps regardless of frame size: small frames are\n"
              " CPU-bound; large frames approach their line rate)\n");
  if (cli->has_faults())
    std::printf("faults injected across all trials: %llu\n",
                static_cast<unsigned long long>(total_faults));
  return 0;
}
