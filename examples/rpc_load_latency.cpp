// rpc-load-latency: stateful memcache-style RPC load against a modeled
// server, with open-loop vs. closed-loop tail-latency comparison.
//
// Two independent client -> server pairs (X540 at 10 GbE, duplex cables)
// carry a get/set workload: Zipf-popular keys, exponential inter-arrivals,
// per-request sequence numbers and departure timestamps embedded in the
// payload (src/rpc/codec.hpp). The server models a configurable worker
// pool with exponentially distributed service times.
//
//   open    - departures come from the arrival process alone; a slow
//             server cannot throttle the generator, so queueing delay
//             lands in the measured tail (the coordinated-omission-free
//             number).
//   closed  - N users each wait for their response plus a think time
//             before re-issuing; the system self-throttles near
//             saturation and the tail looks deceptively flat.
//   compare - run both at the same offered load and print them side by
//             side (the open-vs-closed experiment).
//
// With `--json FILE` the telemetry registry (client/server gauges, engine
// counters) is sampled every 100 ms of virtual time; stdout is unchanged.
// With `--faults SPEC` the fault plane also drives server stalls (sites
// rpc.s0 / rpc.s1) next to the usual wire faults. With `--shards N` the
// pairs run on parallel engines; output is byte-identical to --shards 1.
//
// usage: rpc_load_latency [offered_krps] [seconds] [open|closed|compare]
//                         [service_us] [workers]
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cli.hpp"
#include "nic/chip.hpp"
#include "rpc/open_loop.hpp"
#include "rpc/server_model.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "testbed/scenario.hpp"

namespace me = moongen::examples;
namespace mn = moongen::nic;
namespace mr = moongen::rpc;
namespace ms = moongen::sim;
namespace mt = moongen::telemetry;
namespace mtb = moongen::testbed;

namespace {

constexpr const char* kUsage =
    "usage: rpc_load_latency [offered_krps] [seconds] [open|closed|compare]\n"
    "                        [service_us] [workers]\n"
    "                        [--json FILE] [--faults SPEC] [--seed N] [--shards N]\n";

constexpr int kPairs = 2;

struct RunResult {
  mr::LatencyRecorder latency;
  std::uint64_t issued = 0;
  std::uint64_t matched = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t send_drops = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t completed = 0;
  std::uint64_t stalls = 0;
  std::uint64_t fault_fires = 0;
  std::uint64_t link_resumes = 0;
  std::size_t peak_inflight = 0;
  std::size_t peak_queue = 0;
};

struct RunParams {
  double offered_rps_total = 0;
  double seconds = 0;
  double service_us = 0;
  int workers = 1;
  bool closed = false;
};

RunResult run_mode(const me::Cli& cli, const RunParams& p) {
  // Two ungrouped client/server pairs: four shard groups, so --shards up
  // to 4 spreads them across engines (cables provide the lookahead).
  mtb::Scenario s;
  s.seed(cli.seed).shards(cli.shards).faults(cli.faults);
  for (int i = 0; i < kPairs; ++i) {
    const int client = 2 * i;
    const int server = 2 * i + 1;
    s.device(client, mn::intel_x540())
        .name("client" + std::to_string(i))
        .with_seed(10 + static_cast<std::uint64_t>(i))
        .rx_store(false)
        .device(server, mn::intel_x540())
        .name("server" + std::to_string(i))
        .with_seed(20 + static_cast<std::uint64_t>(i))
        .rx_store(false)
        .link(client, server)
        .with_seed(30 + static_cast<std::uint64_t>(i))
        .duplex();
  }
  auto tb = s.build();
  mt::MetricRegistry& registry = tb->registry();

  const auto end_ps = static_cast<ms::SimTime>(p.seconds * 1e12);
  const double per_pair_rps = p.offered_rps_total / kPairs;

  std::vector<std::unique_ptr<mr::ServerModel>> servers;
  std::vector<std::unique_ptr<mr::LatencyRecorder>> recorders;
  std::vector<std::unique_ptr<mr::OpenLoopGenerator>> open_gens;
  std::vector<std::unique_ptr<mr::ClosedLoopGenerator>> closed_gens;
  for (int i = 0; i < kPairs; ++i) {
    mr::ServerConfig sc;
    sc.workers = p.workers;
    sc.service = mr::ServerConfig::Service::kExponential;
    sc.service_mean_ps = p.service_us * static_cast<double>(ms::kPsPerUs);
    sc.seed = cli.seed + 100 + static_cast<std::uint64_t>(i);
    servers.push_back(
        std::make_unique<mr::ServerModel>(tb->port("server" + std::to_string(i)), sc));
    if (cli.has_faults()) {
      // Server stall probes live on the server's shard plane; the per-site
      // RNG stream depends only on the site name, not the shard layout.
      if (auto* plane = tb->fault_plane(tb->shard_of(2 * i + 1)); plane != nullptr)
        servers.back()->install_faults(*plane, "rpc.s" + std::to_string(i));
    }
    servers.back()->bind_telemetry(registry, "rpc.server" + std::to_string(i));

    recorders.push_back(std::make_unique<mr::LatencyRecorder>());
    mr::WorkloadConfig wc;
    wc.offered_rps = per_pair_rps;
    wc.seed = cli.seed + 200 + static_cast<std::uint64_t>(i);
    wc.seq_base = 1 + (static_cast<std::uint64_t>(i) << 32);
    // Trim the ramp at both ends and reclaim entries orphaned by loss.
    wc.warmup_ps = end_ps / 10;
    wc.cooldown_ps = end_ps / 20;
    wc.timeout_ps = 50 * ms::kPsPerMs;
    auto& client_port = tb->port("client" + std::to_string(i));
    if (p.closed) {
      mr::ClosedLoopConfig cc;
      cc.users = 32;
      cc.think_mean_ps = static_cast<double>(cc.users) / per_pair_rps * 1e12;
      closed_gens.push_back(std::make_unique<mr::ClosedLoopGenerator>(
          client_port, *recorders.back(), wc, cc));
      closed_gens.back()->start(0, end_ps);
      closed_gens.back()->bind_telemetry(registry, "rpc.client" + std::to_string(i));
    } else {
      open_gens.push_back(
          std::make_unique<mr::OpenLoopGenerator>(client_port, *recorders.back(), wc));
      open_gens.back()->start(0, end_ps);
      open_gens.back()->bind_telemetry(registry, "rpc.client" + std::to_string(i));
    }
  }

  auto client_at = [&](int i) -> mr::detail::ClientBase& {
    if (p.closed) return *closed_gens[static_cast<std::size_t>(i)];
    return *open_gens[static_cast<std::size_t>(i)];
  };

  // Consistent-cut telemetry snapshots every 100 ms of virtual time.
  mt::SamplerConfig sampler_cfg;
  sampler_cfg.period_ns = 100'000'000;
  mt::Sampler sampler(registry, [&tb] { return tb->now() / 1'000; }, sampler_cfg);
  std::function<void()> sample_tick = [&] {
    tb->publish_engine_telemetry();
    for (int i = 0; i < kPairs; ++i) {
      client_at(i).publish_telemetry();
      servers[static_cast<std::size_t>(i)]->publish_telemetry();
    }
    sampler.poll();
    if (tb->now() < end_ps) tb->schedule_global(tb->now() + 100 * ms::kPsPerMs, sample_tick);
  };
  if (cli.has_json()) tb->schedule_global(0, sample_tick);

  // Run past the stop to drain responses (and one timeout sweep) in flight.
  tb->run_until(end_ps + 60 * ms::kPsPerMs);

  RunResult out;
  for (int i = 0; i < kPairs; ++i) {
    auto& c = client_at(i);
    out.latency.merge(*recorders[static_cast<std::size_t>(i)]);
    out.issued += c.issued();
    out.matched += c.matched();
    out.timed_out += c.timed_out();
    out.send_drops += c.send_drops();
    if (c.peak_inflight() > out.peak_inflight) out.peak_inflight = c.peak_inflight();
    auto& sv = *servers[static_cast<std::size_t>(i)];
    out.queue_drops += sv.queue_drops();
    out.completed += sv.completed();
    out.stalls += sv.stalls();
    if (sv.peak_queue_depth() > out.peak_queue) out.peak_queue = sv.peak_queue_depth();
  }
  out.fault_fires = tb->fault_fires();
  for (int i = 0; i < 2 * kPairs; ++i) out.link_resumes += tb->port(i).stats().link_up_events;

  if (cli.has_json()) {
    tb->publish_engine_telemetry();
    for (int i = 0; i < kPairs; ++i) {
      client_at(i).publish_telemetry();
      servers[static_cast<std::size_t>(i)]->publish_telemetry();
    }
    sampler.sample_now();
    const std::string path =
        p.closed ? cli.json_path + ".closed.json" : cli.json_path;
    if (mt::dump_json_series_to_file(path, sampler.series()))
      std::fprintf(stderr, "telemetry series written to %s\n", path.c_str());
    else
      std::fprintf(stderr, "failed to write telemetry series to %s\n", path.c_str());
  }
  return out;
}

void print_result(const char* label, const RunResult& r, const me::Cli& cli) {
  std::printf("%s:\n", label);
  std::printf("  issued %llu / matched %llu / timed out %llu / client drops %llu\n",
              static_cast<unsigned long long>(r.issued),
              static_cast<unsigned long long>(r.matched),
              static_cast<unsigned long long>(r.timed_out),
              static_cast<unsigned long long>(r.send_drops));
  std::printf("  server: %llu completed, %llu queue drops, peak queue %zu\n",
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.queue_drops), r.peak_queue);
  std::printf("  peak in-flight %zu\n", r.peak_inflight);
  std::printf("  latency: p50 %.1f us / p99 %.1f us / p99.9 %.1f us / max %.1f us (%llu samples)\n",
              static_cast<double>(r.latency.p50_ns()) / 1e3,
              static_cast<double>(r.latency.p99_ns()) / 1e3,
              static_cast<double>(r.latency.p999_ns()) / 1e3,
              static_cast<double>(r.latency.max_ns()) / 1e3,
              static_cast<unsigned long long>(r.latency.count()));
  if (cli.has_faults())
    std::printf("  faults: %llu injected, %llu server stalls, %llu link resumes\n",
                static_cast<unsigned long long>(r.fault_fires),
                static_cast<unsigned long long>(r.stalls),
                static_cast<unsigned long long>(r.link_resumes));
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = me::parse_cli(argc, argv, kUsage);
  if (!cli) return 2;
  RunParams p;
  p.offered_rps_total = cli->number(0, 200.0) * 1e3;
  p.seconds = cli->number(1, 0.5);
  const std::string mode = cli->arg(2, "compare");
  p.service_us = cli->number(3, 8.0);
  p.workers = static_cast<int>(cli->number(4, 1.0));
  if (mode != "open" && mode != "closed" && mode != "compare") {
    std::fprintf(stderr, "unknown mode '%s'\n%s", mode.c_str(), kUsage);
    return 2;
  }
  std::printf("rpc-load-latency: %.0f krps offered over %d pairs, %.1f s, "
              "service %.1f us x %d worker(s), mode %s\n\n",
              p.offered_rps_total / 1e3, kPairs, p.seconds, p.service_us, p.workers,
              mode.c_str());

  if (mode == "open" || mode == "compare") {
    RunParams open = p;
    open.closed = false;
    print_result("open-loop", run_mode(*cli, open), *cli);
  }
  if (mode == "closed" || mode == "compare") {
    RunParams closed = p;
    closed.closed = true;
    print_result("closed-loop", run_mode(*cli, closed), *cli);
  }
  return 0;
}
