// packet-capture: capture generated traffic to a pcap file and replay it.
//
// Demonstrates the capture facilities (MoonGen "can analyze traffic";
// Section 10): a TX tap records everything a generator port emits —
// including the invalid gap frames of the CRC rate control — while the RX
// capture on the receiving port shows what survives the hardware CRC
// check. The file is then re-read and replayed through a second port.
//
// Usage: packet_capture [file.pcap]
#include <cstdio>
#include <memory>
#include <string>

#include "capture/pcap.hpp"
#include "cli.hpp"
#include "core/rate_control.hpp"
#include "nic/chip.hpp"
#include "testbed/scenario.hpp"

namespace cap = moongen::capture;
namespace mc = moongen::core;
namespace me = moongen::examples;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mtb = moongen::testbed;

namespace {

constexpr const char* kUsage = "usage: packet_capture [file.pcap] [--seed N]\n";

// Both scenes are a simple A -> B pair; the replay runs the engine to
// exhaustion, which needs the single-engine form (couple).
std::unique_ptr<mtb::Testbed> make_pair(std::uint64_t seed, std::uint64_t a_seed) {
  return mtb::Scenario()
      .seed(seed)
      .telemetry(false)
      .device(0, mn::intel_x540()).name("a").with_seed(a_seed)
      .device(1, mn::intel_x540()).name("b").with_seed(a_seed + 1)
      .link(0, 1).with_seed(a_seed + 2)
      .couple(0, 1)
      .build();
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = me::parse_cli(argc, argv, kUsage);
  if (!cli) return 2;
  const std::string tx_path = cli->arg(0, "/tmp/moongen_tx.pcap");
  const std::string rx_path = tx_path + ".rx";

  {
    auto tb = make_pair(cli->seed, 31);
    auto& a = tb->port("a");
    auto& b = tb->port("b");

    cap::PcapWriter tx_writer(tx_path);
    cap::TxTee tee(a, tx_writer);  // everything leaving port A
    cap::PcapWriter rx_writer(rx_path);
    cap::capture_rx(b, 0, rx_writer);  // everything reaching port B's queue

    mc::UdpTemplateOptions opts;
    opts.frame_size = 96;
    auto gen = mc::SimLoadGen::crc_paced(a.tx_queue(0), mc::make_udp_frame(opts),
                                         std::make_unique<mc::CbrPattern>(0.5), 10'000);
    tb->run_until(2 * ms::kPsPerMs);

    std::printf("captured %llu TX frames (incl. invalid gap frames) -> %s\n",
                static_cast<unsigned long long>(tx_writer.packets_written()), tx_path.c_str());
    std::printf("captured %llu RX frames (valid only)               -> %s\n",
                static_cast<unsigned long long>(rx_writer.packets_written()), rx_path.c_str());
    std::printf("hardware dropped %llu invalid frames at the receiver\n\n",
                static_cast<unsigned long long>(b.stats().crc_errors));
  }

  // Replay: read the RX capture and push it through a fresh port pair.
  const auto frames = cap::load_frames(rx_path);
  std::printf("replaying %zu frames from %s...\n", frames.size(), rx_path.c_str());
  auto tb = make_pair(cli->seed, 41);
  auto& a = tb->port("a");
  for (const auto& frame : frames) a.tx_queue(0).post(frame);
  tb->engine().run();
  std::printf("replay delivered %llu packets\n",
              static_cast<unsigned long long>(tb->port("b").stats().rx_packets));

  std::remove(tx_path.c_str());
  std::remove(rx_path.c_str());
  return 0;
}
