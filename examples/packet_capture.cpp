// packet-capture: capture generated traffic to a pcap file and replay it.
//
// Demonstrates the capture facilities (MoonGen "can analyze traffic";
// Section 10): a TX tap records everything a generator port emits —
// including the invalid gap frames of the CRC rate control — while the RX
// capture on the receiving port shows what survives the hardware CRC
// check. The file is then re-read and replayed through a second port.
//
// Usage: packet_capture [file.pcap]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "capture/pcap.hpp"
#include "core/rate_control.hpp"
#include "nic/chip.hpp"
#include "wire/link.hpp"

namespace cap = moongen::capture;
namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mw = moongen::wire;

int main(int argc, char** argv) {
  const std::string tx_path = argc > 1 ? argv[1] : "/tmp/moongen_tx.pcap";
  const std::string rx_path = tx_path + ".rx";

  {
    ms::EventQueue events;
    mn::Port a(events, mn::intel_x540(), 10'000, 31);
    mn::Port b(events, mn::intel_x540(), 10'000, 32);
    mw::Link link(a, b, mw::cat5e_10gbaset(2.0), 33);

    cap::PcapWriter tx_writer(tx_path);
    cap::TxTee tee(a, tx_writer);  // everything leaving port A
    cap::PcapWriter rx_writer(rx_path);
    cap::capture_rx(b, 0, rx_writer);  // everything reaching port B's queue

    mc::UdpTemplateOptions opts;
    opts.frame_size = 96;
    auto gen = mc::SimLoadGen::crc_paced(a.tx_queue(0), mc::make_udp_frame(opts),
                                         std::make_unique<mc::CbrPattern>(0.5), 10'000);
    events.run_until(2 * ms::kPsPerMs);

    std::printf("captured %llu TX frames (incl. invalid gap frames) -> %s\n",
                static_cast<unsigned long long>(tx_writer.packets_written()), tx_path.c_str());
    std::printf("captured %llu RX frames (valid only)               -> %s\n",
                static_cast<unsigned long long>(rx_writer.packets_written()), rx_path.c_str());
    std::printf("hardware dropped %llu invalid frames at the receiver\n\n",
                static_cast<unsigned long long>(b.stats().crc_errors));
  }

  // Replay: read the RX capture and push it through a fresh port pair.
  const auto frames = cap::load_frames(rx_path);
  std::printf("replaying %zu frames from %s...\n", frames.size(), rx_path.c_str());
  ms::EventQueue events;
  mn::Port a(events, mn::intel_x540(), 10'000, 41);
  mn::Port b(events, mn::intel_x540(), 10'000, 42);
  mw::Link link(a, b, mw::cat5e_10gbaset(2.0), 43);
  for (const auto& frame : frames) a.tx_queue(0).post(frame);
  events.run();
  std::printf("replay delivered %llu packets\n",
              static_cast<unsigned long long>(b.stats().rx_packets));

  std::remove(tx_path.c_str());
  std::remove(rx_path.c_str());
  return 0;
}
