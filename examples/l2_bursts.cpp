// l2-bursts: generate bursty traffic with the CRC-based rate control
// (the equivalent of the paper's l2-bursts.lua, Section 9).
//
// Bursts of back-to-back packets at a configurable average rate; the
// receiving 82580 timestamps every packet so the burst structure is
// directly visible in the inter-arrival histogram.
//
// Usage: l2_bursts [avg_kpps] [burst_size]
#include <cstdio>
#include <iostream>
#include <memory>

#include "cli.hpp"
#include "core/rate_control.hpp"
#include "nic/chip.hpp"
#include "testbed/scenario.hpp"
#include "wire/recorder.hpp"

namespace mc = moongen::core;
namespace me = moongen::examples;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mtb = moongen::testbed;
namespace mw = moongen::wire;

namespace {

constexpr const char* kUsage = "usage: l2_bursts [avg_kpps] [burst_size] [--seed N]\n";

}  // namespace

int main(int argc, char** argv) {
  const auto cli = me::parse_cli(argc, argv, kUsage);
  if (!cli) return 2;
  const double kpps = cli->number(0, 200.0);
  const auto burst = static_cast<std::size_t>(cli->number(1, 8));
  std::printf("l2-bursts: %zu-packet bursts at %.0f kpps average, GbE, 1 s\n\n", burst, kpps);

  // GbE frame times exceed the short cable's latency, so the two ports
  // cannot run on separate shards — couple() keeps them on one engine.
  auto tb = mtb::Scenario()
                .seed(cli->seed)
                .faults(cli->faults)
                .telemetry(false)
                .device(0, mn::intel_x540()).name("tx").link_mbit(1'000).with_seed(21)
                .device(1, mn::intel_82580()).name("rx").link_mbit(1'000).with_seed(22)
                .link(0, 1).cable(mw::cat5e_gbe(2.0)).with_seed(23)
                .couple(0, 1)
                .build();
  auto& tx = tb->port("tx");
  mw::InterArrivalRecorder recorder(tb->port("rx"), 0);

  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  const auto frame = mc::make_udp_frame(opts);
  auto gen = mc::SimLoadGen::crc_paced(
      tx.tx_queue(0), frame,
      std::make_unique<mc::BurstPattern>(kpps / 1e3, burst, frame.wire_bytes(), 1'000), 1'000);

  tb->run_until(ms::kPsPerSec);

  std::printf("packets: %llu valid on the wire, %llu invalid gap frames\n",
              static_cast<unsigned long long>(gen->valid_frames()),
              static_cast<unsigned long long>(gen->gap_frames()));
  std::printf("back-to-back share: %.1f %% (expected ~%.1f %% for %zu-packet bursts)\n\n",
              recorder.micro_burst_fraction() * 100.0,
              static_cast<double>(burst - 1) / static_cast<double>(burst) * 100.0, burst);
  std::printf("inter-arrival histogram (64 ns bins, >0.5%%):\n");
  recorder.histogram().print(std::cout, 0.005);
  return 0;
}
