// l2-bursts: generate bursty traffic with the CRC-based rate control
// (the equivalent of the paper's l2-bursts.lua, Section 9).
//
// Bursts of back-to-back packets at a configurable average rate; the
// receiving 82580 timestamps every packet so the burst structure is
// directly visible in the inter-arrival histogram.
//
// Usage: l2_bursts [avg_kpps] [burst_size]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/rate_control.hpp"
#include "nic/chip.hpp"
#include "wire/link.hpp"
#include "wire/recorder.hpp"

namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mw = moongen::wire;

int main(int argc, char** argv) {
  const double kpps = argc > 1 ? std::atof(argv[1]) : 200.0;
  const std::size_t burst = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  std::printf("l2-bursts: %zu-packet bursts at %.0f kpps average, GbE, 1 s\n\n", burst, kpps);

  ms::EventQueue events;
  mn::Port tx(events, mn::intel_x540(), 1'000, 21);
  mn::Port rx(events, mn::intel_82580(), 1'000, 22);
  mw::Link link(tx, rx, mw::cat5e_gbe(2.0), 23);
  mw::InterArrivalRecorder recorder(rx, 0);

  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  const auto frame = mc::make_udp_frame(opts);
  auto gen = mc::SimLoadGen::crc_paced(
      tx.tx_queue(0), frame,
      std::make_unique<mc::BurstPattern>(kpps / 1e3, burst, frame.wire_bytes(), 1'000), 1'000);

  events.run_until(ms::kPsPerSec);

  std::printf("packets: %llu valid on the wire, %llu invalid gap frames\n",
              static_cast<unsigned long long>(gen->valid_frames()),
              static_cast<unsigned long long>(gen->gap_frames()));
  std::printf("back-to-back share: %.1f %% (expected ~%.1f %% for %zu-packet bursts)\n\n",
              recorder.micro_burst_fraction() * 100.0,
              static_cast<double>(burst - 1) / static_cast<double>(burst) * 100.0, burst);
  std::printf("inter-arrival histogram (64 ns bins, >0.5%%):\n");
  recorder.histogram().print(std::cout, 0.005);
  return 0;
}
