// quality-of-service-test: the paper's running example (Listings 1-3).
//
// Two transmission tasks generate two UDP flows — background traffic and
// prioritized foreground traffic, distinguished by UDP destination port —
// at different rates; a counter task measures per-flow throughput on the
// receive side. This is the starting point for benchmarking a forwarding
// device that prioritizes real-time traffic over background traffic.
//
// The structure mirrors the Lua script faithfully:
//   master()       -> main(): device config, rates, task launch
//   loadSlave()    -> load_slave(): pre-filled mempool, per-packet edit
//   counterSlave() -> counter_slave(): per-port RX counters
// With `--json FILE` the end-of-run totals (per-flow TX/RX packets and
// the receiver's ring drops) are exported as a one-snapshot telemetry
// series; stdout is unchanged.
//
// After the fast-path run, a simulated cross-check sends the same two
// classes as 802.1Q-tagged frames whose PCP is stamped into `Frame.flow`
// (the flow-labeling contract, DESIGN.md Section 16): the always-on RTT
// plane then buckets each class into its own flow group and publishes
// per-class windowed quantiles. The example asserts that the per-class
// numbers agree — the sum of every window's group count equals the
// group's cumulative population, and no frame leaked into a foreign
// group — and exits nonzero when they don't.
#include <cstdio>
#include <iostream>
#include <thread>
#include <map>
#include <memory>

#include "cli.hpp"
#include "core/device.hpp"
#include "core/field_modifier.hpp"
#include "core/rate_control.hpp"
#include "core/task.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "nic/chip.hpp"
#include "proto/packet_view.hpp"
#include "stats/counters.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/rtt_plane.hpp"
#include "testbed/scenario.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace me = moongen::examples;
namespace mn = moongen::nic;
namespace mp = moongen::proto;
namespace st = moongen::stats;
namespace mt = moongen::telemetry;
namespace mtb = moongen::testbed;

namespace {

constexpr std::size_t kPktSize = 124;  // PKT_SIZE from Listing 2

// Listing 2: the transmission slave task. `sent_out` receives the final
// packet total (written once, after the loop — read it after wait()).
void load_slave(mc::TxQueue* queue, std::uint16_t port, const mc::RunState* run,
                std::uint64_t* sent_out) {
  auto mem = std::make_unique<mb::Mempool>(2048, [port](mb::PktBuf& buf) {
    buf.set_length(kPktSize);
    mp::UdpPacketView pkt{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = kPktSize;
    opts.eth_src = mp::MacAddress::from_uint64(0x020000000000);  // MAC from device
    opts.eth_dst = mp::MacAddress::parse("10:11:12:13:14:15").value();
    opts.ip_dst = mp::IPv4Address::parse("192.168.1.1").value();
    opts.udp_src = 1234;
    opts.udp_dst = port;
    pkt.fill(opts);
  });
  st::ManualTxCounter tx_ctr("port " + std::to_string(port), st::Format::kPlain,
                             st::wall_clock(), &std::cout);
  const auto base_ip = mp::IPv4Address::parse("10.0.0.1").value();
  mb::BufArray bufs(*mem, 64);
  mc::Tausworthe rng(port);
  std::uint64_t total = 0;
  while (run->running()) {
    bufs.alloc(kPktSize);
    for (auto* buf : bufs) {
      mp::UdpPacketView pkt{buf->bytes()};
      pkt.ip().set_src(base_ip + rng.next() % 255);  // line 20 of Listing 2
    }
    bufs.offload_udp_checksums();  // line 22
    const auto sent = queue->send(bufs);
    total += sent;
    tx_ctr.update_with_size(sent, kPktSize);
  }
  tx_ctr.finalize();
  if (sent_out != nullptr) *sent_out = total;
}

// Listing 3: the packet counter slave task. `rx_out` receives the final
// per-port packet totals (written once, after the loop).
void counter_slave(mc::RxQueue* queue, const mc::RunState* run,
                   std::map<std::uint16_t, std::uint64_t>* rx_out) {
  mb::BufArray bufs(128);
  std::map<std::uint16_t, std::unique_ptr<st::PktRxCounter>> counters;
  while (run->running()) {
    const auto rx = queue->recv(bufs);
    if (rx == 0) std::this_thread::yield();  // be polite on small hosts
    for (std::size_t i = 0; i < rx; ++i) {
      mp::UdpPacketView pkt{bufs[i]->bytes()};
      const std::uint16_t port = pkt.udp().dst_port();
      auto& ctr = counters[port];
      if (!ctr) {
        ctr = std::make_unique<st::PktRxCounter>("rx port " + std::to_string(port),
                                                 st::Format::kPlain, st::wall_clock(),
                                                 &std::cout);
      }
      ctr->count_packet(bufs[i]->length());
    }
    bufs.free_all();
  }
  for (auto& [port, ctr] : counters) {
    ctr->finalize();
    if (rx_out != nullptr) (*rx_out)[port] = ctr->total_packets();
  }
}

// Simulated PCP-labeled cross-check: both classes through the RTT plane's
// flow groups. Returns false (after printing why) when the per-class books
// disagree.
bool sim_flow_group_check(double bg_rate, double fg_rate) {
  constexpr std::uint8_t kBgPcp = 0;  // best effort
  constexpr std::uint8_t kFgPcp = 5;  // voice-class PCP for the foreground
  auto tb = mtb::Scenario()
                .seed(1)
                .rtt_groups(8)  // one group per PCP value
                .device(0, mn::intel_x540()).name("gen").with_seed(1)
                .device(1, mn::intel_x540()).name("sink").with_seed(2).rx_store(false)
                .link(0, 1).with_seed(3)
                .build();
  auto& gen_port = tb->port("gen");

  // PCP -> Frame.flow: each class's tag priority is also its flow label,
  // so the plane's group index *is* the 802.1p class.
  mc::UdpTemplateOptions bg;
  bg.frame_size = kPktSize + 4;  // + 802.1Q tag
  bg.udp_dst = 42;
  bg.vlan = true;
  bg.vlan_vid = 10;
  bg.vlan_pcp = kBgPcp;
  bg.flow = kBgPcp;
  mc::UdpTemplateOptions fg = bg;
  fg.udp_dst = 43;
  fg.vlan_pcp = kFgPcp;
  fg.flow = kFgPcp;

  gen_port.tx_queue(0).set_rate_wire_mbit(bg_rate);
  gen_port.tx_queue(1).set_rate_wire_mbit(fg_rate);
  auto bg_gen = mc::SimLoadGen::hardware_paced(gen_port.tx_queue(0), mc::make_udp_frame(bg));
  auto fg_gen = mc::SimLoadGen::hardware_paced(gen_port.tx_queue(1), mc::make_udp_frame(fg));

  tb->run_until(1'000'000'000'000ull);  // 1 s of virtual time, 10 windows

  auto& plane = tb->rtt_plane();
  bool ok = true;
  for (std::uint32_t group = 0; group < plane.group_count(); ++group) {
    std::uint64_t windowed = 0;
    for (const auto& w : plane.windows()) windowed += w.groups[group].count;
    const std::uint64_t cumulative = plane.cumulative_group(group).total();
    if (windowed != cumulative) {
      std::printf("FAIL: class %u windowed count %llu != cumulative %llu\n", group,
                  static_cast<unsigned long long>(windowed),
                  static_cast<unsigned long long>(cumulative));
      ok = false;
    }
    if (group != kBgPcp && group != kFgPcp && cumulative != 0) {
      std::printf("FAIL: class %u has %llu frames but nothing was labeled with it\n", group,
                  static_cast<unsigned long long>(cumulative));
      ok = false;
    }
  }
  for (const std::uint8_t pcp : {kBgPcp, kFgPcp}) {
    const auto cum = plane.cumulative_group(pcp);
    if (cum.total() == 0) {
      std::printf("FAIL: class %u recorded no frames\n", pcp);
      ok = false;
      continue;
    }
    const auto* last = plane.latest_window();
    std::printf("class %u (port %u): %llu frames, window p50 %.2f us / p99 %.2f,"
                " cumulative p50 %.2f us / p99 %.2f\n",
                pcp, pcp == kBgPcp ? 42 : 43, static_cast<unsigned long long>(cum.total()),
                last != nullptr ? static_cast<double>(last->groups[pcp].p50) / 1e3 : 0.0,
                last != nullptr ? static_cast<double>(last->groups[pcp].p99) / 1e3 : 0.0,
                static_cast<double>(cum.percentile(50.0)) / 1e3,
                static_cast<double>(cum.percentile(99.0)) / 1e3);
  }
  const std::uint64_t sent = bg_gen->valid_frames() + fg_gen->valid_frames();
  if (plane.recorded() > sent) {
    std::printf("FAIL: plane recorded %llu frames but only %llu were sent\n",
                static_cast<unsigned long long>(plane.recorded()),
                static_cast<unsigned long long>(sent));
    ok = false;
  }
  return ok;
}

}  // namespace

// Listing 1: the master function.
int main(int argc, char** argv) {
  const auto cli = me::parse_cli(
      argc, argv, "usage: quality_of_service_test [bg_mbit] [fg_mbit] [--json FILE]\n");
  if (!cli) return 2;
  const double bg_rate = cli->number(0, 800.0);  // Mbit/s
  const double fg_rate = cli->number(1, 100.0);
  std::printf("quality-of-service-test: background %.0f Mbit/s (port 42),"
              " foreground %.0f Mbit/s (port 43), 3 s\n",
              bg_rate, fg_rate);

  auto tb = mtb::Scenario()
                .fast_device(0, 1, 2)
                .fast_device(1, 1, 1)
                .fast_connect(0, 1)
                .build();
  auto& t_dev = tb->fast_device(0);
  auto& r_dev = tb->fast_device(1);
  mc::Device::wait_for_links();                  // line 4
  t_dev.get_tx_queue(0).set_rate_mbit(bg_rate);  // line 5
  t_dev.get_tx_queue(1).set_rate_mbit(fg_rate);  // line 6

  mc::RunState& run = tb->run_state();
  std::uint64_t bg_sent = 0;
  std::uint64_t fg_sent = 0;
  std::map<std::uint16_t, std::uint64_t> rx_totals;
  mc::TaskSet mg;
  mg.launch("loadSlave", load_slave, &t_dev.get_tx_queue(0), std::uint16_t{42}, &run,
            &bg_sent);  // line 7
  mg.launch("loadSlave", load_slave, &t_dev.get_tx_queue(1), std::uint16_t{43}, &run,
            &fg_sent);  // line 8
  mg.launch("counterSlave", counter_slave, &r_dev.get_rx_queue(0), &run, &rx_totals);  // line 9
  run.stop_after(3.0);
  mg.wait();  // line 10

  // On hosts with fewer cores than tasks the receive ring can overflow
  // while the counter task is scheduled out; account for the difference.
  std::printf("[rx device] ring drops: %llu (receiver starved of CPU time)\n",
              static_cast<unsigned long long>(r_dev.get_rx_queue(0).ring_drops()));

  std::printf("\nsimulated cross-check: PCP-labeled classes through RTT-plane flow groups\n");
  const bool classes_consistent = sim_flow_group_check(bg_rate, fg_rate);

  if (cli->has_json()) {
    mt::MetricRegistry registry;
    registry.shard(0).gauge("qos.bg.offered_mbit").set(bg_rate);
    registry.shard(0).gauge("qos.fg.offered_mbit").set(fg_rate);
    registry.shard(0).gauge("qos.tx.port42").set(static_cast<double>(bg_sent));
    registry.shard(0).gauge("qos.tx.port43").set(static_cast<double>(fg_sent));
    for (const auto& [port, pkts] : rx_totals)
      registry.shard(0).gauge("qos.rx.port" + std::to_string(port)).set(static_cast<double>(pkts));
    registry.shard(0).gauge("qos.rx.ring_drops")
        .set(static_cast<double>(r_dev.get_rx_queue(0).ring_drops()));
    const std::vector<mt::Snapshot> series{registry.snapshot()};
    if (mt::dump_json_series_to_file(cli->json_path, series))
      std::fprintf(stderr, "telemetry written to %s\n", cli->json_path.c_str());
    else
      std::fprintf(stderr, "failed to write telemetry to %s\n", cli->json_path.c_str());
  }
  return classes_consistent ? 0 : 1;
}
