#include "cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

namespace moongen::examples {

double Cli::number(std::size_t i, double dflt) const {
  if (i >= positional.size()) return dflt;
  return std::atof(positional[i].c_str());
}

std::string Cli::arg(std::size_t i, const std::string& dflt) const {
  if (i >= positional.size()) return dflt;
  return positional[i];
}

std::optional<Cli> parse_cli(int argc, char** argv, const char* usage) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const bool has_value = i + 1 < argc;
    const bool takes_value = std::strcmp(a, "--json") == 0 || std::strcmp(a, "--faults") == 0 ||
                             std::strcmp(a, "--seed") == 0 || std::strcmp(a, "--shards") == 0 ||
                             std::strcmp(a, "--stream") == 0;
    if (takes_value && !has_value) {
      std::fprintf(stderr, "%s requires a value\n%s", a, usage != nullptr ? usage : "");
      return std::nullopt;
    }
    if (std::strcmp(a, "--json") == 0) {
      cli.json_path = argv[++i];
    } else if (std::strcmp(a, "--faults") == 0) {
      cli.faults_text = argv[++i];
    } else if (std::strcmp(a, "--stream") == 0) {
      cli.stream_path = argv[++i];
    } else if (std::strcmp(a, "--seed") == 0) {
      cli.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(a, "--shards") == 0) {
      cli.shards = std::atoi(argv[++i]);
      if (cli.shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n%s", usage != nullptr ? usage : "");
        return std::nullopt;
      }
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      std::fprintf(stderr, "%s", usage != nullptr ? usage : "");
      return std::nullopt;
    } else {
      cli.positional.emplace_back(a);
    }
  }
  if (!cli.faults_text.empty()) {
    try {
      cli.faults = fault::FaultSpec::parse(cli.faults_text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad --faults spec: %s\n%s", e.what(),
                   usage != nullptr ? usage : "");
      return std::nullopt;
    }
  }
  return cli;
}

}  // namespace moongen::examples
