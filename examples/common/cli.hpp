// Shared example command-line handling.
//
// Every example accepts the same experiment flags — previously each one
// re-implemented the strcmp loop (and most silently ignored flags the
// others supported):
//
//   --json FILE     write the telemetry snapshot series as JSON
//   --faults SPEC   install a fault plane (src/fault/fault.hpp language)
//   --seed N        base seed for the scenario (default 1)
//   --shards N      simulation shards for parallel execution (default 1)
//   --stream FILE   stream telemetry snapshots + RTT windows to FILE
//                   (stdout stays byte-identical to an unstreamed run)
//
// Everything else stays positional and is interpreted per example.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"

namespace moongen::examples {

struct Cli {
  std::string json_path;
  std::string faults_text;
  fault::FaultSpec faults;
  std::string stream_path;
  std::uint64_t seed = 1;
  int shards = 1;
  std::vector<std::string> positional;

  [[nodiscard]] bool has_json() const { return !json_path.empty(); }
  [[nodiscard]] bool has_faults() const { return !faults.empty(); }
  [[nodiscard]] bool has_stream() const { return !stream_path.empty(); }

  /// Positional argument `i` as a double, or `dflt` when absent.
  [[nodiscard]] double number(std::size_t i, double dflt) const;
  /// Positional argument `i` as a string, or `dflt` when absent.
  [[nodiscard]] std::string arg(std::size_t i, const std::string& dflt = "") const;
};

/// Parses the shared flags out of argv. On error (unknown flag value,
/// malformed --faults spec) prints a message plus `usage` to stderr and
/// returns nullopt; the caller should exit non-zero.
std::optional<Cli> parse_cli(int argc, char** argv, const char* usage);

}  // namespace moongen::examples
