// ddos-isolation: multi-tenant virtual switch under a DDoS burst train —
// does per-tenant token-bucket shaping keep the victim's tail latency flat
// while an attacker floods the shared vport?
//
// Topology (virtual time, byte-identical across --shards 1/2/4):
//
//   gen ──link── vs_in ═[VSwitch]═╦═ vport0 (1 GbE) ──link── sink0
//                                 ╚═ vport1 (10 GbE) ─link── sink1
//
// Three traffic classes share the generator, one TX queue each:
//   q0  victim    CBR (hardware-paced), VLAN 10, Frame.flow 1 -> vport0
//   q1  attacker  periodic burst trains with a 64 B trigger / 1024 B
//                 amplification pattern, CRC-gap rate control places the
//                 bursts (Section 8.1/8.3), VLAN 20, flow 2 -> vport0
//   q2  background thousands of tenants, Poisson aggregate via CRC gaps,
//                 VLANs 100.., flow 3 -> vport1
//
// The attacker tenant is policed to `shape_mbit` at switch ingress; victim
// and attacker share the congested 1 GbE vport0, so with shaping off
// (shape_mbit 0) the flood takes the vport and the victim's p99 explodes.
// Per-tenant latency comes from the always-on RTT plane's flow groups; the
// vswitch conservation checker runs in the health plane throughout.
//
// Reported and gated by CI: shaping accuracy (attacker emitted rate vs.
// target, within 1%), victim p99 under attack, zero health violations.
//
// `--faults SPEC` drives attacker flap dynamics and switch fault sites, e.g.
//   --faults "stall@vswitch.stall:p=0.001;loss@vswitch.drop:p=0.01"
// `--stream FILE` streams per-window RTT groups (per-tenant quantiles).
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "cli.hpp"
#include "core/rate_control.hpp"
#include "dut/vswitch.hpp"
#include "health/monitor.hpp"
#include "nic/chip.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/rtt_plane.hpp"
#include "telemetry/sampler.hpp"
#include "testbed/scenario.hpp"

namespace mc = moongen::core;
namespace md = moongen::dut;
namespace me = moongen::examples;
namespace mh = moongen::health;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mt = moongen::telemetry;
namespace mtb = moongen::testbed;

namespace {

constexpr const char* kUsage =
    "usage: ddos_isolation [attack_mbit] [shape_mbit] [seconds] [tenants]\n"
    "                      [--json FILE] [--faults SPEC] [--seed N] [--shards N]\n"
    "                      [--stream FILE]\n"
    "  attack_mbit  attacker offered load, burst trains (default 8000)\n"
    "  shape_mbit   attacker tenant's token-bucket rate, 0 = unshaped (default 200)\n"
    "  tenants      number of background tenants (default 2000)\n";

constexpr std::uint32_t kVictimFlow = 1;
constexpr std::uint32_t kAttackFlow = 2;
constexpr std::uint32_t kBackgroundFlow = 3;

mn::Frame tenant_frame(std::uint16_t vid, std::size_t frame_size, std::uint32_t flow,
                       std::uint8_t pcp = 0) {
  mc::UdpTemplateOptions opts;
  opts.frame_size = frame_size;
  opts.vlan = true;
  opts.vlan_vid = vid;
  opts.vlan_pcp = pcp;
  opts.flow = flow;
  return mc::make_udp_frame(opts);
}

void print_group(const char* label, const mt::RttPlane& plane, std::uint32_t flow) {
  const auto h = plane.cumulative_group(flow);
  std::printf("%s %llu frames, p50 %.2f us / p99 %.2f / p99.9 %.2f\n", label,
              static_cast<unsigned long long>(h.total()),
              static_cast<double>(h.percentile(50.0)) / 1e3,
              static_cast<double>(h.percentile(99.0)) / 1e3,
              static_cast<double>(h.percentile(99.9)) / 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = me::parse_cli(argc, argv, kUsage);
  if (!cli) return 2;
  const double attack_mbit = cli->number(0, 8'000.0);
  const double shape_mbit = cli->number(1, 200.0);
  const double seconds = cli->number(2, 0.5);
  const int tenants = static_cast<int>(cli->number(3, 2'000.0));
  if (tenants < 1 || tenants > 3'900) {
    std::fprintf(stderr, "tenants must be in [1, 3900] (12-bit VID space)\n");
    return 2;
  }
  const double victim_mbit = 100.0;
  const double background_mbit = 1'000.0;
  std::printf("ddos-isolation: attacker %.0f Mbit burst trains, %s, %d background tenants, %.1f s\n\n",
              attack_mbit,
              shape_mbit > 0.0 ? "shaped" : "UNSHAPED", tenants, seconds);

  // --- tenant table ---------------------------------------------------------
  // Victim and attacker share vport0 at the same DRR priority: isolation must
  // come from the shaper, not the scheduler. Background tenants go to vport1
  // at a lower class, each with a small token bucket of its own.
  md::VSwitchConfig cfg;
  md::TenantConfig victim;
  victim.vid = 10;
  victim.vport = 0;
  victim.priority = 0;
  victim.flow = kVictimFlow;
  md::TenantConfig attacker;
  attacker.vid = 20;
  attacker.vport = 0;
  attacker.priority = 0;
  attacker.flow = kAttackFlow;
  attacker.rate_mbit = shape_mbit;  // 0 = unlimited
  attacker.burst_bytes = 16'000;
  cfg.tenants = {victim, attacker};
  for (int i = 0; i < tenants; ++i) {
    md::TenantConfig t;
    t.vid = static_cast<std::uint16_t>(100 + i);
    t.vport = 1;
    t.priority = 4;
    t.flow = kBackgroundFlow;
    t.rate_mbit = 2.0 * background_mbit / tenants;  // 2x fair share each
    t.burst_bytes = 4'000;
    cfg.tenants.push_back(t);
  }
  cfg.flood_vport = 1;

  // --- testbed --------------------------------------------------------------
  // Four shard groups: {gen}, {vs_in,vport0,vport1}, {sink0}, {sink1} — so
  // --shards 1/2/4 are all valid partitions of the same virtual timeline.
  auto scenario = mtb::Scenario()
                      .seed(cli->seed)
                      .shards(cli->shards)
                      .faults(cli->faults)
                      .rtt_groups(4)
                      .device(0, mn::intel_x540()).name("gen").with_seed(1)
                      .device(1, mn::intel_x540()).name("vs_in").with_seed(2).rtt_record(false)
                      .device(2, mn::intel_x540()).name("vport0").with_seed(3)
                          .link_mbit(1'000).rtt_record(false)
                      .device(3, mn::intel_x540()).name("sink0").with_seed(4)
                          .link_mbit(1'000).rx_store(false)
                      .device(4, mn::intel_x540()).name("vport1").with_seed(5).rtt_record(false)
                      .device(5, mn::intel_x540()).name("sink1").with_seed(6).rx_store(false)
                      .link(0, 1).with_seed(7)
                      // Egress cables are long enough to give the sharded
                      // runtime usable lookahead past one max frame time
                      // (12.3 us at 1 GbE): conservative-sync channels need
                      // latency > slack or the link cannot cross shards.
                      .link(2, 3).with_seed(8).latency_ns(25'000)
                      .link(4, 5).with_seed(9).latency_ns(5'000)
                      .vswitch(1, {2, 4}, cfg);
  if (cli->has_stream()) scenario.stream_telemetry(cli->stream_path, 100'000'000);
  auto tb = scenario.build();
  mt::MetricRegistry& registry = tb->registry();

  // --- load ----------------------------------------------------------------
  auto& gen = tb->port("gen");
  // Victim: plain CBR, hardware rate control.
  auto& victim_q = gen.tx_queue(0);
  victim_q.set_rate_wire_mbit(victim_mbit);
  auto victim_gen =
      mc::SimLoadGen::hardware_paced(victim_q, tenant_frame(10, 128, kVictimFlow));
  victim_gen->bind_telemetry(registry, "loadgen.victim");

  // Attacker: periodic burst trains of an amplification pattern — a small
  // trigger frame alternating with the large amplified answer. CRC-gap rate
  // control places each burst precisely on the 10 GbE wire.
  const double attack_wire_bytes = ((64.0 + 20.0) + (1'024.0 + 20.0)) / 2.0;
  const double attack_mpps = attack_mbit / (attack_wire_bytes * 8.0);
  auto attack_gen = mc::SimLoadGen::crc_paced(
      gen.tx_queue(1), tenant_frame(20, 64, kAttackFlow),
      std::make_unique<mc::BurstPattern>(attack_mpps, 128,
                                         static_cast<std::size_t>(attack_wire_bytes),
                                         10'000),
      10'000);
  attack_gen->set_templates(
      {tenant_frame(20, 64, kAttackFlow), tenant_frame(20, 1'024, kAttackFlow)});
  attack_gen->bind_telemetry(registry, "loadgen.attacker");

  // Background: Poisson aggregate cycling through every tenant VID.
  const double bg_mpps = background_mbit / ((128.0 + 20.0) * 8.0);
  std::vector<mn::Frame> bg_templates;
  bg_templates.reserve(static_cast<std::size_t>(tenants));
  for (int i = 0; i < tenants; ++i)
    bg_templates.push_back(
        tenant_frame(static_cast<std::uint16_t>(100 + i), 128, kBackgroundFlow));
  auto bg_gen = mc::SimLoadGen::crc_paced(
      gen.tx_queue(2), bg_templates.front(),
      std::make_unique<mc::PoissonPattern>(bg_mpps, 77), 10'000);
  bg_gen->set_templates(std::move(bg_templates));
  bg_gen->bind_telemetry(registry, "loadgen.background");

  // --- health plane ---------------------------------------------------------
  // Default checkers include vswitch frame conservation; a violation at any
  // 1 ms window tick fails the run (CI gates on this line).
  const auto end_ps = static_cast<ms::SimTime>(seconds * 1e12);
  mh::MonitorConfig hc;
  hc.window_ps = 1 * ms::kPsPerMs;
  mh::HealthMonitor mon(*tb, hc);
  mon.start(end_ps);

  mt::SamplerConfig sampler_cfg;
  sampler_cfg.period_ns = 100'000'000;
  mt::Sampler sampler(registry, [&tb] { return tb->now() / 1'000; }, sampler_cfg);
  std::function<void()> sample_tick = [&] {
    tb->publish_engine_telemetry();
    sampler.poll();
    if (tb->now() < end_ps) tb->schedule_global(tb->now() + 100 * ms::kPsPerMs, sample_tick);
  };
  if (cli->has_json()) tb->schedule_global(0, sample_tick);

  tb->run_until(end_ps);

  // --- report (virtual-time values only: identical across shard counts) -----
  auto& vsw = tb->vswitch();
  std::printf("switch:   %llu received, %llu matched, %llu flooded, %llu shaped drops, "
              "%llu queue drops\n",
              static_cast<unsigned long long>(vsw.received()),
              static_cast<unsigned long long>(vsw.matched()),
              static_cast<unsigned long long>(vsw.flooded()),
              static_cast<unsigned long long>(vsw.shaped_drops()),
              static_cast<unsigned long long>(vsw.queue_drops()));

  const auto attacker_books = vsw.tenant_counters(1);
  const double attacker_emitted_mbit =
      static_cast<double>(attacker_books.emitted_wire_bytes) * 8.0 / 1e6 / seconds;
  if (shape_mbit > 0.0) {
    const double err_pct = (attacker_emitted_mbit - shape_mbit) / shape_mbit * 100.0;
    std::printf("shaping:  attacker emitted %.2f Mbit/s against a %.0f Mbit/s bucket "
                "(error %.3f%%)\n",
                attacker_emitted_mbit, shape_mbit, err_pct);
  } else {
    std::printf("shaping:  off — attacker emitted %.2f Mbit/s into the shared vport\n",
                attacker_emitted_mbit);
  }

  const auto& plane = tb->rtt_plane();
  print_group("victim:  ", plane, kVictimFlow);
  print_group("attacker:", plane, kAttackFlow);
  print_group("backgrnd:", plane, kBackgroundFlow);

  if (tb->has_faults()) {
    std::printf("faults:   %llu injected (vswitch drops %llu, stalls %llu)\n",
                static_cast<unsigned long long>(tb->fault_fires()),
                static_cast<unsigned long long>(vsw.fault_drops()),
                static_cast<unsigned long long>(vsw.stalls()));
  }
  // checks_run scales with the shard count (each shard's registry ticks its
  // own checkers), so it goes to stderr; stdout stays byte-identical.
  const auto& violations = mon.violations();
  std::printf("health:   %zu violations\n", violations.size());
  std::fprintf(stderr, "health:   %llu checks run\n",
               static_cast<unsigned long long>(mon.checkers().checks_run()));
  for (const auto& v : violations)
    std::printf("  %s: %s\n", v.checker.c_str(), v.detail.c_str());

  if (cli->has_json()) {
    tb->publish_engine_telemetry();
    registry.shard(0).gauge("attacker.emitted_mbit").set(attacker_emitted_mbit);
    sampler.sample_now();
    if (mt::dump_json_series_to_file(cli->json_path, sampler.series()))
      std::fprintf(stderr, "telemetry series written to %s\n", cli->json_path.c_str());
    else
      std::fprintf(stderr, "failed to write telemetry series to %s\n", cli->json_path.c_str());
  }
  if (cli->has_stream() && tb->stream() != nullptr) {
    std::fprintf(stderr, "telemetry streamed to %s (%llu ticks, %llu rtt windows)\n",
                 cli->stream_path.c_str(),
                 static_cast<unsigned long long>(tb->stream()->ticks()),
                 static_cast<unsigned long long>(tb->stream()->windows_streamed()));
  }
  return violations.empty() ? 0 : 1;
}
