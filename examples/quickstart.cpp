// Quickstart: generate UDP load on one queue and count it on a peer
// device, end to end, in ~60 lines.
//
// This is the "hello world" of the library: the fast-path equivalent of a
// minimal MoonGen userscript. Two virtual devices are connected by a
// loopback cable; a transmit task crafts packets from a pre-filled mempool
// (only the source IP changes per packet, as in the paper's Listing 2) and
// a receive task counts them.
#include <cstdio>
#include <iostream>
#include <thread>

#include "core/device.hpp"
#include "core/field_modifier.hpp"
#include "core/task.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "proto/packet_view.hpp"
#include "stats/counters.hpp"
#include "testbed/scenario.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mp = moongen::proto;
namespace st = moongen::stats;
namespace mtb = moongen::testbed;

namespace {

constexpr std::size_t kPktSize = 60;

void load_slave(mc::TxQueue& queue, const mc::RunState& run) {
  // Pool of pre-filled UDP packets: the transmit loop only touches the
  // source address.
  mb::Mempool pool(2048, [](mb::PktBuf& buf) {
    buf.set_length(kPktSize);
    mp::UdpPacketView view{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = kPktSize;
    opts.eth_dst = mp::MacAddress::parse("10:11:12:13:14:15").value();
    opts.ip_dst = mp::IPv4Address::parse("192.168.1.1").value();
    opts.udp_src = 1234;
    opts.udp_dst = 319;
    view.fill(opts);
  });
  mb::BufArray bufs(pool, 64);
  mc::Tausworthe rng(42);
  const auto base_ip = mp::IPv4Address::parse("10.0.0.1").value();

  st::ManualTxCounter ctr("tx", st::Format::kPlain, st::wall_clock(), &std::cout);
  while (run.running()) {
    bufs.alloc(kPktSize);
    for (auto* buf : bufs) {
      mp::UdpPacketView pkt{buf->bytes()};
      pkt.ip().set_src(base_ip + rng.next() % 255);
    }
    bufs.offload_udp_checksums();
    const auto sent = queue.send(bufs);
    ctr.update_with_size(sent, kPktSize);
  }
  ctr.finalize();
}

void counter_slave(mc::RxQueue& queue, const mc::RunState& run) {
  mb::BufArray bufs(128);
  st::PktRxCounter ctr("rx", st::Format::kPlain, st::wall_clock(), &std::cout);
  while (run.running()) {
    const auto n = queue.recv(bufs);
    for (std::size_t i = 0; i < n; ++i) ctr.count_packet(bufs[i]->length());
    bufs.free_all();
    if (n == 0) std::this_thread::yield();  // be polite on small hosts
  }
  ctr.finalize();
}

}  // namespace

int main() {
  std::printf("quickstart: 3 seconds of UDP load over a loopback pair\n");
  auto tb = mtb::Scenario()
                .fast_device(0, 1, 1)
                .fast_device(1, 1, 1)
                .fast_connect(0, 1)
                .build();
  auto& tx_dev = tb->fast_device(0);
  auto& rx_dev = tb->fast_device(1);
  mc::Device::wait_for_links();

  // The testbed's private run state replaces the process-global flag: two
  // experiments in one process can no longer stop each other.
  mc::RunState& run = tb->run_state();
  mc::TaskSet tasks;
  tasks.launch("load", load_slave, std::ref(tx_dev.get_tx_queue(0)), std::cref(run));
  tasks.launch("counter", counter_slave, std::ref(rx_dev.get_rx_queue(0)), std::cref(run));
  run.stop_after(3.0);
  tasks.wait();
  return 0;
}
