// moongen: run a userscript, exactly like the original CLI.
//
//   moongen <script> [args...]
//
// The script must define master(args...); numeric arguments are passed as
// numbers, everything else as strings (paper Section 4: "MoonGen is
// controlled through its API instead of configuration files" — the
// userscript *is* the configuration).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cli.hpp"
#include "script/bindings.hpp"

namespace me = moongen::examples;
namespace sc = moongen::script;

namespace {

constexpr const char* kUsage =
    "usage: moongen <script> [args...]\n"
    "bundled scripts: examples/scripts/*.lua\n";

}  // namespace

int main(int argc, char** argv) {
  const auto cli = me::parse_cli(argc, argv, kUsage);
  if (!cli) return 2;
  if (cli->positional.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string& script_path = cli->positional[0];
  std::ifstream file(script_path);
  if (!file) {
    std::fprintf(stderr, "cannot open script '%s'\n", script_path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  std::vector<sc::Value> args;
  for (std::size_t i = 1; i < cli->positional.size(); ++i) {
    const std::string& a = cli->positional[i];
    char* end = nullptr;
    const double number = std::strtod(a.c_str(), &end);
    if (end != a.c_str() && *end == '\0') {
      args.emplace_back(number);
    } else {
      args.emplace_back(a);
    }
  }

  try {
    sc::ScriptRuntime runtime(buffer.str());
    runtime.run_master(std::move(args));
    runtime.wait();
  } catch (const sc::ScriptError& e) {
    std::fprintf(stderr, "script error: %s\n", e.what());
    return 1;
  }
  return 0;
}
