// moongen: run a userscript, exactly like the original CLI.
//
//   moongen <script> [args...]
//
// The script must define master(args...); numeric arguments are passed as
// numbers, everything else as strings (paper Section 4: "MoonGen is
// controlled through its API instead of configuration files" — the
// userscript *is* the configuration).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/task.hpp"
#include "script/bindings.hpp"

namespace sc = moongen::script;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <script> [args...]\n"
                 "bundled scripts: examples/scripts/*.lua\n",
                 argv[0]);
    return 2;
  }
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "cannot open script '%s'\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  std::vector<sc::Value> args;
  for (int i = 2; i < argc; ++i) {
    char* end = nullptr;
    const double number = std::strtod(argv[i], &end);
    if (end != argv[i] && *end == '\0') {
      args.emplace_back(number);
    } else {
      args.emplace_back(std::string(argv[i]));
    }
  }

  try {
    sc::ScriptRuntime runtime(buffer.str());
    runtime.run_master(std::move(args));
    runtime.wait();
  } catch (const sc::ScriptError& e) {
    std::fprintf(stderr, "script error: %s\n", e.what());
    return 1;
  }
  return 0;
}
