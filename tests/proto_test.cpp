// Unit tests for the wire-format module (addresses, headers, checksums,
// CRC32, packet views, classification).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "proto/checksum.hpp"
#include "proto/crc32.hpp"
#include "proto/headers.hpp"
#include "proto/ip_address.hpp"
#include "proto/mac_address.hpp"
#include "proto/packet_view.hpp"

namespace mp = moongen::proto;

// ---------------------------------------------------------------------------
// MAC addresses
// ---------------------------------------------------------------------------

TEST(MacAddress, ParseValid) {
  auto mac = mp::MacAddress::parse("10:11:12:13:14:15");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_uint64(), 0x101112131415ull);
}

TEST(MacAddress, ParseUppercaseAndDashes) {
  auto mac = mp::MacAddress::parse("AA-BB-CC-DD-EE-FF");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(mp::MacAddress::parse("").has_value());
  EXPECT_FALSE(mp::MacAddress::parse("10:11:12:13:14").has_value());
  EXPECT_FALSE(mp::MacAddress::parse("10:11:12:13:14:15:16").has_value());
  EXPECT_FALSE(mp::MacAddress::parse("gg:11:12:13:14:15").has_value());
  EXPECT_FALSE(mp::MacAddress::parse("10:11:12:13:14:15 ").has_value());
  EXPECT_FALSE(mp::MacAddress::parse("101112131415").has_value());
}

TEST(MacAddress, RoundTrip) {
  const mp::MacAddress mac = mp::MacAddress::from_uint64(0x0123456789abull);
  auto parsed = mp::MacAddress::parse(mac.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, mac);
}

TEST(MacAddress, BroadcastAndMulticastPredicates) {
  EXPECT_TRUE(mp::kBroadcastMac.is_broadcast());
  EXPECT_TRUE(mp::kBroadcastMac.is_multicast());
  const auto unicast = mp::MacAddress::from_uint64(0x101112131415ull);
  EXPECT_FALSE(unicast.is_broadcast());
  EXPECT_FALSE(unicast.is_multicast());
  const auto mcast = mp::MacAddress::from_uint64(0x01005e000001ull);
  EXPECT_TRUE(mcast.is_multicast());
}

// ---------------------------------------------------------------------------
// IP addresses
// ---------------------------------------------------------------------------

TEST(IPv4Address, ParseValid) {
  auto ip = mp::IPv4Address::parse("192.168.1.1");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->value, 0xC0A80101u);
  EXPECT_EQ(ip->to_string(), "192.168.1.1");
}

TEST(IPv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(mp::IPv4Address::parse("256.0.0.1").has_value());
  EXPECT_FALSE(mp::IPv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(mp::IPv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(mp::IPv4Address::parse("1..3.4").has_value());
  EXPECT_FALSE(mp::IPv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(mp::IPv4Address::parse("").has_value());
  EXPECT_FALSE(mp::IPv4Address::parse("1.2.3.4 ").has_value());
}

TEST(IPv4Address, ArithmeticMatchesMoonGenIdiom) {
  // Listing 2: pkt.ip.src:set(baseIP + math.random(255) - 1)
  const auto base = mp::IPv4Address::parse("10.0.0.1").value();
  EXPECT_EQ((base + 254).to_string(), "10.0.0.255");
  EXPECT_EQ((base + 255).to_string(), "10.0.1.0");  // carries into next octet
  EXPECT_EQ((base - 2).to_string(), "9.255.255.255");
}

TEST(IPv4Address, NetworkOrderRoundTrip) {
  const auto ip = mp::IPv4Address{192, 168, 0, 42};
  EXPECT_EQ(mp::IPv4Address::from_network(ip.to_network()), ip);
}

TEST(IPv6Address, ParseFull) {
  auto ip = mp::IPv6Address::parse("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->bytes[0], 0x20);
  EXPECT_EQ(ip->bytes[1], 0x01);
  EXPECT_EQ(ip->bytes[15], 0x01);
}

TEST(IPv6Address, ParseCompressed) {
  auto a = mp::IPv6Address::parse("2001:db8::1");
  auto b = mp::IPv6Address::parse("2001:db8:0:0:0:0:0:1");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);

  auto loopback = mp::IPv6Address::parse("::1");
  ASSERT_TRUE(loopback.has_value());
  EXPECT_EQ(loopback->bytes[15], 1);

  auto zero = mp::IPv6Address::parse("::");
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(*zero, mp::IPv6Address{});
}

TEST(IPv6Address, ParseRejectsMalformed) {
  EXPECT_FALSE(mp::IPv6Address::parse("2001:db8::1::2").has_value());
  EXPECT_FALSE(mp::IPv6Address::parse("1:2:3:4:5:6:7").has_value());
  EXPECT_FALSE(mp::IPv6Address::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(mp::IPv6Address::parse("12345::1").has_value());
  EXPECT_FALSE(mp::IPv6Address::parse("xyz::1").has_value());
}

TEST(IPv6Address, PlusCarries) {
  auto ip = mp::IPv6Address::parse("2001:db8::ffff:ffff:ffff:ffff").value();
  const auto bumped = ip.plus(1);
  // Low 64 bits wrap to zero; high 64 bits unchanged (documented behaviour).
  for (int i = 8; i < 16; ++i) EXPECT_EQ(bumped.bytes[static_cast<std::size_t>(i)], 0);
  EXPECT_EQ(bumped.bytes[0], 0x20);
}

// ---------------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------------

TEST(Checksum, Rfc1071ReferenceVector) {
  // Classic example from RFC 1071 section 3.
  const std::array<std::uint8_t, 8> data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  const std::uint32_t partial = mp::checksum_partial(data);
  EXPECT_EQ(partial, 0x2ddf0u);
  // finish folds and complements: ~ (0xddf0 + 0x2) = ~0xddf2 = 0x220d.
  EXPECT_EQ(mp::checksum_finish(partial), mp::hton16(0x220d));
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::array<std::uint8_t, 3> data = {0x01, 0x02, 0x03};
  EXPECT_EQ(mp::checksum_partial(data), 0x0102u + 0x0300u);
}

TEST(Checksum, Ipv4HeaderComputeAndVerify) {
  mp::Ipv4Header ip{};
  ip.set_defaults();
  ip.protocol = static_cast<std::uint8_t>(mp::IpProtocol::kUdp);
  ip.set_total_length(110);
  ip.set_src(mp::IPv4Address{10, 0, 0, 1});
  ip.set_dst(mp::IPv4Address{192, 168, 1, 1});
  mp::update_ipv4_checksum(ip);
  EXPECT_NE(ip.header_checksum_be, 0);
  EXPECT_TRUE(mp::verify_ipv4_checksum(ip));
  ip.ttl = 63;  // any mutation must break the checksum
  EXPECT_FALSE(mp::verify_ipv4_checksum(ip));
}

TEST(Checksum, KnownIpv4HeaderVector) {
  // Wikipedia's worked IPv4 checksum example: 45 00 00 73 00 00 40 00 40 11
  // b8 61 c0 a8 00 01 c0 a8 00 c7 -> checksum 0xb861.
  mp::Ipv4Header ip{};
  ip.version_ihl = 0x45;
  ip.dscp_ecn = 0;
  ip.set_total_length(0x73);
  ip.identification_be = 0;
  ip.flags_fragment_be = mp::hton16(0x4000);
  ip.ttl = 0x40;
  ip.protocol = 0x11;
  ip.set_src(mp::IPv4Address{192, 168, 0, 1});
  ip.set_dst(mp::IPv4Address{192, 168, 0, 199});
  mp::update_ipv4_checksum(ip);
  EXPECT_EQ(mp::ntoh16(ip.header_checksum_be), 0xb861);
}

TEST(Checksum, UdpChecksumVerifiesToZeroFold) {
  // Build a UDP packet, compute its checksum in software, then check that
  // summing the whole L4 segment plus pseudo-header folds to zero.
  std::vector<std::uint8_t> frame(64, 0);
  mp::UdpPacketView view{{frame.data(), frame.size()}};
  mp::UdpFillOptions opts;
  opts.packet_length = 60;
  view.fill(opts);
  auto l4 = view.l4_bytes();
  view.udp().checksum_be = mp::udp_checksum_ipv4(view.ip(), l4);
  std::uint32_t sum = mp::ipv4_pseudo_header_sum(view.ip(), static_cast<std::uint16_t>(l4.size()));
  sum = mp::checksum_partial(l4, sum);
  EXPECT_EQ(mp::checksum_finish(sum), 0);
}

// ---------------------------------------------------------------------------
// CRC32 / FCS
// ---------------------------------------------------------------------------

TEST(Crc32, CheckValue) {
  // The standard CRC-32 check value: CRC("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(mp::crc32({reinterpret_cast<const std::uint8_t*>(s), 9}), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(1500);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7 + 3);
  std::uint32_t crc = 0xFFFFFFFFu;
  crc = mp::crc32_update(crc, {data.data(), 100});
  crc = mp::crc32_update(crc, {data.data() + 100, data.size() - 100});
  EXPECT_EQ(~crc, mp::crc32(data));
}

TEST(Crc32, FcsRoundTrip) {
  std::vector<std::uint8_t> frame(64);
  for (std::size_t i = 0; i < frame.size(); ++i) frame[i] = static_cast<std::uint8_t>(i);
  mp::write_fcs(frame);
  EXPECT_TRUE(mp::verify_fcs(frame));
  frame[10] ^= 0x01;  // single bit flip must be detected
  EXPECT_FALSE(mp::verify_fcs(frame));
}

TEST(Crc32, VerifyRejectsTinyFrames) {
  std::vector<std::uint8_t> tiny(4, 0);
  EXPECT_FALSE(mp::verify_fcs(tiny));
}

// ---------------------------------------------------------------------------
// Packet views and fill
// ---------------------------------------------------------------------------

TEST(PacketView, UdpFillProducesConsistentLengths) {
  std::vector<std::uint8_t> frame(128, 0xAB);
  mp::UdpPacketView view{{frame.data(), 124}};
  mp::UdpFillOptions opts;
  opts.packet_length = 124;  // PKT_SIZE from Listing 2
  opts.eth_src = mp::MacAddress::from_uint64(0x020000000001);
  opts.eth_dst = mp::MacAddress::parse("10:11:12:13:14:15").value();
  opts.ip_dst = mp::IPv4Address::parse("192.168.1.1").value();
  opts.udp_src = 1234;
  opts.udp_dst = 42;
  view.fill(opts);

  EXPECT_EQ(view.eth().ether_type(), mp::EtherType::kIPv4);
  EXPECT_EQ(view.ip().total_length(), 124 - 14);
  EXPECT_EQ(view.ip().ip_protocol(), mp::IpProtocol::kUdp);
  EXPECT_TRUE(mp::verify_ipv4_checksum(view.ip()));
  EXPECT_EQ(view.udp().length(), 124 - 14 - 20);
  EXPECT_EQ(view.udp().src_port(), 1234);
  EXPECT_EQ(view.udp().dst_port(), 42);
}

TEST(PacketView, TcpFillDefaults) {
  std::vector<std::uint8_t> frame(64, 0);
  mp::TcpPacketView view{{frame.data(), 60}};
  mp::TcpFillOptions opts;
  opts.packet_length = 60;
  opts.tcp_seq = 12345;
  view.fill(opts);
  EXPECT_EQ(view.tcp().header_length(), 20u);
  EXPECT_EQ(view.tcp().seq(), 12345u);
  EXPECT_EQ(view.tcp().flags, mp::TcpHeader::kAck);
  EXPECT_TRUE(mp::verify_ipv4_checksum(view.ip()));
}

TEST(PacketView, Udp6Fill) {
  std::vector<std::uint8_t> frame(80, 0);
  mp::Udp6PacketView view{{frame.data(), 80}};
  view.fill(80, mp::MacAddress::from_uint64(1), mp::MacAddress::from_uint64(2),
            mp::IPv6Address::parse("2001:db8::1").value(),
            mp::IPv6Address::parse("2001:db8::2").value(), 1000, 2000);
  EXPECT_EQ(view.eth().ether_type(), mp::EtherType::kIPv6);
  EXPECT_EQ(view.ip6().version(), 6);
  EXPECT_EQ(view.ip6().payload_length(), 80 - 14 - 40);
  EXPECT_EQ(view.udp().length(), view.ip6().payload_length());
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

TEST(Classify, UdpPacket) {
  std::vector<std::uint8_t> frame(64, 0);
  mp::UdpPacketView view{{frame.data(), 60}};
  mp::UdpFillOptions opts;
  opts.udp_dst = 319;
  view.fill(opts);
  auto pc = mp::classify({frame.data(), 60});
  ASSERT_TRUE(pc.has_value());
  EXPECT_EQ(pc->ether_type, mp::EtherType::kIPv4);
  EXPECT_TRUE(pc->is_udp);
  EXPECT_EQ(pc->udp_dst_port, 319);
  EXPECT_EQ(pc->l4_offset, 34u);
  EXPECT_EQ(pc->l7_offset, 42u);
}

TEST(Classify, PtpOverEthernet) {
  std::vector<std::uint8_t> frame(64, 0);
  mp::EthPacketView view{{frame.data(), 60}};
  view.eth().set_ether_type(mp::EtherType::kPtp);
  auto pc = mp::classify({frame.data(), 60});
  ASSERT_TRUE(pc.has_value());
  EXPECT_TRUE(pc->is_ptp_ethernet);
}

TEST(Classify, VlanTaggedIpv4) {
  std::vector<std::uint8_t> frame(64, 0);
  auto* eth = reinterpret_cast<mp::EthernetHeader*>(frame.data());
  eth->set_ether_type(mp::EtherType::kVlan);
  auto* vlan = reinterpret_cast<mp::VlanTag*>(frame.data() + 14);
  vlan->set(42, 3);
  vlan->ether_type_be = mp::hton16(0x0800);
  auto* ip = reinterpret_cast<mp::Ipv4Header*>(frame.data() + 18);
  ip->set_defaults();
  ip->protocol = static_cast<std::uint8_t>(mp::IpProtocol::kTcp);
  auto pc = mp::classify({frame.data(), 60});
  ASSERT_TRUE(pc.has_value());
  EXPECT_TRUE(pc->has_vlan);
  EXPECT_EQ(pc->ether_type, mp::EtherType::kIPv4);
  EXPECT_EQ(pc->l4_protocol, mp::IpProtocol::kTcp);
  EXPECT_EQ(pc->l3_offset, 18u);
}

TEST(Classify, SingleTagRecordsOuterVidPcp) {
  std::vector<std::uint8_t> frame(64, 0);
  auto* eth = reinterpret_cast<mp::EthernetHeader*>(frame.data());
  eth->set_ether_type(mp::EtherType::kVlan);
  auto* vlan = reinterpret_cast<mp::VlanTag*>(frame.data() + 14);
  vlan->set(42, 3);
  vlan->ether_type_be = mp::hton16(0x0800);
  auto* ip = reinterpret_cast<mp::Ipv4Header*>(frame.data() + 18);
  ip->set_defaults();
  auto pc = mp::classify({frame.data(), 60});
  ASSERT_TRUE(pc.has_value());
  EXPECT_EQ(pc->vlan_tags, 1);
  EXPECT_EQ(pc->outer_vid, 42);
  EXPECT_EQ(pc->outer_pcp, 3);
  EXPECT_EQ(pc->inner_vid, 0);
}

TEST(Classify, QinQStackedTags) {
  // 0x88A8 S-tag (vid 100, pcp 5) around a 0x8100 C-tag (vid 7, pcp 2)
  // around IPv4/TCP. Both tags must be recorded and L3 must land after
  // the inner tag, not on it.
  std::vector<std::uint8_t> frame(64, 0);
  auto* eth = reinterpret_cast<mp::EthernetHeader*>(frame.data());
  eth->set_ether_type(mp::EtherType::kQinQ);
  auto* s_tag = reinterpret_cast<mp::VlanTag*>(frame.data() + 14);
  s_tag->set(100, 5);
  s_tag->ether_type_be = mp::hton16(0x8100);
  auto* c_tag = reinterpret_cast<mp::VlanTag*>(frame.data() + 18);
  c_tag->set(7, 2);
  c_tag->ether_type_be = mp::hton16(0x0800);
  auto* ip = reinterpret_cast<mp::Ipv4Header*>(frame.data() + 22);
  ip->set_defaults();
  ip->protocol = static_cast<std::uint8_t>(mp::IpProtocol::kTcp);
  auto pc = mp::classify({frame.data(), 60});
  ASSERT_TRUE(pc.has_value());
  EXPECT_TRUE(pc->has_vlan);
  EXPECT_EQ(pc->vlan_tags, 2);
  EXPECT_EQ(pc->outer_vid, 100);
  EXPECT_EQ(pc->outer_pcp, 5);
  EXPECT_EQ(pc->inner_vid, 7);
  EXPECT_EQ(pc->inner_pcp, 2);
  EXPECT_EQ(pc->ether_type, mp::EtherType::kIPv4);
  EXPECT_EQ(pc->l3_offset, 22u);
  EXPECT_EQ(pc->l4_protocol, mp::IpProtocol::kTcp);
}

TEST(Classify, DoubleCTagStackedTags) {
  // Two 0x8100 tags (legacy QinQ) are also accepted.
  std::vector<std::uint8_t> frame(64, 0);
  auto* eth = reinterpret_cast<mp::EthernetHeader*>(frame.data());
  eth->set_ether_type(mp::EtherType::kVlan);
  auto* outer = reinterpret_cast<mp::VlanTag*>(frame.data() + 14);
  outer->set(200, 1);
  outer->ether_type_be = mp::hton16(0x8100);
  auto* inner = reinterpret_cast<mp::VlanTag*>(frame.data() + 18);
  inner->set(9, 6);
  inner->ether_type_be = mp::hton16(0x0800);
  auto* ip = reinterpret_cast<mp::Ipv4Header*>(frame.data() + 22);
  ip->set_defaults();
  auto pc = mp::classify({frame.data(), 60});
  ASSERT_TRUE(pc.has_value());
  EXPECT_EQ(pc->vlan_tags, 2);
  EXPECT_EQ(pc->outer_vid, 200);
  EXPECT_EQ(pc->inner_vid, 9);
  EXPECT_EQ(pc->l3_offset, 22u);
}

TEST(Classify, TruncatedVlanTagRejected) {
  // EtherType says VLAN but the frame ends mid-tag.
  std::vector<std::uint8_t> frame(16, 0);
  auto* eth = reinterpret_cast<mp::EthernetHeader*>(frame.data());
  eth->set_ether_type(mp::EtherType::kVlan);
  EXPECT_FALSE(mp::classify({frame.data(), frame.size()}).has_value());
}

TEST(Classify, TruncatedInnerTagRejected) {
  // Outer tag complete and pointing at an inner tag that is cut short.
  std::vector<std::uint8_t> frame(20, 0);
  auto* eth = reinterpret_cast<mp::EthernetHeader*>(frame.data());
  eth->set_ether_type(mp::EtherType::kQinQ);
  auto* s_tag = reinterpret_cast<mp::VlanTag*>(frame.data() + 14);
  s_tag->set(1, 0);
  s_tag->ether_type_be = mp::hton16(0x8100);
  EXPECT_FALSE(mp::classify({frame.data(), frame.size()}).has_value());
}

TEST(Classify, InnerSTagRejected) {
  // 0x88A8 must be outermost: 0x8100 wrapping 0x88A8 is malformed.
  std::vector<std::uint8_t> frame(64, 0);
  auto* eth = reinterpret_cast<mp::EthernetHeader*>(frame.data());
  eth->set_ether_type(mp::EtherType::kVlan);
  auto* outer = reinterpret_cast<mp::VlanTag*>(frame.data() + 14);
  outer->set(1, 0);
  outer->ether_type_be = mp::hton16(0x88A8);
  EXPECT_FALSE(mp::classify({frame.data(), 60}).has_value());
}

TEST(Classify, TripleTagRejected) {
  std::vector<std::uint8_t> frame(64, 0);
  auto* eth = reinterpret_cast<mp::EthernetHeader*>(frame.data());
  eth->set_ether_type(mp::EtherType::kVlan);
  for (int i = 0; i < 3; ++i) {
    auto* tag = reinterpret_cast<mp::VlanTag*>(frame.data() + 14 + 4 * i);
    tag->set(static_cast<std::uint16_t>(i + 1), 0);
    tag->ether_type_be = mp::hton16(i < 2 ? 0x8100 : 0x0800);
  }
  EXPECT_FALSE(mp::classify({frame.data(), 60}).has_value());
}

TEST(Classify, TruncatedFrameRejected) {
  std::vector<std::uint8_t> frame(10, 0);
  EXPECT_FALSE(mp::classify({frame.data(), frame.size()}).has_value());
}

TEST(Classify, TruncatedIpHeaderRejected) {
  std::vector<std::uint8_t> frame(20, 0);
  auto* eth = reinterpret_cast<mp::EthernetHeader*>(frame.data());
  eth->set_ether_type(mp::EtherType::kIPv4);
  EXPECT_FALSE(mp::classify({frame.data(), frame.size()}).has_value());
}

TEST(Classify, UnknownEtherTypePassesThrough) {
  std::vector<std::uint8_t> frame(64, 0);
  auto* eth = reinterpret_cast<mp::EthernetHeader*>(frame.data());
  eth->ether_type_be = mp::hton16(0x1234);
  auto pc = mp::classify({frame.data(), 60});
  ASSERT_TRUE(pc.has_value());
  EXPECT_FALSE(pc->is_udp);
  EXPECT_FALSE(pc->is_ptp_ethernet);
  EXPECT_FALSE(pc->l4_protocol.has_value());
}

// ---------------------------------------------------------------------------
// VLAN / header-layout invariants
// ---------------------------------------------------------------------------

TEST(Headers, VlanTagFields) {
  mp::VlanTag tag{};
  tag.set(0xfff, 7, true);
  EXPECT_EQ(tag.vid(), 0xfff);
  EXPECT_EQ(tag.pcp(), 7);
  tag.set(1, 0);
  EXPECT_EQ(tag.vid(), 1);
  EXPECT_EQ(tag.pcp(), 0);
}

TEST(Headers, PtpHeaderTypeAndVersion) {
  mp::PtpHeader ptp{};
  ptp.set_message_type(mp::PtpMessageType::kDelayReq);
  ptp.set_version(mp::PtpHeader::kVersion2);
  ptp.set_sequence_id(777);
  EXPECT_EQ(ptp.message_type(), mp::PtpMessageType::kDelayReq);
  EXPECT_EQ(ptp.version(), 2);
  EXPECT_EQ(ptp.sequence_id(), 777);
}

TEST(Headers, ArpRequestLayout) {
  mp::ArpHeader arp{};
  arp.set_ethernet_ipv4_defaults();
  arp.oper_be = mp::hton16(mp::ArpHeader::kOperRequest);
  arp.set_sender_ip(mp::IPv4Address{10, 0, 0, 1});
  arp.set_target_ip(mp::IPv4Address{10, 0, 0, 2});
  EXPECT_EQ(arp.oper(), mp::ArpHeader::kOperRequest);
  EXPECT_EQ(arp.sender_ip().to_string(), "10.0.0.1");
  EXPECT_EQ(arp.target_ip().to_string(), "10.0.0.2");
}

TEST(Headers, WireSizeArithmetic) {
  // 64 B minimum frame occupies 84 B on the wire -> 14.88 Mpps at 10 GbE.
  EXPECT_EQ(mp::wire_size(64), 84u);
  const double mpps = 10e9 / (84 * 8) / 1e6;
  EXPECT_NEAR(mpps, 14.88, 0.01);
}
