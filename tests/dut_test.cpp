// Tests for the device-under-test forwarder model (NAPI + dynamic ITR +
// single-core datapath), validating the mechanisms behind Figures 7/10/11.
#include <gtest/gtest.h>

#include <memory>

#include "core/rate_control.hpp"
#include "dut/forwarder.hpp"
#include "sim_testbed.hpp"
#include "wire/link.hpp"

namespace mc = moongen::core;
namespace md = moongen::dut;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mw = moongen::wire;

namespace {

/// Generator -> DuT -> sink receiver testbed (the Open vSwitch setup of
/// Sections 7.4 / 8.2 / 8.3).
struct DutBed {
  explicit DutBed(md::ForwarderConfig cfg = {})
      : fwd(events, dut_in, 0, dut_out, 0, cfg) {
    gen_tx.set_tx_sink(&to_dut);
    dut_out.set_tx_sink(&to_sink);
    sink.rx_queue(0).set_ring_capacity(10'000'000);
  }

  ms::EventQueue events;
  mn::Port gen_tx{events, mn::intel_x540(), 10'000, 81};
  mn::Port dut_in{events, mn::intel_x540(), 10'000, 82};
  mn::Port dut_out{events, mn::intel_x540(), 10'000, 83};
  mn::Port sink{events, mn::intel_x540(), 10'000, 84};
  mw::Link to_dut{gen_tx, dut_in, mw::cat5e_10gbaset(2.0), 85};
  mw::Link to_sink{dut_out, sink, mw::cat5e_10gbaset(2.0), 86};
  md::Forwarder fwd;
};

mn::Frame load_frame() {
  mc::UdpTemplateOptions opts;
  opts.frame_size = 96;
  opts.ptp_payload = true;
  opts.ptp_message_type = 5;
  return mc::make_udp_frame(opts);
}

}  // namespace

TEST(Forwarder, ForwardsEverythingBelowCapacity) {
  DutBed bed;
  auto& q = bed.gen_tx.tx_queue(0);
  q.set_rate_mpps(0.5, 100);
  auto gen = mc::SimLoadGen::hardware_paced(q, load_frame());
  bed.events.run_until(20 * ms::kPsPerMs);
  // 0.5 Mpps over 20 ms = 10'000 packets; all must reach the sink.
  EXPECT_NEAR(static_cast<double>(bed.sink.stats().rx_packets), 10'000.0, 100.0);
  EXPECT_EQ(bed.dut_in.stats().rx_ring_drops, 0u);
}

TEST(Forwarder, SaturatesAroundTwoMpps) {
  DutBed bed;
  auto& q = bed.gen_tx.tx_queue(0);
  q.set_rate_mpps(4.0, 100);  // far above DuT capacity
  auto gen = mc::SimLoadGen::hardware_paced(q, load_frame());
  bed.events.run_until(50 * ms::kPsPerMs);
  const double mpps = static_cast<double>(bed.fwd.forwarded()) / 50'000.0;
  EXPECT_NEAR(mpps, 2.0, 0.1);  // the 1650-cycle datapath at 3.3 GHz
  EXPECT_GT(bed.dut_in.stats().rx_ring_drops, 0u);  // overload drops
}

TEST(Forwarder, InterruptRateCollapsesUnderMicroBursts) {
  // Figure 7: bursty traffic triggers the interrupt moderation and yields
  // a much lower interrupt rate than smooth traffic of the same rate.
  const double mpps = 0.5;
  std::uint64_t smooth_ints, bursty_ints;
  {
    DutBed bed;
    auto& q = bed.gen_tx.tx_queue(0);
    q.set_rate_mpps(mpps, 100);
    auto gen = mc::SimLoadGen::hardware_paced(q, load_frame());
    bed.events.run_until(100 * ms::kPsPerMs);
    smooth_ints = bed.fwd.interrupts();
  }
  {
    DutBed bed;
    auto& q = bed.gen_tx.tx_queue(0);
    // 64-packet micro-bursts at the same average rate (CRC-paced pattern).
    auto gen = mc::SimLoadGen::crc_paced(
        q, load_frame(), std::make_unique<mc::BurstPattern>(mpps, 64, 120, 10'000), 10'000);
    bed.events.run_until(100 * ms::kPsPerMs);
    bursty_ints = bed.fwd.interrupts();
  }
  EXPECT_GT(smooth_ints, 3 * bursty_ints);
}

TEST(Forwarder, PollingModeSuppressesInterruptsAtOverload) {
  DutBed bed;
  auto& q = bed.gen_tx.tx_queue(0);
  q.set_rate_mpps(4.0, 100);
  auto gen = mc::SimLoadGen::hardware_paced(q, load_frame());
  bed.events.run_until(100 * ms::kPsPerMs);
  // At overload NAPI stays in polling mode: interrupt rate is tiny
  // compared to the packet rate.
  EXPECT_LT(bed.fwd.interrupts(), bed.fwd.forwarded() / 100);
}

TEST(Forwarder, InternalLatencyBoundedByRingAtOverload) {
  DutBed bed;
  auto& q = bed.gen_tx.tx_queue(0);
  q.set_rate_mpps(4.0, 100);
  auto gen = mc::SimLoadGen::hardware_paced(q, load_frame());
  bed.events.run_until(100 * ms::kPsPerMs);
  // Ring of 4096 packets at ~0.5 us service: worst-case residence ~2 ms.
  EXPECT_GT(bed.fwd.internal_latency_ns().max(), 1.5e6);
  EXPECT_LT(bed.fwd.internal_latency_ns().max(), 3.0e6);
}

TEST(Forwarder, LatencyLowUnderLightLoad) {
  DutBed bed;
  auto& q = bed.gen_tx.tx_queue(0);
  q.set_rate_mpps(0.2, 100);
  auto gen = mc::SimLoadGen::hardware_paced(q, load_frame());
  bed.events.run_until(50 * ms::kPsPerMs);
  // Interrupt wait + pipeline: tens of microseconds at most.
  EXPECT_LT(bed.fwd.internal_latency_ns().mean(), 40e3);
  EXPECT_GT(bed.fwd.internal_latency_ns().mean(), 5e3);
}

TEST(Forwarder, ThroughputIndependentOfPattern) {
  // Section 8.3: the overall achieved throughput is the same regardless of
  // the traffic pattern (CBR vs Poisson) at overload.
  double mpps_cbr, mpps_poisson;
  {
    DutBed bed;
    auto& q = bed.gen_tx.tx_queue(0);
    q.set_rate_mpps(3.0, 100);
    auto gen = mc::SimLoadGen::hardware_paced(q, load_frame());
    bed.events.run_until(50 * ms::kPsPerMs);
    mpps_cbr = static_cast<double>(bed.fwd.forwarded()) / 50'000.0;
  }
  {
    DutBed bed;
    auto& q = bed.gen_tx.tx_queue(0);
    auto gen = mc::SimLoadGen::crc_paced(q, load_frame(),
                                         std::make_unique<mc::PoissonPattern>(3.0, 999), 10'000);
    bed.events.run_until(50 * ms::kPsPerMs);
    mpps_poisson = static_cast<double>(bed.fwd.forwarded()) / 50'000.0;
  }
  EXPECT_NEAR(mpps_cbr, mpps_poisson, 0.05);
}
