// Tests of the parallel simulation runtime: the SPSC frame channel, the
// conservative-window protocol, and the headline determinism contract —
// a sharded run of the paper's fig10/fig11 scenarios is indistinguishable
// from the sequential engine for a fixed seed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "nic/chip.hpp"
#include "sim/parallel.hpp"
#include "sim/spsc_channel.hpp"
#include "telemetry/registry.hpp"
#include "testbed/scenario.hpp"

namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mt = moongen::telemetry;
namespace mtb = moongen::testbed;

// ---------------------------------------------------------------------------
// SpscChannel
// ---------------------------------------------------------------------------

TEST(SpscChannel, FifoOrderSingleThread) {
  ms::SpscChannel<int> ch;
  for (int i = 0; i < 100; ++i) ch.push(i);
  int v = -1;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ch.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ch.try_pop(v));
}

TEST(SpscChannel, SurvivesChunkBoundaries) {
  // Chunk size is 256: push far past several boundaries, interleaved with
  // partial drains, and verify nothing is lost or reordered.
  ms::SpscChannel<std::uint64_t> ch;
  std::uint64_t next_push = 0, next_pop = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 100; ++i) ch.push(next_push++);
    std::uint64_t v;
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(ch.try_pop(v));
      EXPECT_EQ(v, next_pop++);
    }
  }
  EXPECT_EQ(ch.pushed(), next_push);
  EXPECT_EQ(ch.popped(), next_pop);
}

TEST(SpscChannel, TwoThreadStress) {
  constexpr std::uint64_t kItems = 1'000'000;
  ms::SpscChannel<std::uint64_t> ch;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) ch.push(i);
  });
  std::uint64_t expected = 0;
  std::uint64_t v;
  while (expected < kItems) {
    if (ch.try_pop(v)) {
      ASSERT_EQ(v, expected);  // FIFO, nothing lost, nothing duplicated
      ++expected;
    }
  }
  producer.join();
  EXPECT_FALSE(ch.try_pop(v));
}

// ---------------------------------------------------------------------------
// ParallelRuntime plumbing
// ---------------------------------------------------------------------------

TEST(ParallelRuntime, GlobalEventsRunInTimeThenFifoOrder) {
  ms::ParallelRuntime rt(2);
  std::vector<int> order;
  rt.schedule_global(2'000, [&] { order.push_back(3); });
  rt.schedule_global(1'000, [&] { order.push_back(1); });
  rt.schedule_global(1'000, [&] { order.push_back(2); });  // same time: FIFO
  rt.run_until(10'000);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(rt.now(), 10'000u);
}

TEST(ParallelRuntime, RejectsRunIntoPast) {
  ms::ParallelRuntime rt(1);
  rt.run_until(5'000);
  EXPECT_THROW(rt.run_until(1'000), std::logic_error);
}

TEST(ParallelRuntime, RejectsBadChannels) {
  ms::ParallelRuntime rt(2);
  EXPECT_THROW(rt.add_channel(0, 0, 1'000, [] {}, [] {}), std::invalid_argument);
  EXPECT_THROW(rt.add_channel(0, 1, 0, [] {}, [] {}), std::invalid_argument);
  EXPECT_THROW(rt.add_channel(0, 7, 1'000, [] {}, [] {}), std::out_of_range);
}

TEST(ParallelRuntime, WindowIsMinChannelLookahead) {
  ms::ParallelRuntime rt(2);
  EXPECT_EQ(rt.window_ps(), UINT64_MAX);
  rt.add_channel(0, 1, 5'000, [] {}, [] {});
  rt.add_channel(1, 0, 3'000, [] {}, [] {});
  EXPECT_EQ(rt.window_ps(), 3'000u);
}

TEST(ParallelRuntime, WorkerExceptionPropagates) {
  ms::ParallelRuntime rt(2);
  rt.add_channel(0, 1, 1'000, [] { throw std::runtime_error("drain boom"); }, [] {});
  rt.shard(0).schedule_at(500, [] {});
  EXPECT_THROW(rt.run_until(10'000), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Sequential/parallel equivalence on the paper's scenarios
// ---------------------------------------------------------------------------

namespace {

struct RunResult {
  std::uint64_t gen_tx_packets = 0;
  std::uint64_t gen_tx_bytes = 0;
  std::uint64_t sink_rx_packets = 0;
  std::uint64_t sink_rx_bytes = 0;
  std::uint64_t dut_crc_errors = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t ts_samples = 0;
  std::uint64_t fault_fires = 0;
  std::uint64_t cross_shard = 0;
  std::size_t shards = 0;
  std::vector<std::uint64_t> latency_bins;
  double latency_min = 0;
  double latency_max = 0;

  bool operator==(const RunResult& o) const {
    // cross_shard/shards intentionally excluded: they describe the runtime
    // layout, not the simulated physics.
    return gen_tx_packets == o.gen_tx_packets && gen_tx_bytes == o.gen_tx_bytes &&
           sink_rx_packets == o.sink_rx_packets && sink_rx_bytes == o.sink_rx_bytes &&
           dut_crc_errors == o.dut_crc_errors && forwarded == o.forwarded &&
           interrupts == o.interrupts && ts_samples == o.ts_samples &&
           fault_fires == o.fault_fires && latency_bins == o.latency_bins &&
           latency_min == o.latency_min && latency_max == o.latency_max;
  }
};

// The fig10/fig11 testbed (l2_load_latency) at a given shard count.
RunResult run_fig10(int shards, bool poisson, const std::string& faults) {
  auto tb = mtb::Scenario()
                .seed(1)
                .shards(shards)
                .faults(faults)
                .telemetry(false)
                .device(0, mn::intel_x540()).name("gen_tx").with_seed(1)
                .device(1, mn::intel_x540()).name("dut_in").with_seed(2)
                .device(2, mn::intel_x540()).name("dut_out").with_seed(3)
                .device(3, mn::intel_x540()).name("sink").with_seed(4).rx_store(false)
                .link(0, 1).with_seed(5)
                .link(2, 3).with_seed(6)
                .forwarder(1, 2)
                .couple(0, 3)
                .build();

  mc::UdpTemplateOptions bg;
  bg.frame_size = 96;
  bg.ptp_payload = true;
  bg.ptp_message_type = 5;
  auto& queue = tb->port("gen_tx").tx_queue(0);
  std::unique_ptr<mc::SimLoadGen> gen;
  if (poisson) {
    gen = mc::SimLoadGen::crc_paced(queue, mc::make_udp_frame(bg),
                                    std::make_unique<mc::PoissonPattern>(2.0, 77), 10'000);
  } else {
    queue.set_rate_mpps(2.0, 100);
    gen = mc::SimLoadGen::hardware_paced(queue, mc::make_udp_frame(bg));
  }

  mc::UdpTemplateOptions stamped = bg;
  stamped.ptp_message_type = 0;
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 100 * ms::kPsPerUs;
  cfg.hist_bin_ps = 50'000;
  mc::Timestamper ts(tb->engine(0), tb->port("gen_tx"), *gen, mc::make_udp_frame(stamped),
                     tb->port("sink"), cfg);
  ts.start();
  tb->run_until(static_cast<ms::SimTime>(50 * ms::kPsPerMs));  // 50 ms virtual
  ts.stop();

  RunResult r;
  r.gen_tx_packets = tb->port("gen_tx").stats().tx_packets;
  r.gen_tx_bytes = tb->port("gen_tx").stats().tx_bytes;
  r.sink_rx_packets = tb->port("sink").stats().rx_packets;
  r.sink_rx_bytes = tb->port("sink").stats().rx_bytes;
  r.dut_crc_errors = tb->port("dut_in").stats().crc_errors;
  r.forwarded = tb->forwarder().forwarded();
  r.interrupts = tb->forwarder().interrupts();
  r.ts_samples = ts.samples();
  r.fault_fires = tb->fault_fires();
  r.cross_shard = tb->cross_shard_frames();
  r.shards = tb->shard_count();
  const auto& h = ts.histogram();
  for (std::size_t i = 0; i < h.bin_count(); ++i) r.latency_bins.push_back(h.bin(i));
  r.latency_min = ts.latency_ns().min();
  r.latency_max = ts.latency_ns().max();
  return r;
}

}  // namespace

TEST(ParallelEquivalence, Fig10CbrIdenticalAcrossShardCounts) {
  const RunResult seq = run_fig10(1, false, "");
  const RunResult two = run_fig10(2, false, "");
  const RunResult four = run_fig10(4, false, "");
  EXPECT_EQ(seq.shards, 1u);
  EXPECT_EQ(two.shards, 2u);
  EXPECT_EQ(four.shards, 2u);  // capped at the two coupling groups
  EXPECT_GT(two.cross_shard, 0u);
  EXPECT_GT(seq.ts_samples, 10u);  // the run measured something
  EXPECT_TRUE(seq == two);
  EXPECT_TRUE(seq == four);
}

TEST(ParallelEquivalence, Fig11PoissonIdenticalAcrossShardCounts) {
  const RunResult seq = run_fig10(1, true, "");
  const RunResult two = run_fig10(2, true, "");
  EXPECT_GT(two.cross_shard, 0u);
  EXPECT_TRUE(seq == two);
}

TEST(ParallelEquivalence, FaultedRunIdenticalAcrossShardCounts) {
  const std::string spec =
      "seed=42;loss@wire.l1:p=0.002;corrupt@wire.l1:p=0.001;"
      "flap@wire.l1:p=1e-4,param=2e8;stall@dut.fwd:p=0.01,param=2e7";
  const RunResult seq = run_fig10(1, false, spec);
  const RunResult two = run_fig10(2, false, spec);
  EXPECT_GT(seq.fault_fires, 0u);
  EXPECT_TRUE(seq == two);
}

TEST(ParallelEquivalence, ParallelRunIsRepeatable) {
  // Two parallel runs must agree with each other bit for bit, regardless
  // of thread scheduling.
  const RunResult a = run_fig10(2, false, "");
  const RunResult b = run_fig10(2, false, "");
  EXPECT_TRUE(a == b);
}

// ---------------------------------------------------------------------------
// Lookahead / epoch protocol properties
// ---------------------------------------------------------------------------

TEST(ParallelLookahead, CrossShardArrivalsNeverLandInThePast) {
  // drain_remote_epoch throws std::logic_error on any lookahead violation;
  // a clean long faulted run is the property test that the conservative
  // window bound (cable latency minus one max frame time) is sufficient.
  EXPECT_NO_THROW(run_fig10(2, true, "loss@wire.l1:p=0.001"));
}

TEST(ParallelLookahead, ZeroLatencyCrossShardLinkIsRejected) {
  mtb::Scenario s;
  s.seed(1)
      .shards(2)
      .device(0, mn::intel_x540()).name("a")
      .device(1, mn::intel_x540()).name("b")
      .link(0, 1).latency_ns(0);  // below one frame time: no usable lookahead
  EXPECT_THROW((void)s.build(), std::invalid_argument);
}

TEST(ParallelLookahead, CoupledZeroLatencyLinkIsFine) {
  mtb::Scenario s;
  s.seed(1)
      .shards(2)
      .device(0, mn::intel_x540()).name("a")
      .device(1, mn::intel_x540()).name("b")
      .link(0, 1).latency_ns(0)
      .couple(0, 1);  // same shard: no channel, no lookahead requirement
  auto tb = s.build();
  EXPECT_EQ(tb->shard_count(), 1u);
}
