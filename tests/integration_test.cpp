// Cross-module integration tests: full generator -> wire -> DuT -> capture
// chains, including the switch work-around of paper Section 8.4.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "capture/pcap.hpp"
#include "core/flow_tracker.hpp"
#include "core/rate_control.hpp"
#include "core/responder.hpp"
#include "core/timestamper.hpp"
#include "dut/forwarder.hpp"
#include "proto/packet_view.hpp"
#include "sim_testbed.hpp"
#include "wire/recorder.hpp"
#include "wire/switch.hpp"

namespace cap = moongen::capture;
namespace mc = moongen::core;
namespace md = moongen::dut;
namespace mn = moongen::nic;
namespace mp = moongen::proto;
namespace ms = moongen::sim;
namespace mw = moongen::wire;

namespace {

mn::Frame udp96(std::uint8_t ptp_type = 5) {
  mc::UdpTemplateOptions opts;
  opts.frame_size = 96;
  opts.ptp_payload = true;
  opts.ptp_message_type = ptp_type;
  return mc::make_udp_frame(opts);
}

}  // namespace

// ---------------------------------------------------------------------------
// Section 8.4 work-around: a switch strips invalid frames and multiplexes
// several generator streams before the DuT.
// ---------------------------------------------------------------------------

TEST(Integration, SwitchWorkaroundPreservesPatternAndRate) {
  ms::EventQueue events;
  mn::Port gen1(events, mn::intel_x540(), 10'000, 901);
  mn::Port gen2(events, mn::intel_x540(), 10'000, 902);
  mn::Port dst(events, mn::intel_x540(), 10'000, 903);
  mw::StoreForwardSwitch sw(events, 10'000);
  gen1.set_tx_sink(&sw.add_input(10'000));
  gen2.set_tx_sink(&sw.add_input(10'000));
  sw.set_output(dst, mw::cat5e_10gbaset(2.0));
  dst.rx_queue(0).set_store(false);
  std::uint64_t received = 0;
  dst.rx_queue(0).set_callback([&](const mn::RxQueueModel::Entry&) { ++received; });

  // Two overlaid Poisson streams, each 0.5 Mpps, CRC-paced at line rate.
  auto g1 = mc::SimLoadGen::crc_paced(gen1.tx_queue(0), udp96(),
                                      std::make_unique<mc::PoissonPattern>(0.5, 1), 10'000);
  auto g2 = mc::SimLoadGen::crc_paced(gen2.tx_queue(0), udp96(),
                                      std::make_unique<mc::PoissonPattern>(0.5, 2), 10'000);
  events.run_until(50 * ms::kPsPerMs);

  // All invalid frames died in the switch; the output carries the sum of
  // the two valid streams.
  EXPECT_GT(sw.dropped_invalid(), 10'000u);
  EXPECT_EQ(dst.stats().crc_errors, 0u);
  EXPECT_NEAR(static_cast<double>(received) / 0.05, 1e6, 3e4);  // ~1 Mpps combined
}

TEST(Integration, SwitchedCrcTrafficThroughDutMatchesDirect) {
  // Latency through the DuT must not depend on whether the invalid frames
  // are dropped by the DuT's NIC or stripped earlier by a switch.
  auto run = [](bool through_switch) {
    ms::EventQueue events;
    mn::Port gen(events, mn::intel_x540(), 10'000, 911);
    mn::Port dut_in(events, mn::intel_x540(), 10'000, 912);
    mn::Port dut_out(events, mn::intel_x540(), 10'000, 913);
    mn::Port sink(events, mn::intel_x540(), 10'000, 914);
    std::unique_ptr<mw::Link> direct;
    std::unique_ptr<mw::StoreForwardSwitch> sw;
    if (through_switch) {
      sw = std::make_unique<mw::StoreForwardSwitch>(events, 10'000);
      gen.set_tx_sink(&sw->add_input(10'000));
      sw->set_output(dut_in, mw::cat5e_10gbaset(2.0));
    } else {
      direct = std::make_unique<mw::Link>(gen, dut_in, mw::cat5e_10gbaset(2.0), 915);
    }
    mw::Link out_link(dut_out, sink, mw::cat5e_10gbaset(2.0), 916);
    md::Forwarder fwd(events, dut_in, 0, dut_out, 0);
    sink.rx_queue(0).set_store(false);

    auto gen_load = mc::SimLoadGen::crc_paced(gen.tx_queue(0), udp96(),
                                              std::make_unique<mc::CbrPattern>(0.5), 10'000);
    mc::TimestamperConfig cfg;
    cfg.sample_interval_ps = 100 * ms::kPsPerUs;
    cfg.hist_bin_ps = 100'000;
    mc::Timestamper ts(events, gen, *gen_load, udp96(0), sink, cfg);
    ts.start();
    events.run_until(100 * ms::kPsPerMs);
    ts.stop();
    EXPECT_GT(ts.samples(), 300u);
    return ts.latency_ns().mean();
  };
  const double direct_ns = run(false);
  const double switched_ns = run(true);
  // The switch adds its store-and-forward + forwarding latency; beyond
  // that constant shift the DuT behaviour is the same.
  EXPECT_GT(switched_ns, direct_ns);
  EXPECT_LT(switched_ns - direct_ns, 5'000.0 + 2'000.0);  // ~few us constant
}

// ---------------------------------------------------------------------------
// Capture + sequence tracking through the DuT
// ---------------------------------------------------------------------------

TEST(Integration, SequenceTrackedCaptureThroughDut) {
  const auto path = std::filesystem::temp_directory_path() / "moongen_integration.pcap";
  ms::EventQueue events;
  mn::Port gen(events, mn::intel_x540(), 10'000, 921);
  mn::Port dut_in(events, mn::intel_x540(), 10'000, 922);
  mn::Port dut_out(events, mn::intel_x540(), 10'000, 923);
  mn::Port sink(events, mn::intel_x540(), 10'000, 924);
  mw::Link l1(gen, dut_in, mw::cat5e_10gbaset(2.0), 925);
  mw::Link l2(dut_out, sink, mw::cat5e_10gbaset(2.0), 926);
  md::Forwarder fwd(events, dut_in, 0, dut_out, 0);

  {
    cap::PcapWriter writer(path.string());
    cap::capture_rx(sink, 0, writer);
    sink.rx_queue(0).set_store(false);

    // Sequence-stamped stream: each valid frame gets a fresh marker.
    auto stamper = std::make_shared<mc::SequenceStamper>(1, mp::UdpPacketView::kHeaderStack);
    auto& q = gen.tx_queue(0);
    q.set_rate_mpps(1.0, 100);
    q.set_refill([stamper] {
      auto frame = udp96();
      auto bytes = *frame.data;  // copy, then stamp
      stamper->stamp(bytes.data());
      return mn::make_frame(std::move(bytes));
    });
    events.run_until(20 * ms::kPsPerMs);
    EXPECT_GT(writer.packets_written(), 15'000u);
  }

  // Offline: replay the capture through the tracker — everything the DuT
  // forwarded arrived in order without loss.
  mc::SequenceTracker tracker;
  cap::PcapReader reader(path.string());
  while (auto rec = reader.next()) {
    tracker.feed(rec->data.data(), rec->data.size(), mp::UdpPacketView::kHeaderStack);
  }
  const auto report = tracker.report();
  EXPECT_GT(report.unique, 15'000u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.reordered, 0u);
  EXPECT_EQ(report.duplicates, 0u);
  std::filesystem::remove(path);
}

TEST(Integration, SequenceTrackerSeesOverloadLoss) {
  ms::EventQueue events;
  mn::Port gen(events, mn::intel_x540(), 10'000, 931);
  mn::Port dut_in(events, mn::intel_x540(), 10'000, 932);
  mn::Port dut_out(events, mn::intel_x540(), 10'000, 933);
  mn::Port sink(events, mn::intel_x540(), 10'000, 934);
  mw::Link l1(gen, dut_in, mw::cat5e_10gbaset(2.0), 935);
  mw::Link l2(dut_out, sink, mw::cat5e_10gbaset(2.0), 936);
  md::Forwarder fwd(events, dut_in, 0, dut_out, 0);

  mc::SequenceTracker tracker;
  sink.rx_queue(0).set_store(false);
  sink.rx_queue(0).set_callback([&](const mn::RxQueueModel::Entry& e) {
    tracker.feed(e.frame.data->data(), e.frame.data->size(), mp::UdpPacketView::kHeaderStack);
  });

  auto stamper = std::make_shared<mc::SequenceStamper>(1, mp::UdpPacketView::kHeaderStack);
  auto& q = gen.tx_queue(0);
  q.set_rate_mpps(4.0, 100);  // far beyond the ~1.94 Mpps DuT capacity
  q.set_refill([stamper] {
    auto frame = udp96();
    auto bytes = *frame.data;
    stamper->stamp(bytes.data());
    return mn::make_frame(std::move(bytes));
  });
  events.run_until(50 * ms::kPsPerMs);

  const auto report = tracker.report();
  EXPECT_GT(report.lost, 10'000u);  // overload drops measured end to end
  EXPECT_EQ(report.duplicates, 0u);
  // Loss accounting agrees with the DuT's ring-drop counter (up to frames
  // still in flight at the end of the run).
  const double ring_drops = static_cast<double>(dut_in.stats().rx_ring_drops);
  EXPECT_NEAR(static_cast<double>(report.lost), ring_drops, 5'000.0);
}

// ---------------------------------------------------------------------------
// Responder under load
// ---------------------------------------------------------------------------

TEST(Integration, ArpResolutionWhileUnderLoad) {
  moongen::test::TenGbeFiberBed bed;
  mw::Link reverse(bed.b, bed.a, mw::fiber_om3(2.0), 941);
  mc::Responder responder(bed.b, {.ip = mp::IPv4Address{10, 0, 0, 2},
                                  .mac = mp::MacAddress::from_uint64(2)});

  // Queue 0 carries 2 Mpps of load; queue 1 sends an ARP request mid-run.
  auto& load_q = bed.a.tx_queue(0);
  load_q.set_rate_mpps(2.0, 100);
  auto gen = mc::SimLoadGen::hardware_paced(load_q, udp96());
  bed.events.schedule_at(5 * ms::kPsPerMs, [&] {
    bed.a.tx_queue(1).post(mc::make_arp_request(mp::MacAddress::from_uint64(1),
                                                mp::IPv4Address{10, 0, 0, 1},
                                                mp::IPv4Address{10, 0, 0, 2}));
  });
  bed.events.run_until(10 * ms::kPsPerMs);

  EXPECT_EQ(responder.arp_replies(), 1u);
  EXPECT_GT(responder.ignored(), 5'000u);  // the load packets
  const auto entries = bed.a.rx_queue(0).drain();
  ASSERT_EQ(entries.size(), 1u);  // the reply came back through the load
}
