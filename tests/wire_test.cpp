// Tests for cables, links, the inter-arrival recorder, and the
// store-and-forward switch.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/rate_control.hpp"
#include "sim_testbed.hpp"
#include "wire/cable.hpp"
#include "wire/link.hpp"
#include "wire/recorder.hpp"
#include "wire/switch.hpp"

namespace mw = moongen::wire;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mc = moongen::core;

TEST(Cable, PropagationMatchesTable3Arithmetic) {
  // t = k + l/vp. For the 82599 fiber bed with a 2 m cable the paper
  // measures 320 ns total; the true cable latency sits within one 12.8 ns
  // timer increment above that (the NIC floors its readings).
  const auto cable = mw::fiber_om3(2.0);
  const double total_ps = static_cast<double>(cable.k_ps + cable.propagation_ps());
  EXPECT_GE(total_ps, 320'000.0);
  EXPECT_LT(total_ps, 320'000.0 + 12'800.0);
  // The fitted k of Table 3: 310.7 ns with vp = 0.72 c.
  const double fitted_total_ns = 310.7 + 2.0 / (0.72 * 0.299792458);
  EXPECT_NEAR(fitted_total_ns, 320.0, 0.5);
}

TEST(Cable, CopperPropagationIsSlower) {
  const auto fiber = mw::fiber_om3(50.0);
  const auto copper = mw::cat5e_10gbaset(50.0);
  EXPECT_GT(copper.propagation_ps(), fiber.propagation_ps());
  EXPECT_GT(copper.k_ps, fiber.k_ps);  // 10GBASE-T line code is costly
}

TEST(Link, DeliversWithDeterministicFiberLatency) {
  moongen::test::TenGbeFiberBed bed(10.0);
  moongen::test::CaptureSink dummy;  // keep frames observable on tx side too
  for (int i = 0; i < 10; ++i) bed.a.tx_queue(0).post(mc::make_ptp_ethernet_frame(60));
  bed.events.run();
  EXPECT_EQ(bed.b.stats().rx_packets, 10u);
  EXPECT_EQ(bed.link.frames_carried(), 10u);
}

TEST(Link, TenGBaseTJitterBoundedAndMostlyTight) {
  // The X540 copper PHY introduces per-frame latency variance: >99.5 %
  // within +-6.4 ns of the median, total range up to 64 ns (Section 6.1).
  ms::EventQueue events;
  mn::Port a(events, mn::intel_x540(), 10'000, 31);
  mn::Port b(events, mn::intel_x540(), 10'000, 32);
  mw::Link link(a, b, mw::cat5e_10gbaset(10.0), 33);

  // Back-to-back line-rate frames leave exactly 67.2 ns apart; arrival
  // spacing therefore exposes the per-frame PHY jitter difference.
  b.rx_queue(0).set_ring_capacity(100'000);
  a.tx_queue(0).set_refill([] {
    mc::UdpTemplateOptions opts;
    opts.frame_size = 60;
    return mc::make_udp_frame(opts);
  });
  events.run_until(5 * ms::kPsPerMs);
  const auto entries = b.rx_queue(0).drain();
  ASSERT_GT(entries.size(), 20'000u);
  std::uint64_t tight = 0, total = 0;
  long long worst = 0;
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const auto delta =
        static_cast<std::int64_t>(entries[i].complete_ps - entries[i - 1].complete_ps) - 67'200;
    ++total;
    if (std::llabs(delta) <= 12'800) ++tight;
    worst = std::max(worst, std::llabs(delta));
  }
  // Each frame's jitter is within +-6.4 ns for >99.5 % of frames, so the
  // difference of two is within +-12.8 ns for >99 %.
  EXPECT_GT(static_cast<double>(tight) / static_cast<double>(total), 0.99);
  // The difference of two jitters is bounded by the full +-32 ns range each.
  EXPECT_LE(worst, 64'000);
}

TEST(Recorder, CapturesBackToBackAsBursts) {
  moongen::test::GbeInterArrivalBed bed;
  // Uncontrolled queue -> line rate -> every frame back-to-back.
  bed.tx.tx_queue(0).set_refill([] {
    mc::UdpTemplateOptions opts;
    opts.frame_size = 60;
    return mc::make_udp_frame(opts);
  });
  bed.events.run_until(5 * ms::kPsPerMs);
  ASSERT_GT(bed.recorder.samples(), 1'000u);
  EXPECT_GT(bed.recorder.micro_burst_fraction(), 0.99);
  // Back-to-back 64 B at GbE: 672 ns inter-arrival. The 82580's 64 ns
  // timestamp quantization spreads the exact value over the two adjacent
  // bins (640 and 704 ns).
  EXPECT_GT(bed.recorder.histogram().fraction_between(608'000, 736'000), 0.99);
}

TEST(Recorder, CbrTrafficCentersOnTarget) {
  moongen::test::GbeInterArrivalBed bed;
  auto& q = bed.tx.tx_queue(0);
  q.set_rate_mpps(0.5, 64);
  q.set_refill([] {
    mc::UdpTemplateOptions opts;
    opts.frame_size = 60;
    return mc::make_udp_frame(opts);
  });
  bed.events.run_until(100 * ms::kPsPerMs);
  ASSERT_GT(bed.recorder.samples(), 40'000u);
  // Within +-512 ns of the 2 us target: essentially everything.
  EXPECT_GT(bed.recorder.fraction_within(2'000'000, 512'000), 0.99);
  EXPECT_LT(bed.recorder.micro_burst_fraction(), 0.01);
}

TEST(Switch, DropsInvalidForwardsValid) {
  ms::EventQueue events;
  mn::Port gen(events, mn::intel_x540(), 10'000, 41);
  mn::Port dst(events, mn::intel_x540(), 10'000, 42);
  mw::StoreForwardSwitch sw(events, 10'000);
  gen.set_tx_sink(&sw.add_input(10'000));
  sw.set_output(dst, mw::fiber_om3(2.0));

  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  for (int i = 0; i < 10; ++i) {
    gen.tx_queue(0).post(mc::make_udp_frame(opts));
    gen.tx_queue(0).post(mn::make_gap_frame(100));
  }
  events.run();
  EXPECT_EQ(sw.dropped_invalid(), 10u);
  EXPECT_EQ(sw.forwarded(), 10u);
  EXPECT_EQ(dst.stats().rx_packets, 10u);
  EXPECT_EQ(dst.stats().crc_errors, 0u);  // gaps became real gaps
}

TEST(Switch, MultiplexesSeveralInputs) {
  // Section 8.4 work-around: several generator streams merge through a
  // switch onto one output.
  ms::EventQueue events;
  mn::Port gen1(events, mn::intel_x540(), 10'000, 51);
  mn::Port gen2(events, mn::intel_x540(), 10'000, 52);
  mn::Port dst(events, mn::intel_x540(), 10'000, 53);
  mw::StoreForwardSwitch sw(events, 10'000);
  gen1.set_tx_sink(&sw.add_input(10'000));
  gen2.set_tx_sink(&sw.add_input(10'000));
  sw.set_output(dst, mw::fiber_om3(2.0));

  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  for (int i = 0; i < 50; ++i) {
    gen1.tx_queue(0).post(mc::make_udp_frame(opts));
    gen2.tx_queue(0).post(mc::make_udp_frame(opts));
  }
  events.run();
  EXPECT_EQ(dst.stats().rx_packets, 100u);
}

TEST(Switch, OutputQueueBoundsBacklog) {
  ms::EventQueue events;
  mn::Port gen1(events, mn::intel_x540(), 10'000, 61);
  mn::Port gen2(events, mn::intel_x540(), 10'000, 62);
  mn::Port dst(events, mn::intel_x540(), 1'000, 63);  // slow output NIC
  // Slow (GbE) switch output port, two 10 GbE inputs at line rate.
  mw::StoreForwardSwitch sw(events, 1'000);
  gen1.set_tx_sink(&sw.add_input(10'000));
  gen2.set_tx_sink(&sw.add_input(10'000));
  sw.set_output(dst, mw::cat5e_gbe(2.0));
  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  gen1.tx_queue(0).set_refill([&] { return mc::make_udp_frame(opts); });
  gen2.tx_queue(0).set_refill([&] { return mc::make_udp_frame(opts); });
  events.run_until(20 * ms::kPsPerMs);
  EXPECT_GT(sw.queue_drops(), 0u);  // inputs overrun the slow output
  EXPECT_GT(dst.stats().rx_packets, 1'000u);
}
