// Tests for RSS (Toeplitz hashing) and Flow Director steering.
#include <gtest/gtest.h>

#include <map>

#include "core/rate_control.hpp"
#include "nic/flow_director.hpp"
#include "nic/rss.hpp"
#include "proto/packet_view.hpp"
#include "sim_testbed.hpp"

namespace mn = moongen::nic;
namespace mp = moongen::proto;
namespace mc = moongen::core;

namespace {

/// Microsoft's RSS verification-suite input builder: src addr, dst addr,
/// src port, dst port, all in network byte order.
std::vector<std::uint8_t> rss_input(mp::IPv4Address src, mp::IPv4Address dst,
                                    std::uint16_t sport = 0, std::uint16_t dport = 0,
                                    bool with_ports = false) {
  std::vector<std::uint8_t> input;
  for (int shift = 24; shift >= 0; shift -= 8)
    input.push_back(static_cast<std::uint8_t>(src.value >> shift));
  for (int shift = 24; shift >= 0; shift -= 8)
    input.push_back(static_cast<std::uint8_t>(dst.value >> shift));
  if (with_ports) {
    input.push_back(static_cast<std::uint8_t>(sport >> 8));
    input.push_back(static_cast<std::uint8_t>(sport & 0xff));
    input.push_back(static_cast<std::uint8_t>(dport >> 8));
    input.push_back(static_cast<std::uint8_t>(dport & 0xff));
  }
  return input;
}

mn::Frame udp_flow_frame(mp::IPv4Address src, mp::IPv4Address dst, std::uint16_t sport,
                         std::uint16_t dport) {
  std::vector<std::uint8_t> bytes(60, 0);
  mp::UdpPacketView view{{bytes.data(), bytes.size()}};
  mp::UdpFillOptions opts;
  opts.packet_length = 60;
  opts.ip_src = src;
  opts.ip_dst = dst;
  opts.udp_src = sport;
  opts.udp_dst = dport;
  view.fill(opts);
  return mn::make_frame(std::move(bytes));
}

}  // namespace

// ---------------------------------------------------------------------------
// Toeplitz hash — Microsoft verification vectors
// ---------------------------------------------------------------------------

TEST(Toeplitz, MicrosoftVectorIpv4Only) {
  // Destination 161.142.100.80, source 66.9.149.187 -> 0x323e8fc2.
  const auto input =
      rss_input(mp::IPv4Address{66, 9, 149, 187}, mp::IPv4Address{161, 142, 100, 80});
  EXPECT_EQ(mn::toeplitz_hash(input), 0x323e8fc2u);
}

TEST(Toeplitz, MicrosoftVectorWithPorts) {
  // Same pair with ports 2794 -> 1766 -> 0x51ccc178.
  const auto input = rss_input(mp::IPv4Address{66, 9, 149, 187},
                               mp::IPv4Address{161, 142, 100, 80}, 2794, 1766, true);
  EXPECT_EQ(mn::toeplitz_hash(input), 0x51ccc178u);
}

TEST(Toeplitz, SecondMicrosoftVector) {
  // Destination 65.69.140.83, source 199.92.111.2; with-ports value
  // 0xc626b0ea is from the Microsoft verification suite, the IP-only value
  // cross-checked against an independent reference implementation.
  const auto ip_only =
      rss_input(mp::IPv4Address{199, 92, 111, 2}, mp::IPv4Address{65, 69, 140, 83});
  EXPECT_EQ(mn::toeplitz_hash(ip_only), 0xd718262au);
  const auto with_ports = rss_input(mp::IPv4Address{199, 92, 111, 2},
                                    mp::IPv4Address{65, 69, 140, 83}, 14230, 4739, true);
  EXPECT_EQ(mn::toeplitz_hash(with_ports), 0xc626b0eau);
}

TEST(Toeplitz, SensitiveToEveryBit) {
  auto input = rss_input(mp::IPv4Address{10, 0, 0, 1}, mp::IPv4Address{10, 0, 0, 2});
  const auto base = mn::toeplitz_hash(input);
  for (std::size_t byte = 0; byte < input.size(); ++byte) {
    input[byte] ^= 0x01;
    EXPECT_NE(mn::toeplitz_hash(input), base) << "byte " << byte;
    input[byte] ^= 0x01;
  }
}

// ---------------------------------------------------------------------------
// RssUnit
// ---------------------------------------------------------------------------

TEST(RssUnit, HashMatchesRawToeplitzOnFrames) {
  mn::RssUnit rss(4, mn::RssHashType::kIpv4Udp);
  const auto frame = udp_flow_frame(mp::IPv4Address{66, 9, 149, 187},
                                    mp::IPv4Address{161, 142, 100, 80}, 2794, 1766);
  EXPECT_EQ(rss.hash(frame), 0x51ccc178u);
  // Steering goes through the 128-entry indirection table.
  EXPECT_EQ(rss.steer(frame), rss.indirection(0x51ccc178u & 0x7f));
}

TEST(RssUnit, SameFlowSameQueue) {
  mn::RssUnit rss(8);
  const auto a = udp_flow_frame(mp::IPv4Address{10, 0, 0, 1}, mp::IPv4Address{10, 0, 0, 2}, 1, 2);
  const auto b = udp_flow_frame(mp::IPv4Address{10, 0, 0, 1}, mp::IPv4Address{10, 0, 0, 2}, 1, 2);
  EXPECT_EQ(rss.steer(a), rss.steer(b));
}

TEST(RssUnit, DistributesFlowsAcrossQueues) {
  mn::RssUnit rss(4);
  std::map<int, int> counts;
  for (std::uint32_t flow = 0; flow < 512; ++flow) {
    const auto frame =
        udp_flow_frame(mp::IPv4Address{10, 0, 0, 1} + flow, mp::IPv4Address{10, 1, 0, 1},
                       static_cast<std::uint16_t>(1000 + flow), 80);
    counts[rss.steer(frame)]++;
  }
  ASSERT_EQ(counts.size(), 4u);  // all queues used
  for (const auto& [queue, count] : counts) {
    EXPECT_GT(count, 512 / 4 / 2) << "queue " << queue;  // roughly balanced
    EXPECT_LT(count, 512 / 4 * 2) << "queue " << queue;
  }
}

TEST(RssUnit, NonIpGoesToQueueZero) {
  mn::RssUnit rss(4);
  const auto frame = mc::make_ptp_ethernet_frame(60);
  EXPECT_EQ(rss.steer(frame), 0);
}

TEST(RssUnit, RetaRetargeting) {
  mn::RssUnit rss(4);
  const auto frame = udp_flow_frame(mp::IPv4Address{10, 0, 0, 9}, mp::IPv4Address{10, 0, 0, 8},
                                    1234, 80);
  const auto slot = rss.hash(frame) & 0x7f;
  rss.set_indirection(slot, 3);
  EXPECT_EQ(rss.steer(frame), 3);
}

// ---------------------------------------------------------------------------
// Flow Director
// ---------------------------------------------------------------------------

TEST(FlowDirector, ExactMatchSteersToQueue) {
  mn::FlowDirector fd;
  fd.add_rule({.dst_port = 319, .queue = 2});
  const auto ptp = udp_flow_frame(mp::IPv4Address{10, 0, 0, 1}, mp::IPv4Address{10, 0, 0, 2},
                                  1000, 319);
  const auto other = udp_flow_frame(mp::IPv4Address{10, 0, 0, 1}, mp::IPv4Address{10, 0, 0, 2},
                                    1000, 80);
  auto v1 = fd.match(ptp);
  EXPECT_TRUE(v1.matched);
  EXPECT_EQ(v1.queue, 2);
  EXPECT_FALSE(fd.match(other).matched);
}

TEST(FlowDirector, FirstMatchWins) {
  mn::FlowDirector fd;
  fd.add_rule({.dst_port = 80, .queue = 1});
  fd.add_rule({.src_ip = mp::IPv4Address{10, 0, 0, 1}, .queue = 2});
  const auto frame = udp_flow_frame(mp::IPv4Address{10, 0, 0, 1}, mp::IPv4Address{10, 0, 0, 2},
                                    1000, 80);
  EXPECT_EQ(fd.match(frame).queue, 1);
}

TEST(FlowDirector, DropAction) {
  mn::FlowDirector fd;
  fd.add_rule({.protocol = mp::IpProtocol::kUdp, .drop = true});
  const auto frame = udp_flow_frame(mp::IPv4Address{10, 0, 0, 1}, mp::IPv4Address{10, 0, 0, 2},
                                    1, 2);
  auto v = fd.match(frame);
  EXPECT_TRUE(v.matched);
  EXPECT_TRUE(v.drop);
}

// ---------------------------------------------------------------------------
// Steering integration on a simulated port
// ---------------------------------------------------------------------------

TEST(PortSteering, FlowDirectorThenRss) {
  moongen::test::TenGbeFiberBed bed;
  bed.b.enable_rss(4);
  bed.b.flow_director().add_rule({.dst_port = 319, .queue = 3});

  // PTP flow pinned by Flow Director; two other flows spread by RSS.
  bed.a.tx_queue(0).post(udp_flow_frame(mp::IPv4Address{10, 0, 0, 1},
                                        mp::IPv4Address{10, 0, 0, 2}, 5, 319));
  bed.a.tx_queue(0).post(udp_flow_frame(mp::IPv4Address{10, 7, 1, 1},
                                        mp::IPv4Address{10, 0, 0, 2}, 1111, 80));
  bed.events.run();
  // Where RSS would put the non-PTP flow:
  mn::RssUnit reference(4);
  const auto rss_queue = reference.steer(udp_flow_frame(
      mp::IPv4Address{10, 7, 1, 1}, mp::IPv4Address{10, 0, 0, 2}, 1111, 80));
  // Queue 3 holds the Flow-Director-pinned frame (plus the RSS one if the
  // hash happens to land there too).
  EXPECT_EQ(bed.b.rx_queue(3).pending(), rss_queue == 3 ? 2u : 1u);
  if (rss_queue != 3) EXPECT_EQ(bed.b.rx_queue(rss_queue).pending(), 1u);
}

TEST(PortSteering, FlowDirectorHardwareDrop) {
  moongen::test::TenGbeFiberBed bed;
  bed.b.flow_director().add_rule({.dst_port = 53, .drop = true});
  bed.a.tx_queue(0).post(udp_flow_frame(mp::IPv4Address{10, 0, 0, 1},
                                        mp::IPv4Address{10, 0, 0, 2}, 1, 53));
  bed.a.tx_queue(0).post(udp_flow_frame(mp::IPv4Address{10, 0, 0, 1},
                                        mp::IPv4Address{10, 0, 0, 2}, 1, 54));
  bed.events.run();
  EXPECT_EQ(bed.b.rx_queue(0).pending(), 1u);  // only the non-filtered one
  EXPECT_EQ(bed.b.stats().rx_packets, 2u);     // both counted as received
}
