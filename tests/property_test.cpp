// Parameterized property tests: invariants swept across configurations
// (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "baseline/static_generator.hpp"
#include "core/rate_control.hpp"
#include "membuf/ring.hpp"
#include "nic/chip.hpp"
#include "nic/port.hpp"
#include "proto/checksum.hpp"
#include "proto/crc32.hpp"
#include "proto/packet_view.hpp"
#include "sim/clock_sync.hpp"
#include "sim_testbed.hpp"
#include "stats/histogram.hpp"
#include "wire/link.hpp"
#include "wire/recorder.hpp"

namespace mb = moongen::membuf;
namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace mp = moongen::proto;
namespace ms = moongen::sim;
namespace mw = moongen::wire;

// ---------------------------------------------------------------------------
// CRC gap filler: byte conservation under arbitrary configurations
// ---------------------------------------------------------------------------

struct GapFillerParam {
  std::size_t min_wire;
  std::size_t max_wire;
};

class GapFillerProperty : public ::testing::TestWithParam<GapFillerParam> {};

TEST_P(GapFillerProperty, ConservesBytesAndRespectsBounds) {
  const auto param = GetParam();
  mc::GapFillerConfig cfg;
  cfg.min_wire_len = param.min_wire;
  cfg.max_wire_len = param.max_wire;
  mc::CrcGapFiller filler(cfg);
  std::mt19937_64 rng(param.min_wire * 31 + param.max_wire);
  std::uint64_t requested = 0, emitted = 0;
  for (int i = 0; i < 20'000; ++i) {
    const std::size_t gap = rng() % (3 * param.max_wire);
    requested += gap;
    for (const auto piece : filler.fill(gap)) {
      EXPECT_GE(piece, param.min_wire);
      EXPECT_LE(piece, param.max_wire);
      emitted += piece;
    }
    EXPECT_LT(filler.carry_bytes(), param.min_wire);  // carry stays small
  }
  EXPECT_EQ(requested, emitted + filler.carry_bytes());
}

INSTANTIATE_TEST_SUITE_P(Configs, GapFillerProperty,
                         ::testing::Values(GapFillerParam{33, 1538}, GapFillerParam{76, 1538},
                                           GapFillerParam{76, 500}, GapFillerParam{100, 200},
                                           GapFillerParam{33, 80}),
                         [](const auto& info) {
                           return "min" + std::to_string(info.param.min_wire) + "_max" +
                                  std::to_string(info.param.max_wire);
                         });

// ---------------------------------------------------------------------------
// Hardware rate limiter: long-run average accuracy across rates and speeds
// ---------------------------------------------------------------------------

struct RateParam {
  double mpps;
  std::uint64_t link_mbit;
};

class RateAccuracy : public ::testing::TestWithParam<RateParam> {};

TEST_P(RateAccuracy, AverageWithinOnePercent) {
  const auto param = GetParam();
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), param.link_mbit, 999);
  moongen::test::CaptureSink sink;
  port.set_tx_sink(&sink);
  auto& q = port.tx_queue(0);
  q.set_rate_mpps(param.mpps, 64);
  q.set_refill([] {
    mc::UdpTemplateOptions opts;
    opts.frame_size = 60;
    return mc::make_udp_frame(opts);
  });
  const ms::SimTime duration = 50 * ms::kPsPerMs;
  events.run_until(duration);
  const double achieved =
      static_cast<double>(sink.frames.size()) / ms::to_seconds(duration) / 1e6;
  EXPECT_NEAR(achieved, param.mpps, param.mpps * 0.01);
}

INSTANTIATE_TEST_SUITE_P(RatesAndSpeeds, RateAccuracy,
                         ::testing::Values(RateParam{0.1, 1'000}, RateParam{0.5, 1'000},
                                           RateParam{1.0, 1'000}, RateParam{0.5, 10'000},
                                           RateParam{2.0, 10'000}, RateParam{5.0, 10'000},
                                           RateParam{8.0, 10'000}),
                         [](const auto& info) {
                           return std::to_string(static_cast<int>(info.param.mpps * 10)) +
                                  "x100kpps_" + std::to_string(info.param.link_mbit) + "mbit";
                         });

// ---------------------------------------------------------------------------
// Checksum offload emulation == full software checksum, across sizes
// ---------------------------------------------------------------------------

class ChecksumEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChecksumEquivalence, UdpOffloadSplitMatchesSoftware) {
  const std::size_t size = GetParam();
  std::mt19937_64 rng(size);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> frame(size, 0);
    mp::UdpPacketView view{{frame.data(), size}};
    mp::UdpFillOptions opts;
    opts.packet_length = size;
    opts.ip_src = mp::IPv4Address{static_cast<std::uint32_t>(rng())};
    opts.ip_dst = mp::IPv4Address{static_cast<std::uint32_t>(rng())};
    opts.udp_src = static_cast<std::uint16_t>(rng());
    opts.udp_dst = static_cast<std::uint16_t>(rng());
    view.fill(opts);
    for (auto& b : view.udp_payload()) b = static_cast<std::uint8_t>(rng());

    // Software truth.
    const std::uint16_t software = mp::udp_checksum_ipv4(view.ip(), view.l4_bytes());

    // Offload split: store the folded pseudo-header sum in the checksum
    // field (what the driver does), then finish over the segment (what the
    // NIC does).
    std::uint32_t pseudo = mp::ipv4_pseudo_header_sum(
        view.ip(), static_cast<std::uint16_t>(view.l4_bytes().size()));
    while (pseudo >> 16) pseudo = (pseudo & 0xffff) + (pseudo >> 16);
    view.udp().checksum_be = 0;
    std::uint32_t sum = pseudo;
    sum = mp::checksum_partial(view.l4_bytes(), sum);
    std::uint16_t hardware = mp::checksum_finish(sum);
    if (hardware == 0) hardware = 0xffff;
    EXPECT_EQ(hardware, software) << "size " << size << " trial " << trial;
  }
}

TEST_P(ChecksumEquivalence, Ipv6UdpChecksumVerifies) {
  const std::size_t size = std::max<std::size_t>(GetParam(), 62);
  std::vector<std::uint8_t> frame(size, 0);
  mp::Udp6PacketView view{{frame.data(), size}};
  view.fill(size, mp::MacAddress::from_uint64(1), mp::MacAddress::from_uint64(2),
            mp::IPv6Address::parse("2001:db8::1").value(),
            mp::IPv6Address::parse("2001:db8::2").value(), 1000, 2000);
  const auto l4 = std::span<std::uint8_t>{frame.data() + 54, size - 54};
  view.udp().checksum_be = mp::udp_checksum_ipv6(view.ip6(), l4);
  // Verifying: pseudo-header + full segment folds to zero.
  std::uint32_t sum = mp::ipv6_pseudo_header_sum(
      view.ip6(), static_cast<std::uint32_t>(l4.size()),
      static_cast<std::uint8_t>(mp::IpProtocol::kUdp));
  sum = mp::checksum_partial(l4, sum);
  EXPECT_EQ(mp::checksum_finish(sum), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChecksumEquivalence,
                         ::testing::Values(60u, 61u, 64u, 96u, 124u, 512u, 1514u),
                         [](const auto& info) { return "b" + std::to_string(info.param); });

// ---------------------------------------------------------------------------
// CRC32: table-driven implementation vs bitwise reference
// ---------------------------------------------------------------------------

class Crc32Reference : public ::testing::TestWithParam<std::size_t> {};

namespace {

std::uint32_t crc32_bitwise(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i) crc = (crc & 1) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
  }
  return ~crc;
}

}  // namespace

TEST_P(Crc32Reference, MatchesBitwise) {
  std::mt19937_64 rng(GetParam());
  std::vector<std::uint8_t> data(GetParam());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  EXPECT_EQ(mp::crc32(data), crc32_bitwise(data));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Crc32Reference,
                         ::testing::Values(1u, 13u, 60u, 64u, 333u, 1518u, 9000u),
                         [](const auto& info) { return "n" + std::to_string(info.param); });

// ---------------------------------------------------------------------------
// Histogram percentiles vs exact order statistics
// ---------------------------------------------------------------------------

class HistogramPercentiles : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPercentiles, WithinOneBinOfExact) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<std::uint64_t> samples;
  const int dist = GetParam();
  for (int i = 0; i < 50'000; ++i) {
    std::uint64_t v;
    if (dist == 0) {
      v = rng() % 1'000'000;  // uniform
    } else if (dist == 1) {
      std::exponential_distribution<double> exp_dist(1e-5);
      v = static_cast<std::uint64_t>(exp_dist(rng));
    } else {
      v = (rng() % 2 == 0) ? 100'000 + rng() % 1'000 : 900'000 + rng() % 1'000;  // bimodal
    }
    samples.push_back(std::min<std::uint64_t>(v, 1'999'999));
  }
  const std::uint64_t bin = 1'000;
  moongen::stats::Histogram hist(bin, 2'000'000);
  for (auto v : samples) hist.add(v);
  std::sort(samples.begin(), samples.end());
  for (double p : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    const auto exact =
        samples[static_cast<std::size_t>(p / 100.0 * (samples.size() - 1))];
    const auto approx = hist.percentile(p);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(2 * bin))
        << "p" << p << " dist " << dist;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramPercentiles, ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           return info.param == 0   ? "uniform"
                                  : info.param == 1 ? "exponential"
                                                    : "bimodal";
                         });

// ---------------------------------------------------------------------------
// SPSC ring: cross-thread integrity across capacities
// ---------------------------------------------------------------------------

class SpscRingStress : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpscRingStress, NoLossNoDuplication) {
  mb::SpscRing<std::uint64_t> ring(GetParam());
  constexpr std::uint64_t kItems = 200'000;
  std::atomic<bool> done{false};
  std::uint64_t sum = 0, count = 0;

  std::thread consumer([&] {
    std::uint64_t v;
    std::uint64_t expected = 0;
    while (count < kItems) {
      if (ring.pop(v)) {
        EXPECT_EQ(v, expected);  // FIFO order preserved
        ++expected;
        sum += v;
        ++count;
      } else if (done.load(std::memory_order_acquire) && ring.empty()) {
        break;
      }
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    while (!ring.push(i)) {
    }
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Capacities, SpscRingStress, ::testing::Values(2u, 64u, 1024u),
                         [](const auto& info) { return "cap" + std::to_string(info.param); });

// ---------------------------------------------------------------------------
// Clock sync: convergence across timer granularities and drift
// ---------------------------------------------------------------------------

struct ClockSyncParam {
  ms::SimTime increment_ps;
  std::int64_t drift_ppb;
};

class ClockSyncSweep : public ::testing::TestWithParam<ClockSyncParam> {};

TEST_P(ClockSyncSweep, ResidualWithinTwoIncrements) {
  const auto param = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(param.increment_ps));
  int failures = 0;
  for (int trial = 0; trial < 40; ++trial) {
    ms::PtpClock a({.increment_ps = param.increment_ps}, rng());
    ms::PtpClock b({.increment_ps = param.increment_ps, .drift_ppb = param.drift_ppb}, rng());
    b.adjust(static_cast<std::int64_t>(rng() % 100'000'000));
    const auto result = ms::synchronize_clocks(a, b, 0, rng);
    if (std::llabs(result.residual_ps) > 2 * static_cast<std::int64_t>(param.increment_ps))
      ++failures;
  }
  EXPECT_LE(failures, 1);
}

INSTANTIATE_TEST_SUITE_P(GranularityAndDrift, ClockSyncSweep,
                         ::testing::Values(ClockSyncParam{6'400, 0}, ClockSyncParam{6'400, 35'000},
                                           ClockSyncParam{12'800, 0},
                                           ClockSyncParam{12'800, 35'000},
                                           ClockSyncParam{64'000, 0}),
                         [](const auto& info) {
                           return "inc" + std::to_string(info.param.increment_ps) + "_drift" +
                                  std::to_string(info.param.drift_ppb);
                         });

// ---------------------------------------------------------------------------
// CRC-paced generator: exact average rate across patterns
// ---------------------------------------------------------------------------

class CrcPacedRate : public ::testing::TestWithParam<double> {};

TEST_P(CrcPacedRate, ValidPacketRateIsExact) {
  const double mpps = GetParam();
  moongen::test::TenGbeFiberBed bed;
  bed.b.rx_queue(0).set_store(false);
  std::uint64_t received = 0;
  bed.b.rx_queue(0).set_callback([&](const mn::RxQueueModel::Entry&) { ++received; });
  mc::UdpTemplateOptions opts;
  opts.frame_size = 96;
  auto gen = mc::SimLoadGen::crc_paced(bed.a.tx_queue(0), mc::make_udp_frame(opts),
                                       std::make_unique<mc::CbrPattern>(mpps), 10'000);
  const ms::SimTime duration = 30 * ms::kPsPerMs;
  bed.events.run_until(duration);
  const double achieved = static_cast<double>(received) / ms::to_seconds(duration) / 1e6;
  EXPECT_NEAR(achieved, mpps, mpps * 0.005 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Rates, CrcPacedRate, ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0),
                         [](const auto& info) {
                           return "kpps" + std::to_string(static_cast<int>(info.param * 1000));
                         });

// ---------------------------------------------------------------------------
// Generic generator: fill/classify round trip over the protocol matrix
// ---------------------------------------------------------------------------

struct ProtoMatrixParam {
  moongen::baseline::StaticGenConfig::L3 l3;
  moongen::baseline::StaticGenConfig::L4 l4;
  bool vlan;
  std::size_t size;
};

class ProtoMatrix : public ::testing::TestWithParam<ProtoMatrixParam> {};

TEST_P(ProtoMatrix, CraftedPacketsClassifyBack) {
  using moongen::baseline::StaticGenConfig;
  using moongen::baseline::StaticGenerator;
  const auto param = GetParam();

  static int next_dev = 40;  // distinct device pairs per instantiation
  const int dev_id = next_dev;
  next_dev += 2;
  auto& tx = mc::Device::config(dev_id, 1, 1);
  auto& rx = mc::Device::config(dev_id + 1, 1, 1);
  tx.connect_to(rx);

  StaticGenConfig cfg;
  cfg.packet_size = param.size;
  cfg.l3 = param.l3;
  cfg.l4 = param.l4;
  cfg.vlan_enabled = param.vlan;
  cfg.checksum_offload = false;
  StaticGenerator gen(tx, 0, cfg);
  gen.run_packets(16);

  mb::BufArray bufs(32);
  const auto n = rx.get_rx_queue(0).recv(bufs);
  ASSERT_EQ(n, 16u);
  for (auto* buf : bufs) {
    const auto pc = mp::classify(buf->bytes());
    ASSERT_TRUE(pc.has_value());
    EXPECT_EQ(pc->has_vlan, param.vlan);
    EXPECT_EQ(pc->ether_type, param.l3 == StaticGenConfig::L3::kIpv4 ? mp::EtherType::kIPv4
                                                                     : mp::EtherType::kIPv6);
    EXPECT_EQ(pc->l4_protocol, param.l4 == StaticGenConfig::L4::kUdp ? mp::IpProtocol::kUdp
                                                                     : mp::IpProtocol::kTcp);
  }
  bufs.free_all();
  tx.disconnect();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ProtoMatrix,
    ::testing::Values(
        ProtoMatrixParam{moongen::baseline::StaticGenConfig::L3::kIpv4,
                         moongen::baseline::StaticGenConfig::L4::kUdp, false, 60},
        ProtoMatrixParam{moongen::baseline::StaticGenConfig::L3::kIpv4,
                         moongen::baseline::StaticGenConfig::L4::kTcp, false, 60},
        ProtoMatrixParam{moongen::baseline::StaticGenConfig::L3::kIpv6,
                         moongen::baseline::StaticGenConfig::L4::kUdp, false, 80},
        ProtoMatrixParam{moongen::baseline::StaticGenConfig::L3::kIpv6,
                         moongen::baseline::StaticGenConfig::L4::kTcp, false, 80},
        ProtoMatrixParam{moongen::baseline::StaticGenConfig::L3::kIpv4,
                         moongen::baseline::StaticGenConfig::L4::kUdp, true, 64},
        ProtoMatrixParam{moongen::baseline::StaticGenConfig::L3::kIpv6,
                         moongen::baseline::StaticGenConfig::L4::kTcp, true, 96}),
    [](const auto& info) {
      std::string name =
          info.param.l3 == moongen::baseline::StaticGenConfig::L3::kIpv4 ? "v4" : "v6";
      name += info.param.l4 == moongen::baseline::StaticGenConfig::L4::kUdp ? "udp" : "tcp";
      if (info.param.vlan) name += "vlan";
      name += "_" + std::to_string(info.param.size);
      return name;
    });
