// Tests for the RPC workload plane: codec round-trips and garbage
// tolerance, the flat in-flight table (fuzzed against a reference map,
// backward-shift deletion, timed eviction), latency aggregation and
// merge, and end-to-end open/closed-loop runs on the Testbed — including
// the determinism contract (same seed => identical results, across
// repeated runs and shard counts, with and without faults).
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "nic/chip.hpp"
#include "rpc/codec.hpp"
#include "rpc/inflight.hpp"
#include "rpc/latency_recorder.hpp"
#include "rpc/open_loop.hpp"
#include "rpc/server_model.hpp"
#include "stats/samplers.hpp"
#include "testbed/scenario.hpp"

namespace mf = moongen::fault;
namespace mn = moongen::nic;
namespace mr = moongen::rpc;
namespace ms = moongen::sim;
namespace mtb = moongen::testbed;

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(RpcCodec, FieldsRoundTripThroughTemplate) {
  mr::RpcTemplateOptions opts;
  opts.frame_size = 96;
  const auto frame = mr::make_rpc_frame(opts);
  std::vector<std::uint8_t> bytes = *frame.data;
  mr::write_rpc_fields({bytes.data(), bytes.size()}, mr::Op::kSet, 0xDEADBEEFull, 1234,
                       5'000'000, 7);
  const auto d = mr::decode({bytes.data(), bytes.size()});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->op, mr::Op::kSet);
  EXPECT_EQ(d->seq, 0xDEADBEEFull);
  EXPECT_EQ(d->key, 1234u);
  EXPECT_EQ(d->tx_time_ps, 5'000'000u);
  EXPECT_EQ(d->value_len, 7u);
}

TEST(RpcCodec, ResponseOpcodesDecodeAndClassify) {
  mr::RpcTemplateOptions opts;
  opts.opcode = mr::Op::kGetHit;
  const auto frame = mr::make_rpc_frame(opts);
  std::vector<std::uint8_t> bytes = *frame.data;
  mr::write_rpc_fields({bytes.data(), bytes.size()}, mr::Op::kGetHit, 9, 10, 11);
  const auto d = mr::decode({bytes.data(), bytes.size()});
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(mr::is_response(d->op));
  EXPECT_FALSE(mr::is_response(mr::Op::kGet));
  EXPECT_FALSE(mr::is_response(mr::Op::kSet));
}

TEST(RpcCodec, DecodeRejectsGarbage) {
  // Not a UDP stack at all.
  std::vector<std::uint8_t> zeros(100, 0);
  EXPECT_FALSE(mr::decode({zeros.data(), zeros.size()}).has_value());

  const auto frame = mr::make_rpc_frame({});
  std::vector<std::uint8_t> good = *frame.data;
  mr::write_rpc_fields({good.data(), good.size()}, mr::Op::kGet, 1, 2, 3);

  // Truncated payload: the RPC header does not fit.
  EXPECT_FALSE(mr::decode({good.data(), 60}).has_value());

  // Corrupted magic.
  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[42] ^= 0xFF;
  EXPECT_FALSE(mr::decode({bad_magic.data(), bad_magic.size()}).has_value());

  // Opcode outside the protocol.
  std::vector<std::uint8_t> bad_op = good;
  bad_op[46] = 9;
  EXPECT_FALSE(mr::decode({bad_op.data(), bad_op.size()}).has_value());
}

TEST(RpcCodec, TemplateRejectsUndersizedFrame) {
  mr::RpcTemplateOptions opts;
  opts.frame_size = mr::RpcPacketView::kHeaderStack - 1;
  EXPECT_THROW(mr::make_rpc_frame(opts), std::invalid_argument);
}

TEST(RpcCodec, FramePoolRoundRobinReusesBuffers) {
  const auto tmpl = mr::make_rpc_frame({});
  mr::FramePool pool(tmpl, 4);
  EXPECT_EQ(pool.size(), 4u);
  auto [s0, f0] = pool.acquire();
  const auto* first = s0.data();
  for (int i = 0; i < 3; ++i) (void)pool.acquire();
  auto [s4, f4] = pool.acquire();
  EXPECT_EQ(s4.data(), first);  // wrapped around
  EXPECT_EQ(f4.data->size(), tmpl.data->size());
}

// ---------------------------------------------------------------------------
// InFlightTable
// ---------------------------------------------------------------------------

TEST(InFlightTable, InsertTakeContains) {
  mr::InFlightTable t(64);
  EXPECT_TRUE(t.insert(1, 100, 1000, 5));
  EXPECT_TRUE(t.insert(2, 200, 2000));
  EXPECT_FALSE(t.insert(1, 999, 9999));  // duplicate
  EXPECT_FALSE(t.insert(0, 1, 1));       // reserved empty marker
  EXPECT_TRUE(t.contains(1));
  EXPECT_FALSE(t.contains(3));
  EXPECT_EQ(t.size(), 2u);

  const auto rec = t.take(1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->key, 100u);
  EXPECT_EQ(rec->tx_time_ps, 1000u);
  EXPECT_EQ(rec->aux, 5u);
  EXPECT_FALSE(t.contains(1));
  EXPECT_FALSE(t.take(1).has_value());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.peak(), 2u);
}

TEST(InFlightTable, RefusesInsertsAtTheOccupancyCeiling) {
  mr::InFlightTable t(4);  // 16 slots, ceiling at 14
  std::size_t inserted = 0;
  for (std::uint64_t s = 1; s <= 16; ++s)
    if (t.insert(s, s, s)) ++inserted;
  EXPECT_EQ(inserted, 14u);
  EXPECT_EQ(t.size(), 14u);
  (void)t.take(3);
  EXPECT_TRUE(t.insert(99, 1, 1));  // room again after a removal
}

TEST(InFlightTable, FuzzMatchesReferenceMap) {
  // Dense sequence range on a small table: plenty of collisions and
  // backward shifts. The table must agree with std::unordered_map on
  // every operation's outcome.
  mr::InFlightTable t(1024);  // 2048 slots
  std::unordered_map<std::uint64_t, std::uint64_t> ref;  // seq -> key
  moongen::stats::SplitMix64 rng(2024);
  for (int op = 0; op < 50'000; ++op) {
    const std::uint64_t seq = 1 + rng.next() % 1500;
    const auto action = rng.next() % 3;
    if (action == 0 && ref.size() < 1400) {
      const std::uint64_t key = rng.next();
      const bool inserted = t.insert(seq, key, op);
      EXPECT_EQ(inserted, ref.emplace(seq, key).second);
    } else if (action == 1) {
      const auto rec = t.take(seq);
      const auto it = ref.find(seq);
      ASSERT_EQ(rec.has_value(), it != ref.end());
      if (rec.has_value()) {
        EXPECT_EQ(rec->key, it->second);
        ref.erase(it);
      }
    } else {
      EXPECT_EQ(t.contains(seq), ref.count(seq) == 1);
    }
    ASSERT_EQ(t.size(), ref.size());
  }
  for (const auto& [seq, key] : ref) EXPECT_TRUE(t.contains(seq));
}

TEST(InFlightTable, EvictOlderThanReclaimsExactlyTheExpired) {
  mr::InFlightTable t(256);
  for (std::uint64_t s = 1; s <= 200; ++s) ASSERT_TRUE(t.insert(s, s, s));
  std::size_t evicted = 0;
  std::uint64_t newest_evicted = 0;
  auto count = [&](const mr::InFlightTable::Record& r) {
    ++evicted;
    newest_evicted = std::max(newest_evicted, r.tx_time_ps);
  };
  // Entries can shift backwards past the scan position; a second sweep
  // catches stragglers (the documented two-sweep contract).
  t.evict_older_than(101, count);
  t.evict_older_than(101, count);
  EXPECT_EQ(evicted, 100u);
  EXPECT_LE(newest_evicted, 100u);
  EXPECT_EQ(t.size(), 100u);
  for (std::uint64_t s = 101; s <= 200; ++s) EXPECT_TRUE(t.contains(s));
}

TEST(InFlightTable, EvictFuzzHonorsTheTwoSweepContract) {
  // Randomized regression for the two-sweep contract: under arbitrary
  // interleavings of inserts, takes and evictions on a crowded table
  // (backward-shift deletion constantly moving records across the scan
  // position), a double sweep must reclaim *exactly* the expired records —
  // each exactly once, with none skipped and no survivor younger than the
  // deadline left behind.
  mr::InFlightTable t(512);  // 1024 slots; population pushed near capacity
  std::unordered_map<std::uint64_t, std::uint64_t> ref;  // seq -> tx_time
  moongen::stats::SplitMix64 rng(77);
  std::uint64_t next_seq = 1;
  std::uint64_t clock = 0;
  for (int round = 0; round < 400; ++round) {
    // Churn phase: mostly inserts (fresh, monotonically later tx times)
    // with takes mixed in so slots vacate and refill mid-stream.
    for (int op = 0; op < 120; ++op) {
      ++clock;
      if (rng.next() % 4 != 0) {
        if (ref.size() >= 800) continue;  // stay under the ceiling
        const std::uint64_t seq = next_seq++;
        ASSERT_TRUE(t.insert(seq, seq, clock));
        ref.emplace(seq, clock);
      } else if (!ref.empty()) {
        // Take a pseudo-random live entry.
        auto it = ref.begin();
        std::advance(it, static_cast<long>(rng.next() % ref.size()));
        const auto rec = t.take(it->first);
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->tx_time_ps, it->second);
        ref.erase(it);
      }
    }
    // Eviction phase: a deadline somewhere inside the live time range.
    const std::uint64_t deadline = clock > 60 ? clock - rng.next() % 60 : clock;
    std::unordered_map<std::uint64_t, int> evicted;  // seq -> times seen
    auto on_evict = [&](const mr::InFlightTable::Record& r) {
      EXPECT_LT(r.tx_time_ps, deadline);
      ++evicted[r.seq];
    };
    t.evict_older_than(deadline, on_evict);
    t.evict_older_than(deadline, on_evict);
    for (auto it = ref.begin(); it != ref.end();) {
      if (it->second < deadline) {
        EXPECT_EQ(evicted[it->first], 1) << "seq " << it->first;  // exactly once
        evicted.erase(it->first);
        it = ref.erase(it);
      } else {
        EXPECT_TRUE(t.contains(it->first)) << "seq " << it->first;
        ++it;
      }
    }
    EXPECT_TRUE(evicted.empty()) << "evicted a record the model never expired";
    ASSERT_EQ(t.size(), ref.size());
  }
}

// ---------------------------------------------------------------------------
// LatencyRecorder
// ---------------------------------------------------------------------------

TEST(LatencyRecorder, MergeEqualsCombinedStream) {
  mr::LatencyRecorder a;
  mr::LatencyRecorder b;
  mr::LatencyRecorder all;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    const std::uint64_t ps = i * 10'000;  // 10ns .. 10us
    (i % 2 == 0 ? a : b).record_ps(ps);
    all.record_ps(ps);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.p50_ns(), all.p50_ns());
  EXPECT_EQ(a.p99_ns(), all.p99_ns());
  EXPECT_EQ(a.min_ns(), all.min_ns());
  EXPECT_EQ(a.max_ns(), all.max_ns());
  EXPECT_NEAR(a.mean_ns(), all.mean_ns(), 1e-6);
  EXPECT_NEAR(a.stddev_ns(), all.stddev_ns(), 1e-6);
}

TEST(LatencyRecorder, WritesMachineReadableJson) {
  mr::LatencyRecorder r;
  r.record_ps(1'000'000);
  r.record_ps(2'000'000);
  std::ostringstream os;
  r.write_json(os, "open");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"label\": \"open\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p999_ns\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end on the Testbed
// ---------------------------------------------------------------------------

namespace {

std::unique_ptr<mtb::Testbed> pair_bed(int shards, const mf::FaultSpec& spec = {}) {
  mtb::Scenario s;
  s.seed(1).shards(shards).telemetry(false).faults(spec);
  s.device(0, mn::intel_x540()).name("client").with_seed(10).rx_store(false)
      .device(1, mn::intel_x540()).name("server").with_seed(20).rx_store(false)
      .link(0, 1).with_seed(30).duplex();
  return s.build();
}

struct E2eResult {
  std::uint64_t issued = 0;
  std::uint64_t matched = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t send_drops = 0;
  std::uint64_t garbage = 0;
  std::size_t inflight_after = 0;
  std::size_t peak_inflight = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t count = 0;
};

E2eResult run_open(int shards, const mf::FaultSpec& spec, double offered_rps,
                   double service_us, ms::SimTime end_ps, ms::SimTime timeout_ps) {
  auto tb = pair_bed(shards, spec);
  mr::ServerConfig sc;
  sc.workers = 1;
  sc.service = mr::ServerConfig::Service::kExponential;
  sc.service_mean_ps = service_us * static_cast<double>(ms::kPsPerUs);
  sc.seed = 7;
  mr::ServerModel server(tb->port("server"), sc);
  // Arm the server's stall site so `stall@rpc` rules are live probes —
  // the testbed's fault-rule validation rejects rules with no probe site.
  if (tb->has_faults()) server.install_faults(*tb->fault_plane(tb->shard_of(1)), "rpc.s0");

  mr::LatencyRecorder recorder;
  mr::WorkloadConfig wc;
  wc.offered_rps = offered_rps;
  wc.seed = 42;
  wc.warmup_ps = end_ps / 10;
  wc.cooldown_ps = end_ps / 20;
  wc.timeout_ps = timeout_ps;
  mr::OpenLoopGenerator gen(tb->port("client"), recorder, wc);
  gen.start(0, end_ps);
  tb->run_until(end_ps + (timeout_ps > 0 ? 3 * timeout_ps : 5 * ms::kPsPerMs));

  E2eResult out;
  out.issued = gen.issued();
  out.matched = gen.matched();
  out.timed_out = gen.timed_out();
  out.send_drops = gen.send_drops();
  out.garbage = gen.garbage();
  out.inflight_after = gen.inflight();
  out.peak_inflight = gen.peak_inflight();
  out.p50_ns = recorder.p50_ns();
  out.p99_ns = recorder.p99_ns();
  out.count = recorder.count();
  return out;
}

}  // namespace

TEST(RpcPlane, OpenLoopMatchesEveryRequestUnderLightLoad) {
  const auto r = run_open(1, {}, 50'000.0, 2.0, 50 * ms::kPsPerMs, 0);
  EXPECT_GT(r.issued, 2000u);
  EXPECT_EQ(r.matched, r.issued);
  EXPECT_EQ(r.timed_out, 0u);
  EXPECT_EQ(r.send_drops, 0u);
  EXPECT_EQ(r.garbage, 0u);
  EXPECT_EQ(r.inflight_after, 0u);
  EXPECT_GT(r.count, 0u);
  EXPECT_GT(r.p50_ns, 0u);
}

TEST(RpcPlane, RunsAreByteIdenticalAcrossRepeatsAndShards) {
  const auto spec = mf::FaultSpec::parse("seed=3;loss@wire:p=0.005;stall@rpc:p=0.002,param=1e8");
  const auto base = run_open(1, spec, 80'000.0, 4.0, 60 * ms::kPsPerMs, 5 * ms::kPsPerMs);
  const auto again = run_open(1, spec, 80'000.0, 4.0, 60 * ms::kPsPerMs, 5 * ms::kPsPerMs);
  const auto sharded = run_open(2, spec, 80'000.0, 4.0, 60 * ms::kPsPerMs, 5 * ms::kPsPerMs);
  for (const auto* r : {&again, &sharded}) {
    EXPECT_EQ(r->issued, base.issued);
    EXPECT_EQ(r->matched, base.matched);
    EXPECT_EQ(r->timed_out, base.timed_out);
    EXPECT_EQ(r->p50_ns, base.p50_ns);
    EXPECT_EQ(r->p99_ns, base.p99_ns);
    EXPECT_EQ(r->count, base.count);
  }
}

TEST(RpcPlane, LossFaultsTimeOutAndEveryEntryIsReclaimed) {
  const auto spec = mf::FaultSpec::parse("seed=5;loss@wire:p=0.01");
  const auto r = run_open(1, spec, 60'000.0, 3.0, 80 * ms::kPsPerMs, 5 * ms::kPsPerMs);
  EXPECT_GT(r.timed_out, 0u);
  EXPECT_LT(r.matched, r.issued);
  // Conservation: every issued request was matched, timed out, or dropped
  // at send; nothing leaks in the table once the sweeps have drained.
  EXPECT_EQ(r.matched + r.timed_out + r.send_drops, r.issued);
  EXPECT_EQ(r.inflight_after, 0u);
}

TEST(RpcPlane, ClosedLoopBacklogIsBoundedByUsers) {
  auto tb = pair_bed(1);
  mr::ServerConfig sc;
  sc.workers = 1;
  sc.service = mr::ServerConfig::Service::kFixed;
  sc.service_mean_ps = 50 * ms::kPsPerUs;  // deliberately slow: 20 krps
  sc.seed = 7;
  mr::ServerModel server(tb->port("server"), sc);

  mr::LatencyRecorder recorder;
  mr::WorkloadConfig wc;
  wc.offered_rps = 1e6;  // irrelevant for the closed loop's backlog bound
  wc.seed = 42;
  mr::ClosedLoopConfig cc;
  cc.users = 8;
  cc.think_mean_ps = 10.0 * static_cast<double>(ms::kPsPerUs);
  mr::ClosedLoopGenerator gen(tb->port("client"), recorder, wc, cc);
  gen.start(0, 30 * ms::kPsPerMs);
  tb->run_until(35 * ms::kPsPerMs);

  EXPECT_GT(gen.issued(), 100u);
  EXPECT_LE(gen.peak_inflight(), cc.users);
  EXPECT_EQ(gen.matched(), gen.issued());
}

TEST(RpcPlane, OpenLoopTailExceedsClosedLoopNearSaturation) {
  // Same offered load (120 krps) against the same server (125 krps
  // capacity). The open loop keeps departing while queues build; the
  // closed loop's 16 users throttle. The open p99 must be strictly worse.
  const ms::SimTime end_ps = 300 * ms::kPsPerMs;
  const auto open = run_open(1, {}, 120'000.0, 8.0, end_ps, 0);

  auto tb = pair_bed(1);
  mr::ServerConfig sc;
  sc.workers = 1;
  sc.service = mr::ServerConfig::Service::kExponential;
  sc.service_mean_ps = 8.0 * static_cast<double>(ms::kPsPerUs);
  sc.seed = 7;
  mr::ServerModel server(tb->port("server"), sc);
  mr::LatencyRecorder recorder;
  mr::WorkloadConfig wc;
  wc.offered_rps = 120'000.0;
  wc.seed = 42;
  wc.warmup_ps = end_ps / 10;
  wc.cooldown_ps = end_ps / 20;
  mr::ClosedLoopConfig cc;
  cc.users = 16;
  cc.think_mean_ps = static_cast<double>(cc.users) / 120'000.0 * 1e12;
  mr::ClosedLoopGenerator gen(tb->port("client"), recorder, wc, cc);
  gen.start(0, end_ps);
  tb->run_until(end_ps + 5 * ms::kPsPerMs);

  ASSERT_GT(open.count, 1000u);
  ASSERT_GT(recorder.count(), 1000u);
  EXPECT_GT(open.p99_ns, recorder.p99_ns());
}

TEST(RpcPlane, ServerCacheMissesAreReported) {
  auto tb = pair_bed(1);
  mr::ServerConfig sc;
  sc.workers = 2;
  sc.service = mr::ServerConfig::Service::kFixed;
  sc.service_mean_ps = 2 * ms::kPsPerUs;
  sc.cache_keys = 8;  // keys >= 8 miss
  sc.seed = 7;
  mr::ServerModel server(tb->port("server"), sc);

  mr::LatencyRecorder recorder;
  mr::WorkloadConfig wc;
  wc.offered_rps = 50'000.0;
  wc.key_space = 64;
  wc.zipf_skew = 0.0;  // uniform keys: ~7/8 of GETs miss
  wc.get_fraction = 1.0;
  wc.seed = 42;
  mr::OpenLoopGenerator gen(tb->port("client"), recorder, wc);
  gen.start(0, 20 * ms::kPsPerMs);
  tb->run_until(25 * ms::kPsPerMs);

  EXPECT_GT(server.misses(), 0u);
  EXPECT_GT(server.completed(), 0u);
  EXPECT_EQ(gen.matched(), gen.issued());  // misses still get responses
}
