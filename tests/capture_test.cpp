// Tests for the pcap capture module: file format round trips, reader
// robustness, and simulation taps.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "capture/pcap.hpp"
#include "proto/packet_view.hpp"
#include "core/rate_control.hpp"
#include "sim_testbed.hpp"

namespace cap = moongen::capture;
namespace mn = moongen::nic;
namespace mc = moongen::core;
namespace ms = moongen::sim;

namespace {

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("moongen_pcap_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

}  // namespace

TEST_F(PcapTest, WriteReadRoundTrip) {
  {
    cap::PcapWriter writer(path_.string());
    std::vector<std::uint8_t> frame_a(64, 0xaa);
    std::vector<std::uint8_t> frame_b(128, 0xbb);
    writer.write(frame_a, 1'000'000'123ull);
    writer.write(frame_b, 2'500'000'456ull);
    EXPECT_EQ(writer.packets_written(), 2u);
    EXPECT_TRUE(writer.ok());
  }
  cap::PcapReader reader(path_.string());
  ASSERT_TRUE(reader.valid());
  auto a = reader.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->time_ns, 1'000'000'123ull);
  EXPECT_EQ(a->data.size(), 64u);
  EXPECT_EQ(a->data[0], 0xaa);
  EXPECT_EQ(a->original_length, 64u);
  auto b = reader.next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->time_ns, 2'500'000'456ull);
  EXPECT_EQ(b->data.size(), 128u);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.packets_read(), 2u);
}

TEST_F(PcapTest, SnaplenTruncatesButKeepsOriginalLength) {
  {
    cap::PcapWriter writer(path_.string(), /*snaplen=*/32);
    std::vector<std::uint8_t> big(1500, 0x5a);
    writer.write(big, 0);
  }
  cap::PcapReader reader(path_.string());
  auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->data.size(), 32u);
  EXPECT_EQ(rec->original_length, 1500u);
}

TEST_F(PcapTest, ReaderRejectsGarbage) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a pcap file at all, not even close";
  }
  cap::PcapReader reader(path_.string());
  EXPECT_FALSE(reader.valid());
  EXPECT_FALSE(reader.next().has_value());
}

TEST_F(PcapTest, ReaderStopsAtTruncatedRecord) {
  {
    cap::PcapWriter writer(path_.string());
    std::vector<std::uint8_t> frame(64, 1);
    writer.write(frame, 0);
    writer.write(frame, 1);
  }
  // Chop the file mid-record.
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 30);
  cap::PcapReader reader(path_.string());
  ASSERT_TRUE(reader.valid());
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());  // truncated second record
}

TEST_F(PcapTest, MicrosecondFormatIsAccepted) {
  {
    // Hand-craft a classic microsecond pcap with one record.
    std::ofstream out(path_, std::ios::binary);
    const std::uint32_t magic = 0xa1b2c3d4;
    const std::uint16_t v_major = 2, v_minor = 4;
    const std::uint32_t zero = 0, snaplen = 65535, network = 1;
    out.write(reinterpret_cast<const char*>(&magic), 4);
    out.write(reinterpret_cast<const char*>(&v_major), 2);
    out.write(reinterpret_cast<const char*>(&v_minor), 2);
    out.write(reinterpret_cast<const char*>(&zero), 4);
    out.write(reinterpret_cast<const char*>(&zero), 4);
    out.write(reinterpret_cast<const char*>(&snaplen), 4);
    out.write(reinterpret_cast<const char*>(&network), 4);
    const std::uint32_t ts_sec = 10, ts_us = 500, len = 4;
    out.write(reinterpret_cast<const char*>(&ts_sec), 4);
    out.write(reinterpret_cast<const char*>(&ts_us), 4);
    out.write(reinterpret_cast<const char*>(&len), 4);
    out.write(reinterpret_cast<const char*>(&len), 4);
    const char payload[4] = {1, 2, 3, 4};
    out.write(payload, 4);
  }
  cap::PcapReader reader(path_.string());
  ASSERT_TRUE(reader.valid());
  auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->time_ns, 10'000'000'000ull + 500'000ull);  // us scaled to ns
  EXPECT_EQ(rec->data.size(), 4u);
}

TEST_F(PcapTest, TxTeeCapturesAndForwards) {
  moongen::test::TenGbeFiberBed bed;
  {
    cap::PcapWriter writer(path_.string());
    cap::TxTee tee(bed.a, writer);  // wraps the link installed by the bed
    mc::UdpTemplateOptions opts;
    opts.frame_size = 60;
    for (int i = 0; i < 5; ++i) bed.a.tx_queue(0).post(mc::make_udp_frame(opts));
    bed.events.run();
    EXPECT_EQ(writer.packets_written(), 5u);
  }
  // Frames were also forwarded to the peer.
  EXPECT_EQ(bed.b.stats().rx_packets, 5u);
  // And the capture parses back as the same UDP packets.
  const auto frames = cap::load_frames(path_.string());
  ASSERT_EQ(frames.size(), 5u);
  for (const auto& f : frames) {
    auto pc = moongen::proto::classify({f.data->data(), f.data->size()});
    ASSERT_TRUE(pc.has_value());
    EXPECT_TRUE(pc->is_udp);
  }
}

TEST_F(PcapTest, RxCaptureRecordsArrivals) {
  moongen::test::TenGbeFiberBed bed;
  {
    cap::PcapWriter writer(path_.string());
    cap::capture_rx(bed.b, 0, writer);
    mc::UdpTemplateOptions opts;
    opts.frame_size = 124;
    for (int i = 0; i < 3; ++i) bed.a.tx_queue(0).post(mc::make_udp_frame(opts));
    bed.a.tx_queue(0).post(mn::make_gap_frame(100));  // dropped in hardware
    bed.events.run();
    EXPECT_EQ(writer.packets_written(), 3u);  // invalid frame not captured
  }
  cap::PcapReader reader(path_.string());
  ASSERT_TRUE(reader.valid());
  auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->data.size(), 124u);
  EXPECT_GT(rec->time_ns, 0u);
}

TEST_F(PcapTest, LoadFramesHonorsLimit) {
  {
    cap::PcapWriter writer(path_.string());
    std::vector<std::uint8_t> frame(64, 7);
    for (int i = 0; i < 10; ++i) writer.write(frame, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(cap::load_frames(path_.string(), 4).size(), 4u);
  EXPECT_EQ(cap::load_frames(path_.string()).size(), 10u);
}

TEST_F(PcapTest, WriterReportsUnopenableFile) {
  cap::PcapWriter writer("/nonexistent_dir_for_moongen_test/capture.pcap");
  EXPECT_FALSE(writer.ok());
  std::vector<std::uint8_t> frame(64, 0xcc);
  // Every write is refused and accounted; none is reported as written.
  EXPECT_FALSE(writer.write(frame, 0));
  EXPECT_FALSE(writer.write(frame, 1));
  EXPECT_EQ(writer.packets_written(), 0u);
  EXPECT_EQ(writer.write_errors(), 2u);
  EXPECT_FALSE(writer.flush());
}

TEST_F(PcapTest, WriterErrorPathAlsoCoversFrameOverload) {
  cap::PcapWriter writer("/nonexistent_dir_for_moongen_test/capture.pcap");
  mn::Frame frame = mn::make_frame(std::vector<std::uint8_t>(64, 0x11));
  EXPECT_FALSE(writer.write(frame, ms::SimTime{1'000'000}));
  EXPECT_EQ(writer.write_errors(), 1u);
}

TEST_F(PcapTest, WriterSucceedsAfterGoodPathAndFlushes) {
  cap::PcapWriter writer(path_.string());
  std::vector<std::uint8_t> frame(64, 0x22);
  EXPECT_TRUE(writer.write(frame, 42));
  EXPECT_TRUE(writer.flush());
  EXPECT_EQ(writer.write_errors(), 0u);
  EXPECT_EQ(writer.packets_written(), 1u);
}
