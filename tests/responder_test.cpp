// Tests for the ARP/ICMP responder: real-time reaction to incoming
// traffic over a simulated link (paper Sections 3.4 / 10).
#include <gtest/gtest.h>

#include "core/rate_control.hpp"
#include "core/responder.hpp"
#include "proto/checksum.hpp"
#include "proto/packet_view.hpp"
#include "sim_testbed.hpp"

namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace mp = moongen::proto;
namespace ms = moongen::sim;

TEST(Responder, AnswersArpRequestForItsAddress) {
  moongen::test::TenGbeFiberBed bed;
  moongen::wire::Link reverse(bed.b, bed.a, moongen::wire::fiber_om3(2.0), 78);
  const auto my_mac = mp::MacAddress::from_uint64(0x0200000000bb);
  mc::Responder responder(bed.b, {.ip = mp::IPv4Address{10, 0, 0, 2}, .mac = my_mac});

  bed.a.tx_queue(0).post(mc::make_arp_request(mp::MacAddress::from_uint64(0x0200000000aa),
                                              mp::IPv4Address{10, 0, 0, 1},
                                              mp::IPv4Address{10, 0, 0, 2}));
  bed.events.run();

  EXPECT_EQ(responder.arp_replies(), 1u);
  const auto entries = bed.a.rx_queue(0).drain();
  ASSERT_EQ(entries.size(), 1u);
  const auto& bytes = *entries[0].frame.data;
  const auto* eth = reinterpret_cast<const mp::EthernetHeader*>(bytes.data());
  EXPECT_EQ(eth->ether_type(), mp::EtherType::kArp);
  const auto* arp =
      reinterpret_cast<const mp::ArpHeader*>(bytes.data() + sizeof(mp::EthernetHeader));
  EXPECT_EQ(arp->oper(), mp::ArpHeader::kOperReply);
  EXPECT_EQ(arp->sha, my_mac);
  EXPECT_EQ(arp->sender_ip().to_string(), "10.0.0.2");
  EXPECT_EQ(arp->target_ip().to_string(), "10.0.0.1");
  EXPECT_EQ(eth->dst, mp::MacAddress::from_uint64(0x0200000000aa));
}

TEST(Responder, IgnoresArpForOtherAddresses) {
  moongen::test::TenGbeFiberBed bed;
  moongen::wire::Link reverse(bed.b, bed.a, moongen::wire::fiber_om3(2.0), 79);
  mc::Responder responder(bed.b, {.ip = mp::IPv4Address{10, 0, 0, 2},
                                  .mac = mp::MacAddress::from_uint64(1)});
  bed.a.tx_queue(0).post(mc::make_arp_request(mp::MacAddress::from_uint64(2),
                                              mp::IPv4Address{10, 0, 0, 1},
                                              mp::IPv4Address{10, 0, 0, 99}));  // not ours
  bed.events.run();
  EXPECT_EQ(responder.arp_replies(), 0u);
  EXPECT_EQ(responder.ignored(), 1u);
  EXPECT_EQ(bed.a.rx_queue(0).pending(), 0u);
}

TEST(Responder, EchoesIcmpPing) {
  moongen::test::TenGbeFiberBed bed;
  moongen::wire::Link reverse(bed.b, bed.a, moongen::wire::fiber_om3(2.0), 80);
  const auto my_mac = mp::MacAddress::from_uint64(0x0200000000bb);
  mc::Responder responder(bed.b, {.ip = mp::IPv4Address{10, 0, 0, 2}, .mac = my_mac});

  bed.a.tx_queue(0).post(mc::make_icmp_echo_request(
      mp::MacAddress::from_uint64(0x0200000000aa), my_mac, mp::IPv4Address{10, 0, 0, 1},
      mp::IPv4Address{10, 0, 0, 2}, /*ident=*/7, /*seq=*/3, /*payload=*/48));
  bed.events.run();

  EXPECT_EQ(responder.echo_replies(), 1u);
  const auto entries = bed.a.rx_queue(0).drain();
  ASSERT_EQ(entries.size(), 1u);
  const auto& bytes = *entries[0].frame.data;
  const auto pc = mp::classify({bytes.data(), bytes.size()});
  ASSERT_TRUE(pc.has_value());
  EXPECT_EQ(pc->l4_protocol, mp::IpProtocol::kIcmp);
  const auto* ip = reinterpret_cast<const mp::Ipv4Header*>(bytes.data() + pc->l3_offset);
  EXPECT_TRUE(mp::verify_ipv4_checksum(*ip));
  EXPECT_EQ(ip->src().to_string(), "10.0.0.2");
  EXPECT_EQ(ip->dst().to_string(), "10.0.0.1");
  const auto* icmp = reinterpret_cast<const mp::IcmpHeader*>(bytes.data() + pc->l4_offset);
  EXPECT_EQ(icmp->type, mp::IcmpHeader::kEchoReply);
  EXPECT_EQ(mp::ntoh16(icmp->identifier_be), 7);
  EXPECT_EQ(mp::ntoh16(icmp->sequence_be), 3);
  // ICMP checksum over the reply must verify (fold to zero).
  const std::uint32_t sum =
      mp::checksum_partial({bytes.data() + pc->l4_offset, bytes.size() - pc->l4_offset});
  EXPECT_EQ(mp::checksum_finish(sum), 0);
  // Echo payload preserved.
  EXPECT_EQ(bytes[pc->l4_offset + sizeof(mp::IcmpHeader)], 'a');
}

TEST(Responder, PingRoundTripTimeMatchesCable) {
  // A ping's RTT through the simulation equals twice the cable latency
  // plus the frame serialization times.
  moongen::test::TenGbeFiberBed bed(10.0);
  moongen::wire::Link reverse(bed.b, bed.a, moongen::wire::fiber_om3(10.0), 81);
  mc::Responder responder(bed.b, {.ip = mp::IPv4Address{10, 0, 0, 2},
                                  .mac = mp::MacAddress::from_uint64(2)});
  ms::SimTime sent_at = 0;
  ms::SimTime received_at = 0;
  bed.a.rx_queue(0).set_callback(
      [&](const mn::RxQueueModel::Entry& e) { received_at = e.complete_ps; });

  bed.a.tx_queue(0).post(mc::make_icmp_echo_request(
      mp::MacAddress::from_uint64(1), mp::MacAddress::from_uint64(2),
      mp::IPv4Address{10, 0, 0, 1}, mp::IPv4Address{10, 0, 0, 2}, 1, 1));
  sent_at = bed.events.now();
  bed.events.run();
  ASSERT_GT(received_at, sent_at);
  const double rtt_us = ms::to_us(received_at - sent_at);
  // Two cable traversals (~0.36 us each incl. modulation) + DMA fetches
  // (~0.4-0.7 us each) + serialization: well under 5 us, over 1 us.
  EXPECT_GT(rtt_us, 1.0);
  EXPECT_LT(rtt_us, 5.0);
}

TEST(Responder, MixedTrafficOnlyAnswersWhatItShould) {
  moongen::test::TenGbeFiberBed bed;
  moongen::wire::Link reverse(bed.b, bed.a, moongen::wire::fiber_om3(2.0), 82);
  mc::Responder responder(bed.b, {.ip = mp::IPv4Address{10, 0, 0, 2},
                                  .mac = mp::MacAddress::from_uint64(2)});
  // One ARP for us, one UDP packet (ignored), one ping for someone else.
  bed.a.tx_queue(0).post(mc::make_arp_request(mp::MacAddress::from_uint64(1),
                                              mp::IPv4Address{10, 0, 0, 1},
                                              mp::IPv4Address{10, 0, 0, 2}));
  mc::UdpTemplateOptions udp;
  udp.frame_size = 60;
  bed.a.tx_queue(0).post(mc::make_udp_frame(udp));
  bed.a.tx_queue(0).post(mc::make_icmp_echo_request(
      mp::MacAddress::from_uint64(1), mp::MacAddress::from_uint64(2),
      mp::IPv4Address{10, 0, 0, 1}, mp::IPv4Address{10, 0, 0, 77}, 1, 1));
  bed.events.run();
  EXPECT_EQ(responder.arp_replies(), 1u);
  EXPECT_EQ(responder.echo_replies(), 0u);
  EXPECT_EQ(responder.ignored(), 2u);
}
