// Tests for the embedded scripting language: lexer, parser, interpreter
// semantics, and the MoonGen bindings (the paper's Listings run as actual
// scripts).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "core/task.hpp"
#include "fault/fault.hpp"
#include "membuf/mempool.hpp"
#include "script/bindings.hpp"
#include "script/compiler.hpp"
#include "script/interpreter.hpp"
#include "script/lexer.hpp"
#include "script/parser.hpp"
#include "script/specializer.hpp"
#include "script/trace.hpp"
#include "script/vm.hpp"

namespace sc = moongen::script;
namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mflt = moongen::fault;

namespace {

/// Runs a chunk and returns the value of global `result`.
sc::Value eval(const std::string& source) {
  sc::Interpreter interp(sc::parse(source));
  interp.set_step_limit(10'000'000);
  interp.run();
  return interp.get_global("result");
}

double eval_number(const std::string& source) {
  const auto v = eval(source);
  EXPECT_TRUE(v.is_number()) << source << " -> " << v.to_display_string();
  return v.is_number() ? v.as_number() : 0;
}

std::string eval_string(const std::string& source) {
  const auto v = eval(source);
  EXPECT_TRUE(v.is_string()) << source;
  return v.is_string() ? v.as_string() : "";
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(ScriptLexer, TokenizesNumbersStringsNames) {
  const auto tokens = sc::tokenize("local x = 42 + 0x10 .. \"hi\\n\"");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].type, sc::TokenType::kLocal);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[3].number, 42.0);
  EXPECT_EQ(tokens[5].number, 16.0);
  EXPECT_EQ(tokens[7].text, "hi\n");
}

TEST(ScriptLexer, SkipsCommentsAndTracksLines) {
  const auto tokens = sc::tokenize("-- comment\n--[[ long\ncomment ]]\nx");
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[0].line, 4);
}

TEST(ScriptLexer, RejectsUnterminatedString) {
  EXPECT_THROW(sc::tokenize("local s = \"oops"), sc::ScriptError);
}

TEST(ScriptLexer, MultiCharOperators) {
  const auto tokens = sc::tokenize("== ~= <= >= .. ...");
  EXPECT_EQ(tokens[0].type, sc::TokenType::kEq);
  EXPECT_EQ(tokens[1].type, sc::TokenType::kNe);
  EXPECT_EQ(tokens[2].type, sc::TokenType::kLe);
  EXPECT_EQ(tokens[3].type, sc::TokenType::kGe);
  EXPECT_EQ(tokens[4].type, sc::TokenType::kConcat);
  EXPECT_EQ(tokens[5].type, sc::TokenType::kEllipsis);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ScriptParser, RejectsSyntaxErrors) {
  EXPECT_THROW(sc::parse("if x then"), sc::ScriptError);        // missing end
  EXPECT_THROW(sc::parse("local = 3"), sc::ScriptError);        // missing name
  EXPECT_THROW(sc::parse("x +"), sc::ScriptError);              // incomplete expr
  EXPECT_THROW(sc::parse("1 + 2"), sc::ScriptError);            // expr not a statement
  EXPECT_THROW(sc::parse("for i = 1 do end"), sc::ScriptError); // missing stop
}

TEST(ScriptParser, AcceptsTheListingShapes) {
  // Shapes from the paper's Listings 1-3.
  EXPECT_NO_THROW(sc::parse(R"(
    function master(txPort, rxPort, fgRate, bgRate)
      local tDev = device.config(txPort, 1, 2)
      device.waitForLinks()
      tDev:getTxQueue(0):setRate(bgRate)
      mg.launchLua("loadSlave", tDev:getTxQueue(0), 42)
      mg.waitForSlaves()
    end
    function loadSlave(queue, port)
      local mem = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill{
          pktLength = PKT_SIZE,
          ethSrc = queue,
          udpDst = port,
        }
      end)
      while dpdk.running() do
        bufs:alloc(PKT_SIZE)
        for _, buf in ipairs(bufs) do
          local pkt = buf:getUdpPacket()
          pkt.ip.src:set(baseIP + math.random(255) - 1)
        end
        bufs:offloadUdpChecksums()
        local sent = queue:send(bufs)
      end
    end
  )"));
}

// ---------------------------------------------------------------------------
// Interpreter semantics
// ---------------------------------------------------------------------------

TEST(ScriptInterp, ArithmeticAndPrecedence) {
  EXPECT_EQ(eval_number("result = 2 + 3 * 4"), 14);
  EXPECT_EQ(eval_number("result = (2 + 3) * 4"), 20);
  EXPECT_EQ(eval_number("result = 2 ^ 3 ^ 2"), 512);  // right associative
  EXPECT_EQ(eval_number("result = -2 ^ 2"), -4);      // unary below ^
  EXPECT_EQ(eval_number("result = 7 % 3"), 1);
  EXPECT_EQ(eval_number("result = -7 % 3"), 2);  // Lua modulo semantics
  EXPECT_EQ(eval_number("result = 10 / 4"), 2.5);
}

TEST(ScriptInterp, ComparisonAndLogic) {
  EXPECT_EQ(eval("result = 1 < 2 and 2 <= 2 and 3 > 2 and 3 >= 3").as_bool(), true);
  EXPECT_EQ(eval("result = 1 == 1.0").as_bool(), true);
  EXPECT_EQ(eval("result = 'a' ~= 'b'").as_bool(), true);
  // and/or return operands, not booleans.
  EXPECT_EQ(eval_number("result = false or 5"), 5);
  EXPECT_EQ(eval_number("result = nil and 3 or 7"), 7);
  EXPECT_EQ(eval_string("result = 'x' and 'y'"), "y");
}

TEST(ScriptInterp, StringsAndConcat) {
  EXPECT_EQ(eval_string("result = 'a' .. 'b' .. 1"), "ab1");
  EXPECT_EQ(eval_number("result = #'hello'"), 5);
  EXPECT_EQ(eval_string("result = tostring(42)"), "42");
  EXPECT_EQ(eval_number("result = tonumber('3.5')"), 3.5);
  EXPECT_TRUE(eval("result = tonumber('zzz')").is_nil());
}

TEST(ScriptInterp, LocalScopingAndShadowing) {
  EXPECT_EQ(eval_number(R"(
    local x = 1
    do
      local x = 2
    end
    result = x
  )"), 1);
}

TEST(ScriptInterp, GlobalAssignmentFromFunction) {
  EXPECT_EQ(eval_number(R"(
    function set()
      g = 99
    end
    set()
    result = g
  )"), 99);
}

TEST(ScriptInterp, WhileAndBreak) {
  EXPECT_EQ(eval_number(R"(
    local i = 0
    while true do
      i = i + 1
      if i >= 10 then break end
    end
    result = i
  )"), 10);
}

TEST(ScriptInterp, RepeatUntil) {
  EXPECT_EQ(eval_number(R"(
    local n = 0
    repeat
      n = n + 1
    until n >= 3
    result = n
  )"), 3);
}

TEST(ScriptInterp, NumericForWithStep) {
  EXPECT_EQ(eval_number(R"(
    local sum = 0
    for i = 1, 10 do sum = sum + i end
    for i = 10, 1, -2 do sum = sum + 1 end
    result = sum
  )"), 60);
}

TEST(ScriptInterp, GenericForOverIpairs) {
  EXPECT_EQ(eval_number(R"(
    local t = {10, 20, 30}
    local sum = 0
    for i, v in ipairs(t) do sum = sum + i * v end
    result = sum
  )"), 10 + 40 + 90);
}

TEST(ScriptInterp, GenericForOverPairs) {
  EXPECT_EQ(eval_number(R"(
    local t = {a = 1, b = 2, c = 3}
    local sum = 0
    for k, v in pairs(t) do sum = sum + v end
    result = sum
  )"), 6);
}

TEST(ScriptInterp, FunctionsAndRecursion) {
  EXPECT_EQ(eval_number(R"(
    function fib(n)
      if n < 2 then return n end
      return fib(n - 1) + fib(n - 2)
    end
    result = fib(15)
  )"), 610);
}

TEST(ScriptInterp, ClosuresCaptureEnvironment) {
  EXPECT_EQ(eval_number(R"(
    local function counter()
      local n = 0
      return function()
        n = n + 1
        return n
      end
    end
    local c = counter()
    c()
    c()
    result = c()
  )"), 3);
}

TEST(ScriptInterp, MultipleReturnValues) {
  EXPECT_EQ(eval_number(R"(
    local function two()
      return 3, 4
    end
    local a, b = two()
    result = a * 10 + b
  )"), 34);
}

TEST(ScriptInterp, TablesRecordsAndArrays) {
  EXPECT_EQ(eval_number(R"(
    local t = { x = 1, [2] = 20, "first" }
    t.y = t.x + 10
    result = t.y + t[2] + #t
  )"), 11 + 20 + 2);  // t[1]="first", t[2]=20, so #t == 2
}

TEST(ScriptInterp, NestedTables) {
  EXPECT_EQ(eval_number(R"(
    local cfg = { inner = { value = 5 } }
    cfg.inner.value = cfg.inner.value + 1
    result = cfg.inner.value
  )"), 6);
}

TEST(ScriptInterp, MathLibrary) {
  EXPECT_EQ(eval_number("result = math.floor(3.7)"), 3);
  EXPECT_EQ(eval_number("result = math.max(1, 5, 3)"), 5);
  EXPECT_EQ(eval_number("result = math.min(4, 2)"), 2);
  // math.random(n) stays in [1, n].
  EXPECT_EQ(eval("result = (function()\n"
                 "  for i = 1, 1000 do\n"
                 "    local r = math.random(255)\n"
                 "    if r < 1 or r > 255 then return false end\n"
                 "  end\n"
                 "  return true\n"
                 "end)()").as_bool(),
            true);
}

TEST(ScriptInterp, StringFormat) {
  EXPECT_EQ(eval_string("result = string.format('%d pkts at %.2f Mpps', 42, 1.5)"),
            "42 pkts at 1.50 Mpps");
  EXPECT_EQ(eval_string("result = string.format('%s=%x', 'id', 255)"), "id=ff");
}

TEST(ScriptInterp, RuntimeErrorsCarryMessages) {
  EXPECT_THROW(eval("result = nil + 1"), sc::ScriptError);
  EXPECT_THROW(eval("local t = nil; result = t.x"), sc::ScriptError);
  EXPECT_THROW(eval("undefined_function()"), sc::ScriptError);
  EXPECT_THROW(eval("error('boom')"), sc::ScriptError);
}

TEST(ScriptInterp, StepLimitStopsRunawayScripts) {
  sc::Interpreter interp(sc::parse("while true do end"));
  interp.set_step_limit(10'000);
  EXPECT_THROW(interp.run(), sc::ScriptError);
}

TEST(ScriptInterp, AssertPassesAndFails) {
  EXPECT_NO_THROW(eval("assert(1 == 1, 'fine') result = 1"));
  EXPECT_THROW(eval("assert(false, 'nope')"), sc::ScriptError);
}

// ---------------------------------------------------------------------------
// MoonGen bindings: the paper's scripts end to end
// ---------------------------------------------------------------------------

TEST(ScriptBindings, QualityOfServiceScriptRunsEndToEnd) {
  mc::reset_run_state();
  // A condensed quality-of-service-test.lua (paper Listings 1-3): two load
  // slaves with different UDP ports, one counter slave, real devices.
  const std::string script = R"(
    local PKT_SIZE = 124
    function master(txPort, rxPort)
      local tDev = device.config(txPort, 1, 2)
      local rDev = device.config(rxPort)
      device.waitForLinks()
      tDev:connectTo(rDev)
      tDev:getTxQueue(0):setRate(100)
      tDev:getTxQueue(1):setRate(50)
      mg.launchLua("loadSlave", tDev:getTxQueue(0), 42)
      mg.launchLua("loadSlave", tDev:getTxQueue(1), 43)
      mg.launchLua("counterSlave", rDev:getRxQueue(0))
      mg.stopAfter(0.4)
      mg.waitForSlaves()
    end

    function loadSlave(queue, port)
      local mem = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill{
          pktLength = PKT_SIZE,
          ethSrc = queue,
          ethDst = "10:11:12:13:14:15",
          ipDst = "192.168.1.1",
          udpSrc = 1234,
          udpDst = port,
        }
      end)
      local baseIP = parseIPAddress("10.0.0.1")
      local bufs = mem:bufArray()
      local total = 0
      while dpdk.running() do
        bufs:alloc(PKT_SIZE)
        for _, buf in ipairs(bufs) do
          local pkt = buf:getUdpPacket()
          pkt.ip.src:set(baseIP + math.random(255) - 1)
        end
        bufs:offloadUdpChecksums()
        total = total + queue:send(bufs)
      end
      sent = total
    end

    function counterSlave(queue)
      local bufs = memory.bufArray()
      local counts = {}
      while dpdk.running() do
        local rx = queue:recv(bufs)
        for i = 1, rx do
          local buf = bufs[i]
          local port = buf:getUdpPacket().udp:getDstPort()
          counts[port] = (counts[port] or 0) + 1
        end
        bufs:freeAll()
      end
      seen42 = counts[42] or 0
      seen43 = counts[43] or 0
    end
  )";
  sc::ScriptRuntime runtime(script);
  runtime.run_master({sc::Value(50.0), sc::Value(51.0)});
  runtime.wait();
  EXPECT_EQ(runtime.slaves_launched(), 3u);
  mc::reset_run_state();
}

TEST(ScriptBindings, PacketCraftingMatchesFill) {
  mc::reset_run_state();
  const std::string script = R"(
    function master()
      local mem = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill{
          pktLength = 100,
          ethDst = "aa:bb:cc:dd:ee:ff",
          ipSrc = "10.1.2.3",
          ipDst = "10.4.5.6",
          udpSrc = 1111,
          udpDst = 2222,
        }
      end)
      local bufs = mem:bufArray(4)
      bufs:alloc(100)
      local pkt = bufs[1]:getUdpPacket()
      src_port = pkt.udp:getSrcPort()
      dst_port = pkt.udp:getDstPort()
      pkt.ip.src:set(parseIPAddress("172.16.0.9"))
      src_ip = pkt.ip.src:getString()
      ttl0 = pkt.ip:getTTL()
      batch = #bufs
      bufs:freeAll()
    end
  )";
  sc::ScriptRuntime runtime(script);
  runtime.run_master();
  EXPECT_EQ(runtime.master().get_global("src_port").as_number(), 1111);
  EXPECT_EQ(runtime.master().get_global("dst_port").as_number(), 2222);
  EXPECT_EQ(runtime.master().get_global("src_ip").as_string(), "172.16.0.9");
  EXPECT_EQ(runtime.master().get_global("ttl0").as_number(), 64);
  EXPECT_EQ(runtime.master().get_global("batch").as_number(), 4);
}

TEST(ScriptBindings, ParseIpAddressMatchesHostOrderArithmetic) {
  mc::reset_run_state();
  sc::ScriptRuntime runtime(R"(
    function master()
      base = parseIPAddress("10.0.0.1")
      plus = base + 255
    end
  )");
  runtime.run_master();
  EXPECT_EQ(runtime.master().get_global("base").as_number(), 0x0a000001);
  EXPECT_EQ(runtime.master().get_global("plus").as_number(), 0x0a000100);
}

TEST(ScriptBindings, MissingMasterIsAnError) {
  sc::ScriptRuntime runtime("x = 1");
  EXPECT_THROW(runtime.run_master(), sc::ScriptError);
}

TEST(ScriptBindings, MethodTypeMismatchIsCaught) {
  mc::reset_run_state();
  sc::ScriptRuntime runtime(R"(
    function master()
      local dev = device.config(10)
      local q = dev:getTxQueue(0)
      q:send(dev)  -- wrong argument type
    end
  )");
  EXPECT_THROW(runtime.run_master(), sc::ScriptError);
}

// ---------------------------------------------------------------------------
// Extended standard library
// ---------------------------------------------------------------------------

TEST(ScriptStdlib, StringSubRepLenByte) {
  EXPECT_EQ(eval_string("result = string.sub('moongen', 1, 4)"), "moon");
  EXPECT_EQ(eval_string("result = string.sub('moongen', 5)"), "gen");
  EXPECT_EQ(eval_string("result = string.sub('moongen', -3)"), "gen");
  EXPECT_EQ(eval_string("result = string.sub('abc', 3, 1)"), "");
  EXPECT_EQ(eval_string("result = string.rep('ab', 3)"), "ababab");
  EXPECT_EQ(eval_number("result = string.len('hello')"), 5);
  EXPECT_EQ(eval_number("result = string.byte('A')"), 65);
  EXPECT_EQ(eval_number("result = string.byte('AB', 2)"), 66);
  EXPECT_TRUE(eval("result = string.byte('A', 9)").is_nil());
}

TEST(ScriptStdlib, TableInsertRemoveConcat) {
  EXPECT_EQ(eval_string(R"(
    local t = {}
    table.insert(t, "a")
    table.insert(t, "c")
    table.insert(t, 2, "b")
    result = table.concat(t, "-")
  )"), "a-b-c");
  EXPECT_EQ(eval_number(R"(
    local t = {1, 2, 3}
    local removed = table.remove(t)
    result = removed * 10 + #t
  )"), 32);
  EXPECT_EQ(eval_number(R"(
    local t = {10, 20, 30}
    table.remove(t, 1)
    result = t[1] + #t
  )"), 22);
}

TEST(ScriptStdlib, TableAsQueueInScript) {
  EXPECT_EQ(eval_number(R"(
    local q = {}
    for i = 1, 5 do table.insert(q, i * i) end
    local sum = 0
    while #q > 0 do
      sum = sum + table.remove(q, 1)
    end
    result = sum
  )"), 1 + 4 + 9 + 16 + 25);
}

// ---------------------------------------------------------------------------
// Three-engine differential testing: tree-walker vs. generic bytecode VM
// vs. trace-specialized VM
// ---------------------------------------------------------------------------
//
// The tree-walker is the reference semantics; the bytecode VM is the
// default scripted path, and the trace tier records hot loops and runs
// them through specialized kernels (DESIGN.md sections 11 and 13). These
// tests run the same source through all three engines and require
// identical results, identical printed output and identical error
// messages. The trace engine uses threshold 2 so even short test loops
// get recorded, specialized, and — when a guard fails — deoptimized.

namespace {

enum class Engine { kTreeWalk, kVmGeneric, kVmTrace };

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::kTreeWalk: return "tree-walker";
    case Engine::kVmGeneric: return "generic VM";
    case Engine::kVmTrace: return "trace VM";
  }
  return "?";
}

void configure_engine(sc::Interpreter& interp, Engine engine) {
  interp.set_tree_walk(engine == Engine::kTreeWalk);
  interp.set_trace(engine == Engine::kVmTrace);
  interp.set_trace_threshold(2);
}

struct EngineRun {
  bool ok = true;
  std::string error;
  std::string output;
  std::string result;
};

EngineRun run_engine(const std::string& source, Engine engine) {
  EngineRun r;
  testing::internal::CaptureStdout();
  try {
    sc::Interpreter interp(sc::parse(source));
    configure_engine(interp, engine);
    interp.set_step_limit(200'000);
    interp.run();
    r.result = interp.get_global("result").to_display_string();
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  r.output = testing::internal::GetCapturedStdout();
  return r;
}

void expect_engines_agree(const std::string& source, const char* context) {
  const EngineRun tw = run_engine(source, Engine::kTreeWalk);
  for (const Engine engine : {Engine::kVmGeneric, Engine::kVmTrace}) {
    const EngineRun run = run_engine(source, engine);
    EXPECT_EQ(run.ok, tw.ok) << engine_name(engine) << ": " << context << "\n" << source;
    EXPECT_EQ(run.error, tw.error) << engine_name(engine) << ": " << context << "\n" << source;
    EXPECT_EQ(run.output, tw.output) << engine_name(engine) << ": " << context << "\n" << source;
    EXPECT_EQ(run.result, tw.result) << engine_name(engine) << ": " << context << "\n" << source;
  }
}

/// Tiny deterministic PRNG for the fuzzer (independent of libc rand).
struct Xorshift {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t pick(std::uint64_t n) { return next() % n; }
};

/// Generates a random well-formed program: declaration-before-use, bounded
/// loops, numeric locals. About one in five programs ends in a statement
/// that must fail identically in both engines.
std::string gen_program(std::uint64_t seed) {
  Xorshift rng{seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull};
  std::ostringstream os;
  os << "local n0, n1, n2, n3 = " << rng.pick(50) << ", " << rng.pick(50) << ", "
     << (rng.pick(50) + 1) << ", " << (rng.pick(50) + 1) << "\n"
     << "local s0, s1 = \"a" << rng.pick(10) << "\", \"b" << rng.pick(10) << "\"\n"
     << "local t = {}\n"
     << "local acc = 0\n"
     << "function helper(x, y) return x + y * 2, x - y end\n";
  const char* v[] = {"n0", "n1", "n2", "n3"};
  const int nstmts = 12 + static_cast<int>(rng.pick(8));
  for (int i = 0; i < nstmts; ++i) {
    const char* a = v[rng.pick(4)];
    const char* b = v[rng.pick(4)];
    const char* c = v[rng.pick(4)];
    switch (rng.pick(17)) {
      case 0: os << a << " = " << b << " + " << c << "\n"; break;
      case 1: os << a << " = " << b << " - " << rng.pick(20) << "\n"; break;
      case 2: os << a << " = " << b << " * " << c << " + " << rng.pick(9) << "\n"; break;
      case 3: os << a << " = (" << b << " % 97) + 1\n"; break;
      case 4:
        os << "if " << a << " < " << b << " then " << c << " = " << c << " + 1 else " << c
           << " = " << c << " - 1 end\n";
        break;
      case 5:
        os << "for i = 1, " << (1 + rng.pick(6)) << " do acc = acc + i * (" << a
           << " % 13) end\n";
        break;
      case 6:
        os << "while " << a << " > 3 and acc < 500 do " << a << " = " << a
           << " - 2 acc = acc + 1 end\n";
        break;
      case 7: os << "repeat acc = acc + 1 until acc % " << (2 + rng.pick(5)) << " == 0\n"; break;
      case 8: os << "t[" << rng.pick(8) << "] = " << a << "\n"; break;
      case 9: os << a << " = t[" << rng.pick(8) << "] or " << b << "\n"; break;
      case 10: os << "acc = acc + helper(" << a << ", " << b << ")\n"; break;
      case 11:
        os << a << ", " << b << " = helper(" << b << " % 100, " << a << " % 100)\n";
        break;
      case 12:
        os << "do local up = " << a
           << " % 10 local f = function(d) up = up + d return up end acc = acc + f(1) + f(2) "
              "end\n";
        break;
      case 13: os << "s0 = s1 .. (" << a << " % 10) acc = acc + #s0\n"; break;
      case 14: os << "print(" << a << " % 1000, s0, " << b << " < " << c << ")\n"; break;
      case 15: os << "acc = acc + math.random(" << (1 + rng.pick(20)) << ")\n"; break;
      case 16:
        os << "for k, w in ipairs({" << rng.pick(9) << ", " << rng.pick(9)
           << "}) do acc = acc + w * k end\n";
        break;
    }
  }
  if (rng.pick(5) == 0) {
    switch (rng.pick(4)) {
      case 0: os << "local z = nil\nz.x = 1\n"; break;
      case 1: os << "missing_function()\n"; break;
      case 2: os << "acc = acc + {}\n"; break;
      default: os << "for i = 1, 3, 0 do end\n"; break;
    }
  }
  os << "print(acc)\n"
     << "result = n0 .. \"|\" .. n1 .. \"|\" .. n2 .. \"|\" .. n3 .. \"|\" .. acc\n";
  return os.str();
}

}  // namespace

TEST(ScriptDifferential, FuzzedProgramsMatchTreeWalker) {
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    expect_engines_agree(gen_program(seed), ("seed " + std::to_string(seed)).c_str());
    if (::testing::Test::HasFailure()) break;  // first divergence is enough to debug
  }
}

TEST(ScriptDifferential, ClosureSemanticsMatch) {
  // Fresh capture per loop iteration.
  expect_engines_agree(R"(
    local fns = {}
    for i = 1, 3 do
      local x = i * 10
      fns[i] = function() x = x + 1 return x end
    end
    result = fns[1]() .. ":" .. fns[2]() .. ":" .. fns[3]() .. ":" .. fns[1]()
  )", "per-iteration capture");
  // Two closures sharing one upvalue.
  expect_engines_agree(R"(
    local function make()
      local n = 0
      local function inc() n = n + 1 return n end
      local function get() return n end
      return inc, get
    end
    local i, g = make()
    i() i()
    result = g()
  )", "shared upvalue");
  // Recursive local function through its own cell.
  expect_engines_agree(R"(
    local function fib(n)
      if n < 2 then return n end
      return fib(n - 1) + fib(n - 2)
    end
    result = fib(12)
  )", "recursive local function");
  // Same-scope redeclaration is visible through existing closures.
  expect_engines_agree(R"(
    local x = 1
    local f = function() return x end
    local x = 2
    result = f()
  )", "same-scope redeclaration");
}

TEST(ScriptDifferential, ControlFlowCornersMatch) {
  // Mutating the loop variable must not steer the iteration.
  expect_engines_agree(R"(
    local count = 0
    for i = 1, 5 do i = i + 100 count = count + 1 end
    result = count
  )", "loop var mutation");
  // `until` sees the loop body's locals.
  expect_engines_agree(R"(
    local i = 0
    repeat
      local doubled = i * 2
      i = i + 1
    until doubled >= 6
    result = i
  )", "repeat-until scoping");
  // break leaves only the innermost loop.
  expect_engines_agree(R"(
    local log = ""
    for i = 1, 3 do
      for j = 1, 3 do
        if j == 2 then break end
        log = log .. i .. j
      end
    end
    result = log
  )", "nested break");
  // Value-preserving and/or plus mixed concat.
  expect_engines_agree(R"(
    result = (nil or "d") .. (false and "x" or "y") .. tostring(1 and 2) .. (1 .. 2)
  )", "and-or values");
}

TEST(ScriptDifferential, MultipleValuesMatch) {
  expect_engines_agree(R"(
    local function two() return 1, 2 end
    local a, b, c = two()
    result = tostring(a) .. tostring(b) .. tostring(c)
  )", "padding");
  expect_engines_agree(R"(
    local function two() return 1, 2 end
    local a, b = 9, two()
    result = a .. "," .. b
  )", "expansion only in last position");
  expect_engines_agree(R"(
    local function two() return 1, 2 end
    local function sum3(x, y, z) return x + y * 10 + z * 100 end
    result = sum3(5, two())
  )", "call argument expansion");
  expect_engines_agree(R"(
    local function none() end
    local a = none()
    print(a)
    result = type(a)
  )", "zero results pad nil");
  expect_engines_agree(R"(
    local function two() return 1, 2 end
    local function pass() return 7, two() end
    local a, b, c = pass()
    result = a .. b .. c
  )", "tail expansion through return");
}

TEST(ScriptDifferential, ErrorMessagesMatch) {
  const char* failing[] = {
      "local z = nil z.x = 1",
      "local z = nil result = z.x",
      "local z = nil z()",
      "result = 1 + nil",
      "result = 1 + {}",
      "result = -\"oops\"",
      "result = #5",
      "result = {} .. \"x\"",
      "for i = 1, 3, 0 do end",
      "local n = 5 n:grow()",
      "local t = {[nil] = 1}",
      "local t = {} t[nil] = 1",
      "result = nil < 1",
      "while true do end",  // budget exhaustion at the same step count
  };
  for (const char* source : failing) expect_engines_agree(source, source);
}

TEST(ScriptDifferential, StdlibAndStateMatch) {
  // Per-interpreter seeded RNG: identical call sequences give identical
  // streams in both engines.
  expect_engines_agree(R"(
    local sum = 0
    for i = 1, 20 do sum = sum + math.random(100) * i end
    result = sum .. "," .. math.floor(math.random() * 1e6)
  )", "seeded math.random");
  expect_engines_agree(R"(
    local t = {}
    for i = 1, 8 do table.insert(t, string.format("%02d", i * 7 % 10)) end
    table.insert(t, 3, "XX")
    table.remove(t, 1)
    result = table.concat(t, "-") .. "/" .. #t
  )", "table stdlib");
  expect_engines_agree(R"(
    local keys = ""
    for k, v in pairs({zebra = 1, apple = 2, [3] = "c"}) do
      keys = keys .. tostring(k) .. "=" .. tostring(v) .. ";"
    end
    result = keys
  )", "pairs iteration order");
  expect_engines_agree(R"(
    local grid = {}
    function grid.cell(self, i, j) return (self[i] or {})[j] or 0 end
    grid[2] = {[3] = 42}
    result = grid:cell(2, 3) + grid:cell(9, 9)
  )", "table method calls");
  expect_engines_agree(R"(
    ns = {math = {}}
    function ns.math.add(a, b) return a + b end
    result = ns.math.add(20, 22)
  )", "function path declaration");
}

TEST(ScriptCompiler, DisassemblerShowsStructure) {
  const auto chunk = sc::compile_program(*sc::parse(R"(
    local function add(a, b) return a + b end
    total = add(2, 3)
  )"));
  const std::string listing = sc::disassemble(*chunk);
  EXPECT_NE(listing.find("proto 0"), std::string::npos);
  EXPECT_NE(listing.find("ADD"), std::string::npos);
  EXPECT_NE(listing.find("CALL"), std::string::npos);
  EXPECT_NE(listing.find("RET"), std::string::npos);
  EXPECT_GE(chunk->protos.size(), 2u);  // main + add
}

TEST(ScriptCompiler, ConstantFoldingPreservesValues) {
  // Folded arithmetic must produce the very same results as evaluated
  // arithmetic (the folder calls the runtime's apply_binary_op).
  expect_engines_agree(R"(
    result = (2 ^ 10 % 7) .. "," .. (1 / 3) .. "," .. tostring("a" < "b") .. "," ..
             (10 .. 20) .. "," .. (-(3 * 7)) .. "," .. #"hello" .. "," ..
             tostring(nil == false) .. "," .. tostring(false or 0)
  )", "constant folding");
}

TEST(ScriptCompiler, ParameterShadowingDoesNotBoxOuterLocals) {
  // A closure parameter shadows its name for the closure's whole body, so
  // a sibling local of the same name is not captured and must stay in a
  // register (boxing it would also block trace specialization of loops
  // that use it — the mempool-init-closure pattern of paper Listing 2).
  const auto chunk = sc::compile_program(*sc::parse(R"(
    local f = function(v) return v end
    for i = 1, 3 do
      local v = i
      x = v
    end
  )"));
  EXPECT_EQ(sc::disassemble(*chunk).find("NEWCELL"), std::string::npos);
}

TEST(ScriptDifferential, ParameterShadowingSemanticsMatch) {
  // Parameter shadowing vs. a true capture of the same name.
  expect_engines_agree(R"(
    local x = 1
    local f = function(x) return x * 10 end
    local g = function() return x end
    x = 2
    result = f(7) .. ":" .. g()
  )", "param shadowing vs true capture");
  // A free reference before an inner local declaration of the same name
  // resolves to the outer scope — the outer local must still be boxed.
  expect_engines_agree(R"(
    local x = 5
    local f = function() local y = x local x = 9 return y .. ":" .. x end
    result = f()
  )", "free reference before inner declaration");
  // Deeper nesting: the middle function's parameter shadows only within
  // itself; the outer local is still captured by the innermost reference.
  expect_engines_agree(R"(
    local buf = "outer"
    local mk = function(buf) return function() return buf end end
    local direct = function() return buf end
    result = mk("inner")() .. ":" .. direct()
  )", "nested parameter shadowing");
}

TEST(ScriptCompiler, DisassemblerGoldenDecodedOps) {
  // Golden listing for the decoded operand formats: the for-in anchor
  // (iterator/vars/exit/ic), in-place method calls, fused global-field
  // calls and the numeric-for triple. Pinned byte for byte so operand
  // encoding changes cannot silently garble listings.
  const auto chunk = sc::compile_program(*sc::parse(
      "for i = 1, 3 do x = i end\n"
      "for _, b in ipairs(t) do b:set(26, math.random(10)) end\n"));
  const std::string expected =
      "proto 0 <main> params=0 regs=11 cells=0 upvals=0\n"
      "  0\tCHECKSTEP\t0 0 0 0\n"
      "  1\tLOADK\tr0 <- 1\n"
      "  2\tTONUM\t0 0 0 0\n"
      "  3\tLOADK\tr1 <- 3\n"
      "  4\tTONUM\t1 0 0 0\n"
      "  5\tLOADK\tr2 <- 1\n"
      "  6\tFORPREP\t0 0 0 0\n"
      "  7\tFORTEST\ti=r0 exit=14 [ic 0]\n"
      "  8\tCHECKSTEP\t0 0 0 0\n"
      "  9\tMOVE\t3 0 0 0\n"
      "  10\tCHECKSTEP\t0 0 0 0\n"
      "  11\tMOVE\t4 3 0 0\n"
      "  12\tSETGLOBAL\t\"x\" <- r4 [ic 1]\n"
      "  13\tFORNEXT\ti=r0 -> 7\n"
      "  14\tCHECKSTEP\t0 0 0 0\n"
      "  15\tGETGLOBAL\tr3 <- \"ipairs\" [ic 2]\n"
      "  16\tGETGLOBAL\tr4 <- \"t\" [ic 3]\n"
      "  17\tCALL\tr3 nargs=1 nres=0+multi\n"
      "  18\tADJUST\t0 3 0 0\n"
      "  19\tFORINCALL\titer=r0 vars=r3..r4 exit=29 [ic 4]\n"
      "  20\tCHECKSTEP\t0 0 0 0\n"
      "  21\tLOADK\tr8 <- 26\n"
      "  22\tGETGLOBAL\tr10 <- \"math\" [ic 5]\n"
      "  23\tGETFIELD\tr9 <- r10.\"random\" [ic 6]\n"
      "  24\tLOADK\tr10 <- 10\n"
      "  25\tCALL\tr9 nargs=1 nres=0+multi\n"
      "  26\tMOVE\t7 4 0 0\n"
      "  27\tMCALL\tr7:\"set\" nargs=1+multi nres=0 -> r7 [ic 7]\n"
      "  28\tJMP\t-> 19\n"
      "  29\tRET\t0 0 0 0\n";
  EXPECT_EQ(sc::disassemble(*chunk), expected);
}

TEST(ScriptTrace, TraceListingGolden) {
  // Golden listing for a recorded numeric-loop trace: pc-prefixed body
  // instructions with their recorded type observations.
  sc::Interpreter interp(sc::parse("acc = 0\nfor i = 1, 50 do acc = acc + i end"));
  interp.set_trace(true);
  interp.set_trace_threshold(2);
  interp.set_step_limit(1'000'000);
  interp.run();
  auto* vm = interp.vm_if_created();
  ASSERT_NE(vm, nullptr);
  ASSERT_FALSE(vm->specializations().empty());
  const std::string expected =
      "trace <main> anchor=10 FORTEST\ti=r0 exit=18 [ic 1]\n"
      "  11\tCHECKSTEP\t0 0 0 0\n"
      "  12\tMOVE\t3 0 0 0  [num]\n"
      "  13\tCHECKSTEP\t0 0 0 0\n"
      "  14\tGETGLOBAL\tr5 <- \"acc\" [ic 2]\n"
      "  15\tADD\t4 5 3 0  [num]\n"
      "  16\tSETGLOBAL\t\"acc\" <- r4 [ic 3]\n"
      "  17\tFORNEXT\ti=r0 -> 10\n";
  EXPECT_EQ(sc::disassemble_trace(vm->specializations().front()->trace), expected);
}

// ---------------------------------------------------------------------------
// Trace specialization: forced deopts, introspection, escape-hatch kernels
// (DESIGN.md section 13)
// ---------------------------------------------------------------------------

TEST(ScriptDifferential, TraceDeoptsOnTypeFlipMidRun) {
  // The loop goes hot with `inc` numeric, so the trace engine installs a
  // NumLoop superinstruction; flipping `inc` to a string must fail the
  // entry guard and fall back to the generic path, which throws the same
  // arithmetic error as the tree-walker.
  expect_engines_agree(R"(
    inc = 1
    acc = 0
    function spin(n) for i = 1, n do acc = acc + inc end end
    spin(40)
    inc = "x"
    spin(3)
    result = acc
  )", "global flips number -> string after specialization");
  // A benign value change (still numeric) must keep the specialized loop
  // correct: live-in globals are re-read at every kernel entry.
  expect_engines_agree(R"(
    inc = 1
    acc = 0
    function spin(n) for i = 1, n do acc = acc + inc end end
    spin(40)
    inc = 3
    spin(40)
    result = acc
  )", "global value change after specialization");
  // NaN bounds after specialization: zero iterations in every engine.
  expect_engines_agree(R"(
    acc = 0
    function spin(n) for i = 1, n do acc = acc + 1 end end
    spin(40)
    spin(0 / 0)
    result = acc
  )", "NaN loop bound after specialization");
}

TEST(ScriptDifferential, TraceBudgetExhaustionMatches) {
  // The specialized loop bulk-charges the statement budget; the
  // exhaustion error must fire at exactly the same step count — and thus
  // with exactly the same message — as in both generic engines.
  expect_engines_agree(R"(
    acc = 0
    for i = 1, 100000000 do acc = acc + 1 end
    result = acc
  )", "budget exhaustion through the specialized loop");
}

TEST(ScriptDifferential, TraceNestedAndTypeChangingLoopsMatch) {
  // Inner loop specializes with the outer induction variable live-in.
  expect_engines_agree(R"(
    acc = 0
    for i = 1, 30 do
      for j = 1, 20 do acc = acc + j * i end
    end
    result = acc
  )", "nested numeric loops");
  // A loop whose body leaves the numeric domain mid-recording can never
  // specialize; it must still agree everywhere.
  expect_engines_agree(R"(
    s = ""
    for i = 1, 20 do s = s .. i end
    result = s
  )", "string-accumulating loop stays generic");
}

TEST(ScriptTrace, NumericLoopSpecializesAndTraceIsListable) {
  sc::Interpreter interp(sc::parse(R"(
    acc = 0
    for i = 1, 500 do acc = acc + i end
    result = acc
  )"));
  interp.set_trace(true);
  interp.set_trace_threshold(2);
  interp.set_step_limit(1'000'000);
  interp.run();
  EXPECT_EQ(interp.get_global("result").as_number(), 125250.0);
  auto* vm = interp.vm_if_created();
  ASSERT_NE(vm, nullptr);
  ASSERT_EQ(vm->specializations().size(), 1u);
  const auto& spec = *vm->specializations().front();
  EXPECT_EQ(spec.kind, sc::Specialization::Kind::kNumLoop);
  // The recorded trace must disassemble with per-instruction type
  // observations (the [num] annotations that justified the NumLoop).
  const std::string listing = sc::disassemble_trace(spec.trace);
  EXPECT_NE(listing.find("trace <"), std::string::npos) << listing;
  EXPECT_NE(listing.find("[num]"), std::string::npos) << listing;
  EXPECT_NE(listing.find("FORNEXT"), std::string::npos) << listing;
}

TEST(ScriptTrace, NoTraceWhenDisabled) {
  sc::Interpreter interp(sc::parse("acc = 0 for i = 1, 500 do acc = acc + i end"));
  interp.set_trace(false);
  interp.set_trace_threshold(2);
  interp.set_step_limit(1'000'000);
  interp.run();
  auto* vm = interp.vm_if_created();
  ASSERT_NE(vm, nullptr);
  EXPECT_TRUE(vm->specializations().empty());
}

namespace {

/// Runs a bindings-level script (a `master()` body) under one engine and
/// reports the global `result` plus the specializations the VM installed.
struct MasterRun {
  std::string result;
  std::size_t field_kernels = 0;
  std::size_t num_loops = 0;
};

MasterRun run_master_engine(const char* script, Engine engine) {
  mc::reset_run_state();
  sc::ScriptRuntime runtime(script);
  configure_engine(runtime.master(), engine);
  runtime.run_master();
  MasterRun out;
  out.result = runtime.master().get_global("result").to_display_string();
  if (auto* vm = runtime.master().vm_if_created()) {
    for (const auto& spec : vm->specializations()) {
      if (spec->kind == sc::Specialization::Kind::kFieldKernel) {
        ++out.field_kernels;
      } else {
        ++out.num_loops;
      }
    }
  }
  return out;
}

}  // namespace

TEST(ScriptTraceBindings, FieldKernelMatchesGenericEnginesByteForByte) {
  // Constant, counter and random recipes in one per-packet loop: the trace
  // engine compiles this body onto the field-modifier engine, and the
  // packet bytes read back must match the generic engines exactly —
  // including the math.random stream, which the kernel draws from the
  // interpreter's own RNG.
  const char* script = R"(
    function master()
      local mem = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill({pktLength = 60})
      end)
      local bufs = mem:bufArray(16)
      local baseIP = parseIPAddress("10.0.0.1")
      local sig = 0
      for round = 1, 10 do
        bufs:alloc(60)
        local ttl = 30 + round
        for i, buf in ipairs(bufs) do
          local pkt = buf:getUdpPacket()
          pkt.ip.src:set(baseIP + i - 1)
          pkt.ip:setTTL(ttl)
          pkt.udp:setSrcPort(1000 + math.random(200) - 1)
        end
        for _, buf in ipairs(bufs) do
          local pkt = buf:getUdpPacket()
          sig = sig + pkt.ip.src:get() % 100003
          sig = sig + pkt.ip:getTTL() * 7
          sig = sig + pkt.udp:getSrcPort() * 13
        end
        bufs:freeAll()
      end
      result = sig .. ":" .. math.random(100000)
    end
  )";
  const MasterRun tw = run_master_engine(script, Engine::kTreeWalk);
  const MasterRun vm = run_master_engine(script, Engine::kVmGeneric);
  const MasterRun tr = run_master_engine(script, Engine::kVmTrace);
  EXPECT_EQ(vm.result, tw.result);
  EXPECT_EQ(tr.result, tw.result);
  // The writing loop must actually have taken the escape hatch.
  EXPECT_GE(tr.field_kernels, 1u);
  EXPECT_EQ(vm.field_kernels, 0u);
}

TEST(ScriptTraceBindings, MathRandomReplacementAndTableBumpsDeopt) {
  // Mid-run the script replaces math.random in place (the inline cache
  // still hits, so only the kernel's native-identity guard can catch it)
  // and churns another math key (version bumps invalidate the call-site
  // cache). Both must deopt the kernel, never desynchronize the stream.
  const char* script = R"(
    function master()
      local mem = memory.createMemPool()
      local bufs = mem:bufArray(8)
      local baseIP = parseIPAddress("192.168.1.1")
      local sig = ""
      for round = 1, 12 do
        if round == 7 then
          math.random = function(m) return (m >= 7 and 7) or 1 end
        end
        if round == 4 or round == 9 then math.jitter = round else math.jitter = nil end
        bufs:alloc(60)
        for _, buf in ipairs(bufs) do
          buf:getUdpPacket().ip.src:set(baseIP + math.random(250) - 1)
        end
        for _, buf in ipairs(bufs) do
          sig = sig .. buf:getUdpPacket().ip.src:get() .. ";"
        end
        bufs:freeAll()
      end
      result = sig
    end
  )";
  const MasterRun tw = run_master_engine(script, Engine::kTreeWalk);
  const MasterRun vm = run_master_engine(script, Engine::kVmGeneric);
  const MasterRun tr = run_master_engine(script, Engine::kVmTrace);
  EXPECT_EQ(vm.result, tw.result);
  EXPECT_EQ(tr.result, tw.result);
  EXPECT_GE(tr.field_kernels, 1u);
}

TEST(ScriptTraceBindings, AllocFailDuringRecordingSoftAborts) {
  // A fault plane makes the pool's alloc fail ~60% of the time, so the
  // per-packet loop keeps running over empty batches — including while a
  // trace is being recorded, where hitting the loop exit soft-aborts the
  // recording. Soft aborts must be retryable (a kernel still installs
  // eventually) and the faulty run must stay byte-identical across all
  // three engines (the fault RNG stream is engine-independent).
  const char* script = R"(
    function run(mem)
      local bufs = mem:bufArray(4)
      local baseIP = parseIPAddress("10.1.0.1")
      local total = 0
      for round = 1, 40 do
        bufs:alloc(60)
        for _, buf in ipairs(bufs) do
          buf:getUdpPacket().ip.src:set(baseIP + math.random(200) - 1)
        end
        local got = 0
        for _, b in ipairs(bufs) do got = got + 1 end
        total = total + got
        bufs:freeAll()
      end
      return total .. ":" .. math.random(100000)
    end
    function master() end
  )";
  const auto run_with_faults = [&](Engine engine) {
    mc::reset_run_state();
    sc::ScriptRuntime runtime(script);
    auto& interp = runtime.master();
    configure_engine(interp, engine);
    interp.run();
    auto mem_fn = interp.get_global("memory").as_table()->get(sc::Table::Key{"createMemPool"});
    std::vector<sc::Value> no_args;
    const auto mem_val = interp.call(mem_fn, no_args)[0];
    mflt::FaultPlane plane(mflt::FaultSpec::parse("seed=11;alloc_fail@pool.script:p=0.6"));
    mem_val.as_userdata()->as<mb::Mempool>()->install_faults(plane, "pool.script");
    std::vector<sc::Value> args{mem_val};
    const auto r = interp.call(interp.get_global("run"), args);
    MasterRun out;
    out.result = r.empty() ? "" : r[0].to_display_string();
    if (auto* vm = interp.vm_if_created()) {
      for (const auto& spec : vm->specializations()) {
        if (spec->kind == sc::Specialization::Kind::kFieldKernel) ++out.field_kernels;
      }
    }
    return out;
  };
  const MasterRun tw = run_with_faults(Engine::kTreeWalk);
  const MasterRun vm = run_with_faults(Engine::kVmGeneric);
  const MasterRun tr = run_with_faults(Engine::kVmTrace);
  EXPECT_EQ(vm.result, tw.result);
  EXPECT_EQ(tr.result, tw.result);
  // 40 rounds at p=0.6 leave plenty of successful batches: the soft
  // aborts must not have latched the anchor into spec_failed.
  EXPECT_GE(tr.field_kernels, 1u);
}
