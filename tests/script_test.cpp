// Tests for the embedded scripting language: lexer, parser, interpreter
// semantics, and the MoonGen bindings (the paper's Listings run as actual
// scripts).
#include <gtest/gtest.h>

#include <string>

#include "core/device.hpp"
#include "core/task.hpp"
#include "script/bindings.hpp"
#include "script/interpreter.hpp"
#include "script/lexer.hpp"
#include "script/parser.hpp"

namespace sc = moongen::script;
namespace mc = moongen::core;

namespace {

/// Runs a chunk and returns the value of global `result`.
sc::Value eval(const std::string& source) {
  sc::Interpreter interp(sc::parse(source));
  interp.set_step_limit(10'000'000);
  interp.run();
  return interp.get_global("result");
}

double eval_number(const std::string& source) {
  const auto v = eval(source);
  EXPECT_TRUE(v.is_number()) << source << " -> " << v.to_display_string();
  return v.is_number() ? v.as_number() : 0;
}

std::string eval_string(const std::string& source) {
  const auto v = eval(source);
  EXPECT_TRUE(v.is_string()) << source;
  return v.is_string() ? v.as_string() : "";
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(ScriptLexer, TokenizesNumbersStringsNames) {
  const auto tokens = sc::tokenize("local x = 42 + 0x10 .. \"hi\\n\"");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].type, sc::TokenType::kLocal);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[3].number, 42.0);
  EXPECT_EQ(tokens[5].number, 16.0);
  EXPECT_EQ(tokens[7].text, "hi\n");
}

TEST(ScriptLexer, SkipsCommentsAndTracksLines) {
  const auto tokens = sc::tokenize("-- comment\n--[[ long\ncomment ]]\nx");
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[0].line, 4);
}

TEST(ScriptLexer, RejectsUnterminatedString) {
  EXPECT_THROW(sc::tokenize("local s = \"oops"), sc::ScriptError);
}

TEST(ScriptLexer, MultiCharOperators) {
  const auto tokens = sc::tokenize("== ~= <= >= .. ...");
  EXPECT_EQ(tokens[0].type, sc::TokenType::kEq);
  EXPECT_EQ(tokens[1].type, sc::TokenType::kNe);
  EXPECT_EQ(tokens[2].type, sc::TokenType::kLe);
  EXPECT_EQ(tokens[3].type, sc::TokenType::kGe);
  EXPECT_EQ(tokens[4].type, sc::TokenType::kConcat);
  EXPECT_EQ(tokens[5].type, sc::TokenType::kEllipsis);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ScriptParser, RejectsSyntaxErrors) {
  EXPECT_THROW(sc::parse("if x then"), sc::ScriptError);        // missing end
  EXPECT_THROW(sc::parse("local = 3"), sc::ScriptError);        // missing name
  EXPECT_THROW(sc::parse("x +"), sc::ScriptError);              // incomplete expr
  EXPECT_THROW(sc::parse("1 + 2"), sc::ScriptError);            // expr not a statement
  EXPECT_THROW(sc::parse("for i = 1 do end"), sc::ScriptError); // missing stop
}

TEST(ScriptParser, AcceptsTheListingShapes) {
  // Shapes from the paper's Listings 1-3.
  EXPECT_NO_THROW(sc::parse(R"(
    function master(txPort, rxPort, fgRate, bgRate)
      local tDev = device.config(txPort, 1, 2)
      device.waitForLinks()
      tDev:getTxQueue(0):setRate(bgRate)
      mg.launchLua("loadSlave", tDev:getTxQueue(0), 42)
      mg.waitForSlaves()
    end
    function loadSlave(queue, port)
      local mem = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill{
          pktLength = PKT_SIZE,
          ethSrc = queue,
          udpDst = port,
        }
      end)
      while dpdk.running() do
        bufs:alloc(PKT_SIZE)
        for _, buf in ipairs(bufs) do
          local pkt = buf:getUdpPacket()
          pkt.ip.src:set(baseIP + math.random(255) - 1)
        end
        bufs:offloadUdpChecksums()
        local sent = queue:send(bufs)
      end
    end
  )"));
}

// ---------------------------------------------------------------------------
// Interpreter semantics
// ---------------------------------------------------------------------------

TEST(ScriptInterp, ArithmeticAndPrecedence) {
  EXPECT_EQ(eval_number("result = 2 + 3 * 4"), 14);
  EXPECT_EQ(eval_number("result = (2 + 3) * 4"), 20);
  EXPECT_EQ(eval_number("result = 2 ^ 3 ^ 2"), 512);  // right associative
  EXPECT_EQ(eval_number("result = -2 ^ 2"), -4);      // unary below ^
  EXPECT_EQ(eval_number("result = 7 % 3"), 1);
  EXPECT_EQ(eval_number("result = -7 % 3"), 2);  // Lua modulo semantics
  EXPECT_EQ(eval_number("result = 10 / 4"), 2.5);
}

TEST(ScriptInterp, ComparisonAndLogic) {
  EXPECT_EQ(eval("result = 1 < 2 and 2 <= 2 and 3 > 2 and 3 >= 3").as_bool(), true);
  EXPECT_EQ(eval("result = 1 == 1.0").as_bool(), true);
  EXPECT_EQ(eval("result = 'a' ~= 'b'").as_bool(), true);
  // and/or return operands, not booleans.
  EXPECT_EQ(eval_number("result = false or 5"), 5);
  EXPECT_EQ(eval_number("result = nil and 3 or 7"), 7);
  EXPECT_EQ(eval_string("result = 'x' and 'y'"), "y");
}

TEST(ScriptInterp, StringsAndConcat) {
  EXPECT_EQ(eval_string("result = 'a' .. 'b' .. 1"), "ab1");
  EXPECT_EQ(eval_number("result = #'hello'"), 5);
  EXPECT_EQ(eval_string("result = tostring(42)"), "42");
  EXPECT_EQ(eval_number("result = tonumber('3.5')"), 3.5);
  EXPECT_TRUE(eval("result = tonumber('zzz')").is_nil());
}

TEST(ScriptInterp, LocalScopingAndShadowing) {
  EXPECT_EQ(eval_number(R"(
    local x = 1
    do
      local x = 2
    end
    result = x
  )"), 1);
}

TEST(ScriptInterp, GlobalAssignmentFromFunction) {
  EXPECT_EQ(eval_number(R"(
    function set()
      g = 99
    end
    set()
    result = g
  )"), 99);
}

TEST(ScriptInterp, WhileAndBreak) {
  EXPECT_EQ(eval_number(R"(
    local i = 0
    while true do
      i = i + 1
      if i >= 10 then break end
    end
    result = i
  )"), 10);
}

TEST(ScriptInterp, RepeatUntil) {
  EXPECT_EQ(eval_number(R"(
    local n = 0
    repeat
      n = n + 1
    until n >= 3
    result = n
  )"), 3);
}

TEST(ScriptInterp, NumericForWithStep) {
  EXPECT_EQ(eval_number(R"(
    local sum = 0
    for i = 1, 10 do sum = sum + i end
    for i = 10, 1, -2 do sum = sum + 1 end
    result = sum
  )"), 60);
}

TEST(ScriptInterp, GenericForOverIpairs) {
  EXPECT_EQ(eval_number(R"(
    local t = {10, 20, 30}
    local sum = 0
    for i, v in ipairs(t) do sum = sum + i * v end
    result = sum
  )"), 10 + 40 + 90);
}

TEST(ScriptInterp, GenericForOverPairs) {
  EXPECT_EQ(eval_number(R"(
    local t = {a = 1, b = 2, c = 3}
    local sum = 0
    for k, v in pairs(t) do sum = sum + v end
    result = sum
  )"), 6);
}

TEST(ScriptInterp, FunctionsAndRecursion) {
  EXPECT_EQ(eval_number(R"(
    function fib(n)
      if n < 2 then return n end
      return fib(n - 1) + fib(n - 2)
    end
    result = fib(15)
  )"), 610);
}

TEST(ScriptInterp, ClosuresCaptureEnvironment) {
  EXPECT_EQ(eval_number(R"(
    local function counter()
      local n = 0
      return function()
        n = n + 1
        return n
      end
    end
    local c = counter()
    c()
    c()
    result = c()
  )"), 3);
}

TEST(ScriptInterp, MultipleReturnValues) {
  EXPECT_EQ(eval_number(R"(
    local function two()
      return 3, 4
    end
    local a, b = two()
    result = a * 10 + b
  )"), 34);
}

TEST(ScriptInterp, TablesRecordsAndArrays) {
  EXPECT_EQ(eval_number(R"(
    local t = { x = 1, [2] = 20, "first" }
    t.y = t.x + 10
    result = t.y + t[2] + #t
  )"), 11 + 20 + 2);  // t[1]="first", t[2]=20, so #t == 2
}

TEST(ScriptInterp, NestedTables) {
  EXPECT_EQ(eval_number(R"(
    local cfg = { inner = { value = 5 } }
    cfg.inner.value = cfg.inner.value + 1
    result = cfg.inner.value
  )"), 6);
}

TEST(ScriptInterp, MathLibrary) {
  EXPECT_EQ(eval_number("result = math.floor(3.7)"), 3);
  EXPECT_EQ(eval_number("result = math.max(1, 5, 3)"), 5);
  EXPECT_EQ(eval_number("result = math.min(4, 2)"), 2);
  // math.random(n) stays in [1, n].
  EXPECT_EQ(eval("result = (function()\n"
                 "  for i = 1, 1000 do\n"
                 "    local r = math.random(255)\n"
                 "    if r < 1 or r > 255 then return false end\n"
                 "  end\n"
                 "  return true\n"
                 "end)()").as_bool(),
            true);
}

TEST(ScriptInterp, StringFormat) {
  EXPECT_EQ(eval_string("result = string.format('%d pkts at %.2f Mpps', 42, 1.5)"),
            "42 pkts at 1.50 Mpps");
  EXPECT_EQ(eval_string("result = string.format('%s=%x', 'id', 255)"), "id=ff");
}

TEST(ScriptInterp, RuntimeErrorsCarryMessages) {
  EXPECT_THROW(eval("result = nil + 1"), sc::ScriptError);
  EXPECT_THROW(eval("local t = nil; result = t.x"), sc::ScriptError);
  EXPECT_THROW(eval("undefined_function()"), sc::ScriptError);
  EXPECT_THROW(eval("error('boom')"), sc::ScriptError);
}

TEST(ScriptInterp, StepLimitStopsRunawayScripts) {
  sc::Interpreter interp(sc::parse("while true do end"));
  interp.set_step_limit(10'000);
  EXPECT_THROW(interp.run(), sc::ScriptError);
}

TEST(ScriptInterp, AssertPassesAndFails) {
  EXPECT_NO_THROW(eval("assert(1 == 1, 'fine') result = 1"));
  EXPECT_THROW(eval("assert(false, 'nope')"), sc::ScriptError);
}

// ---------------------------------------------------------------------------
// MoonGen bindings: the paper's scripts end to end
// ---------------------------------------------------------------------------

TEST(ScriptBindings, QualityOfServiceScriptRunsEndToEnd) {
  mc::reset_run_state();
  // A condensed quality-of-service-test.lua (paper Listings 1-3): two load
  // slaves with different UDP ports, one counter slave, real devices.
  const std::string script = R"(
    local PKT_SIZE = 124
    function master(txPort, rxPort)
      local tDev = device.config(txPort, 1, 2)
      local rDev = device.config(rxPort)
      device.waitForLinks()
      tDev:connectTo(rDev)
      tDev:getTxQueue(0):setRate(100)
      tDev:getTxQueue(1):setRate(50)
      mg.launchLua("loadSlave", tDev:getTxQueue(0), 42)
      mg.launchLua("loadSlave", tDev:getTxQueue(1), 43)
      mg.launchLua("counterSlave", rDev:getRxQueue(0))
      mg.stopAfter(0.4)
      mg.waitForSlaves()
    end

    function loadSlave(queue, port)
      local mem = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill{
          pktLength = PKT_SIZE,
          ethSrc = queue,
          ethDst = "10:11:12:13:14:15",
          ipDst = "192.168.1.1",
          udpSrc = 1234,
          udpDst = port,
        }
      end)
      local baseIP = parseIPAddress("10.0.0.1")
      local bufs = mem:bufArray()
      local total = 0
      while dpdk.running() do
        bufs:alloc(PKT_SIZE)
        for _, buf in ipairs(bufs) do
          local pkt = buf:getUdpPacket()
          pkt.ip.src:set(baseIP + math.random(255) - 1)
        end
        bufs:offloadUdpChecksums()
        total = total + queue:send(bufs)
      end
      sent = total
    end

    function counterSlave(queue)
      local bufs = memory.bufArray()
      local counts = {}
      while dpdk.running() do
        local rx = queue:recv(bufs)
        for i = 1, rx do
          local buf = bufs[i]
          local port = buf:getUdpPacket().udp:getDstPort()
          counts[port] = (counts[port] or 0) + 1
        end
        bufs:freeAll()
      end
      seen42 = counts[42] or 0
      seen43 = counts[43] or 0
    end
  )";
  sc::ScriptRuntime runtime(script);
  runtime.run_master({sc::Value(50.0), sc::Value(51.0)});
  runtime.wait();
  EXPECT_EQ(runtime.slaves_launched(), 3u);
  mc::reset_run_state();
}

TEST(ScriptBindings, PacketCraftingMatchesFill) {
  mc::reset_run_state();
  const std::string script = R"(
    function master()
      local mem = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill{
          pktLength = 100,
          ethDst = "aa:bb:cc:dd:ee:ff",
          ipSrc = "10.1.2.3",
          ipDst = "10.4.5.6",
          udpSrc = 1111,
          udpDst = 2222,
        }
      end)
      local bufs = mem:bufArray(4)
      bufs:alloc(100)
      local pkt = bufs[1]:getUdpPacket()
      src_port = pkt.udp:getSrcPort()
      dst_port = pkt.udp:getDstPort()
      pkt.ip.src:set(parseIPAddress("172.16.0.9"))
      src_ip = pkt.ip.src:getString()
      ttl0 = pkt.ip:getTTL()
      batch = #bufs
      bufs:freeAll()
    end
  )";
  sc::ScriptRuntime runtime(script);
  runtime.run_master();
  EXPECT_EQ(runtime.master().get_global("src_port").as_number(), 1111);
  EXPECT_EQ(runtime.master().get_global("dst_port").as_number(), 2222);
  EXPECT_EQ(runtime.master().get_global("src_ip").as_string(), "172.16.0.9");
  EXPECT_EQ(runtime.master().get_global("ttl0").as_number(), 64);
  EXPECT_EQ(runtime.master().get_global("batch").as_number(), 4);
}

TEST(ScriptBindings, ParseIpAddressMatchesHostOrderArithmetic) {
  mc::reset_run_state();
  sc::ScriptRuntime runtime(R"(
    function master()
      base = parseIPAddress("10.0.0.1")
      plus = base + 255
    end
  )");
  runtime.run_master();
  EXPECT_EQ(runtime.master().get_global("base").as_number(), 0x0a000001);
  EXPECT_EQ(runtime.master().get_global("plus").as_number(), 0x0a000100);
}

TEST(ScriptBindings, MissingMasterIsAnError) {
  sc::ScriptRuntime runtime("x = 1");
  EXPECT_THROW(runtime.run_master(), sc::ScriptError);
}

TEST(ScriptBindings, MethodTypeMismatchIsCaught) {
  mc::reset_run_state();
  sc::ScriptRuntime runtime(R"(
    function master()
      local dev = device.config(10)
      local q = dev:getTxQueue(0)
      q:send(dev)  -- wrong argument type
    end
  )");
  EXPECT_THROW(runtime.run_master(), sc::ScriptError);
}

// ---------------------------------------------------------------------------
// Extended standard library
// ---------------------------------------------------------------------------

TEST(ScriptStdlib, StringSubRepLenByte) {
  EXPECT_EQ(eval_string("result = string.sub('moongen', 1, 4)"), "moon");
  EXPECT_EQ(eval_string("result = string.sub('moongen', 5)"), "gen");
  EXPECT_EQ(eval_string("result = string.sub('moongen', -3)"), "gen");
  EXPECT_EQ(eval_string("result = string.sub('abc', 3, 1)"), "");
  EXPECT_EQ(eval_string("result = string.rep('ab', 3)"), "ababab");
  EXPECT_EQ(eval_number("result = string.len('hello')"), 5);
  EXPECT_EQ(eval_number("result = string.byte('A')"), 65);
  EXPECT_EQ(eval_number("result = string.byte('AB', 2)"), 66);
  EXPECT_TRUE(eval("result = string.byte('A', 9)").is_nil());
}

TEST(ScriptStdlib, TableInsertRemoveConcat) {
  EXPECT_EQ(eval_string(R"(
    local t = {}
    table.insert(t, "a")
    table.insert(t, "c")
    table.insert(t, 2, "b")
    result = table.concat(t, "-")
  )"), "a-b-c");
  EXPECT_EQ(eval_number(R"(
    local t = {1, 2, 3}
    local removed = table.remove(t)
    result = removed * 10 + #t
  )"), 32);
  EXPECT_EQ(eval_number(R"(
    local t = {10, 20, 30}
    table.remove(t, 1)
    result = t[1] + #t
  )"), 22);
}

TEST(ScriptStdlib, TableAsQueueInScript) {
  EXPECT_EQ(eval_number(R"(
    local q = {}
    for i = 1, 5 do table.insert(q, i * i) end
    local sum = 0
    while #q > 0 do
      sum = sum + table.remove(q, 1)
    end
    result = sum
  )"), 1 + 4 + 9 + 16 + 25);
}
