// Tests for the embedded scripting language: lexer, parser, interpreter
// semantics, and the MoonGen bindings (the paper's Listings run as actual
// scripts).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "core/device.hpp"
#include "core/task.hpp"
#include "script/bindings.hpp"
#include "script/compiler.hpp"
#include "script/interpreter.hpp"
#include "script/lexer.hpp"
#include "script/parser.hpp"

namespace sc = moongen::script;
namespace mc = moongen::core;

namespace {

/// Runs a chunk and returns the value of global `result`.
sc::Value eval(const std::string& source) {
  sc::Interpreter interp(sc::parse(source));
  interp.set_step_limit(10'000'000);
  interp.run();
  return interp.get_global("result");
}

double eval_number(const std::string& source) {
  const auto v = eval(source);
  EXPECT_TRUE(v.is_number()) << source << " -> " << v.to_display_string();
  return v.is_number() ? v.as_number() : 0;
}

std::string eval_string(const std::string& source) {
  const auto v = eval(source);
  EXPECT_TRUE(v.is_string()) << source;
  return v.is_string() ? v.as_string() : "";
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(ScriptLexer, TokenizesNumbersStringsNames) {
  const auto tokens = sc::tokenize("local x = 42 + 0x10 .. \"hi\\n\"");
  ASSERT_GE(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].type, sc::TokenType::kLocal);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[3].number, 42.0);
  EXPECT_EQ(tokens[5].number, 16.0);
  EXPECT_EQ(tokens[7].text, "hi\n");
}

TEST(ScriptLexer, SkipsCommentsAndTracksLines) {
  const auto tokens = sc::tokenize("-- comment\n--[[ long\ncomment ]]\nx");
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[0].line, 4);
}

TEST(ScriptLexer, RejectsUnterminatedString) {
  EXPECT_THROW(sc::tokenize("local s = \"oops"), sc::ScriptError);
}

TEST(ScriptLexer, MultiCharOperators) {
  const auto tokens = sc::tokenize("== ~= <= >= .. ...");
  EXPECT_EQ(tokens[0].type, sc::TokenType::kEq);
  EXPECT_EQ(tokens[1].type, sc::TokenType::kNe);
  EXPECT_EQ(tokens[2].type, sc::TokenType::kLe);
  EXPECT_EQ(tokens[3].type, sc::TokenType::kGe);
  EXPECT_EQ(tokens[4].type, sc::TokenType::kConcat);
  EXPECT_EQ(tokens[5].type, sc::TokenType::kEllipsis);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ScriptParser, RejectsSyntaxErrors) {
  EXPECT_THROW(sc::parse("if x then"), sc::ScriptError);        // missing end
  EXPECT_THROW(sc::parse("local = 3"), sc::ScriptError);        // missing name
  EXPECT_THROW(sc::parse("x +"), sc::ScriptError);              // incomplete expr
  EXPECT_THROW(sc::parse("1 + 2"), sc::ScriptError);            // expr not a statement
  EXPECT_THROW(sc::parse("for i = 1 do end"), sc::ScriptError); // missing stop
}

TEST(ScriptParser, AcceptsTheListingShapes) {
  // Shapes from the paper's Listings 1-3.
  EXPECT_NO_THROW(sc::parse(R"(
    function master(txPort, rxPort, fgRate, bgRate)
      local tDev = device.config(txPort, 1, 2)
      device.waitForLinks()
      tDev:getTxQueue(0):setRate(bgRate)
      mg.launchLua("loadSlave", tDev:getTxQueue(0), 42)
      mg.waitForSlaves()
    end
    function loadSlave(queue, port)
      local mem = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill{
          pktLength = PKT_SIZE,
          ethSrc = queue,
          udpDst = port,
        }
      end)
      while dpdk.running() do
        bufs:alloc(PKT_SIZE)
        for _, buf in ipairs(bufs) do
          local pkt = buf:getUdpPacket()
          pkt.ip.src:set(baseIP + math.random(255) - 1)
        end
        bufs:offloadUdpChecksums()
        local sent = queue:send(bufs)
      end
    end
  )"));
}

// ---------------------------------------------------------------------------
// Interpreter semantics
// ---------------------------------------------------------------------------

TEST(ScriptInterp, ArithmeticAndPrecedence) {
  EXPECT_EQ(eval_number("result = 2 + 3 * 4"), 14);
  EXPECT_EQ(eval_number("result = (2 + 3) * 4"), 20);
  EXPECT_EQ(eval_number("result = 2 ^ 3 ^ 2"), 512);  // right associative
  EXPECT_EQ(eval_number("result = -2 ^ 2"), -4);      // unary below ^
  EXPECT_EQ(eval_number("result = 7 % 3"), 1);
  EXPECT_EQ(eval_number("result = -7 % 3"), 2);  // Lua modulo semantics
  EXPECT_EQ(eval_number("result = 10 / 4"), 2.5);
}

TEST(ScriptInterp, ComparisonAndLogic) {
  EXPECT_EQ(eval("result = 1 < 2 and 2 <= 2 and 3 > 2 and 3 >= 3").as_bool(), true);
  EXPECT_EQ(eval("result = 1 == 1.0").as_bool(), true);
  EXPECT_EQ(eval("result = 'a' ~= 'b'").as_bool(), true);
  // and/or return operands, not booleans.
  EXPECT_EQ(eval_number("result = false or 5"), 5);
  EXPECT_EQ(eval_number("result = nil and 3 or 7"), 7);
  EXPECT_EQ(eval_string("result = 'x' and 'y'"), "y");
}

TEST(ScriptInterp, StringsAndConcat) {
  EXPECT_EQ(eval_string("result = 'a' .. 'b' .. 1"), "ab1");
  EXPECT_EQ(eval_number("result = #'hello'"), 5);
  EXPECT_EQ(eval_string("result = tostring(42)"), "42");
  EXPECT_EQ(eval_number("result = tonumber('3.5')"), 3.5);
  EXPECT_TRUE(eval("result = tonumber('zzz')").is_nil());
}

TEST(ScriptInterp, LocalScopingAndShadowing) {
  EXPECT_EQ(eval_number(R"(
    local x = 1
    do
      local x = 2
    end
    result = x
  )"), 1);
}

TEST(ScriptInterp, GlobalAssignmentFromFunction) {
  EXPECT_EQ(eval_number(R"(
    function set()
      g = 99
    end
    set()
    result = g
  )"), 99);
}

TEST(ScriptInterp, WhileAndBreak) {
  EXPECT_EQ(eval_number(R"(
    local i = 0
    while true do
      i = i + 1
      if i >= 10 then break end
    end
    result = i
  )"), 10);
}

TEST(ScriptInterp, RepeatUntil) {
  EXPECT_EQ(eval_number(R"(
    local n = 0
    repeat
      n = n + 1
    until n >= 3
    result = n
  )"), 3);
}

TEST(ScriptInterp, NumericForWithStep) {
  EXPECT_EQ(eval_number(R"(
    local sum = 0
    for i = 1, 10 do sum = sum + i end
    for i = 10, 1, -2 do sum = sum + 1 end
    result = sum
  )"), 60);
}

TEST(ScriptInterp, GenericForOverIpairs) {
  EXPECT_EQ(eval_number(R"(
    local t = {10, 20, 30}
    local sum = 0
    for i, v in ipairs(t) do sum = sum + i * v end
    result = sum
  )"), 10 + 40 + 90);
}

TEST(ScriptInterp, GenericForOverPairs) {
  EXPECT_EQ(eval_number(R"(
    local t = {a = 1, b = 2, c = 3}
    local sum = 0
    for k, v in pairs(t) do sum = sum + v end
    result = sum
  )"), 6);
}

TEST(ScriptInterp, FunctionsAndRecursion) {
  EXPECT_EQ(eval_number(R"(
    function fib(n)
      if n < 2 then return n end
      return fib(n - 1) + fib(n - 2)
    end
    result = fib(15)
  )"), 610);
}

TEST(ScriptInterp, ClosuresCaptureEnvironment) {
  EXPECT_EQ(eval_number(R"(
    local function counter()
      local n = 0
      return function()
        n = n + 1
        return n
      end
    end
    local c = counter()
    c()
    c()
    result = c()
  )"), 3);
}

TEST(ScriptInterp, MultipleReturnValues) {
  EXPECT_EQ(eval_number(R"(
    local function two()
      return 3, 4
    end
    local a, b = two()
    result = a * 10 + b
  )"), 34);
}

TEST(ScriptInterp, TablesRecordsAndArrays) {
  EXPECT_EQ(eval_number(R"(
    local t = { x = 1, [2] = 20, "first" }
    t.y = t.x + 10
    result = t.y + t[2] + #t
  )"), 11 + 20 + 2);  // t[1]="first", t[2]=20, so #t == 2
}

TEST(ScriptInterp, NestedTables) {
  EXPECT_EQ(eval_number(R"(
    local cfg = { inner = { value = 5 } }
    cfg.inner.value = cfg.inner.value + 1
    result = cfg.inner.value
  )"), 6);
}

TEST(ScriptInterp, MathLibrary) {
  EXPECT_EQ(eval_number("result = math.floor(3.7)"), 3);
  EXPECT_EQ(eval_number("result = math.max(1, 5, 3)"), 5);
  EXPECT_EQ(eval_number("result = math.min(4, 2)"), 2);
  // math.random(n) stays in [1, n].
  EXPECT_EQ(eval("result = (function()\n"
                 "  for i = 1, 1000 do\n"
                 "    local r = math.random(255)\n"
                 "    if r < 1 or r > 255 then return false end\n"
                 "  end\n"
                 "  return true\n"
                 "end)()").as_bool(),
            true);
}

TEST(ScriptInterp, StringFormat) {
  EXPECT_EQ(eval_string("result = string.format('%d pkts at %.2f Mpps', 42, 1.5)"),
            "42 pkts at 1.50 Mpps");
  EXPECT_EQ(eval_string("result = string.format('%s=%x', 'id', 255)"), "id=ff");
}

TEST(ScriptInterp, RuntimeErrorsCarryMessages) {
  EXPECT_THROW(eval("result = nil + 1"), sc::ScriptError);
  EXPECT_THROW(eval("local t = nil; result = t.x"), sc::ScriptError);
  EXPECT_THROW(eval("undefined_function()"), sc::ScriptError);
  EXPECT_THROW(eval("error('boom')"), sc::ScriptError);
}

TEST(ScriptInterp, StepLimitStopsRunawayScripts) {
  sc::Interpreter interp(sc::parse("while true do end"));
  interp.set_step_limit(10'000);
  EXPECT_THROW(interp.run(), sc::ScriptError);
}

TEST(ScriptInterp, AssertPassesAndFails) {
  EXPECT_NO_THROW(eval("assert(1 == 1, 'fine') result = 1"));
  EXPECT_THROW(eval("assert(false, 'nope')"), sc::ScriptError);
}

// ---------------------------------------------------------------------------
// MoonGen bindings: the paper's scripts end to end
// ---------------------------------------------------------------------------

TEST(ScriptBindings, QualityOfServiceScriptRunsEndToEnd) {
  mc::reset_run_state();
  // A condensed quality-of-service-test.lua (paper Listings 1-3): two load
  // slaves with different UDP ports, one counter slave, real devices.
  const std::string script = R"(
    local PKT_SIZE = 124
    function master(txPort, rxPort)
      local tDev = device.config(txPort, 1, 2)
      local rDev = device.config(rxPort)
      device.waitForLinks()
      tDev:connectTo(rDev)
      tDev:getTxQueue(0):setRate(100)
      tDev:getTxQueue(1):setRate(50)
      mg.launchLua("loadSlave", tDev:getTxQueue(0), 42)
      mg.launchLua("loadSlave", tDev:getTxQueue(1), 43)
      mg.launchLua("counterSlave", rDev:getRxQueue(0))
      mg.stopAfter(0.4)
      mg.waitForSlaves()
    end

    function loadSlave(queue, port)
      local mem = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill{
          pktLength = PKT_SIZE,
          ethSrc = queue,
          ethDst = "10:11:12:13:14:15",
          ipDst = "192.168.1.1",
          udpSrc = 1234,
          udpDst = port,
        }
      end)
      local baseIP = parseIPAddress("10.0.0.1")
      local bufs = mem:bufArray()
      local total = 0
      while dpdk.running() do
        bufs:alloc(PKT_SIZE)
        for _, buf in ipairs(bufs) do
          local pkt = buf:getUdpPacket()
          pkt.ip.src:set(baseIP + math.random(255) - 1)
        end
        bufs:offloadUdpChecksums()
        total = total + queue:send(bufs)
      end
      sent = total
    end

    function counterSlave(queue)
      local bufs = memory.bufArray()
      local counts = {}
      while dpdk.running() do
        local rx = queue:recv(bufs)
        for i = 1, rx do
          local buf = bufs[i]
          local port = buf:getUdpPacket().udp:getDstPort()
          counts[port] = (counts[port] or 0) + 1
        end
        bufs:freeAll()
      end
      seen42 = counts[42] or 0
      seen43 = counts[43] or 0
    end
  )";
  sc::ScriptRuntime runtime(script);
  runtime.run_master({sc::Value(50.0), sc::Value(51.0)});
  runtime.wait();
  EXPECT_EQ(runtime.slaves_launched(), 3u);
  mc::reset_run_state();
}

TEST(ScriptBindings, PacketCraftingMatchesFill) {
  mc::reset_run_state();
  const std::string script = R"(
    function master()
      local mem = memory.createMemPool(function(buf)
        buf:getUdpPacket():fill{
          pktLength = 100,
          ethDst = "aa:bb:cc:dd:ee:ff",
          ipSrc = "10.1.2.3",
          ipDst = "10.4.5.6",
          udpSrc = 1111,
          udpDst = 2222,
        }
      end)
      local bufs = mem:bufArray(4)
      bufs:alloc(100)
      local pkt = bufs[1]:getUdpPacket()
      src_port = pkt.udp:getSrcPort()
      dst_port = pkt.udp:getDstPort()
      pkt.ip.src:set(parseIPAddress("172.16.0.9"))
      src_ip = pkt.ip.src:getString()
      ttl0 = pkt.ip:getTTL()
      batch = #bufs
      bufs:freeAll()
    end
  )";
  sc::ScriptRuntime runtime(script);
  runtime.run_master();
  EXPECT_EQ(runtime.master().get_global("src_port").as_number(), 1111);
  EXPECT_EQ(runtime.master().get_global("dst_port").as_number(), 2222);
  EXPECT_EQ(runtime.master().get_global("src_ip").as_string(), "172.16.0.9");
  EXPECT_EQ(runtime.master().get_global("ttl0").as_number(), 64);
  EXPECT_EQ(runtime.master().get_global("batch").as_number(), 4);
}

TEST(ScriptBindings, ParseIpAddressMatchesHostOrderArithmetic) {
  mc::reset_run_state();
  sc::ScriptRuntime runtime(R"(
    function master()
      base = parseIPAddress("10.0.0.1")
      plus = base + 255
    end
  )");
  runtime.run_master();
  EXPECT_EQ(runtime.master().get_global("base").as_number(), 0x0a000001);
  EXPECT_EQ(runtime.master().get_global("plus").as_number(), 0x0a000100);
}

TEST(ScriptBindings, MissingMasterIsAnError) {
  sc::ScriptRuntime runtime("x = 1");
  EXPECT_THROW(runtime.run_master(), sc::ScriptError);
}

TEST(ScriptBindings, MethodTypeMismatchIsCaught) {
  mc::reset_run_state();
  sc::ScriptRuntime runtime(R"(
    function master()
      local dev = device.config(10)
      local q = dev:getTxQueue(0)
      q:send(dev)  -- wrong argument type
    end
  )");
  EXPECT_THROW(runtime.run_master(), sc::ScriptError);
}

// ---------------------------------------------------------------------------
// Extended standard library
// ---------------------------------------------------------------------------

TEST(ScriptStdlib, StringSubRepLenByte) {
  EXPECT_EQ(eval_string("result = string.sub('moongen', 1, 4)"), "moon");
  EXPECT_EQ(eval_string("result = string.sub('moongen', 5)"), "gen");
  EXPECT_EQ(eval_string("result = string.sub('moongen', -3)"), "gen");
  EXPECT_EQ(eval_string("result = string.sub('abc', 3, 1)"), "");
  EXPECT_EQ(eval_string("result = string.rep('ab', 3)"), "ababab");
  EXPECT_EQ(eval_number("result = string.len('hello')"), 5);
  EXPECT_EQ(eval_number("result = string.byte('A')"), 65);
  EXPECT_EQ(eval_number("result = string.byte('AB', 2)"), 66);
  EXPECT_TRUE(eval("result = string.byte('A', 9)").is_nil());
}

TEST(ScriptStdlib, TableInsertRemoveConcat) {
  EXPECT_EQ(eval_string(R"(
    local t = {}
    table.insert(t, "a")
    table.insert(t, "c")
    table.insert(t, 2, "b")
    result = table.concat(t, "-")
  )"), "a-b-c");
  EXPECT_EQ(eval_number(R"(
    local t = {1, 2, 3}
    local removed = table.remove(t)
    result = removed * 10 + #t
  )"), 32);
  EXPECT_EQ(eval_number(R"(
    local t = {10, 20, 30}
    table.remove(t, 1)
    result = t[1] + #t
  )"), 22);
}

TEST(ScriptStdlib, TableAsQueueInScript) {
  EXPECT_EQ(eval_number(R"(
    local q = {}
    for i = 1, 5 do table.insert(q, i * i) end
    local sum = 0
    while #q > 0 do
      sum = sum + table.remove(q, 1)
    end
    result = sum
  )"), 1 + 4 + 9 + 16 + 25);
}

// ---------------------------------------------------------------------------
// Compiled VM vs. tree-walking interpreter (differential testing)
// ---------------------------------------------------------------------------
//
// The bytecode VM is the default scripted path; the tree-walker is the
// reference semantics. These tests run the same source through both engines
// and require identical results, identical printed output and identical
// error messages — the determinism contract of DESIGN.md section 11.

namespace {

struct EngineRun {
  bool ok = true;
  std::string error;
  std::string output;
  std::string result;
};

EngineRun run_engine(const std::string& source, bool tree_walk) {
  EngineRun r;
  testing::internal::CaptureStdout();
  try {
    sc::Interpreter interp(sc::parse(source));
    interp.set_tree_walk(tree_walk);
    interp.set_step_limit(200'000);
    interp.run();
    r.result = interp.get_global("result").to_display_string();
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  r.output = testing::internal::GetCapturedStdout();
  return r;
}

void expect_engines_agree(const std::string& source, const char* context) {
  const EngineRun vm = run_engine(source, /*tree_walk=*/false);
  const EngineRun tw = run_engine(source, /*tree_walk=*/true);
  EXPECT_EQ(vm.ok, tw.ok) << context << "\n" << source;
  EXPECT_EQ(vm.error, tw.error) << context << "\n" << source;
  EXPECT_EQ(vm.output, tw.output) << context << "\n" << source;
  EXPECT_EQ(vm.result, tw.result) << context << "\n" << source;
}

/// Tiny deterministic PRNG for the fuzzer (independent of libc rand).
struct Xorshift {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  std::uint64_t pick(std::uint64_t n) { return next() % n; }
};

/// Generates a random well-formed program: declaration-before-use, bounded
/// loops, numeric locals. About one in five programs ends in a statement
/// that must fail identically in both engines.
std::string gen_program(std::uint64_t seed) {
  Xorshift rng{seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull};
  std::ostringstream os;
  os << "local n0, n1, n2, n3 = " << rng.pick(50) << ", " << rng.pick(50) << ", "
     << (rng.pick(50) + 1) << ", " << (rng.pick(50) + 1) << "\n"
     << "local s0, s1 = \"a" << rng.pick(10) << "\", \"b" << rng.pick(10) << "\"\n"
     << "local t = {}\n"
     << "local acc = 0\n"
     << "function helper(x, y) return x + y * 2, x - y end\n";
  const char* v[] = {"n0", "n1", "n2", "n3"};
  const int nstmts = 12 + static_cast<int>(rng.pick(8));
  for (int i = 0; i < nstmts; ++i) {
    const char* a = v[rng.pick(4)];
    const char* b = v[rng.pick(4)];
    const char* c = v[rng.pick(4)];
    switch (rng.pick(17)) {
      case 0: os << a << " = " << b << " + " << c << "\n"; break;
      case 1: os << a << " = " << b << " - " << rng.pick(20) << "\n"; break;
      case 2: os << a << " = " << b << " * " << c << " + " << rng.pick(9) << "\n"; break;
      case 3: os << a << " = (" << b << " % 97) + 1\n"; break;
      case 4:
        os << "if " << a << " < " << b << " then " << c << " = " << c << " + 1 else " << c
           << " = " << c << " - 1 end\n";
        break;
      case 5:
        os << "for i = 1, " << (1 + rng.pick(6)) << " do acc = acc + i * (" << a
           << " % 13) end\n";
        break;
      case 6:
        os << "while " << a << " > 3 and acc < 500 do " << a << " = " << a
           << " - 2 acc = acc + 1 end\n";
        break;
      case 7: os << "repeat acc = acc + 1 until acc % " << (2 + rng.pick(5)) << " == 0\n"; break;
      case 8: os << "t[" << rng.pick(8) << "] = " << a << "\n"; break;
      case 9: os << a << " = t[" << rng.pick(8) << "] or " << b << "\n"; break;
      case 10: os << "acc = acc + helper(" << a << ", " << b << ")\n"; break;
      case 11:
        os << a << ", " << b << " = helper(" << b << " % 100, " << a << " % 100)\n";
        break;
      case 12:
        os << "do local up = " << a
           << " % 10 local f = function(d) up = up + d return up end acc = acc + f(1) + f(2) "
              "end\n";
        break;
      case 13: os << "s0 = s1 .. (" << a << " % 10) acc = acc + #s0\n"; break;
      case 14: os << "print(" << a << " % 1000, s0, " << b << " < " << c << ")\n"; break;
      case 15: os << "acc = acc + math.random(" << (1 + rng.pick(20)) << ")\n"; break;
      case 16:
        os << "for k, w in ipairs({" << rng.pick(9) << ", " << rng.pick(9)
           << "}) do acc = acc + w * k end\n";
        break;
    }
  }
  if (rng.pick(5) == 0) {
    switch (rng.pick(4)) {
      case 0: os << "local z = nil\nz.x = 1\n"; break;
      case 1: os << "missing_function()\n"; break;
      case 2: os << "acc = acc + {}\n"; break;
      default: os << "for i = 1, 3, 0 do end\n"; break;
    }
  }
  os << "print(acc)\n"
     << "result = n0 .. \"|\" .. n1 .. \"|\" .. n2 .. \"|\" .. n3 .. \"|\" .. acc\n";
  return os.str();
}

}  // namespace

TEST(ScriptDifferential, FuzzedProgramsMatchTreeWalker) {
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    expect_engines_agree(gen_program(seed), ("seed " + std::to_string(seed)).c_str());
    if (::testing::Test::HasFailure()) break;  // first divergence is enough to debug
  }
}

TEST(ScriptDifferential, ClosureSemanticsMatch) {
  // Fresh capture per loop iteration.
  expect_engines_agree(R"(
    local fns = {}
    for i = 1, 3 do
      local x = i * 10
      fns[i] = function() x = x + 1 return x end
    end
    result = fns[1]() .. ":" .. fns[2]() .. ":" .. fns[3]() .. ":" .. fns[1]()
  )", "per-iteration capture");
  // Two closures sharing one upvalue.
  expect_engines_agree(R"(
    local function make()
      local n = 0
      local function inc() n = n + 1 return n end
      local function get() return n end
      return inc, get
    end
    local i, g = make()
    i() i()
    result = g()
  )", "shared upvalue");
  // Recursive local function through its own cell.
  expect_engines_agree(R"(
    local function fib(n)
      if n < 2 then return n end
      return fib(n - 1) + fib(n - 2)
    end
    result = fib(12)
  )", "recursive local function");
  // Same-scope redeclaration is visible through existing closures.
  expect_engines_agree(R"(
    local x = 1
    local f = function() return x end
    local x = 2
    result = f()
  )", "same-scope redeclaration");
}

TEST(ScriptDifferential, ControlFlowCornersMatch) {
  // Mutating the loop variable must not steer the iteration.
  expect_engines_agree(R"(
    local count = 0
    for i = 1, 5 do i = i + 100 count = count + 1 end
    result = count
  )", "loop var mutation");
  // `until` sees the loop body's locals.
  expect_engines_agree(R"(
    local i = 0
    repeat
      local doubled = i * 2
      i = i + 1
    until doubled >= 6
    result = i
  )", "repeat-until scoping");
  // break leaves only the innermost loop.
  expect_engines_agree(R"(
    local log = ""
    for i = 1, 3 do
      for j = 1, 3 do
        if j == 2 then break end
        log = log .. i .. j
      end
    end
    result = log
  )", "nested break");
  // Value-preserving and/or plus mixed concat.
  expect_engines_agree(R"(
    result = (nil or "d") .. (false and "x" or "y") .. tostring(1 and 2) .. (1 .. 2)
  )", "and-or values");
}

TEST(ScriptDifferential, MultipleValuesMatch) {
  expect_engines_agree(R"(
    local function two() return 1, 2 end
    local a, b, c = two()
    result = tostring(a) .. tostring(b) .. tostring(c)
  )", "padding");
  expect_engines_agree(R"(
    local function two() return 1, 2 end
    local a, b = 9, two()
    result = a .. "," .. b
  )", "expansion only in last position");
  expect_engines_agree(R"(
    local function two() return 1, 2 end
    local function sum3(x, y, z) return x + y * 10 + z * 100 end
    result = sum3(5, two())
  )", "call argument expansion");
  expect_engines_agree(R"(
    local function none() end
    local a = none()
    print(a)
    result = type(a)
  )", "zero results pad nil");
  expect_engines_agree(R"(
    local function two() return 1, 2 end
    local function pass() return 7, two() end
    local a, b, c = pass()
    result = a .. b .. c
  )", "tail expansion through return");
}

TEST(ScriptDifferential, ErrorMessagesMatch) {
  const char* failing[] = {
      "local z = nil z.x = 1",
      "local z = nil result = z.x",
      "local z = nil z()",
      "result = 1 + nil",
      "result = 1 + {}",
      "result = -\"oops\"",
      "result = #5",
      "result = {} .. \"x\"",
      "for i = 1, 3, 0 do end",
      "local n = 5 n:grow()",
      "local t = {[nil] = 1}",
      "local t = {} t[nil] = 1",
      "result = nil < 1",
      "while true do end",  // budget exhaustion at the same step count
  };
  for (const char* source : failing) expect_engines_agree(source, source);
}

TEST(ScriptDifferential, StdlibAndStateMatch) {
  // Per-interpreter seeded RNG: identical call sequences give identical
  // streams in both engines.
  expect_engines_agree(R"(
    local sum = 0
    for i = 1, 20 do sum = sum + math.random(100) * i end
    result = sum .. "," .. math.floor(math.random() * 1e6)
  )", "seeded math.random");
  expect_engines_agree(R"(
    local t = {}
    for i = 1, 8 do table.insert(t, string.format("%02d", i * 7 % 10)) end
    table.insert(t, 3, "XX")
    table.remove(t, 1)
    result = table.concat(t, "-") .. "/" .. #t
  )", "table stdlib");
  expect_engines_agree(R"(
    local keys = ""
    for k, v in pairs({zebra = 1, apple = 2, [3] = "c"}) do
      keys = keys .. tostring(k) .. "=" .. tostring(v) .. ";"
    end
    result = keys
  )", "pairs iteration order");
  expect_engines_agree(R"(
    local grid = {}
    function grid.cell(self, i, j) return (self[i] or {})[j] or 0 end
    grid[2] = {[3] = 42}
    result = grid:cell(2, 3) + grid:cell(9, 9)
  )", "table method calls");
  expect_engines_agree(R"(
    ns = {math = {}}
    function ns.math.add(a, b) return a + b end
    result = ns.math.add(20, 22)
  )", "function path declaration");
}

TEST(ScriptCompiler, DisassemblerShowsStructure) {
  const auto chunk = sc::compile_program(*sc::parse(R"(
    local function add(a, b) return a + b end
    total = add(2, 3)
  )"));
  const std::string listing = sc::disassemble(*chunk);
  EXPECT_NE(listing.find("proto 0"), std::string::npos);
  EXPECT_NE(listing.find("ADD"), std::string::npos);
  EXPECT_NE(listing.find("CALL"), std::string::npos);
  EXPECT_NE(listing.find("RET"), std::string::npos);
  EXPECT_GE(chunk->protos.size(), 2u);  // main + add
}

TEST(ScriptCompiler, ConstantFoldingPreservesValues) {
  // Folded arithmetic must produce the very same results as evaluated
  // arithmetic (the folder calls the runtime's apply_binary_op).
  expect_engines_agree(R"(
    result = (2 ^ 10 % 7) .. "," .. (1 / 3) .. "," .. tostring("a" < "b") .. "," ..
             (10 .. 20) .. "," .. (-(3 * 7)) .. "," .. #"hello" .. "," ..
             tostring(nil == false) .. "," .. tostring(false or 0)
  )", "constant folding");
}
