// Tests for the deterministic workload samplers (stats/samplers.hpp):
// SplitMix64, exponential/lognormal inter-arrivals and the alias-table
// Zipf key-popularity sampler. Distributional checks use chi-square
// goodness-of-fit at fixed seeds — the streams are fully deterministic,
// so the thresholds are exact regression pins, not flaky statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "stats/samplers.hpp"

namespace st = moongen::stats;

namespace {

/// Chi-square statistic over observed counts vs. expected probabilities.
double chi_square(const std::vector<std::uint64_t>& observed,
                  const std::vector<double>& expected_p, std::uint64_t n) {
  double chi2 = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_p[i] * static_cast<double>(n);
    const double d = static_cast<double>(observed[i]) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

}  // namespace

// ---------------------------------------------------------------------------
// SplitMix64
// ---------------------------------------------------------------------------

TEST(SplitMix64, IsDeterministicPerSeed) {
  st::SplitMix64 a(42);
  st::SplitMix64 b(42);
  st::SplitMix64 c(43);
  bool all_equal = true;
  bool any_differ = false;
  for (int i = 0; i < 1000; ++i) {
    const auto va = a.next();
    all_equal = all_equal && (va == b.next());
    any_differ = any_differ || (va != c.next());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differ);
}

TEST(SplitMix64, DoublesAreInUnitInterval) {
  st::SplitMix64 rng(7);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  // The stream actually covers the interval.
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

// ---------------------------------------------------------------------------
// ExponentialSampler
// ---------------------------------------------------------------------------

TEST(ExponentialSampler, PassesChiSquareAgainstTheoreticalCdf) {
  constexpr double kMean = 1e6;
  constexpr int kBins = 10;
  constexpr std::uint64_t kDraws = 100'000;
  st::ExponentialSampler s(kMean, 11);
  // Equiprobable bins: boundaries at the exponential quantiles.
  std::vector<double> bounds;
  for (int i = 1; i < kBins; ++i)
    bounds.push_back(-kMean * std::log(1.0 - static_cast<double>(i) / kBins));
  std::vector<std::uint64_t> observed(kBins, 0);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const double x = s.next();
    std::size_t bin = 0;
    while (bin < bounds.size() && x >= bounds[bin]) ++bin;
    ++observed[bin];
  }
  const std::vector<double> expected(kBins, 1.0 / kBins);
  // 9 dof: the 0.999 quantile is 27.9.
  EXPECT_LT(chi_square(observed, expected, kDraws), 27.9);
}

TEST(ExponentialSampler, MeanConverges) {
  st::ExponentialSampler s(250.0, 3);
  double total = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) total += s.next();
  EXPECT_NEAR(total / n, 250.0, 2.5);  // within 1 %
}

TEST(LognormalSampler, FromMeanHitsTheRequestedMean) {
  auto s = st::LognormalSampler::from_mean(1000.0, 0.5, 5);
  double total = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) total += s.next();
  EXPECT_NEAR(total / n, 1000.0, 15.0);
}

// ---------------------------------------------------------------------------
// ZipfSampler
// ---------------------------------------------------------------------------

TEST(Zipf, ProbabilitiesSumToOne) {
  st::ZipfSampler z(100, 0.99, 1);
  double sum = 0;
  for (std::uint64_t r = 0; r < z.support(); ++r) sum += z.probability(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, PassesChiSquareAgainstItsOwnPmf) {
  constexpr std::size_t kKeys = 64;
  constexpr std::uint64_t kDraws = 200'000;
  st::ZipfSampler z(kKeys, 0.99, 17);
  std::vector<std::uint64_t> observed(kKeys, 0);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    const auto k = z.next();
    ASSERT_LT(k, kKeys);
    ++observed[k];
  }
  std::vector<double> expected;
  for (std::uint64_t r = 0; r < kKeys; ++r) expected.push_back(z.probability(r));
  // 63 dof: the 0.999 quantile is 103.4.
  EXPECT_LT(chi_square(observed, expected, kDraws), 103.4);
}

TEST(Zipf, SkewZeroIsUniform) {
  constexpr std::size_t kKeys = 32;
  constexpr std::uint64_t kDraws = 100'000;
  st::ZipfSampler z(kKeys, 0.0, 23);
  for (std::uint64_t r = 0; r < kKeys; ++r)
    EXPECT_NEAR(z.probability(r), 1.0 / kKeys, 1e-12);
  std::vector<std::uint64_t> observed(kKeys, 0);
  for (std::uint64_t i = 0; i < kDraws; ++i) ++observed[z.next()];
  const std::vector<double> expected(kKeys, 1.0 / kKeys);
  // 31 dof: the 0.999 quantile is 61.1.
  EXPECT_LT(chi_square(observed, expected, kDraws), 61.1);
}

TEST(Zipf, SingleKeyAlwaysReturnsZero) {
  st::ZipfSampler z(1, 0.99, 9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(z.next(), 0u);
  EXPECT_DOUBLE_EQ(z.probability(0), 1.0);
}

TEST(Zipf, HeavySkewConcentratesOnTheHead) {
  st::ZipfSampler z(1000, 1.2, 31);
  std::uint64_t head = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i)
    if (z.next() < 10) ++head;
  // The top 10 of 1000 keys carry the majority of the mass at skew 1.2.
  EXPECT_GT(head, kDraws / 2);
}

TEST(Zipf, RejectsDegenerateParameters) {
  EXPECT_THROW(st::ZipfSampler(0, 0.99, 1), std::invalid_argument);
  EXPECT_THROW(st::ZipfSampler(10, -0.5, 1), std::invalid_argument);
}

TEST(Zipf, IsDeterministicPerSeed) {
  st::ZipfSampler a(512, 0.99, 77);
  st::ZipfSampler b(512, 0.99, 77);
  st::ZipfSampler c(512, 0.99, 78);
  bool all_equal = true;
  bool any_differ = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto va = a.next();
    all_equal = all_equal && (va == b.next());
    any_differ = any_differ || (va != c.next());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differ);
}
