// Tests for the telemetry subsystem: sharded counters, log-linear
// histograms, the metric registry, the sampler and the exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/task.hpp"
#include "stats/histogram.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/log_linear_histogram.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/sharded_counter.hpp"

namespace mc = moongen::core;
namespace mt = moongen::telemetry;
namespace st = moongen::stats;

namespace {

struct FakeTime {
  std::uint64_t now = 0;
  st::TimeSource source() {
    return [this] { return now; };
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// ShardedCounter
// ---------------------------------------------------------------------------

TEST(ShardedCounter, SingleThreadedAddAndReset) {
  mt::ShardedCounter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ShardedCounter, ShardCountIsPowerOfTwo) {
  const auto n = mt::shard_count();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 64u);
  EXPECT_EQ(n & (n - 1), 0u);
  // The calling thread's index is stable across calls.
  EXPECT_EQ(mt::shard_index_of_this_thread(), mt::shard_index_of_this_thread());
}

TEST(ShardedCounter, TaskSetHammerSumsExactly) {
  // Acceptance: N TaskSet tasks hammer one counter; after wait() the sum
  // over shards is exact.
  mc::reset_run_state();
  constexpr int kTasks = 8;
  constexpr std::uint64_t kAddsPerTask = 200'000;
  mt::ShardedCounter c;
  mc::TaskSet tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.launch("hammer", [&c] {
      for (std::uint64_t n = 0; n < kAddsPerTask; ++n) c.add();
    });
  }
  tasks.wait();
  EXPECT_EQ(c.value(), kTasks * kAddsPerTask);
}

TEST(Gauge, LastWriterWins) {
  mt::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-7.25);
  EXPECT_EQ(g.value(), -7.25);
}

// ---------------------------------------------------------------------------
// LogLinearHistogram
// ---------------------------------------------------------------------------

TEST(LogLinearHistogram, SmallValuesGetUnitBuckets) {
  mt::LogLinearHistogram h({.sub_bucket_bits = 5, .max_value = 1'000'000});
  // Below 2^5 every value has its own bucket.
  for (std::uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(h.bucket_lower(h.index_for(v)), v) << "v=" << v;
    EXPECT_EQ(h.bucket_width(h.index_for(v)), 1u) << "v=" << v;
  }
}

TEST(LogLinearHistogram, IndexRoundTripAndRelativeError) {
  mt::LogLinearHistogram h({.sub_bucket_bits = 5, .max_value = 10'000'000'000ull});
  std::uint64_t prev_lower = 0;
  bool first = true;
  for (std::uint64_t v = 1; v < h.config().max_value; v = v * 3 / 2 + 1) {
    const auto i = h.index_for(v);
    const auto lo = h.bucket_lower(i);
    const auto w = h.bucket_width(i);
    ASSERT_LE(lo, v) << "v=" << v;
    ASSERT_LT(v, lo + w) << "v=" << v;
    // Relative error bound: bucket no wider than value * 2^(1-bits).
    ASSERT_LE(w - 1, v / 16) << "v=" << v;
    // Lower edges are monotonic in the index.
    if (!first) {
      ASSERT_GT(lo + w, prev_lower);
    }
    prev_lower = lo;
    first = false;
  }
}

TEST(LogLinearHistogram, BucketLowersAreMonotonicAndCoverRange) {
  mt::LogLinearHistogram h({.sub_bucket_bits = 4, .max_value = 1 << 20});
  for (std::size_t i = 1; i < h.bucket_count(); ++i) {
    ASSERT_EQ(h.bucket_lower(i), h.bucket_lower(i - 1) + h.bucket_width(i - 1)) << "i=" << i;
    ASSERT_EQ(h.index_for(h.bucket_lower(i)), i) << "i=" << i;
  }
}

TEST(LogLinearHistogram, RecordTracksMomentsAndOverflow) {
  mt::LogLinearHistogram h({.sub_bucket_bits = 5, .max_value = 1000});
  h.record(10);
  h.record(20, 2);
  h.record(5000);  // >= max_value -> overflow bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 5000u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0 + 40.0 + 5000.0);
}

TEST(LogLinearHistogram, PercentileMatchesFixedBinHistogram) {
  // Acceptance: identical samples into a LogLinearHistogram and a unit-bin
  // stats::Histogram; the log-linear percentile must be the lower edge of
  // the bucket containing the exact percentile value.
  mt::LogLinearHistogram ll({.sub_bucket_bits = 5, .max_value = 1 << 20});
  st::Histogram exact(1, 1 << 20);  // bin width 1: percentile == sample value
  std::uint64_t v = 1;
  for (int i = 0; i < 20'000; ++i) {
    v = (v * 48271) % 262'139;  // deterministic spread over [1, 2^18)
    ll.record(v);
    exact.add(v);
  }
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    const auto e = exact.percentile(p);
    const auto l = ll.percentile(p);
    EXPECT_EQ(l, ll.bucket_lower(ll.index_for(e))) << "p=" << p;
    EXPECT_LE(l, e) << "p=" << p;
    EXPECT_GE(l + ll.bucket_width(ll.index_for(e)), e) << "p=" << p;
  }
  EXPECT_EQ(ll.median(), ll.percentile(50.0));
}

TEST(LogLinearHistogram, MergeAccumulatesIdenticalGeometry) {
  mt::HistogramConfig cfg{.sub_bucket_bits = 5, .max_value = 1000};
  mt::LogLinearHistogram a(cfg);
  mt::LogLinearHistogram b(cfg);
  a.record(10);
  b.record(10);
  b.record(900);
  b.record(5000);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.bucket(a.index_for(10)), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 5000u);
}

TEST(LogLinearHistogram, MergeRejectsGeometryMismatch) {
  mt::LogLinearHistogram a({.sub_bucket_bits = 5, .max_value = 1000});
  mt::LogLinearHistogram bits({.sub_bucket_bits = 4, .max_value = 1000});
  mt::LogLinearHistogram range({.sub_bucket_bits = 5, .max_value = 2000});
  EXPECT_THROW(a.merge(bits), std::invalid_argument);
  EXPECT_THROW(a.merge(range), std::invalid_argument);
}

TEST(LogLinearHistogram, RejectsBadConfig) {
  EXPECT_THROW(mt::LogLinearHistogram({.sub_bucket_bits = 0}), std::invalid_argument);
  EXPECT_THROW(mt::LogLinearHistogram({.sub_bucket_bits = 21}), std::invalid_argument);
  EXPECT_THROW(mt::LogLinearHistogram({.sub_bucket_bits = 5, .max_value = 0}),
               std::invalid_argument);
}

TEST(LogLinearHistogram, PrintMatchesStatsHistogramContract) {
  mt::LogLinearHistogram h({.sub_bucket_bits = 5, .max_value = 1000});
  for (int i = 0; i < 3; ++i) h.record(10);
  h.record(2000);
  std::ostringstream os;
  h.print(os);
  EXPECT_NE(os.str().find("10"), std::string::npos);
  EXPECT_NE(os.str().find("75.00%"), std::string::npos);
  EXPECT_NE(os.str().find("overflow"), std::string::npos);
}

TEST(ShardedHistogram, ConcurrentRecordsMergeExactly) {
  mc::reset_run_state();
  constexpr int kTasks = 6;
  constexpr std::uint64_t kPerTask = 50'000;
  mt::ShardedHistogram h({.sub_bucket_bits = 5, .max_value = 1 << 20});
  mc::TaskSet tasks;
  for (int t = 0; t < kTasks; ++t) {
    tasks.launch("hist", [&h, t] {
      for (std::uint64_t i = 0; i < kPerTask; ++i) h.record(100 + (t * kPerTask + i) % 1000);
    });
  }
  tasks.wait();
  const auto merged = h.merged();
  EXPECT_EQ(merged.total(), kTasks * kPerTask);
  EXPECT_EQ(merged.overflow(), 0u);
  EXPECT_GE(merged.min(), 100u);
  EXPECT_LE(merged.max(), 1099u);
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

TEST(MetricRegistry, ResolvingSameNameYieldsSameSlot) {
  mt::MetricRegistry reg;
  auto c1 = reg.shard(0).counter("a.packets");
  auto c2 = reg.shard(0).counter("a.packets");
  c1.add(5);
  EXPECT_EQ(c2.value(), 5u);
  auto g1 = reg.shard(0).gauge("a.rate");
  auto g2 = reg.shard(0).gauge("a.rate");
  g1.set(2.5);
  EXPECT_EQ(g2.value(), 2.5);
  auto h1 = reg.shard(0).histogram("a.latency");
  auto h2 = reg.shard(0).histogram("a.latency");
  h1.record(100);
  ASSERT_NE(h2.get(), nullptr);
  EXPECT_EQ(h2.get()->total(), 1u);
  EXPECT_EQ(reg.metric_count(), 3u);
}

TEST(MetricRegistry, HistogramGeometryConflictThrows) {
  mt::MetricRegistry reg;
  (void)reg.shard(0).histogram("lat", {.sub_bucket_bits = 5, .max_value = 1000});
  // Same geometry: fine. Different geometry: the shards could never merge.
  EXPECT_NO_THROW((void)reg.shard(0).histogram("lat", {.sub_bucket_bits = 5, .max_value = 1000}));
  EXPECT_THROW((void)reg.shard(0).histogram("lat", {.sub_bucket_bits = 4, .max_value = 1000}),
               std::invalid_argument);
  EXPECT_THROW((void)reg.shard(0).histogram("lat", {.sub_bucket_bits = 5, .max_value = 9999}),
               std::invalid_argument);
}

TEST(MetricRegistry, SnapshotIsNameSortedAndConsistent) {
  mt::MetricRegistry reg;
  reg.shard(0).counter("z.count").add(7);
  reg.shard(0).counter("a.count").add(3);
  reg.shard(0).gauge("m.rate").set(1.5);
  reg.shard(0).histogram("lat").record(42);
  const auto snap = reg.snapshot(1234);
  EXPECT_EQ(snap.timestamp_ns, 1234u);
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.count");
  EXPECT_EQ(snap.counters[0].value, 3u);
  EXPECT_EQ(snap.counters[1].name, "z.count");
  EXPECT_EQ(snap.counters[1].value, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.total(), 1u);
  // The snapshot is a copy: later updates don't retro-change it.
  reg.shard(0).counter("a.count").add(100);
  EXPECT_EQ(snap.counters[0].value, 3u);
}

// ---------------------------------------------------------------------------
// TaskSet lifecycle telemetry
// ---------------------------------------------------------------------------

TEST(TaskSetTelemetry, CountsLaunchesAndFinishes) {
  mc::reset_run_state();
  mt::MetricRegistry reg;
  mc::TaskSet tasks;
  tasks.bind_telemetry(reg, "tasks");
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) tasks.launch("worker", [&ran] { ran.fetch_add(1); });
  tasks.wait();
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(reg.counter_value("tasks.tasks_launched"), 5u);
  EXPECT_EQ(reg.counter_value("tasks.tasks_finished"), 5u);
  EXPECT_EQ(reg.gauge_value("tasks.tasks_active"), 0.0);
}

// ---------------------------------------------------------------------------
// Sampler (virtual time)
// ---------------------------------------------------------------------------

TEST(Sampler, PollHonoursPeriodAndCatchesUpOnce) {
  FakeTime t;
  mt::MetricRegistry reg;
  auto c = reg.shard(0).counter("n");
  mt::Sampler sampler(reg, t.source(), {.period_ns = 100, .capacity = 512});
  EXPECT_TRUE(sampler.poll());  // due immediately at construction time
  EXPECT_FALSE(sampler.poll());
  t.now = 99;
  EXPECT_FALSE(sampler.poll());
  c.add(1);
  t.now = 100;
  EXPECT_TRUE(sampler.poll());
  // A long gap yields a single catch-up snapshot, not a backfill.
  t.now = 10'000;
  EXPECT_TRUE(sampler.poll());
  EXPECT_FALSE(sampler.poll());
  EXPECT_EQ(sampler.size(), 3u);
  const auto series = sampler.series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].timestamp_ns, 0u);
  EXPECT_EQ(series[1].timestamp_ns, 100u);
  EXPECT_EQ(series[2].timestamp_ns, 10'000u);
  EXPECT_EQ(series[0].counters[0].value, 0u);
  EXPECT_EQ(series[1].counters[0].value, 1u);
}

TEST(Sampler, RingDropsOldestBeyondCapacity) {
  FakeTime t;
  mt::MetricRegistry reg;
  (void)reg.shard(0).counter("n");
  mt::Sampler sampler(reg, t.source(), {.period_ns = 10, .capacity = 4});
  for (int i = 0; i < 10; ++i) {
    sampler.sample_now();
    t.now += 10;
  }
  EXPECT_EQ(sampler.size(), 4u);
  const auto series = sampler.series();
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series.front().timestamp_ns, 60u);  // snapshots 0..5 dropped
  EXPECT_EQ(series.back().timestamp_ns, 90u);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

namespace {

mt::Snapshot example_snapshot() {
  mt::MetricRegistry reg;
  reg.shard(0).counter("port.tx_packets").add(1000);
  reg.shard(0).gauge("load.offered_mpps").set(14.88);
  auto h = reg.shard(0).histogram("lat.ns", {.sub_bucket_bits = 5, .max_value = 1 << 20});
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v * 10);
  return reg.snapshot(42);
}

}  // namespace

TEST(Exporters, JsonContainsSchemaAndAllMetricKinds) {
  std::ostringstream os;
  mt::write_json(os, example_snapshot());
  const auto s = os.str();
  EXPECT_NE(s.find("\"moongen-telemetry-v1\""), std::string::npos);
  EXPECT_NE(s.find("\"timestamp_ns\""), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("\"port.tx_packets\""), std::string::npos);
  EXPECT_NE(s.find("1000"), std::string::npos);
  EXPECT_NE(s.find("\"load.offered_mpps\""), std::string::npos);
  EXPECT_NE(s.find("14.88"), std::string::npos);
  EXPECT_NE(s.find("\"lat.ns\""), std::string::npos);
  for (const char* key : {"\"count\"", "\"min\"", "\"max\"", "\"mean\"", "\"p50\"", "\"p99\"",
                          "\"p999\"", "\"buckets\"", "\"lower\"", "\"width\""})
    EXPECT_NE(s.find(key), std::string::npos) << key;
}

TEST(Exporters, JsonSeriesWrapsSnapshots) {
  std::ostringstream os;
  mt::write_json_series(os, {example_snapshot(), example_snapshot()});
  const auto s = os.str();
  EXPECT_NE(s.find("\"moongen-telemetry-series-v1\""), std::string::npos);
  EXPECT_NE(s.find("\"snapshots\""), std::string::npos);
  // Two snapshot objects -> the schema of the single snapshot twice.
  const auto first = s.find("moongen-telemetry-v1");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(s.find("moongen-telemetry-v1", first + 1), std::string::npos);
}

TEST(Exporters, JsonEscapesStrings) {
  mt::MetricRegistry reg;
  reg.shard(0).counter("weird\"name\\with\ncontrol").add(1);
  std::ostringstream os;
  mt::write_json(os, reg.snapshot());
  const auto s = os.str();
  EXPECT_NE(s.find("weird\\\"name\\\\with\\ncontrol"), std::string::npos);
}

TEST(Exporters, CsvEmitsHeaderAndTypedRows) {
  std::ostringstream os;
  mt::write_csv(os, example_snapshot());
  const auto s = os.str();
  EXPECT_NE(s.find("timestamp_ns,metric,type,field,value"), std::string::npos);
  EXPECT_NE(s.find("42,port.tx_packets,counter,value,1000"), std::string::npos);
  EXPECT_NE(s.find("load.offered_mpps,gauge,value,"), std::string::npos);
  EXPECT_NE(s.find("lat.ns,histogram,p50,"), std::string::npos);
  // Series: exactly one header line.
  std::ostringstream os2;
  mt::write_csv_series(os2, {example_snapshot(), example_snapshot()});
  const auto s2 = os2.str();
  const auto h1 = s2.find("timestamp_ns,metric");
  ASSERT_NE(h1, std::string::npos);
  EXPECT_EQ(s2.find("timestamp_ns,metric", h1 + 1), std::string::npos);
}

TEST(Exporters, PrometheusSanitizesNamesAndEmitsQuantiles) {
  std::ostringstream os;
  mt::write_prometheus(os, example_snapshot());
  const auto s = os.str();
  EXPECT_NE(s.find("moongen_port_tx_packets 1000"), std::string::npos);
  EXPECT_NE(s.find("# TYPE moongen_port_tx_packets counter"), std::string::npos);
  EXPECT_NE(s.find("moongen_load_offered_mpps"), std::string::npos);
  EXPECT_NE(s.find("# TYPE moongen_lat_ns summary"), std::string::npos);
  EXPECT_NE(s.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(s.find("moongen_lat_ns_count 100"), std::string::npos);
  EXPECT_NE(s.find("moongen_lat_ns_sum"), std::string::npos);
}

TEST(Exporters, DumpJsonToFileRejectsBadPath) {
  EXPECT_FALSE(mt::dump_json_to_file("/nonexistent-dir/x.json", example_snapshot()));
  EXPECT_FALSE(mt::dump_json_series_to_file("/nonexistent-dir/x.json", {}));
}
