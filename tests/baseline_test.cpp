// Tests for the comparison baselines: the Pktgen-DPDK-style generic
// generator (Section 5.2) and the software-paced rate controllers
// (Section 7.3).
#include <gtest/gtest.h>

#include "baseline/static_generator.hpp"
#include "baseline/sw_paced.hpp"
#include "core/rate_control.hpp"
#include "proto/checksum.hpp"
#include "proto/packet_view.hpp"
#include "sim_testbed.hpp"

namespace mb = moongen::baseline;
namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;

// ---------------------------------------------------------------------------
// StaticGenerator (fast path)
// ---------------------------------------------------------------------------

TEST(StaticGenerator, CraftsValidUdpPackets) {
  auto& tx = mc::Device::config(20, 1, 1);
  auto& rx = mc::Device::config(21, 1, 1);
  tx.connect_to(rx);

  mb::StaticGenConfig cfg;
  cfg.packet_size = 60;
  cfg.src_ip_mode = mb::StaticGenConfig::RangeMode::kRandom;
  cfg.src_ip_count = 256;
  cfg.checksum_offload = false;  // compute in software so we can verify
  mb::StaticGenerator gen(tx, 0, cfg);
  gen.run_packets(256);

  moongen::membuf::BufArray bufs(512);
  const auto n = rx.get_rx_queue(0).recv(bufs);
  ASSERT_GT(n, 0u);
  for (auto* buf : bufs) {
    auto pc = moongen::proto::classify(buf->bytes());
    ASSERT_TRUE(pc.has_value());
    EXPECT_TRUE(pc->is_udp);
    moongen::proto::Ipv4PacketView view{buf->bytes()};
    EXPECT_TRUE(moongen::proto::verify_ipv4_checksum(view.ip()));
    // Source IP within the configured 10.0.0.1/24-ish range.
    const auto src = view.ip().src().value;
    EXPECT_GE(src, 0x0a000001u);
    EXPECT_LT(src, 0x0a000001u + 256u);
  }
  bufs.free_all();
  tx.disconnect();
}

TEST(StaticGenerator, IncrementModeSweepsAddresses) {
  auto& tx = mc::Device::config(22, 1, 1);
  auto& rx = mc::Device::config(23, 1, 1);
  tx.connect_to(rx);
  mb::StaticGenConfig cfg;
  cfg.src_ip_mode = mb::StaticGenConfig::RangeMode::kIncrement;
  cfg.src_ip_count = 4;
  cfg.checksum_offload = false;
  mb::StaticGenerator gen(tx, 0, cfg);
  gen.run_packets(8);
  moongen::membuf::BufArray bufs(16);
  rx.get_rx_queue(0).recv(bufs);
  ASSERT_EQ(bufs.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    moongen::proto::Ipv4PacketView view{bufs[i]->bytes()};
    EXPECT_EQ(view.ip().src().value, 0x0a000001u + static_cast<std::uint32_t>(i % 4));
  }
  bufs.free_all();
  tx.disconnect();
}

TEST(StaticGenerator, SupportsIpv6Tcp) {
  auto& tx = mc::Device::config(24, 1, 1);
  auto& rx = mc::Device::config(25, 1, 1);
  tx.connect_to(rx);
  mb::StaticGenConfig cfg;
  cfg.packet_size = 80;
  cfg.l3 = mb::StaticGenConfig::L3::kIpv6;
  cfg.l4 = mb::StaticGenConfig::L4::kTcp;
  cfg.checksum_offload = false;
  mb::StaticGenerator gen(tx, 0, cfg);
  gen.run_packets(4);
  moongen::membuf::BufArray bufs(8);
  rx.get_rx_queue(0).recv(bufs);
  ASSERT_EQ(bufs.size(), 4u);
  for (auto* buf : bufs) {
    auto pc = moongen::proto::classify(buf->bytes());
    ASSERT_TRUE(pc.has_value());
    EXPECT_EQ(pc->ether_type, moongen::proto::EtherType::kIPv6);
    EXPECT_EQ(pc->l4_protocol, moongen::proto::IpProtocol::kTcp);
  }
  bufs.free_all();
  tx.disconnect();
}

TEST(StaticGenerator, VlanTagging) {
  auto& tx = mc::Device::config(26, 1, 1);
  auto& rx = mc::Device::config(27, 1, 1);
  tx.connect_to(rx);
  mb::StaticGenConfig cfg;
  cfg.packet_size = 64;
  cfg.vlan_enabled = true;
  cfg.vlan_id = 123;
  cfg.checksum_offload = false;
  mb::StaticGenerator gen(tx, 0, cfg);
  gen.run_packets(2);
  moongen::membuf::BufArray bufs(4);
  rx.get_rx_queue(0).recv(bufs);
  ASSERT_EQ(bufs.size(), 2u);
  auto pc = moongen::proto::classify(bufs[0]->bytes());
  ASSERT_TRUE(pc.has_value());
  EXPECT_TRUE(pc->has_vlan);
  bufs.free_all();
  tx.disconnect();
}

TEST(StaticGenerator, SizeSweep) {
  auto& tx = mc::Device::config(28, 1, 1);
  auto& rx = mc::Device::config(29, 1, 1);
  tx.connect_to(rx);
  mb::StaticGenConfig cfg;
  cfg.size_mode = mb::StaticGenConfig::RangeMode::kIncrement;
  cfg.size_min = 60;
  cfg.size_max = 63;
  cfg.checksum_offload = false;
  mb::StaticGenerator gen(tx, 0, cfg);
  gen.run_packets(8);
  moongen::membuf::BufArray bufs(8);
  rx.get_rx_queue(0).recv(bufs);
  ASSERT_EQ(bufs.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(bufs[i]->length(), 60 + i % 4);
  bufs.free_all();
  tx.disconnect();
}

// ---------------------------------------------------------------------------
// Software pacers in the simulation (Section 7.3)
// ---------------------------------------------------------------------------

namespace {

mn::Frame small_frame() {
  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  return mc::make_udp_frame(opts);
}

}  // namespace

TEST(SoftwarePacers, PktgenAverageRateIsCorrect) {
  moongen::test::GbeInterArrivalBed bed;
  mb::PktgenLikePacer pacer(bed.events, bed.tx.tx_queue(0), small_frame(), {.mpps = 0.5});
  pacer.start();
  bed.events.run_until(100 * ms::kPsPerMs);
  pacer.stop();
  EXPECT_NEAR(static_cast<double>(bed.rx.stats().rx_packets), 50'000.0, 500.0);
}

TEST(SoftwarePacers, ZsendAverageRateIsCorrect) {
  moongen::test::GbeInterArrivalBed bed;
  mb::ZsendLikePacer pacer(bed.events, bed.tx.tx_queue(0), small_frame(), {.mpps = 0.5});
  pacer.start();
  bed.events.run_until(100 * ms::kPsPerMs);
  pacer.stop();
  EXPECT_NEAR(static_cast<double>(bed.rx.stats().rx_packets), 50'000.0, 500.0);
}

TEST(SoftwarePacers, ZsendProducesFarMoreMicroBursts) {
  // The headline of Table 4: zsend emits a large share of back-to-back
  // packets; the deadline-driven pacer almost none; and hardware rate
  // control (tested in wire_test) is the cleanest.
  double pktgen_bursts, zsend_bursts;
  {
    moongen::test::GbeInterArrivalBed bed;
    mb::PktgenLikePacer pacer(bed.events, bed.tx.tx_queue(0), small_frame(), {.mpps = 0.5});
    pacer.start();
    bed.events.run_until(200 * ms::kPsPerMs);
    pktgen_bursts = bed.recorder.micro_burst_fraction();
  }
  {
    moongen::test::GbeInterArrivalBed bed;
    mb::ZsendLikePacer pacer(bed.events, bed.tx.tx_queue(0), small_frame(), {.mpps = 0.5});
    pacer.start();
    bed.events.run_until(200 * ms::kPsPerMs);
    zsend_bursts = bed.recorder.micro_burst_fraction();
  }
  EXPECT_LT(pktgen_bursts, 0.02);
  EXPECT_GT(zsend_bursts, 0.15);
  EXPECT_GT(zsend_bursts, 10 * pktgen_bursts);
}

TEST(SoftwarePacers, PktgenPrecisionWorseThanHardware) {
  // Software pacing cannot control the DMA fetch timing and suffers
  // deadline misses (Section 7.1), so its inter-arrival spread is wider
  // than hardware rate control's — most visibly in the tails (Table 4:
  // +-512 ns covers 99.8 % for MoonGen but only 94.5 % for Pktgen-DPDK).
  double hw_within_256, sw_within_256, hw_within_512, sw_within_512;
  const ms::SimTime target = 2 * ms::kPsPerUs;
  {
    moongen::test::GbeInterArrivalBed bed;
    auto& q = bed.tx.tx_queue(0);
    q.set_rate_mpps(0.5, 64);
    q.set_refill([] { return small_frame(); });
    bed.events.run_until(200 * ms::kPsPerMs);
    hw_within_256 = bed.recorder.fraction_within(target, 256'000);
    hw_within_512 = bed.recorder.fraction_within(target, 512'000);
  }
  {
    moongen::test::GbeInterArrivalBed bed;
    mb::PktgenLikePacer pacer(bed.events, bed.tx.tx_queue(0), small_frame(), {.mpps = 0.5});
    pacer.start();
    bed.events.run_until(200 * ms::kPsPerMs);
    sw_within_256 = bed.recorder.fraction_within(target, 256'000);
    sw_within_512 = bed.recorder.fraction_within(target, 512'000);
  }
  EXPECT_GT(hw_within_256, 0.99);
  EXPECT_GT(hw_within_256, sw_within_256 + 0.03);
  EXPECT_GT(hw_within_512, sw_within_512 + 0.03);
}
