// Tests for the fast-path device API (Listings 1-3 semantics), the task
// system, pipes, and the field-modifier engine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "core/device.hpp"
#include "core/field_modifier.hpp"
#include "core/task.hpp"
#include "proto/packet_view.hpp"
#include "telemetry/registry.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mp = moongen::proto;

// ---------------------------------------------------------------------------
// Fast-path device
// ---------------------------------------------------------------------------

TEST(FastDevice, ConfigReturnsStableInstances) {
  auto& dev = mc::Device::config(0, 1, 2);
  auto& again = mc::Device::config(0, 1, 2);
  EXPECT_EQ(&dev, &again);
  EXPECT_EQ(dev.num_tx_queues(), 2);
  EXPECT_THROW(mc::Device::config(-1), std::out_of_range);
  EXPECT_THROW(mc::Device::config(1000), std::out_of_range);
}

TEST(FastDevice, MacDerivedFromId) {
  auto& dev = mc::Device::config(3);
  EXPECT_EQ(dev.mac().to_string(), "02:00:00:00:00:03");
}

TEST(FastDevice, SendRecyclesOnlyAfterRingWraps) {
  auto& dev = mc::Device::config(4, 1, 1);
  dev.disconnect();
  mb::Mempool pool(2048);
  mb::BufArray bufs(pool, 64);
  auto& q = dev.get_tx_queue(0);

  // First batch: buffers leave the pool and are NOT immediately recycled —
  // the asynchronous-send contract of Section 4.2.
  bufs.alloc(60);
  q.send(bufs);
  EXPECT_EQ(bufs.size(), 0u);  // ownership transferred
  EXPECT_EQ(pool.available(), 2048u - 64u);

  // After the ring wraps (1024 descriptors), old buffers come back.
  for (int batch = 0; batch < 40; ++batch) {
    const std::size_t n = bufs.alloc(60);
    ASSERT_GT(n, 0u) << "pool prematurely exhausted at batch " << batch;
    q.send(bufs);
  }
  // Pool never runs dry because recycling keeps pace.
  EXPECT_GT(pool.available(), 0u);
  EXPECT_EQ(q.sent_packets(), 41u * 64u);
}

TEST(FastDevice, LoopbackDeliversPacketContents) {
  auto& tx_dev = mc::Device::config(5, 1, 1);
  auto& rx_dev = mc::Device::config(6, 1, 1);
  tx_dev.connect_to(rx_dev);

  mb::Mempool pool(256, [](mb::PktBuf& buf) {
    buf.set_length(124);
    mp::UdpPacketView view{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = 124;
    opts.udp_dst = 4242;
    view.fill(opts);
  });
  mb::BufArray txb(pool, 32);
  txb.alloc(124);
  tx_dev.get_tx_queue(0).send(txb);

  mb::BufArray rxb(64);
  const auto n = rx_dev.get_rx_queue(0).recv(rxb);
  ASSERT_EQ(n, 32u);
  for (auto* buf : rxb) {
    mp::UdpPacketView view{buf->bytes()};
    EXPECT_EQ(view.udp().dst_port(), 4242);
    EXPECT_EQ(buf->length(), 124u);
  }
  rxb.free_all();
  tx_dev.disconnect();
}

TEST(FastDevice, LoopbackDropsWhenRxRingFull) {
  auto& tx_dev = mc::Device::config(7, 1, 1);
  auto& rx_dev = mc::Device::config(8, 1, 1);
  tx_dev.connect_to(rx_dev);
  mb::Mempool pool(16384);
  mb::BufArray bufs(pool, 64);
  // Push far more than the RX ring (4096) without draining.
  for (int i = 0; i < 128; ++i) {
    if (bufs.alloc(60) == 0) break;
    tx_dev.get_tx_queue(0).send(bufs);
  }
  EXPECT_GT(rx_dev.get_rx_queue(0).ring_drops(), 0u);
  tx_dev.disconnect();
}

TEST(FastDevice, RatePacingRoughlyLimitsThroughput) {
  auto& dev = mc::Device::config(9, 1, 1);
  dev.disconnect();
  mb::Mempool pool(2048);
  mb::BufArray bufs(pool, 64);
  auto& q = dev.get_tx_queue(0);
  q.set_rate_mbit(672.0);  // 1 Mpps of 64 B frames wire rate

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  while (sent < 100'000) {
    bufs.alloc(60);
    sent += q.send(bufs);
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const double mpps = static_cast<double>(sent) / secs / 1e6;
  EXPECT_NEAR(mpps, 1.0, 0.15);
}

// ---------------------------------------------------------------------------
// Task system
// ---------------------------------------------------------------------------

TEST(Tasks, LaunchAndWaitRunsAllTasks) {
  mc::reset_run_state();
  std::atomic<int> ran{0};
  mc::TaskSet tasks;
  for (int i = 0; i < 4; ++i) tasks.launch("slave", [&ran](int x) { ran += x; }, 1);
  tasks.wait();
  EXPECT_EQ(ran.load(), 4);
}

TEST(Tasks, StopAfterTerminatesRunLoop) {
  mc::reset_run_state();
  ASSERT_TRUE(mc::running());
  std::atomic<std::uint64_t> iterations{0};
  mc::TaskSet tasks;
  tasks.launch("loop", [&] {
    while (mc::running()) iterations.fetch_add(1, std::memory_order_relaxed);
  });
  mc::stop_after(0.05);
  tasks.wait();
  EXPECT_GT(iterations.load(), 0u);
  EXPECT_FALSE(mc::running());
  mc::reset_run_state();
}

TEST(Tasks, StopAfterFromPreviousRunDoesNotFire) {
  // Regression: a stop_after armed in one experiment must not terminate the
  // next one. The detached timer thread captures the run generation and
  // becomes a no-op once reset_run_state() starts a new run.
  mc::reset_run_state();
  mc::stop_after(0.05);
  mc::reset_run_state();  // new experiment begins before the timer fires
  ASSERT_TRUE(mc::running());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(mc::running());  // stale timer fired into the void
  mc::stop_after(0.0);         // a fresh timer still works
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(mc::running());
  mc::reset_run_state();
}

TEST(Tasks, ResetRunStateAdvancesGeneration) {
  const auto g0 = mc::run_generation();
  mc::reset_run_state();
  EXPECT_GT(mc::run_generation(), g0);
}

TEST(Tasks, PipePassesMessagesBetweenTasks) {
  mc::reset_run_state();
  mc::Pipe<int> pipe(16);
  mc::TaskSet tasks;
  std::atomic<int> sum{0};
  tasks.launch("producer", [&] {
    for (int i = 1; i <= 100; ++i) pipe.push(i);
  });
  tasks.launch("consumer", [&] {
    int received = 0;
    while (received < 100) {
      if (auto v = pipe.pop()) {
        sum += *v;
        ++received;
      }
    }
  });
  tasks.wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(Tasks, PipeTryPopOnEmpty) {
  mc::Pipe<int> pipe(4);
  EXPECT_FALSE(pipe.try_pop().has_value());
  pipe.push(7);
  auto v = pipe.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

// ---------------------------------------------------------------------------
// Field modifier engine and RNGs (Section 5.6.2)
// ---------------------------------------------------------------------------

TEST(FieldModifier, CounterWrapsAtRange) {
  mc::ModifierProgram prog({{.field = {0, 1}, .kind = mc::FieldAction::Kind::kCounter,
                             .value = 10, .range = 3}});
  std::uint8_t pkt[4] = {};
  std::vector<int> seen;
  for (int i = 0; i < 7; ++i) {
    prog.apply(pkt);
    seen.push_back(pkt[0]);
  }
  EXPECT_EQ(seen, (std::vector<int>{10, 11, 12, 10, 11, 12, 10}));
}

TEST(FieldModifier, RandomStaysInRange) {
  mc::ModifierProgram prog({{.field = {0, 4}, .kind = mc::FieldAction::Kind::kRandom,
                             .value = 100, .range = 50}});
  std::uint8_t pkt[8] = {};
  for (int i = 0; i < 1000; ++i) {
    prog.apply(pkt);
    const std::uint32_t v = static_cast<std::uint32_t>(pkt[0]) << 24 |
                            static_cast<std::uint32_t>(pkt[1]) << 16 |
                            static_cast<std::uint32_t>(pkt[2]) << 8 | pkt[3];
    EXPECT_GE(v, 100u);
    EXPECT_LT(v, 150u);
  }
}

TEST(FieldModifier, WritesBigEndian) {
  mc::ModifierProgram prog({{.field = {0, 2}, .kind = mc::FieldAction::Kind::kConstant,
                             .value = 0x1234}});
  std::uint8_t pkt[2] = {};
  prog.apply(pkt);
  EXPECT_EQ(pkt[0], 0x12);
  EXPECT_EQ(pkt[1], 0x34);
}

TEST(FieldModifier, TauswortheLooksUniform) {
  mc::Tausworthe rng(42);
  // Chi-squared-ish sanity check over 16 buckets.
  int buckets[16] = {};
  const int n = 160'000;
  for (int i = 0; i < n; ++i) buckets[rng.next() >> 28]++;
  for (int b : buckets) EXPECT_NEAR(b, n / 16, n / 16 / 5);
}

TEST(FieldModifier, TauswortheSequencesDifferBySeed) {
  mc::Tausworthe a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(FieldModifier, LcgMatchesKnownRecurrence) {
  mc::Lcg lcg(1);
  EXPECT_EQ(lcg.next(), 1u * 1664525u + 1013904223u);
}

// ---------------------------------------------------------------------------
// TxQueue robustness: link-down backoff and short-batch surfacing
// ---------------------------------------------------------------------------

TEST(FastDevice, SendDropsBatchWhenLinkStaysDown) {
  auto& dev = mc::Device::config(10, 1, 1);
  dev.disconnect();
  dev.set_link_up(false);
  mb::Mempool pool(128);
  mb::BufArray bufs(pool, 32);
  auto& q = dev.get_tx_queue(0);
  q.set_link_retry_limit(2);  // ~3 us of backoff, then give up

  bufs.alloc(60);
  EXPECT_EQ(q.send(bufs), 0u);
  // The batch was shed, not wedged and not leaked: buffers are back in the
  // pool and the drop is visible.
  EXPECT_EQ(q.dropped(), 32u);
  EXPECT_EQ(q.sent_packets(), 0u);
  EXPECT_EQ(bufs.size(), 0u);
  EXPECT_EQ(pool.available(), 128u);
  dev.set_link_up(true);
}

TEST(FastDevice, SendRecoversWhenLinkReturnsDuringBackoff) {
  auto& dev = mc::Device::config(11, 1, 1);
  dev.disconnect();
  dev.set_link_up(false);
  mb::Mempool pool(128);
  mb::BufArray bufs(pool, 32);
  auto& q = dev.get_tx_queue(0);
  q.set_link_retry_limit(20);  // generous budget: the flap ends first

  std::thread flap_end([&dev] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    dev.set_link_up(true);
  });
  bufs.alloc(60);
  EXPECT_EQ(q.send(bufs), 32u);
  flap_end.join();
  // The outage was survived by waiting, and counted as a recovery.
  EXPECT_EQ(q.link_waits(), 1u);
  EXPECT_EQ(q.dropped(), 0u);
  EXPECT_EQ(q.sent_packets(), 32u);
}

TEST(FastDevice, ShortBatchesAreCountedAndExported) {
  auto& dev = mc::Device::config(12, 1, 1);
  dev.disconnect();
  mb::Mempool pool(8);
  mb::BufArray bufs(pool, 16);  // batch larger than the pool
  auto& q = dev.get_tx_queue(0);
  moongen::telemetry::MetricRegistry registry;
  q.bind_telemetry(registry, "txq");

  ASSERT_EQ(bufs.alloc(60), 8u);
  EXPECT_EQ(q.send(bufs), 8u);
  EXPECT_EQ(q.short_batches(), 1u);
  EXPECT_EQ(registry.counter_value("txq.short_batches"), 1u);
  EXPECT_EQ(registry.counter_value("txq.sent_packets"), 8u);
  EXPECT_EQ(registry.counter_value("recover.txq.link_wait"), 0u);
}
