// Unit tests for running statistics, histograms and throughput counters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "stats/counters.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"

namespace st = moongen::stats;

// ---------------------------------------------------------------------------
// RunningStats
// ---------------------------------------------------------------------------

TEST(RunningStats, MeanAndStddevMatchClosedForm) {
  st::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev of this classic dataset: sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  st::RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, EmptyIsSafe) {
  st::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  st::RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e12 + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), 1e12, 1.0);
  EXPECT_NEAR(s.stddev(), 1.0005, 0.01);
}

TEST(RunningStatsMerge, MatchesSequentialAccumulation) {
  // Chan et al. parallel combine: merging per-shard accumulators must be
  // indistinguishable from add()ing every sample into one.
  st::RunningStats a;
  st::RunningStats b;
  st::RunningStats all;
  for (int i = 0; i < 2000; ++i) {
    const double x = std::sin(i * 0.1) * 100.0 + (i % 7);
    (i < 800 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsMerge, EitherSideMayBeEmpty) {
  st::RunningStats filled;
  filled.add(2.0);
  filled.add(4.0);

  st::RunningStats empty_dst;
  empty_dst.merge(filled);
  EXPECT_EQ(empty_dst.count(), 2u);
  EXPECT_DOUBLE_EQ(empty_dst.mean(), 3.0);
  EXPECT_DOUBLE_EQ(empty_dst.min(), 2.0);
  EXPECT_DOUBLE_EQ(empty_dst.max(), 4.0);

  st::RunningStats empty_src;
  filled.merge(empty_src);
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_DOUBLE_EQ(filled.mean(), 3.0);

  st::RunningStats both_a;
  st::RunningStats both_b;
  both_a.merge(both_b);
  EXPECT_EQ(both_a.count(), 0u);
  EXPECT_DOUBLE_EQ(both_a.mean(), 0.0);
}

TEST(RunningStatsMerge, MergeOfManyShardsIsOrderInsensitive) {
  std::vector<st::RunningStats> shards(4);
  st::RunningStats all;
  for (int i = 0; i < 4000; ++i) {
    const double x = (i * 37 % 101) - 50.0;
    shards[static_cast<std::size_t>(i % 4)].add(x);
    all.add(x);
  }
  st::RunningStats fwd;
  for (const auto& s : shards) fwd.merge(s);
  st::RunningStats rev;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) rev.merge(*it);
  EXPECT_EQ(fwd.count(), all.count());
  EXPECT_NEAR(fwd.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(fwd.stddev(), all.stddev(), 1e-9);
  EXPECT_NEAR(rev.mean(), fwd.mean(), 1e-9);
  EXPECT_NEAR(rev.stddev(), fwd.stddev(), 1e-9);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, BinningAndTotal) {
  st::Histogram h(64, 1024);
  h.add(0);
  h.add(63);   // same bin as 0
  h.add(64);   // next bin
  h.add(2000); // overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, PercentileAndMedian) {
  st::Histogram h(1, 1000);
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.median(), 50u);
  EXPECT_EQ(h.percentile(25), 25u);
  EXPECT_EQ(h.percentile(75), 75u);
  EXPECT_EQ(h.percentile(0), 1u);
  EXPECT_EQ(h.percentile(100), 100u);
}

TEST(Histogram, FractionBetweenIsBinResolved) {
  st::Histogram h(64, 4096);
  for (int i = 0; i < 50; ++i) h.add(128);  // bin [128,192)
  for (int i = 0; i < 50; ++i) h.add(512);  // bin [512,576)
  EXPECT_DOUBLE_EQ(h.fraction_between(128, 191), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_between(0, 4095), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_at(150), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_at(1024), 0.0);
}

TEST(Histogram, FractionBetweenIncludesOverflow) {
  // Overflow counts live in the bucket past the last bin; a range whose
  // upper end reaches past the last bin must cover them (regression: they
  // were silently dropped, undercounting the fraction).
  st::Histogram h(64, 1024);  // bins cover [0, 1088)
  for (int i = 0; i < 25; ++i) h.add(100);
  for (int i = 0; i < 75; ++i) h.add(5'000);  // overflow
  EXPECT_DOUBLE_EQ(h.fraction_at(5'000), 0.75);  // the model behaviour
  EXPECT_DOUBLE_EQ(h.fraction_between(0, 5'000), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_between(2'000, 10'000), 0.75);  // fully in overflow
  EXPECT_DOUBLE_EQ(h.fraction_between(0, 1'000), 0.25);  // overflow not covered
}

TEST(Histogram, MergeAccumulates) {
  st::Histogram a(10, 100);
  st::Histogram b(10, 100);
  a.add(5);
  b.add(5);
  b.add(95);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bin(0), 2u);
}

TEST(Histogram, MergeRejectsDifferentBinWidth) {
  st::Histogram a(10, 100);
  st::Histogram b(20, 100);
  b.add(5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_EQ(a.total(), 0u);  // a is untouched on failure
}

TEST(Histogram, MergeRejectsDifferentBinCount) {
  st::Histogram a(10, 100);
  st::Histogram b(10, 200);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, RejectsZeroBinWidth) {
  EXPECT_THROW(st::Histogram(0, 100), std::invalid_argument);
}

TEST(Histogram, PrintSkipsEmptyBins) {
  st::Histogram h(64, 1024);
  h.add(100);
  std::ostringstream os;
  h.print(os);
  EXPECT_NE(os.str().find("64"), std::string::npos);
  EXPECT_EQ(os.str().find("128 "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Counters (driven by a fake time source)
// ---------------------------------------------------------------------------

namespace {

struct FakeTime {
  std::uint64_t now = 0;
  st::TimeSource source() {
    return [this] { return now; };
  }
};

}  // namespace

TEST(Counters, ManualTxCounterAggregatesIntervals) {
  FakeTime t;
  std::ostringstream os;
  st::ManualTxCounter ctr("tx", st::Format::kPlain, t.source(), &os);
  // 1.0 Mpps for 3 seconds: 100k packets every 100 ms.
  for (int step = 0; step < 30; ++step) {
    ctr.update_with_size(100'000, 60);
    t.now += 100'000'000;  // 100 ms
  }
  ctr.finalize();
  EXPECT_EQ(ctr.total_packets(), 3'000'000u);
  EXPECT_EQ(ctr.total_bytes(), 3'000'000u * 60);
  EXPECT_NEAR(ctr.mpps_stats().mean(), 1.0, 0.01);
  // Wire rate: (60 + 24) bytes * 8 * 1 Mpps = 672 Mbit/s.
  EXPECT_NEAR(ctr.mbit_stats().mean(), 672.0, 1.0);
  EXPECT_NE(os.str().find("TOTAL"), std::string::npos);
}

TEST(Counters, PktRxCounterCountsIndividualPackets) {
  FakeTime t;
  st::PktRxCounter ctr("rx", st::Format::kCsv, t.source(), nullptr);
  for (int i = 0; i < 100; ++i) {
    t.now += 1'000'000;
    ctr.count_packet(124);
  }
  ctr.finalize();
  EXPECT_EQ(ctr.total_packets(), 100u);
  EXPECT_EQ(ctr.total_bytes(), 12'400u);
}

TEST(Counters, CsvFormatEmitsCommaSeparated) {
  FakeTime t;
  std::ostringstream os;
  st::ManualTxCounter ctr("flow42", st::Format::kCsv, t.source(), &os);
  t.now += 2'000'000'000;
  ctr.update_with_size(1000, 60);
  ctr.finalize();
  EXPECT_NE(os.str().find("flow42,"), std::string::npos);
}

TEST(Counters, FinalizeIsIdempotent) {
  FakeTime t;
  std::ostringstream os;
  st::ManualTxCounter ctr("x", st::Format::kPlain, t.source(), &os);
  t.now += 1'500'000'000;
  ctr.update_with_size(10, 60);
  ctr.finalize();
  const auto once = os.str();
  ctr.finalize();
  EXPECT_EQ(os.str(), once);
}

TEST(Counters, SingleRecordSpanningManyIntervalsClosesThemAll) {
  FakeTime t;
  st::ManualTxCounter ctr("gap", st::Format::kPlain, t.source(), nullptr);
  t.now += 500'000'000;
  ctr.update_with_size(1'000'000, 60);  // lands in the first second
  // Nothing happens for 4.5 s, then one more update: the quiet seconds must
  // be sliced into (empty) intervals, not folded into one long interval.
  t.now += 4'500'000'000ull;
  ctr.update_with_size(1'000'000, 60);
  t.now += 1'000'000'000;  // let finalize close the last interval
  ctr.finalize();
  EXPECT_EQ(ctr.total_packets(), 2'000'000u);
  // Intervals: [0,1) at 1 Mpps, four empty seconds, [5,6) at 1 Mpps.
  EXPECT_NEAR(ctr.mpps_stats().mean(), (1.0 + 0.0 + 0.0 + 0.0 + 0.0 + 1.0) / 6.0, 0.01);
}

TEST(Counters, UpdateExactlyOnIntervalBoundary) {
  FakeTime t;
  st::ManualTxCounter ctr("edge", st::Format::kPlain, t.source(), nullptr);
  t.now += 1'000'000'000;  // exactly one interval later
  ctr.update_with_size(2'000'000, 60);
  // The boundary-exact update must close the (empty) first interval and
  // attribute the packets to the second one.
  t.now += 1'000'000'000;
  ctr.update_with_size(0, 0);
  ctr.finalize();
  EXPECT_EQ(ctr.total_packets(), 2'000'000u);
  EXPECT_NEAR(ctr.mpps_stats().mean(), 1.0, 0.01);  // (0 + 2) / 2 Mpps
}

TEST(Counters, BackwardsJumpingTimeSourceDoesNotUnderflow) {
  FakeTime t;
  t.now = 5'000'000'000ull;
  st::ManualTxCounter ctr("rewind", st::Format::kPlain, t.source(), nullptr);
  t.now = 6'000'000'000ull;
  ctr.update_with_size(1'000'000, 60);
  // A reset virtual clock jumps behind the interval start. Without the
  // clamp this underflows to ~2^64 ns of "elapsed" time and spins closing
  // billions of intervals.
  t.now = 0;
  ctr.update_with_size(500'000, 60);
  t.now = 7'000'000'000ull;
  ctr.update_with_size(500'000, 60);
  ctr.finalize();
  EXPECT_EQ(ctr.total_packets(), 2'000'000u);
  EXPECT_EQ(ctr.total_bytes(), 2'000'000u * 60);
}

TEST(Counters, StddevReflectsRateVariation) {
  FakeTime t;
  st::ManualTxCounter ctr("var", st::Format::kPlain, t.source(), nullptr);
  // Alternate 1 Mpps and 2 Mpps seconds.
  for (int s = 0; s < 10; ++s) {
    t.now += 1'000'000'000;
    ctr.update_with_size(s % 2 == 0 ? 1'000'000 : 2'000'000, 60);
  }
  ctr.finalize();
  EXPECT_GT(ctr.mpps_stats().stddev(), 0.4);
}
