// Tests for the NIC port model: TX serialization, DMA timing, hardware
// rate control, PTP timestamping, CRC hardware drop, RX rings.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rate_control.hpp"
#include "nic/chip.hpp"
#include "nic/port.hpp"
#include "nic/throughput_model.hpp"
#include "sim_testbed.hpp"

namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mc = moongen::core;
using moongen::test::CaptureSink;

namespace {

mn::Frame udp_frame(std::size_t size = 60) {
  mc::UdpTemplateOptions opts;
  opts.frame_size = size;
  return mc::make_udp_frame(opts);
}

mn::Frame ptp_udp_frame(std::size_t size = 96, std::uint8_t type = 0) {
  mc::UdpTemplateOptions opts;
  opts.frame_size = size;
  opts.ptp_payload = true;
  opts.ptp_message_type = type;
  return mc::make_udp_frame(opts);
}

}  // namespace

// ---------------------------------------------------------------------------
// TX path and serialization
// ---------------------------------------------------------------------------

TEST(NicTx, BackToBackFramesAreLineRate) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 1);
  CaptureSink sink;
  port.set_tx_sink(&sink);

  for (int i = 0; i < 100; ++i) port.tx_queue(0).post(udp_frame());
  events.run();

  ASSERT_EQ(sink.frames.size(), 100u);
  // 64 B frame = 84 wire bytes = 67.2 ns at 10 GbE, start to start.
  for (std::size_t i = 1; i < sink.frames.size(); ++i) {
    EXPECT_EQ(sink.frames[i].second - sink.frames[i - 1].second, 67'200u);
  }
  EXPECT_EQ(port.stats().tx_packets, 100u);
  EXPECT_EQ(port.stats().tx_bytes, 100u * 84);
}

TEST(NicTx, TransmissionsAlignToMacClockGrid) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_82599(), 10'000, 2);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  port.tx_queue(0).post(udp_frame());
  events.run();
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(sink.frames[0].second % port.spec().mac_cycle_ps, 0u);
}

TEST(NicTx, DmaFetchDelaysFirstFrame) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 3);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  port.tx_queue(0).post(udp_frame());
  events.run();
  ASSERT_EQ(sink.frames.size(), 1u);
  // First frame leaves no earlier than the DMA fetch latency and no later
  // than latency + jitter (+ one MAC cycle of alignment).
  EXPECT_GE(sink.frames[0].second, port.dma_timing().latency_ps);
  EXPECT_LE(sink.frames[0].second,
            port.dma_timing().latency_ps + port.dma_timing().jitter_ps + 6'400);
}

TEST(NicTx, RingCapacityIsEnforced) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 4);
  auto& q = port.tx_queue(0);
  std::size_t accepted = 0;
  while (q.post(udp_frame())) ++accepted;
  EXPECT_EQ(accepted, 1024u);  // default descriptor ring size
  EXPECT_EQ(q.ring_free(), 0u);
}

TEST(NicTx, RefillSaturatesLineRate) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 5);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  port.tx_queue(0).set_refill([] { return udp_frame(); });
  events.run_until(ms::kPsPerMs);  // 1 ms
  // Line rate at 10 GbE, 64 B frames: 14.88 Mpps -> 14880 frames per ms.
  EXPECT_NEAR(static_cast<double>(sink.frames.size()), 14'880.0, 20.0);
}

TEST(NicTx, RoundRobinAcrossTwoQueues) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 6);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  // Two queues with distinct frame sizes so we can tell them apart.
  port.tx_queue(0).set_refill([] { return udp_frame(60); });
  port.tx_queue(1).set_refill([] { return udp_frame(124); });
  events.run_until(100 * ms::kPsPerUs);
  std::size_t small = 0, large = 0;
  for (const auto& [frame, t] : sink.frames) {
    (frame.frame_size() == 64 ? small : large) += 1;
  }
  ASSERT_GT(small, 100u);
  ASSERT_GT(large, 100u);
  // Round-robin: equal packet counts within a few frames.
  EXPECT_NEAR(static_cast<double>(small), static_cast<double>(large), 4.0);
}

// ---------------------------------------------------------------------------
// Hardware rate control (Section 7)
// ---------------------------------------------------------------------------

TEST(NicRateControl, AverageRateMatchesConfigured) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 7);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  auto& q = port.tx_queue(0);
  q.set_rate_mpps(1.0, 64);
  q.set_refill([] { return udp_frame(); });
  events.run_until(10 * ms::kPsPerMs);  // 10 ms
  // 1 Mpps for 10 ms = 10000 frames (within noise/startup).
  EXPECT_NEAR(static_cast<double>(sink.frames.size()), 10'000.0, 50.0);
}

TEST(NicRateControl, PacingNoiseIsBounded) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 8);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  auto& q = port.tx_queue(0);
  q.set_rate_mpps(0.5, 64);  // 2 us target gap
  q.set_refill([] { return udp_frame(); });
  events.run_until(20 * ms::kPsPerMs);
  ASSERT_GT(sink.frames.size(), 5'000u);
  // At 10 GbE the internal pacing tick is 6.4 ns; total noise is at most
  // +-4 ticks plus one MAC cycle of alignment.
  const ms::SimTime target = 2 * ms::kPsPerUs;
  for (std::size_t i = 1; i < sink.frames.size(); ++i) {
    const auto gap = static_cast<std::int64_t>(sink.frames[i].second - sink.frames[i - 1].second);
    EXPECT_NEAR(static_cast<double>(gap), static_cast<double>(target), 4 * 6'400.0 + 6'400.0);
  }
}

TEST(NicRateControl, GbePacingTickIsTenTimesCoarser) {
  // Section 7.3: the internal rate-control clock scales with link speed.
  ms::EventQueue events;
  mn::Port p10(events, mn::intel_x540(), 10'000, 9);
  mn::Port p1(events, mn::intel_x540(), 1'000, 10);
  // Indirect check through the chip spec arithmetic.
  EXPECT_EQ(p10.spec().rate_tick_at_max_speed_ps, 6'400u);
  // Verified behaviourally: GbE gaps oscillate by up to ~4*64 ns.
  CaptureSink sink;
  p1.set_tx_sink(&sink);
  auto& q = p1.tx_queue(0);
  q.set_rate_mpps(0.1, 64);
  q.set_refill([] { return udp_frame(); });
  events.run_until(50 * ms::kPsPerMs);
  ASSERT_GT(sink.frames.size(), 1'000u);
  bool saw_offgrid_64 = false;
  for (std::size_t i = 1; i < sink.frames.size(); ++i) {
    const auto gap = static_cast<std::int64_t>(sink.frames[i].second - sink.frames[i - 1].second);
    const auto dev = std::llabs(gap - 10'000'000);
    EXPECT_LE(dev, 4 * 64'000 + 16'000);
    if (dev > 2 * 6'400) saw_offgrid_64 = true;
  }
  EXPECT_TRUE(saw_offgrid_64);  // noise really is on the coarse GbE grid
}

TEST(NicRateControl, UnreliableAboveNineMpps) {
  // Section 7.5: configured rates above ~9 Mpps behave non-linearly.
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 11);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  auto& q = port.tx_queue(0);
  q.set_rate_mpps(12.0, 64);
  q.set_refill([] { return udp_frame(); });
  events.run_until(10 * ms::kPsPerMs);
  const double achieved_mpps = static_cast<double>(sink.frames.size()) / 10'000.0;
  EXPECT_LT(achieved_mpps, 11.0);  // cannot reach the configured rate
  EXPECT_GT(achieved_mpps, 6.0);   // but is not stalled either
}

// ---------------------------------------------------------------------------
// PTP timestamping (Section 6)
// ---------------------------------------------------------------------------

TEST(NicPtp, TxStampLatchedForPtpEthernet) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_82599(), 10'000, 12);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  port.tx_queue(0).post(mc::make_ptp_ethernet_frame(60));
  events.run();
  EXPECT_TRUE(port.read_tx_timestamp().has_value());
  EXPECT_FALSE(port.read_tx_timestamp().has_value());  // read-to-clear
}

TEST(NicPtp, RegisterHoldsOnlyFirstStamp) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_82599(), 10'000, 13);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  port.tx_queue(0).post(mc::make_ptp_ethernet_frame(60));
  port.tx_queue(0).post(mc::make_ptp_ethernet_frame(60));
  events.run();
  const auto first = port.read_tx_timestamp();
  ASSERT_TRUE(first.has_value());
  // The second packet was NOT stamped: the register was occupied
  // (single-packet-in-flight limitation, Section 6.4).
  EXPECT_FALSE(port.read_tx_timestamp().has_value());
}

TEST(NicPtp, NonPtpFramesAreNotStamped) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_82599(), 10'000, 14);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  port.tx_queue(0).post(udp_frame());
  events.run();
  EXPECT_FALSE(port.read_tx_timestamp().has_value());
}

TEST(NicPtp, MessageTypeOutsideMaskIgnored) {
  // MoonGen's background packets set a PTP type outside the filter mask so
  // they are not timestamped but look identical to the DuT (Section 6.4).
  ms::EventQueue events;
  mn::Port port(events, mn::intel_82599(), 10'000, 15);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  port.tx_queue(0).post(ptp_udp_frame(96, /*type=*/5));
  events.run();
  EXPECT_FALSE(port.read_tx_timestamp().has_value());
}

TEST(NicPtp, WrongVersionIgnored) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_82599(), 10'000, 16);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  auto frame = mc::make_ptp_ethernet_frame(60);
  // Corrupt the version nibble.
  auto bytes = *frame.data;
  bytes[15] = 0x01;
  port.tx_queue(0).post(mn::make_frame(std::move(bytes)));
  events.run();
  EXPECT_FALSE(port.read_tx_timestamp().has_value());
}

TEST(NicPtp, UndersizedUdpPtpRefused) {
  // Section 6.4: UDP PTP packets below 80 B are not timestamped; Ethernet
  // PTP has no such limit.
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 17);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  port.tx_queue(0).post(ptp_udp_frame(72));  // 76 B frame < 80
  events.run();
  EXPECT_FALSE(port.read_tx_timestamp().has_value());

  port.tx_queue(0).post(ptp_udp_frame(96));  // 100 B frame >= 80
  events.run();
  EXPECT_TRUE(port.read_tx_timestamp().has_value());
}

TEST(NicPtp, RxStampAndCallback) {
  moongen::test::TenGbeFiberBed bed;
  std::uint64_t latched = 0;
  bed.b.set_rx_stamp_callback([&](std::uint64_t v) { latched = v; });
  bed.a.tx_queue(0).post(mc::make_ptp_ethernet_frame(60));
  bed.events.run();
  const auto rx = bed.b.read_rx_timestamp();
  ASSERT_TRUE(rx.has_value());
  EXPECT_EQ(*rx, latched);
  EXPECT_EQ(bed.b.stats().rx_packets, 1u);
}

TEST(NicPtp, RxTimestampAllOn82580) {
  ms::EventQueue events;
  mn::Port tx(events, mn::intel_x540(), 1'000, 18);
  mn::Port rx(events, mn::intel_82580(), 1'000, 19);
  moongen::wire::Link link(tx, rx, moongen::wire::cat5e_gbe(2.0), 20);
  for (int i = 0; i < 5; ++i) tx.tx_queue(0).post(udp_frame());
  events.run();
  const auto entries = rx.rx_queue(0).drain();
  ASSERT_EQ(entries.size(), 5u);
  std::uint64_t prev = 0;
  for (const auto& e : entries) {
    EXPECT_GT(e.hw_timestamp, 0u);  // every packet stamped
    EXPECT_GE(e.hw_timestamp, prev);
    prev = e.hw_timestamp;
  }
}

// ---------------------------------------------------------------------------
// Hardware CRC drop (Section 8.1)
// ---------------------------------------------------------------------------

TEST(NicRx, InvalidCrcDroppedBeforeQueues) {
  moongen::test::TenGbeFiberBed bed;
  bed.a.tx_queue(0).post(udp_frame());
  bed.a.tx_queue(0).post(mn::make_gap_frame(200));
  bed.a.tx_queue(0).post(udp_frame());
  bed.events.run();
  EXPECT_EQ(bed.b.stats().rx_packets, 2u);
  EXPECT_EQ(bed.b.stats().crc_errors, 1u);
  EXPECT_EQ(bed.b.rx_queue(0).pending(), 2u);
}

TEST(NicRx, RuntFramesCountAsErrors) {
  moongen::test::TenGbeFiberBed bed;
  bed.a.tx_queue(0).post(mn::make_gap_frame(40));  // 40 wire bytes -> runt
  bed.events.run();
  EXPECT_EQ(bed.b.stats().rx_packets, 0u);
  EXPECT_EQ(bed.b.stats().crc_errors, 1u);
}

TEST(NicRx, RingOverflowDrops) {
  moongen::test::TenGbeFiberBed bed;
  bed.b.rx_queue(0).set_ring_capacity(16);
  for (int i = 0; i < 32; ++i) bed.a.tx_queue(0).post(udp_frame());
  bed.events.run();
  EXPECT_EQ(bed.b.rx_queue(0).pending(), 16u);
  EXPECT_EQ(bed.b.stats().rx_ring_drops, 16u);
}

TEST(NicRx, SteeringSelectsQueue) {
  moongen::test::TenGbeFiberBed bed;
  bed.b.set_rx_steering([](const mn::Frame& f) { return f.frame_size() > 100 ? 1 : 0; });
  bed.a.tx_queue(0).post(udp_frame(60));
  bed.a.tx_queue(0).post(udp_frame(124));
  bed.events.run();
  EXPECT_EQ(bed.b.rx_queue(0).pending(), 1u);
  EXPECT_EQ(bed.b.rx_queue(1).pending(), 1u);
}

// ---------------------------------------------------------------------------
// Throughput model (Figures 2-4 arithmetic)
// ---------------------------------------------------------------------------

TEST(ThroughputModel, LineRates) {
  EXPECT_NEAR(mn::line_rate_pps(10'000, 64), 14.88e6, 0.01e6);
  EXPECT_NEAR(mn::line_rate_pps(1'000, 64), 1.488e6, 0.001e6);
  EXPECT_NEAR(mn::line_rate_pps(40'000, 64), 59.52e6, 0.01e6);
}

TEST(ThroughputModel, CpuBoundBelowLineRate) {
  mn::ThroughputQuery q;
  q.cycles_per_packet = 200;
  q.cpu_hz = 1.2e9;
  q.cores = 1;
  const auto r = mn::predict_throughput(q);
  EXPECT_EQ(r.bottleneck, mn::Bottleneck::kCpu);
  EXPECT_NEAR(r.total_pps, 6e6, 1e3);
}

TEST(ThroughputModel, LineRateBoundWithManyCores) {
  mn::ThroughputQuery q;
  q.cycles_per_packet = 200;
  q.cpu_hz = 2.4e9;
  q.cores = 8;
  const auto r = mn::predict_throughput(q);
  EXPECT_EQ(r.bottleneck, mn::Bottleneck::kLineRate);
  EXPECT_NEAR(r.total_pps, 14.88e6, 0.01e6);
}

TEST(ThroughputModel, Xl710SmallPacketCap) {
  // Section 5.4: <=128 B frames cannot reach line rate on the XL710, and
  // more than two cores do not help.
  const auto chip = mn::intel_xl710();
  mn::ThroughputQuery q;
  q.chip = &chip;
  q.link_mbit = 40'000;
  q.frame_size = 64;
  q.cycles_per_packet = 160;
  q.cpu_hz = 2.4e9;
  q.cores = 3;
  const auto r = mn::predict_throughput(q);
  EXPECT_EQ(r.bottleneck, mn::Bottleneck::kNicHardware);
  EXPECT_LT(r.total_pps, mn::line_rate_pps(40'000, 64));

  q.frame_size = 256;
  const auto r2 = mn::predict_throughput(q);
  EXPECT_EQ(r2.bottleneck, mn::Bottleneck::kLineRate);
}

TEST(ThroughputModel, Xl710DualPortCaps) {
  const auto chip = mn::intel_xl710();
  mn::ThroughputQuery q;
  q.chip = &chip;
  q.link_mbit = 40'000;
  q.ports = 2;
  q.frame_size = 1518;
  q.cycles_per_packet = 160;
  q.cpu_hz = 2.4e9;
  q.cores = 6;
  const auto r = mn::predict_throughput(q);
  // Dual-port large packets: capped at ~50 Gbit/s, not 2x40 (Section 5.4).
  EXPECT_NEAR(r.total_wire_mbit, 50'000, 100);
}

// ---------------------------------------------------------------------------
// Batched TX fast path (see DESIGN.md, "Event-engine fast path")
// ---------------------------------------------------------------------------

namespace {

// Runs the CRC-paced generator (valid frames + invalid gap frames on an
// uncontrolled queue — the batched fast path) and captures the wire stream.
std::vector<std::pair<mn::Frame, ms::SimTime>> run_crc_stream(std::size_t batch_frames) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 99);
  port.set_tx_batch_frames(batch_frames);
  CaptureSink sink;
  port.set_tx_sink(&sink);
  auto gen = mc::SimLoadGen::crc_paced(port.tx_queue(0), udp_frame(),
                                       std::make_unique<mc::CbrPattern>(5.0), 10'000);
  events.run_until(2 * ms::kPsPerMs);
  return std::move(sink.frames);
}

}  // namespace

TEST(PortBatching, WireTimestampsMatchUnbatched) {
  const auto unbatched = run_crc_stream(1);   // one event per frame
  const auto batched = run_crc_stream(16);    // default fast path
  ASSERT_GT(unbatched.size(), 10'000u);
  // The batched run may have notified up to one batch of still-serializing
  // frames at the cutoff; everything both runs observed must be identical.
  ASSERT_LE(batched.size() - unbatched.size(), 16u);
  ASSERT_GE(batched.size(), unbatched.size());
  for (std::size_t i = 0; i < unbatched.size(); ++i) {
    ASSERT_EQ(unbatched[i].second, batched[i].second) << "tx_start diverges at frame " << i;
    ASSERT_EQ(unbatched[i].first.seq, batched[i].first.seq) << "frame order diverges at " << i;
    ASSERT_EQ(unbatched[i].first.fcs_valid, batched[i].first.fcs_valid);
    ASSERT_EQ(unbatched[i].first.wire_bytes(), batched[i].first.wire_bytes());
  }
}

TEST(PortBatching, BatchingCutsEventsPerFrame) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 7);
  port.tx_queue(0).set_refill([] { return udp_frame(); });
  events.run_until(ms::kPsPerMs);
  const double events_per_frame =
      static_cast<double>(events.executed()) / static_cast<double>(port.stats().tx_packets);
  // One completion event per 16-frame batch (plus the lone first frame).
  EXPECT_LT(events_per_frame, 0.2);
  EXPECT_GT(port.stats().tx_packets, 14'000u);
}

TEST(PortBatching, DisabledBatchingKeepsPerFrameEvents) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 7);
  port.set_tx_batch_frames(1);
  port.tx_queue(0).set_refill([] { return udp_frame(); });
  events.run_until(ms::kPsPerMs);
  EXPECT_GE(events.executed(), port.stats().tx_packets);
}
