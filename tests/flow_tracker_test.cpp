// Tests for sequence stamping and loss/reorder/duplication accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/device.hpp"
#include "core/flow_tracker.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "proto/checksum.hpp"
#include "proto/packet_view.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mp = moongen::proto;

namespace {

constexpr std::size_t kOffset = mp::UdpPacketView::kHeaderStack;  // after UDP header

std::vector<std::uint8_t> stamped_packet(mc::SequenceStamper& stamper) {
  std::vector<std::uint8_t> pkt(64, 0);
  stamper.stamp(pkt.data());
  return pkt;
}

}  // namespace

TEST(SequenceStamper, WritesMarkerAndIncrements) {
  mc::SequenceStamper stamper(/*flow_id=*/7, /*payload_offset=*/0);
  auto p0 = stamped_packet(stamper);
  auto p1 = stamped_packet(stamper);
  mc::SequenceMarker m0, m1;
  std::memcpy(&m0, p0.data(), sizeof(m0));
  std::memcpy(&m1, p1.data(), sizeof(m1));
  EXPECT_EQ(mp::ntoh32(m0.magic_be), mc::SequenceMarker::kMagic);
  EXPECT_EQ(mp::ntoh32(m0.flow_id_be), 7u);
  EXPECT_EQ(mp::ntoh64(m0.sequence_be), 0u);
  EXPECT_EQ(mp::ntoh64(m1.sequence_be), 1u);
  EXPECT_EQ(stamper.stamped(), 2u);
}

TEST(SequenceTracker, PerfectStreamHasNoAnomalies) {
  mc::SequenceTracker tracker;
  for (std::uint64_t s = 0; s < 10'000; ++s) tracker.feed_sequence(s);
  const auto r = tracker.report();
  EXPECT_EQ(r.received, 10'000u);
  EXPECT_EQ(r.unique, 10'000u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.reordered, 0u);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.highest_seq, 9'999u);
}

TEST(SequenceTracker, CountsLossGaps) {
  mc::SequenceTracker tracker;
  for (std::uint64_t s = 0; s < 1'000; ++s) {
    if (s % 10 == 3) continue;  // drop every 10th
    tracker.feed_sequence(s);
  }
  const auto r = tracker.report();
  EXPECT_EQ(r.lost, 100u);
  EXPECT_EQ(r.unique, 900u);
}

TEST(SequenceTracker, DetectsReorderingWithoutFalseLoss) {
  mc::SequenceTracker tracker;
  // Swap every adjacent pair: 1,0,3,2,...
  for (std::uint64_t s = 0; s < 1'000; s += 2) {
    tracker.feed_sequence(s + 1);
    tracker.feed_sequence(s);
  }
  const auto r = tracker.report();
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.reordered, 500u);
  EXPECT_EQ(r.duplicates, 0u);
}

TEST(SequenceTracker, DetectsDuplicates) {
  mc::SequenceTracker tracker;
  for (std::uint64_t s = 0; s < 100; ++s) {
    tracker.feed_sequence(s);
    if (s % 4 == 0) tracker.feed_sequence(s);  // duplicate every 4th
  }
  const auto r = tracker.report();
  EXPECT_EQ(r.duplicates, 25u);
  EXPECT_EQ(r.unique, 100u);
  EXPECT_EQ(r.lost, 0u);
}

TEST(SequenceTracker, RandomPermutationWithinWindowIsLossFree) {
  std::mt19937_64 rng(99);
  std::vector<std::uint64_t> seqs(2'000);
  for (std::uint64_t s = 0; s < seqs.size(); ++s) seqs[s] = s;
  // Shuffle within blocks much smaller than the window.
  for (std::size_t start = 0; start < seqs.size(); start += 100) {
    std::shuffle(seqs.begin() + static_cast<std::ptrdiff_t>(start),
                 seqs.begin() + static_cast<std::ptrdiff_t>(start + 100), rng);
  }
  mc::SequenceTracker tracker;
  for (auto s : seqs) tracker.feed_sequence(s);
  const auto r = tracker.report();
  EXPECT_EQ(r.unique, 2'000u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_GT(r.reordered, 0u);
}

TEST(SequenceTracker, HugeJumpDoesNotAliasOldEpochs) {
  mc::SequenceTracker tracker(64);  // small window: 4096 sequence bits
  tracker.feed_sequence(0);
  tracker.feed_sequence(1'000'000);  // jump far beyond the window
  // Sequence 1'000'000 - 4096 aliases bitmap position of an old epoch;
  // it must be classified stale, not duplicate.
  tracker.feed_sequence(999'999 - 4096);
  const auto r = tracker.report();
  EXPECT_EQ(r.duplicates, 0u);
  EXPECT_EQ(r.stale, 1u);
}

TEST(SequenceTracker, FeedParsesMarkerFromPacketBytes) {
  mc::SequenceStamper stamper(1, kOffset);
  mc::SequenceTracker tracker;
  std::vector<std::uint8_t> pkt(64, 0);
  for (int i = 0; i < 5; ++i) {
    stamper.stamp(pkt.data());
    EXPECT_TRUE(tracker.feed(pkt.data(), pkt.size(), kOffset));
  }
  EXPECT_EQ(tracker.report().unique, 5u);
  // Unmarked packet is rejected.
  std::vector<std::uint8_t> plain(64, 0);
  EXPECT_FALSE(tracker.feed(plain.data(), plain.size(), kOffset));
  // Truncated packet is rejected.
  EXPECT_FALSE(tracker.feed(pkt.data(), kOffset + 4, kOffset));
}

TEST(SequenceTracker, EndToEndOverLoopbackDevices) {
  auto& tx = mc::Device::config(36, 1, 1);
  auto& rx = mc::Device::config(37, 1, 1);
  tx.connect_to(rx);
  mb::Mempool pool(512, [](mb::PktBuf& buf) {
    buf.set_length(124);
    mp::UdpPacketView view{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = 124;
    view.fill(opts);
  });
  mc::SequenceStamper stamper(3, kOffset);
  mc::SequenceTracker tracker;
  mb::BufArray bufs(pool, 32);
  for (int batch = 0; batch < 4; ++batch) {
    bufs.alloc(124);
    for (auto* buf : bufs) stamper.stamp(buf->data());
    tx.get_tx_queue(0).send(bufs);
  }
  mb::BufArray rxb(256);
  rx.get_rx_queue(0).recv(rxb);
  for (auto* buf : rxb) tracker.feed(buf->data(), buf->length(), kOffset);
  rxb.free_all();
  const auto r = tracker.report();
  EXPECT_EQ(r.unique, 128u);
  EXPECT_EQ(r.lost, 0u);
  tx.disconnect();
}

// ---------------------------------------------------------------------------
// IPsec views (paper Section 3.4: IPsec example traffic)
// ---------------------------------------------------------------------------

TEST(IpsecView, EspFillRoundTrip) {
  std::vector<std::uint8_t> frame(96, 0);
  mp::EspPacketView view{{frame.data(), frame.size()}};
  view.fill(96, mp::MacAddress::from_uint64(1), mp::MacAddress::from_uint64(2),
            mp::IPv4Address{10, 0, 0, 1}, mp::IPv4Address{10, 0, 0, 2}, /*spi=*/0xdeadbeef,
            /*sequence=*/42);
  EXPECT_EQ(view.ip().ip_protocol(), mp::IpProtocol::kEsp);
  EXPECT_TRUE(mp::verify_ipv4_checksum(view.ip()));
  EXPECT_EQ(view.esp().spi(), 0xdeadbeefu);
  EXPECT_EQ(mp::ntoh32(view.esp().sequence_be), 42u);
  const auto pc = mp::classify({frame.data(), frame.size()});
  ASSERT_TRUE(pc.has_value());
  EXPECT_EQ(pc->l4_protocol, mp::IpProtocol::kEsp);
  EXPECT_FALSE(pc->is_udp);
}
