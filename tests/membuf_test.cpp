// Unit tests for the mempool / packet-buffer / batch-array layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "membuf/ring.hpp"
#include "proto/checksum.hpp"
#include "proto/packet_view.hpp"

namespace mb = moongen::membuf;
namespace mp = moongen::proto;

TEST(Mempool, AllocAndFreeSingle) {
  mb::Mempool pool(16);
  EXPECT_EQ(pool.capacity(), 16u);
  EXPECT_EQ(pool.available(), 16u);
  mb::PktBuf* buf = pool.alloc(60);
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->length(), 60u);
  EXPECT_EQ(buf->pool(), &pool);
  EXPECT_EQ(pool.available(), 15u);
  pool.free(buf);
  EXPECT_EQ(pool.available(), 16u);
}

TEST(Mempool, ExhaustionReturnsNull) {
  mb::Mempool pool(4);
  std::vector<mb::PktBuf*> bufs;
  for (int i = 0; i < 4; ++i) {
    mb::PktBuf* b = pool.alloc(60);
    ASSERT_NE(b, nullptr);
    bufs.push_back(b);
  }
  EXPECT_EQ(pool.alloc(60), nullptr);
  pool.free_batch(bufs);
  EXPECT_NE(pool.alloc(60), nullptr);
}

TEST(Mempool, BatchAllocPartialOnExhaustion) {
  mb::Mempool pool(10);
  std::vector<mb::PktBuf*> out(16, nullptr);
  const std::size_t n = pool.alloc_batch({out.data(), out.size()}, 124);
  EXPECT_EQ(n, 10u);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NE(out[i], nullptr);
    EXPECT_EQ(out[i]->length(), 124u);
  }
  EXPECT_EQ(out[10], nullptr);
}

TEST(Mempool, PreFillCallbackRunsOncePerBuffer) {
  int calls = 0;
  mb::Mempool pool(8, [&](mb::PktBuf& buf) {
    ++calls;
    buf.data()[0] = 0x42;
  });
  EXPECT_EQ(calls, 8);
  mb::PktBuf* buf = pool.alloc(60);
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->data()[0], 0x42);
  // Recycling does not re-run the init function and keeps contents (DPDK
  // semantics, paper Section 4.2).
  buf->data()[0] = 0x99;
  pool.free(buf);
  mb::PktBuf* again = pool.alloc(60);
  EXPECT_EQ(calls, 8);
  EXPECT_EQ(again->data()[0], 0x99);
}

TEST(Mempool, RecycleResetsFlagsButNotContents) {
  mb::Mempool pool(2);
  mb::PktBuf* buf = pool.alloc(60);
  buf->flags().udp_checksum = true;
  buf->flags().invalid_crc = true;
  pool.free(buf);
  mb::PktBuf* again = pool.alloc(60);
  EXPECT_FALSE(again->flags().udp_checksum);
  EXPECT_FALSE(again->flags().invalid_crc);
}

TEST(Mempool, LowWatermarkTracksWorstCase) {
  mb::Mempool pool(8);
  std::vector<mb::PktBuf*> bufs(6, nullptr);
  pool.alloc_batch({bufs.data(), bufs.size()}, 60);
  EXPECT_EQ(pool.low_watermark(), 2u);
  pool.free_batch(bufs);
  EXPECT_EQ(pool.low_watermark(), 2u);  // watermark is sticky
}

TEST(Mempool, AllBuffersDistinct) {
  mb::Mempool pool(64);
  std::vector<mb::PktBuf*> bufs(64, nullptr);
  pool.alloc_batch({bufs.data(), bufs.size()}, 60);
  std::set<mb::PktBuf*> unique(bufs.begin(), bufs.end());
  EXPECT_EQ(unique.size(), 64u);
}

TEST(BufArray, AllocFillsFullBatch) {
  mb::Mempool pool(256);
  mb::BufArray bufs(pool, 64);
  EXPECT_EQ(bufs.alloc(60), 64u);
  EXPECT_EQ(bufs.size(), 64u);
  for (auto* buf : bufs) EXPECT_EQ(buf->length(), 60u);
  bufs.free_all();
  EXPECT_EQ(bufs.size(), 0u);
  EXPECT_EQ(pool.available(), 256u);
}

TEST(BufArray, FreeAllHandlesMixedPools) {
  mb::Mempool pool_a(8);
  mb::Mempool pool_b(8);
  mb::BufArray bufs(4);  // RX-style, no owning pool
  bufs.storage()[0] = pool_a.alloc(60);
  bufs.storage()[1] = pool_b.alloc(60);
  bufs.storage()[2] = pool_a.alloc(60);
  bufs.storage()[3] = nullptr;
  bufs.set_size(4);
  bufs.free_all();
  EXPECT_EQ(pool_a.available(), 8u);
  EXPECT_EQ(pool_b.available(), 8u);
}

namespace {

/// Builds a pool whose buffers are pre-filled UDP packets, as in Listing 2.
mb::Mempool make_udp_pool(std::size_t n) {
  return mb::Mempool(n, [](mb::PktBuf& buf) {
    buf.set_length(124);
    mp::UdpPacketView view{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = 124;
    opts.udp_src = 1234;
    opts.udp_dst = 42;
    view.fill(opts);
  });
}

}  // namespace

TEST(BufArray, OffloadUdpChecksumsWritesPseudoHeaderSum) {
  auto pool = make_udp_pool(8);
  mb::BufArray bufs(pool, 4);
  bufs.alloc(124);
  bufs.offload_udp_checksums();
  for (auto* buf : bufs) {
    EXPECT_TRUE(buf->flags().udp_checksum);
    EXPECT_TRUE(buf->flags().ip_checksum);
    // Emulated NIC contract: finishing the checksum over the L4 segment
    // starting from the stored pseudo-header sum must yield the same value
    // as the full software checksum.
    mp::UdpPacketView view{buf->bytes()};
    auto l4 = view.l4_bytes();
    const std::uint16_t stored_be = view.udp().checksum_be;
    view.udp().checksum_be = 0;
    const std::uint16_t software = mp::udp_checksum_ipv4(view.ip(), l4);
    // NIC model: continue the sum over payload with checksum field = stored.
    std::uint32_t sum = static_cast<std::uint32_t>(mp::ntoh16(stored_be));
    view.udp().checksum_be = 0;
    sum = mp::checksum_partial(l4, sum);
    EXPECT_EQ(mp::checksum_finish(sum), software);
  }
}

TEST(BufArray, OffloadTcpSetsFlags) {
  mb::Mempool pool(8, [](mb::PktBuf& buf) {
    buf.set_length(60);
    mp::TcpPacketView view{buf.bytes()};
    view.fill(mp::TcpFillOptions{});
  });
  mb::BufArray bufs(pool, 8);
  bufs.alloc(60);
  bufs.offload_tcp_checksums();
  for (auto* buf : bufs) EXPECT_TRUE(buf->flags().tcp_checksum);
}

TEST(BufArray, IndexingAndSpans) {
  mb::Mempool pool(8);
  mb::BufArray bufs(pool, 8);
  bufs.alloc(60);
  EXPECT_EQ(bufs.packets().size(), 8u);
  EXPECT_EQ(bufs[0], bufs.packets()[0]);
  bufs.free_all();
}

// ---------------------------------------------------------------------------
// BoundedRing capacity changes
// ---------------------------------------------------------------------------

TEST(BoundedRing, ShrinkBelowFillDropsNewest) {
  mb::BoundedRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ring.push_back(i);
  // An RX ring reprogrammed smaller keeps the oldest descriptors: the
  // elements already handed to hardware stay, the newest are dropped.
  ring.set_capacity(4);
  EXPECT_EQ(ring.capacity(), 4u);
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_TRUE(ring.full());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring.pop_front(), i);
  EXPECT_TRUE(ring.empty());
}

TEST(BoundedRing, ShrinkAboveFillKeepsEverything) {
  mb::BoundedRing<int> ring(16);
  for (int i = 0; i < 3; ++i) ring.push_back(i);
  ring.set_capacity(8);
  EXPECT_EQ(ring.size(), 3u);
  // Growing back restores headroom without disturbing contents.
  ring.set_capacity(16);
  for (int i = 3; i < 16; ++i) ring.push_back(i);
  EXPECT_TRUE(ring.full());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ring.pop_front(), i);
}

TEST(BoundedRing, ShrinkAfterWrapDropsNewest) {
  mb::BoundedRing<int> ring(8);
  // Wrap the head/tail indices around the slot array first.
  for (int i = 0; i < 6; ++i) ring.push_back(i);
  for (int i = 0; i < 6; ++i) ring.pop_front();
  for (int i = 100; i < 108; ++i) ring.push_back(i);
  ring.set_capacity(3);
  ASSERT_EQ(ring.size(), 3u);
  for (int i = 100; i < 103; ++i) EXPECT_EQ(ring.pop_front(), i);
}

TEST(BoundedRing, ShrinkWhileExactlyFullKeepsOldestAndStaysUsable) {
  // The edge between the shrink paths: size() == old capacity == fill.
  mb::BoundedRing<int> ring(8);
  for (int i = 0; i < 8; ++i) ring.push_back(i);
  ASSERT_TRUE(ring.full());
  ring.set_capacity(5);
  EXPECT_TRUE(ring.full());
  ASSERT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.front(), 0);
  // The ring must keep working after the truncation: drain two, refill two,
  // and FIFO order holds across the seam.
  EXPECT_EQ(ring.pop_front(), 0);
  EXPECT_EQ(ring.pop_front(), 1);
  ring.push_back(50);
  ring.push_back(51);
  EXPECT_TRUE(ring.full());
  const int expect[] = {2, 3, 4, 50, 51};
  for (int v : expect) EXPECT_EQ(ring.pop_front(), v);
  EXPECT_TRUE(ring.empty());

  // Degenerate shrink: capacity 0 empties the ring; growing revives it.
  ring.push_back(7);
  ring.set_capacity(0);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.full());  // 0 >= 0: a zero-capacity ring is always full
  ring.set_capacity(2);
  ring.push_back(9);
  EXPECT_EQ(ring.pop_front(), 9);
}

TEST(BoundedRing, PropertyRandomizedGrowShrinkMatchesDequeModel) {
  // Property test: under a random interleaving of push/pop/clear/reserve
  // and capacity cycling, the ring agrees with a std::deque model where
  // set_capacity(c) truncates to the first min(size, c) elements (oldest
  // kept, newest dropped). Runs long enough for head_/tail_ to wrap the
  // backing store many times at several different slot counts.
  mb::BoundedRing<unsigned> ring(1);
  std::deque<unsigned> model;
  std::size_t cap = 1;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto rnd = [&state] {
    // splitmix64: deterministic, no <random> heft.
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  unsigned next_value = 0;
  for (int op = 0; op < 30'000; ++op) {
    switch (rnd() % 10) {
      case 0: {  // cycle the capacity through [1, 24]
        cap = 1 + rnd() % 24;
        ring.set_capacity(cap);
        if (model.size() > cap) model.resize(cap);  // drop newest
        break;
      }
      case 1:
        ring.clear();
        model.clear();
        break;
      case 2:
        ring.reserve(rnd() % 32);  // storage hint only: no visible effect
        break;
      case 3:
      case 4:
        if (!model.empty()) {
          ASSERT_EQ(ring.front(), model.front());
          ASSERT_EQ(ring.pop_front(), model.front());
          model.pop_front();
        }
        break;
      default:  // bias toward pushes so the ring regularly rides full
        if (!ring.full()) {
          ring.push_back(next_value);
          model.push_back(next_value);
          ++next_value;
        } else if (!model.empty()) {
          ASSERT_EQ(ring.pop_front(), model.front());
          model.pop_front();
        }
        break;
    }
    ASSERT_EQ(ring.size(), model.size());
    ASSERT_EQ(ring.empty(), model.empty());
    ASSERT_EQ(ring.full(), model.size() >= cap);
    if (!model.empty()) ASSERT_EQ(ring.front(), model.front());
  }
  // Final drain: full remaining contents agree element-for-element.
  while (!model.empty()) {
    ASSERT_EQ(ring.pop_front(), model.front());
    model.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------------
// BufArray::alloc_full (retrying allocation)
// ---------------------------------------------------------------------------

TEST(BufArray, AllocTracksShortfall) {
  mb::Mempool pool(8);
  mb::BufArray bufs(pool, 16);
  EXPECT_EQ(bufs.alloc(60), 8u);  // pool smaller than the batch
  EXPECT_EQ(bufs.last_shortfall(), 8u);
  EXPECT_EQ(bufs.last_retries(), 0u);
  bufs.free_all();
  EXPECT_EQ(bufs.alloc(60, 4), 4u);
  EXPECT_EQ(bufs.last_shortfall(), 0u);
  bufs.free_all();
}

TEST(BufArray, AllocFullGivesUpAfterBoundedRetries) {
  mb::Mempool pool(8);
  mb::BufArray bufs(pool, 16);
  // The pool genuinely cannot satisfy 16: alloc_full must not spin forever.
  EXPECT_EQ(bufs.alloc_full(60, /*max_retries=*/3), 8u);
  EXPECT_EQ(bufs.last_shortfall(), 8u);
  EXPECT_EQ(bufs.last_retries(), 3u);
  bufs.free_all();
}

TEST(BufArray, AllocFullSucceedsWithoutRetriesWhenPoolIsHealthy) {
  mb::Mempool pool(64);
  mb::BufArray bufs(pool, 16);
  EXPECT_EQ(bufs.alloc_full(60), 16u);
  EXPECT_EQ(bufs.last_shortfall(), 0u);
  EXPECT_EQ(bufs.last_retries(), 0u);
  bufs.free_all();
}
