// Tests of the Testbed/Scenario API: declaration validation, shard
// partitioning, component lookup, telemetry naming, and the two satellite
// fixes that ride with it — the per-testbed DeviceTable (replacing the
// deprecated Device::config process registry) and the per-testbed RunState
// (replacing the process-global run flag).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/device.hpp"
#include "core/rate_control.hpp"
#include "core/task.hpp"
#include "nic/chip.hpp"
#include "telemetry/registry.hpp"
#include "testbed/scenario.hpp"

namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mt = moongen::telemetry;
namespace mtb = moongen::testbed;

namespace {

// The standard 4-device fig10 topology used throughout.
mtb::Scenario fig10_scenario(int shards) {
  mtb::Scenario s;
  s.seed(1)
      .shards(shards)
      .telemetry(true)
      .device(0, mn::intel_x540()).name("gen_tx")
      .device(1, mn::intel_x540()).name("dut_in")
      .device(2, mn::intel_x540()).name("dut_out")
      .device(3, mn::intel_x540()).name("sink")
      .link(0, 1)
      .link(2, 3)
      .forwarder(1, 2)
      .couple(0, 3);
  return s;
}

bool has_counter(const mt::Snapshot& snap, const std::string& name) {
  return std::any_of(snap.counters.begin(), snap.counters.end(),
                     [&](const auto& c) { return c.name == name; });
}

}  // namespace

// ---------------------------------------------------------------------------
// Scenario validation
// ---------------------------------------------------------------------------

TEST(Scenario, RejectsDuplicateDeviceId) {
  mtb::Scenario s;
  s.device(0, mn::intel_x540());
  EXPECT_THROW(s.device(0, mn::intel_x540()), std::invalid_argument);
}

TEST(Scenario, RejectsLinkToUndeclaredDevice) {
  mtb::Scenario s;
  s.device(0, mn::intel_x540()).link(0, 7);
  EXPECT_THROW((void)s.build(), std::invalid_argument);
}

TEST(Scenario, RejectsForwarderOnUndeclaredDevice) {
  mtb::Scenario s;
  s.device(0, mn::intel_x540()).forwarder(0, 5);
  EXPECT_THROW((void)s.build(), std::invalid_argument);
}

TEST(Scenario, RejectsModifierWithoutCursor) {
  mtb::Scenario s;
  EXPECT_THROW(s.name("x"), std::logic_error);
  EXPECT_THROW(s.with_seed(7), std::logic_error);
  EXPECT_THROW(s.cable(moongen::wire::cat5e_10gbaset(2.0)), std::logic_error);
}

TEST(Scenario, RejectsDeviceModifierOnLinkCursor) {
  mtb::Scenario s;
  s.device(0, mn::intel_x540()).device(1, mn::intel_x540()).link(0, 1);
  EXPECT_THROW(s.rx_store(false), std::logic_error);  // link is current
}

TEST(Scenario, RejectsConflictingPinsInOneGroup) {
  mtb::Scenario s;
  s.shards(2)
      .device(0, mn::intel_x540()).pin_shard(0)
      .device(1, mn::intel_x540()).pin_shard(1)
      .couple(0, 1);
  EXPECT_THROW((void)s.build(), std::invalid_argument);
}

TEST(Scenario, RejectsPinBeyondEffectiveShards) {
  mtb::Scenario s;
  s.shards(4)
      .device(0, mn::intel_x540()).pin_shard(3)  // only 2 groups -> 2 shards
      .device(1, mn::intel_x540())
      .device(2, mn::intel_x540())
      .couple(1, 2);
  EXPECT_THROW((void)s.build(), std::invalid_argument);
}

TEST(Scenario, RejectsMalformedFaultSpec) {
  mtb::Scenario s;
  EXPECT_THROW(s.faults("loss@wire.l1:p=not_a_number"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Shard partitioning
// ---------------------------------------------------------------------------

TEST(Scenario, SingleShardByDefault) {
  auto tb = fig10_scenario(1).build();
  EXPECT_EQ(tb->shard_count(), 1u);
  EXPECT_EQ(tb->cross_shard_frames(), 0u);
  // engine() is unambiguous on one shard.
  EXPECT_NO_THROW((void)tb->engine());
}

TEST(Scenario, ShardCountCappedAtGroupCount) {
  // fig10 has two coupling groups: {0,3} and {1,2}. Asking for 8 shards
  // must yield 2, not 8 idle engines.
  auto tb = fig10_scenario(8).build();
  EXPECT_EQ(tb->shard_count(), 2u);
}

TEST(Scenario, FullyCoupledScenarioIsSequential) {
  mtb::Scenario s = fig10_scenario(4);
  s.couple(0, 1);  // merges both groups -> one shard regardless of shards(4)
  auto tb = s.build();
  EXPECT_EQ(tb->shard_count(), 1u);
}

TEST(Scenario, CoupledDevicesShareAShard) {
  auto tb = fig10_scenario(2).build();
  EXPECT_EQ(tb->shard_of(0), tb->shard_of(3));  // couple(0, 3)
  EXPECT_EQ(tb->shard_of(1), tb->shard_of(2));  // forwarder(1, 2)
  EXPECT_NE(tb->shard_of(0), tb->shard_of(1));
}

TEST(Scenario, PinShardIsHonored) {
  mtb::Scenario s;
  s.shards(2)
      .device(0, mn::intel_x540()).pin_shard(1)
      .device(1, mn::intel_x540()).pin_shard(0)
      .device(2, mn::intel_x540())
      .device(3, mn::intel_x540())
      .link(0, 1)
      .couple(0, 2)
      .couple(1, 3);
  auto tb = s.build();
  EXPECT_EQ(tb->shard_of(0), 1u);
  EXPECT_EQ(tb->shard_of(2), 1u);
  EXPECT_EQ(tb->shard_of(1), 0u);
  EXPECT_EQ(tb->shard_of(3), 0u);
}

TEST(Testbed, MultiShardEngineLookupNeedsDeviceId) {
  auto tb = fig10_scenario(2).build();
  EXPECT_THROW((void)tb->engine(), std::logic_error);
  EXPECT_NO_THROW((void)tb->engine(0));
  // Devices in one group resolve to the same engine object.
  EXPECT_EQ(&tb->engine(1), &tb->engine(2));
  EXPECT_NE(&tb->engine(0), &tb->engine(1));
}

// ---------------------------------------------------------------------------
// Component lookup
// ---------------------------------------------------------------------------

TEST(Testbed, LookupByNameAndId) {
  auto tb = fig10_scenario(1).build();
  EXPECT_EQ(&tb->port("gen_tx"), &tb->port(0));
  EXPECT_EQ(&tb->port("sink"), &tb->port(3));
  EXPECT_THROW((void)tb->port("nonexistent"), std::out_of_range);
  EXPECT_THROW((void)tb->port(42), std::out_of_range);
  EXPECT_NO_THROW((void)tb->link(0, 1));
  EXPECT_THROW((void)tb->link(3, 0), std::out_of_range);
  EXPECT_EQ(tb->forwarder_count(), 1u);
  EXPECT_THROW((void)tb->forwarder(1), std::out_of_range);
}

TEST(Testbed, DuplexLinkCreatesBothDirections) {
  mtb::Scenario s;
  s.device(0, mn::intel_x540()).device(1, mn::intel_x540()).link(0, 1).duplex().couple(0, 1);
  auto tb = s.build();
  EXPECT_NO_THROW((void)tb->link(0, 1));
  EXPECT_NO_THROW((void)tb->link(1, 0));
  EXPECT_NE(&tb->link(0, 1), &tb->link(1, 0));
}

TEST(Testbed, RunForAdvancesVirtualTime) {
  auto tb = fig10_scenario(1).build();
  tb->run_for(0.001);  // 1 ms
  EXPECT_EQ(tb->now(), static_cast<ms::SimTime>(1e9));  // ps
}

// ---------------------------------------------------------------------------
// Telemetry naming
// ---------------------------------------------------------------------------

TEST(Testbed, SequentialTelemetryKeepsLegacyEnginePrefix) {
  auto tb = fig10_scenario(1).build();
  tb->run_for(0.0001);
  tb->publish_engine_telemetry();
  const auto snap = tb->registry().snapshot();
  EXPECT_TRUE(has_counter(snap, "engine.events_executed"));
  EXPECT_FALSE(has_counter(snap, "engine.shard0.events_executed"));
  EXPECT_TRUE(has_counter(snap, "port.gen_tx.tx_packets"));
}

TEST(Testbed, ShardedTelemetryUsesPerShardPrefixes) {
  auto tb = fig10_scenario(2).build();
  tb->run_for(0.0001);
  tb->publish_engine_telemetry();
  const auto snap = tb->registry().snapshot();
  EXPECT_TRUE(has_counter(snap, "engine.shard0.events_executed"));
  EXPECT_TRUE(has_counter(snap, "engine.shard1.events_executed"));
  EXPECT_FALSE(has_counter(snap, "engine.events_executed"));
}

TEST(Testbed, ExternalRegistryIsUsedWhenProvided) {
  mt::MetricRegistry external;
  mtb::Scenario s = fig10_scenario(1);
  s.telemetry(external);
  auto tb = s.build();
  EXPECT_EQ(&tb->registry(), &external);
  tb->publish_engine_telemetry();
  EXPECT_GT(external.metric_count(), 0u);
}

// ---------------------------------------------------------------------------
// Fault plane integration
// ---------------------------------------------------------------------------

TEST(Testbed, FaultSitesLandOnTheOwningShardsPlane) {
  mtb::Scenario s = fig10_scenario(2);
  s.faults("loss@wire.l1:p=1");  // drop everything on link 0->1
  auto tb = s.build();
  EXPECT_TRUE(tb->has_faults());
  // One plane per shard; the wire.l1 site lives on gen_tx's shard.
  EXPECT_NE(tb->fault_plane(0), nullptr);
  EXPECT_NE(tb->fault_plane(1), nullptr);
  mc::UdpTemplateOptions opts;
  opts.frame_size = 96;
  for (int i = 0; i < 50; ++i) tb->port("gen_tx").tx_queue(0).post(mc::make_udp_frame(opts));
  tb->run_for(0.001);
  EXPECT_GT(tb->fault_fires_at("wire.l1"), 0u);
  EXPECT_EQ(tb->fault_fires(), tb->fault_fires_at("wire.l1"));
}

TEST(Testbed, NoFaultsMeansNoPlanes) {
  auto tb = fig10_scenario(1).build();
  EXPECT_FALSE(tb->has_faults());
  EXPECT_EQ(tb->fault_plane(0), nullptr);
  EXPECT_EQ(tb->fault_fires(), 0u);
}

// ---------------------------------------------------------------------------
// Satellite: per-testbed DeviceTable vs the deprecated global registry
// ---------------------------------------------------------------------------

TEST(DeviceTable, TablesAreIsolated) {
  mc::DeviceTable a;
  mc::DeviceTable b;
  mc::Device& da = a.config(5, 1, 1);
  mc::Device& db = b.config(5, 1, 1);
  EXPECT_NE(&da, &db);  // same id, different tables, different devices
  da.set_link_up(false);
  EXPECT_FALSE(da.link_up());
  EXPECT_TRUE(db.link_up());  // state does not leak across tables
  da.set_link_up(true);
}

TEST(DeviceTable, FindDoesNotCreate) {
  mc::DeviceTable t;
  EXPECT_EQ(t.find(3), nullptr);
  mc::Device& d = t.config(3, 1, 1);
  EXPECT_EQ(t.find(3), &d);
}

TEST(DeviceTable, DeprecatedStaticConfigDelegatesToProcessDefault) {
  mc::Device& via_static = mc::Device::config(6, 1, 1);
  mc::Device& via_table = mc::DeviceTable::process_default().config(6, 1, 1);
  EXPECT_EQ(&via_static, &via_table);
}

TEST(DeviceTable, ScenarioFastDevicesLiveInThePrivateTable) {
  auto tb = mtb::Scenario().fast_device(0, 1, 1).fast_device(1, 1, 1).fast_connect(0, 1).build();
  // The testbed's device 0 is NOT the process-global device 0.
  mc::Device& global0 = mc::Device::config(0, 1, 1);
  EXPECT_NE(&tb->fast_device(0), &global0);
  EXPECT_EQ(tb->fast_devices().find(0), &tb->fast_device(0));
  EXPECT_THROW((void)tb->fast_device(9), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Satellite: per-testbed RunState
// ---------------------------------------------------------------------------

TEST(RunState, InstancesAreIsolated) {
  mc::RunState a;
  mc::RunState b;
  EXPECT_TRUE(a.running());
  EXPECT_TRUE(b.running());
  a.request_stop();
  EXPECT_FALSE(a.running());
  EXPECT_TRUE(b.running());  // stopping one experiment leaves the other alone
  a.reset();
  EXPECT_TRUE(a.running());
}

TEST(RunState, StopAfterStops) {
  mc::RunState run;
  run.stop_after(0.02);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (run.running() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(run.running());
}

TEST(RunState, ResetInvalidatesPendingStopAfter) {
  mc::RunState run;
  const std::uint64_t gen = run.generation();
  run.stop_after(0.1);
  run.reset();  // bumps generation before the timer fires
  EXPECT_GT(run.generation(), gen);
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_TRUE(run.running());  // the stale timer was a no-op
}

TEST(RunState, TestbedOwnsItsRunState) {
  auto tb1 = mtb::Scenario().fast_device(0, 1, 1).build();
  auto tb2 = mtb::Scenario().fast_device(0, 1, 1).build();
  tb1->run_state().request_stop();
  EXPECT_FALSE(tb1->run_state().running());
  EXPECT_TRUE(tb2->run_state().running());
  EXPECT_TRUE(mc::running());  // the process-global flag is untouched too
}
