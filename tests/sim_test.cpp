// Unit tests for the discrete-event engine, PTP clock models and the
// clock-synchronization algorithm (paper Sections 6.1-6.3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <set>
#include <vector>

#include "sim/clock_sync.hpp"
#include "sim/event_queue.hpp"
#include "sim/ptp_clock.hpp"
#include "sim/time.hpp"
#include "telemetry/registry.hpp"

namespace ms = moongen::sim;

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

TEST(EventQueue, ExecutesInTimeOrder) {
  ms::EventQueue q;
  std::vector<int> order;
  q.schedule_at(300, [&] { order.push_back(3); });
  q.schedule_at(100, [&] { order.push_back(1); });
  q.schedule_at(200, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 300u);
}

TEST(EventQueue, FifoAmongEqualTimes) {
  ms::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule_at(50, [&order, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  ms::EventQueue q;
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 5) q.schedule_in(10, tick);
  };
  q.schedule_at(0, tick);
  q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  ms::EventQueue q;
  q.run_until(12345);
  EXPECT_EQ(q.now(), 12345u);
}

TEST(EventQueue, RunUntilLeavesLaterEventsPending) {
  ms::EventQueue q;
  int fired = 0;
  q.schedule_at(100, [&] { ++fired; });
  q.schedule_at(200, [&] { ++fired; });
  q.run_until(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), 150u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StopAbortsRun) {
  ms::EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] {
    ++fired;
    q.stop();
  });
  q.schedule_at(20, [&] { ++fired; });
  q.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.stopped());
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  ms::EventQueue q;
  q.schedule_at(100, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(50, [] {}), std::logic_error);
}

TEST(EventQueue, RoutesNearTimersToWheelAndFarToHeap) {
  ms::EventQueue q;
  q.schedule_in(ms::EventQueue::kHorizonPs - 1, [] {});  // last wheel slot
  EXPECT_EQ(q.wheel_scheduled(), 1u);
  EXPECT_EQ(q.heap_scheduled(), 0u);
  q.schedule_in(ms::EventQueue::kHorizonPs, [] {});  // first heap time
  EXPECT_EQ(q.heap_scheduled(), 1u);
  q.schedule_in(0, [] {});  // cursor slot: wheel (sorted ready insert)
  EXPECT_EQ(q.wheel_scheduled(), 2u);
  q.run();
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, FifoAcrossWheelHeapBoundary) {
  // Two events at the SAME time T, scheduled from different distances: the
  // first lands in the overflow heap (T is beyond the horizon), the second
  // in the wheel (scheduled later, when T is near). FIFO order among equal
  // times must still be scheduling order: heap event first.
  ms::EventQueue q;
  const ms::SimTime t_target = ms::EventQueue::kHorizonPs + 100'000;
  std::vector<int> order;
  q.schedule_at(t_target, [&] { order.push_back(0) ; });  // heap (far)
  EXPECT_EQ(q.heap_scheduled(), 1u);
  q.schedule_at(200'000, [&, t_target] {
    q.schedule_at(t_target, [&] { order.push_back(1); });  // wheel (near now)
  });
  q.run();
  EXPECT_EQ(q.wheel_scheduled(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, HeapEventBetweenOccupiedWheelSlots) {
  // A heap timer that fires BEFORE the next occupied wheel slot: the engine
  // must run it without draining (and skipping past) that slot, because
  // events scheduled afterwards may still target earlier slots.
  ms::EventQueue q;
  std::vector<int> order;
  q.schedule_at(ms::EventQueue::kHorizonPs + 10, [&] {
    order.push_back(0);
    q.schedule_in(100, [&] { order.push_back(1); });  // earlier than the slot below
  });
  q.schedule_at(600'000, [&] {
    // One slot short of the full horizon: lands in the wheel, in a slot
    // that starts AFTER the heap event above fires.
    q.schedule_in(ms::EventQueue::kHorizonPs - ms::EventQueue::kSlotWidth,
                  [&] { order.push_back(2); });
  });
  q.run();
  EXPECT_EQ(q.wheel_scheduled(), 3u);
  EXPECT_EQ(q.heap_scheduled(), 1u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, WheelWrapsAroundManyHorizons) {
  // A self-rescheduling timer stepping by ~0.6 slots for > 3 wheel
  // revolutions: every slot index gets reused, cursor wrap must not lose or
  // reorder events.
  ms::EventQueue q;
  const ms::SimTime step = (ms::EventQueue::kSlotWidth * 3) / 5;
  const int n = static_cast<int>(3 * ms::EventQueue::kNumSlots * 5 / 3);
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < n) q.schedule_in(step, tick);
  };
  q.schedule_at(0, tick);
  q.run();
  EXPECT_EQ(fired, n);
  EXPECT_EQ(q.now(), static_cast<ms::SimTime>(n - 1) * step);
  EXPECT_EQ(q.executed(), static_cast<std::uint64_t>(n));
}

TEST(EventQueue, DeterminismPropertyAgainstReferenceOrder) {
  // Randomized schedule mixing wheel, heap, boundary and same-time events,
  // partly scheduled from inside running events. Execution order must equal
  // the specification: stable sort by time with scheduling order as the
  // tie-break — independently of which structure (wheel slot, ready buffer,
  // heap) each event traverses.
  std::mt19937_64 rng(0xE1E77);
  for (int trial = 0; trial < 20; ++trial) {
    ms::EventQueue q;
    struct Rec {
      ms::SimTime time;
      std::uint64_t seq;
    };
    std::vector<Rec> scheduled;  // in scheduling order
    std::vector<std::uint64_t> executed;
    std::uint64_t next_id = 0;

    auto random_time = [&](ms::SimTime from) -> ms::SimTime {
      switch (rng() % 4) {
        case 0:  // same-time clusters on a coarse grid
          return from + (rng() % 16) * ms::EventQueue::kSlotWidth;
        case 1:  // near future, inside the wheel
          return from + rng() % ms::EventQueue::kHorizonPs;
        case 2:  // around the horizon boundary
          return from + ms::EventQueue::kHorizonPs - 5 + rng() % 10;
        default:  // far future, overflow heap
          return from + ms::EventQueue::kHorizonPs * (1 + rng() % 3) + rng() % 1'000;
      }
    };

    std::function<void(ms::SimTime, int)> add = [&](ms::SimTime t, int children) {
      const std::uint64_t id = next_id++;
      scheduled.push_back({t, id});
      q.schedule_at(t, [&, t, id, children] {
        executed.push_back(id);
        for (int c = 0; c < children; ++c) add(random_time(t), 0);
      });
    };
    for (int i = 0; i < 400; ++i) add(random_time(0), static_cast<int>(rng() % 3));
    q.run();

    ASSERT_EQ(executed.size(), scheduled.size()) << "trial " << trial;
    std::stable_sort(scheduled.begin(), scheduled.end(), [](const Rec& a, const Rec& b) {
      return a.time != b.time ? a.time < b.time : a.seq < b.seq;
    });
    for (std::size_t i = 0; i < scheduled.size(); ++i) {
      ASSERT_EQ(executed[i], scheduled[i].seq) << "trial " << trial << " position " << i;
    }
  }
}

TEST(EventQueue, InlineSchedulingRejectsNothingThatFits) {
  // The hot-path static_assert gate: a 48-byte closure schedules inline.
  ms::EventQueue q;
  struct Big {
    std::uint64_t a[5];
    int* hit;
    void operator()() const { ++*hit; }
  };
  static_assert(ms::InlineFunction::fits_inline<Big>());
  int hits = 0;
  q.schedule_in_inline(10, Big{{1, 2, 3, 4, 5}, &hits});
  q.run();
  EXPECT_EQ(hits, 1);
}

TEST(EventQueue, PublishesEngineTelemetry) {
  moongen::telemetry::MetricRegistry registry;
  ms::EventQueue q;
  q.bind_telemetry(registry, "engine");
  q.schedule_in(100, [&] { q.schedule_in(ms::EventQueue::kHorizonPs * 2, [] {}); });
  q.run();
  q.publish_telemetry();
  const auto snap = registry.snapshot();
  std::uint64_t executed = 0, wheel = 0, heap = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "engine.events_executed") executed = c.value;
    if (c.name == "engine.wheel_scheduled") wheel = c.value;
    if (c.name == "engine.heap_scheduled") heap = c.value;
  }
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(wheel, 1u);
  EXPECT_EQ(heap, 1u);
  bool found_rate = false;
  for (const auto& g : snap.gauges) {
    if (g.name == "engine.events_per_wall_second") found_rate = g.value > 0.0;
  }
  EXPECT_TRUE(found_rate);
}

TEST(SimTime, ByteTimes) {
  EXPECT_EQ(ms::byte_time_ps(10'000), 800u);
  EXPECT_EQ(ms::byte_time_ps(1'000), 8'000u);
  // A 64 B frame + 20 B overhead at 10 GbE: 84 * 0.8 ns = 67.2 ns.
  EXPECT_EQ(84 * ms::byte_time_ps(10'000), 67'200u);
}

// ---------------------------------------------------------------------------
// PTP clocks
// ---------------------------------------------------------------------------

TEST(PtpClock, QuantizesToIncrement) {
  // X540: increments every 6.4 ns.
  ms::PtpClock clock({.increment_ps = 6'400}, /*seed=*/1);
  for (ms::SimTime t = 0; t < 1'000'000; t += 777) {
    EXPECT_EQ(clock.read(t) % 6'400, 0u) << "t=" << t;
  }
}

TEST(PtpClock, MonotonicNonDecreasing) {
  ms::PtpClock clock({.increment_ps = 12'800}, 2);
  std::uint64_t prev = 0;
  for (ms::SimTime t = 0; t < 10'000'000; t += 1'000) {
    const std::uint64_t v = clock.read(t);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(PtpClock, Intel82580ReadingForm) {
  // 82580: t = n * 64 ns + k * 8 ns, k constant per reset (Section 6.1).
  ms::PtpClock clock({.increment_ps = 64'000, .phase_step_ps = 8'000}, 3);
  const std::uint64_t k_off = clock.read(0) % 64'000;
  EXPECT_EQ(k_off % 8'000, 0u);
  for (ms::SimTime t = 0; t < 10'000'000; t += 4'321)
    EXPECT_EQ(clock.read(t) % 64'000, k_off);
}

TEST(PtpClock, ResetChangesPhaseConstant) {
  ms::PtpClock clock({.increment_ps = 64'000, .phase_step_ps = 8'000}, 3);
  std::set<std::uint64_t> offsets;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    clock.reset(seed);
    offsets.insert(clock.read(0) % 64'000);
  }
  EXPECT_GT(offsets.size(), 1u);  // k varies between resets
}

TEST(PtpClock, AdjustShiftsReadings) {
  ms::PtpClock clock({.increment_ps = 6'400}, 4);
  const std::uint64_t before = clock.read(1'000'000);
  clock.adjust(640'000);
  const std::uint64_t after = clock.read(1'000'000);
  EXPECT_EQ(after - before, 640'000u);
}

TEST(PtpClock, DriftAccumulates) {
  // 35 us/s drift (worst case in Section 6.3) = 35'000 ppb.
  ms::PtpClock fast({.increment_ps = 6'400, .drift_ppb = 35'000}, 5);
  ms::PtpClock nominal({.increment_ps = 6'400, .drift_ppb = 0}, 5);
  const ms::SimTime one_second = ms::kPsPerSec;
  const double drift = static_cast<double>(fast.read(one_second)) -
                       static_cast<double>(nominal.read(one_second));
  // Expect ~35 us accumulated difference after one second (+- quantization).
  EXPECT_NEAR(drift, 35e6, 20'000.0);  // 35 us in ps, tolerance 20 ns
}

// ---------------------------------------------------------------------------
// Clock synchronization (Section 6.2)
// ---------------------------------------------------------------------------

TEST(ClockSync, ConvergesWithinOneIncrement) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    ms::PtpClock a({.increment_ps = 6'400}, rng());
    ms::PtpClock b({.increment_ps = 6'400}, rng());
    b.adjust(static_cast<std::int64_t>(rng() % 1'000'000'000));  // up to 1 ms apart
    const auto result = ms::synchronize_clocks(a, b, /*start=*/0, rng);
    // Paper: error of +-1 cycle -> 6.4 ns per clock.
    EXPECT_LE(std::llabs(result.residual_ps), 2 * 6'400) << "trial " << trial;
  }
}

TEST(ClockSync, RobustAgainstOutliers) {
  std::mt19937_64 rng(7);
  ms::ClockSyncConfig cfg;
  cfg.outlier_probability = 0.2;  // much worse than the observed 5 %
  int failures = 0;
  for (int trial = 0; trial < 100; ++trial) {
    ms::PtpClock a({.increment_ps = 6'400}, rng());
    ms::PtpClock b({.increment_ps = 6'400}, rng());
    b.adjust(5'000'000);
    const auto result = ms::synchronize_clocks(a, b, 0, rng, cfg);
    if (std::llabs(result.residual_ps) > 2 * 6'400) ++failures;
  }
  // With 7 samples and median selection, failures must stay rare even at
  // 20 % outlier rate.
  EXPECT_LE(failures, 5);
}

TEST(ClockSync, MeasurementCancelsConstantAccessTime) {
  std::mt19937_64 rng(9);
  ms::ClockSyncConfig cfg;
  cfg.outlier_probability = 0.0;
  ms::PtpClock a({.increment_ps = 6'400}, 1);
  ms::PtpClock b({.increment_ps = 6'400}, 2);
  b.adjust(123'456'000);
  ms::SimTime cursor = 0;
  const std::int64_t measured = ms::measure_clock_difference(a, b, &cursor, rng, cfg);
  EXPECT_NEAR(static_cast<double>(measured), 123'456'000.0, 2 * 6'400.0);
  EXPECT_EQ(cursor, 4 * cfg.pcie_read_ps);
}

TEST(ClockSync, DriftMeasuredAsRelativeError) {
  // Section 6.3: resynchronizing before each timestamped packet turns a
  // 35 us/s drift into a 0.0035 % relative latency error.
  const double drift_rate = 35e-6;
  EXPECT_NEAR(drift_rate * 100.0, 0.0035, 1e-6);
}
