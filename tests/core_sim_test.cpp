// Tests for the simulation-side core: departure patterns, the CRC gap
// filler (Section 8), SimLoadGen wire behaviour, and the Timestamper
// (Section 6).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <sstream>
#include <string>

#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "sim_testbed.hpp"
#include "wire/recorder.hpp"

namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mw = moongen::wire;

// ---------------------------------------------------------------------------
// Departure patterns
// ---------------------------------------------------------------------------

TEST(Patterns, CbrGapsAreExact) {
  mc::CbrPattern cbr(0.5);  // 2 us
  std::uint64_t total = 0;
  for (int i = 0; i < 1000; ++i) total += cbr.next_gap_ps();
  EXPECT_EQ(total, 1000u * 2'000'000u);
}

TEST(Patterns, CbrHandlesNonIntegerGaps) {
  mc::CbrPattern cbr(0.3);  // 3333333.33.. ps
  std::uint64_t total = 0;
  for (int i = 0; i < 3000; ++i) total += cbr.next_gap_ps();
  EXPECT_NEAR(static_cast<double>(total), 3000.0 * 1e6 / 0.3, 2.0);
}

TEST(Patterns, CbrRoundingStaysCenteredOnTheSchedule) {
  // Regression for the truncate-vs-round audit: with round-with-carry the
  // cumulative departure time never strays more than half a picosecond
  // from the ideal schedule. Plain truncation lags by up to a full ps.
  const double ideal = 1e6 / 0.3;  // 3333333.33.. ps
  mc::CbrPattern cbr(0.3);
  double total = 0;
  for (int i = 1; i <= 10'000; ++i) {
    total += static_cast<double>(cbr.next_gap_ps());
    ASSERT_NEAR(total, ideal * i, 0.5 + 1e-6) << "at departure " << i;
  }
}

TEST(Patterns, CbrNeverReturnsNegativeOrOverflowedGaps) {
  mc::CbrPattern cbr(14.88);  // 67204.3 ps: fractional every step
  for (int i = 0; i < 10'000; ++i) {
    const auto gap = cbr.next_gap_ps();
    ASSERT_GE(gap, 67204u);
    ASSERT_LE(gap, 67205u);
  }
}

TEST(Patterns, BurstInterBurstGapIsRoundedNotTruncated) {
  // avg 0.6 Mpps, bursts of 4, 84 wire bytes at 10 GbE: the inter-burst
  // rest is 6465066.67 ps. Truncation would shorten every burst period.
  mc::BurstPattern burst(0.6, 4, 84, 10'000);
  std::uint64_t period = 0;
  for (int i = 0; i < 4; ++i) period += burst.next_gap_ps();
  EXPECT_EQ(period, 3u * 67'200u + 6'465'067u);
}

TEST(Patterns, PoissonMeanMatchesRate) {
  mc::PoissonPattern poisson(1.0, 99);  // mean 1 us
  double total = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(poisson.next_gap_ps());
  EXPECT_NEAR(total / n, 1e6, 1e4);  // within 1 %
}

TEST(Patterns, PoissonIsMemoryless) {
  // Coefficient of variation of an exponential is 1.
  mc::PoissonPattern poisson(0.5, 7);
  double sum = 0, sum2 = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double g = static_cast<double>(poisson.next_gap_ps());
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.02);
}

TEST(Patterns, BurstPatternAlternates) {
  // 4-packet bursts of 64 B frames at 10 GbE.
  mc::BurstPattern bursts(1.0, 4, 84, 10'000);
  // Three back-to-back gaps (67.2 ns), then one long gap; average 1 Mpps.
  std::uint64_t total = 0;
  for (int burst = 0; burst < 100; ++burst) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(bursts.next_gap_ps(), 67'200u);
      total += 67'200;
    }
    const auto idle = bursts.next_gap_ps();
    EXPECT_GT(idle, 67'200u);
    total += idle;
  }
  EXPECT_NEAR(static_cast<double>(total) / 400.0, 1e6, 10.0);  // 1 us per packet avg
}

// ---------------------------------------------------------------------------
// CRC gap filler (Section 8.1 / 8.4)
// ---------------------------------------------------------------------------

TEST(CrcGapFiller, ZeroGapMeansBackToBack) {
  mc::CrcGapFiller filler;
  EXPECT_TRUE(filler.fill(0).empty());
  EXPECT_EQ(filler.carry_bytes(), 0u);
}

TEST(CrcGapFiller, ShortGapCarriedOver) {
  mc::CrcGapFiller filler;
  // 40 bytes < 76 minimum: unrepresentable, carried to the next gap.
  EXPECT_TRUE(filler.fill(40).empty());
  EXPECT_EQ(filler.carry_bytes(), 40u);
  EXPECT_EQ(filler.skipped_gaps(), 1u);
  // Next gap is lengthened by the carry.
  const auto fillers = filler.fill(100);
  std::size_t total = 0;
  for (auto f : fillers) total += f;
  EXPECT_EQ(total, 140u);
  EXPECT_EQ(filler.carry_bytes(), 0u);
}

TEST(CrcGapFiller, LargeGapSplitsIntoValidSizes) {
  mc::CrcGapFiller filler;
  const auto fillers = filler.fill(10'000);
  std::size_t total = 0;
  for (auto f : fillers) {
    EXPECT_GE(f, filler.config().min_wire_len);
    EXPECT_LE(f, filler.config().max_wire_len);
    total += f;
  }
  EXPECT_EQ(total, 10'000u);
}

TEST(CrcGapFiller, PropertySweepConservesBytes) {
  // Property test: for any gap sequence, carry + emitted == requested, and
  // every emitted filler is within [min, max].
  std::mt19937_64 rng(1234);
  mc::CrcGapFiller filler;
  std::uint64_t requested = 0, emitted = 0;
  for (int i = 0; i < 100'000; ++i) {
    const std::size_t gap = rng() % 4'000;
    requested += gap;
    for (auto f : filler.fill(gap)) {
      EXPECT_GE(f, filler.config().min_wire_len);
      EXPECT_LE(f, filler.config().max_wire_len);
      emitted += f;
    }
  }
  EXPECT_EQ(requested, emitted + filler.carry_bytes());
}

TEST(CrcGapFiller, EdgeCasesAroundMaxLength) {
  mc::CrcGapFiller filler;
  const auto& cfg = filler.config();
  for (std::size_t gap :
       {cfg.max_wire_len, cfg.max_wire_len + 1, cfg.max_wire_len + cfg.min_wire_len - 1,
        cfg.max_wire_len + cfg.min_wire_len, 2 * cfg.max_wire_len, 3 * cfg.max_wire_len + 7}) {
    mc::CrcGapFiller f;
    std::size_t total = 0;
    for (auto piece : f.fill(gap)) {
      EXPECT_GE(piece, cfg.min_wire_len) << "gap=" << gap;
      EXPECT_LE(piece, cfg.max_wire_len) << "gap=" << gap;
      total += piece;
    }
    EXPECT_EQ(total, gap);
  }
}

// ---------------------------------------------------------------------------
// SimLoadGen on the wire
// ---------------------------------------------------------------------------

namespace {

mn::Frame background_frame() {
  mc::UdpTemplateOptions opts;
  opts.frame_size = 96;
  opts.ptp_payload = true;
  opts.ptp_message_type = 5;  // outside the timestamp filter mask
  return mc::make_udp_frame(opts);
}

}  // namespace

TEST(SimLoadGen, CrcPacedCbrProducesExactSpacingOnWire) {
  moongen::test::TenGbeFiberBed bed;
  bed.b.rx_queue(0).set_ring_capacity(1'000'000);
  auto gen = mc::SimLoadGen::crc_paced(bed.a.tx_queue(0), background_frame(),
                                       std::make_unique<mc::CbrPattern>(0.5), 10'000);
  bed.events.run_until(20 * ms::kPsPerMs);

  // Invalid frames never reach the receive queue; valid packets arrive
  // 2 us apart with byte granularity (0.8 ns at 10 GbE).
  const auto entries = bed.b.rx_queue(0).drain();
  ASSERT_GT(entries.size(), 5'000u);
  EXPECT_GT(bed.b.stats().crc_errors, 1'000u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    const auto delta = static_cast<std::int64_t>(entries[i].complete_ps - entries[i - 1].complete_ps);
    EXPECT_NEAR(static_cast<double>(delta), 2e6, 6'400.0 + 800.0) << "i=" << i;
  }
}

TEST(SimLoadGen, CrcPacedAverageRateIsExact) {
  moongen::test::TenGbeFiberBed bed;
  bed.b.rx_queue(0).set_ring_capacity(1'000'000);
  auto gen = mc::SimLoadGen::crc_paced(bed.a.tx_queue(0), background_frame(),
                                       std::make_unique<mc::CbrPattern>(1.0), 10'000);
  bed.events.run_until(50 * ms::kPsPerMs);
  // 1 Mpps over 50 ms: 50'000 valid packets (up to pipeline slack).
  EXPECT_NEAR(static_cast<double>(bed.b.stats().rx_packets), 50'000.0, 150.0);
}

TEST(SimLoadGen, HardwarePacedKeepsQueueFull) {
  moongen::test::TenGbeFiberBed bed;
  bed.b.rx_queue(0).set_ring_capacity(1'000'000);
  auto& q = bed.a.tx_queue(0);
  q.set_rate_mpps(2.0, 100);
  auto gen = mc::SimLoadGen::hardware_paced(q, background_frame());
  bed.events.run_until(10 * ms::kPsPerMs);
  EXPECT_NEAR(static_cast<double>(bed.b.stats().rx_packets), 20'000.0, 100.0);
  EXPECT_EQ(bed.b.stats().crc_errors, 0u);  // no filler frames in this mode
}

// ---------------------------------------------------------------------------
// Timestamper (Section 6)
// ---------------------------------------------------------------------------

TEST(Timestamper, LoopbackLatencyMatchesCable) {
  moongen::test::TenGbeFiberBed bed(2.0);
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 50 * ms::kPsPerUs;
  mc::Timestamper ts(bed.events, bed.a, 0, bed.b, mc::make_ptp_ethernet_frame(80), cfg);
  ts.start();
  bed.events.run_until(100 * ms::kPsPerMs);
  ts.stop();
  ASSERT_GT(ts.samples(), 1'000u);
  // Expected latency: k + l/vp = ~320 ns (Table 3), quantized to 12.8 ns.
  EXPECT_NEAR(ts.latency_ns().mean(), 320.0, 13.0);
  EXPECT_EQ(ts.lost(), 0u);
}

TEST(Timestamper, SingleSampleInFlight) {
  moongen::test::TenGbeFiberBed bed;
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 10 * ms::kPsPerUs;
  mc::Timestamper ts(bed.events, bed.a, 0, bed.b, mc::make_ptp_ethernet_frame(80), cfg);
  ts.start();
  bed.events.run_until(ms::kPsPerMs);
  ts.stop();
  // samples + lost + discarded == number of probes injected (one may
  // still be in flight at the end of the run); every probe accounted.
  const auto resolved = ts.samples() + ts.lost() + ts.discarded();
  EXPECT_GE(bed.a.stats().tx_packets, resolved);
  EXPECT_LE(bed.a.stats().tx_packets, resolved + 1);
}

TEST(Timestamper, LostPacketsAreCountedNotRecorded) {
  // No link attached: probes vanish; every sample times out.
  ms::EventQueue events;
  mn::Port a(events, mn::intel_82599(), 10'000, 71);
  mn::Port b(events, mn::intel_82599(), 10'000, 72);
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 100 * ms::kPsPerUs;
  cfg.timeout_ps = ms::kPsPerMs;
  mc::Timestamper ts(events, a, 0, b, mc::make_ptp_ethernet_frame(80), cfg);
  ts.start();
  events.run_until(20 * ms::kPsPerMs);
  ts.stop();
  EXPECT_EQ(ts.samples(), 0u);
  EXPECT_GT(ts.lost(), 5u);
}

TEST(Timestamper, StreamModeSamplesLoadPackets) {
  moongen::test::TenGbeFiberBed bed;
  bed.b.rx_queue(0).set_ring_capacity(1'000'000);
  auto gen = mc::SimLoadGen::crc_paced(bed.a.tx_queue(0), background_frame(),
                                       std::make_unique<mc::CbrPattern>(0.5), 10'000);
  mc::UdpTemplateOptions stamped_opts;
  stamped_opts.frame_size = 96;
  stamped_opts.ptp_payload = true;
  stamped_opts.ptp_message_type = 0;  // timestampable
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 100 * ms::kPsPerUs;
  mc::Timestamper ts(bed.events, bed.a, *gen, mc::make_udp_frame(stamped_opts), bed.b, cfg);
  ts.start();
  bed.events.run_until(50 * ms::kPsPerMs);
  ts.stop();
  ASSERT_GT(ts.samples(), 100u);
  // One-way latency through the fiber: ~320 ns (plus quantization).
  EXPECT_NEAR(ts.latency_ns().mean(), 320.0, 15.0);
}

namespace {

// Runs the stream-mode sampling scenario (CRC-paced load + Timestamper
// marking frames mid-stream) with a given TX batch size and renders every
// observable outcome — sample counts, the full latency histogram, and the
// receive-side wire statistics — as one string.
std::string stream_sampling_digest(std::size_t batch_frames) {
  moongen::test::TenGbeFiberBed bed;
  bed.a.set_tx_batch_frames(batch_frames);
  bed.b.set_tx_batch_frames(batch_frames);
  bed.b.rx_queue(0).set_ring_capacity(1'000'000);
  auto gen = mc::SimLoadGen::crc_paced(bed.a.tx_queue(0), background_frame(),
                                       std::make_unique<mc::CbrPattern>(0.5), 10'000);
  mc::UdpTemplateOptions stamped_opts;
  stamped_opts.frame_size = 96;
  stamped_opts.ptp_payload = true;
  stamped_opts.ptp_message_type = 0;  // timestampable
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 100 * ms::kPsPerUs;
  mc::Timestamper ts(bed.events, bed.a, *gen, mc::make_udp_frame(stamped_opts), bed.b, cfg);
  ts.start();
  bed.events.run_until(50 * ms::kPsPerMs);
  ts.stop();
  std::ostringstream os;
  os << "samples=" << ts.samples() << " lost=" << ts.lost()
     << " min=" << ts.latency_ns().min() << " mean=" << ts.latency_ns().mean()
     << " max=" << ts.latency_ns().max() << " rx=" << bed.b.stats().rx_packets
     << " crc=" << bed.b.stats().crc_errors << "\n";
  ts.histogram().print(os, 0.0);
  return os.str();
}

}  // namespace

// The PR 2 known issue, resolved: batched TX used to run the refill source
// up to a batch ahead of the wire, so a frame marked by take_sample reached
// the wire up to one batch late and a different packet was sampled. With
// pull-on-demand refills and the Timestamper's batch barrier, batched and
// unbatched runs sample exactly the same packets.
TEST(PortBatching, StreamSamplingIsByteIdenticalToUnbatched) {
  const std::string unbatched = stream_sampling_digest(1);
  const std::string batched = stream_sampling_digest(64);
  EXPECT_EQ(unbatched, batched);
  // Sanity: the digest describes a run that actually sampled packets.
  EXPECT_NE(unbatched.find("samples="), std::string::npos);
  EXPECT_EQ(unbatched.find("samples=0 "), std::string::npos);
}

TEST(Timestamper, DriftIsAbsorbedByResync) {
  // Clock drift of 35 us/s between the ports (worst case, Section 6.3).
  moongen::test::TenGbeFiberBed bed;
  bed.b.ptp_clock() = ms::PtpClock({.increment_ps = 12'800, .drift_ppb = 35'000}, 123);
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 500 * ms::kPsPerUs;
  mc::Timestamper ts(bed.events, bed.a, 0, bed.b, mc::make_ptp_ethernet_frame(80), cfg);
  ts.start();
  bed.events.run_until(500 * ms::kPsPerMs);  // 0.5 s of drift
  ts.stop();
  ASSERT_GT(ts.samples(), 500u);
  // Without resync the clocks would drift apart by ~17.5 us over the run;
  // with per-sample resync the mean stays at the cable latency.
  EXPECT_NEAR(ts.latency_ns().mean(), 320.0, 25.0);
}
