// Edge-case and failure-injection tests across modules.
#include <gtest/gtest.h>

#include <sstream>

#include "core/rate_control.hpp"
#include "core/task.hpp"
#include "core/timestamper.hpp"
#include "membuf/ring.hpp"
#include "nic/chip.hpp"
#include "nic/port.hpp"
#include "sim_testbed.hpp"
#include "stats/counters.hpp"
#include "wire/link.hpp"

namespace mb = moongen::membuf;
namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mw = moongen::wire;
namespace st = moongen::stats;

// ---------------------------------------------------------------------------
// NIC model edges
// ---------------------------------------------------------------------------

TEST(EdgeCases, PortWithoutSinkDiscardsButCounts) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 501);
  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  for (int i = 0; i < 10; ++i) port.tx_queue(0).post(mc::make_udp_frame(opts));
  events.run();  // no sink attached: frames vanish after the wire
  EXPECT_EQ(port.stats().tx_packets, 10u);
}

TEST(EdgeCases, FifoCapacityBoundsRefillLookahead) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 502);
  moongen::test::CaptureSink sink;
  port.set_tx_sink(&sink);
  auto& q = port.tx_queue(0);
  q.set_fifo_capacity(2);
  q.set_rate_mpps(0.1, 64);
  int generated = 0;
  q.set_refill([&] {
    ++generated;
    mc::UdpTemplateOptions o;
    o.frame_size = 60;
    return mc::make_udp_frame(o);
  });
  events.run_until(100 * ms::kPsPerUs);  // ~10 us/pkt at 0.1 Mpps -> ~10 sent
  // Lookahead never exceeds the FIFO bound.
  EXPECT_LE(generated, static_cast<int>(sink.frames.size()) + 2);
}

TEST(EdgeCases, ZeroRateMeansUncontrolled) {
  ms::EventQueue events;
  mn::Port port(events, mn::intel_x540(), 10'000, 503);
  moongen::test::CaptureSink sink;
  port.set_tx_sink(&sink);
  auto& q = port.tx_queue(0);
  q.set_rate_wire_mbit(5'000);
  q.set_rate_wire_mbit(0);  // back to line rate
  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  for (int i = 0; i < 100; ++i) q.post(mc::make_udp_frame(opts));
  events.run();
  for (std::size_t i = 1; i < sink.frames.size(); ++i) {
    EXPECT_EQ(sink.frames[i].second - sink.frames[i - 1].second, 67'200u);
  }
}

TEST(EdgeCases, GapFrameBelowHardwareMinimumStillModelled) {
  // make_gap_frame clamps the data length to at least 1 byte; such runts
  // are dropped and counted at the receiver.
  const auto tiny = mn::make_gap_frame(10);
  EXPECT_GE(tiny.data->size(), 1u);
  EXPECT_FALSE(tiny.fcs_valid);
}

// ---------------------------------------------------------------------------
// Timestamper edges
// ---------------------------------------------------------------------------

TEST(EdgeCases, TimestamperStopPreventsFurtherSamples) {
  moongen::test::TenGbeFiberBed bed;
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 10 * ms::kPsPerUs;
  mc::Timestamper ts(bed.events, bed.a, 0, bed.b, mc::make_ptp_ethernet_frame(80), cfg);
  ts.start();
  bed.events.run_until(200 * ms::kPsPerUs);
  ts.stop();
  const auto samples_at_stop = ts.samples();
  bed.events.run_until(2 * ms::kPsPerMs);
  EXPECT_EQ(ts.samples(), samples_at_stop);
}

TEST(EdgeCases, StaleTxStampFromLostProbeDoesNotCorruptNextSample) {
  // First probe is dropped after TX (no link); its TX stamp would go stale.
  // The timestamper clears registers at the next sample, so a later good
  // probe measures correctly.
  ms::EventQueue events;
  mn::Port a(events, mn::intel_82599(), 10'000, 511);
  mn::Port b(events, mn::intel_82599(), 10'000, 512);
  b.ptp_clock() = a.ptp_clock();
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 100 * ms::kPsPerUs;
  cfg.timeout_ps = 500 * ms::kPsPerUs;
  cfg.sync_clocks_each_sample = false;
  mc::Timestamper ts(events, a, 0, b, mc::make_ptp_ethernet_frame(80), cfg);
  ts.start();
  events.run_until(700 * ms::kPsPerUs);  // first sample times out (no link)
  EXPECT_GE(ts.lost(), 1u);
  // Now attach the link; subsequent samples succeed with sane values.
  mw::Link link(a, b, mw::fiber_om3(2.0), 513);
  events.run_until(5 * ms::kPsPerMs);
  ts.stop();
  EXPECT_GT(ts.samples(), 10u);
  EXPECT_NEAR(ts.latency_ns().mean(), 320.0, 15.0);
}

// ---------------------------------------------------------------------------
// Stats / counters edges
// ---------------------------------------------------------------------------

TEST(EdgeCases, CounterWithNullStreamStillAccumulates) {
  std::uint64_t now = 0;
  st::ManualTxCounter ctr("silent", st::Format::kPlain, [&] { return now; }, nullptr);
  now = 2'000'000'000;
  ctr.update_with_size(100, 60);
  ctr.finalize();
  EXPECT_EQ(ctr.total_packets(), 100u);
}

TEST(EdgeCases, CounterHandlesIdleGaps) {
  std::uint64_t now = 0;
  std::ostringstream os;
  st::ManualTxCounter ctr("gappy", st::Format::kCsv, [&] { return now; }, &os);
  ctr.update_with_size(10, 60);
  now = 5'000'000'000;  // 5 idle seconds
  ctr.update_with_size(10, 60);
  ctr.finalize();
  EXPECT_EQ(ctr.total_packets(), 20u);
  // Idle seconds produce zero-rate interval lines, not crashes.
  EXPECT_GE(ctr.mpps_stats().count(), 4u);
}

// ---------------------------------------------------------------------------
// Pipes and rings under adversarial use
// ---------------------------------------------------------------------------

TEST(EdgeCases, PipePushFailsAfterStopWhenFull) {
  mc::reset_run_state();
  mc::Pipe<int> pipe(2);
  EXPECT_TRUE(pipe.push(1));
  EXPECT_TRUE(pipe.push(2));
  mc::request_stop();  // full + stopped: push must not deadlock
  EXPECT_FALSE(pipe.push(3));
  mc::reset_run_state();
}

TEST(EdgeCases, RingPushPopAcrossWrapBoundaryManyTimes) {
  mb::SpscRing<int> ring(4);
  for (int round = 0; round < 1'000; ++round) {
    EXPECT_TRUE(ring.push(round));
    EXPECT_TRUE(ring.push(round + 1));
    int v = 0;
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, round);
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, round + 1);
  }
  EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------------
// Gap filler adversarial configurations
// ---------------------------------------------------------------------------

TEST(EdgeCases, GapFillerMinEqualsMax) {
  mc::GapFillerConfig cfg;
  cfg.min_wire_len = 100;
  cfg.max_wire_len = 100;
  mc::CrcGapFiller filler(cfg);
  const auto out = filler.fill(300);
  EXPECT_EQ(out.size(), 3u);
  for (auto piece : out) EXPECT_EQ(piece, 100u);
  // 250 = 2 x 100 + 50 carry.
  mc::CrcGapFiller f2(cfg);
  const auto out2 = f2.fill(250);
  std::size_t total = 0;
  for (auto piece : out2) total += piece;
  EXPECT_EQ(total + f2.carry_bytes(), 250u);
}

TEST(EdgeCases, CbrPatternSurvivesExtremeRates) {
  // 14.88 Mpps: gaps of ~67.2 ns; accumulation must not drift.
  mc::CbrPattern line_rate(14.88);
  std::uint64_t total = 0;
  for (int i = 0; i < 100'000; ++i) total += line_rate.next_gap_ps();
  EXPECT_NEAR(static_cast<double>(total), 100'000.0 * 1e6 / 14.88, 1e3);
}
