// Tests for the runtime health plane (src/health): invariant checkers and
// their conservation laws, the parallel-runtime watchdog, the flight
// recorder's rings and JSON dump, graceful-degradation hysteresis, the
// observation-only (byte-identity) contract, and fault-rule validation.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rate_control.hpp"
#include "health/monitor.hpp"
#include "membuf/mempool.hpp"
#include "nic/chip.hpp"
#include "rpc/open_loop.hpp"
#include "rpc/server_model.hpp"
#include "sim/event_queue.hpp"
#include "testbed/scenario.hpp"

namespace mc = moongen::core;
namespace mf = moongen::fault;
namespace mh = moongen::health;
namespace mm = moongen::membuf;
namespace mn = moongen::nic;
namespace mr = moongen::rpc;
namespace ms = moongen::sim;
namespace mtb = moongen::testbed;

namespace {

/// Four-device L2 chain with a forwarder, mirroring l2_load_latency.
std::unique_ptr<mtb::Testbed> l2_bed(int shards, const mf::FaultSpec& spec = {}) {
  return mtb::Scenario()
      .seed(1)
      .shards(shards)
      .telemetry(false)
      .faults(spec)
      .device(0, mn::intel_x540()).name("gen_tx").with_seed(1)
      .device(1, mn::intel_x540()).name("dut_in").with_seed(2)
      .device(2, mn::intel_x540()).name("dut_out").with_seed(3)
      .device(3, mn::intel_x540()).name("sink").with_seed(4).rx_store(false)
      .link(0, 1).with_seed(5)
      .link(2, 3).with_seed(6)
      .forwarder(1, 2)
      .couple(0, 3)
      .build();
}

void start_l2_load(mtb::Testbed& tb, double rate_mpps,
                   std::unique_ptr<mc::SimLoadGen>& out) {
  mc::UdpTemplateOptions bg;
  bg.frame_size = 96;
  auto& queue = tb.port("gen_tx").tx_queue(0);
  queue.set_rate_mpps(rate_mpps, 100);
  out = mc::SimLoadGen::hardware_paced(queue, mc::make_udp_frame(bg));
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckerRegistry
// ---------------------------------------------------------------------------

TEST(CheckerRegistry, AccumulatesViolationsAcrossPasses) {
  mh::CheckerRegistry reg;
  int calls = 0;
  reg.add("always_ok", [](ms::SimTime) { return mh::CheckResult::pass(); });
  reg.add("fails_on_second", [&calls](ms::SimTime) {
    return ++calls < 2 ? mh::CheckResult::pass() : mh::CheckResult::fail("broke");
  });
  EXPECT_EQ(reg.checker_count(), 2u);

  EXPECT_TRUE(reg.run_all(100).empty());
  const auto fresh = reg.run_all(200);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].checker, "fails_on_second");
  EXPECT_EQ(fresh[0].detail, "broke");
  EXPECT_EQ(fresh[0].when_ps, 200u);
  EXPECT_EQ(reg.violations().size(), 1u);
  EXPECT_EQ(reg.checks_run(), 4u);
}

// ---------------------------------------------------------------------------
// Engine checker
// ---------------------------------------------------------------------------

TEST(EngineChecker, AuditIsCleanOnABusyQueue) {
  ms::EventQueue q;
  int ran = 0;
  // Populate every storage tier: ready slot, wheel slots, overflow heap.
  for (int i = 0; i < 200; ++i) q.schedule_at(static_cast<ms::SimTime>(i) * 1000, [&] { ++ran; });
  for (int i = 0; i < 50; ++i)
    q.schedule_at(ms::EventQueue::kHorizonPs * 2 + static_cast<ms::SimTime>(i), [&] { ++ran; });
  EXPECT_EQ(q.audit(), "");
  q.run_until(100'000);
  EXPECT_EQ(q.audit(), "");
  auto check = mh::make_engine_checker(q, "t");
  EXPECT_TRUE(check(q.now()).ok);
  q.run_until(ms::EventQueue::kHorizonPs * 3);
  EXPECT_EQ(q.audit(), "");
  EXPECT_EQ(ran, 250);
  EXPECT_TRUE(check(q.now()).ok);
}

// ---------------------------------------------------------------------------
// Mempool checker
// ---------------------------------------------------------------------------

TEST(MempoolChecker, DetectsLeakAndDoubleCountViaHeldBooks) {
  mm::Mempool pool(32);
  std::size_t held = 0;
  auto check = mh::make_mempool_checker(pool, [&held] { return held; });
  EXPECT_TRUE(check(0).ok);

  // Honest allocation: books balance.
  mm::PktBuf* a = pool.alloc(64);
  ASSERT_NE(a, nullptr);
  held = 1;
  EXPECT_TRUE(check(0).ok);

  // Leak: allocated but not in the books.
  mm::PktBuf* leaked = pool.alloc(64);
  ASSERT_NE(leaked, nullptr);
  const auto leak = check(0);
  EXPECT_FALSE(leak.ok);
  EXPECT_NE(leak.detail.find("leak"), std::string::npos);

  // Double count: books claim more than the pool is missing.
  pool.free(leaked);
  held = 2;
  const auto dbl = check(0);
  EXPECT_FALSE(dbl.ok);
  EXPECT_NE(dbl.detail.find("double free"), std::string::npos);
}

TEST(MempoolChecker, AuditCatchesADoubleFree) {
  mm::Mempool pool(8);
  mm::PktBuf* a = pool.alloc(64);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.audit(), "");
  pool.free(a);
  EXPECT_EQ(pool.audit(), "");
  pool.free(a);  // the corruption an audit exists to catch
  EXPECT_NE(pool.audit(), "");
  auto check = mh::make_mempool_checker(pool);
  EXPECT_FALSE(check(0).ok);
}

// ---------------------------------------------------------------------------
// Link / port checkers on a live testbed
// ---------------------------------------------------------------------------

TEST(LinkChecker, ConservationHoldsUnderLossCorruptDupFaults) {
  const auto spec =
      mf::FaultSpec::parse("seed=9;loss@wire:p=0.01;corrupt@wire.l1:p=0.005;dup@wire.l2:p=0.005");
  auto tb = l2_bed(1, spec);
  std::unique_ptr<mc::SimLoadGen> gen;
  start_l2_load(*tb, 2.0, gen);
  tb->run_until(20 * ms::kPsPerMs);

  auto link_check = mh::make_link_checker(*tb);
  auto port_check = mh::make_port_checker(*tb);
  EXPECT_TRUE(link_check(tb->now()).ok) << link_check(tb->now()).detail;
  EXPECT_TRUE(port_check(tb->now()).ok) << port_check(tb->now()).detail;
  // The faults genuinely fired — the laws held under stress, not vacuously.
  EXPECT_GT(tb->link_at(0).fault_drops() + tb->link_at(1).fault_drops(), 0u);
  EXPECT_GT(tb->link_at(0).corrupted(), 0u);
  EXPECT_GT(tb->link_at(1).duplicated(), 0u);
}

TEST(Testbed, TopologyEnumerationMatchesDeclaration) {
  auto tb = l2_bed(1);
  EXPECT_EQ(tb->link_count(), 2u);
  EXPECT_EQ(tb->link_ends(0), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(tb->link_ends(1), (std::pair<int, int>{2, 3}));
  EXPECT_EQ(&tb->link_at(0), &tb->link(0, 1));
  EXPECT_EQ(tb->device_ids(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_THROW((void)tb->link_at(2), std::out_of_range);
  EXPECT_THROW((void)tb->link_ends(2), std::out_of_range);
}

// ---------------------------------------------------------------------------
// RPC checker
// ---------------------------------------------------------------------------

TEST(RpcChecker, ConservationHoldsThroughALossyRun) {
  const auto spec = mf::FaultSpec::parse("seed=5;loss@wire:p=0.01");
  auto tb = mtb::Scenario()
                .seed(1)
                .telemetry(false)
                .faults(spec)
                .device(0, mn::intel_x540()).name("client").with_seed(10).rx_store(false)
                .device(1, mn::intel_x540()).name("server").with_seed(20).rx_store(false)
                .link(0, 1).with_seed(30).duplex()
                .build();
  mr::ServerConfig sc;
  sc.workers = 1;
  sc.service = mr::ServerConfig::Service::kExponential;
  sc.service_mean_ps = 3.0 * static_cast<double>(ms::kPsPerUs);
  sc.seed = 7;
  mr::ServerModel server(tb->port("server"), sc);
  server.install_faults(*tb->fault_plane(0), "rpc.s0");
  mr::LatencyRecorder recorder;
  mr::WorkloadConfig wc;
  wc.offered_rps = 60'000.0;
  wc.seed = 42;
  wc.timeout_ps = 5 * ms::kPsPerMs;
  mr::OpenLoopGenerator gen(tb->port("client"), recorder, wc);
  auto check = mh::make_rpc_checker(gen);

  gen.start(0, 40 * ms::kPsPerMs);
  // The law must hold at *every* quiesced instant, mid-run included.
  for (ms::SimTime t = 5 * ms::kPsPerMs; t <= 55 * ms::kPsPerMs; t += 5 * ms::kPsPerMs) {
    tb->run_until(t);
    EXPECT_TRUE(check(tb->now()).ok) << check(tb->now()).detail;
  }
  EXPECT_GT(gen.timed_out(), 0u);  // loss really bit
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(Watchdog, TripsOnAWedgedShardAndReportsHeartbeats) {
  auto tb = l2_bed(1);
  std::atomic<bool> release{false};
  // The event spins until the watchdog's trip callback releases it — a
  // deliberate stall on the one shard, wall-clock long, virtual-time zero.
  tb->engine().schedule_at(ms::kPsPerMs, [&release] {
    while (!release.load(std::memory_order_acquire)) {}
  });

  mh::WatchdogConfig cfg;
  cfg.poll_ms = 20;
  cfg.budget_ms = 100;
  mh::Watchdog dog(tb->runtime(), cfg);
  std::atomic<std::uint64_t> reported_shards{0};
  dog.set_on_trip([&](const mh::Watchdog::StallReport& report) {
    reported_shards.store(report.heartbeats.size(), std::memory_order_relaxed);
    release.store(true, std::memory_order_release);
  });
  dog.start();
  tb->run_until(2 * ms::kPsPerMs);
  dog.stop();

  EXPECT_EQ(dog.trips(), 1u);
  EXPECT_EQ(reported_shards.load(), tb->shard_count());
}

TEST(Watchdog, StaysQuietOnAHealthyRun) {
  auto tb = l2_bed(2);
  std::unique_ptr<mc::SimLoadGen> gen;
  start_l2_load(*tb, 1.0, gen);
  mh::WatchdogConfig cfg;
  cfg.poll_ms = 20;
  cfg.budget_ms = 30'000;  // far beyond the run's wall clock
  mh::Watchdog dog(tb->runtime(), cfg);
  dog.start();
  tb->run_until(20 * ms::kPsPerMs);
  dog.stop();
  EXPECT_EQ(dog.trips(), 0u);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, RingRetainsTheNewestEntriesPerShard) {
  mh::FlightRecorder rec(/*shards=*/2, /*capacity=*/8);
  for (std::uint64_t i = 0; i < 20; ++i) rec.sink(0)->on_event(i * 10, i);
  EXPECT_EQ(rec.recorded(0), 20u);
  const auto tail = rec.snapshot(0);
  ASSERT_EQ(tail.size(), 8u);
  EXPECT_EQ(tail.front().seq, 12u);  // oldest retained
  EXPECT_EQ(tail.back().seq, 19u);   // newest
  EXPECT_TRUE(rec.snapshot(1).empty());
}

TEST(FlightRecorder, RecordsFaultFiresWithInternedSiteNames) {
  mh::FlightRecorder rec(1, 16);
  rec.intern_site("wire.l1");
  rec.record_fault(0, "wire.l1", mf::FaultKind::kFrameLoss, 42);
  rec.record_fault(0, "nic.never_interned", mf::FaultKind::kRxOverflow, 43);
  const auto tail = rec.snapshot(0);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].kind, mh::FlightRecorder::EntryKind::kFaultFire);
  EXPECT_EQ(rec.site_name(tail[0].site_id), "wire.l1");
  EXPECT_EQ(rec.site_name(tail[1].site_id), "?");
}

TEST(HealthMonitor, DumpNamesTheFailingCheckerInJson) {
  // Loss probability is high so fault fires land inside the recorder's
  // bounded tail (the dump shows the *last* N entries per shard).
  const auto spec = mf::FaultSpec::parse("seed=3;loss@wire:p=0.05");
  auto tb = l2_bed(1, spec);
  std::unique_ptr<mc::SimLoadGen> gen;
  start_l2_load(*tb, 1.0, gen);
  mh::MonitorConfig hc;
  hc.window_ps = ms::kPsPerMs;
  mh::HealthMonitor mon(*tb, hc);
  mon.checkers().add("deliberately.broken",
                     [](ms::SimTime) { return mh::CheckResult::fail("seeded failure"); });
  mon.start(5 * ms::kPsPerMs);
  tb->run_until(5 * ms::kPsPerMs);

  ASSERT_FALSE(mon.violations().empty());
  std::ostringstream os;
  mon.dump(os, "test dump");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"moongen-flight-recorder-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"test dump\""), std::string::npos);
  EXPECT_NE(json.find("deliberately.broken"), std::string::npos);
  EXPECT_NE(json.find("seeded failure"), std::string::npos);
  // Fault fires made it into the trace with their site names.
  EXPECT_NE(json.find("\"kind\": \"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"site\": \"wire.l"), std::string::npos);
  // The telemetry snapshot rode along.
  EXPECT_NE(json.find("\"telemetry\""), std::string::npos);
}

TEST(HealthMonitor, CatchesASeededLeakWithinOneWindow) {
  auto tb = l2_bed(1);
  mm::Mempool pool(64);
  std::size_t held = 0;
  mh::MonitorConfig hc;
  hc.window_ps = ms::kPsPerMs;
  mh::HealthMonitor mon(*tb, hc);
  mon.checkers().add("pool.books", mh::make_mempool_checker(pool, [&held] { return held; }));
  mon.start(10 * ms::kPsPerMs);
  // Leak one buffer at 4.5 ms: the 5 ms window tick must flag it.
  tb->schedule_global(4'500 * ms::kPsPerUs, [&pool] { (void)pool.alloc(64); });
  tb->run_until(10 * ms::kPsPerMs);

  ASSERT_FALSE(mon.violations().empty());
  const auto& first = mon.violations().front();
  EXPECT_EQ(first.checker, "pool.books");
  EXPECT_EQ(first.when_ps, 5 * ms::kPsPerMs);  // the very next window boundary
}

// ---------------------------------------------------------------------------
// Observation-only contract
// ---------------------------------------------------------------------------

TEST(HealthMonitor, MonitoredRunIsByteIdenticalToUnmonitored) {
  const auto spec = mf::FaultSpec::parse("seed=7;loss@wire:p=0.003;corrupt@wire.l1:p=0.001");
  const auto run = [&spec](bool with_monitor) {
    auto tb = l2_bed(2, spec);
    std::unique_ptr<mc::SimLoadGen> gen;
    start_l2_load(*tb, 2.0, gen);
    std::unique_ptr<mh::HealthMonitor> mon;
    if (with_monitor) {
      mh::MonitorConfig hc;
      hc.window_ps = ms::kPsPerMs;
      mon = std::make_unique<mh::HealthMonitor>(*tb, hc);
      mon->start(30 * ms::kPsPerMs);
    }
    tb->run_until(30 * ms::kPsPerMs);
    if (mon != nullptr) {
      EXPECT_TRUE(mon->violations().empty());
    }
    struct Out {
      std::uint64_t tx, rx, crc, fires, executed0, executed1;
    } o{};
    o.tx = tb->port("gen_tx").stats().tx_packets;
    o.rx = tb->port("sink").stats().rx_packets;
    o.crc = tb->port("dut_in").stats().crc_errors;
    o.fires = tb->fault_fires();
    o.executed0 = tb->runtime().shard(0).executed();
    o.executed1 = tb->runtime().shard(1).executed();
    return std::tuple{o.tx, o.rx, o.crc, o.fires, o.executed0, o.executed1};
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Degradation governor
// ---------------------------------------------------------------------------

TEST(DegradationGovernor, EntersAndRecoversWithHysteresis) {
  std::uint64_t pressure = 0;
  std::vector<std::pair<bool, double>> applied;
  mh::GovernorConfig cfg;
  cfg.pressure_threshold = 10;
  cfg.enter_windows = 3;
  cfg.exit_windows = 2;
  cfg.degraded_keep = 0.25;
  mh::DegradationGovernor gov(
      "t", cfg, [&pressure] { return pressure; },
      [&applied](bool on, double keep) { applied.emplace_back(on, keep); });

  gov.tick();  // priming tick: baseline only
  EXPECT_FALSE(gov.active());

  // Two hot windows: not yet (needs 3).
  pressure += 50; gov.tick();
  pressure += 50; gov.tick();
  EXPECT_FALSE(gov.active());
  // Third consecutive hot window enters.
  pressure += 50; gov.tick();
  EXPECT_TRUE(gov.active());
  EXPECT_EQ(gov.enters(), 1u);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0], (std::pair<bool, double>{true, 0.25}));

  // One cool window is not enough to recover (hysteresis).
  gov.tick();
  EXPECT_TRUE(gov.active());
  // Second cool window recovers and restores keep = 1.0.
  gov.tick();
  EXPECT_FALSE(gov.active());
  EXPECT_EQ(gov.recovers(), 1u);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[1], (std::pair<bool, double>{false, 1.0}));

  // A cool window resets a partial hot streak: 2 hot + 1 cool + 2 hot != enter.
  pressure += 50; gov.tick();
  pressure += 50; gov.tick();
  gov.tick();
  pressure += 50; gov.tick();
  pressure += 50; gov.tick();
  EXPECT_FALSE(gov.active());
  pressure += 50; gov.tick();
  EXPECT_TRUE(gov.active());
  EXPECT_EQ(gov.enters(), 2u);
}

TEST(OpenLoopGenerator, KeepFractionShedsDeterministically) {
  auto tb = mtb::Scenario()
                .seed(1)
                .telemetry(false)
                .device(0, mn::intel_x540()).name("client").with_seed(10).rx_store(false)
                .device(1, mn::intel_x540()).name("server").with_seed(20).rx_store(false)
                .link(0, 1).with_seed(30).duplex()
                .build();
  mr::ServerConfig sc;
  sc.workers = 1;
  sc.service = mr::ServerConfig::Service::kFixed;
  sc.service_mean_ps = 2 * ms::kPsPerUs;
  sc.seed = 7;
  mr::ServerModel server(tb->port("server"), sc);
  mr::LatencyRecorder recorder;
  mr::WorkloadConfig wc;
  wc.offered_rps = 100'000.0;
  wc.arrival = mr::WorkloadConfig::Arrival::kCbr;
  wc.seed = 42;
  mr::OpenLoopGenerator gen(tb->port("client"), recorder, wc);
  gen.set_keep_fraction(0.5);
  gen.start(0, 20 * ms::kPsPerMs);
  tb->run_until(25 * ms::kPsPerMs);
  // CBR at 100 krps for 20 ms: every departure still happens (the arrival
  // process is untouched), and the keep accumulator issues exactly every
  // other one — floor(total / 2), no randomness involved.
  const std::uint64_t total = gen.issued() + gen.shed_departures();
  EXPECT_GE(total, 1999u);
  EXPECT_LE(total, 2001u);
  EXPECT_EQ(gen.issued(), total / 2);
  EXPECT_EQ(gen.matched(), gen.issued());
}

// ---------------------------------------------------------------------------
// Fault-rule validation (satellite: typo'd sites fail fast)
// ---------------------------------------------------------------------------

TEST(FaultValidation, TypoSiteThrowsWithRegisteredSitesListed) {
  const auto spec = mf::FaultSpec::parse("seed=1;loss@wire.l9:p=1");
  auto tb = l2_bed(1, spec);
  try {
    tb->run_until(ms::kPsPerMs);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("loss@wire.l9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("can never fire"), std::string::npos) << msg;
    EXPECT_NE(msg.find("wire.l1"), std::string::npos) << msg;  // the fix, spelled out
  }
}

TEST(FaultValidation, PrefixRulesAndLateInstalledSitesPass) {
  // `stall@rpc` only matches a site installed *after* build() — validation
  // is deferred to the first run_until precisely for this.
  const auto spec = mf::FaultSpec::parse("seed=1;loss@wire:p=0.001;stall@rpc:p=0.01,param=1e8");
  auto tb = mtb::Scenario()
                .seed(1)
                .telemetry(false)
                .faults(spec)
                .device(0, mn::intel_x540()).name("client").with_seed(10).rx_store(false)
                .device(1, mn::intel_x540()).name("server").with_seed(20).rx_store(false)
                .link(0, 1).with_seed(30).duplex()
                .build();
  mr::ServerConfig sc;
  sc.workers = 1;
  sc.service = mr::ServerConfig::Service::kFixed;
  sc.service_mean_ps = 2 * ms::kPsPerUs;
  sc.seed = 7;
  mr::ServerModel server(tb->port("server"), sc);
  server.install_faults(*tb->fault_plane(0), "rpc.s0");
  EXPECT_NO_THROW(tb->run_until(ms::kPsPerMs));
}

TEST(FaultValidation, ExplicitCallFailsFastBeforeAnyRun) {
  const auto spec = mf::FaultSpec::parse("seed=1;flap@nic.bogus:p=1,param=1e8");
  auto tb = l2_bed(1, spec);
  EXPECT_THROW(tb->validate_fault_rules(), std::invalid_argument);
}

TEST(FaultValidation, StandalonePlaneStillAcceptsAnySiteName) {
  // Validation is a Testbed policy; a hand-wired FaultPlane keeps the old
  // contract (unmatched points are simply disabled).
  mf::FaultPlane plane(mf::FaultSpec::parse("seed=1;loss@anything:p=1"));
  auto point = plane.point(mf::FaultKind::kFrameLoss, "unrelated.site");
  EXPECT_FALSE(point.installed());
  EXPECT_EQ(plane.requested_sites().size(), 1u);
  EXPECT_EQ(plane.unmatched_rules().size(), 1u);
}
