// Tests for the always-on in-path RTT plane (src/telemetry/rtt_plane.*),
// the per-shard metric handle API it rides on, the Timestamper-vs-plane
// reconciliation under fault loss, and the streaming telemetry exporter:
//  * window quantiles, reset and flow-group selection at the unit level;
//  * window-merge determinism — the serialized window stream is
//    byte-identical across --shards 1/2/4 (the DESIGN.md contract);
//  * stamp conservation under fault-plane loss (lost stamps count as
//    drops; in-flight never negative) via health::make_rtt_checker;
//  * Timestamper sampled-path reconciliation: attempts == samples + lost
//    + discarded (+ in-flight) exactly, even when faults eat the probes;
//  * handle-API parity: the legacy name-keyed shim and the per-shard tree
//    handles feed the same shard-agnostic read APIs;
//  * TelemetryStream writes snapshots + windows to its file and leaves the
//    simulated run untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "health/health.hpp"
#include "nic/chip.hpp"
#include "sim_testbed.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/rtt_plane.hpp"
#include "telemetry/stream.hpp"
#include "testbed/scenario.hpp"

namespace mc = moongen::core;
namespace mf = moongen::fault;
namespace mh = moongen::health;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mt = moongen::telemetry;
namespace mtb = moongen::testbed;

namespace {

/// The l2_load_latency topology: generator -> forwarder DuT -> sink.
mtb::Scenario l2_scenario(int shards, const std::string& faults = "") {
  mtb::Scenario sc;
  sc.seed(1)
      .shards(shards)
      .device(0, mn::intel_x540()).name("gen_tx").with_seed(1)
      .device(1, mn::intel_x540()).name("dut_in").with_seed(2).rtt_record(false)
      .device(2, mn::intel_x540()).name("dut_out").with_seed(3).rtt_record(false)
      .device(3, mn::intel_x540()).name("sink").with_seed(4).rx_store(false)
      .link(0, 1).with_seed(5)
      .link(2, 3).with_seed(6)
      .forwarder(1, 2)
      .couple(0, 3);
  if (!faults.empty()) sc.faults(faults);
  return sc;
}

std::unique_ptr<mc::SimLoadGen> start_load(mtb::Testbed& tb, double rate_mpps) {
  mc::UdpTemplateOptions bg;
  bg.frame_size = 96;
  auto& queue = tb.port("gen_tx").tx_queue(0);
  queue.set_rate_mpps(rate_mpps, 100);
  return mc::SimLoadGen::hardware_paced(queue, mc::make_udp_frame(bg));
}

std::string serialize_windows(const mt::RttPlane& plane) {
  std::ostringstream os;
  for (const auto& w : plane.windows()) mt::RttPlane::write_window_json(os, w);
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Unit level: RttShard / RttPlane
// ---------------------------------------------------------------------------

TEST(RttPlaneUnit, WindowQuantilesAndReset) {
  mt::RttPlaneConfig cfg;
  cfg.window_ps = 1'000'000;
  mt::RttPlane plane(cfg, 1);
  auto& shard = plane.shard(0);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    shard.note_tx_stamped();
    shard.note_rx_seen();
    shard.record(0, i * 100);  // 100ns .. 10us
  }
  plane.close_window(cfg.window_ps);
  ASSERT_EQ(plane.windows_closed(), 1u);
  const mt::RttWindow& w = plane.windows().front();
  EXPECT_EQ(w.start_ps, 0u);
  EXPECT_EQ(w.end_ps, cfg.window_ps);
  EXPECT_EQ(w.count, 100u);
  EXPECT_EQ(w.dropped, 0u);
  // Log-linear buckets return lower edges: the medians land near the middle
  // of the recorded range, within the histogram's 6.25 % relative error.
  EXPECT_NEAR(static_cast<double>(w.p50), 5'000.0, 5'000.0 * 0.07);
  EXPECT_GE(w.p99, w.p50);
  EXPECT_GE(w.p999, w.p99);
  EXPECT_LE(w.min_ns, 100u);
  // The window histogram resets; the cumulative one keeps the population.
  plane.close_window(2 * cfg.window_ps);
  EXPECT_EQ(plane.windows().back().count, 0u);
  EXPECT_EQ(plane.cumulative().total(), 100u);
  EXPECT_EQ(plane.recorded(), 100u);
  EXPECT_EQ(plane.in_flight(), 0);
}

TEST(RttPlaneUnit, FlowGroupsRoundUpToPowerOfTwo) {
  mt::RttPlaneConfig cfg;
  cfg.flow_groups = 3;
  mt::RttPlane plane(cfg, 1);
  EXPECT_EQ(plane.group_count(), 4u);
  auto& shard = plane.shard(0);
  shard.record(0, 100);
  shard.record(1, 200);
  shard.record(5, 300);  // 5 & 3 == 1
  plane.close_window(cfg.window_ps);
  const auto& w = plane.windows().front();
  ASSERT_EQ(w.groups.size(), 4u);
  EXPECT_EQ(w.groups[0].count, 1u);
  EXPECT_EQ(w.groups[1].count, 2u);
  EXPECT_EQ(w.groups[2].count, 0u);
  EXPECT_EQ(w.count, 3u);
}

TEST(RttPlaneUnit, ShardMergeMatchesSingleShard) {
  // The same multiset of observations, recorded on one shard vs. split
  // across two, must serialize to byte-identical windows.
  mt::RttPlaneConfig cfg;
  cfg.flow_groups = 2;
  mt::RttPlane one(cfg, 1);
  mt::RttPlane two(cfg, 2);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint32_t flow = static_cast<std::uint32_t>(i % 2);
    const std::uint64_t rtt = 50 + (i * i) % 70'000;
    one.shard(0).record(flow, rtt);
    two.shard(i % 2).record(flow, rtt);
  }
  one.close_window(cfg.window_ps);
  two.close_window(cfg.window_ps);
  EXPECT_EQ(serialize_windows(one), serialize_windows(two));
}

TEST(RttPlaneUnit, WindowJsonIsSingleLineWithSchema) {
  mt::RttPlaneConfig cfg;
  mt::RttPlane plane(cfg, 1);
  plane.shard(0).record(0, 750);
  plane.close_window(cfg.window_ps);
  std::ostringstream os;
  mt::RttPlane::write_window_json(os, plane.windows().front());
  const std::string line = os.str();
  EXPECT_NE(line.find("moongen-rtt-window-v1"), std::string::npos);
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
  EXPECT_EQ(line.back(), '\n');
}

// ---------------------------------------------------------------------------
// Scenario level: window-merge determinism across shard counts
// ---------------------------------------------------------------------------

TEST(RttPlaneScenario, WindowStreamIsByteIdenticalAcrossShardCounts) {
  std::vector<std::string> streams;
  std::vector<std::uint64_t> recorded;
  for (int shards : {1, 2, 4}) {
    auto tb = l2_scenario(shards).rtt_groups(2).build();
    auto gen = start_load(*tb, 1.0);
    tb->run_until(500 * ms::kPsPerMs);  // 5 windows at the default 100 ms
    ASSERT_TRUE(tb->has_rtt_plane());
    auto& plane = tb->rtt_plane();
    EXPECT_EQ(plane.windows_closed(), 5u);
    EXPECT_GT(plane.recorded(), 100'000u);  // ~500k frames at 1 Mpps
    streams.push_back(serialize_windows(plane));
    recorded.push_back(plane.recorded());
  }
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);
  EXPECT_EQ(recorded[0], recorded[1]);
  EXPECT_EQ(recorded[0], recorded[2]);
}

TEST(RttPlaneScenario, MidJourneyPortsCountConservationButDoNotRecord) {
  auto tb = l2_scenario(1).build();
  auto gen = start_load(*tb, 1.0);
  tb->run_until(100 * ms::kPsPerMs);
  auto& plane = tb->rtt_plane();
  // Every frame is seen twice (dut_in mid-journey + sink end-to-end) but
  // recorded once: rtt_record(false) keeps the DuT ingress out of the
  // histograms without breaking the books.
  EXPECT_GT(plane.recorded(), 0u);
  EXPECT_GE(plane.rx_seen(), 2 * plane.recorded());
  EXPECT_GE(plane.in_flight(), 0);
  auto check = mh::make_rtt_checker(plane);
  EXPECT_TRUE(check(tb->now()).ok);
}

// ---------------------------------------------------------------------------
// Conservation under fault-plane loss
// ---------------------------------------------------------------------------

TEST(RttPlaneScenario, LostStampsCountAsDropsUnderFaultLoss) {
  auto tb = l2_scenario(1, "seed=7;loss@wire.l1:p=0.05").build();
  auto gen = start_load(*tb, 1.0);
  tb->run_until(200 * ms::kPsPerMs);
  auto& plane = tb->rtt_plane();
  const auto wire_drops = tb->link(0, 1).fault_drops();
  EXPECT_GT(wire_drops, 0u);
  // Every dropped frame was stamped (all load frames are), so the plane's
  // drop count covers at least the wire's losses — no silent shrinkage.
  EXPECT_GE(plane.dropped(), wire_drops);
  EXPECT_GE(plane.in_flight(), 0);
  auto check = mh::make_rtt_checker(plane);
  const auto result = check(tb->now());
  EXPECT_TRUE(result.ok) << result.detail;
}

// ---------------------------------------------------------------------------
// Timestamper sampled-path reconciliation (the satellite fix)
// ---------------------------------------------------------------------------

TEST(TimestamperReconciliation, AttemptsEqualSamplesPlusLostUnderLoss) {
  moongen::test::TenGbeFiberBed bed;
  const auto spec = mf::FaultSpec::parse("seed=31;loss@wire.ab:p=0.1");
  mf::FaultPlane plane(spec, &bed.events);
  bed.link.install_faults(plane, "wire.ab");

  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 100 * ms::kPsPerUs;
  cfg.timeout_ps = 1 * ms::kPsPerMs;
  mc::Timestamper ts(bed.events, bed.a, 0, bed.b, mc::make_ptp_ethernet_frame(96), cfg);
  ts.start();
  auto check = mh::make_timestamper_checker(ts);
  bed.events.run_until(100 * ms::kPsPerMs);
  // Mid-run the identity already holds (a sample may be in flight).
  const auto mid = check(bed.events.now());
  EXPECT_TRUE(mid.ok) << mid.detail;
  bed.events.run_until(200 * ms::kPsPerMs);
  ts.stop();
  bed.events.run();  // drain in-flight probes and pending timeouts

  EXPECT_GT(ts.lost(), 0u);
  EXPECT_GT(ts.samples(), 0u);
  EXPECT_FALSE(ts.sample_in_flight());
  EXPECT_EQ(ts.attempts(), ts.samples() + ts.lost() + ts.discarded());
  const auto done = check(bed.events.now());
  EXPECT_TRUE(done.ok) << done.detail;
}

// ---------------------------------------------------------------------------
// Handle-API reads across per-shard trees
// ---------------------------------------------------------------------------

TEST(HandleParity, ReadApisMergeAcrossShardTrees) {
  mt::MetricRegistry registry;
  registry.shard(0).counter("x.count").add(2);
  registry.shard(0).gauge("x.level").set(1.0);
  registry.shard(0).histogram("x.hist").record(100);
  registry.shard(0).counter("x.count").add(3);
  registry.shard(1).counter("x.count").add(5);
  registry.shard(1).gauge("x.level").set(4.0);
  registry.shard(0).histogram("x.hist").record(200);

  EXPECT_EQ(registry.counter_value("x.count"), 10u);
  // Last-writer-wins in (tree 0, tree 1, ...) order.
  EXPECT_EQ(registry.gauge_value("x.level"), 4.0);
  EXPECT_EQ(registry.histogram_merged("x.hist").total(), 2u);
  // Every tree's population shows up in one snapshot under the same names.
  const auto snap = registry.snapshot(0);
  std::uint64_t counted = 0;
  for (const auto& c : snap.counters)
    if (c.name == "x.count") counted += c.value;
  EXPECT_EQ(counted, 10u);
}

TEST(HandleParity, DefaultConstructedHandlesAreInertNoOps) {
  mt::CounterHandle c;
  mt::GaugeHandle g;
  mt::HistogramHandle h;
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(g.valid());
  EXPECT_FALSE(h.valid());
  c.add(1);  // must not crash
  g.set(2.0);
  h.record(3);
}

// ---------------------------------------------------------------------------
// Streaming exporter
// ---------------------------------------------------------------------------

TEST(StreamTelemetry, WritesSnapshotsAndRttWindowsToFile) {
  const std::string path = ::testing::TempDir() + "rtt_stream_test.jsonl";
  {
    auto sc = l2_scenario(2);
    sc.stream_telemetry(path, 100'000'000);  // one tick per 100 ms window
    auto tb = sc.build();
    auto gen = start_load(*tb, 1.0);
    tb->run_until(300 * ms::kPsPerMs);
    ASSERT_NE(tb->stream(), nullptr);
    EXPECT_EQ(tb->stream()->ticks(), 3u);
    EXPECT_EQ(tb->stream()->windows_streamed(), tb->rtt_plane().windows_closed());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("moongen-rtt-window-v1"), std::string::npos);
  EXPECT_NE(content.find("port.gen_tx"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StreamTelemetry, StreamingDoesNotPerturbTheSimulatedRun) {
  // The determinism contract behind the CI byte-identity gate: a streamed
  // run produces exactly the same simulated outcome as an unstreamed one.
  std::string with_stream, without_stream;
  std::uint64_t tx_with = 0, tx_without = 0;
  const std::string path = ::testing::TempDir() + "rtt_stream_identity.jsonl";
  for (bool streamed : {false, true}) {
    auto sc = l2_scenario(1);
    if (streamed) sc.stream_telemetry(path, 100'000'000);
    auto tb = sc.build();
    auto gen = start_load(*tb, 1.0);
    tb->run_until(300 * ms::kPsPerMs);
    (streamed ? with_stream : without_stream) = serialize_windows(tb->rtt_plane());
    (streamed ? tx_with : tx_without) = tb->port("gen_tx").stats().tx_packets;
  }
  EXPECT_EQ(with_stream, without_stream);
  EXPECT_EQ(tx_with, tx_without);
  std::remove(path.c_str());
}
