// Tests for the deterministic fault-injection plane (src/fault): spec
// parsing, the per-site determinism contract, exact loss/corruption
// accounting through the simulated testbed, and the recovery paths
// (link-flap backpressure, mempool retry, timestamper resync).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "dut/forwarder.hpp"
#include "fault/fault.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "sim_testbed.hpp"
#include "telemetry/registry.hpp"

namespace mb = moongen::membuf;
namespace mc = moongen::core;
namespace md = moongen::dut;
namespace mf = moongen::fault;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mt = moongen::telemetry;
namespace mw = moongen::wire;

using moongen::test::TenGbeFiberBed;

namespace {

/// Posts `n` copies of `frame`, draining the event queue whenever the TX
/// descriptor ring fills up (so arbitrarily large counts work).
void post_n(TenGbeFiberBed& bed, const mn::Frame& frame, std::size_t n) {
  for (std::size_t posted = 0; posted < n;) {
    if (bed.a.tx_queue(0).post(frame)) {
      ++posted;
    } else {
      bed.events.run();
    }
  }
  bed.events.run();
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultSpec parsing
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesSeedAndRules) {
  const auto spec = mf::FaultSpec::parse(
      "seed=42;loss@wire.l1:p=0.001,burst=2;flap@wire.l1:p=1e-6,param=5e9");
  EXPECT_EQ(spec.seed, 42u);
  ASSERT_EQ(spec.rules.size(), 2u);
  EXPECT_EQ(spec.rules[0].kind, mf::FaultKind::kFrameLoss);
  EXPECT_EQ(spec.rules[0].site, "wire.l1");
  EXPECT_DOUBLE_EQ(spec.rules[0].probability, 0.001);
  EXPECT_EQ(spec.rules[0].burst, 2u);
  EXPECT_EQ(spec.rules[1].kind, mf::FaultKind::kLinkFlap);
  EXPECT_DOUBLE_EQ(spec.rules[1].param, 5e9);
}

TEST(FaultSpec, DefaultsAndWindow) {
  const auto spec = mf::FaultSpec::parse("corrupt:p=0.5,from=1000,to=2000");
  EXPECT_EQ(spec.seed, 1u);  // default
  ASSERT_EQ(spec.rules.size(), 1u);
  const auto& r = spec.rules[0];
  EXPECT_TRUE(r.site.empty());  // empty site matches every site
  EXPECT_EQ(r.burst, 1u);
  EXPECT_EQ(r.window_start_ps, 1000u);
  EXPECT_EQ(r.window_end_ps, 2000u);
  EXPECT_TRUE(r.matches(mf::FaultKind::kFrameCorrupt, "anything.at.all"));
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(mf::FaultSpec::parse("loss"), std::invalid_argument);
  EXPECT_THROW(mf::FaultSpec::parse("not_a_kind:p=1"), std::invalid_argument);
  EXPECT_THROW(mf::FaultSpec::parse("loss:bogus_key=1"), std::invalid_argument);
  EXPECT_THROW(mf::FaultSpec::parse("loss:p=abc"), std::invalid_argument);
  EXPECT_THROW(mf::FaultSpec::parse("loss:p"), std::invalid_argument);
  EXPECT_THROW(mf::FaultSpec::parse("seed=xyz"), std::invalid_argument);
}

TEST(FaultSpec, KindNamesRoundTrip) {
  for (int k = 0; k < static_cast<int>(mf::FaultKind::kCount); ++k) {
    const auto kind = static_cast<mf::FaultKind>(k);
    const auto back = mf::kind_from_string(mf::to_string(kind));
    ASSERT_TRUE(back.has_value()) << mf::to_string(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(mf::kind_from_string("nonsense").has_value());
}

// ---------------------------------------------------------------------------
// FaultPoint semantics
// ---------------------------------------------------------------------------

TEST(FaultPoint, DisabledWhenNoRuleMatches) {
  auto spec = mf::FaultSpec::parse("loss@wire.l1:p=1");
  mf::FaultPlane plane(spec);
  auto miss_site = plane.point(mf::FaultKind::kFrameLoss, "other.site");
  auto miss_kind = plane.point(mf::FaultKind::kFrameCorrupt, "wire.l1");
  EXPECT_FALSE(miss_site.installed());
  EXPECT_FALSE(miss_kind.installed());
  EXPECT_EQ(miss_site.fire(), nullptr);
  EXPECT_EQ(miss_site.fires(), 0u);
  // Default-constructed points behave identically.
  mf::FaultPoint off;
  EXPECT_FALSE(off.installed());
  EXPECT_EQ(off.fire(123), nullptr);
}

TEST(FaultPoint, FireSequenceIsDeterministicPerSeed) {
  const auto spec = mf::FaultSpec::parse("seed=99;loss@wire.l1:p=0.1");
  std::vector<bool> run1, run2;
  for (auto* out : {&run1, &run2}) {
    mf::FaultPlane plane(spec);
    auto fp = plane.point(mf::FaultKind::kFrameLoss, "wire.l1");
    ASSERT_TRUE(fp.installed());
    for (int i = 0; i < 2000; ++i) out->push_back(fp.fire(0) != nullptr);
  }
  EXPECT_EQ(run1, run2);
  const auto fires = static_cast<std::size_t>(std::count(run1.begin(), run1.end(), true));
  EXPECT_GT(fires, 100u);  // ~200 expected at p=0.1
  EXPECT_LT(fires, 400u);
}

TEST(FaultPoint, SiteStreamsAreIndependentOfCreationOrder) {
  const auto spec = mf::FaultSpec::parse("seed=7;loss:p=0.2");
  std::vector<bool> alone, crowded;
  {
    mf::FaultPlane plane(spec);
    auto fp = plane.point(mf::FaultKind::kFrameLoss, "s1");
    for (int i = 0; i < 500; ++i) alone.push_back(fp.fire(0) != nullptr);
  }
  {
    mf::FaultPlane plane(spec);
    auto other = plane.point(mf::FaultKind::kFrameLoss, "s2");
    auto fp = plane.point(mf::FaultKind::kFrameLoss, "s1");
    // Interleave probes of the other site: s1's stream must not notice.
    for (int i = 0; i < 500; ++i) {
      (void)other.fire(0);
      crowded.push_back(fp.fire(0) != nullptr);
    }
  }
  EXPECT_EQ(alone, crowded);
}

TEST(FaultPoint, WindowGatesFiring) {
  const auto spec = mf::FaultSpec::parse("loss:p=1,from=100,to=200");
  mf::FaultPlane plane(spec);
  auto fp = plane.point(mf::FaultKind::kFrameLoss, "s");
  EXPECT_EQ(fp.fire(50), nullptr);
  EXPECT_EQ(fp.fire(99), nullptr);
  EXPECT_NE(fp.fire(100), nullptr);
  EXPECT_NE(fp.fire(150), nullptr);
  EXPECT_NE(fp.fire(199), nullptr);
  EXPECT_EQ(fp.fire(200), nullptr);  // window is half-open
  EXPECT_EQ(fp.fire(5000), nullptr);
  EXPECT_EQ(fp.fires(), 3u);
}

TEST(FaultPoint, BurstContinuesAcrossWindowEdge) {
  const auto spec = mf::FaultSpec::parse("loss:p=1,burst=3,from=100,to=101");
  mf::FaultPlane plane(spec);
  auto fp = plane.point(mf::FaultKind::kFrameLoss, "s");
  EXPECT_NE(fp.fire(100), nullptr);  // arms a 3-probe burst
  EXPECT_NE(fp.fire(500), nullptr);  // burst survives leaving the window
  EXPECT_NE(fp.fire(900), nullptr);
  EXPECT_EQ(fp.fire(1300), nullptr);  // burst exhausted, window closed
  EXPECT_EQ(fp.fires(), 3u);
}

TEST(FaultPlane, TelemetryCountsFiresPerSiteAndTotal) {
  const auto spec = mf::FaultSpec::parse("loss:p=1");
  mf::FaultPlane plane(spec);
  auto early = plane.point(mf::FaultKind::kFrameLoss, "pre.bind");
  (void)early.fire(0);
  (void)early.fire(0);

  mt::MetricRegistry registry;
  plane.bind_telemetry(registry);
  // History is seeded at bind time, not lost.
  EXPECT_EQ(registry.counter_value("fault.loss.pre.bind"), 2u);
  EXPECT_EQ(registry.counter_value("fault.total"), 2u);

  // Sites created after binding are wired up on creation.
  auto late = plane.point(mf::FaultKind::kFrameLoss, "post.bind");
  (void)late.fire(0);
  EXPECT_EQ(registry.counter_value("fault.loss.post.bind"), 1u);
  EXPECT_EQ(registry.counter_value("fault.total"), 3u);
  EXPECT_EQ(plane.total_fires(), 3u);
  EXPECT_EQ(plane.fires_at("pre.bind"), 2u);
  EXPECT_EQ(plane.fires_at("post.bind"), 1u);
  EXPECT_EQ(plane.fires_at("never.seen"), 0u);
}

// ---------------------------------------------------------------------------
// Wire faults: exact accounting through the simulated testbed
// ---------------------------------------------------------------------------

namespace {

struct LossRunResult {
  std::uint64_t tx, rx, drops, fires;
  bool operator==(const LossRunResult&) const = default;
};

LossRunResult run_loss_scenario() {
  TenGbeFiberBed bed;
  const auto spec = mf::FaultSpec::parse("seed=7;loss@wire.ab:p=0.02");
  mf::FaultPlane plane(spec, &bed.events);
  bed.link.install_faults(plane, "wire.ab");
  bed.b.rx_queue(0).set_store(false);

  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  post_n(bed, mc::make_udp_frame(opts), 3000);
  return {bed.a.stats().tx_packets, bed.b.stats().rx_packets, bed.link.fault_drops(),
          plane.fires_at("wire.ab")};
}

}  // namespace

TEST(WireFaults, LossAccountingIsExactAndReproducible) {
  const auto r1 = run_loss_scenario();
  EXPECT_EQ(r1.tx, 3000u);
  EXPECT_GT(r1.drops, 0u);
  // Every fire is a drop and every drop is a fire; nothing else goes missing.
  EXPECT_EQ(r1.drops, r1.fires);
  EXPECT_EQ(r1.rx, r1.tx - r1.drops);
  // Identical spec => identical run, bit for bit.
  const auto r2 = run_loss_scenario();
  EXPECT_EQ(r1, r2);
}

TEST(WireFaults, CorruptionFeedsTheHardwareCrcCounter) {
  TenGbeFiberBed bed;
  const auto spec = mf::FaultSpec::parse("seed=3;corrupt@wire.ab:p=0.05");
  mf::FaultPlane plane(spec, &bed.events);
  bed.link.install_faults(plane, "wire.ab");
  bed.b.rx_queue(0).set_store(false);

  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  post_n(bed, mc::make_udp_frame(opts), 2000);

  const auto corrupted = bed.link.corrupted();
  EXPECT_GT(corrupted, 0u);
  EXPECT_EQ(corrupted, plane.fires_at("wire.ab"));
  // Corrupted frames are dropped by the receiving MAC (bad FCS), moving
  // only the CRC error counter — exactly like the paper's CRC rate control.
  EXPECT_EQ(bed.b.stats().crc_errors, corrupted);
  EXPECT_EQ(bed.b.stats().rx_packets, 2000u - corrupted);
}

TEST(WireFaults, DuplicationAndReorderingDeliverEveryFrame) {
  TenGbeFiberBed bed;
  const auto spec =
      mf::FaultSpec::parse("seed=5;dup@wire.ab:p=0.03;reorder@wire.ab:p=0.03,param=2e6");
  mf::FaultPlane plane(spec, &bed.events);
  bed.link.install_faults(plane, "wire.ab");

  std::vector<std::uint64_t> order;
  bed.b.rx_queue(0).set_store(false);
  bed.b.rx_queue(0).set_callback(
      [&order](const mn::RxQueueModel::Entry& e) { order.push_back(e.frame.seq); });

  const std::size_t kFrames = 2000;
  for (std::size_t seq = 0; seq < kFrames;) {
    if (bed.a.tx_queue(0).post(mn::make_frame(std::vector<std::uint8_t>(60, 0xee), true, seq))) {
      ++seq;
    } else {
      bed.events.run();
    }
  }
  bed.events.run();

  EXPECT_GT(bed.link.duplicated(), 0u);
  EXPECT_GT(bed.link.reordered(), 0u);
  // No loss: every frame arrives, duplicates on top.
  EXPECT_EQ(order.size(), kFrames + bed.link.duplicated());
  // A held-back frame really lands after frames sent later.
  bool inversion = false;
  for (std::size_t i = 1; i < order.size() && !inversion; ++i)
    inversion = order[i] < order[i - 1] && order[i] + 1 != order[i - 1];
  EXPECT_TRUE(inversion);
}

TEST(WireFaults, LinkFlapBackpressuresAndRecovers) {
  TenGbeFiberBed bed;
  const auto spec = mf::FaultSpec::parse("seed=9;flap@wire.ab:p=0.002,param=2e8");
  mf::FaultPlane plane(spec, &bed.events);
  bed.link.install_faults(plane, "wire.ab");
  bed.b.rx_queue(0).set_store(false);

  mt::MetricRegistry registry;
  bed.a.bind_telemetry(registry, "port.a");

  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  post_n(bed, mc::make_udp_frame(opts), 2000);

  const auto flaps = bed.link.flaps();
  ASSERT_GT(flaps, 0u);
  EXPECT_TRUE(bed.link.carrier_up());  // every outage ended
  // The transmitting port saw carrier loss and resumption for each flap:
  // frames posted during an outage queue up and drain on recovery instead
  // of being lost, so only wire-caught frames are flap drops.
  EXPECT_EQ(bed.a.stats().link_down_events, flaps);
  EXPECT_EQ(bed.a.stats().link_up_events, flaps);
  EXPECT_TRUE(bed.a.link_up());
  EXPECT_GE(bed.link.flap_drops(), flaps);  // at least the flap-triggering frame
  EXPECT_EQ(bed.b.stats().rx_packets, 2000u - bed.link.flap_drops());
  // Recovery telemetry: carrier-up transitions are recoveries.
  EXPECT_EQ(registry.counter_value("recover.port.a.link_resume"), flaps);
}

TEST(NicFaults, RxOverflowDropsLookLikeAFullRing) {
  TenGbeFiberBed bed;
  const auto spec = mf::FaultSpec::parse("seed=13;rx_overflow@nic.b:p=0.05");
  mf::FaultPlane plane(spec, &bed.events);
  bed.b.install_faults(plane, "nic.b");  // ring stays stored (default)

  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  post_n(bed, mc::make_udp_frame(opts), 1000);

  const auto drops = bed.b.stats().rx_ring_drops;
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(drops, plane.fires_at("nic.b"));
  // The MAC accepted every frame; the loss is behind the ring boundary.
  EXPECT_EQ(bed.b.stats().rx_packets, 1000u);
  EXPECT_EQ(bed.b.rx_queue(0).pending(), 1000u - drops);
}

// ---------------------------------------------------------------------------
// Mempool exhaustion injection and the TX-side retry
// ---------------------------------------------------------------------------

TEST(MempoolFaults, InjectedExhaustionIsCountedAndExported) {
  const auto spec = mf::FaultSpec::parse("seed=11;alloc_fail@pool.tx:p=0.3");
  mf::FaultPlane plane(spec);  // no event queue: pools live on the fast path
  mb::Mempool pool(64);
  pool.install_faults(plane, "pool.tx");
  mt::MetricRegistry registry;
  pool.bind_telemetry(registry, "mempool");

  std::size_t failures = 0;
  std::vector<mb::PktBuf*> bufs(8);
  for (int i = 0; i < 200; ++i) {
    const std::size_t n = pool.alloc_batch({bufs.data(), bufs.size()}, 60);
    if (n == 0) ++failures;
    pool.free_batch({bufs.data(), n});
  }
  EXPECT_GT(failures, 0u);
  // The injection is the only exhaustion source here (the pool never
  // genuinely empties), so all three counts agree exactly.
  EXPECT_EQ(failures, plane.fires_at("pool.tx"));
  EXPECT_EQ(failures, pool.exhausted_events());
  EXPECT_EQ(registry.counter_value("mempool.exhausted"), failures);
}

TEST(MempoolFaults, AllocFullRetriesThroughTransientFailures) {
  const auto spec = mf::FaultSpec::parse("seed=17;alloc_fail@pool.tx:p=0.5");
  mf::FaultPlane plane(spec);
  mb::Mempool pool(256);
  pool.install_faults(plane, "pool.tx");
  mb::BufArray bufs(pool, 16);

  bool saw_retry = false;
  std::size_t full_batches = 0;
  for (int i = 0; i < 50; ++i) {
    const std::size_t n = bufs.alloc_full(60);
    EXPECT_EQ(n + bufs.last_shortfall(), 16u);
    saw_retry = saw_retry || bufs.last_retries() > 0;
    if (bufs.last_shortfall() == 0) ++full_batches;
    bufs.free_all();
  }
  // At p=0.5 roughly half the initial allocations fail; the bounded retry
  // turns nearly all of them into full batches.
  EXPECT_TRUE(saw_retry);
  EXPECT_GT(full_batches, 40u);
}

// ---------------------------------------------------------------------------
// DuT stalls
// ---------------------------------------------------------------------------

TEST(DutFaults, StallsDelayButDoNotLosePackets) {
  ms::EventQueue events;
  mn::Port gen(events, mn::intel_x540(), 10'000, 21);
  mn::Port dut_in(events, mn::intel_x540(), 10'000, 22);
  mn::Port dut_out(events, mn::intel_x540(), 10'000, 23);
  mn::Port sink(events, mn::intel_x540(), 10'000, 24);
  mw::Link l1(gen, dut_in, mw::cat5e_10gbaset(2.0), 25);
  mw::Link l2(dut_out, sink, mw::cat5e_10gbaset(2.0), 26);
  md::Forwarder forwarder(events, dut_in, 0, dut_out, 0);
  sink.rx_queue(0).set_store(false);

  const auto spec = mf::FaultSpec::parse("seed=19;stall@dut.fwd:p=0.2,param=5e7");
  mf::FaultPlane plane(spec, &events);
  forwarder.install_faults(plane, "dut.fwd");

  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  const auto frame = mc::make_udp_frame(opts);
  for (int i = 0; i < 2000;) {
    if (gen.tx_queue(0).post(frame)) {
      ++i;
    } else {
      events.run();
    }
  }
  events.run();

  EXPECT_GT(forwarder.stalls(), 0u);
  EXPECT_EQ(forwarder.stalls(), plane.fires_at("dut.fwd"));
  // Stalls back the ring up but the 4096-slot ring absorbs this load:
  // everything is forwarded eventually.
  EXPECT_EQ(dut_in.stats().rx_ring_drops, 0u);
  EXPECT_EQ(forwarder.forwarded(), 2000u);
  EXPECT_EQ(sink.stats().rx_packets, 2000u);
}

// ---------------------------------------------------------------------------
// Clock faults and the timestamper's resync recovery
// ---------------------------------------------------------------------------

TEST(ClockFaults, DriftChangeIsContinuousAndRestoredAtWindowEnd) {
  TenGbeFiberBed bed;
  auto& clk = bed.a.ptp_clock();
  const auto original_ppb = clk.config().drift_ppb;

  // The rebasing contract, tested directly: the clock value is continuous
  // at the change point, and the new rate applies from there on.
  const double at_change = clk.raw(1'000'000'000);
  clk.set_drift_ppb(original_ppb + 50'000, 1'000'000'000);
  EXPECT_NEAR(clk.raw(1'000'000'000), at_change, 1e-6);
  // One second later the faulty oscillator has gained ~50 us over nominal.
  EXPECT_NEAR(clk.raw(2'000'000'000) - clk.raw(1'000'000'000),
              1e9 + 1e9 * 50'000 * 1e-9, 1.0);
  clk.set_drift_ppb(original_ppb, 1'000'000'000);

  const auto spec =
      mf::FaultSpec::parse("seed=23;clock_drift@clock.a:p=1,param=50000,from=1e9,to=2e9");
  mf::FaultPlane plane(spec, &bed.events);
  plane.arm_clock_faults(clk, "clock.a");

  bed.events.run();  // executes the drift-on and drift-restore events
  EXPECT_EQ(plane.fires_at("clock.a"), 1u);
  // Restored to the pre-fault rate after the window.
  EXPECT_EQ(clk.config().drift_ppb, original_ppb);
}

TEST(ClockFaults, StepForcesTimestamperResync) {
  TenGbeFiberBed bed;
  // +2 ms step on the TX clock at t=5 ms: until the timestamper resyncs,
  // every latency delta would be hugely negative.
  const auto spec = mf::FaultSpec::parse("seed=29;clock_step@clock.a:p=1,param=2e9,from=5e9");
  mf::FaultPlane plane(spec, &bed.events);
  plane.arm_clock_faults(bed.a.ptp_clock(), "clock.a");

  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 100 * ms::kPsPerUs;
  cfg.sync_clocks_each_sample = false;  // the §6.3 resync must be *forced*
  mc::Timestamper ts(bed.events, bed.a, 0, bed.b, mc::make_ptp_ethernet_frame(96), cfg);
  ts.start();
  bed.events.run_until(50 * ms::kPsPerMs);
  ts.stop();
  bed.events.run();

  EXPECT_EQ(plane.fires_at("clock.a"), 1u);
  // One resync recovers from the step (plus at most one for the initial
  // clock offset); afterwards sampling continues normally.
  EXPECT_GE(ts.resyncs(), 1u);
  EXPECT_LE(ts.resyncs(), 2u);
  EXPECT_GT(ts.samples(), 400u);  // ~500 samples in 50 ms minus the failures
}

TEST(TimestamperFaults, LostSamplesEqualInjectedDropsExactly) {
  TenGbeFiberBed bed;
  // The timestamper's probes are the only traffic, so every wire drop is a
  // lost sample and vice versa — satellite check for ISSUE.md.
  const auto spec = mf::FaultSpec::parse("seed=31;loss@wire.ab:p=0.1");
  mf::FaultPlane plane(spec, &bed.events);
  bed.link.install_faults(plane, "wire.ab");

  mt::MetricRegistry registry;
  plane.bind_telemetry(registry);

  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 100 * ms::kPsPerUs;
  cfg.timeout_ps = 1 * ms::kPsPerMs;
  mc::Timestamper ts(bed.events, bed.a, 0, bed.b, mc::make_ptp_ethernet_frame(96), cfg);
  ts.bind_telemetry(registry, "timestamper");
  ts.start();
  bed.events.run_until(200 * ms::kPsPerMs);
  ts.stop();
  bed.events.run();  // drain in-flight probes and pending timeouts

  const auto drops = bed.link.fault_drops();
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(drops, plane.fires_at("wire.ab"));
  EXPECT_EQ(ts.lost(), drops);
  EXPECT_GT(ts.samples(), 0u);
  // Telemetry mirrors agree with the injected counts exactly.
  EXPECT_EQ(registry.counter_value("timestamper.lost"), drops);
  EXPECT_EQ(registry.counter_value("fault.loss.wire.ab"), drops);
  // Lost samples forced resyncs on the following samples.
  EXPECT_EQ(registry.counter_value("recover.timestamper.resync"), ts.resyncs());
}
