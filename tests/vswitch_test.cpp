// Tests for the multi-tenant virtual-switch DuT: match tables, token-bucket
// shaping, strict-priority + DRR egress, VLAN rewrite, frame conservation,
// and the victim-isolation property behind the DDoS scenarios.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "core/rate_control.hpp"
#include "dut/vswitch.hpp"
#include "fault/fault.hpp"
#include "health/health.hpp"
#include "nic/chip.hpp"
#include "proto/packet_view.hpp"
#include "testbed/scenario.hpp"
#include "wire/link.hpp"

namespace mc = moongen::core;
namespace md = moongen::dut;
namespace mf = moongen::fault;
namespace mh = moongen::health;
namespace mn = moongen::nic;
namespace mp = moongen::proto;
namespace ms = moongen::sim;
namespace mtb = moongen::testbed;
namespace mw = moongen::wire;

namespace {

/// Generator -> vswitch ingress; two vports, each cabled to its own sink.
/// `out_mbit` below line rate congests the egress side (scheduler tests).
struct VsBed {
  explicit VsBed(md::VSwitchConfig cfg, std::uint64_t out_mbit = 10'000)
      : out0(events, mn::intel_x540(), out_mbit, 93),
        out1(events, mn::intel_x540(), out_mbit, 94),
        sink0(events, mn::intel_x540(), out_mbit, 95),
        sink1(events, mn::intel_x540(), out_mbit, 96),
        vsw(events, vs_in, 0, {&out0, &out1}, std::move(cfg)) {
    gen_tx.set_tx_sink(&to_vs);
    out0.set_tx_sink(&to_sink0);
    out1.set_tx_sink(&to_sink1);
    sink0.rx_queue(0).set_ring_capacity(10'000'000);
    sink1.rx_queue(0).set_ring_capacity(10'000'000);
  }

  void check_conservation() const {
    EXPECT_EQ(vsw.received(), vsw.matched() + vsw.flooded() + vsw.shaped_drops() +
                                  vsw.queue_drops() + vsw.fault_drops());
    EXPECT_EQ(vsw.matched() + vsw.flooded(),
              vsw.emitted() + vsw.egress_ring_drops() + vsw.queued());
  }

  ms::EventQueue events;
  mn::Port gen_tx{events, mn::intel_x540(), 10'000, 91};
  mn::Port vs_in{events, mn::intel_x540(), 10'000, 92};
  mn::Port out0;
  mn::Port out1;
  mn::Port sink0;
  mn::Port sink1;
  mw::Link to_vs{gen_tx, vs_in, mw::cat5e_10gbaset(2.0), 97};
  mw::Link to_sink0{out0, sink0, mw::cat5e_10gbaset(2.0), 98};
  mw::Link to_sink1{out1, sink1, mw::cat5e_10gbaset(2.0), 99};
  md::VSwitch vsw;
};

mn::Frame tagged_frame(std::uint16_t vid, std::uint8_t pcp = 0, std::size_t size = 128,
                       std::uint16_t udp_dst = 42) {
  mc::UdpTemplateOptions opts;
  opts.frame_size = size;
  opts.udp_dst = udp_dst;
  opts.vlan = true;
  opts.vlan_vid = vid;
  opts.vlan_pcp = pcp;
  return mc::make_udp_frame(opts);
}

md::TenantConfig tenant(std::uint16_t vid, int vport, std::uint8_t priority = 0,
                        double rate_mbit = 0.0) {
  md::TenantConfig t;
  t.vid = vid;
  t.vport = vport;
  t.priority = priority;
  t.rate_mbit = rate_mbit;
  return t;
}

}  // namespace

// ---------------------------------------------------------------------------
// Token-bucket conformance (property test)
// ---------------------------------------------------------------------------

TEST(TokenBucket, NeverExceedsRateTimesTimePlusBurst) {
  // Property: over randomized arrival processes, the bytes admitted in
  // [0, t] never exceed rate * t + burst, for every prefix t — checked
  // against an independent accounting of the elapsed virtual time.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const double rate_mbit = 10.0 + static_cast<double>(rng() % 990);  // 10..1000
    const std::size_t burst = 2'000 + rng() % 30'000;
    md::TokenBucket bucket(rate_mbit, burst);
    const double rate_bytes_per_ps = rate_mbit * 1e6 / 8.0 / 1e12;
    std::uint64_t admitted_bytes = 0;
    ms::SimTime now = 0;
    std::uniform_int_distribution<ms::SimTime> gap(0, 2'000'000);    // 0..2 us
    std::uniform_int_distribution<std::size_t> size(64, 1538);
    for (int i = 0; i < 5'000; ++i) {
      now += gap(rng);
      const std::size_t bytes = size(rng);
      if (bucket.admit(now, bytes)) admitted_bytes += bytes;
      const double bound =
          rate_bytes_per_ps * static_cast<double>(now) + static_cast<double>(burst);
      ASSERT_LE(static_cast<double>(admitted_bytes), bound + 1.0)
          << "trial " << trial << " overran at t=" << now << " ps";
    }
    // The bucket must also do useful work: a long-run saturated arrival
    // process admits at least (rate * t) - one max frame.
    const double floor =
        rate_bytes_per_ps * static_cast<double>(now) - 1538.0;
    EXPECT_GE(static_cast<double>(admitted_bytes) + static_cast<double>(burst), floor)
        << "trial " << trial;
  }
}

TEST(TokenBucket, UnlimitedAdmitsEverything) {
  md::TokenBucket bucket(0.0, 0);
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.admit(0, 1'000'000));
}

TEST(TokenBucket, RefillIsDeterministicFromVirtualTime) {
  // Two buckets fed the identical arrival sequence make identical
  // decisions — no wall-clock, no hidden state.
  md::TokenBucket a(100.0, 5'000);
  md::TokenBucket b(100.0, 5'000);
  std::mt19937_64 rng(11);
  ms::SimTime now = 0;
  for (int i = 0; i < 10'000; ++i) {
    now += rng() % 1'000'000;
    const std::size_t bytes = 64 + rng() % 1474;
    ASSERT_EQ(a.admit(now, bytes), b.admit(now, bytes)) << "diverged at step " << i;
  }
}

// ---------------------------------------------------------------------------
// Match tables and conservation
// ---------------------------------------------------------------------------

TEST(VSwitch, VidTableSwitchesTenantsToTheirVports) {
  md::VSwitchConfig cfg;
  cfg.tenants = {tenant(10, 0), tenant(20, 1)};
  VsBed bed(cfg);
  auto& q = bed.gen_tx.tx_queue(0);
  for (int i = 0; i < 400; ++i) q.post(tagged_frame(i % 2 == 0 ? 10 : 20));
  bed.events.run();
  EXPECT_EQ(bed.vsw.received(), 400u);
  EXPECT_EQ(bed.vsw.matched(), 400u);
  EXPECT_EQ(bed.vsw.flooded(), 0u);
  EXPECT_EQ(bed.sink0.stats().rx_packets, 200u);
  EXPECT_EQ(bed.sink1.stats().rx_packets, 200u);
  EXPECT_EQ(bed.vsw.tenant_counters(0).matched, 200u);
  EXPECT_EQ(bed.vsw.tenant_counters(1).matched, 200u);
  bed.check_conservation();
}

TEST(VSwitch, UnmatchedFramesFloodToTheFloodVport) {
  md::VSwitchConfig cfg;
  cfg.tenants = {tenant(10, 0)};
  cfg.flood_vport = 1;
  VsBed bed(cfg);
  auto& q = bed.gen_tx.tx_queue(0);
  for (int i = 0; i < 100; ++i) q.post(tagged_frame(999));  // unknown VID
  bed.events.run();
  EXPECT_EQ(bed.vsw.matched(), 0u);
  EXPECT_EQ(bed.vsw.flooded(), 100u);
  EXPECT_EQ(bed.sink1.stats().rx_packets, 100u);
  // The flood queue's books live at index tenant_count().
  EXPECT_EQ(bed.vsw.tenant_counters(bed.vsw.tenant_count()).matched, 100u);
  bed.check_conservation();
}

TEST(VSwitch, FiveTupleRuleWinsOverVidTable) {
  md::VSwitchConfig cfg;
  cfg.tenants = {tenant(10, 0), tenant(0, 1)};  // tenant 1: five-tuple only
  VsBed bed(cfg);
  // make_udp_frame defaults: 10.0.0.1 -> 10.1.0.1, UDP 1234 -> opts.udp_dst.
  md::FiveTupleKey key;
  key.src_ip = 0x0A000001;
  key.dst_ip = 0x0A010001;
  key.src_port = 1234;
  key.dst_port = 43;
  key.protocol = 17;
  bed.vsw.add_flow(key, 1);
  auto& q = bed.gen_tx.tx_queue(0);
  for (int i = 0; i < 100; ++i) q.post(tagged_frame(10, 0, 128, 43));  // matches both
  for (int i = 0; i < 100; ++i) q.post(tagged_frame(10, 0, 128, 42));  // VID only
  bed.events.run();
  EXPECT_EQ(bed.vsw.matched(), 200u);
  EXPECT_EQ(bed.sink1.stats().rx_packets, 100u);  // five-tuple rule won
  EXPECT_EQ(bed.sink0.stats().rx_packets, 100u);
  bed.check_conservation();
}

TEST(VSwitch, FiveTupleTableRejectsOverfill) {
  md::VSwitchConfig cfg;
  cfg.tenants = {tenant(10, 0)};
  cfg.five_tuple_capacity = 4;
  VsBed bed(cfg);
  md::FiveTupleKey key;
  key.protocol = 17;
  std::size_t added = 0;
  try {
    for (std::uint32_t i = 0; i < 100; ++i) {
      key.src_ip = i + 1;
      bed.vsw.add_flow(key, 0);
      ++added;
    }
    FAIL() << "table accepted 100 rules at capacity 4";
  } catch (const std::length_error&) {
    EXPECT_GE(added, 4u);  // at least the nominal capacity fits
    EXPECT_LT(added, 100u);
  }
}

// ---------------------------------------------------------------------------
// Shaping
// ---------------------------------------------------------------------------

TEST(VSwitch, TokenBucketShapesTenantToConfiguredRate) {
  md::VSwitchConfig cfg;
  cfg.tenants = {tenant(10, 0, 0, 100.0)};  // 100 Mbit/s of wire bytes
  VsBed bed(cfg);
  auto& q = bed.gen_tx.tx_queue(0);
  q.set_rate_wire_mbit(1'000.0);  // offer 10x the shaped rate
  auto gen = mc::SimLoadGen::hardware_paced(q, tagged_frame(10));
  const double seconds = 0.2;
  bed.events.run_until(static_cast<ms::SimTime>(seconds * 1e12));
  const auto books = bed.vsw.tenant_counters(0);
  const double emitted_mbit =
      static_cast<double>(books.emitted_wire_bytes) * 8.0 / 1e6 / seconds;
  EXPECT_NEAR(emitted_mbit, 100.0, 2.0);  // within 2% incl. startup burst
  EXPECT_GT(books.shaped_drops, 0u);
  bed.check_conservation();
}

// ---------------------------------------------------------------------------
// Egress scheduling
// ---------------------------------------------------------------------------

TEST(VSwitch, StrictPriorityStarvesLowClassUnderCongestion) {
  md::VSwitchConfig cfg;
  cfg.tenants = {tenant(10, 0, /*priority=*/0), tenant(20, 0, /*priority=*/7)};
  VsBed bed(cfg, /*out_mbit=*/1'000);  // 1G vport, 10G ingress
  auto& q = bed.gen_tx.tx_queue(0);
  q.set_rate_wire_mbit(2'000.0);  // 1G per tenant offered, 1G egress total
  auto gen = mc::SimLoadGen::hardware_paced(q, tagged_frame(10, 0));
  std::vector<mn::Frame> templates{tagged_frame(10, 0), tagged_frame(20, 5)};
  gen->set_templates(std::move(templates));
  bed.events.run_until(100 * ms::kPsPerMs);
  const auto high = bed.vsw.tenant_counters(0);
  const auto low = bed.vsw.tenant_counters(1);
  // The high class gets essentially its whole offered load; the low class
  // only leftovers (and its ring overflows).
  EXPECT_GT(high.emitted, 4 * low.emitted);
  EXPECT_GT(low.queue_drops, 0u);
  EXPECT_EQ(high.queue_drops, 0u);
  bed.check_conservation();
}

TEST(VSwitch, DrrSharesClassBandwidthByQuantum) {
  md::TenantConfig heavy = tenant(10, 0, 0);
  heavy.quantum_bytes = 3'200;
  md::TenantConfig light = tenant(20, 0, 0);
  light.quantum_bytes = 1'600;
  md::VSwitchConfig cfg;
  cfg.tenants = {heavy, light};
  VsBed bed(cfg, /*out_mbit=*/1'000);
  auto& q = bed.gen_tx.tx_queue(0);
  q.set_rate_wire_mbit(4'000.0);  // both queues permanently backlogged
  auto gen = mc::SimLoadGen::hardware_paced(q, tagged_frame(10));
  gen->set_templates({tagged_frame(10), tagged_frame(20)});
  bed.events.run_until(100 * ms::kPsPerMs);
  const auto a = bed.vsw.tenant_counters(0);
  const auto b = bed.vsw.tenant_counters(1);
  ASSERT_GT(b.emitted_wire_bytes, 0u);
  const double ratio = static_cast<double>(a.emitted_wire_bytes) /
                       static_cast<double>(b.emitted_wire_bytes);
  EXPECT_NEAR(ratio, 2.0, 0.1);  // 3200:1600 quanta -> 2:1 service
  bed.check_conservation();
}

// ---------------------------------------------------------------------------
// VLAN rewrite
// ---------------------------------------------------------------------------

TEST(VSwitch, PopRemovesTagAndPushRetagsInPlace) {
  md::TenantConfig popper = tenant(10, 0);
  popper.tag = md::TenantConfig::Tag::kPop;
  md::TenantConfig pusher = tenant(20, 1);
  pusher.tag = md::TenantConfig::Tag::kPush;
  pusher.push_vid = 77;
  pusher.push_pcp = 3;
  md::VSwitchConfig cfg;
  cfg.tenants = {popper, pusher};
  VsBed bed(cfg);
  auto& q = bed.gen_tx.tx_queue(0);
  for (int i = 0; i < 10; ++i) q.post(tagged_frame(10));
  for (int i = 0; i < 10; ++i) q.post(tagged_frame(20));
  bed.events.run();

  const auto popped = bed.sink0.rx_queue(0).drain();
  ASSERT_EQ(popped.size(), 10u);
  for (const auto& e : popped) {
    const auto cls = mp::classify({e.frame.data->data(), e.frame.data->size()});
    ASSERT_TRUE(cls.has_value());
    EXPECT_FALSE(cls->has_vlan);
    EXPECT_EQ(cls->ether_type, mp::EtherType::kIPv4);
  }
  const auto pushed = bed.sink1.rx_queue(0).drain();
  ASSERT_EQ(pushed.size(), 10u);
  for (const auto& e : pushed) {
    const auto cls = mp::classify({e.frame.data->data(), e.frame.data->size()});
    ASSERT_TRUE(cls.has_value());
    ASSERT_TRUE(cls->has_vlan);
    EXPECT_EQ(cls->outer_vid, 77u);
    EXPECT_EQ(cls->outer_pcp, 3u);
  }
  bed.check_conservation();
}

TEST(VSwitch, FlowLabelStampedOnForwardedFrames) {
  md::TenantConfig t = tenant(10, 0);
  t.flow = 42;
  md::VSwitchConfig cfg;
  cfg.tenants = {t};
  VsBed bed(cfg);
  auto& q = bed.gen_tx.tx_queue(0);
  for (int i = 0; i < 5; ++i) q.post(tagged_frame(10));
  bed.events.run();
  const auto rx = bed.sink0.rx_queue(0).drain();
  ASSERT_EQ(rx.size(), 5u);
  for (const auto& e : rx) EXPECT_EQ(e.frame.flow, 42u);
}

// ---------------------------------------------------------------------------
// Fault plane
// ---------------------------------------------------------------------------

TEST(VSwitch, ConservationHoldsUnderDropAndStallFaults) {
  md::VSwitchConfig cfg;
  cfg.tenants = {tenant(10, 0), tenant(20, 1, 0, 50.0)};
  auto spec = mf::FaultSpec::parse("loss@vswitch.drop:p=0.05;stall@vswitch.stall:p=0.001");
  VsBed bed(cfg);
  mf::FaultPlane plane(spec, &bed.events);
  bed.vsw.install_faults(plane, "vswitch");
  auto& q = bed.gen_tx.tx_queue(0);
  q.set_rate_wire_mbit(2'000.0);
  auto gen = mc::SimLoadGen::hardware_paced(q, tagged_frame(10));
  gen->set_templates({tagged_frame(10), tagged_frame(20)});
  bed.events.run_until(100 * ms::kPsPerMs);
  EXPECT_GT(bed.vsw.fault_drops(), 0u);
  EXPECT_GT(bed.vsw.received(), 0u);
  bed.check_conservation();
  // Faulted drops must agree with the plane's own fire books.
  EXPECT_EQ(bed.vsw.fault_drops(), plane.fires_at("vswitch.drop"));
}

// ---------------------------------------------------------------------------
// Victim isolation (regression pin) via the Scenario + RTT-plane path
// ---------------------------------------------------------------------------

namespace {

/// Victim (vid 10, CBR 100 Mbit) and attacker (vid 20) share one vport.
/// Returns the victim's cumulative p99 RTT in ns from its RTT-plane flow
/// group. `attack_mbit` 0 = idle attacker; `shaped` polices the attacker
/// to 100 Mbit.
std::uint64_t victim_p99_ns(double attack_mbit, bool shaped) {
  md::TenantConfig victim;
  victim.vid = 10;
  victim.vport = 0;
  victim.priority = 0;
  victim.flow = 1;
  md::TenantConfig attacker;
  attacker.vid = 20;
  attacker.vport = 0;
  attacker.priority = 0;
  attacker.flow = 2;
  if (shaped) attacker.rate_mbit = 100.0;
  md::VSwitchConfig cfg;
  cfg.tenants = {victim, attacker};
  auto tb = mtb::Scenario()
                .seed(1)
                .rtt_groups(4)
                .device(0, mn::intel_x540()).name("gen").with_seed(1)
                .device(1, mn::intel_x540()).name("vs_in").with_seed(2).rtt_record(false)
                .device(2, mn::intel_x540()).name("vport").with_seed(3)
                    .link_mbit(1'000).rtt_record(false)
                .device(3, mn::intel_x540()).name("sink").with_seed(4)
                    .link_mbit(1'000).rx_store(false)
                .link(0, 1).with_seed(5)
                .link(2, 3).with_seed(6)
                .vswitch(1, {2}, cfg)
                .couple(0, 3)
                .build();
  auto& q0 = tb->port("gen").tx_queue(0);
  q0.set_rate_wire_mbit(100.0);
  auto victim_gen = mc::SimLoadGen::hardware_paced(q0, tagged_frame(10));
  std::unique_ptr<mc::SimLoadGen> attack_gen;
  if (attack_mbit > 0.0) {
    auto& q1 = tb->port("gen").tx_queue(1);
    q1.set_rate_wire_mbit(attack_mbit);
    attack_gen = mc::SimLoadGen::hardware_paced(q1, tagged_frame(20));
  }
  tb->run_until(200 * ms::kPsPerMs);
  return tb->rtt_plane().cumulative_group(1).percentile(99.0);
}

}  // namespace

TEST(VSwitch, ShapingIsolatesVictimFromAttackerFlood) {
  // Regression pin for the DDoS scenarios: with the attacker policed, the
  // victim's p99 under a 8x-overload flood stays within 3x of its
  // attacker-idle p99. Without policing the flood saturates the shared 1G
  // vport and the victim's p99 explodes (sanity-checked too).
  const std::uint64_t idle = victim_p99_ns(0.0, false);
  const std::uint64_t shaped = victim_p99_ns(8'000.0, true);
  const std::uint64_t unshaped = victim_p99_ns(8'000.0, false);
  ASSERT_GT(idle, 0u);
  EXPECT_LE(shaped, 3 * idle) << "idle p99 " << idle << " ns, shaped-attack p99 " << shaped;
  EXPECT_GT(unshaped, 5 * idle) << "unshaped attacker should congest the shared vport";
}

// ---------------------------------------------------------------------------
// Health-plane checker
// ---------------------------------------------------------------------------

TEST(VSwitch, HealthCheckerPassesOnLiveTestbedAndSeesBooks) {
  md::VSwitchConfig cfg;
  cfg.tenants = {tenant(10, 0)};
  auto tb = mtb::Scenario()
                .seed(1)
                .device(0, mn::intel_x540()).name("gen").with_seed(1)
                .device(1, mn::intel_x540()).name("vs_in").with_seed(2).rtt_record(false)
                .device(2, mn::intel_x540()).name("vport").with_seed(3).rtt_record(false)
                .device(3, mn::intel_x540()).name("sink").with_seed(4).rx_store(false)
                .link(0, 1).with_seed(5)
                .link(2, 3).with_seed(6)
                .vswitch(1, {2}, cfg)
                .couple(0, 3)
                .build();
  auto check = mh::make_vswitch_checker(*tb);
  auto& q = tb->port("gen").tx_queue(0);
  q.set_rate_wire_mbit(500.0);
  auto gen = mc::SimLoadGen::hardware_paced(q, tagged_frame(10));
  for (int step = 1; step <= 5; ++step) {
    tb->run_until(step * 10 * ms::kPsPerMs);
    const auto r = check(tb->now());
    EXPECT_TRUE(r.ok) << r.detail;
  }
  EXPECT_GT(tb->vswitch().matched(), 0u);
}
