// Shared fixtures for simulation tests: capture sinks and pre-wired
// testbeds matching the paper's setups.
#pragma once

#include <utility>
#include <vector>

#include "nic/chip.hpp"
#include "nic/frame.hpp"
#include "nic/port.hpp"
#include "sim/event_queue.hpp"
#include "wire/link.hpp"
#include "wire/recorder.hpp"

namespace moongen::test {

/// Records every transmitted frame with its TX start time.
struct CaptureSink : nic::FrameSink {
  std::vector<std::pair<nic::Frame, sim::SimTime>> frames;
  void on_frame(const nic::Frame& frame, sim::SimTime tx_start_ps) override {
    frames.emplace_back(frame, tx_start_ps);
  }
};

/// The Table 4 testbed: an X540 transmitting at GbE into an 82580 that
/// timestamps every received packet with 64 ns precision.
struct GbeInterArrivalBed {
  sim::EventQueue events;
  nic::Port tx{events, nic::intel_x540(), 1'000, 101};
  nic::Port rx{events, nic::intel_82580(), 1'000, 202};
  wire::Link link{tx, rx, wire::cat5e_gbe(2.0), 303};
  wire::InterArrivalRecorder recorder{rx, 0};
};

/// Two 10 GbE ports connected by fiber (the Table 3 82599 loopback bed).
struct TenGbeFiberBed {
  explicit TenGbeFiberBed(double cable_m = 2.0)
      : link(a, b, wire::fiber_om3(cable_m), 17) {}
  sim::EventQueue events;
  nic::Port a{events, nic::intel_82599(), 10'000, 11};
  nic::Port b{events, nic::intel_82599(), 10'000, 22};
  wire::Link link;
};

}  // namespace moongen::test
