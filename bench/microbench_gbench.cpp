// Google-benchmark microbenchmarks of the fast-path primitives.
//
// These complement the paper-table harnesses: per-operation timings for the
// building blocks the per-packet cost decomposition (Section 5.6) is made
// of, in a form suited for regression tracking.
#include <benchmark/benchmark.h>

#include "core/device.hpp"
#include "core/field_modifier.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "proto/checksum.hpp"
#include "proto/crc32.hpp"
#include "proto/packet_view.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mp = moongen::proto;

namespace {

mb::Mempool::InitFn udp_prefill(std::size_t size) {
  return [size](mb::PktBuf& buf) {
    buf.set_length(size);
    mp::UdpPacketView view{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = size;
    view.fill(opts);
  };
}

void BM_MempoolAllocFree(benchmark::State& state) {
  mb::Mempool pool(4096, udp_prefill(60));
  mb::BufArray bufs(pool, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bufs.alloc(60);
    bufs.free_all();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MempoolAllocFree)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

// Multi-threaded alloc/free on ONE pool: measures the spinlock under
// contention (the PAUSE-backoff path; threads > 1 only exercises true
// contention on multi-core hosts). Batch of 64 mirrors the device burst
// size, so the lock is taken once per 64 buffers.
void BM_MempoolContention(benchmark::State& state) {
  static mb::Mempool* pool = nullptr;
  if (state.thread_index() == 0) pool = new mb::Mempool(8192, udp_prefill(60));
  constexpr std::size_t kBatch = 64;
  mb::PktBuf* bufs[kBatch];
  for (auto _ : state) {
    const std::size_t n = pool->alloc_batch({bufs, kBatch}, 60);
    benchmark::DoNotOptimize(n);
    pool->free_batch({bufs, n});
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatch));
  if (state.thread_index() == 0) {
    delete pool;
    pool = nullptr;
  }
}
BENCHMARK(BM_MempoolContention)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

void BM_TxSend(benchmark::State& state) {
  auto& dev = mc::Device::config(0, 1, 1);
  dev.disconnect();
  auto& queue = dev.get_tx_queue(0);
  mb::Mempool pool(4096, udp_prefill(60));
  mb::BufArray bufs(pool, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bufs.alloc(60);
    queue.send(bufs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TxSend)->Arg(1)->Arg(64)->Arg(256);

void BM_UdpFill(benchmark::State& state) {
  std::vector<std::uint8_t> frame(128, 0);
  mp::UdpPacketView view{{frame.data(), 124}};
  mp::UdpFillOptions opts;
  opts.packet_length = 124;
  for (auto _ : state) {
    view.fill(opts);
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UdpFill);

void BM_Ipv4Checksum(benchmark::State& state) {
  std::vector<std::uint8_t> frame(64, 0);
  mp::UdpPacketView view{{frame.data(), 60}};
  view.fill(mp::UdpFillOptions{});
  for (auto _ : state) {
    mp::update_ipv4_checksum(view.ip());
    benchmark::DoNotOptimize(static_cast<std::uint16_t>(view.ip().header_checksum_be));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ipv4Checksum);

void BM_UdpSoftwareChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> frame(static_cast<std::size_t>(state.range(0)), 0);
  mp::UdpPacketView view{{frame.data(), frame.size()}};
  mp::UdpFillOptions opts;
  opts.packet_length = frame.size();
  view.fill(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mp::udp_checksum_ipv4(view.ip(), view.l4_bytes()));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UdpSoftwareChecksum)->Arg(60)->Arg(124)->Arg(1514);

void BM_EthernetCrc32(benchmark::State& state) {
  std::vector<std::uint8_t> frame(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mp::crc32(frame));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EthernetCrc32)->Arg(64)->Arg(1518);

void BM_TauswortheDraw(benchmark::State& state) {
  mc::Tausworthe rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TauswortheDraw);

void BM_LcgDraw(benchmark::State& state) {
  mc::Lcg rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LcgDraw);

void BM_ModifierProgram(benchmark::State& state) {
  std::vector<mc::FieldAction> actions;
  for (int i = 0; i < state.range(0); ++i) {
    actions.push_back({.field = {static_cast<std::uint16_t>(26 + 4 * i), 4},
                       .kind = mc::FieldAction::Kind::kRandom});
  }
  mc::ModifierProgram prog(std::move(actions));
  std::uint8_t pkt[128] = {};
  for (auto _ : state) {
    prog.apply(pkt);
    benchmark::DoNotOptimize(pkt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModifierProgram)->Arg(1)->Arg(4)->Arg(8);

void BM_Classify(benchmark::State& state) {
  std::vector<std::uint8_t> frame(64, 0);
  mp::UdpPacketView view{{frame.data(), 60}};
  view.fill(mp::UdpFillOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(mp::classify({frame.data(), 60}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Classify);

}  // namespace

BENCHMARK_MAIN();
