// Reproduces Table 1: per-packet costs of basic operations (cycles/pkt).
//
// Paper values (Intel Xeon E5-2620 v3):
//   Packet transmission                 76.0 +- 0.8
//   Packet modification                  9.1 +- 1.2
//   Packet modification (two cachelines) 15.0 +- 1.3
//   IP checksum offloading              15.2 +- 1.2
//   UDP checksum offloading             33.1 +- 3.5
//   TCP checksum offloading             34.0 +- 3.3
//
// "Packet transmission" is the IO baseline (allocate a batch, send it
// untouched); the other rows are the *additional* cost of that operation on
// top of the baseline, measured exactly as in Section 5.6.1 — here with
// paired (interleaved) runs so machine drift cancels. Absolute numbers
// depend on the host CPU; the reproduced result is the shape: the IO
// baseline dominates, same-cacheline writes are nearly free, extra
// cachelines cost more, and L4 offloading (pseudo-header sums) costs more
// than IP offloading (descriptor flags only).
#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "core/device.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "proto/packet_view.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mp = moongen::proto;
using moongen::bench::measure_cycles_delta;
using moongen::bench::measure_cycles_per_packet;
using moongen::stats::RunningStats;

namespace {

constexpr std::uint64_t kPacketsPerRep = 256 * 1024;
constexpr std::size_t kBatch = 64;

/// One benchmark configuration: a device queue plus a pre-filled pool.
struct Fixture {
  explicit Fixture(std::size_t pkt_size, bool tcp = false)
      : size(pkt_size),
        dev(mc::Device::config(0, 1, 1)),
        pool(4096,
             [pkt_size, tcp](mb::PktBuf& buf) {
               buf.set_length(pkt_size);
               if (tcp) {
                 mp::TcpPacketView view{buf.bytes()};
                 mp::TcpFillOptions opts;
                 opts.packet_length = pkt_size;
                 view.fill(opts);
               } else {
                 mp::UdpPacketView view{buf.bytes()};
                 mp::UdpFillOptions opts;
                 opts.packet_length = pkt_size;
                 view.fill(opts);
               }
             }),
        bufs(pool, kBatch) {
    dev.disconnect();
    dev.get_tx_queue(0).reset();  // previous fixture's pool is gone
  }

  /// Returns a loop body sending kPacketsPerRep packets with `touch`
  /// applied per batch.
  std::function<std::uint64_t()> loop(std::function<void(mb::BufArray&)> touch = {}) {
    return [this, touch = std::move(touch)]() -> std::uint64_t {
      auto& queue = dev.get_tx_queue(0);
      std::uint64_t sent = 0;
      while (sent < kPacketsPerRep) {
        bufs.alloc(size);
        if (touch) touch(bufs);
        sent += queue.send(bufs);
      }
      return sent;
    };
  }

  std::size_t size;
  mc::Device& dev;
  mb::Mempool pool;
  mb::BufArray bufs;
};

void print_delta(const char* label, const RunningStats& delta) {
  std::printf("  %-40s %8.1f +- %4.1f\n", label, delta.mean(), delta.stddev());
}

}  // namespace

int main() {
  moongen::bench::pin_measurement_thread();
  std::printf("Table 1: Per-packet costs of basic operations [cycles/pkt]\n");
  std::printf("(paper: TX 76.0, mod 9.1, mod-2-cachelines 15.0, IP 15.2, UDP 33.1, TCP 34.0)\n\n");

  {
    Fixture fx(60);
    const auto tx = measure_cycles_per_packet(fx.loop());
    std::printf("  %-40s %8.1f +- %4.1f\n", "Packet transmission (baseline)", tx.mean(),
                tx.stddev());
  }
  {
    Fixture fx(60);
    print_delta("Packet modification",
                measure_cycles_delta(fx.loop(), fx.loop([](mb::BufArray& bufs) {
                  for (auto* buf : bufs) {
                    mp::UdpPacketView view{buf->bytes()};
                    view.ip().src_be = mp::hton32(0x0a000001);
                  }
                })));
  }
  {
    Fixture fx(124);
    print_delta("Packet modification (two cachelines)",
                measure_cycles_delta(fx.loop([](mb::BufArray& bufs) {
                  for (auto* buf : bufs) {
                    mp::UdpPacketView view{buf->bytes()};
                    view.ip().src_be = mp::hton32(0x0a000001);
                  }
                }),
                                     fx.loop([](mb::BufArray& bufs) {
                                       for (auto* buf : bufs) {
                                         mp::UdpPacketView view{buf->bytes()};
                                         view.ip().src_be = mp::hton32(0x0a000001);
                                         buf->data()[96] = 0x5a;  // second cacheline
                                       }
                                     })));
  }
  {
    Fixture fx(60);
    print_delta("IP checksum offloading",
                measure_cycles_delta(fx.loop(), fx.loop([](mb::BufArray& bufs) {
                  bufs.offload_ip_checksums();
                })));
  }
  {
    Fixture fx(60);
    print_delta("UDP checksum offloading",
                measure_cycles_delta(fx.loop(), fx.loop([](mb::BufArray& bufs) {
                  bufs.offload_udp_checksums();
                })));
  }
  {
    Fixture fx(60, /*tcp=*/true);
    print_delta("TCP checksum offloading",
                measure_cycles_delta(fx.loop(), fx.loop([](mb::BufArray& bufs) {
                  bufs.offload_tcp_checksums();
                })));
  }

  // Ablation (DESIGN.md): batch size sweep for the IO baseline — batching
  // is what makes the cheap IO baseline possible at all (Section 4.2).
  std::printf("\nAblation: IO baseline vs. TX batch size [cycles/pkt]\n");
  for (std::size_t batch : {1u, 4u, 16u, 64u, 256u}) {
    Fixture fx(60);
    mb::BufArray bufs(fx.pool, batch);
    auto& queue = fx.dev.get_tx_queue(0);
    const auto s = measure_cycles_per_packet([&]() -> std::uint64_t {
      std::uint64_t sent = 0;
      while (sent < kPacketsPerRep / 4) {
        bufs.alloc(60);
        sent += queue.send(bufs);
      }
      return sent;
    });
    std::printf("  batch %3zu: %8.1f +- %4.1f\n", batch, s.mean(), s.stddev());
  }

  // Section 5.7: per-packet costs are independent of the packet size when
  // the contents are not modified.
  std::printf("\nEffects of packet size (Section 5.7): alloc+send, no modification\n");
  for (std::size_t size : {60u, 64u, 80u, 96u, 112u, 124u, 252u, 508u, 1020u, 1514u}) {
    Fixture fx(size);
    const auto s = measure_cycles_per_packet(fx.loop());
    std::printf("  %4zu B frame: %8.1f +- %4.1f cycles/pkt\n", size + 4, s.mean(), s.stddev());
  }
  std::printf("\n(TSC frequency: %.2f GHz)\n", moongen::bench::tsc_ghz());
  return 0;
}
