// Reproduces Table 4 (rate control measurements) and Figure 8 (histograms
// of inter-arrival times).
//
// Testbed (Section 7.3): generators transmit 64 B frames at GbE through an
// X540; an Intel 82580 timestamps every received packet with 64 ns
// precision. Compared mechanisms at 500 kpps and 1000 kpps:
//   MoonGen     — hardware rate control (Section 7.2)
//   Pktgen-DPDK — software deadline pacing, one descriptor per packet
//   zsend       — software pacing with coarse wakeups (burst bug)
//
// Paper (Table 4):
//   rate     generator    bursts  +-64ns +-128ns +-256ns +-512ns
//   500kpps  MoonGen       0.02%   49.9%   74.9%   99.8%   99.8%
//            Pktgen-DPDK   0.01%   37.7%   72.3%   92.0%   94.5%
//            zsend        28.6%     3.9%    5.4%    6.4%   13.8%
//   1000kpps MoonGen       1.2%    50.5%   52.0%   97.0%  100.0%
//            Pktgen-DPDK  14.2%    36.7%   58.0%   70.6%   95.9%
//            zsend        52.0%     4.6%    7.9%   24.2%   88.1%
#include <cstdio>
#include <string>

#include "baseline/sw_paced.hpp"
#include "core/rate_control.hpp"
#include "sim_beds.hpp"

namespace mb = moongen::baseline;
namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;

namespace {

mn::Frame frame64() {
  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  return mc::make_udp_frame(opts);
}

struct Row {
  std::string name;
  double bursts, w64, w128, w256, w512;
  moongen::stats::Histogram hist{64'000, 20'000'000};
};

Row measure(const std::string& name, double mpps, int generator,
            std::uint64_t target_packets) {
  moongen::bench::GbeBed bed;
  const ms::SimTime duration =
      static_cast<ms::SimTime>(static_cast<double>(target_packets) / (mpps * 1e6) * 1e12);

  std::unique_ptr<mc::SimLoadGen> gen;
  std::unique_ptr<mb::PktgenLikePacer> pktgen;
  std::unique_ptr<mb::ZsendLikePacer> zsend;
  switch (generator) {
    case 0: {  // MoonGen: hardware rate control, queue kept full
      auto& q = bed.tx.tx_queue(0);
      q.set_rate_mpps(mpps, 64);
      gen = mc::SimLoadGen::hardware_paced(q, frame64());
      break;
    }
    case 1:
      pktgen = std::make_unique<mb::PktgenLikePacer>(bed.events, bed.tx.tx_queue(0), frame64(),
                                                     mb::PktgenLikePacer::Config{.mpps = mpps});
      pktgen->start();
      break;
    default:
      zsend = std::make_unique<mb::ZsendLikePacer>(bed.events, bed.tx.tx_queue(0), frame64(),
                                                   mb::ZsendLikePacer::Config{.mpps = mpps});
      zsend->start();
      break;
  }
  bed.events.run_until(duration);

  const auto target = static_cast<ms::SimTime>(1e6 / mpps);
  Row row;
  row.name = name;
  row.bursts = bed.recorder.micro_burst_fraction() * 100.0;
  row.w64 = bed.recorder.fraction_within(target, 64'000) * 100.0;
  row.w128 = bed.recorder.fraction_within(target, 128'000) * 100.0;
  row.w256 = bed.recorder.fraction_within(target, 256'000) * 100.0;
  row.w512 = bed.recorder.fraction_within(target, 512'000) * 100.0;
  row.hist.merge(bed.recorder.histogram());
  return row;
}

void print_figure8(const Row& row, double mpps) {
  std::printf("\n  Figure 8 histogram — %s @ %.0f kpps (64 ns bins, bars ~ probability):\n",
              row.name.c_str(), mpps * 1e3);
  const auto& h = row.hist;
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    if (h.bin(i) == 0) continue;
    const double frac = static_cast<double>(h.bin(i)) / static_cast<double>(h.total());
    if (frac < 0.005) continue;
    std::printf("    %6.2f us |", static_cast<double>(h.bin_lower(i)) / 1e6);
    const int bar = static_cast<int>(frac * 80);
    for (int b = 0; b < bar; ++b) std::printf("#");
    std::printf(" %.1f%%\n", frac * 100.0);
  }
}

}  // namespace

int main() {
  const auto packets =
      static_cast<std::uint64_t>(1'000'000 * moongen::bench::bench_scale());
  std::printf("Table 4: Rate control measurements (GbE, 82580 capture, %llu packets/run)\n",
              static_cast<unsigned long long>(packets));

  for (double mpps : {0.5, 1.0}) {
    std::printf("\n%.0f kpps:\n", mpps * 1e3);
    std::printf("  %-22s %12s %8s %8s %8s %8s\n", "Generator", "Micro-Bursts", "+-64ns",
                "+-128ns", "+-256ns", "+-512ns");
    Row rows[3] = {
        measure("MoonGen (HW rate ctl)", mpps, 0, packets),
        measure("Pktgen-DPDK-like", mpps, 1, packets),
        measure("zsend-like", mpps, 2, packets),
    };
    for (const auto& row : rows) {
      std::printf("  %-22s %11.2f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", row.name.c_str(),
                  row.bursts, row.w64, row.w128, row.w256, row.w512);
    }
    for (const auto& row : rows) print_figure8(row, mpps);
  }
  return 0;
}
