// Reproduces Figure 7: interrupt rate of a Linux/Open vSwitch forwarder
// under increasing load, generated with MoonGen (clean CBR) vs zsend
// (micro-bursts).
//
// Section 7.4: the micro-bursts of zsend trigger the driver's interrupt
// moderation much earlier than expected, so the DuT shows a *low* interrupt
// rate under bursty load — evidence that bad rate control measurably
// changes the behaviour of the tested system. MoonGen's smooth CBR yields
// an interrupt rate that rises with the offered load until NAPI polling
// takes over near saturation.
#include <cstdio>

#include "baseline/sw_paced.hpp"
#include "core/rate_control.hpp"
#include "sim_beds.hpp"

namespace mb = moongen::baseline;
namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;

namespace {

mn::Frame frame64() {
  mc::UdpTemplateOptions opts;
  opts.frame_size = 60;
  return mc::make_udp_frame(opts);
}

double interrupt_rate(double mpps, bool bursty, ms::SimTime duration) {
  moongen::bench::DutBed bed;
  std::unique_ptr<mc::SimLoadGen> gen;
  std::unique_ptr<mb::ZsendLikePacer> zsend;
  if (!bursty) {
    auto& q = bed.gen_tx.tx_queue(0);
    q.set_rate_mpps(mpps, 64);
    gen = mc::SimLoadGen::hardware_paced(q, frame64());
  } else {
    zsend = std::make_unique<mb::ZsendLikePacer>(bed.events, bed.gen_tx.tx_queue(0), frame64(),
                                                 mb::ZsendLikePacer::Config{.mpps = mpps});
    zsend->start();
  }
  bed.events.run_until(duration);
  return static_cast<double>(bed.forwarder.interrupts()) / ms::to_seconds(duration);
}

}  // namespace

int main() {
  const auto duration =
      static_cast<ms::SimTime>(100.0 * moongen::bench::bench_scale()) * ms::kPsPerMs;
  std::printf("Figure 7: DuT interrupt rate vs offered load (%.0f ms per point)\n",
              ms::to_seconds(duration) * 1e3);
  std::printf("(paper: MoonGen's CBR load drives the interrupt rate up to ~1.5e5 Hz;\n");
  std::printf(" zsend's micro-bursts keep it low across the whole range)\n\n");

  std::printf("  %-14s %22s %22s\n", "load [Mpps]", "MoonGen load [int/s]", "zsend load [int/s]");
  for (double mpps : {0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}) {
    const double smooth = interrupt_rate(mpps, false, duration);
    const double bursts = interrupt_rate(mpps, true, duration);
    std::printf("  %-14.2f %22.0f %22.0f\n", mpps, smooth, bursts);
  }
  return 0;
}
