// Pre-wired simulation testbeds shared by the benchmark harnesses,
// mirroring the paper's physical setups (Section 9).
#pragma once

#include <cstdlib>
#include <memory>

#include "dut/forwarder.hpp"
#include "nic/chip.hpp"
#include "nic/port.hpp"
#include "sim/event_queue.hpp"
#include "wire/link.hpp"
#include "wire/recorder.hpp"

namespace moongen::bench {

/// Scale factor for simulated experiment durations / sample counts, set
/// via the MOONGEN_BENCH_SCALE environment variable (default 1.0; larger
/// values re-run the experiments closer to the paper's packet counts).
inline double bench_scale() {
  static const double scale = [] {
    const char* env = std::getenv("MOONGEN_BENCH_SCALE");
    const double v = env != nullptr ? std::atof(env) : 1.0;
    return v > 0 ? v : 1.0;
  }();
  return scale;
}

/// The Table 4 / Figure 8 testbed: X540 transmitting at GbE, Intel 82580
/// receiving and timestamping every packet with 64 ns precision.
struct GbeBed {
  sim::EventQueue events;
  nic::Port tx{events, nic::intel_x540(), 1'000, 1001};
  nic::Port rx{events, nic::intel_82580(), 1'000, 1002};
  wire::Link link{tx, rx, wire::cat5e_gbe(2.0), 1003};
  wire::InterArrivalRecorder recorder{rx, 0};
};

/// The Open vSwitch DuT testbed of Sections 7.4 / 8.2 / 8.3:
/// generator TX port -> DuT in -> (forwarder) -> DuT out -> generator RX.
struct DutBed {
  explicit DutBed(dut::ForwarderConfig cfg = {})
      : forwarder(events, dut_in, 0, dut_out, 0, cfg) {
    sink.rx_queue(0).set_store(false);  // latency samples come via PTP stamps
  }

  sim::EventQueue events;
  nic::Port gen_tx{events, nic::intel_x540(), 10'000, 2001};
  nic::Port dut_in{events, nic::intel_x540(), 10'000, 2002};
  nic::Port dut_out{events, nic::intel_x540(), 10'000, 2003};
  nic::Port sink{events, nic::intel_x540(), 10'000, 2004};
  wire::Link to_dut{gen_tx, dut_in, wire::cat5e_10gbaset(2.0), 2005};
  wire::Link to_sink{dut_out, sink, wire::cat5e_10gbaset(2.0), 2006};
  dut::Forwarder forwarder;
};

}  // namespace moongen::bench
