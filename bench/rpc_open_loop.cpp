// rpc_open_loop: the RPC plane's two headline claims, measured.
//
//  1. Tail separation: at the same offered load near saturation, the
//     open-loop generator reports a p99 far above the closed-loop one —
//     the closed loop's N users self-throttle when the server slows, so
//     queueing delay never reaches its measurement (coordinated
//     omission). The run FAILS if open p99 <= closed p99.
//
//  2. Scale: an open-loop run is pushed past a slow server's capacity
//     until more than a million requests are simultaneously in flight,
//     while a global operator-new counter verifies the steady state
//     performs zero heap allocations — frame buffers come from the
//     round-robin pool, the in-flight table is flat and preallocated,
//     and every event closure fits the engine's inline budget. The run
//     FAILS on any allocation inside the measured window or if the peak
//     stays below one million.
//
// Results are written as BENCH_rpc_open_loop.json.
//
// Usage: rpc_open_loop [json_path]
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "nic/chip.hpp"
#include "rpc/open_loop.hpp"
#include "rpc/server_model.hpp"
#include "testbed/scenario.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (this TU replaces operator new for the whole
// binary; the delta across the steady-state window must be zero).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size > 0 ? size : 1) != 0)
    throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace mn = moongen::nic;
namespace mr = moongen::rpc;
namespace ms = moongen::sim;
namespace mtb = moongen::testbed;

namespace {

std::unique_ptr<mtb::Testbed> make_pair_bed() {
  // One client -> server pair on a single engine; determinism across
  // repeats is covered by tests, this binary measures.
  return mtb::Scenario()
      .seed(1)
      .shards(1)
      .telemetry(false)
      .device(0, mn::intel_x540()).name("client").with_seed(10).rx_store(false)
      .device(1, mn::intel_x540()).name("server").with_seed(20).rx_store(false)
      .link(0, 1).with_seed(30).duplex()
      .build();
}

// ---------------------------------------------------------------------------
// Part 1: open vs. closed p99 at the same offered load near saturation.
// ---------------------------------------------------------------------------

struct TailResult {
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t samples = 0;
  std::uint64_t issued = 0;
};

constexpr double kTailOfferedRps = 120'000.0;  // server capacity: 125 krps
constexpr double kTailServiceUs = 8.0;
constexpr ms::SimTime kTailEndPs = 600 * ms::kPsPerMs;

TailResult run_tail(bool closed) {
  auto tb = make_pair_bed();
  mr::ServerConfig sc;
  sc.workers = 1;
  sc.service = mr::ServerConfig::Service::kExponential;
  sc.service_mean_ps = kTailServiceUs * static_cast<double>(ms::kPsPerUs);
  sc.seed = 7;
  mr::ServerModel server(tb->port("server"), sc);

  mr::LatencyRecorder recorder;
  mr::WorkloadConfig wc;
  wc.offered_rps = kTailOfferedRps;
  wc.seed = 42;
  wc.warmup_ps = 60 * ms::kPsPerMs;
  wc.cooldown_ps = 30 * ms::kPsPerMs;
  std::unique_ptr<mr::OpenLoopGenerator> open;
  std::unique_ptr<mr::ClosedLoopGenerator> closed_gen;
  if (closed) {
    mr::ClosedLoopConfig cc;
    cc.users = 24;
    cc.think_mean_ps = static_cast<double>(cc.users) / kTailOfferedRps * 1e12;  // 200 us
    closed_gen = std::make_unique<mr::ClosedLoopGenerator>(tb->port("client"), recorder, wc, cc);
    closed_gen->start(0, kTailEndPs);
  } else {
    open = std::make_unique<mr::OpenLoopGenerator>(tb->port("client"), recorder, wc);
    open->start(0, kTailEndPs);
  }
  tb->run_until(kTailEndPs + 20 * ms::kPsPerMs);

  TailResult out;
  out.p50_ns = recorder.p50_ns();
  out.p99_ns = recorder.p99_ns();
  out.samples = recorder.count();
  out.issued = closed ? closed_gen->issued() : open->issued();
  return out;
}

// ---------------------------------------------------------------------------
// Part 2: a million requests in flight, zero steady-state allocations.
// ---------------------------------------------------------------------------

struct ScaleResult {
  std::size_t peak_inflight = 0;
  std::uint64_t issued = 0;
  std::uint64_t send_drops = 0;
  std::uint64_t steady_allocs = 0;
  double wall_ms = 0;
};

ScaleResult run_scale() {
  auto tb = make_pair_bed();
  mr::ServerConfig sc;
  sc.workers = 1;
  sc.service = mr::ServerConfig::Service::kFixed;
  sc.service_mean_ps = 100.0 * static_cast<double>(ms::kPsPerUs);  // 10 krps capacity
  sc.queue_capacity = 1 << 15;
  sc.seed = 7;
  mr::ServerModel server(tb->port("server"), sc);

  mr::LatencyRecorder recorder;
  mr::WorkloadConfig wc;
  wc.offered_rps = 8e6;      // ~2/3 of 80 B line rate, 800x server capacity
  wc.frame_size = 80;        // RPC header stack is 74 B
  wc.inflight_expected = 1 << 20;  // table: 2M slots, 64 MiB, flat
  wc.pool_frames = 4096;
  wc.seed = 42;
  mr::OpenLoopGenerator gen(tb->port("client"), recorder, wc);

  constexpr ms::SimTime kWarmPs = 30 * ms::kPsPerMs;   // ~240k in flight
  constexpr ms::SimTime kEndPs = 150 * ms::kPsPerMs;   // ~1.2M issued
  gen.start(0, kEndPs);
  tb->run_until(kWarmPs);

  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  tb->run_until(kEndPs);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);

  ScaleResult out;
  out.peak_inflight = gen.peak_inflight();
  out.issued = gen.issued();
  out.send_drops = gen.send_drops();
  out.steady_allocs = allocs_after - allocs_before;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_rpc_open_loop.json";

  std::printf("rpc_open_loop part 1: open vs closed at %.0f krps offered "
              "(capacity %.0f krps)\n",
              kTailOfferedRps / 1e3, 1e3 / kTailServiceUs);
  const TailResult open = run_tail(/*closed=*/false);
  const TailResult closed = run_tail(/*closed=*/true);
  std::printf("  open:   p50 %7.1f us  p99 %7.1f us  (%llu samples)\n",
              static_cast<double>(open.p50_ns) / 1e3, static_cast<double>(open.p99_ns) / 1e3,
              static_cast<unsigned long long>(open.samples));
  std::printf("  closed: p50 %7.1f us  p99 %7.1f us  (%llu samples)\n",
              static_cast<double>(closed.p50_ns) / 1e3, static_cast<double>(closed.p99_ns) / 1e3,
              static_cast<unsigned long long>(closed.samples));
  if (open.p99_ns <= closed.p99_ns) {
    std::fprintf(stderr, "FATAL: open-loop p99 (%llu ns) <= closed-loop p99 (%llu ns)\n",
                 static_cast<unsigned long long>(open.p99_ns),
                 static_cast<unsigned long long>(closed.p99_ns));
    return 1;
  }
  std::printf("  open-loop tail exceeds closed-loop tail (x%.1f at p99)\n\n",
              static_cast<double>(open.p99_ns) / static_cast<double>(closed.p99_ns));

  std::printf("rpc_open_loop part 2: 8 Mrps into a 10 krps server, 120 ms measured\n");
  const ScaleResult scale = run_scale();
  std::printf("  peak in-flight %zu, issued %llu, steady-state allocations %llu, "
              "wall %.0f ms\n",
              scale.peak_inflight, static_cast<unsigned long long>(scale.issued),
              static_cast<unsigned long long>(scale.steady_allocs), scale.wall_ms);
  if (scale.peak_inflight < 1'000'000) {
    std::fprintf(stderr, "FATAL: peak in-flight %zu < 1M\n", scale.peak_inflight);
    return 1;
  }
  if (scale.steady_allocs != 0) {
    std::fprintf(stderr, "FATAL: %llu heap allocations in the steady-state window\n",
                 static_cast<unsigned long long>(scale.steady_allocs));
    return 1;
  }
  std::printf("  steady state is allocation-free\n");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"moongen-bench-rpc-open-loop-v1\",\n");
  std::fprintf(f,
               "  \"tail\": {\"offered_rps\": %.0f, \"service_us\": %.1f, "
               "\"open_p50_ns\": %llu, \"open_p99_ns\": %llu, "
               "\"closed_p50_ns\": %llu, \"closed_p99_ns\": %llu, "
               "\"p99_ratio\": %.2f},\n",
               kTailOfferedRps, kTailServiceUs, static_cast<unsigned long long>(open.p50_ns),
               static_cast<unsigned long long>(open.p99_ns),
               static_cast<unsigned long long>(closed.p50_ns),
               static_cast<unsigned long long>(closed.p99_ns),
               static_cast<double>(open.p99_ns) / static_cast<double>(closed.p99_ns));
  std::fprintf(f,
               "  \"inflight\": {\"offered_rps\": 8000000, \"peak_inflight\": %zu, "
               "\"issued\": %llu, \"send_drops\": %llu, \"steady_allocs\": %llu, "
               "\"wall_ms\": %.1f},\n",
               scale.peak_inflight, static_cast<unsigned long long>(scale.issued),
               static_cast<unsigned long long>(scale.send_drops),
               static_cast<unsigned long long>(scale.steady_allocs), scale.wall_ms);
  std::fprintf(f,
               "  \"note\": \"tail numbers are virtual-time simulation results and "
               "deterministic; wall_ms is measured on this host.\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
