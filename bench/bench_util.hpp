// Shared helpers for the benchmark harnesses.
//
// The paper quantifies generator cost in CPU cycles per packet (Section
// 5.1): the CPU is made the bottleneck and the cycle budget, not wall-clock
// throughput, is reported. We measure cycles with the TSC (which runs at
// the constant base frequency — the same unit the paper uses) and feed the
// results through the throughput model for the frequency-scaling figures.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif
#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include <chrono>

#include "stats/running_stats.hpp"

namespace moongen::bench {

inline std::uint64_t rdtsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Estimated TSC frequency in GHz (cycles per nanosecond).
inline double tsc_ghz() {
  static const double ghz = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = rdtsc();
    while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(50)) {
    }
    const std::uint64_t c1 = rdtsc();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    return static_cast<double>(c1 - c0) / ns;
  }();
  return ghz;
}

/// Runs `body(packets_per_rep)` `reps` times and returns cycles/packet
/// statistics (mean +- stddev over reps, as the paper reports).
inline stats::RunningStats measure_cycles_per_packet(
    const std::function<std::uint64_t()>& body, int reps = 10, int warmup = 2) {
  stats::RunningStats out;
  for (int r = 0; r < reps + warmup; ++r) {
    const std::uint64_t c0 = rdtsc();
    const std::uint64_t packets = body();
    const std::uint64_t c1 = rdtsc();
    if (r >= warmup && packets > 0)
      out.add(static_cast<double>(c1 - c0) / static_cast<double>(packets));
  }
  return out;
}

/// Paired measurement: interleaves the baseline and the operation under
/// test (A/B/A/B...) and reports statistics over the per-pair differences.
/// This cancels slow machine drift, which otherwise swamps single-digit
/// cycle deltas on shared hosts (the paper used a dedicated testbed).
inline stats::RunningStats measure_cycles_delta(const std::function<std::uint64_t()>& base,
                                                const std::function<std::uint64_t()>& op,
                                                int reps = 12, int warmup = 2) {
  stats::RunningStats out;
  auto one = [](const std::function<std::uint64_t()>& body) {
    const std::uint64_t c0 = rdtsc();
    const std::uint64_t packets = body();
    const std::uint64_t c1 = rdtsc();
    return static_cast<double>(c1 - c0) / static_cast<double>(packets);
  };
  for (int r = 0; r < reps + warmup; ++r) {
    const double a = one(base);
    const double b = one(op);
    if (r >= warmup) out.add(b - a);
  }
  return out;
}

/// Pins the calling thread to a core for stable cycle measurements.
inline void pin_measurement_thread(int core = 1) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core), &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

inline void print_row(const char* label, const stats::RunningStats& s) {
  std::printf("  %-44s %8.1f +- %.1f\n", label, s.mean(), s.stddev());
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace moongen::bench
