// Google-benchmark microbenchmarks of the discrete-event engine hot path.
//
// The simulation core executes 3-5 events per simulated frame; reproducing
// Figure 4's 178.5 Mpps run means ~10^8 frames, so events/second of this
// engine bounds every paper harness. These benchmarks isolate the
// schedule/dispatch cycle (timer wheel vs. overflow heap), the
// self-rescheduling timer pattern every hardware model uses, and the
// end-to-end per-frame cost of the NIC port TX path. Results are tracked in
// BENCH_sim_engine.json (see DESIGN.md, "Event-engine fast path").
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/rate_control.hpp"
#include "nic/chip.hpp"
#include "nic/port.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;

namespace {

// A hot-path event body sized like the serializer-completion closure in
// nic::Port: a shared frame payload plus two timestamps — 48 bytes, the
// size the engine must dispatch without touching the heap.
struct FrameishTicker {
  ms::EventQueue& q;
  std::uint64_t& remaining;
  std::shared_ptr<const std::vector<std::uint8_t>> payload;
  ms::SimTime delay;
  ms::SimTime t0;
  void operator()() const {
    if (remaining == 0) return;
    --remaining;
    benchmark::DoNotOptimize(payload.get());
    q.schedule_in(delay, FrameishTicker{q, remaining, payload, delay, q.now()});
  }
};
static_assert(sizeof(FrameishTicker) == 48);

// The core schedule/dispatch cycle with near-future delays (the timer-wheel
// fast path): a window of in-flight events, each completion scheduling a
// replacement, mimicking the frame pipeline's event mix.
void BM_ScheduleDispatchNear(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  const auto payload = std::make_shared<const std::vector<std::uint8_t>>(64, std::uint8_t{0});
  for (auto _ : state) {
    ms::EventQueue q;
    std::uint64_t remaining = 64 * 1024;
    for (int i = 0; i < window; ++i) {
      // 67.2 ns: one 64 B frame time at 10 GbE — the canonical near delay.
      q.schedule_in(static_cast<ms::SimTime>(800 * (i + 1)),
                    FrameishTicker{q, remaining, payload, 67'200, 0});
    }
    q.run();
    benchmark::DoNotOptimize(q.executed());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_ScheduleDispatchNear)->Arg(1)->Arg(8)->Arg(64);

// Far timers (beyond the wheel horizon): exercises the overflow binary heap.
void BM_ScheduleDispatchFar(benchmark::State& state) {
  const auto payload = std::make_shared<const std::vector<std::uint8_t>>(64, std::uint8_t{0});
  for (auto _ : state) {
    ms::EventQueue q;
    std::uint64_t remaining = 16 * 1024;
    for (int i = 0; i < 32; ++i) {
      q.schedule_in(ms::kPsPerMs + static_cast<ms::SimTime>(i),
                    FrameishTicker{q, remaining, payload, ms::kPsPerMs, 0});  // 1 ms: far
    }
    q.run();
    benchmark::DoNotOptimize(q.executed());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 1024);
}
BENCHMARK(BM_ScheduleDispatchFar);

// Same-time events: the FIFO bucket case (batch completions, simultaneous
// deliveries); ordering among equal times must be scheduling order.
void BM_ScheduleDispatchSameTime(benchmark::State& state) {
  for (auto _ : state) {
    ms::EventQueue q;
    std::uint64_t sum = 0;
    for (ms::SimTime t = 0; t < 256; ++t) {
      for (int i = 0; i < 64; ++i) {
        q.schedule_at(t * 1'000, [&sum] { ++sum; });
      }
    }
    q.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 256 * 64);
}
BENCHMARK(BM_ScheduleDispatchSameTime);

// End-to-end NIC TX: an uncontrolled (line-rate) queue with a refill
// generator, no sink — isolates serializer + DMA + event-engine cost per
// transmitted frame. This is the path the batched-TX fast path targets.
void BM_PortTxUncontrolled(benchmark::State& state) {
  const auto frame = mc::make_udp_frame({});
  std::int64_t frames = 0;
  double events_per_frame = 0;
  for (auto _ : state) {
    ms::EventQueue events;
    mn::Port port(events, mn::intel_x540(), 10'000, 42);
    auto gen = mc::SimLoadGen::hardware_paced(port.tx_queue(0), frame);
    events.run_until(10 * ms::kPsPerMs);  // ~86k frames of 124 B at 10 GbE
    benchmark::DoNotOptimize(port.stats().tx_packets);
    frames += static_cast<std::int64_t>(port.stats().tx_packets);
    events_per_frame = static_cast<double>(events.executed()) /
                       static_cast<double>(port.stats().tx_packets);
  }
  state.counters["events_per_frame"] = events_per_frame;
  state.SetItemsProcessed(frames);
}
BENCHMARK(BM_PortTxUncontrolled);

// End-to-end NIC TX with CRC-based software rate control: valid frames
// interleaved with invalid gap frames (Section 8) — the allocation-heavy
// path before gap-frame payload interning.
void BM_PortTxCrcPaced(benchmark::State& state) {
  const auto frame = mc::make_udp_frame({});
  std::int64_t frames = 0;
  for (auto _ : state) {
    ms::EventQueue events;
    mn::Port port(events, mn::intel_x540(), 10'000, 42);
    auto gen = mc::SimLoadGen::crc_paced(port.tx_queue(0), frame,
                                         std::make_unique<mc::CbrPattern>(2.0), 10'000);
    events.run_until(10 * ms::kPsPerMs);
    benchmark::DoNotOptimize(port.stats().tx_packets);
    frames += static_cast<std::int64_t>(port.stats().tx_packets);
  }
  state.SetItemsProcessed(frames);
}
BENCHMARK(BM_PortTxCrcPaced);

// Hardware-paced queue: the wake/retry scheduling path of the rate limiter.
void BM_PortTxHwPaced(benchmark::State& state) {
  const auto frame = mc::make_udp_frame({});
  std::int64_t frames = 0;
  for (auto _ : state) {
    ms::EventQueue events;
    mn::Port port(events, mn::intel_x540(), 10'000, 42);
    port.tx_queue(0).set_rate_mpps(2.0, 124);
    auto gen = mc::SimLoadGen::hardware_paced(port.tx_queue(0), frame);
    events.run_until(10 * ms::kPsPerMs);
    benchmark::DoNotOptimize(port.stats().tx_packets);
    frames += static_cast<std::int64_t>(port.stats().tx_packets);
  }
  state.SetItemsProcessed(frames);
}
BENCHMARK(BM_PortTxHwPaced);

}  // namespace

BENCHMARK_MAIN();
