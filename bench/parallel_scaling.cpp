// parallel_scaling: wall-clock scaling of the sharded simulation runtime.
//
// Four independent generator -> sink port pairs (XL710 at 40 GbE, hardware
// rate control near line rate for 64 B frames) are pinned one pair per
// shard. The pairs exchange no cross-shard traffic, so this measures the
// runtime's best case: the embarrassingly parallel multi-port scaling
// experiment of paper Figures 3/4. The same virtual duration is run at 1,
// 2, and 4 shards and the wall-clock times are written as
// BENCH_parallel_scaling.json.
//
// The simulated outputs (per-port TX counts) are asserted identical across
// shard counts before any timing is reported — a benchmark of a wrong
// result is worthless.
//
// Usage: parallel_scaling [virtual_ms] [json_path]
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/rate_control.hpp"
#include "nic/chip.hpp"
#include "testbed/scenario.hpp"

namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mtb = moongen::testbed;

namespace {

constexpr int kPairs = 4;

struct RunOutcome {
  double wall_ms = 0;
  std::size_t shards = 0;
  std::vector<std::uint64_t> tx_packets;  // per pair, for the identity check
};

RunOutcome run_config(int shards, double virtual_ms) {
  mtb::Scenario s;
  s.seed(1).shards(shards).telemetry(false);
  for (int p = 0; p < kPairs; ++p) {
    const int gen = 2 * p;
    const int sink = 2 * p + 1;
    s.device(gen, mn::intel_xl710()).name("gen" + std::to_string(p)).link_mbit(40'000)
        .device(sink, mn::intel_xl710()).name("sink" + std::to_string(p)).link_mbit(40'000)
            .rx_store(false)
        .link(gen, sink)
        .couple(gen, sink);
  }
  // Groups are {0,1},{2,3},{4,5},{6,7}; round-robin puts pair p on shard
  // p % effective, so each shard carries an equal share of the load.
  auto tb = s.build();

  mc::UdpTemplateOptions opts;
  opts.frame_size = 64;
  std::vector<std::unique_ptr<mc::SimLoadGen>> gens;
  gens.reserve(kPairs);
  for (int p = 0; p < kPairs; ++p) {
    auto& queue = tb->port(2 * p).tx_queue(0);
    queue.set_rate_mpps(40.0, 64);  // ~2/3 of 64 B line rate: CPU-bound shards
    gens.push_back(mc::SimLoadGen::hardware_paced(queue, mc::make_udp_frame(opts)));
  }

  const auto t0 = std::chrono::steady_clock::now();
  tb->run_until(static_cast<ms::SimTime>(virtual_ms * 1e9));
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.shards = tb->shard_count();
  for (int p = 0; p < kPairs; ++p) out.tx_packets.push_back(tb->port(2 * p).stats().tx_packets);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double virtual_ms = argc > 1 ? std::atof(argv[1]) : 20.0;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_parallel_scaling.json";
  std::printf("parallel_scaling: %d independent 40 GbE pairs, %.0f ms virtual time\n", kPairs,
              virtual_ms);

  const int configs[] = {1, 2, 4};
  std::vector<RunOutcome> results;
  for (const int n : configs) {
    // Warm-up run (first-touch allocations, page faults), then the timed one.
    (void)run_config(n, virtual_ms / 10.0);
    results.push_back(run_config(n, virtual_ms));
    std::printf("  shards=%d (effective %zu): %8.1f ms wall\n", n, results.back().shards,
                results.back().wall_ms);
  }

  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].tx_packets != results[0].tx_packets) {
      std::fprintf(stderr, "FATAL: shard config %d produced different TX counts\n", configs[i]);
      return 1;
    }
  }
  std::printf("  simulated outputs identical across shard counts\n");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"moongen-bench-parallel-scaling-v1\",\n");
  std::fprintf(f,
               "  \"workload\": \"%d independent XL710 40GbE gen->sink pairs, 64 B frames at 40 "
               "Mpps hardware pacing, %.0f ms virtual time, no cross-shard traffic\",\n",
               kPairs, virtual_ms);
  const unsigned cores = std::thread::hardware_concurrency();
  std::fprintf(f, "  \"cores\": %u,\n", cores);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    // honest: each shard thread had a physical core available — a run that
    // time-slices shards cannot demonstrate (or refute) parallel speedup.
    std::fprintf(f,
                 "    {\"requested_shards\": %d, \"effective_shards\": %zu, \"wall_ms\": %.1f, "
                 "\"speedup_vs_1\": %.2f, \"honest\": %s}%s\n",
                 configs[i], results[i].shards, results[i].wall_ms,
                 results[0].wall_ms / results[i].wall_ms,
                 cores >= static_cast<unsigned>(configs[i]) ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"note\": \"speedup is bounded by physical cores: a single-core host time-slices "
               "the shard threads and can show no parallel gain. Numbers are measured on this "
               "host, never extrapolated.\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
