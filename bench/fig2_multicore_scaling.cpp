// Reproduces Figure 2: multi-core scaling under high load.
//
// Workload (Section 5.3): minimum-sized packets with random payload and
// random source/destination addresses and ports — 8 random numbers per
// packet — each core sending to two 10 GbE interfaces, CPU clocked down to
// 1.2 GHz. The paper observes linear scaling up to the 2x10 GbE line-rate
// limit of 29.76 Mpps (dashed line).
//
// Reproduction: (1) run the real multi-threaded loop on this host to show
// linear scaling in silicon; (2) feed the measured cycles/packet through
// the paper's own cycles-budget methodology (Section 5.1/5.6.3) to produce
// the 1.2 GHz series with the line-rate cap — the actual Figure 2 curve.
//
// With `--json FILE` the run additionally dumps a telemetry snapshot
// (packet counters hammered by all task threads, per-series gauges) in the
// schema documented in DESIGN.md ("Telemetry"); stdout is unchanged.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "core/device.hpp"
#include "core/field_modifier.hpp"
#include "core/task.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "nic/throughput_model.hpp"
#include "proto/packet_view.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mp = moongen::proto;
namespace mn = moongen::nic;
namespace mt = moongen::telemetry;

namespace {

constexpr std::size_t kPktSize = 60;

/// The Section 5.3 loop body: 8 random 4-byte fields (addresses, ports,
/// payload) + IP checksum offload + send on two queues alternately.
std::uint64_t heavy_loop(int dev_a, int dev_b, std::uint64_t packets,
                         mt::CounterHandle tx_packets = {}) {
  auto& da = mc::Device::config(dev_a, 1, 1);
  auto& db = mc::Device::config(dev_b, 1, 1);
  da.disconnect();
  db.disconnect();
  da.get_tx_queue(0).reset();
  db.get_tx_queue(0).reset();
  mb::Mempool pool(4096, [](mb::PktBuf& buf) {
    buf.set_length(kPktSize);
    mp::UdpPacketView view{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = kPktSize;
    view.fill(opts);
  });
  mb::BufArray bufs(pool, 64);
  std::vector<mc::FieldAction> actions;
  for (std::uint16_t off : {26, 30, 34, 36, 42, 46, 50, 54})
    actions.push_back({.field = {off, 4}, .kind = mc::FieldAction::Kind::kRandom});
  mc::ModifierProgram prog(std::move(actions), static_cast<std::uint32_t>(dev_a * 77 + 1));

  std::uint64_t sent = 0;
  bool flip = false;
  while (sent < packets) {
    bufs.alloc(kPktSize);
    for (auto* buf : bufs) prog.apply(buf->data());
    bufs.offload_ip_checksums();
    auto& q = (flip ? da : db).get_tx_queue(0);
    flip = !flip;
    const std::uint64_t n = q.send(bufs);
    sent += n;
    tx_packets.add(n);
  }
  return sent;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  mt::MetricRegistry registry;
  auto tx_packets = registry.shard(0).counter("fig2.tx_packets");

  std::printf("Figure 2: Multi-core scaling under high load\n");
  std::printf("(min-size packets, 8 random fields/pkt, 2 x 10 GbE, 1.2 GHz cores)\n\n");

  // Single-core cost of the heavy script.
  const auto single = moongen::bench::measure_cycles_per_packet(
      [] { return heavy_loop(0, 1, 512 * 1024); }, 6, 2);
  std::printf("measured cost of the Section 5.3 script: %.1f +- %.1f cycles/pkt\n",
              single.mean(), single.stddev());
  std::printf("(paper predicts 229.2 +- 3.9 for its script; 10.3 Mpps at 2.4 GHz -> 233 cyc)\n\n");
  registry.shard(0).gauge("fig2.cycles_per_packet").set(single.mean());

  // (1) Real silicon scaling: k pinned tasks, each its own devices and pool.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const int max_threads = static_cast<int>(std::min(hw_threads, 8u));
  std::printf("silicon scaling on this host (%u hardware threads):\n", hw_threads);
  std::printf("  %-7s %12s %14s\n", "cores", "Mpps", "Mpps/core");
  for (int k = 1; k <= max_threads; ++k) {
    constexpr std::uint64_t kPerThread = 2 * 1024 * 1024;
    mc::TaskSet tasks;
    tasks.bind_telemetry(registry, "fig2");
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < k; ++i) {
      tasks.launch("fig2-core", [i, tx_packets] {
        heavy_loop(2 + 2 * i, 3 + 2 * i, kPerThread, tx_packets);
      });
    }
    tasks.wait();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const double mpps = static_cast<double>(kPerThread) * k / secs / 1e6;
    std::printf("  %-7d %12.2f %14.2f\n", k, mpps, mpps / k);
    registry.shard(0).gauge("fig2.silicon.cores_" + std::to_string(k) + ".mpps").set(mpps);
  }

  // (2) The Figure 2 series: 1.2 GHz cores against 2 x 10 GbE line rate.
  std::printf("\nFigure 2 series (cycles-budget model at 1.2 GHz, 2 x 10 GbE):\n");
  std::printf("  %-7s %12s %14s %12s\n", "cores", "Mpps", "Rate [Gbit/s]", "bottleneck");
  for (int k = 1; k <= 8; ++k) {
    mn::ThroughputQuery q;
    q.frame_size = 64;
    q.cores = k;
    q.cycles_per_packet = single.mean();
    q.cpu_hz = 1.2e9;
    q.link_mbit = 10'000;
    q.ports = 2;
    const auto r = mn::predict_throughput(q);
    std::printf("  %-7d %12.2f %14.2f %12s\n", k, r.total_pps / 1e6, r.total_wire_mbit / 1e3,
                r.bottleneck == mn::Bottleneck::kCpu ? "CPU" : "line rate");
    registry.shard(0).gauge("fig2.model_1p2ghz.cores_" + std::to_string(k) + ".mpps")
        .set(r.total_pps / 1e6);
  }
  // Same series with the cost calibrated to the paper's LuaJIT script
  // (10.3 Mpps at 2.4 GHz, Section 5.3 -> 233 cycles/pkt): line rate is
  // then reached at 6 cores, exactly as in Figure 2.
  std::printf("\nFigure 2 series with the paper's 233 cycles/pkt (LuaJIT calibration):\n");
  std::printf("  %-7s %12s %14s %12s\n", "cores", "Mpps", "Rate [Gbit/s]", "bottleneck");
  for (int k = 1; k <= 8; ++k) {
    mn::ThroughputQuery q;
    q.frame_size = 64;
    q.cores = k;
    q.cycles_per_packet = 2.4e9 / 10.3e6;
    q.cpu_hz = 1.2e9;
    q.link_mbit = 10'000;
    q.ports = 2;
    const auto r = mn::predict_throughput(q);
    std::printf("  %-7d %12.2f %14.2f %12s\n", k, r.total_pps / 1e6, r.total_wire_mbit / 1e3,
                r.bottleneck == mn::Bottleneck::kCpu ? "CPU" : "line rate");
    registry.shard(0).gauge("fig2.papercal.cores_" + std::to_string(k) + ".mpps")
        .set(r.total_pps / 1e6);
  }
  std::printf("\n(paper: linear to the 29.76 Mpps line-rate limit, ~5 Mpps/core at 1.2 GHz)\n");

  if (!json_path.empty()) {
    const auto ts = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    if (mt::dump_json_to_file(json_path, registry.snapshot(ts)))
      std::fprintf(stderr, "telemetry snapshot written to %s\n", json_path.c_str());
    else
      std::fprintf(stderr, "failed to write telemetry snapshot to %s\n", json_path.c_str());
  }
  return 0;
}
