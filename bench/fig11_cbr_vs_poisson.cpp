// Reproduces Figure 11: forwarding latency of Open vSwitch under CBR and
// Poisson traffic (Section 8.3).
//
// CBR comes from the NIC's hardware rate control; the Poisson process is
// only possible with MoonGen's CRC-based software rate control. The paper
// observes: Poisson latencies (median and quartiles) ramp up well before
// saturation because bursts temporarily overload the DuT's buffers; CBR
// stays low until the DuT saturates at ~1.9 Mpps, where both patterns hit
// the buffer-bound latency of ~2 ms and achieve the same throughput.
#include <cstdio>
#include <memory>

#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "sim_beds.hpp"

namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;

namespace {

mn::Frame background_frame() {
  mc::UdpTemplateOptions opts;
  opts.frame_size = 96;
  opts.ptp_payload = true;
  opts.ptp_message_type = 5;
  return mc::make_udp_frame(opts);
}

mn::Frame stamped_frame() {
  mc::UdpTemplateOptions opts;
  opts.frame_size = 96;
  opts.ptp_payload = true;
  opts.ptp_message_type = 0;
  return mc::make_udp_frame(opts);
}

struct Point {
  double q25_us, q50_us, q75_us;
  double achieved_mpps;
  std::uint64_t lost;
};

Point measure(double mpps, bool poisson, ms::SimTime duration) {
  moongen::bench::DutBed bed;
  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 100 * ms::kPsPerUs;
  cfg.hist_bin_ps = 50'000;
  cfg.timeout_ps = 30 * ms::kPsPerMs;

  // Both patterns sample latency by marking ordinary stream packets as
  // timestampable (Section 6.4).
  std::unique_ptr<mc::SimLoadGen> gen;
  if (poisson) {
    gen = mc::SimLoadGen::crc_paced(bed.gen_tx.tx_queue(0), background_frame(),
                                    std::make_unique<mc::PoissonPattern>(mpps, 4242), 10'000);
  } else {
    auto& q = bed.gen_tx.tx_queue(0);
    q.set_rate_mpps(mpps, 100);
    gen = mc::SimLoadGen::hardware_paced(q, background_frame());
  }
  auto ts = std::make_unique<mc::Timestamper>(bed.events, bed.gen_tx, *gen, stamped_frame(),
                                              bed.sink, cfg);
  ts->start();
  bed.events.run_until(duration);
  ts->stop();

  const auto& h = ts->histogram();
  return Point{static_cast<double>(h.percentile(25)) / 1e6,
               static_cast<double>(h.percentile(50)) / 1e6,
               static_cast<double>(h.percentile(75)) / 1e6,
               static_cast<double>(bed.forwarder.forwarded()) / ms::to_seconds(duration) / 1e6,
               ts->lost()};
}

}  // namespace

int main() {
  const auto duration =
      static_cast<ms::SimTime>(300.0 * moongen::bench::bench_scale()) * ms::kPsPerMs;
  std::printf("Figure 11: Forwarding latency of Open vSwitch, CBR vs Poisson\n");
  std::printf("(%.1f s per point; paper: Poisson ramps up before saturation, CBR stays\n",
              ms::to_seconds(duration));
  std::printf(" low; both hit ~2 ms buffer-bound latency at the ~1.9 Mpps overload point)\n\n");

  std::printf("  %-12s | %28s | %28s | %18s\n", "load [Mpps]", "CBR q25/median/q75 [us]",
              "Poisson q25/median/q75 [us]", "fwd Mpps cbr/poi");
  for (double mpps : {0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7, 1.9, 2.0}) {
    const auto cbr = measure(mpps, false, duration);
    const auto poi = measure(mpps, true, duration);
    std::printf("  %-12.2f | %8.1f %9.1f %9.1f | %8.1f %9.1f %9.1f | %8.2f %8.2f\n", mpps,
                cbr.q25_us, cbr.q50_us, cbr.q75_us, poi.q25_us, poi.q50_us, poi.q75_us,
                cbr.achieved_mpps, poi.achieved_mpps);
  }
  return 0;
}
