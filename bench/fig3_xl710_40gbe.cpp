// Reproduces Figure 3: throughput with an XL710 40 GbE NIC.
//
// Section 5.4: first-generation 40 GbE NICs are hardware-limited — frames
// of 128 B or less cannot be generated at line rate, using more than two
// cores does not help (packet-engine cap), the dual-port aggregate is
// limited to ~50 Gbit/s with large frames and ~42 Mpps with small ones.
//
// The generator-side cost is measured live (the same varying-IP loop as in
// Section 5.2); the XL710's caps come from the chip model.
#include <cstdio>

#include "bench_util.hpp"
#include "core/device.hpp"
#include "core/field_modifier.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "nic/throughput_model.hpp"
#include "proto/packet_view.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mp = moongen::proto;
namespace mn = moongen::nic;

namespace {

double measure_cycles_per_packet_simple(std::size_t pkt_size) {
  auto& dev = mc::Device::config(0, 1, 1);
  dev.disconnect();
  auto& queue = dev.get_tx_queue(0);
  queue.reset();
  mb::Mempool pool(4096, [pkt_size](mb::PktBuf& buf) {
    buf.set_length(pkt_size);
    mp::UdpPacketView view{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = pkt_size;
    view.fill(opts);
  });
  mb::BufArray bufs(pool, 64);
  mc::Tausworthe rng(3);
  const auto s = moongen::bench::measure_cycles_per_packet([&]() -> std::uint64_t {
    std::uint64_t sent = 0;
    while (sent < 512 * 1024) {
      bufs.alloc(pkt_size);
      for (auto* buf : bufs) {
        mp::UdpPacketView view{buf->bytes()};
        view.ip().src_be = mp::hton32(0x0a000001 + rng.next() % 256);
      }
      sent += queue.send(bufs);
    }
    return sent;
  });
  return s.mean();
}

}  // namespace

int main() {
  std::printf("Figure 3: Throughput with an XL710 40 GbE NIC\n");
  std::printf("(varying-IP UDP load, 2.4 GHz cores, wire rate incl. framing)\n\n");

  const auto chip = mn::intel_xl710();
  // The paper's generator runs LuaJIT: its varying-IP script needs 1.5 GHz
  // for 10 GbE line rate (Section 5.2), i.e. ~100.8 cycles/pkt. Our C++
  // loop is cheaper; both tables are printed — the hardware caps (the
  // subject of Figure 3) are identical, only the CPU-bound region of the
  // 1-core curve moves.
  const double paper_cpp = 1.5e9 / 14.88e6;
  for (int variant = 0; variant < 2; ++variant) {
    double cpp_fixed = 0;
    if (variant == 0) {
      std::printf("with this build's measured cycles/pkt:\n");
    } else {
      cpp_fixed = paper_cpp;
      std::printf("\nwith the paper's LuaJIT-calibrated %.1f cycles/pkt:\n", paper_cpp);
    }
    std::printf("  %-12s %10s %10s %10s   (line rate)\n", "size [B]", "1 core", "2 cores",
                "3 cores");
    for (std::size_t size : {64u, 96u, 128u, 160u, 192u, 224u, 256u}) {
      const double cpp =
          variant == 0 ? measure_cycles_per_packet_simple(size - 4) : cpp_fixed;
      std::printf("  %-12zu", size);
      for (int cores : {1, 2, 3}) {
        mn::ThroughputQuery q;
        q.frame_size = size;
        q.cores = cores;
        q.cycles_per_packet = cpp;
        q.cpu_hz = 2.4e9;
        q.link_mbit = 40'000;
        q.ports = 1;
        q.chip = &chip;
        const auto r = mn::predict_throughput(q);
        std::printf(" %7.1f Gb", r.total_wire_mbit / 1e3);
      }
      std::printf("   %7.1f Gb\n", 40.0);
    }
  }

  std::printf("\nKey claims (Section 5.4):\n");
  {
    const auto chip2 = chip;
    mn::ThroughputQuery q;
    q.chip = &chip2;
    q.link_mbit = 40'000;
    q.cpu_hz = 2.4e9;
    q.cycles_per_packet = measure_cycles_per_packet_simple(124);

    q.frame_size = 128;
    q.cores = 3;
    auto r = mn::predict_throughput(q);
    std::printf("  128 B, 3 cores: %.1f Gbit/s (< 40: <=128 B cannot reach line rate)\n",
                r.total_wire_mbit / 1e3);

    q.frame_size = 64;
    q.cores = 2;
    const auto r2 = mn::predict_throughput(q);
    q.cores = 3;
    const auto r3 = mn::predict_throughput(q);
    std::printf("  64 B: 2 cores %.1f Mpps vs 3 cores %.1f Mpps (no gain beyond 2 cores)\n",
                r2.total_pps / 1e6, r3.total_pps / 1e6);

    // Dual-port limits.
    q.ports = 2;
    q.cores = 6;
    q.frame_size = 1518;
    const auto big = mn::predict_throughput(q);
    q.frame_size = 64;
    const auto small = mn::predict_throughput(q);
    std::printf("  dual-port: %.0f Gbit/s max with large frames (paper: 50),"
                " %.0f Mpps with 64 B (paper: 42, 28 Gbit/s)\n",
                big.total_wire_mbit / 1e3, small.total_pps / 1e6);
  }
  return 0;
}
