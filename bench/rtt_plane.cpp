// rtt_plane: the always-on latency plane's two hot-path claims, measured.
//
//  1. Cost: RttShard::record — the per-frame RX update (bucket index into
//     two log-linear histograms plus a counter bump) — stays within a
//     small cycle budget. The claim behind "always-on": in-path histogram
//     updates are cheap enough to run on every frame, not on samples. The
//     run FAILS if the measured average exceeds kCycleBudget.
//
//  2. Allocation-freedom: the RX update path (record + the conservation
//     note_* bookkeeping) performs zero heap allocations in steady state —
//     all histogram storage is preallocated at plane construction. A
//     global operator-new counter verifies a 10M-update window allocates
//     nothing. Window closes (which do build RttWindow snapshots) happen
//     at quiesced 100 ms boundaries, off the per-frame path; a separate
//     probe reports their cost for context but does not gate.
//
// Results are written as BENCH_rtt_plane.json.
//
// Usage: rtt_plane [json_path]
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "bench_util.hpp"
#include "telemetry/rtt_plane.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (this TU replaces operator new for the whole
// binary; the delta across the measured window must be zero).
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size > 0 ? size : 1) != 0)
    throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace mb = moongen::bench;
namespace mt = moongen::telemetry;

namespace {

// The RX update must stay far below the per-packet budget of a 10 GbE
// line-rate receiver (~200 cycles/packet at 14.88 Mpps on a 3 GHz core);
// 100 cycles leaves room for the rest of the RX path. Typical measured
// cost is ~10-30 cycles (two array increments and a branch-free bucket
// index); the budget is slack for CI machines with noisy TSCs.
constexpr double kCycleBudget = 100.0;
constexpr std::uint64_t kUpdates = 10'000'000;

struct UpdateResult {
  double cycles_per_update = 0;
  std::uint64_t steady_allocs = 0;
};

UpdateResult run_update_bench(mt::RttPlane& plane) {
  auto& shard = plane.shard(0);
  // Warm-up: touch every group's buckets once so lazy page faults and
  // cold caches don't bill the measured window.
  for (std::uint32_t f = 0; f < plane.group_count(); ++f) {
    shard.note_tx_stamped();
    shard.note_rx_seen();
    shard.record(f, 1'000);
  }

  // Deterministic pseudo-random RTT stream spanning ns..ms (xorshift —
  // cheap enough not to dominate the measurement).
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t c0 = mb::rdtsc();
  for (std::uint64_t i = 0; i < kUpdates; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t rtt_ns = 300 + (x & 0xfffff);  // 300 ns .. ~1.3 ms
    shard.note_tx_stamped();
    shard.note_rx_seen();
    shard.record(static_cast<std::uint32_t>(x >> 32), rtt_ns);
  }
  const std::uint64_t c1 = mb::rdtsc();
  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);

  UpdateResult out;
  out.cycles_per_update = static_cast<double>(c1 - c0) / static_cast<double>(kUpdates);
  out.steady_allocs = allocs_after - allocs_before;
  return out;
}

double run_close_window_probe(mt::RttPlane& plane) {
  // Context only: the cost of one quiesced window close (merge + quantile
  // scan + snapshot push) after the 10M-update window above.
  const std::uint64_t c0 = mb::rdtsc();
  plane.close_window(plane.config().window_ps);
  const std::uint64_t c1 = mb::rdtsc();
  return static_cast<double>(c1 - c0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_rtt_plane.json";

  mt::RttPlaneConfig cfg;
  cfg.flow_groups = 4;
  mt::RttPlane plane(cfg, 1);

  std::printf("rtt_plane: %llu RX updates across %u flow groups\n",
              static_cast<unsigned long long>(kUpdates), plane.group_count());
  const UpdateResult r = run_update_bench(plane);
  const double close_cycles = run_close_window_probe(plane);
  std::printf("  %.1f cycles/update (budget %.0f), %llu allocations in window\n",
              r.cycles_per_update, kCycleBudget,
              static_cast<unsigned long long>(r.steady_allocs));
  std::printf("  close_window: %.0f cycles for %llu samples (off the hot path)\n",
              close_cycles, static_cast<unsigned long long>(kUpdates));

  bool failed = false;
  if (r.cycles_per_update > kCycleBudget) {
    std::fprintf(stderr, "FATAL: %.1f cycles/update exceeds the %.0f-cycle budget\n",
                 r.cycles_per_update, kCycleBudget);
    failed = true;
  }
  if (r.steady_allocs != 0) {
    std::fprintf(stderr, "FATAL: %llu heap allocations on the RX update path\n",
                 static_cast<unsigned long long>(r.steady_allocs));
    failed = true;
  }
  if (!failed) std::printf("  RX update path is allocation-free and within budget\n");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"moongen-bench-rtt-plane-v1\",\n");
  std::fprintf(f,
               "  \"update\": {\"updates\": %llu, \"flow_groups\": %u, "
               "\"cycles_per_update\": %.2f, \"budget_cycles\": %.0f, "
               "\"steady_allocs\": %llu},\n",
               static_cast<unsigned long long>(kUpdates), plane.group_count(),
               r.cycles_per_update, kCycleBudget,
               static_cast<unsigned long long>(r.steady_allocs));
  std::fprintf(f, "  \"close_window\": {\"cycles\": %.0f, \"samples\": %llu},\n",
               close_cycles, static_cast<unsigned long long>(kUpdates));
  std::fprintf(f,
               "  \"note\": \"cycles are TSC measurements on this host; the gate "
               "uses a slack budget to absorb CI noise.\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return failed ? 1 : 0;
}
