// Reproduces Table 3 (timestamping accuracy) and the clock-sync / drift
// results of Sections 6.2 and 6.3.
//
// Paper (Table 3):
//   82599 (fiber):  t_2m 320, t_8.5m 352 (bimodal 345.6/358.4),
//                   t_20m 403.2;  k = 310.7 +- 3.9 ns, vp = 0.72 c
//   X540 (copper):  t_2m 2156.8, t_10m 2195.2, t_50m 2387.2;
//                   k = 2147.2 +- 4.8 ns, vp = 0.69 c
// Section 6.2: clock sync within +-1 cycle; Section 6.3: worst drift
// 35 us/s, turned into a 0.0035 % relative error by per-packet resync.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/rate_control.hpp"
#include "core/timestamper.hpp"
#include "nic/chip.hpp"
#include "nic/port.hpp"
#include "sim/clock_sync.hpp"
#include "sim_beds.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"
#include "wire/cable.hpp"
#include "wire/link.hpp"

namespace mc = moongen::core;
namespace mn = moongen::nic;
namespace ms = moongen::sim;
namespace mt = moongen::telemetry;
namespace mw = moongen::wire;

namespace {

struct CableResult {
  double length_m;
  double mean_ns;
  double median_ns;
  std::map<std::uint64_t, double> value_fractions;  // ns value -> share
  double within_6_4_of_median;
  double range_ns;
};

CableResult measure_cable(const mn::ChipSpec& chip, const mw::CableSpec& cable,
                          std::uint64_t samples, mt::MetricRegistry& registry,
                          const std::string& prefix) {
  ms::EventQueue events;
  mn::Port a(events, chip, 10'000, 42);
  mn::Port b(events, chip, 10'000, 43);
  // Loopback between two ports of one card: both timestamp units run off
  // the same oscillator, so align the clock phases and sync once.
  b.ptp_clock() = a.ptp_clock();
  mw::Link link(a, b, cable, 44);
  a.bind_telemetry(registry, prefix + ".tx_port");
  b.bind_telemetry(registry, prefix + ".rx_port");

  mc::TimestamperConfig cfg;
  cfg.sample_interval_ps = 3'300;  // tight loop; prime-ish to vary MAC phase
  cfg.sync_clocks_each_sample = false;
  cfg.hist_bin_ps = 100;  // sub-quantization bins: report raw values
  cfg.hist_max_ps = 10'000'000;
  mc::Timestamper ts(events, a, 0, b, mc::make_ptp_ethernet_frame(80), cfg);
  ts.bind_telemetry(registry, prefix);
  ts.start();
  // Each sample takes ~probe wire time + latency + interval.
  events.run_until(static_cast<ms::SimTime>(samples) * 250'000);
  ts.stop();

  CableResult r{};
  r.length_m = cable.length_m;
  r.mean_ns = ts.latency_ns().mean();
  const auto& hist = ts.histogram();
  r.median_ns = static_cast<double>(hist.median()) / 1e3;
  for (std::size_t i = 0; i < hist.bin_count(); ++i) {
    if (hist.bin(i) == 0) continue;
    const double frac = static_cast<double>(hist.bin(i)) / static_cast<double>(hist.total());
    if (frac > 0.0005)
      r.value_fractions[hist.bin_lower(i) / 1000] += frac;
  }
  const auto med_ps = hist.median();
  r.within_6_4_of_median = hist.fraction_between(med_ps > 6'400 ? med_ps - 6'400 : 0,
                                                 med_ps + 6'400);
  r.range_ns = (ts.latency_ns().max() - ts.latency_ns().min());
  return r;
}

/// Least-squares fit t = k + l/vp over the measured means.
void fit_k_vp(const std::vector<CableResult>& rows, double* k_ns, double* vp_c) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(rows.size());
  for (const auto& r : rows) {
    sx += r.length_m;
    sy += r.mean_ns;
    sxx += r.length_m * r.length_m;
    sxy += r.length_m * r.mean_ns;
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);  // ns per meter
  *k_ns = (sy - slope * sx) / n;
  *vp_c = 1.0 / slope / 0.299792458;  // (m/ns) / c
}

void run_chip(const char* name, const char* key, const mn::ChipSpec& chip,
              const std::vector<mw::CableSpec>& cables, std::uint64_t samples,
              mt::MetricRegistry& registry) {
  std::printf("\n%s:\n", name);
  std::vector<CableResult> rows;
  for (const auto& cable : cables) {
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "table3.%s.cable_%gm", key, cable.length_m);
    auto r = measure_cable(chip, cable, samples, registry, prefix);
    rows.push_back(r);
    registry.shard(0).gauge(std::string(prefix) + ".mean_ns").set(r.mean_ns);
    registry.shard(0).gauge(std::string(prefix) + ".median_ns").set(r.median_ns);
    std::printf("  %5.1f m: mean %7.1f ns, median %7.1f ns", r.length_m, r.mean_ns,
                r.median_ns);
    if (r.value_fractions.size() > 1 && chip.ptp_increment_ps > 6'400) {
      std::printf("  [");
      for (const auto& [v, f] : r.value_fractions) std::printf(" %llu ns: %.1f%%",
          static_cast<unsigned long long>(v), f * 100.0);
      std::printf(" ]");
    }
    if (chip.ptp_increment_ps == 6'400) {
      std::printf("  (%.2f%% within +-6.4 ns of median, range %.1f ns)",
                  r.within_6_4_of_median * 100.0, r.range_ns);
    }
    std::printf("\n");
  }
  double k_ns = 0, vp_c = 0;
  fit_k_vp(rows, &k_ns, &vp_c);
  std::printf("  fit t = k + l/vp:  k = %.1f ns, vp = %.2f c\n", k_ns, vp_c);
  registry.shard(0).gauge(std::string("table3.") + key + ".fit.k_ns").set(k_ns);
  registry.shard(0).gauge(std::string("table3.") + key + ".fit.vp_c").set(vp_c);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  mt::MetricRegistry registry;

  const auto samples =
      static_cast<std::uint64_t>(100'000 * moongen::bench::bench_scale());
  std::printf("Table 3: Timestamping accuracy (loopback cables, %llu samples per cable)\n",
              static_cast<unsigned long long>(samples));
  std::printf("(paper: 82599 fiber 320/352/403.2 ns, k=310.7, vp=0.72c;\n");
  std::printf("        X540 copper 2156.8/2195.2/2387.2 ns, k=2147.2, vp=0.69c)\n");

  run_chip("Intel 82599, 10GBASE-SR fiber (timer increments every 12.8 ns)", "82599",
           mn::intel_82599(),
           {mw::fiber_om3(2.0), mw::fiber_om3(8.5), mw::fiber_om3(20.0)}, samples, registry);

  run_chip("Intel X540, 10GBASE-T copper (timer increments every 6.4 ns)", "x540",
           mn::intel_x540(),
           {mw::cat5e_10gbaset(2.0), mw::cat5e_10gbaset(10.0), mw::cat5e_10gbaset(50.0)},
           samples, registry);

  // --- Section 6.2: clock synchronization ---------------------------------
  std::printf("\nSection 6.2: clock synchronization between independent ports\n");
  {
    std::mt19937_64 rng(2024);
    moongen::stats::RunningStats residual;
    int worst = 0;
    for (int i = 0; i < 1'000; ++i) {
      ms::PtpClock a({.increment_ps = 6'400}, rng());
      ms::PtpClock b({.increment_ps = 6'400}, rng());
      b.adjust(static_cast<std::int64_t>(rng() % 10'000'000));
      const auto res = ms::synchronize_clocks(a, b, 0, rng);
      residual.add(static_cast<double>(std::llabs(res.residual_ps)));
      worst = std::max(worst, static_cast<int>(std::llabs(res.residual_ps)));
    }
    std::printf("  1000 syncs: mean |residual| %.1f ns, worst %.1f ns"
                " (paper: +-1 cycle; multi-port accuracy 19.2 ns)\n",
                residual.mean() / 1e3, worst / 1e3);
  }

  // --- Section 6.3: clock drift --------------------------------------------
  std::printf("\nSection 6.3: clock drift\n");
  {
    std::mt19937_64 rng(77);
    ms::PtpClock a({.increment_ps = 6'400}, 1);
    ms::PtpClock b({.increment_ps = 6'400, .drift_ppb = 35'000}, 1);
    ms::ClockSyncConfig cfg;
    cfg.outlier_probability = 0.0;
    ms::SimTime cursor = 0;
    const auto d0 = ms::measure_clock_difference(a, b, &cursor, rng, cfg);
    cursor = ms::kPsPerSec;  // one second later
    const auto d1 = ms::measure_clock_difference(a, b, &cursor, rng, cfg);
    const double drift_us_per_s = static_cast<double>(d1 - d0) / 1e6;
    std::printf("  measured drift: %.1f us/s (worst case in the paper: 35 us/s)\n",
                drift_us_per_s);
    // Drift accumulates only over one packet's flight time when the clocks
    // are resynchronized before every timestamped packet: the relative
    // error equals the drift rate itself.
    std::printf("  with per-packet resync the relative latency error is %.4f %%\n",
                drift_us_per_s * 1e-6 * 100.0);
    std::printf("  (paper: 0.0035 %%)\n");
  }

  if (!json_path.empty()) {
    const auto ts = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    if (mt::dump_json_to_file(json_path, registry.snapshot(ts)))
      std::fprintf(stderr, "telemetry snapshot written to %s\n", json_path.c_str());
    else
      std::fprintf(stderr, "failed to write telemetry snapshot to %s\n", json_path.c_str());
  }
  return 0;
}
