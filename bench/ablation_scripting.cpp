// Ablation: what does per-packet scripting cost?
//
// The paper's performance claim (Sections 1, 5) rests on LuaJIT compiling
// userscripts to machine code: "running Lua code for each packet is
// feasible and can even be faster than an implementation written in C".
// This harness quantifies the scripting spectrum on our reproduction:
//
//   1. hand-written C++ hot loop          (what LuaJIT-compiled Lua
//                                          approaches, per the paper)
//   2. declarative field-modifier program (a restricted "script" compiled
//                                          to a data structure)
//   3. generic config-driven generator    (the Pktgen-DPDK architecture)
//   4. tree-walking interpreter           (per-packet script WITHOUT a JIT)
//   5. generic bytecode VM                (the same script lowered to
//                                          register bytecode + inline caches,
//                                          trace specialization disabled)
//   6. trace-specialized VM (default)     (hot loops recorded and compiled
//                                          onto the field-modifier engine)
//
// The gap between (4) and (1) is the cost a JIT eliminates — the paper's
// architectural bet made visible. Tier (5) shows how much of it a cheap
// ahead-of-time bytecode compiler recovers without generating machine code;
// tier (6) is our answer to LuaJIT's trace compiler (paper Section 3.2).
//
// Results are also written as machine-readable JSON (per-tier mean/min
// cycles/pkt plus the ratios CI gates on).
//
// Usage: ablation_scripting [json_path]   (default BENCH_ablation_scripting.json)
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/static_generator.hpp"
#include "bench_util.hpp"
#include "core/device.hpp"
#include "core/task.hpp"
#include "core/field_modifier.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "proto/packet_view.hpp"
#include "script/bindings.hpp"
#include "script/interpreter.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mp = moongen::proto;
namespace sc = moongen::script;
using moongen::bench::measure_cycles_per_packet;

namespace {

constexpr std::size_t kPktSize = 60;

mb::Mempool::InitFn udp_prefill() {
  return [](mb::PktBuf& buf) {
    buf.set_length(kPktSize);
    mp::UdpPacketView view{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = kPktSize;
    view.fill(opts);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_ablation_scripting.json";
  moongen::bench::pin_measurement_thread();
  std::printf("Ablation: per-packet scripting cost (vary source IP + send)\n");
  std::printf("(paper: LuaJIT-compiled scripts match or beat C, Section 5.2;\n");
  std::printf(" without a JIT the interpretation overhead dominates)\n\n");

  struct TierResult {
    const char* key;
    const char* label;
    moongen::stats::RunningStats stats;
  };
  std::vector<TierResult> tiers;

  // 1. Hand-written C++ loop.
  {
    auto& dev = mc::Device::config(0, 1, 1);
    dev.disconnect();
    auto& queue = dev.get_tx_queue(0);
    queue.reset();
    mb::Mempool pool(4096, udp_prefill());
    mb::BufArray bufs(pool, 64);
    mc::Tausworthe rng(1);
    const auto s = measure_cycles_per_packet([&]() -> std::uint64_t {
      std::uint64_t sent = 0;
      while (sent < 256 * 1024) {
        bufs.alloc(kPktSize);
        for (auto* buf : bufs) {
          mp::UdpPacketView view{buf->bytes()};
          view.ip().src_be = mp::hton32(0x0a000001 + rng.next() % 256);
        }
        sent += queue.send(bufs);
      }
      return sent;
    });
    std::printf("  %-44s %8.1f +- %.1f cycles/pkt\n", "hand-written C++ loop", s.mean(),
                s.stddev());
    tiers.push_back({"hand_written_cpp", "hand-written C++ loop", s});
  }

  // 2. Declarative modifier program.
  {
    auto& dev = mc::Device::config(0, 1, 1);
    dev.disconnect();
    auto& queue = dev.get_tx_queue(0);
    queue.reset();
    mb::Mempool pool(4096, udp_prefill());
    mb::BufArray bufs(pool, 64);
    mc::ModifierProgram prog({{.field = {26, 4},
                               .kind = mc::FieldAction::Kind::kRandom,
                               .value = 0x0a000001,
                               .range = 256}});
    const auto s = measure_cycles_per_packet([&]() -> std::uint64_t {
      std::uint64_t sent = 0;
      while (sent < 256 * 1024) {
        bufs.alloc(kPktSize);
        for (auto* buf : bufs) prog.apply(buf->data());
        sent += queue.send(bufs);
      }
      return sent;
    });
    std::printf("  %-44s %8.1f +- %.1f cycles/pkt\n", "declarative modifier program", s.mean(),
                s.stddev());
    tiers.push_back({"modifier_program", "declarative modifier program", s});
  }

  // 3. Generic config-driven generator (Pktgen-DPDK architecture).
  {
    auto& dev = mc::Device::config(0, 1, 1);
    dev.disconnect();
    dev.get_tx_queue(0).reset();
    moongen::baseline::StaticGenConfig cfg;
    cfg.packet_size = kPktSize;
    cfg.src_ip_mode = moongen::baseline::StaticGenConfig::RangeMode::kRandom;
    cfg.src_ip_count = 256;
    cfg.checksum_offload = false;
    moongen::baseline::StaticGenerator gen(dev, 0, cfg);
    const auto s = measure_cycles_per_packet(
        [&]() -> std::uint64_t { return gen.run_packets(256 * 1024); });
    std::printf("  %-44s %8.1f +- %.1f cycles/pkt\n", "generic config-driven generator",
                s.mean(), s.stddev());
    tiers.push_back({"config_driven", "generic config-driven generator", s});
  }

  // 4/5/6. The same per-packet script, executed by the tree-walking
  // interpreter, by the generic bytecode VM (trace tier disabled) and by
  // the trace-specialized VM (the default engine).
  const auto scripted_tier = [](bool tree_walk, bool trace, const char* label) {
    mc::reset_run_state();
    const char* script = R"(
      function run(queue, mem, n)
        local baseIP = parseIPAddress("10.0.0.1")
        local bufs = mem:bufArray()
        local sent = 0
        while sent < n do
          bufs:alloc(60)
          for _, buf in ipairs(bufs) do
            buf:getUdpPacket().ip.src:set(baseIP + math.random(255) - 1)
          end
          sent = sent + queue:send(bufs)
        end
        return sent
      end
      function master() end
    )";
    sc::ScriptRuntime runtime(script);
    runtime.master().set_tree_walk(tree_walk);
    runtime.master().set_trace(trace);
    runtime.master().run();
    auto& dev = mc::Device::config(0, 1, 1);
    dev.disconnect();
    dev.get_tx_queue(0).reset();
    // Build the script-side objects once via the bindings.
    auto& interp = runtime.master();
    const auto dev_ud = interp.get_global("device").as_table()->get(
        sc::Table::Key{"config"});
    std::vector<sc::Value> cfg_args{sc::Value(0.0)};
    const auto dev_val = interp.call(dev_ud, cfg_args)[0];
    auto mem_fn = interp.get_global("memory").as_table()->get(sc::Table::Key{"createMemPool"});
    // Pool created through the binding, pre-filled once at setup (the
    // script's init closure runs per buffer, exactly like Listing 2).
    std::vector<sc::Value> mem_args{};
    const auto mem_val = interp.call(mem_fn, mem_args)[0];

    const double n_packets = 64 * 1024;
    std::vector<sc::Value> gq_args{sc::Value(0.0)};
    auto& dev_ref = *dev_val.as_userdata();
    const auto queue_val =
        dev_ref.methods()->methods.at("getTxQueue")(interp, dev_ref, gq_args)[0];
    const auto run_fn = interp.get_global("run");
    const auto measured = measure_cycles_per_packet([&]() -> std::uint64_t {
      std::vector<sc::Value> run_args{queue_val, mem_val, sc::Value(n_packets)};
      auto r = interp.call(run_fn, std::move(run_args));
      return static_cast<std::uint64_t>(r.empty() ? 0 : r[0].as_number());
    }, 9, 2);
    std::printf("  %-44s %8.1f +- %.1f cycles/pkt\n", label, measured.mean(),
                measured.stddev());
    return measured;
  };

  const auto tree_walk = scripted_tier(true, false, "tree-walking interpreter (no JIT)");
  tiers.push_back({"tree_walker", "tree-walking interpreter (no JIT)", tree_walk});
  const auto vm = scripted_tier(false, false, "generic bytecode VM (no traces)");
  tiers.push_back({"vm_generic", "generic bytecode VM (no traces)", vm});
  const auto traced = scripted_tier(false, true, "trace-specialized VM (default)");
  tiers.push_back({"vm_trace", "trace-specialized VM (default)", traced});

  // Ratio of per-engine minima: on a shared machine the minimum is the
  // cleanest estimate of intrinsic cost (noise only ever adds cycles), so
  // the ratio is stable enough to gate on in CI.
  std::printf("\nscripting speedup: compiled VM is %.2fx faster than the tree-walker\n",
              tree_walk.min() / vm.min());
  std::printf("trace tier: %.1f cycles/pkt min (%.2fx over the generic VM)\n", traced.min(),
              vm.min() / traced.min());
  std::printf("(the paper measured LuaJIT's scripted loop at ~101 cycles/pkt —\n"
              " line rate at 1.5 GHz)\n");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"moongen-bench-ablation-scripting-v1\",\n");
  std::fprintf(f,
               "  \"workload\": \"per-packet source-IP randomization + send, 64-packet batches, "
               "same logic at every tier\",\n");
  std::fprintf(f, "  \"tiers\": {\n");
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    const auto& t = tiers[i];
    std::fprintf(f,
                 "    \"%s\": {\"label\": \"%s\", \"mean_cycles_per_pkt\": %.2f, "
                 "\"min_cycles_per_pkt\": %.2f, \"stddev\": %.2f}%s\n",
                 t.key, t.label, t.stats.mean(), t.stats.min(), t.stats.stddev(),
                 i + 1 < tiers.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"ratios\": {\n");
  std::fprintf(f, "    \"tree_walker_over_vm_generic\": %.2f,\n", tree_walk.min() / vm.min());
  std::fprintf(f, "    \"tree_walker_over_vm_trace\": %.2f,\n", tree_walk.min() / traced.min());
  std::fprintf(f, "    \"vm_generic_over_vm_trace\": %.2f\n", vm.min() / traced.min());
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"note\": \"ratios and gates use per-tier minima: noise on a shared host only "
               "ever adds cycles. Numbers are measured on this host, never extrapolated.\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
