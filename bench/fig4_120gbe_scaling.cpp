// Reproduces Figure 4: multi-core scaling across twelve 10 GbE interfaces
// (emulated 120 Gbit/s).
//
// Section 5.5: six dual-port X540 NICs, two Xeon E5-2640 v2 CPUs at 2 GHz,
// UDP packets with varying source IPs. MoonGen reaches 178.5 Mpps
// (12 x 14.88 Mpps line rate) with 12 cores, scaling linearly — sending to
// multiple NICs is architecturally the same as sending to multiple queues
// of one NIC.
#include <cstdio>

#include "bench_util.hpp"
#include "core/device.hpp"
#include "core/field_modifier.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "nic/throughput_model.hpp"
#include "proto/packet_view.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mp = moongen::proto;
namespace mn = moongen::nic;

int main() {
  std::printf("Figure 4: Multi-core scaling, twelve 10 GbE interfaces at 2 GHz\n\n");

  // Cost of the varying-source-IP loop (the Section 5.5 workload).
  auto& dev = mc::Device::config(0, 1, 1);
  dev.disconnect();
  auto& queue = dev.get_tx_queue(0);
  mb::Mempool pool(4096, [](mb::PktBuf& buf) {
    buf.set_length(60);
    mp::UdpPacketView view{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = 60;
    view.fill(opts);
  });
  mb::BufArray bufs(pool, 64);
  mc::Tausworthe rng(5);
  const auto cost = moongen::bench::measure_cycles_per_packet([&]() -> std::uint64_t {
    std::uint64_t sent = 0;
    while (sent < 512 * 1024) {
      bufs.alloc(60);
      for (auto* buf : bufs) {
        mp::UdpPacketView view{buf->bytes()};
        view.ip().src_be = mp::hton32(0x0a000001 + rng.next() % 256);
      }
      bufs.offload_udp_checksums();
      sent += queue.send(bufs);
    }
    return sent;
  });
  std::printf("measured workload cost: %.1f +- %.1f cycles/pkt\n\n", cost.mean(), cost.stddev());

  std::printf("  %-7s %12s %16s %12s\n", "cores", "Mpps", "Rate [Gbit/s]", "bottleneck");
  for (int k = 1; k <= 12; ++k) {
    mn::ThroughputQuery q;
    q.frame_size = 64;
    q.cores = k;
    q.cycles_per_packet = cost.mean();
    q.cpu_hz = 2.0e9;
    q.link_mbit = 10'000;
    q.ports = k;  // each core drives one port, as in the paper's setup
    const auto r = mn::predict_throughput(q);
    std::printf("  %-7d %12.2f %16.2f %12s\n", k, r.total_pps / 1e6, r.total_wire_mbit / 1e3,
                r.bottleneck == mn::Bottleneck::kCpu ? "CPU" : "line rate");
  }
  std::printf("\n(paper: 178.5 Mpps at 12 cores = 12 x 10 GbE line rate, linear scaling;\n");
  std::printf(" the 2 GHz clock could even be reduced to 1.5 GHz for this workload)\n");

  const double min_ghz = cost.mean() * 14.88e6 / 1e9;
  std::printf("\nper-core frequency needed for one 10 GbE port: %.2f GHz\n", min_ghz);
  return 0;
}
