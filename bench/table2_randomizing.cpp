// Reproduces Table 2 (cost of randomizing packets) and the Section 5.6.3
// cost-estimation example.
//
// Paper values (cycles/pkt, baseline 85.1 = constant field + send):
//   fields   random   counter
//     1       32.3      27.1
//     2       39.8      33.1
//     4       66.0      38.1
//     8      133.5      41.7
// Marginal cost: ~17 cycles per random field, ~1 cycle per counter field.
//
// Section 5.6.3 then predicts the throughput of the Section 5.3 script
// (8 random fields + IP checksum offloading) from these numbers:
// 229.2 +- 3.9 cycles/pkt -> 10.47 +- 0.18 Mpps at 2.4 GHz, measured 10.3.
// We reproduce the same composition check against our own measured loop.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/device.hpp"
#include "core/field_modifier.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "proto/packet_view.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mp = moongen::proto;
using moongen::bench::measure_cycles_per_packet;
using moongen::stats::RunningStats;

namespace {

constexpr std::uint64_t kPacketsPerRep = 512 * 1024;
constexpr std::size_t kBatch = 64;
constexpr std::size_t kPktSize = 60;

mb::Mempool::InitFn udp_prefill() {
  return [](mb::PktBuf& buf) {
    buf.set_length(kPktSize);
    mp::UdpPacketView view{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = kPktSize;
    view.fill(opts);
  };
}

/// Offsets of 4-byte fields within the first cacheline: IP src/dst, ports,
/// payload words — the fields a flow-randomizing script would touch.
std::vector<mc::FieldAction> make_actions(int fields, mc::FieldAction::Kind kind) {
  static constexpr std::uint16_t kOffsets[8] = {26, 30, 34, 38, 42, 46, 50, 54};
  std::vector<mc::FieldAction> actions;
  for (int i = 0; i < fields; ++i) {
    actions.push_back({.field = {kOffsets[i], 4}, .kind = kind, .value = 0, .range = 0});
  }
  return actions;
}

RunningStats measure_modifier(mc::ModifierProgram& prog) {
  auto& dev = mc::Device::config(0, 1, 1);
  dev.disconnect();
  auto& queue = dev.get_tx_queue(0);
  queue.reset();
  mb::Mempool pool(4096, udp_prefill());
  mb::BufArray bufs(pool, kBatch);
  return measure_cycles_per_packet([&]() -> std::uint64_t {
    std::uint64_t sent = 0;
    while (sent < kPacketsPerRep) {
      bufs.alloc(kPktSize);
      for (auto* buf : bufs) prog.apply(buf->data());
      sent += queue.send(bufs);
    }
    return sent;
  });
}

}  // namespace

int main() {
  std::printf("Table 2: Per-packet costs of modifications [cycles/pkt]\n");
  std::printf("(paper: rand 32.3/39.8/66.0/133.5, counter 27.1/33.1/38.1/41.7;\n");
  std::printf(" baseline 85.1 = constant field + send)\n\n");

  mc::ModifierProgram const_prog(make_actions(1, mc::FieldAction::Kind::kConstant));
  const auto baseline = measure_modifier(const_prog);
  std::printf("  baseline (constant + send): %.1f +- %.1f cycles/pkt\n\n", baseline.mean(),
              baseline.stddev());

  std::printf("  %-8s %-20s %-20s\n", "Fields", "Cycles/Pkt (Rand)", "Cycles/Pkt (Counter)");
  double rand8 = 0;
  for (int fields : {1, 2, 4, 8}) {
    mc::ModifierProgram rand_prog(make_actions(fields, mc::FieldAction::Kind::kRandom));
    mc::ModifierProgram ctr_prog(make_actions(fields, mc::FieldAction::Kind::kCounter));
    const auto r = measure_modifier(rand_prog);
    const auto c = measure_modifier(ctr_prog);
    // Paper reports the cost relative to the plain baseline... the table's
    // values are the extra cost vs. sending a constant packet.
    const double r_delta = r.mean() - baseline.mean();
    const double c_delta = c.mean() - baseline.mean();
    std::printf("  %-8d %8.1f +- %4.1f     %8.1f +- %4.1f\n", fields, r_delta,
                r.stddev() + baseline.stddev(), c_delta, c.stddev() + baseline.stddev());
    if (fields == 8) rand8 = r.mean();
  }

  // --- Section 5.3 aside: Tausworthe vs LCG --------------------------------
  // "Since a high quality random number generator is not required here, a
  // simple linear congruential generator would be faster."
  {
    auto& dev = mc::Device::config(0, 1, 1);
    dev.disconnect();
    auto& queue = dev.get_tx_queue(0);
    queue.reset();
    mb::Mempool pool(4096, udp_prefill());
    mb::BufArray bufs(pool, kBatch);
    mc::Tausworthe taus(5);
    mc::Lcg lcg(5);
    auto loop = [&](auto& rng) {
      return [&]() -> std::uint64_t {
        std::uint64_t sent = 0;
        while (sent < kPacketsPerRep) {
          bufs.alloc(kPktSize);
          for (auto* buf : bufs) {
            auto* fields = reinterpret_cast<std::uint32_t*>(buf->data() + 26);
            for (int f = 0; f < 8; ++f) fields[f] = rng.next();
          }
          sent += queue.send(bufs);
        }
        return sent;
      };
    };
    const auto delta = moongen::bench::measure_cycles_delta(loop(taus), loop(lcg));
    std::printf("\nSection 5.3 aside: switching 8 fields from Tausworthe to LCG saves"
                " %.1f +- %.1f cycles/pkt\n", -delta.mean(), delta.stddev());
  }

  // --- Section 5.6.3: cost estimation example -----------------------------
  std::printf("\nSection 5.6.3: cost estimation example\n");
  // Predicted cost: IO + modification + 8 random fields + IP offloading,
  // composed from the measured numbers above (rand8 already includes IO and
  // modification).
  auto& dev = mc::Device::config(0, 1, 1);
  dev.disconnect();
  auto& queue = dev.get_tx_queue(0);
  queue.reset();
  mb::Mempool pool(4096, udp_prefill());
  mb::BufArray bufs(pool, kBatch);
  // Measure IP offloading delta on this binary's build for composition.
  const auto tx_plain = measure_cycles_per_packet([&]() -> std::uint64_t {
    std::uint64_t sent = 0;
    while (sent < kPacketsPerRep) {
      bufs.alloc(kPktSize);
      sent += queue.send(bufs);
    }
    return sent;
  });
  const auto tx_ipoff = measure_cycles_per_packet([&]() -> std::uint64_t {
    std::uint64_t sent = 0;
    while (sent < kPacketsPerRep) {
      bufs.alloc(kPktSize);
      bufs.offload_ip_checksums();
      sent += queue.send(bufs);
    }
    return sent;
  });
  const double ip_delta = tx_ipoff.mean() - tx_plain.mean();
  const double predicted_cycles = rand8 + ip_delta;

  // Measured: the actual Section 5.3-style loop (8 random fields + IP
  // checksum offload + send).
  mc::ModifierProgram full_prog(make_actions(8, mc::FieldAction::Kind::kRandom));
  const auto measured = measure_cycles_per_packet([&]() -> std::uint64_t {
    std::uint64_t sent = 0;
    while (sent < kPacketsPerRep) {
      bufs.alloc(kPktSize);
      for (auto* buf : bufs) full_prog.apply(buf->data());
      bufs.offload_ip_checksums();
      sent += queue.send(bufs);
    }
    return sent;
  });

  const double ghz = 2.4;  // the paper's reference clock for this example
  std::printf("  predicted: %.1f cycles/pkt -> %.2f Mpps at %.1f GHz\n", predicted_cycles,
              ghz * 1e3 / predicted_cycles, ghz);
  std::printf("  measured:  %.1f cycles/pkt -> %.2f Mpps at %.1f GHz\n", measured.mean(),
              ghz * 1e3 / measured.mean(), ghz);
  std::printf("  (paper: predicted 229.2 +- 3.9 -> 10.47 Mpps; measured 10.3 Mpps)\n");
  const double rel_err = (measured.mean() - predicted_cycles) / measured.mean() * 100.0;
  std::printf("  prediction error: %.1f %%\n", rel_err);
  return 0;
}
