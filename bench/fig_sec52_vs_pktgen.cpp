// Reproduces the Section 5.2 comparison with Pktgen-DPDK.
//
// Workload: minimum-sized UDP packets with 256 varying source IPs on one
// core. The paper gradually raises the CPU frequency until each generator
// reaches the 10 GbE line rate of 14.88 Mpps:
//   Pktgen-DPDK: 1.7 GHz needed; 14.12 Mpps at 1.5 GHz
//   MoonGen:     1.5 GHz needed
//
// We cannot change the host clock, so we apply the paper's own methodology
// (Section 5.1): measure cycles/packet of both generators and convert —
// required_frequency = cycles_per_packet * 14.88e6. The reproduced claim is
// the *ordering and ratio*: the specialized per-test loop ("you only pay
// for what you use") beats the generic configurable main loop.
#include <cstdio>

#include "baseline/static_generator.hpp"
#include "bench_util.hpp"
#include "core/device.hpp"
#include "core/field_modifier.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "proto/packet_view.hpp"

namespace mc = moongen::core;
namespace mb = moongen::membuf;
namespace mp = moongen::proto;
namespace mbl = moongen::baseline;
using moongen::bench::measure_cycles_per_packet;

namespace {
constexpr std::uint64_t kPacketsPerRep = 512 * 1024;
constexpr std::size_t kPktSize = 60;
}  // namespace

int main() {
  std::printf("Section 5.2: MoonGen-style specialized loop vs. Pktgen-DPDK-style\n");
  std::printf("generic generator (min-size UDP, 256 varying source IPs, 1 core)\n\n");

  // --- MoonGen-style: pre-filled mempool + tight specialized loop ---------
  auto& dev = mc::Device::config(0, 1, 1);
  dev.disconnect();
  auto& queue = dev.get_tx_queue(0);
  queue.reset();
  mb::Mempool pool(4096, [](mb::PktBuf& buf) {
    buf.set_length(kPktSize);
    mp::UdpPacketView view{buf.bytes()};
    mp::UdpFillOptions opts;
    opts.packet_length = kPktSize;
    opts.udp_src = 1234;
    opts.udp_dst = 42;
    view.fill(opts);
  });
  mb::BufArray bufs(pool, 64);
  mc::Tausworthe rng(7);
  const auto moongen = measure_cycles_per_packet([&]() -> std::uint64_t {
    std::uint64_t sent = 0;
    const std::uint32_t base_ip = 0x0a000001;
    while (sent < kPacketsPerRep) {
      bufs.alloc(kPktSize);
      for (auto* buf : bufs) {
        mp::UdpPacketView view{buf->bytes()};
        view.ip().src_be = mp::hton32(base_ip + rng.next() % 256);  // Listing 2, line 20
      }
      bufs.offload_udp_checksums();  // Listing 2, line 22
      sent += queue.send(bufs);
    }
    return sent;
  });

  // --- Pktgen-DPDK-style: generic configurable main loop ------------------
  mbl::StaticGenConfig cfg;
  cfg.packet_size = kPktSize;
  cfg.src_ip_mode = mbl::StaticGenConfig::RangeMode::kRandom;
  cfg.src_ip_count = 256;
  cfg.checksum_offload = true;
  mbl::StaticGenerator pktgen(dev, 0, cfg);
  const auto generic = measure_cycles_per_packet(
      [&]() -> std::uint64_t { return pktgen.run_packets(kPacketsPerRep); });

  const double line_rate = 14.88e6;
  const double f_mg = moongen.mean() * line_rate / 1e9;
  const double f_pg = generic.mean() * line_rate / 1e9;
  std::printf("  %-28s %10s %28s\n", "generator", "cycles/pkt", "frequency for 14.88 Mpps");
  std::printf("  %-28s %7.1f +- %4.1f %17.2f GHz\n", "MoonGen-style (specialized)",
              moongen.mean(), moongen.stddev(), f_mg);
  std::printf("  %-28s %7.1f +- %4.1f %17.2f GHz\n", "Pktgen-DPDK-style (generic)",
              generic.mean(), generic.stddev(), f_pg);
  std::printf("\n  At %.2f GHz the generic generator reaches %.2f Mpps (MoonGen: line rate)\n",
              f_mg, f_mg * 1e3 / generic.mean());
  std::printf("  paper: MoonGen 1.5 GHz, Pktgen-DPDK 1.7 GHz (14.12 Mpps at 1.5 GHz)\n");
  std::printf("  specialization advantage: %.0f %% fewer cycles per packet\n",
              (1.0 - moongen.mean() / generic.mean()) * 100.0);
  return 0;
}
