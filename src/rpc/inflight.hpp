// Flat open-addressing table for in-flight RPC requests.
//
// An open-loop generator near saturation holds *millions* of outstanding
// requests (the whole point of the open-vs-closed comparison is that the
// open system's backlog is unbounded). A node-based map would pay one
// allocation and a pointer chase per request; this table is one flat array
// of 32-byte records, fully allocated at construction, with linear probing
// and backward-shift deletion — the steady state never touches the heap
// and a lookup is one hash plus a short scan in one or two cache lines.
//
// Sequence ids are the keys; id 0 is reserved as the empty marker (the
// generators start their sequences at 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"

namespace moongen::rpc {

class InFlightTable {
 public:
  struct Record {
    std::uint64_t seq = 0;  // 0: slot empty
    std::uint64_t key = 0;
    sim::SimTime tx_time_ps = 0;
    std::uint64_t aux = 0;  // caller-defined (closed-loop: user index)
  };
  static_assert(sizeof(Record) == 32);

  /// Sized to hold `expected` entries: the slot count is the next power of
  /// two at or above 2 * expected (load factor <= 0.5 at the expected
  /// population; inserts are refused beyond ~87 % occupancy).
  explicit InFlightTable(std::size_t expected) {
    std::size_t slots = 16;
    while (slots < expected * 2) slots <<= 1;
    slots_.resize(slots);
    mask_ = slots - 1;
    max_size_ = slots - slots / 8;
  }

  /// False if `seq` is zero, already present, or the table is at its
  /// occupancy ceiling.
  bool insert(std::uint64_t seq, std::uint64_t key, sim::SimTime tx_time_ps,
              std::uint64_t aux = 0) {
    if (seq == 0 || size_ >= max_size_) return false;
    std::size_t i = hash(seq);
    while (slots_[i].seq != 0) {
      if (slots_[i].seq == seq) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = Record{seq, key, tx_time_ps, aux};
    ++size_;
    if (size_ > peak_) peak_ = size_;
    return true;
  }

  /// Removes and returns the record for `seq`, or nullopt.
  std::optional<Record> take(std::uint64_t seq) {
    if (seq == 0) return std::nullopt;
    std::size_t i = hash(seq);
    while (slots_[i].seq != 0) {
      if (slots_[i].seq == seq) {
        const Record out = slots_[i];
        erase_at(i);
        return out;
      }
      i = (i + 1) & mask_;
    }
    return std::nullopt;
  }

  [[nodiscard]] bool contains(std::uint64_t seq) const {
    if (seq == 0) return false;
    std::size_t i = hash(seq);
    while (slots_[i].seq != 0) {
      if (slots_[i].seq == seq) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// Removes every record with tx_time_ps < deadline, invoking fn(record)
  /// for each. One full-table scan; records shifted backwards across the
  /// scan position during deletion are caught on the next sweep, so a
  /// periodic caller reclaims every expired entry within two sweeps.
  template <typename Fn>
  std::size_t evict_older_than(sim::SimTime deadline_ps, Fn&& fn) {
    std::size_t evicted = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      while (slots_[i].seq != 0 && slots_[i].tx_time_ps < deadline_ps) {
        const Record r = slots_[i];
        erase_at(i);
        fn(r);
        ++evicted;
        // erase_at may shift a successor into slot i: re-examine it.
      }
    }
    return evicted;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t peak() const { return peak_; }
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

 private:
  [[nodiscard]] std::size_t hash(std::uint64_t seq) const {
    // splitmix64 finalizer: sequential ids scatter uniformly.
    std::uint64_t z = seq + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>((z ^ (z >> 31)) & mask_);
  }

  /// Backward-shift deletion: close the gap by moving displaced successors
  /// down, so probes never need tombstones and long-lived tables don't
  /// degrade (classic Knuth 6.4 algorithm R).
  void erase_at(std::size_t i) {
    std::size_t j = i;
    for (;;) {
      slots_[i].seq = 0;
      for (;;) {
        j = (j + 1) & mask_;
        if (slots_[j].seq == 0) {
          --size_;
          return;
        }
        const std::size_t home = hash(slots_[j].seq);
        // Move j down iff its home position does not lie in (i, j]
        // cyclically — i.e. the probe from home to j passes through i.
        if (i <= j ? (home <= i || home > j) : (home <= i && home > j)) break;
      }
      slots_[i] = slots_[j];
      i = j;
    }
  }

  std::vector<Record> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_ = 0;
  std::size_t max_size_ = 0;
};

}  // namespace moongen::rpc
