#include "rpc/codec.hpp"

#include <cstring>
#include <stdexcept>

namespace moongen::rpc {

const char* to_string(Op op) {
  switch (op) {
    case Op::kGet: return "get";
    case Op::kSet: return "set";
    case Op::kGetHit: return "get_hit";
    case Op::kGetMiss: return "get_miss";
    case Op::kSetAck: return "set_ack";
  }
  return "?";
}

nic::Frame make_rpc_frame(const RpcTemplateOptions& opts) {
  if (opts.frame_size < RpcPacketView::kHeaderStack)
    throw std::invalid_argument("make_rpc_frame: frame_size below RPC header stack");
  std::vector<std::uint8_t> bytes(opts.frame_size, 0);
  RpcPacketView view{{bytes.data(), bytes.size()}};
  proto::UdpFillOptions fill;
  fill.packet_length = opts.frame_size;
  fill.eth_src = proto::MacAddress::from_uint64(0x020000000001ull);
  fill.eth_dst = proto::MacAddress::from_uint64(0x020000000002ull);
  fill.udp_src = opts.udp_src;
  fill.udp_dst = opts.udp_dst;
  view.fill(fill);
  view.rpc().set_magic();
  view.rpc().set_op(opts.opcode);
  return nic::make_frame(std::move(bytes));
}

void write_rpc_fields(std::span<std::uint8_t> frame_bytes, Op op, std::uint64_t seq,
                      std::uint64_t key, sim::SimTime tx_time_ps, std::uint16_t value_len) {
  RpcPacketView view{frame_bytes};
  RpcHeader& h = view.rpc();
  h.set_op(op);
  h.set_seq(seq);
  h.set_key(key);
  h.set_tx_time_ps(tx_time_ps);
  h.set_value_len(value_len);
}

std::optional<Decoded> decode(std::span<const std::uint8_t> frame_bytes) {
  const auto pc = proto::classify(frame_bytes);
  if (!pc.has_value() || !pc->is_udp || pc->l7_offset == 0) return std::nullopt;
  if (frame_bytes.size() < pc->l7_offset + sizeof(RpcHeader)) return std::nullopt;
  // classify() already bounds-checked the stack; the RPC header sits at the
  // L7 offset (VLAN tags and IP options shift it, unlike kHeaderStack).
  RpcHeader h;
  std::memcpy(&h, frame_bytes.data() + pc->l7_offset, sizeof(h));
  if (!h.valid()) return std::nullopt;
  if (h.opcode > static_cast<std::uint8_t>(Op::kSetAck)) return std::nullopt;
  Decoded out;
  out.op = h.op();
  out.seq = h.get_seq();
  out.key = h.get_key();
  out.tx_time_ps = h.get_tx_time_ps();
  out.value_len = h.get_value_len();
  return out;
}

FramePool::FramePool(const nic::Frame& tmpl, std::size_t count) {
  if (count == 0) throw std::invalid_argument("FramePool: empty pool");
  buffers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    buffers_.push_back(std::make_shared<std::vector<std::uint8_t>>(*tmpl.data));
}

std::pair<std::span<std::uint8_t>, nic::Frame> FramePool::acquire() {
  auto& buf = buffers_[next_];
  next_ = next_ + 1 == buffers_.size() ? 0 : next_ + 1;
  // The Frame aliases the buffer through a const pointer; the pool keeps
  // the mutable handle, so the next acquisition of this slot can rewrite
  // the per-request fields in place without reallocating.
  return {std::span<std::uint8_t>{buf->data(), buf->size()},
          nic::Frame{.data = std::shared_ptr<const std::vector<std::uint8_t>>(buf)}};
}

}  // namespace moongen::rpc
