// Memcache-style RPC codec over UDP.
//
// The paper positions MoonGen as a platform for "arbitrary packet
// processing tasks" beyond frame blasting (Section 3.4); this codec is the
// workload plane built on that claim: a compact get/set protocol whose
// requests carry a sequence id, the key id, and the client's departure
// timestamp in the UDP payload. The server echoes all three, so a response
// alone is enough to compute the request's round-trip latency and to clear
// its in-flight table entry — no per-request state needs to travel through
// any side channel, exactly like the timestamp-in-payload trick real
// memcached load generators use.
//
// Wire layout (after the Ethernet/IPv4/UDP stack of proto::UdpPacketView):
//
//   0        4       5       6          8       16      24            32
//   +--------+-------+-------+----------+-------+-------+-------------+
//   | magic  | opcode| flags | value_len|  seq  |  key  | tx_time_ps  |
//   | "MCR1" | u8    | u8    | u16      |  u64  |  u64  |  u64        |
//   +--------+-------+-------+----------+-------+-------+-------------+
//
// All fields are big-endian like every other header in proto/.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "nic/frame.hpp"
#include "proto/byte_order.hpp"
#include "proto/packet_view.hpp"
#include "sim/time.hpp"

namespace moongen::rpc {

enum class Op : std::uint8_t {
  kGet = 0,
  kSet = 1,
  kGetHit = 2,
  kGetMiss = 3,
  kSetAck = 4,
};

[[nodiscard]] constexpr bool is_response(Op op) { return op >= Op::kGetHit; }
[[nodiscard]] const char* to_string(Op op);

struct [[gnu::packed]] RpcHeader {
  static constexpr std::uint32_t kMagic = 0x4d435231;  // "MCR1"

  std::uint32_t magic = 0;
  std::uint8_t opcode = 0;
  std::uint8_t flags = 0;
  std::uint16_t value_len = 0;
  std::uint64_t seq = 0;
  std::uint64_t key = 0;
  std::uint64_t tx_time_ps = 0;

  [[nodiscard]] bool valid() const { return proto::ntoh32(magic) == kMagic; }
  void set_magic() { magic = proto::hton32(kMagic); }
  [[nodiscard]] Op op() const { return static_cast<Op>(opcode); }
  void set_op(Op op) { opcode = static_cast<std::uint8_t>(op); }
  [[nodiscard]] std::uint16_t get_value_len() const { return proto::ntoh16(value_len); }
  void set_value_len(std::uint16_t len) { value_len = proto::hton16(len); }
  [[nodiscard]] std::uint64_t get_seq() const { return proto::ntoh64(seq); }
  void set_seq(std::uint64_t s) { seq = proto::hton64(s); }
  [[nodiscard]] std::uint64_t get_key() const { return proto::ntoh64(key); }
  void set_key(std::uint64_t k) { key = proto::hton64(k); }
  [[nodiscard]] std::uint64_t get_tx_time_ps() const { return proto::ntoh64(tx_time_ps); }
  void set_tx_time_ps(std::uint64_t t) { tx_time_ps = proto::hton64(t); }
};
static_assert(sizeof(RpcHeader) == 32);

/// View of an Ethernet/IPv4/UDP/RPC packet.
class RpcPacketView : public proto::UdpPacketView {
 public:
  using UdpPacketView::UdpPacketView;

  static constexpr std::size_t kHeaderStack =
      proto::UdpPacketView::kHeaderStack + sizeof(RpcHeader);

  [[nodiscard]] RpcHeader& rpc() const {
    return *reinterpret_cast<RpcHeader*>(frame_.data() + proto::UdpPacketView::kHeaderStack);
  }
  [[nodiscard]] std::span<std::uint8_t> value() const { return frame_.subspan(kHeaderStack); }
};

/// Default memcache UDP port.
inline constexpr std::uint16_t kRpcUdpPort = 11211;

struct RpcTemplateOptions {
  /// Buffer length without FCS; must fit the header stack.
  std::size_t frame_size = 96;
  std::uint16_t udp_src = 9000;
  std::uint16_t udp_dst = kRpcUdpPort;
  Op opcode = Op::kGet;
};

/// Builds a frame template with the full header stack filled and the RPC
/// per-request fields zeroed. Throws std::invalid_argument if `frame_size`
/// cannot hold the header stack.
nic::Frame make_rpc_frame(const RpcTemplateOptions& opts);

/// Per-request fields pulled out of a frame by decode().
struct Decoded {
  Op op = Op::kGet;
  std::uint64_t seq = 0;
  std::uint64_t key = 0;
  sim::SimTime tx_time_ps = 0;
  std::uint16_t value_len = 0;
};

/// Rewrites the per-request RPC fields of a frame built from
/// make_rpc_frame's template. The header stack is left untouched, so this
/// is the entire per-request encoding cost: five stores into a
/// preallocated buffer.
void write_rpc_fields(std::span<std::uint8_t> frame_bytes, Op op, std::uint64_t seq,
                      std::uint64_t key, sim::SimTime tx_time_ps, std::uint16_t value_len = 0);

/// Parses `frame_bytes` as Ethernet/IPv4/UDP/RPC. Returns nullopt for
/// anything that is not a well-formed RPC packet (wrong protocol stack,
/// truncated payload, bad magic) — receivers must tolerate foreign or
/// corrupted traffic on the wire.
std::optional<Decoded> decode(std::span<const std::uint8_t> frame_bytes);

/// Round-robin pool of preallocated mutable frame buffers sharing one
/// template. acquire() hands out the next buffer and a Frame aliasing it;
/// the caller rewrites the per-request fields and posts the Frame. A
/// buffer is reused after `count` further acquisitions, so `count` must
/// exceed the maximum number of frames the NIC can hold in flight
/// (descriptor ring + FIFO + wire) — then the steady state allocates
/// nothing per request.
class FramePool {
 public:
  FramePool(const nic::Frame& tmpl, std::size_t count);

  /// Mutable bytes of the next buffer plus the Frame sharing them.
  std::pair<std::span<std::uint8_t>, nic::Frame> acquire();

  [[nodiscard]] std::size_t size() const { return buffers_.size(); }

 private:
  std::vector<std::shared_ptr<std::vector<std::uint8_t>>> buffers_;
  std::size_t next_ = 0;
};

}  // namespace moongen::rpc
