#include "rpc/latency_recorder.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace moongen::rpc {

void LatencyRecorder::write_json(std::ostream& os, std::string_view label) const {
  // Fixed-format printf keeps the output byte-identical run to run; ostream
  // double formatting is locale- and precision-state dependent.
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"label\": \"%.*s\", \"count\": %" PRIu64 ", \"min_ns\": %" PRIu64
                ", \"mean_ns\": %.1f, \"stddev_ns\": %.1f, \"p50_ns\": %" PRIu64
                ", \"p99_ns\": %" PRIu64 ", \"p999_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64 "}",
                static_cast<int>(label.size()), label.data(), count(), min_ns(), mean_ns(),
                stddev_ns(), p50_ns(), p99_ns(), p999_ns(), max_ns());
  os << buf;
}

}  // namespace moongen::rpc
