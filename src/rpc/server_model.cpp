#include "rpc/server_model.hpp"

#include <algorithm>
#include <cmath>

namespace moongen::rpc {

namespace {
/// Backoff before re-posting a response that hit a full TX ring.
constexpr sim::SimTime kTxRetryGapPs = 5 * sim::kPsPerUs;

nic::Frame response_template(const ServerConfig& cfg) {
  RpcTemplateOptions opts;
  opts.frame_size = cfg.response_frame_size;
  opts.udp_src = cfg.udp_src;
  opts.udp_dst = cfg.udp_dst;
  opts.opcode = Op::kGetHit;
  return make_rpc_frame(opts);
}
}  // namespace

ServerModel::ServerModel(nic::Port& port, ServerConfig config)
    : port_(port),
      events_(port.events()),
      cfg_(config),
      pool_(response_template(config), config.pool_frames),
      queue_(config.queue_capacity),
      tx_retry_(config.pool_frames),
      exp_service_(config.service_mean_ps, config.seed ^ 0x5e71ce5ull),
      logn_service_(stats::LognormalSampler::from_mean(config.service_mean_ps,
                                                       config.lognormal_sigma,
                                                       config.seed ^ 0x10c0f3a1ull)) {
  // Pre-size the ring storage: BoundedRing grows lazily, and a queue that
  // deepens for the first time mid-measurement would allocate there.
  queue_.reserve(config.queue_capacity);
  tx_retry_.reserve(config.pool_frames);
  auto& rx = port_.rx_queue(cfg_.rx_queue);
  rx.set_store(false);
  rx.set_callback([this](const nic::RxQueueModel::Entry& e) { on_rx(e); });
}

void ServerModel::install_faults(fault::FaultPlane& plane, const std::string& site) {
  fp_stall_ = plane.point(fault::FaultKind::kStall, site);
}

void ServerModel::on_rx(const nic::RxQueueModel::Entry& entry) {
  const auto& bytes = *entry.frame.data;
  const auto decoded = decode({bytes.data(), bytes.size()});
  if (!decoded.has_value() || is_response(decoded->op)) {
    ++garbage_;
    return;
  }
  ++received_;
  if (queue_.full()) {
    // Overload shedding: the request vanishes; the client sees a timeout.
    ++queue_drops_;
    return;
  }
  queue_.push_back(PendingRequest{decoded->op, decoded->seq, decoded->key, decoded->tx_time_ps,
                                  entry.frame.flow});
  if (queue_.size() > peak_queue_) peak_queue_ = queue_.size();
  try_dispatch();
}

sim::SimTime ServerModel::sample_service_ps() {
  double ps = cfg_.service_mean_ps;
  switch (cfg_.service) {
    case ServerConfig::Service::kFixed: break;
    case ServerConfig::Service::kExponential: ps = exp_service_.next(); break;
    case ServerConfig::Service::kLognormal: ps = logn_service_.next(); break;
  }
  const auto rounded = std::llround(ps);
  return rounded > 0 ? static_cast<sim::SimTime>(rounded) : 1;
}

void ServerModel::try_dispatch() {
  const sim::SimTime now = events_.now();
  if (now < stall_until_ps_) return;  // frozen; the stall-end event resumes
  while (busy_ < cfg_.workers && !queue_.empty()) {
    if (fp_stall_.installed()) {
      if (const auto* rule = fp_stall_.fire(now); rule != nullptr) {
        ++stalls_;
        const auto stall_ps = static_cast<sim::SimTime>(std::max(rule->param, 1.0));
        stall_until_ps_ = now + stall_ps;
        events_.schedule_in_inline(stall_ps, [this] { try_dispatch(); });
        return;
      }
    }
    const PendingRequest req = queue_.pop_front();
    ++busy_;
    events_.schedule_in_inline(sample_service_ps(), [this, req] { complete(req); });
  }
}

void ServerModel::complete(const PendingRequest& req) {
  --busy_;
  ++completed_;
  send_response(req);
  try_dispatch();
}

void ServerModel::send_response(const PendingRequest& req) {
  Op op = Op::kSetAck;
  std::uint16_t value_len = 0;
  if (req.op == Op::kGet) {
    if (req.key < cfg_.cache_keys) {
      op = Op::kGetHit;
      value_len =
          static_cast<std::uint16_t>(cfg_.response_frame_size - RpcPacketView::kHeaderStack);
    } else {
      op = Op::kGetMiss;
      ++misses_;
    }
  }
  auto [bytes, frame] = pool_.acquire();
  write_rpc_fields(bytes, op, req.seq, req.key, req.tx_time_ps, value_len);
  frame.seq = req.seq;
  frame.flow = req.flow;
  if (!port_.tx_queue(cfg_.tx_queue).post(std::move(frame))) {
    // TX ring full: park the request and retry on a timer; re-encoding at
    // retry time reuses a fresh pool buffer.
    if (tx_retry_.full()) {
      ++tx_drops_;
      return;
    }
    ++tx_retries_;
    tx_retry_.push_back(req);
    if (!retry_timer_armed_) {
      retry_timer_armed_ = true;
      events_.schedule_in_inline(kTxRetryGapPs, [this] { drain_tx_retry(); });
    }
  }
}

void ServerModel::drain_tx_retry() {
  retry_timer_armed_ = false;
  while (!tx_retry_.empty()) {
    if (port_.tx_queue(cfg_.tx_queue).ring_free() == 0) break;
    const PendingRequest req = tx_retry_.pop_front();
    send_response(req);
  }
  if (!tx_retry_.empty() && !retry_timer_armed_) {
    retry_timer_armed_ = true;
    events_.schedule_in_inline(kTxRetryGapPs, [this] { drain_tx_retry(); });
  }
}

void ServerModel::bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix) {
  if (tm_.received.valid()) return;
  tm_.received = tree.gauge(prefix + ".received");
  tm_.completed = tree.gauge(prefix + ".completed");
  tm_.queue_depth = tree.gauge(prefix + ".queue_depth");
  tm_.queue_drops = tree.gauge(prefix + ".queue_drops");
  tm_.stalls = tree.gauge(prefix + ".stalls");
  publish_telemetry();
}

void ServerModel::bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix) {
  bind_telemetry(registry.shard(0), prefix);
}

void ServerModel::publish_telemetry() {
  if (!tm_.received.valid()) return;
  tm_.received.set(static_cast<double>(received_));
  tm_.completed.set(static_cast<double>(completed_));
  tm_.queue_depth.set(static_cast<double>(queue_.size()));
  tm_.queue_drops.set(static_cast<double>(queue_drops_));
  tm_.stalls.set(static_cast<double>(stalls_));
}

}  // namespace moongen::rpc
