#include "rpc/open_loop.hpp"

#include <cmath>

namespace moongen::rpc {
namespace detail {

namespace {
/// Backoff before re-posting requests parked on a full TX ring.
constexpr sim::SimTime kTxRetryGapPs = 5 * sim::kPsPerUs;

nic::Frame request_template(const WorkloadConfig& cfg) {
  RpcTemplateOptions opts;
  opts.frame_size = cfg.frame_size;
  opts.udp_src = cfg.udp_src;
  opts.udp_dst = cfg.udp_dst;
  opts.opcode = Op::kGet;
  return make_rpc_frame(opts);
}
}  // namespace

ClientBase::ClientBase(nic::Port& port, LatencyRecorder& recorder, const WorkloadConfig& cfg)
    : port_(port),
      events_(port.events()),
      cfg_(cfg),
      recorder_(recorder),
      pool_(request_template(cfg), cfg.pool_frames),
      table_(cfg.inflight_expected),
      pending_(cfg.pending_capacity),
      opmix_(cfg.seed ^ 0x0b5e55edull),
      zipf_(cfg.key_space, cfg.zipf_skew, cfg.seed ^ 0x21f0a11a5ull),
      next_seq_(cfg.seq_base != 0 ? cfg.seq_base : 1) {
  pending_.reserve(cfg.pending_capacity);
  auto& rx = port_.rx_queue(cfg_.rx_queue);
  rx.set_store(false);
  rx.set_callback([this](const nic::RxQueueModel::Entry& e) { on_rx(e); });
}

void ClientBase::set_window(sim::SimTime start_ps, sim::SimTime stop_ps) {
  stop_ps_ = stop_ps;
  measure_start_ps_ = start_ps + cfg_.warmup_ps;
  measure_end_ps_ = stop_ps > cfg_.cooldown_ps ? stop_ps - cfg_.cooldown_ps : 0;
}

bool ClientBase::issue(std::uint64_t aux) {
  const sim::SimTime now = events_.now();
  Request req;
  req.op = opmix_.next_double() < cfg_.get_fraction ? Op::kGet : Op::kSet;
  req.seq = next_seq_++;
  req.key = zipf_.next();
  req.departed_ps = now;
  if (!table_.insert(req.seq, req.key, now, aux)) {
    ++table_rejects_;
    return false;
  }
  ++issued_;
  send_or_park(req);
  return true;
}

bool ClientBase::post_request(const Request& req) {
  auto [bytes, frame] = pool_.acquire();
  // The embedded timestamp is the *departure* time, not the (possibly
  // later) post time: open-loop latency must include any client-side
  // queueing, or backpressure would silently shrink the measured tail.
  write_rpc_fields(bytes, req.op, req.seq, req.key, req.departed_ps);
  frame.seq = req.seq;
  // Per-opcode flow labels: the RTT plane's flow-group histograms then
  // publish GET and SET tails separately instead of folding both into
  // group 0.
  if (cfg_.label_flows) {
    frame.flow = cfg_.flow_base + static_cast<std::uint32_t>(req.op);
  }
  return port_.tx_queue(cfg_.tx_queue).post(std::move(frame));
}

void ClientBase::send_or_park(const Request& req) {
  // Preserve FIFO order behind already-parked requests.
  if (pending_.empty() && post_request(req)) return;
  if (pending_.full()) {
    ++send_drops_;
    if (const auto rec = table_.take(req.seq); rec.has_value()) on_send_dropped(*rec);
    return;
  }
  ++tx_deferrals_;
  pending_.push_back(req);
  if (!retry_timer_armed_) {
    retry_timer_armed_ = true;
    events_.schedule_in_inline(kTxRetryGapPs, [this] { drain_pending(); });
  }
}

void ClientBase::drain_pending() {
  retry_timer_armed_ = false;
  while (!pending_.empty()) {
    if (!post_request(pending_.front())) break;
    pending_.pop_front();
  }
  if (!pending_.empty() && !retry_timer_armed_) {
    retry_timer_armed_ = true;
    events_.schedule_in_inline(kTxRetryGapPs, [this] { drain_pending(); });
  }
}

void ClientBase::on_rx(const nic::RxQueueModel::Entry& entry) {
  const auto& bytes = *entry.frame.data;
  const auto decoded = decode({bytes.data(), bytes.size()});
  if (!decoded.has_value() || !is_response(decoded->op)) {
    ++garbage_;
    return;
  }
  const auto rec = table_.take(decoded->seq);
  if (!rec.has_value()) {
    // Duplicate delivery, a response to an already-expired request, or a
    // corrupted seq field that still passed the magic check.
    ++late_;
    return;
  }
  ++matched_;
  const sim::SimTime now = events_.now();
  if (rec->tx_time_ps >= measure_start_ps_ && rec->tx_time_ps < measure_end_ps_)
    recorder_.record_ps(now - rec->tx_time_ps);
  on_matched(*rec);
}

void ClientBase::arm_timeout_sweep() {
  if (cfg_.timeout_ps == 0 || sweep_armed_) return;
  sweep_armed_ = true;
  events_.schedule_in_inline(cfg_.timeout_ps, [this] { timeout_sweep(); });
}

void ClientBase::timeout_sweep() {
  sweep_armed_ = false;
  const sim::SimTime now = events_.now();
  const sim::SimTime deadline = now > cfg_.timeout_ps ? now - cfg_.timeout_ps : 0;
  table_.evict_older_than(deadline, [this](const InFlightTable::Record& rec) {
    ++timed_out_;
    on_timed_out(rec);
  });
  // Keep sweeping one timeout past the stop so entries leaked by loss near
  // the end of the run are still reclaimed.
  if (now < stop_ps_ + cfg_.timeout_ps) arm_timeout_sweep();
}

void ClientBase::bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix) {
  if (tm_.issued.valid()) return;
  tm_.issued = tree.gauge(prefix + ".issued");
  tm_.matched = tree.gauge(prefix + ".matched");
  tm_.inflight = tree.gauge(prefix + ".inflight");
  tm_.peak_inflight = tree.gauge(prefix + ".peak_inflight");
  tm_.timed_out = tree.gauge(prefix + ".timed_out");
  tm_.send_drops = tree.gauge(prefix + ".send_drops");
  publish_telemetry();
}

void ClientBase::bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix) {
  bind_telemetry(registry.shard(0), prefix);
}

void ClientBase::publish_telemetry() {
  if (!tm_.issued.valid()) return;
  tm_.issued.set(static_cast<double>(issued_));
  tm_.matched.set(static_cast<double>(matched_));
  tm_.inflight.set(static_cast<double>(table_.size()));
  tm_.peak_inflight.set(static_cast<double>(table_.peak()));
  tm_.timed_out.set(static_cast<double>(timed_out_));
  tm_.send_drops.set(static_cast<double>(send_drops_));
}

}  // namespace detail

// ---------------------------------------------------------------------------
// OpenLoopGenerator
// ---------------------------------------------------------------------------

OpenLoopGenerator::OpenLoopGenerator(nic::Port& port, LatencyRecorder& recorder,
                                     const WorkloadConfig& cfg)
    : ClientBase(port, recorder, cfg),
      arrival_(1e12 / cfg.offered_rps, cfg.seed ^ 0xa441a1ull),
      cbr_gap_ps_(1e12 / cfg.offered_rps) {}

sim::SimTime OpenLoopGenerator::next_gap_ps() {
  if (cfg_.arrival == WorkloadConfig::Arrival::kCbr) {
    // Round-with-carry (the rate_control.hpp convention): each gap is the
    // nearest ps and the long-run rate stays exact.
    cbr_acc_ps_ += cbr_gap_ps_;
    const auto gap = std::llround(cbr_acc_ps_);
    cbr_acc_ps_ -= static_cast<double>(gap);
    return gap > 0 ? static_cast<sim::SimTime>(gap) : 0;
  }
  const auto gap = std::llround(arrival_.next());
  return gap > 0 ? static_cast<sim::SimTime>(gap) : 0;
}

void OpenLoopGenerator::start(sim::SimTime start_ps, sim::SimTime stop_ps) {
  set_window(start_ps, stop_ps);
  arm_timeout_sweep();
  events_.schedule_at_inline(start_ps, [this] { depart(); });
}

void OpenLoopGenerator::set_keep_fraction(double fraction) {
  keep_fraction_ = fraction < 0.0 ? 0.0 : (fraction > 1.0 ? 1.0 : fraction);
}

void OpenLoopGenerator::depart() {
  // Accumulator thinning: at keep 1.0 the accumulator hits exactly 1.0 each
  // departure (no drift — 1.0 sums exactly), so the undegraded path issues
  // every time, bit-for-bit as before the lever existed.
  keep_acc_ += keep_fraction_;
  if (keep_acc_ >= 1.0) {
    keep_acc_ -= 1.0;
    issue(/*aux=*/0);
  } else {
    ++shed_;
  }
  const sim::SimTime next = events_.now() + next_gap_ps();
  if (next < stop_ps_) events_.schedule_at_inline(next, [this] { depart(); });
}

// ---------------------------------------------------------------------------
// ClosedLoopGenerator
// ---------------------------------------------------------------------------

ClosedLoopGenerator::ClosedLoopGenerator(nic::Port& port, LatencyRecorder& recorder,
                                         const WorkloadConfig& cfg, ClosedLoopConfig closed)
    : ClientBase(port, recorder, cfg),
      closed_(closed),
      think_(closed.think_mean_ps > 0 ? closed.think_mean_ps : 1.0,
             cfg.seed ^ 0x7712f3c9ull) {}

void ClosedLoopGenerator::start(sim::SimTime start_ps, sim::SimTime stop_ps) {
  set_window(start_ps, stop_ps);
  arm_timeout_sweep();
  for (std::uint64_t u = 0; u < closed_.users; ++u) {
    // Desynchronized starts: each user begins after an independent think
    // draw, so the first wave is not a synchronized burst.
    const sim::SimTime first =
        closed_.think_mean_ps > 0
            ? start_ps + static_cast<sim::SimTime>(std::llround(think_.next()))
            : start_ps;
    if (first < stop_ps) events_.schedule_at_inline(first, [this, u] { user_fire(u); });
  }
}

void ClosedLoopGenerator::user_fire(std::uint64_t user) {
  if (events_.now() >= stop_ps_) return;
  issue(user);
}

void ClosedLoopGenerator::reschedule_user(std::uint64_t user) {
  const sim::SimTime gap =
      closed_.think_mean_ps > 0 ? static_cast<sim::SimTime>(std::llround(think_.next())) : 0;
  const sim::SimTime next = events_.now() + gap;
  if (next < stop_ps_) events_.schedule_at_inline(next, [this, user] { user_fire(user); });
}

}  // namespace moongen::rpc
