// RPC server model: the device under test of the open-vs-closed studies.
//
// Decodes requests off its port's RX path into a bounded pending queue and
// services them with `workers` concurrent workers, each completion taking
// one draw from a configurable service-time distribution — the M/G/k queue
// behind every textbook open-vs-closed comparison. Responses echo the
// request's sequence id, key and TX timestamp (rpc/codec.hpp), so the
// client measures round-trip latency from the response alone.
//
// Like dut::Forwarder it exposes a deterministic `stall` fault site: a fire
// freezes dispatch for the rule's `param` picoseconds, producing the
// latency spikes the fault-tolerance experiments look for.
//
// Allocation discipline: the pending queue, the TX retry queue and the
// response frame pool are preallocated; the per-request path performs no
// heap allocation (verified by bench/rpc_open_loop.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "fault/fault.hpp"
#include "membuf/ring.hpp"
#include "nic/port.hpp"
#include "rpc/codec.hpp"
#include "sim/time.hpp"
#include "stats/samplers.hpp"
#include "telemetry/registry.hpp"

namespace moongen::rpc {

struct ServerConfig {
  /// Concurrent service slots (the "k" of the M/G/k queue).
  int workers = 1;
  enum class Service { kFixed, kExponential, kLognormal };
  Service service = Service::kExponential;
  double service_mean_ps = 8.0 * 1e6;  // 8 us
  /// Shape of the lognormal service option (ignored otherwise).
  double lognormal_sigma = 0.5;
  /// Pending-request queue bound; arrivals beyond it are dropped (and show
  /// up at the client as timeouts). Size it for the expected open-loop
  /// backlog, not the closed-loop one.
  std::size_t queue_capacity = 1 << 16;
  /// Response buffers in flight; must exceed the TX ring + FIFO depth.
  std::size_t pool_frames = 2048;
  std::size_t response_frame_size = 96;
  /// GET keys at or above this id miss (kGetMiss response): a crude but
  /// deterministic cache-capacity model. Default: everything hits.
  std::uint64_t cache_keys = UINT64_MAX;
  std::uint16_t udp_src = kRpcUdpPort;
  std::uint16_t udp_dst = 9000;
  int rx_queue = 0;
  int tx_queue = 0;
  std::uint64_t seed = 1;
};

class ServerModel {
 public:
  /// Attaches to `port`'s RX queue (callback sink mode — the queue's ring
  /// storage is disabled) and posts responses to its TX queue.
  ServerModel(nic::Port& port, ServerConfig config);

  ServerModel(const ServerModel&) = delete;
  ServerModel& operator=(const ServerModel&) = delete;

  /// Arms the `stall` fault site: a fire freezes dispatch for the rule's
  /// `param` ps.
  void install_faults(fault::FaultPlane& plane, const std::string& site);

  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t queue_drops() const { return queue_drops_; }
  [[nodiscard]] std::uint64_t tx_retries() const { return tx_retries_; }
  [[nodiscard]] std::uint64_t tx_drops() const { return tx_drops_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t garbage() const { return garbage_; }
  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t peak_queue_depth() const { return peak_queue_; }
  [[nodiscard]] int busy_workers() const { return busy_; }

  /// Pushes the counters above into `<prefix>.*` gauges (call at sampling
  /// instants; the hot path deliberately never touches the registry).
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix);
  /// Convenience overload: binds into the registry's default tree (shard 0).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);
  void publish_telemetry();

 private:
  struct PendingRequest {
    Op op = Op::kGet;
    std::uint64_t seq = 0;
    std::uint64_t key = 0;
    sim::SimTime tx_time_ps = 0;
    /// Flow-group label carried over from the request frame so the
    /// response leg lands in the same RTT-plane group as the request.
    std::uint32_t flow = 0;
  };

  void on_rx(const nic::RxQueueModel::Entry& entry);
  void try_dispatch();
  void complete(const PendingRequest& req);
  void send_response(const PendingRequest& req);
  void drain_tx_retry();
  [[nodiscard]] sim::SimTime sample_service_ps();

  nic::Port& port_;
  sim::EventQueue& events_;
  ServerConfig cfg_;
  FramePool pool_;
  membuf::BoundedRing<PendingRequest> queue_;
  membuf::BoundedRing<PendingRequest> tx_retry_;
  stats::ExponentialSampler exp_service_;
  stats::LognormalSampler logn_service_;
  fault::FaultPoint fp_stall_;
  sim::SimTime stall_until_ps_ = 0;
  bool retry_timer_armed_ = false;
  int busy_ = 0;

  std::uint64_t received_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::uint64_t tx_retries_ = 0;
  std::uint64_t tx_drops_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t garbage_ = 0;
  std::uint64_t stalls_ = 0;
  std::size_t peak_queue_ = 0;

  struct Gauges {
    telemetry::GaugeHandle received;
    telemetry::GaugeHandle completed;
    telemetry::GaugeHandle queue_depth;
    telemetry::GaugeHandle queue_drops;
    telemetry::GaugeHandle stalls;
  } tm_;
};

}  // namespace moongen::rpc
