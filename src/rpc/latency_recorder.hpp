// Latency aggregation for the RPC plane: p50/p99/p999 plus moments.
//
// Wraps one telemetry::LogLinearHistogram (bounded relative error across
// the ns..s span tail latencies cover) and one stats::RunningStats (exact
// mean/stddev/min/max). Both sides merge losslessly, so per-shard or
// per-pair recorders roll up into one distribution — the merge path the
// open-vs-closed studies use to report a single percentile line across
// client pairs.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>

#include "sim/time.hpp"
#include "stats/running_stats.hpp"
#include "telemetry/log_linear_histogram.hpp"

namespace moongen::rpc {

class LatencyRecorder {
 public:
  explicit LatencyRecorder(telemetry::HistogramConfig config = {}) : hist_(config) {}

  /// Records one round-trip latency (histogram granularity is ns).
  void record_ps(sim::SimTime latency_ps) {
    const std::uint64_t ns = (latency_ps + 500) / 1000;
    hist_.record(ns);
    running_.add(static_cast<double>(ns));
  }

  [[nodiscard]] std::uint64_t count() const { return hist_.total(); }
  [[nodiscard]] std::uint64_t p50_ns() const { return hist_.percentile(50.0); }
  [[nodiscard]] std::uint64_t p99_ns() const { return hist_.percentile(99.0); }
  [[nodiscard]] std::uint64_t p999_ns() const { return hist_.percentile(99.9); }
  [[nodiscard]] std::uint64_t min_ns() const { return hist_.min(); }
  [[nodiscard]] std::uint64_t max_ns() const { return hist_.max(); }
  [[nodiscard]] double mean_ns() const { return running_.mean(); }
  [[nodiscard]] double stddev_ns() const { return running_.stddev(); }

  [[nodiscard]] const telemetry::LogLinearHistogram& histogram() const { return hist_; }
  [[nodiscard]] const stats::RunningStats& running() const { return running_; }

  /// Merges another recorder (same histogram geometry required).
  void merge(const LatencyRecorder& other) {
    hist_.merge(other.hist_);
    running_.merge(other.running_);
  }

  /// One machine-readable JSON object (no trailing newline):
  /// {"label":..,"count":..,"min_ns":..,"p50_ns":..,...}
  void write_json(std::ostream& os, std::string_view label) const;

 private:
  telemetry::LogLinearHistogram hist_;
  stats::RunningStats running_;
};

}  // namespace moongen::rpc
