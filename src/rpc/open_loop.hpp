// Open- and closed-loop RPC load generators.
//
// The open-loop generator schedules request departures on the event engine
// from an arrival process alone — never from responses. A slow server
// cannot throttle it: the backlog grows without bound, queueing delay
// lands in the measured latency, and the tail inflates. That is the
// defining property separating it from the closed-loop generator below,
// where each of N users waits for its response (plus think time) before
// issuing again — N bounds the backlog and the system self-throttles near
// saturation. Comparing the two at the same offered load is the
// fig10/fig11-style experiment examples/rpc_load_latency.cpp runs.
//
// Both generators:
//  * draw operations (get/set mix), keys (Zipf) and inter-arrival/think
//    gaps from the deterministic samplers in stats/samplers.hpp;
//  * embed seq/key/departure-timestamp in the payload (rpc/codec.hpp) and
//    track outstanding requests in a flat open-addressing InFlightTable
//    sized for millions of entries;
//  * measure only requests departing inside [start+warmup, stop-cooldown);
//  * keep the steady state allocation-free: frame buffers come from a
//    round-robin FramePool, backpressured sends park in a preallocated
//    ring, and all event closures fit the engine's inline budget.
#pragma once

#include <cstdint>
#include <string>

#include "membuf/ring.hpp"
#include "nic/port.hpp"
#include "rpc/codec.hpp"
#include "rpc/inflight.hpp"
#include "rpc/latency_recorder.hpp"
#include "sim/event_queue.hpp"
#include "stats/samplers.hpp"
#include "telemetry/registry.hpp"

namespace moongen::rpc {

struct WorkloadConfig {
  /// Open loop: mean request departure rate (requests per virtual second).
  double offered_rps = 100'000.0;
  /// Fraction of requests that are GETs (the rest are SETs).
  double get_fraction = 0.95;
  /// Key popularity: Zipf over [0, key_space) with this skew.
  std::size_t key_space = 65536;
  double zipf_skew = 0.99;
  std::size_t frame_size = 96;
  std::uint16_t udp_src = 9000;
  std::uint16_t udp_dst = kRpcUdpPort;
  int tx_queue = 0;
  int rx_queue = 0;
  /// Request buffers in flight; must exceed the TX ring + FIFO depth.
  std::size_t pool_frames = 2048;
  /// Backpressured sends parked for retry (beyond it: dropped + counted).
  std::size_t pending_capacity = 1 << 12;
  /// Expected outstanding requests; the in-flight table is sized to hold
  /// twice this (open-addressing load factor 0.5).
  std::size_t inflight_expected = 1 << 16;
  /// Measurement window trim relative to [start, stop).
  sim::SimTime warmup_ps = 0;
  sim::SimTime cooldown_ps = 0;
  /// Reclaim sweep: in-flight entries older than this are expired (needed
  /// under loss faults, where responses never come). 0 disables.
  sim::SimTime timeout_ps = 0;
  enum class Arrival { kExponential, kCbr } arrival = Arrival::kExponential;
  telemetry::HistogramConfig hist;
  /// First sequence id (nonzero); pairs sharing a wire need disjoint ranges.
  std::uint64_t seq_base = 1;
  std::uint64_t seed = 1;
  /// Flow-group labeling of request frames for the RTT plane: each request
  /// is stamped `Frame.flow = flow_base + opcode` (kGet → +0, kSet → +1)
  /// so the plane's windowed quantiles separate GET and SET latency.
  /// Leave 0 with label_flows=false for the legacy all-group-0 behaviour.
  bool label_flows = false;
  std::uint32_t flow_base = 0;
};

namespace detail {

/// State and paths shared by both generators: encode+send with
/// backpressure, response matching, timeout sweeps, counters.
class ClientBase {
 public:
  ClientBase(nic::Port& port, LatencyRecorder& recorder, const WorkloadConfig& cfg);
  virtual ~ClientBase() = default;
  ClientBase(const ClientBase&) = delete;
  ClientBase& operator=(const ClientBase&) = delete;

  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] std::uint64_t matched() const { return matched_; }
  [[nodiscard]] std::uint64_t late() const { return late_; }
  [[nodiscard]] std::uint64_t timed_out() const { return timed_out_; }
  [[nodiscard]] std::uint64_t send_drops() const { return send_drops_; }
  [[nodiscard]] std::uint64_t table_rejects() const { return table_rejects_; }
  [[nodiscard]] std::uint64_t garbage() const { return garbage_; }
  [[nodiscard]] std::uint64_t tx_deferrals() const { return tx_deferrals_; }
  [[nodiscard]] std::size_t inflight() const { return table_.size(); }
  [[nodiscard]] std::size_t peak_inflight() const { return table_.peak(); }
  [[nodiscard]] LatencyRecorder& recorder() { return recorder_; }

  /// Gauges under `<prefix>.*`; the hot path never touches the registry —
  /// call publish_telemetry() at sampling instants.
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix);
  /// Convenience overload: binds into the registry's default tree (shard 0).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);
  void publish_telemetry();

 protected:
  struct Request {
    Op op = Op::kGet;
    std::uint64_t seq = 0;
    std::uint64_t key = 0;
    sim::SimTime departed_ps = 0;
  };

  /// Draws op + key, stamps the current time, inserts into the in-flight
  /// table and sends (or parks under backpressure). Returns false if the
  /// table refused the entry.
  bool issue(std::uint64_t aux);
  void set_window(sim::SimTime start_ps, sim::SimTime stop_ps);
  void arm_timeout_sweep();

  /// Response matched within the run (record already removed); rec.aux is
  /// the value passed to issue().
  virtual void on_matched(const InFlightTable::Record& /*rec*/) {}
  /// Entry expired by the timeout sweep.
  virtual void on_timed_out(const InFlightTable::Record& /*rec*/) {}
  /// Send dropped on a full pending ring (entry already removed).
  virtual void on_send_dropped(const InFlightTable::Record& /*rec*/) {}

  nic::Port& port_;
  sim::EventQueue& events_;
  WorkloadConfig cfg_;
  LatencyRecorder& recorder_;
  FramePool pool_;
  InFlightTable table_;
  membuf::BoundedRing<Request> pending_;
  stats::SplitMix64 opmix_;
  stats::ZipfSampler zipf_;
  sim::SimTime stop_ps_ = 0;
  sim::SimTime measure_start_ps_ = 0;
  sim::SimTime measure_end_ps_ = 0;
  std::uint64_t next_seq_ = 1;

 private:
  void on_rx(const nic::RxQueueModel::Entry& entry);
  void send_or_park(const Request& req);
  bool post_request(const Request& req);
  void drain_pending();
  void timeout_sweep();

  bool retry_timer_armed_ = false;
  bool sweep_armed_ = false;

  std::uint64_t issued_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t late_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t send_drops_ = 0;
  std::uint64_t table_rejects_ = 0;
  std::uint64_t garbage_ = 0;
  std::uint64_t tx_deferrals_ = 0;

  struct Gauges {
    telemetry::GaugeHandle issued;
    telemetry::GaugeHandle matched;
    telemetry::GaugeHandle inflight;
    telemetry::GaugeHandle peak_inflight;
    telemetry::GaugeHandle timed_out;
    telemetry::GaugeHandle send_drops;
  } tm_;
};

}  // namespace detail

/// Open-loop generator: departures from the arrival process only.
class OpenLoopGenerator : public detail::ClientBase {
 public:
  OpenLoopGenerator(nic::Port& port, LatencyRecorder& recorder, const WorkloadConfig& cfg);

  /// Schedules departures in [start_ps, stop_ps). The caller keeps the
  /// engine running past stop_ps to drain responses in flight.
  void start(sim::SimTime start_ps, sim::SimTime stop_ps);

  /// Graceful-degradation lever (health plane): keep only `fraction` of the
  /// scheduled departures, shedding the rest deterministically via an
  /// accumulator (every 1/fraction-th departure issues — no RNG, so a run
  /// that never degrades is byte-identical to one without the lever). The
  /// arrival process itself is untouched: shedding thins issues, it does
  /// not slow the clock, preserving the open-loop property. Clamped to
  /// [0, 1]; 1.0 (the default) issues every departure.
  void set_keep_fraction(double fraction);
  [[nodiscard]] double keep_fraction() const { return keep_fraction_; }
  /// Departures suppressed by shedding so far.
  [[nodiscard]] std::uint64_t shed_departures() const { return shed_; }

 private:
  void depart();
  [[nodiscard]] sim::SimTime next_gap_ps();

  stats::ExponentialSampler arrival_;
  double cbr_gap_ps_ = 0.0;
  double cbr_acc_ps_ = 0.0;
  double keep_fraction_ = 1.0;
  double keep_acc_ = 0.0;
  std::uint64_t shed_ = 0;
};

struct ClosedLoopConfig {
  /// Concurrent users; each waits for its response before re-issuing.
  std::size_t users = 64;
  /// Mean exponential think time between response and next request. To
  /// offer the same load as an open-loop run at rate R with N users, use
  /// N / R (each user cycles at R/N when the server is fast; when it is
  /// not, the users throttle — which is the phenomenon under study).
  double think_mean_ps = 0.0;
};

/// Closed-loop generator: at most `users` requests outstanding.
class ClosedLoopGenerator : public detail::ClientBase {
 public:
  ClosedLoopGenerator(nic::Port& port, LatencyRecorder& recorder, const WorkloadConfig& cfg,
                      ClosedLoopConfig closed);

  void start(sim::SimTime start_ps, sim::SimTime stop_ps);

  [[nodiscard]] std::size_t users() const { return closed_.users; }

 protected:
  void on_matched(const InFlightTable::Record& rec) override { reschedule_user(rec.aux); }
  void on_timed_out(const InFlightTable::Record& rec) override { reschedule_user(rec.aux); }
  void on_send_dropped(const InFlightTable::Record& rec) override { reschedule_user(rec.aux); }

 private:
  void user_fire(std::uint64_t user);
  void reschedule_user(std::uint64_t user);

  ClosedLoopConfig closed_;
  stats::ExponentialSampler think_;
};

}  // namespace moongen::rpc
