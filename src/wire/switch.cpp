#include "wire/switch.hpp"

#include "proto/headers.hpp"

namespace moongen::wire {

StoreForwardSwitch::StoreForwardSwitch(sim::EventQueue& events, std::uint64_t output_mbit,
                                       sim::SimTime forwarding_latency_ps)
    : events_(events),
      out_byte_time_ps_(sim::byte_time_ps(output_mbit)),
      forwarding_latency_ps_(forwarding_latency_ps) {}

nic::FrameSink& StoreForwardSwitch::add_input(std::uint64_t input_mbit) {
  inputs_.push_back(std::make_unique<InputPort>(*this, input_mbit));
  return *inputs_.back();
}

void StoreForwardSwitch::set_output(nic::Port& dst, const CableSpec& cable) {
  output_ = &dst;
  out_cable_ = cable;
}

void StoreForwardSwitch::InputPort::on_frame(const nic::Frame& frame, sim::SimTime tx_start_ps) {
  // Store-and-forward: the frame is complete after full reception.
  const sim::SimTime complete = tx_start_ps + (frame.frame_size() + 8) * byte_time_ps_;
  parent_.events_.schedule_at(complete + parent_.forwarding_latency_ps_,
                              [this, frame] { parent_.enqueue(frame); });
}

void StoreForwardSwitch::enqueue(const nic::Frame& frame) {
  // FCS check on ingress: invalid frames are dropped, converting the
  // generator's gap frames into real gaps on the output wire.
  if (!frame.fcs_valid || frame.frame_size() < proto::kMinFrameSize) {
    ++dropped_invalid_;
    return;
  }
  if (out_queue_.size() >= out_queue_capacity_) {
    ++queue_drops_;
    return;
  }
  out_queue_.push_back(frame);
  transmit_next();
}

void StoreForwardSwitch::transmit_next() {
  if (out_busy_ || out_queue_.empty() || output_ == nullptr) return;
  out_busy_ = true;
  const nic::Frame frame = std::move(out_queue_.front());
  out_queue_.pop_front();
  const sim::SimTime t0 = events_.now();
  const sim::SimTime busy_until = t0 + frame.wire_bytes() * out_byte_time_ps_;
  const sim::SimTime arrival = t0 + out_cable_.k_ps + out_cable_.propagation_ps();
  output_->deliver_frame(frame, arrival);
  ++forwarded_;
  events_.schedule_at(busy_until, [this] {
    out_busy_ = false;
    transmit_next();
  });
}

}  // namespace moongen::wire
