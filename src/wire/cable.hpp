// Cable / PHY models.
//
// The end-to-end latency of a direct cable is t = k + l / vp (paper
// Section 6.1, Table 3): a fixed (de)modulation time k of the two PHYs plus
// propagation at a fraction vp of the speed of light. 10GBASE-T adds
// per-frame latency variance from its block code (LDPC frames on layer 1);
// fiber with 10GBASE-SR is deterministic.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace moongen::wire {

enum class PhyJitter {
  kNone,       ///< 10GBASE-SR fiber: deterministic latency
  kTenGBaseT,  ///< 10GBASE-T block code: >99.5 % within +-6.4 ns, range 64 ns
};

struct CableSpec {
  double length_m = 2.0;
  /// Propagation speed as a fraction of c (fiber: 0.72, Cat 5e: 0.69).
  double vp_fraction_c = 0.72;
  /// Total (de)modulation time of both PHYs (k in Table 3).
  sim::SimTime k_ps = 310'700;
  PhyJitter jitter = PhyJitter::kNone;

  /// Propagation delay l / vp.
  [[nodiscard]] sim::SimTime propagation_ps() const {
    constexpr double kSpeedOfLightMPerNs = 0.299792458;
    return static_cast<sim::SimTime>(length_m / (vp_fraction_c * kSpeedOfLightMPerNs) * 1e3);
  }

  /// Smallest achievable end-to-end latency: k + l/vp minus the largest
  /// negative PHY jitter excursion (10GBASE-T block alignment: -32 ns).
  /// This is the conservative lookahead a parallel runtime may assume for
  /// frames on this cable.
  [[nodiscard]] sim::SimTime min_latency_ps() const {
    const sim::SimTime base = k_ps + propagation_ps();
    const sim::SimTime worst_early = jitter == PhyJitter::kTenGBaseT ? 32'000 : 0;
    return base > worst_early ? base - worst_early : 0;
  }
};

/// OM3 multimode fiber between two 82599 ports with 10GBASE-SR SFP+ modules
/// (Table 3: fitted k = 310.7 ns, vp = 0.72 c). The model's true k is set
/// 2 ns above the fitted value because the 82599's 12.8 ns timer
/// quantization floors the *measured* latencies; with this k the quantized
/// readings reproduce the paper's exact numbers: 320 ns at 2 m, the bimodal
/// 345.6/358.4 ns split at 8.5 m, and a 403.2 ns average at 20 m.
inline CableSpec fiber_om3(double length_m) {
  return CableSpec{length_m, 0.72, 312'700, PhyJitter::kNone};
}

/// Cat 5e copper between two X540 ports (10GBASE-T): k = 2147.2 ns,
/// vp = 0.69 c, block-code latency variance.
inline CableSpec cat5e_10gbaset(double length_m) {
  return CableSpec{length_m, 0.69, 2'147'200, PhyJitter::kTenGBaseT};
}

/// Generic GbE copper patch (for the 82580 inter-arrival testbed).
inline CableSpec cat5e_gbe(double length_m) {
  return CableSpec{length_m, 0.69, 2'000'000, PhyJitter::kNone};
}

}  // namespace moongen::wire
