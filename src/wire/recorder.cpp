#include "wire/recorder.hpp"

namespace moongen::wire {

InterArrivalRecorder::InterArrivalRecorder(nic::Port& port, int queue, sim::SimTime bin_ps,
                                           sim::SimTime max_ps)
    : port_(port), hist_(bin_ps, max_ps) {
  // Tap mode: the recorder consumes every packet; nothing accumulates in
  // the RX ring.
  port.rx_queue(queue).set_store(false);
  port.rx_queue(queue).set_callback([this](const nic::RxQueueModel::Entry& e) { on_packet(e); });
}

void InterArrivalRecorder::on_packet(const nic::RxQueueModel::Entry& entry) {
  const std::uint64_t stamp = entry.hw_timestamp;
  if (last_stamp_.has_value()) {
    const std::uint64_t delta = stamp - *last_stamp_;
    hist_.add(delta);
    // Back-to-back classification: inter-arrival within one bin of the
    // frame's own wire time.
    const std::uint64_t wire_ps = entry.frame.wire_bytes() * port_.byte_time_ps();
    if (delta <= wire_ps + hist_.bin_width() / 2) ++bursts_;
  }
  last_stamp_ = stamp;
}

double InterArrivalRecorder::fraction_within(sim::SimTime target_ps,
                                             sim::SimTime window_ps) const {
  const sim::SimTime lo = target_ps > window_ps ? target_ps - window_ps : 0;
  return hist_.fraction_between(lo, target_ps + window_ps);
}

}  // namespace moongen::wire
