// Unidirectional link: carries frames from a port's MAC to a peer port.
#pragma once

#include <cstdint>
#include <random>

#include "nic/port.hpp"
#include "wire/cable.hpp"

namespace moongen::wire {

class Link : public nic::FrameSink {
 public:
  /// Connects `from`'s transmit path to `to`'s receive path over `cable`.
  /// Registers itself as `from`'s TX sink.
  Link(nic::Port& from, nic::Port& to, CableSpec cable, std::uint64_t seed);

  void on_frame(const nic::Frame& frame, sim::SimTime tx_start_ps) override;

  [[nodiscard]] const CableSpec& cable() const { return cable_; }
  [[nodiscard]] std::uint64_t frames_carried() const { return frames_; }

 private:
  [[nodiscard]] std::int64_t phy_jitter_ps();

  nic::Port& to_;
  CableSpec cable_;
  std::mt19937_64 rng_;
  std::uint64_t frames_ = 0;
};

/// Bidirectional convenience wrapper (one Link per direction).
class DuplexLink {
 public:
  DuplexLink(nic::Port& a, nic::Port& b, const CableSpec& cable, std::uint64_t seed)
      : a_to_b_(a, b, cable, seed), b_to_a_(b, a, cable, seed ^ 0x5bd1e995) {}

  [[nodiscard]] Link& a_to_b() { return a_to_b_; }
  [[nodiscard]] Link& b_to_a() { return b_to_a_; }

 private:
  Link a_to_b_;
  Link b_to_a_;
};

}  // namespace moongen::wire
