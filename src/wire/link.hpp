// Unidirectional link: carries frames from a port's MAC to a peer port.
#pragma once

#include <cstdint>
#include <random>

#include "fault/fault.hpp"
#include "nic/port.hpp"
#include "wire/cable.hpp"

namespace moongen::wire {

class Link : public nic::FrameSink {
 public:
  /// Connects `from`'s transmit path to `to`'s receive path over `cable`.
  /// Registers itself as `from`'s TX sink.
  Link(nic::Port& from, nic::Port& to, CableSpec cable, std::uint64_t seed);

  void on_frame(const nic::Frame& frame, sim::SimTime tx_start_ps) override;

  /// Arms this link's fault sites (loss, corrupt, reorder, dup, flap)
  /// against `plane` under the given site name. Without this call the link
  /// carries every frame intact, exactly as before the fault plane existed.
  /// Link flap needs the plane's event queue for the carrier-up event; with
  /// a queue-less plane, flap rules are ignored.
  void install_faults(fault::FaultPlane& plane, const std::string& site);

  [[nodiscard]] const CableSpec& cable() const { return cable_; }
  [[nodiscard]] std::uint64_t frames_carried() const { return frames_; }

  /// True while carrier is present (false during an injected flap).
  [[nodiscard]] bool carrier_up() const { return carrier_up_; }

  // --- fault accounting (all zero when no faults installed) ----------------
  [[nodiscard]] std::uint64_t fault_drops() const { return fault_drops_; }
  [[nodiscard]] std::uint64_t flap_drops() const { return flap_drops_; }
  [[nodiscard]] std::uint64_t corrupted() const { return corrupted_; }
  [[nodiscard]] std::uint64_t reordered() const { return reordered_; }
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t flaps() const { return flaps_; }

 private:
  [[nodiscard]] std::int64_t phy_jitter_ps();
  void begin_flap(sim::SimTime now_ps, double down_ps_param);
  void corrupt_frame(nic::Frame& frame);

  nic::Port& from_;
  nic::Port& to_;
  CableSpec cable_;
  std::mt19937_64 rng_;
  std::uint64_t frames_ = 0;

  // Fault plane wiring (all disabled by default; on_frame's fast path is
  // unchanged when nothing is installed).
  fault::FaultPlane* plane_ = nullptr;
  fault::FaultPoint fp_loss_;
  fault::FaultPoint fp_corrupt_;
  fault::FaultPoint fp_reorder_;
  fault::FaultPoint fp_dup_;
  fault::FaultPoint fp_flap_;
  std::mt19937_64 corrupt_rng_;  // byte-flip positions: separate stream so
                                 // corruption never perturbs phy jitter
  bool carrier_up_ = true;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t flap_drops_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t flaps_ = 0;
};

/// Bidirectional convenience wrapper (one Link per direction).
class DuplexLink {
 public:
  DuplexLink(nic::Port& a, nic::Port& b, const CableSpec& cable, std::uint64_t seed)
      : a_to_b_(a, b, cable, seed), b_to_a_(b, a, cable, seed ^ 0x5bd1e995) {}

  [[nodiscard]] Link& a_to_b() { return a_to_b_; }
  [[nodiscard]] Link& b_to_a() { return b_to_a_; }

 private:
  Link a_to_b_;
  Link b_to_a_;
};

}  // namespace moongen::wire
