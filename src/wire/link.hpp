// Unidirectional link: carries frames from a port's MAC to a peer port.
#pragma once

#include <cstdint>
#include <random>

#include "fault/fault.hpp"
#include "nic/port.hpp"
#include "sim/spsc_channel.hpp"
#include "wire/cable.hpp"

namespace moongen::wire {

/// One frame in flight between shards: the payload plus its computed
/// arrival time at the destination PHY. `arrival_ps == kEpochMark` closes
/// a synchronization window's epoch (no frame attached).
struct RemoteHop {
  static constexpr sim::SimTime kEpochMark = UINT64_MAX;

  nic::Frame frame;
  sim::SimTime arrival_ps = 0;
};

/// SPSC frame channel between a link's shard and its destination's shard.
using FrameChannel = sim::SpscChannel<RemoteHop>;

class Link : public nic::FrameSink {
 public:
  /// Connects `from`'s transmit path to `to`'s receive path over `cable`.
  /// Registers itself as `from`'s TX sink.
  Link(nic::Port& from, nic::Port& to, CableSpec cable, std::uint64_t seed);

  void on_frame(const nic::Frame& frame, sim::SimTime tx_start_ps) override;

  /// Arms this link's fault sites (loss, corrupt, reorder, dup, flap)
  /// against `plane` under the given site name. Without this call the link
  /// carries every frame intact, exactly as before the fault plane existed.
  /// Link flap needs the plane's event queue for the carrier-up event; with
  /// a queue-less plane, flap rules are ignored.
  void install_faults(fault::FaultPlane& plane, const std::string& site);

  [[nodiscard]] const CableSpec& cable() const { return cable_; }
  [[nodiscard]] std::uint64_t frames_carried() const { return frames_; }

  // --- cross-shard mode (parallel runtime) ---------------------------------
  /// Detaches the link from its destination port: deliveries are pushed
  /// into `channel` with their computed arrival time instead. The flush and
  /// drain hooks below pair up through ParallelRuntime::add_channel; the
  /// producer side (this link's shard) calls flush, the destination shard
  /// calls drain.
  void set_remote(FrameChannel* channel) { remote_ = channel; }
  [[nodiscard]] bool remote() const { return remote_ != nullptr; }
  /// Producer side: closes the current window's epoch with a marker.
  void flush_remote_epoch();
  /// Consumer side: delivers exactly one published epoch into the
  /// destination port. Throws std::logic_error if the epoch marker is
  /// missing or a frame would land in the destination engine's past (a
  /// lookahead violation — the property the conservative window exists to
  /// rule out).
  void drain_remote_epoch();
  /// Conservative lookahead bound: the smallest latency any frame on this
  /// link can have. Fault rules only ever add delay (reorder holds back,
  /// duplicates trail), so the cable bound holds with faults installed.
  [[nodiscard]] sim::SimTime min_latency_ps() const { return cable_.min_latency_ps(); }
  /// Usable lookahead for a cross-shard channel. The sender's MAC notifies
  /// the link at the *end* of serialization with the frame's true start
  /// time, so relative to the engine clock a frame's arrival can fall one
  /// max-size frame serialization short of the cable bound; the channel
  /// window must absorb that slack. Zero means this link cannot safely
  /// cross shards.
  [[nodiscard]] sim::SimTime lookahead_ps() const {
    // 1518 B max standard frame + 8 B preamble + 12 B inter-frame gap.
    constexpr std::uint64_t kMaxFrameWireBytes = 1538;
    const sim::SimTime slack = kMaxFrameWireBytes * from_.byte_time_ps();
    const sim::SimTime lat = min_latency_ps();
    return lat > slack ? lat - slack : 0;
  }
  /// Frames pushed into the channel (markers excluded).
  [[nodiscard]] std::uint64_t remote_frames() const { return remote_frames_; }

  /// True while carrier is present (false during an injected flap).
  [[nodiscard]] bool carrier_up() const { return carrier_up_; }

  /// Attaches the always-on RTT plane: `rtt` is the RttShard of the shard
  /// this link's *source* port runs on (on_frame executes there). The link
  /// accounts stamped frames it kills (fault loss, flap) as dropped and
  /// stamped frames it duplicates as extra in-flight stamps, so the
  /// plane's conservation law stays exact under fault injection.
  void attach_rtt(telemetry::RttShard* rtt) { rtt_ = rtt; }

  // --- fault accounting (all zero when no faults installed) ----------------
  [[nodiscard]] std::uint64_t fault_drops() const { return fault_drops_; }
  [[nodiscard]] std::uint64_t flap_drops() const { return flap_drops_; }
  [[nodiscard]] std::uint64_t corrupted() const { return corrupted_; }
  [[nodiscard]] std::uint64_t reordered() const { return reordered_; }
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t flaps() const { return flaps_; }

  // --- conservation accounting (health plane) -------------------------------
  /// Frames handed to the destination (or its cross-shard channel),
  /// duplicates included. The per-link conservation law the health checker
  /// verifies: frames_carried + duplicated == flap_drops + fault_drops +
  /// delivered — every frame entering the wire is accounted exactly once.
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  /// FaultPoint fire counts, for reconciling the drop/corrupt counters
  /// above against the fault plane's own books (they must agree exactly).
  [[nodiscard]] std::uint64_t loss_fault_fires() const { return fp_loss_.fires(); }
  [[nodiscard]] std::uint64_t corrupt_fault_fires() const { return fp_corrupt_.fires(); }
  [[nodiscard]] std::uint64_t reorder_fault_fires() const { return fp_reorder_.fires(); }
  [[nodiscard]] std::uint64_t dup_fault_fires() const { return fp_dup_.fires(); }
  [[nodiscard]] std::uint64_t flap_fault_fires() const { return fp_flap_.fires(); }

 private:
  [[nodiscard]] std::int64_t phy_jitter_ps();
  void begin_flap(sim::SimTime now_ps, double down_ps_param);
  void corrupt_frame(nic::Frame& frame);
  /// Local mode: into the destination port; remote mode: into the channel.
  void deliver(const nic::Frame& frame, sim::SimTime arrival_ps);

  nic::Port& from_;
  nic::Port& to_;
  CableSpec cable_;
  telemetry::RttShard* rtt_ = nullptr;
  std::mt19937_64 rng_;
  std::uint64_t frames_ = 0;
  std::uint64_t delivered_ = 0;
  FrameChannel* remote_ = nullptr;
  std::uint64_t remote_frames_ = 0;

  // Fault plane wiring (all disabled by default; on_frame's fast path is
  // unchanged when nothing is installed).
  fault::FaultPlane* plane_ = nullptr;
  fault::FaultPoint fp_loss_;
  fault::FaultPoint fp_corrupt_;
  fault::FaultPoint fp_reorder_;
  fault::FaultPoint fp_dup_;
  fault::FaultPoint fp_flap_;
  std::mt19937_64 corrupt_rng_;  // byte-flip positions: separate stream so
                                 // corruption never perturbs phy jitter
  bool carrier_up_ = true;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t flap_drops_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t flaps_ = 0;
};

/// Bidirectional convenience wrapper (one Link per direction).
class DuplexLink {
 public:
  DuplexLink(nic::Port& a, nic::Port& b, const CableSpec& cable, std::uint64_t seed)
      : a_to_b_(a, b, cable, seed), b_to_a_(b, a, cable, seed ^ 0x5bd1e995) {}

  [[nodiscard]] Link& a_to_b() { return a_to_b_; }
  [[nodiscard]] Link& b_to_a() { return b_to_a_; }

 private:
  Link a_to_b_;
  Link b_to_a_;
};

}  // namespace moongen::wire
