#include "wire/link.hpp"

#include <stdexcept>
#include <string>

#include "sim/event_queue.hpp"

namespace moongen::wire {

namespace {

// Default fault magnitudes (used when a rule's `param` is unset).
constexpr sim::SimTime kDefaultFlapDownPs = 100'000'000;  // 100 us carrier loss
constexpr sim::SimTime kDefaultReorderHoldPs = 1'000'000; // 1 us hold-back

std::uint64_t hash_site(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Link::Link(nic::Port& from, nic::Port& to, CableSpec cable, std::uint64_t seed)
    : from_(from), to_(to), cable_(cable), rng_(seed) {
  // Both ends of a cable negotiate one rate. A mismatch would let the
  // receiver finish a frame before the sender's serialization of it ends
  // (its completion math uses its own byte time) — events in the past.
  if (from.link_mbit() != to.link_mbit())
    throw std::invalid_argument("Link: port link rates differ (" +
                                std::to_string(from.link_mbit()) + " vs " +
                                std::to_string(to.link_mbit()) + " Mbit)");
  from.set_tx_sink(this);
}

void Link::install_faults(fault::FaultPlane& plane, const std::string& site) {
  plane_ = &plane;
  fp_loss_ = plane.point(fault::FaultKind::kFrameLoss, site);
  fp_corrupt_ = plane.point(fault::FaultKind::kFrameCorrupt, site);
  fp_reorder_ = plane.point(fault::FaultKind::kFrameReorder, site);
  fp_dup_ = plane.point(fault::FaultKind::kFrameDuplicate, site);
  if (plane.events() != nullptr) {
    fp_flap_ = plane.point(fault::FaultKind::kLinkFlap, site);
  }
  corrupt_rng_.seed(plane.spec().seed ^ hash_site(site) ^ 0x5deece66dull);
}

std::int64_t Link::phy_jitter_ps() {
  switch (cable_.jitter) {
    case PhyJitter::kNone:
      return 0;
    case PhyJitter::kTenGBaseT: {
      // Block-code alignment variance (Section 6.1): zero-median, more than
      // 99.5 % of frames within +-6.4 ns, extreme range 64 ns (+-32 ns).
      // Steps of 6.4 ns (one PHY symbol group).
      static constexpr double kWeights[] = {
          0.600,    // 0
          0.1985,   // +-6.4 (each)
          0.0006,   // +-12.8
          0.0003,   // +-19.2
          0.00005,  // +-25.6
          0.00005,  // +-32
      };
      std::uniform_real_distribution<double> uni(0.0, 1.0);
      double x = uni(rng_) - kWeights[0];
      if (x < 0) return 0;
      const std::int64_t sign = (rng_() & 1) ? 1 : -1;
      for (int step = 1; step <= 5; ++step) {
        x -= 2 * kWeights[step];
        if (x < 0) return sign * step * 6'400;
      }
      return sign * 32'000;
    }
  }
  return 0;
}

void Link::begin_flap(sim::SimTime now_ps, double down_ps_param) {
  carrier_up_ = false;
  ++flaps_;
  from_.set_link_state(false);
  const auto down_ps =
      down_ps_param > 0 ? static_cast<sim::SimTime>(down_ps_param) : kDefaultFlapDownPs;
  plane_->events()->schedule_at(now_ps + down_ps, [this] {
    carrier_up_ = true;
    from_.set_link_state(true);
  });
}

void Link::deliver(const nic::Frame& frame, sim::SimTime arrival_ps) {
  ++delivered_;
  if (remote_ != nullptr) {
    remote_->push(RemoteHop{frame, arrival_ps});
    ++remote_frames_;
    return;
  }
  to_.deliver_frame(frame, arrival_ps);
}

void Link::flush_remote_epoch() {
  remote_->push(RemoteHop{nic::Frame{}, RemoteHop::kEpochMark});
}

void Link::drain_remote_epoch() {
  RemoteHop hop;
  for (;;) {
    if (!remote_->try_pop(hop))
      throw std::logic_error("Link::drain_remote_epoch: epoch marker missing");
    if (hop.arrival_ps == RemoteHop::kEpochMark) return;
    if (hop.arrival_ps < to_.events().now())
      throw std::logic_error("Link::drain_remote_epoch: lookahead violated");
    to_.deliver_frame(hop.frame, hop.arrival_ps);
  }
}

void Link::corrupt_frame(nic::Frame& frame) {
  // Copy-on-corrupt: payloads are shared (template frames, interned gap
  // frames), so the wire damages a private copy. Flip one byte to a
  // guaranteed-different value; the FCS no longer matches.
  auto bytes = std::make_shared<std::vector<std::uint8_t>>(*frame.data);
  const std::size_t pos = corrupt_rng_() % bytes->size();
  (*bytes)[pos] ^= static_cast<std::uint8_t>(1 + corrupt_rng_() % 255);
  frame.data = std::move(bytes);
  frame.fcs_valid = false;
}

void Link::on_frame(const nic::Frame& frame, sim::SimTime tx_start_ps) {
  ++frames_;
  if (!carrier_up_) {
    // Carrier is down mid-flap: the frame vanishes on the dead wire.
    ++flap_drops_;
    if (rtt_ != nullptr && frame.tx_stamp_ps != 0) rtt_->note_dropped();
    return;
  }
  if (fp_flap_.installed()) {
    if (const auto* rule = fp_flap_.fire(tx_start_ps); rule != nullptr) {
      begin_flap(tx_start_ps, rule->param);
      ++flap_drops_;  // the frame that hit the dying carrier is lost too
      if (rtt_ != nullptr && frame.tx_stamp_ps != 0) rtt_->note_dropped();
      return;
    }
  }
  if (fp_loss_.installed() && fp_loss_.fire(tx_start_ps) != nullptr) {
    ++fault_drops_;
    // Lost stamps count as drops, not a silently smaller population.
    if (rtt_ != nullptr && frame.tx_stamp_ps != 0) rtt_->note_dropped();
    return;
  }
  const std::int64_t delay = static_cast<std::int64_t>(cable_.k_ps + cable_.propagation_ps()) +
                             phy_jitter_ps();
  sim::SimTime arrival = tx_start_ps + static_cast<sim::SimTime>(delay);

  if (!fp_corrupt_.installed() && !fp_reorder_.installed() && !fp_dup_.installed()) {
    deliver(frame, arrival);
    return;
  }

  nic::Frame out = frame;
  if (fp_corrupt_.installed() && fp_corrupt_.fire(tx_start_ps) != nullptr) {
    corrupt_frame(out);
    ++corrupted_;
  }
  if (fp_reorder_.installed()) {
    if (const auto* rule = fp_reorder_.fire(tx_start_ps); rule != nullptr) {
      // Hold the frame back so later frames overtake it.
      arrival += rule->param > 0 ? static_cast<sim::SimTime>(rule->param)
                                 : kDefaultReorderHoldPs;
      ++reordered_;
    }
  }
  deliver(out, arrival);
  if (fp_dup_.installed() && fp_dup_.fire(tx_start_ps) != nullptr) {
    // The duplicate follows as a separate frame, one frame time behind.
    deliver(out, arrival + out.wire_bytes() * to_.byte_time_ps());
    ++duplicated_;
    // A duplicated stamp is one more in-flight stamp the receive side will
    // see (or drop); without this the conservation ledger would go negative.
    if (rtt_ != nullptr && out.tx_stamp_ps != 0) rtt_->note_duplicated();
  }
}

}  // namespace moongen::wire
