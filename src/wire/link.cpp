#include "wire/link.hpp"

namespace moongen::wire {

Link::Link(nic::Port& from, nic::Port& to, CableSpec cable, std::uint64_t seed)
    : to_(to), cable_(cable), rng_(seed) {
  from.set_tx_sink(this);
}

std::int64_t Link::phy_jitter_ps() {
  switch (cable_.jitter) {
    case PhyJitter::kNone:
      return 0;
    case PhyJitter::kTenGBaseT: {
      // Block-code alignment variance (Section 6.1): zero-median, more than
      // 99.5 % of frames within +-6.4 ns, extreme range 64 ns (+-32 ns).
      // Steps of 6.4 ns (one PHY symbol group).
      static constexpr double kWeights[] = {
          0.600,    // 0
          0.1985,   // +-6.4 (each)
          0.0006,   // +-12.8
          0.0003,   // +-19.2
          0.00005,  // +-25.6
          0.00005,  // +-32
      };
      std::uniform_real_distribution<double> uni(0.0, 1.0);
      double x = uni(rng_) - kWeights[0];
      if (x < 0) return 0;
      const std::int64_t sign = (rng_() & 1) ? 1 : -1;
      for (int step = 1; step <= 5; ++step) {
        x -= 2 * kWeights[step];
        if (x < 0) return sign * step * 6'400;
      }
      return sign * 32'000;
    }
  }
  return 0;
}

void Link::on_frame(const nic::Frame& frame, sim::SimTime tx_start_ps) {
  ++frames_;
  const std::int64_t delay = static_cast<std::int64_t>(cable_.k_ps + cable_.propagation_ps()) +
                             phy_jitter_ps();
  to_.deliver_frame(frame, tx_start_ps + static_cast<sim::SimTime>(delay));
}

}  // namespace moongen::wire
