// Inter-arrival time recorder.
//
// Implements the measurement side of the rate-control evaluation (paper
// Section 7.3, Table 4, Figure 8): an Intel 82580 GbE port timestamps every
// received packet in hardware with 64 ns precision; the recorder histograms
// the differences and classifies micro-bursts (back-to-back frames).
#pragma once

#include <cstdint>
#include <optional>

#include "nic/port.hpp"
#include "stats/histogram.hpp"

namespace moongen::wire {

class InterArrivalRecorder {
 public:
  /// Attaches to `port`'s RX queue `queue`. `bin_ps` should match the
  /// capture NIC's timestamp precision (64 ns on the 82580).
  InterArrivalRecorder(nic::Port& port, int queue, sim::SimTime bin_ps = 64'000,
                       sim::SimTime max_ps = 20'000'000);

  [[nodiscard]] const stats::Histogram& histogram() const { return hist_; }
  [[nodiscard]] std::uint64_t samples() const { return hist_.total(); }

  /// Fraction of inter-arrivals within +-window of `target_ps`.
  [[nodiscard]] double fraction_within(sim::SimTime target_ps, sim::SimTime window_ps) const;

  /// Fraction of back-to-back arrivals (inter-arrival time equal to the
  /// frame's wire time, e.g. 672 ns for 64 B frames at GbE).
  [[nodiscard]] double micro_burst_fraction() const {
    return hist_.total() > 0
               ? static_cast<double>(bursts_) / static_cast<double>(hist_.total())
               : 0.0;
  }

 private:
  void on_packet(const nic::RxQueueModel::Entry& entry);

  nic::Port& port_;
  stats::Histogram hist_;
  std::optional<std::uint64_t> last_stamp_;
  std::uint64_t bursts_ = 0;
};

}  // namespace moongen::wire
