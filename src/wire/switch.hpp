// Store-and-forward switch model.
//
// Used for the work-around of Section 8.4: several generator ports send
// streams interleaved with invalid gap frames to a switch; the switch drops
// the bad-FCS frames and multiplexes the remaining valid traffic onto one
// output toward the DuT, replacing the invalid frames with real gaps on the
// wire.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "nic/port.hpp"
#include "sim/event_queue.hpp"
#include "wire/cable.hpp"

namespace moongen::wire {

class StoreForwardSwitch {
 public:
  /// `output_mbit`: speed of the output port toward the DuT.
  StoreForwardSwitch(sim::EventQueue& events, std::uint64_t output_mbit,
                     sim::SimTime forwarding_latency_ps = 800'000);

  /// Creates a new input port sink; attach it as a generator port's TX sink
  /// (zero-length patch cable) with the input's link speed.
  nic::FrameSink& add_input(std::uint64_t input_mbit);

  /// Connects the switch output to `dst` over `cable`.
  void set_output(nic::Port& dst, const CableSpec& cable);

  [[nodiscard]] std::uint64_t dropped_invalid() const { return dropped_invalid_; }
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t queue_drops() const { return queue_drops_; }

 private:
  class InputPort : public nic::FrameSink {
   public:
    InputPort(StoreForwardSwitch& parent, std::uint64_t mbit)
        : parent_(parent), byte_time_ps_(sim::byte_time_ps(mbit)) {}
    void on_frame(const nic::Frame& frame, sim::SimTime tx_start_ps) override;

   private:
    StoreForwardSwitch& parent_;
    sim::SimTime byte_time_ps_;
  };

  void enqueue(const nic::Frame& frame);
  void transmit_next();

  sim::EventQueue& events_;
  sim::SimTime out_byte_time_ps_;
  sim::SimTime forwarding_latency_ps_;
  std::vector<std::unique_ptr<InputPort>> inputs_;
  std::deque<nic::Frame> out_queue_;
  std::size_t out_queue_capacity_ = 4096;
  bool out_busy_ = false;
  nic::Port* output_ = nullptr;
  CableSpec out_cable_{};
  std::uint64_t dropped_invalid_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t queue_drops_ = 0;
};

}  // namespace moongen::wire
