#include "core/device.hpp"

#include <array>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "proto/headers.hpp"
#include "telemetry/registry.hpp"

namespace moongen::core {

namespace {

std::uint64_t nanotime() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Device / DeviceTable
// ---------------------------------------------------------------------------

Device::Device(int id, int rx_queues, int tx_queues) : id_(id), rx_pool_(4096) {
  for (int i = 0; i < tx_queues; ++i)
    tx_queues_.push_back(std::unique_ptr<TxQueue>(new TxQueue(*this)));
  for (int i = 0; i < rx_queues; ++i)
    rx_queues_.push_back(std::unique_ptr<RxQueue>(new RxQueue(*this, 4096)));
}

Device& Device::config(int id, int rx_queues, int tx_queues) {
  return DeviceTable::process_default().config(id, rx_queues, tx_queues);
}

Device& DeviceTable::config(int id, int rx_queues, int tx_queues) {
  if (id < 0 || static_cast<std::size_t>(id) >= Device::kMaxDevices)
    throw std::out_of_range("Device id out of range");
  auto& slot = devices_[static_cast<std::size_t>(id)];
  if (!slot || slot->num_rx_queues() < rx_queues || slot->num_tx_queues() < tx_queues) {
    slot.reset(new Device(id, rx_queues, tx_queues));
  }
  return *slot;
}

Device* DeviceTable::find(int id) {
  if (id < 0 || static_cast<std::size_t>(id) >= Device::kMaxDevices) return nullptr;
  return devices_[static_cast<std::size_t>(id)].get();
}

DeviceTable& DeviceTable::process_default() {
  static DeviceTable table;
  return table;
}

proto::MacAddress Device::mac() const {
  // Locally administered address derived from the port id.
  return proto::MacAddress::from_uint64(0x020000000000ull + static_cast<std::uint64_t>(id_));
}

void Device::connect_to(Device& peer) { peer_ = &peer; }

// ---------------------------------------------------------------------------
// TxQueue
// ---------------------------------------------------------------------------

TxQueue::TxQueue(Device& dev, std::size_t ring_size) : dev_(dev) {
  std::size_t cap = 1;
  while (cap < ring_size) cap <<= 1;
  ring_.assign(cap, Descriptor{});
  prev_batch_.reserve(64);
  prev_pools_.reserve(64);
}

void TxQueue::reset() {
  for (auto& slot : ring_) slot = Descriptor{};
  // Drop (not free) the in-flight references: reset() exists to be called
  // before a mempool is destroyed, and the pools own the buffer storage.
  prev_batch_.clear();
  prev_pools_.clear();
  head_ = 0;
  pace_next_ns_ = 0;
}

TxQueue::~TxQueue() {
  // Buffers still referenced by descriptors are NOT returned to their
  // mempools here: the pools own the buffer storage outright and may
  // already be gone (devices are process-lifetime objects, pools are not).
  // Dropping the references is safe and leak-free.
}

void TxQueue::pace(std::size_t wire_bytes) {
  if (rate_mbit_ <= 0.0) return;
  std::uint64_t now = nanotime();
  if (pace_next_ns_ == 0) pace_next_ns_ = now;
  // Sleep through long waits (frees the core for other tasks on small
  // hosts), busy-wait the last stretch for precision.
  if (pace_next_ns_ > now + 200'000) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(pace_next_ns_ - now - 100'000));
    now = nanotime();
  }
  while (now < pace_next_ns_) now = nanotime();
  pace_next_ns_ += static_cast<std::uint64_t>(static_cast<double>(wire_bytes) * 8.0 * 1e3 /
                                              rate_mbit_);
}

bool TxQueue::wait_for_link() {
  // Bounded exponential backoff: ~1 us doubling per round. Sleeping (not
  // spinning) frees the core; the bound guarantees forward progress even if
  // the link never returns.
  std::uint64_t wait_ns = 1'000;
  for (unsigned round = 0; round < link_retry_limit_; ++round) {
    if (dev_.link_up()) return true;
    std::this_thread::sleep_for(std::chrono::nanoseconds(wait_ns));
    wait_ns *= 2;
  }
  return dev_.link_up();
}

void TxQueue::drop_batch(membuf::BufArray& bufs) {
  const auto packets = bufs.packets();
  // Group frees by pool (same idiom as recycling) — cold path, but a flap
  // storm should not hammer the pool lock per buffer.
  std::size_t start = 0;
  while (start < packets.size()) {
    membuf::Mempool* pool = packets[start]->pool();
    std::size_t end = start + 1;
    while (end < packets.size() && packets[end]->pool() == pool) ++end;
    pool->free_batch({packets.data() + start, end - start});
    start = end;
  }
  dropped_ += packets.size();
  tm_dropped_.add(packets.size());
  bufs.set_size(0);
}

void TxQueue::bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix) {
  if (tm_sent_.valid()) return;  // already bound
  tm_sent_ = tree.counter(prefix + ".sent_packets");
  tm_dropped_ = tree.counter(prefix + ".dropped");
  tm_short_ = tree.counter(prefix + ".short_batches");
  tm_link_wait_ = tree.counter("recover." + prefix + ".link_wait");
  tm_sent_.add(sent_packets_);
  tm_dropped_.add(dropped_);
  tm_short_.add(short_batches_);
  tm_link_wait_.add(link_waits_);
}

void TxQueue::bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix) {
  bind_telemetry(registry.shard(0), prefix);
}

std::uint16_t TxQueue::send(membuf::BufArray& bufs) {
  if (!dev_.link_up()) {
    if (!wait_for_link()) {
      // Link stayed down through the whole retry budget: shed the batch
      // instead of wedging the generator loop.
      drop_batch(bufs);
      return 0;
    }
    ++link_waits_;  // survived the outage — a recovery, not a drop
    tm_link_wait_.add(1);
  }
  if (bufs.last_shortfall() > 0) {
    // The mempool came back short: the burst on the wire is smaller than
    // the script asked for. Surface it — silent shrinkage skews CBR spacing.
    ++short_batches_;
    tm_short_.add(1);
  }
  const auto packets = bufs.packets();
  if (rate_mbit_ > 0.0) {
    // Only a rate-limited queue needs the wire-size total; unlimited sends
    // skip this extra pass over the batch.
    std::size_t total_wire = 0;
    for (auto* buf : packets) total_wire += proto::wire_size(buf->length() + proto::kFcsSize);
    pace(total_wire);
  }

  // Recycle the previous batch: its frames have been "transmitted" by the
  // time the application enqueues more work (DPDK's tx_rs_thresh cleanup
  // with a one-batch window). Free in runs that share a pool so the pool
  // lock is taken per run, not per buffer.
  if (!prev_batch_.empty()) {
    std::size_t start = 0;
    while (start < prev_batch_.size()) {
      membuf::Mempool* pool = prev_pools_[start];
      std::size_t end = start + 1;
      while (end < prev_batch_.size() && prev_pools_[end] == pool) ++end;
      pool->free_batch({prev_batch_.data() + start, end - start});
      start = end;
    }
    prev_batch_.clear();
    prev_pools_.clear();
  }

  Device* peer = dev_.peer_;
  const std::size_t mask = ring_.size() - 1;
  std::uint64_t batch_bytes = 0;
  prev_batch_.assign(packets.begin(), packets.end());
  prev_pools_.resize(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    membuf::PktBuf* buf = packets[i];
    Descriptor& slot = ring_[head_ & mask];
    const auto& fl = buf->flags();
    const auto length = static_cast<std::uint32_t>(buf->length());
    slot.buf = buf;
    slot.length = length;
    slot.flags = static_cast<std::uint32_t>(fl.ip_checksum) |
                 static_cast<std::uint32_t>(fl.udp_checksum) << 1 |
                 static_cast<std::uint32_t>(fl.tcp_checksum) << 2 |
                 static_cast<std::uint32_t>(fl.invalid_crc) << 3;
    ++head_;
    batch_bytes += length;
    prev_pools_[i] = buf->pool();

    if (peer != nullptr) {
      // A frame on a wire is a copy: materialize into the peer's RX pool.
      auto& rxq = *peer->rx_queues_[0];
      membuf::PktBuf* rb = peer->rx_pool_.alloc(buf->length());
      if (rb == nullptr) {
        rxq.ring_drops_.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::memcpy(rb->data(), buf->data(), buf->length());
        if (!rxq.ring_.push(rb)) {
          peer->rx_pool_.free(rb);
          rxq.ring_drops_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
  const auto n = static_cast<std::uint16_t>(packets.size());
  sent_packets_ += n;
  sent_bytes_ += batch_bytes;
  tm_sent_.add(n);
  bufs.set_size(0);  // buffers now belong to the queue until recycled
  return n;
}

// ---------------------------------------------------------------------------
// RxQueue
// ---------------------------------------------------------------------------

RxQueue::RxQueue(Device& dev, std::size_t ring_size) : dev_(dev), ring_(ring_size) {}

std::uint16_t RxQueue::recv(membuf::BufArray& bufs) {
  const std::size_t n = ring_.pop_burst(bufs.storage().data(), bufs.capacity());
  bufs.set_size(n);
  rx_packets_.fetch_add(n, std::memory_order_relaxed);
  return static_cast<std::uint16_t>(n);
}

}  // namespace moongen::core
