// Hardware-assisted latency measurement (paper Section 6).
//
// The Timestamper reproduces MoonGen's sampling design:
//  * clocks of the TX and RX ports are (re)synchronized before every
//    timestamped packet, turning clock drift into a negligible relative
//    error (Section 6.3);
//  * only one timestamped packet is in flight at a time because the NICs
//    latch TX/RX timestamps in single registers that must be read back
//    (Section 6.4);
//  * in stream mode, the timestamped packet is an ordinary packet of the
//    load stream whose PTP type byte was flipped into the timestampable
//    range — the device under test cannot distinguish it, so MoonGen
//    effectively samples random packets of the data stream.
#pragma once

#include <cstdint>
#include <random>

#include "core/rate_control.hpp"
#include "nic/port.hpp"
#include "sim/clock_sync.hpp"
#include "sim/event_queue.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"
#include "telemetry/registry.hpp"

namespace moongen::core {

struct TimestamperConfig {
  /// Pause between samples (the paper stamps thousands per second).
  sim::SimTime sample_interval_ps = 200 * sim::kPsPerUs;
  /// Give up on a sample after this time (packet lost, e.g. overload).
  sim::SimTime timeout_ps = 20 * sim::kPsPerMs;
  /// Re-synchronize the port clocks before every sample (Section 6.3).
  bool sync_clocks_each_sample = true;
  sim::ClockSyncConfig sync;
  /// Histogram geometry for latency values (in ps).
  sim::SimTime hist_bin_ps = 6'400;
  sim::SimTime hist_max_ps = 5 * sim::kPsPerMs;
  std::uint64_t seed = 0x7151bead;
};

class Timestamper {
 public:
  /// Inject mode: posts `probe` to (`tx_port`, `tx_queue`) for each sample.
  /// Used for direct loopback measurements (Table 3) and alongside
  /// hardware-rate-limited load on another queue.
  Timestamper(sim::EventQueue& events, nic::Port& tx_port, int tx_queue, nic::Port& rx_port,
              nic::Frame probe, TimestamperConfig config = {});

  /// Stream mode: asks `gen` to replace the next valid frame of its stream
  /// with `stamped` (same size, timestampable PTP type). Used through a DuT
  /// so the measured packets are part of the load (Sections 8.2, 8.3).
  Timestamper(sim::EventQueue& events, nic::Port& tx_port, SimLoadGen& gen, nic::Frame stamped,
              nic::Port& rx_port, TimestamperConfig config = {});

  /// Begins sampling at the current simulation time.
  void start();
  /// Stops scheduling further samples.
  void stop() { running_ = false; }

  [[nodiscard]] const stats::Histogram& histogram() const { return hist_; }
  [[nodiscard]] const stats::RunningStats& latency_ns() const { return latency_ns_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  /// Probes that never produced an RX stamp before the timeout — the
  /// packet died in flight. Under fault injection this equals the
  /// injected wire drops exactly (the reconciliation the health plane
  /// cross-checks against the always-on RTT plane's drop books).
  [[nodiscard]] std::uint64_t lost() const { return lost_; }
  /// Samples abandoned for measurement reasons although the probe
  /// arrived: TX stamp register occupied when the packet left, or a
  /// negative delta (clock-sync estimation error exceeding the true
  /// latency). Not drops — counted separately so lost() stays exact.
  [[nodiscard]] std::uint64_t discarded() const { return discarded_; }
  /// Timestamped packets launched so far (successful or not). Every
  /// attempt ends in exactly one state:
  /// attempts() == samples() + lost() + discarded() + (0 or 1 in flight).
  [[nodiscard]] std::uint64_t attempts() const { return attempts_; }
  /// True while a timestamped packet is in flight (launched, not yet
  /// resolved as a sample or a loss).
  [[nodiscard]] bool sample_in_flight() const { return armed_; }
  /// Forced clock resyncs after a failed sample (recovery actions; only
  /// incremented when sync_clocks_each_sample is off, where a stepped clock
  /// would otherwise poison every later sample).
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }

  /// Feeds every latency sample (in ns) into `<prefix>.latency_ns` of
  /// `registry` and counts samples/lost packets in `<prefix>.samples` /
  /// `<prefix>.lost`. The log-linear registry histogram spans ns..ms, so
  /// one geometry fits both loopback cables and overloaded-DuT latencies.
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix);
  /// Convenience overload: binds into the registry's default tree (shard 0).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);

 private:
  /// How one attempt resolved (see attempts() for the identity).
  enum class Outcome { kSample, kLost, kDiscarded };

  void init(nic::Port& rx_port);
  void take_sample();
  void on_rx_stamp();
  void finish_sample(Outcome outcome);

  sim::EventQueue& events_;
  nic::Port& tx_port_;
  nic::Port& rx_port_;
  int tx_queue_ = 0;
  nic::Frame probe_;
  SimLoadGen* stream_gen_ = nullptr;
  TimestamperConfig cfg_;
  std::mt19937_64 rng_;

  bool running_ = false;
  bool armed_ = false;
  std::uint64_t arm_token_ = 0;
  /// A failed sample (timeout or negative delta) is the symptom of a lost
  /// packet — or of a stepped/drifting clock. Force a resync before the
  /// next sample so one clock fault cannot poison the rest of the run.
  bool resync_pending_ = false;
  std::uint64_t resyncs_ = 0;
  telemetry::CounterHandle tm_resync_;

  stats::Histogram hist_;
  stats::RunningStats latency_ns_;
  std::uint64_t samples_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t attempts_ = 0;
  telemetry::HistogramHandle tm_latency_ns_;
  telemetry::CounterHandle tm_samples_;
  telemetry::CounterHandle tm_lost_;
  telemetry::CounterHandle tm_discarded_;
};

}  // namespace moongen::core
