#include "core/task.hpp"

#include <chrono>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace moongen::core {

namespace {

std::atomic<bool>& run_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}

// Bumped on every reset_run_state; a stop_after timer armed under an older
// generation must not fire into the next experiment.
std::atomic<std::uint64_t>& generation() {
  static std::atomic<std::uint64_t> gen{0};
  return gen;
}

void pin_to_core(int core) {
#ifdef __linux__
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core) % hw, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

bool running() { return run_flag().load(std::memory_order_relaxed); }

void request_stop() { run_flag().store(false, std::memory_order_relaxed); }

void reset_run_state() {
  generation().fetch_add(1, std::memory_order_relaxed);
  run_flag().store(true, std::memory_order_relaxed);
}

std::uint64_t run_generation() { return generation().load(std::memory_order_relaxed); }

void stop_after(double seconds) {
  const std::uint64_t armed_gen = run_generation();
  std::thread([seconds, armed_gen] {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    if (run_generation() == armed_gen) request_stop();
  }).detach();
}

void TaskSet::bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix) {
  if (tm_launched_ != nullptr) return;  // already bound
  tm_launched_ = &registry.counter(prefix + ".tasks_launched");
  tm_finished_ = &registry.counter(prefix + ".tasks_finished");
  tm_active_ = &registry.gauge(prefix + ".tasks_active");
}

void TaskSet::launch_impl(std::string name, std::function<void()> body) {
  const int core = next_core_++;
  if (tm_launched_ != nullptr) {
    tm_launched_->add(1);
    tm_active_->set(static_cast<double>(tm_launched_->value() - tm_finished_->value()));
  }
  threads_.emplace_back([this, core, name = std::move(name), body = std::move(body)] {
    pin_to_core(core);
    body();
    if (tm_finished_ != nullptr) {
      tm_finished_->add(1);
      tm_active_->set(static_cast<double>(tm_launched_->value() - tm_finished_->value()));
    }
  });
}

void TaskSet::wait() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace moongen::core
