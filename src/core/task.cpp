#include "core/task.hpp"

#include <chrono>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace moongen::core {

namespace {

void pin_to_core(int core) {
#ifdef __linux__
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core) % hw, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

RunState::RunState() : state_(std::make_shared<State>()) {}

bool RunState::running() const { return state_->flag.load(std::memory_order_acquire); }

void RunState::request_stop() { state_->flag.store(false, std::memory_order_release); }

void RunState::reset() {
  // Bump the generation first: a stop_after timer armed under the old
  // generation that fires between the two stores sees the new generation
  // and stands down instead of stopping the next experiment.
  state_->generation.fetch_add(1, std::memory_order_acq_rel);
  state_->flag.store(true, std::memory_order_release);
}

std::uint64_t RunState::generation() const {
  return state_->generation.load(std::memory_order_acquire);
}

void RunState::stop_after(double seconds) {
  const std::uint64_t armed_gen = generation();
  std::thread([weak = std::weak_ptr<State>(state_), seconds, armed_gen] {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const auto state = weak.lock();
    if (state == nullptr) return;  // the owning testbed is gone
    if (state->generation.load(std::memory_order_acquire) == armed_gen)
      state->flag.store(false, std::memory_order_release);
  }).detach();
}

RunState& RunState::global() {
  static RunState state;
  return state;
}

bool running() { return RunState::global().running(); }

void request_stop() { RunState::global().request_stop(); }

void reset_run_state() { RunState::global().reset(); }

std::uint64_t run_generation() { return RunState::global().generation(); }

void stop_after(double seconds) { RunState::global().stop_after(seconds); }

void TaskSet::bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix) {
  if (tm_launched_.valid()) return;  // already bound
  tm_launched_ = tree.counter(prefix + ".tasks_launched");
  tm_finished_ = tree.counter(prefix + ".tasks_finished");
  tm_active_ = tree.gauge(prefix + ".tasks_active");
}

void TaskSet::bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix) {
  bind_telemetry(registry.shard(0), prefix);
}

void TaskSet::launch_impl(std::string name, std::function<void()> body) {
  const int core = next_core_++;
  if (tm_launched_.valid()) {
    tm_launched_.add(1);
    tm_active_.set(static_cast<double>(tm_launched_.value() - tm_finished_.value()));
  }
  threads_.emplace_back([this, core, name = std::move(name), body = std::move(body)] {
    pin_to_core(core);
    body();
    if (tm_finished_.valid()) {
      tm_finished_.add(1);
      tm_active_.set(static_cast<double>(tm_launched_.value() - tm_finished_.value()));
    }
  });
}

void TaskSet::wait() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace moongen::core
