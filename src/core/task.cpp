#include "core/task.hpp"

#include <chrono>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace moongen::core {

namespace {

std::atomic<bool>& run_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}

void pin_to_core(int core) {
#ifdef __linux__
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core) % hw, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

bool running() { return run_flag().load(std::memory_order_relaxed); }

void request_stop() { run_flag().store(false, std::memory_order_relaxed); }

void reset_run_state() { run_flag().store(true, std::memory_order_relaxed); }

void stop_after(double seconds) {
  std::thread([seconds] {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    request_stop();
  }).detach();
}

void TaskSet::launch_impl(std::string name, std::function<void()> body) {
  const int core = next_core_++;
  threads_.emplace_back([core, name = std::move(name), body = std::move(body)] {
    pin_to_core(core);
    body();
  });
}

void TaskSet::wait() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace moongen::core
