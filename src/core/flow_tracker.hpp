// Sequence-numbered flows: loss, reorder and duplication accounting.
//
// Packet generators relate generated to received traffic (paper Section 2);
// for that, load packets carry an embedded flow id and sequence number in
// their payload. The stamper writes them per packet in the transmit loop;
// the tracker reconstructs per-flow delivery statistics on the receive
// side — the basis for loss measurements such as RFC 2544 runs.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "proto/byte_order.hpp"

namespace moongen::core {

/// Wire layout of the embedded marker (network byte order).
struct [[gnu::packed]] SequenceMarker {
  std::uint32_t magic_be;    ///< identifies marked packets
  std::uint32_t flow_id_be;
  std::uint64_t sequence_be;

  static constexpr std::uint32_t kMagic = 0x4d6f6f4e;  // "MooN"
};
static_assert(sizeof(SequenceMarker) == 16);

/// Writes flow id + running sequence number at a fixed payload offset.
class SequenceStamper {
 public:
  SequenceStamper(std::uint32_t flow_id, std::size_t payload_offset)
      : flow_id_(flow_id), offset_(payload_offset) {}

  /// Stamps the next sequence number into `data` (packet buffer bytes).
  /// No bounds check — the caller sizes packets to fit (Section 5 tradeoff).
  void stamp(std::uint8_t* data) {
    SequenceMarker marker;
    marker.magic_be = proto::hton32(SequenceMarker::kMagic);
    marker.flow_id_be = proto::hton32(flow_id_);
    marker.sequence_be = proto::hton64(next_++);
    std::memcpy(data + offset_, &marker, sizeof(marker));
  }

  [[nodiscard]] std::uint64_t stamped() const { return next_; }
  [[nodiscard]] std::uint32_t flow_id() const { return flow_id_; }
  [[nodiscard]] std::size_t payload_offset() const { return offset_; }

 private:
  std::uint32_t flow_id_;
  std::size_t offset_;
  std::uint64_t next_ = 0;
};

/// Receive-side accounting for one flow.
///
/// Sequence numbers are tracked against a sliding window bitmap: arrivals
/// above the highest seen advance the window; arrivals below it are
/// classified as reordered (first time) or duplicate (seen before); stale
/// arrivals beyond the window are counted separately.
class SequenceTracker {
 public:
  explicit SequenceTracker(std::size_t window = 4096) : seen_(window, 0) {}

  struct Report {
    std::uint64_t received = 0;    ///< marker-carrying packets fed
    std::uint64_t unique = 0;      ///< distinct sequence numbers
    std::uint64_t duplicates = 0;
    std::uint64_t reordered = 0;   ///< arrived after a higher sequence
    std::uint64_t stale = 0;       ///< below the tracking window
    std::uint64_t lost = 0;        ///< gaps: highest+1 - unique - stale
    std::uint64_t highest_seq = 0;
  };

  /// Feeds one packet's bytes; returns false if no marker was found at the
  /// given offset.
  bool feed(const std::uint8_t* data, std::size_t length, std::size_t payload_offset);

  /// Feeds a parsed sequence number directly.
  void feed_sequence(std::uint64_t seq);

  [[nodiscard]] Report report() const;

 private:
  [[nodiscard]] bool get_bit(std::uint64_t seq) const {
    return (seen_[(seq / 64) % seen_.size()] >> (seq % 64)) & 1;
  }
  void set_bit(std::uint64_t seq) { seen_[(seq / 64) % seen_.size()] |= 1ull << (seq % 64); }
  void clear_bit(std::uint64_t seq) {
    seen_[(seq / 64) % seen_.size()] &= ~(1ull << (seq % 64));
  }

  std::vector<std::uint64_t> seen_;  // bitmap over sequence space, windowed
  bool any_ = false;
  std::uint64_t highest_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t unique_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t stale_ = 0;
};

}  // namespace moongen::core
