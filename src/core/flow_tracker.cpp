#include "core/flow_tracker.hpp"

namespace moongen::core {

bool SequenceTracker::feed(const std::uint8_t* data, std::size_t length,
                           std::size_t payload_offset) {
  if (length < payload_offset + sizeof(SequenceMarker)) return false;
  SequenceMarker marker;
  std::memcpy(&marker, data + payload_offset, sizeof(marker));
  if (proto::ntoh32(marker.magic_be) != SequenceMarker::kMagic) return false;
  feed_sequence(proto::ntoh64(marker.sequence_be));
  return true;
}

void SequenceTracker::feed_sequence(std::uint64_t seq) {
  ++received_;
  const std::uint64_t window_bits = seen_.size() * 64;

  if (!any_ || seq > highest_) {
    // Advancing the window: clear the bitmap positions the window slides
    // over so old epochs do not alias as duplicates. A jump larger than
    // the window invalidates the whole bitmap at once.
    if (any_ && seq - highest_ > window_bits) {
      for (auto& word : seen_) word = 0;
    } else {
      const std::uint64_t start = any_ ? highest_ + 1 : 0;
      for (std::uint64_t s = start; s < seq; ++s) clear_bit(s);
    }
    set_bit(seq);
    highest_ = seq;
    any_ = true;
    ++unique_;
    return;
  }

  if (highest_ - seq >= window_bits) {
    ++stale_;  // too old to classify precisely
    return;
  }
  if (get_bit(seq)) {
    ++duplicates_;
  } else {
    set_bit(seq);
    ++unique_;
    ++reordered_;  // arrived after a higher sequence number
  }
}

SequenceTracker::Report SequenceTracker::report() const {
  Report r;
  r.received = received_;
  r.unique = unique_;
  r.duplicates = duplicates_;
  r.reordered = reordered_;
  r.stale = stale_;
  r.highest_seq = any_ ? highest_ : 0;
  const std::uint64_t expected = any_ ? highest_ + 1 : 0;
  r.lost = expected > unique_ + stale_ ? expected - unique_ - stale_ : 0;
  return r;
}

}  // namespace moongen::core
