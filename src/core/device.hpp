// Fast-path device API: the C++ face of MoonGen's Lua `device` module.
//
// This is the API the examples and the cycle-accurate microbenchmarks use
// (paper Listings 1-3). A fast-path Device owns transmit/receive queues
// with DPDK semantics:
//  * `send` is asynchronous: it places descriptors into a ring; the buffer
//    must not be touched afterwards and is recycled into its mempool only
//    when the ring position is reused (Section 4.2);
//  * queues can be wired device-to-device ("loopback cable") through
//    lock-free rings, so receive-side scripts (Listing 3) run end to end;
//  * optional wall-clock rate limiting stands in for the NIC's hardware
//    rate control in live examples (the *precision* of rate control is
//    evaluated in the virtual-time simulation, not here).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "membuf/ring.hpp"
#include "proto/mac_address.hpp"
#include "telemetry/handles.hpp"

namespace moongen::telemetry {
class MetricRegistry;
}  // namespace moongen::telemetry

namespace moongen::core {

class Device;

/// Fast-path transmit queue backed by a descriptor ring.
class TxQueue {
 public:
  /// Enqueues all packets of `bufs` for transmission; returns the number
  /// sent. Buffers are recycled automatically as the ring wraps.
  ///
  /// Robustness: a link-down device (injected flap) makes send() back off
  /// with bounded exponential waits; if the link stays down the batch is
  /// dropped (freed back to its pools, counted in dropped()) and 0 is
  /// returned — the queue never wedges and never leaks. A batch whose
  /// allocation came back short (bufs.last_shortfall() > 0) is counted in
  /// short_batches() so CBR-skewing partial bursts are visible.
  std::uint16_t send(membuf::BufArray& bufs);

  /// Sets a wall-clock rate limit in Mbit/s wire rate (0 = unlimited).
  /// Mirrors `queue:setRate(rate)` from Listing 1.
  void set_rate_mbit(double mbit) { rate_mbit_ = mbit; }

  /// Drops all in-flight descriptor references WITHOUT recycling them.
  /// Must be called before destroying a mempool whose buffers may still sit
  /// in this queue's ring (e.g. between benchmark configurations); the pool
  /// owns the buffer storage, so nothing leaks.
  void reset();

  [[nodiscard]] std::uint64_t sent_packets() const { return sent_packets_; }
  [[nodiscard]] std::uint64_t sent_bytes() const { return sent_bytes_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Batches sent with fewer buffers than requested from the mempool.
  [[nodiscard]] std::uint64_t short_batches() const { return short_batches_; }
  /// Sends that survived a link-down window by backing off (recoveries).
  [[nodiscard]] std::uint64_t link_waits() const { return link_waits_; }

  /// Maximum backoff rounds before a link-down send gives up and drops the
  /// batch (each round doubles the wait, starting at ~1 us).
  void set_link_retry_limit(unsigned rounds) { link_retry_limit_ = rounds; }

  /// Mirrors `<prefix>.sent_packets/.dropped/.short_batches` plus
  /// `recover.<prefix>.link_wait` into `registry`.
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix);
  /// Convenience overload: binds into the registry's default tree (shard 0).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);

  ~TxQueue();

 private:
  friend class Device;
  /// Default ring of 256 descriptors: slots are write-only modeling state
  /// (4 KiB stays L1-resident under load); recycling does not depend on
  /// ring depth (see prev_batch_).
  explicit TxQueue(Device& dev, std::size_t ring_size = 256);

  /// 16-byte TX descriptor, as written per packet by a real driver; the
  /// descriptor-write cost is part of the per-packet IO baseline the paper
  /// measures in Table 1. Descriptors are modeling artifacts only — buffers
  /// are never recycled *through* them (see prev_batch_ below), so stale
  /// `buf` pointers in reused slots are never dereferenced.
  struct Descriptor {
    membuf::PktBuf* buf = nullptr;
    std::uint32_t length = 0;
    std::uint32_t flags = 0;
  };

  void pace(std::size_t wire_bytes);
  /// Waits for the device's link with bounded exponential backoff; false if
  /// the retry budget ran out while still down.
  bool wait_for_link();
  /// Frees a never-transmitted batch back to its pools (link-down give-up).
  void drop_batch(membuf::BufArray& bufs);

  Device& dev_;
  std::vector<Descriptor> ring_;  // descriptor ring (modeling artifact)
  std::size_t head_ = 0;

  // The previous send's buffers (parallel arrays of buffer and owning
  // pool). They are recycled at the start of the *next* send — DPDK's
  // tx_rs_thresh cleanup collapsed to a one-batch in-flight window. This
  // keeps the asynchronous-send contract (buffers are never reclaimed
  // within the send that enqueued them) while keeping the recirculating
  // buffer set small enough to live in the L1 cache; parking buffers for a
  // whole ring revolution made every alloc/fill touch cache-cold lines and
  // dominated the per-packet cost.
  std::vector<membuf::PktBuf*> prev_batch_;
  std::vector<membuf::Mempool*> prev_pools_;

  double rate_mbit_ = 0.0;
  std::uint64_t pace_next_ns_ = 0;

  std::uint64_t sent_packets_ = 0;
  std::uint64_t sent_bytes_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t short_batches_ = 0;
  std::uint64_t link_waits_ = 0;
  unsigned link_retry_limit_ = 10;  // ~1 us * 2^10 ≈ 1 ms total wait

  telemetry::CounterHandle tm_sent_;
  telemetry::CounterHandle tm_dropped_;
  telemetry::CounterHandle tm_short_;
  telemetry::CounterHandle tm_link_wait_;
};

/// Fast-path receive queue fed by a loopback wire from a peer device.
class RxQueue {
 public:
  /// Receives up to `bufs.capacity()` packets; returns the count and sets
  /// `bufs`' size. Mirrors `queue:recv(bufs)` from Listing 3.
  std::uint16_t recv(membuf::BufArray& bufs);

  [[nodiscard]] std::uint64_t received() const { return rx_packets_; }
  [[nodiscard]] std::uint64_t ring_drops() const { return ring_drops_; }

 private:
  friend class Device;
  friend class TxQueue;
  RxQueue(Device& dev, std::size_t ring_size);

  Device& dev_;
  membuf::SpscRing<membuf::PktBuf*> ring_;
  std::atomic<std::uint64_t> rx_packets_{0};
  std::atomic<std::uint64_t> ring_drops_{0};
};

/// A fast-path port. `Device::config(id, rx, tx)` mirrors
/// `device.config(port, rxQueues, txQueues)` from Listing 1.
class Device {
 public:
  static constexpr std::size_t kMaxDevices = 64;

  /// Returns the device with the given id, (re)configured with the given
  /// queue counts.
  ///
  /// \deprecated This is the process-global registry
  /// (DeviceTable::process_default()): two experiments in one process share
  /// every device it hands out, including link state and connected peers.
  /// New code should build a testbed::Scenario and use its per-testbed
  /// DeviceTable instead; this entry point remains for the script bindings
  /// and legacy tests.
  static Device& config(int id, int rx_queues = 1, int tx_queues = 1);

  /// Waits for configured links — a no-op in the fast path, kept for
  /// script parity with Listing 1.
  static void wait_for_links() {}

  [[nodiscard]] TxQueue& get_tx_queue(int i) { return *tx_queues_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] RxQueue& get_rx_queue(int i) { return *rx_queues_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int num_tx_queues() const { return static_cast<int>(tx_queues_.size()); }
  [[nodiscard]] int num_rx_queues() const { return static_cast<int>(rx_queues_.size()); }

  /// Source MAC of this port (derived from the id), usable as `ethSrc`.
  [[nodiscard]] proto::MacAddress mac() const;

  /// Connects this device's transmit side to `peer`'s receive queue 0 by a
  /// virtual cable. Transmitted packets are copied into `peer`'s receive
  /// mempool (a frame on a wire is a copy by nature).
  void connect_to(Device& peer);

  /// Disconnects the virtual cable (packets are then just dropped on send,
  /// like a port with no link partner — useful for pure TX benchmarks).
  void disconnect() { peer_ = nullptr; }

  /// Carrier state (cleared/restored by injected link flaps; thread-safe —
  /// fault drivers and send loops run on different threads). TxQueue::send
  /// backs off while the link is down.
  void set_link_up(bool up) { link_up_.store(up, std::memory_order_release); }
  [[nodiscard]] bool link_up() const { return link_up_.load(std::memory_order_acquire); }

  [[nodiscard]] membuf::Mempool& rx_pool() { return rx_pool_; }

 private:
  explicit Device(int id, int rx_queues, int tx_queues);

  int id_;
  std::vector<std::unique_ptr<TxQueue>> tx_queues_;
  std::vector<std::unique_ptr<RxQueue>> rx_queues_;
  Device* peer_ = nullptr;
  membuf::Mempool rx_pool_;
  std::atomic<bool> link_up_{true};

  friend class TxQueue;
  friend class DeviceTable;
};

/// Owns the fast-path devices of one testbed. Each testbed::Testbed holds
/// a private table, so two testbeds in one process (or one test binary) no
/// longer share mutable device state — the deprecated Device::config
/// static registry is just the process-default instance of this class.
class DeviceTable {
 public:
  DeviceTable() = default;
  DeviceTable(const DeviceTable&) = delete;
  DeviceTable& operator=(const DeviceTable&) = delete;

  /// Returns the device with the given id, (re)configured with at least the
  /// given queue counts (mirrors `device.config{}` from Listing 1). Devices
  /// live as long as the table.
  Device& config(int id, int rx_queues = 1, int tx_queues = 1);

  /// The device if already configured, else nullptr.
  [[nodiscard]] Device* find(int id);

  /// The table behind the deprecated Device::config registry.
  static DeviceTable& process_default();

 private:
  std::array<std::unique_ptr<Device>, Device::kMaxDevices> devices_;
};

}  // namespace moongen::core
