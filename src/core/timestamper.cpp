#include "core/timestamper.hpp"

namespace moongen::core {

Timestamper::Timestamper(sim::EventQueue& events, nic::Port& tx_port, int tx_queue,
                         nic::Port& rx_port, nic::Frame probe, TimestamperConfig config)
    : events_(events),
      tx_port_(tx_port),
      rx_port_(rx_port),
      tx_queue_(tx_queue),
      probe_(std::move(probe)),
      cfg_(config),
      rng_(config.seed),
      hist_(config.hist_bin_ps, config.hist_max_ps) {
  init(rx_port);
}

Timestamper::Timestamper(sim::EventQueue& events, nic::Port& tx_port, SimLoadGen& gen,
                         nic::Frame stamped, nic::Port& rx_port, TimestamperConfig config)
    : events_(events),
      tx_port_(tx_port),
      rx_port_(rx_port),
      probe_(std::move(stamped)),
      stream_gen_(&gen),
      cfg_(config),
      rng_(config.seed),
      hist_(config.hist_bin_ps, config.hist_max_ps) {
  init(rx_port);
}

void Timestamper::init(nic::Port& rx_port) {
  rx_port.set_rx_stamp_callback([this](std::uint64_t) { on_rx_stamp(); });
}

void Timestamper::bind_telemetry(telemetry::MetricRegistry& registry,
                                 const std::string& prefix) {
  bind_telemetry(registry.shard(0), prefix);
}

void Timestamper::bind_telemetry(telemetry::MetricTree& tree,
                                 const std::string& prefix) {
  if (tm_latency_ns_.valid()) return;  // already bound; re-seeding would double-count
  telemetry::HistogramConfig hist_cfg;
  hist_cfg.max_value = 100'000'000;  // 100 ms in ns: covers buffer-bloated DuTs
  tm_latency_ns_ = tree.histogram(prefix + ".latency_ns", hist_cfg);
  tm_samples_ = tree.counter(prefix + ".samples");
  tm_lost_ = tree.counter(prefix + ".lost");
  tm_discarded_ = tree.counter(prefix + ".discarded");
  tm_resync_ = tree.counter("recover." + prefix + ".resync");
  tm_samples_.add(samples_);
  tm_lost_.add(lost_);
  tm_discarded_.add(discarded_);
  tm_resync_.add(resyncs_);
}

void Timestamper::start() {
  running_ = true;
  if (stream_gen_ != nullptr) tx_port_.set_tx_batch_barrier(events_.now());
  events_.schedule_in(0, [this] { take_sample(); });
}

void Timestamper::take_sample() {
  if (!running_) return;
  // Clear stale registers (e.g. from a lost packet's TX stamp).
  (void)tx_port_.read_tx_timestamp();
  (void)rx_port_.read_rx_timestamp();

  // Resynchronizing before each timestamped packet reduces drift to a
  // ~0.0035 % relative error (Section 6.3). After a failed sample a resync
  // is forced even when per-sample sync is off: a stepped clock (fault
  // injection, NTP on the host) must not poison the rest of the run.
  const bool forced = resync_pending_;
  resync_pending_ = false;
  if (cfg_.sync_clocks_each_sample || forced) {
    sim::synchronize_clocks(tx_port_.ptp_clock(), rx_port_.ptp_clock(), events_.now(), rng_,
                            cfg_.sync);
    if (forced && !cfg_.sync_clocks_each_sample) {
      ++resyncs_;
      tm_resync_.add(1);
    }
  }

  armed_ = true;
  ++attempts_;
  const std::uint64_t token = ++arm_token_;

  if (stream_gen_ != nullptr) {
    stream_gen_->mark_next_valid(probe_, 1);
  } else {
    tx_port_.tx_queue(tx_queue_).post(probe_);
  }

  events_.schedule_in(cfg_.timeout_ps, [this, token] {
    if (armed_ && token == arm_token_) finish_sample(Outcome::kLost);
  });
}

void Timestamper::on_rx_stamp() {
  if (!armed_) {
    (void)rx_port_.read_rx_timestamp();  // stray stamp, discard
    return;
  }
  const auto rx = rx_port_.read_rx_timestamp();
  const auto tx = tx_port_.read_tx_timestamp();
  if (!rx.has_value() || !tx.has_value()) {
    // TX stamp missing (register was occupied when our packet left) —
    // the probe arrived but the measurement is unusable.
    finish_sample(Outcome::kDiscarded);
    return;
  }
  const auto delta = static_cast<std::int64_t>(*rx) - static_cast<std::int64_t>(*tx);
  if (delta >= 0) {
    hist_.add(static_cast<std::uint64_t>(delta));
    latency_ns_.add(static_cast<double>(delta) / 1e3);
    ++samples_;
    if (tm_latency_ns_.valid()) {
      tm_latency_ns_.record(static_cast<std::uint64_t>(delta) / 1'000);  // ps -> ns
      tm_samples_.add(1);
    }
    finish_sample(Outcome::kSample);
  } else {
    // Negative delta: clock-sync estimation error exceeded the true
    // latency. The packet did arrive, so this is not a loss.
    finish_sample(Outcome::kDiscarded);
  }
}

void Timestamper::finish_sample(Outcome outcome) {
  armed_ = false;
  // Every launched attempt resolves into exactly one terminal state, so
  // attempts == samples + lost + discarded + in_flight stays exact — the
  // identity the health plane reconciles against the always-on RTT
  // plane's drop books. Keeping discarded separate from lost means
  // lost still equals genuine wire drops under fault injection.
  switch (outcome) {
    case Outcome::kSample:
      break;
    case Outcome::kLost:
      ++lost_;
      tm_lost_.add(1);
      resync_pending_ = true;
      break;
    case Outcome::kDiscarded:
      ++discarded_;
      tm_discarded_.add(1);
      resync_pending_ = true;
      break;
  }
  if (!running_) return;
  // In stream mode the next take_sample marks a frame in the generator
  // mid-stream; batched TX must not serialize past that instant, or the
  // mark would land on a different packet than in an unbatched run.
  if (stream_gen_ != nullptr)
    tx_port_.set_tx_batch_barrier(events_.now() + cfg_.sample_interval_ps);
  events_.schedule_in(cfg_.sample_interval_ps, [this] { take_sample(); });
}

}  // namespace moongen::core
