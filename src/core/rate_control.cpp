#include "core/rate_control.hpp"

#include <cstring>

#include "proto/packet_view.hpp"

namespace moongen::core {

// ---------------------------------------------------------------------------
// CrcGapFiller
// ---------------------------------------------------------------------------

std::vector<std::size_t> CrcGapFiller::fill(std::size_t gap_bytes) {
  std::size_t gap = gap_bytes + carry_;
  carry_ = 0;
  std::vector<std::size_t> out;
  if (gap == 0) return out;
  if (gap < cfg_.min_wire_len) {
    // Unrepresentable short gap (0.8-60.8 ns at 10 GbE): skip the filler
    // here and lengthen a later gap instead; the average rate stays exact
    // (Section 8.4).
    carry_ = gap;
    ++skipped_;
    return out;
  }
  while (gap > 0) {
    std::size_t take;
    if (gap <= cfg_.max_wire_len) {
      take = gap;
    } else {
      // Leave at least a representable remainder.
      take = std::min(cfg_.max_wire_len, gap - cfg_.min_wire_len);
    }
    out.push_back(take);
    gap -= take;
  }
  return out;
}

// ---------------------------------------------------------------------------
// SimLoadGen
// ---------------------------------------------------------------------------

std::unique_ptr<SimLoadGen> SimLoadGen::hardware_paced(nic::TxQueueModel& queue,
                                                       nic::Frame frame) {
  auto gen = std::unique_ptr<SimLoadGen>(new SimLoadGen());
  gen->frame_ = std::move(frame);
  SimLoadGen* raw = gen.get();
  // Keep the FIFO lookahead short so a marked (timestamped) frame reaches
  // the wire promptly even at low paced rates.
  queue.set_fifo_capacity(8);
  queue.set_refill([raw] { return raw->next_frame(); });
  return gen;
}

std::unique_ptr<SimLoadGen> SimLoadGen::crc_paced(nic::TxQueueModel& queue, nic::Frame frame,
                                                  std::unique_ptr<DeparturePattern> pattern,
                                                  std::uint64_t link_mbit,
                                                  GapFillerConfig config) {
  auto gen = std::unique_ptr<SimLoadGen>(new SimLoadGen());
  gen->frame_ = std::move(frame);
  gen->pattern_ = std::move(pattern);
  gen->filler_ = std::make_unique<CrcGapFiller>(config);
  gen->byte_time_ps_ = sim::byte_time_ps(link_mbit);
  SimLoadGen* raw = gen.get();
  queue.set_refill([raw] { return raw->next_frame(); });
  return gen;
}

void SimLoadGen::mark_next_valid(nic::Frame stamped, int n) {
  marked_frame_ = std::move(stamped);
  marked_remaining_ = n;
}

void SimLoadGen::set_flow(std::uint32_t flow) {
  flow_ = flow;
  frame_.flow = flow;
  for (auto& t : templates_) {
    if (t.flow == 0) t.flow = flow;
  }
}

void SimLoadGen::set_templates(std::vector<nic::Frame> templates) {
  templates_ = std::move(templates);
  template_index_ = 0;
  if (flow_ != 0) {
    for (auto& t : templates_) {
      if (t.flow == 0) t.flow = flow_;
    }
  }
}

void SimLoadGen::bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix) {
  if (tm_valid_.valid()) return;  // already bound; re-seeding would double-count
  tm_valid_ = tree.counter(prefix + ".valid_frames");
  tm_gap_ = tree.counter(prefix + ".gap_frames");
  tm_carry_ = tree.gauge(prefix + ".carry_bytes");
  tm_valid_.add(valid_frames_);
  tm_gap_.add(gap_frames_);
}

void SimLoadGen::bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix) {
  bind_telemetry(registry.shard(0), prefix);
}

nic::Frame SimLoadGen::next_frame() {
  // CRC mode: emit pending gap frames between valid packets.
  if (filler_ && pending_index_ < pending_gaps_.size()) {
    ++gap_frames_;
    tm_gap_.add(1);
    return nic::make_gap_frame(pending_gaps_[pending_index_++], ++frame_seq_);
  }

  nic::Frame out = templates_.empty()
                       ? frame_
                       : templates_[template_index_++ % templates_.size()];
  if (marked_remaining_ > 0) {
    out = marked_frame_;
    --marked_remaining_;
  }
  out.seq = ++frame_seq_;
  ++valid_frames_;
  tm_valid_.add(1);

  if (filler_) {
    // Compute the wire gap until the next valid packet and pre-plan the
    // invalid frames that fill it.
    acc_ps_ += static_cast<double>(pattern_->next_gap_ps());
    const double bytes_f = acc_ps_ / static_cast<double>(byte_time_ps_);
    // Nearest wire byte, not floor: the accumulator may briefly go half a
    // byte-time negative, but departures stay centered on the schedule
    // instead of trailing it by up to one byte-time.
    const auto rounded = std::llround(bytes_f);
    const auto gap_total = rounded > 0 ? static_cast<std::size_t>(rounded) : 0;
    acc_ps_ -= static_cast<double>(gap_total) * static_cast<double>(byte_time_ps_);
    const std::size_t valid_wire = out.wire_bytes();
    const std::size_t filler_bytes = gap_total > valid_wire ? gap_total - valid_wire : 0;
    pending_gaps_ = filler_->fill(filler_bytes);
    pending_index_ = 0;
    tm_carry_.set(static_cast<double>(filler_->carry_bytes()));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Frame templates
// ---------------------------------------------------------------------------

nic::Frame make_udp_frame(const UdpTemplateOptions& opts) {
  // An 802.1Q tag is inserted after the fill: the view fills the untagged
  // layout, then the Ethernet header is re-typed and the 4 tag bytes
  // spliced in. IP/UDP lengths are unaffected (the tag lives below L3).
  const std::size_t tag_bytes = opts.vlan ? sizeof(proto::VlanTag) : 0;
  std::vector<std::uint8_t> bytes(opts.frame_size - tag_bytes, 0);
  proto::UdpPacketView view{{bytes.data(), bytes.size()}};
  proto::UdpFillOptions fill;
  fill.packet_length = opts.frame_size - tag_bytes;
  fill.eth_src = proto::MacAddress::from_uint64(0x020000000001ull);
  fill.eth_dst = proto::MacAddress::from_uint64(0x020000000002ull);
  fill.udp_src = opts.udp_src;
  fill.udp_dst = opts.ptp_payload ? proto::PtpHeader::kUdpEventPort : opts.udp_dst;
  view.fill(fill);

  if (opts.ptp_payload) {
    auto payload = view.udp_payload();
    if (payload.size() >= sizeof(proto::PtpHeader)) {
      auto* ptp = reinterpret_cast<proto::PtpHeader*>(payload.data());
      std::memset(ptp, 0, sizeof(*ptp));
      ptp->set_message_type(static_cast<proto::PtpMessageType>(opts.ptp_message_type));
      ptp->set_version(proto::PtpHeader::kVersion2);
    }
  }

  if (opts.vlan) {
    std::vector<std::uint8_t> tagged(opts.frame_size, 0);
    std::memcpy(tagged.data(), bytes.data(), sizeof(proto::EthernetHeader));
    auto* eth = reinterpret_cast<proto::EthernetHeader*>(tagged.data());
    eth->set_ether_type(proto::EtherType::kVlan);
    auto* tag = reinterpret_cast<proto::VlanTag*>(tagged.data() + sizeof(proto::EthernetHeader));
    tag->set(opts.vlan_vid, opts.vlan_pcp);
    tag->ether_type_be = proto::hton16(static_cast<std::uint16_t>(proto::EtherType::kIPv4));
    std::memcpy(tagged.data() + sizeof(proto::EthernetHeader) + sizeof(proto::VlanTag),
                bytes.data() + sizeof(proto::EthernetHeader),
                bytes.size() - sizeof(proto::EthernetHeader));
    bytes = std::move(tagged);
  }

  auto frame = nic::make_frame(std::move(bytes));
  frame.flow = opts.flow;
  return frame;
}

nic::Frame make_ptp_ethernet_frame(std::size_t frame_size, std::uint8_t message_type) {
  std::vector<std::uint8_t> bytes(frame_size, 0);
  proto::EthPacketView view{{bytes.data(), bytes.size()}};
  view.eth().dst = proto::MacAddress::from_uint64(0x020000000002ull);
  view.eth().src = proto::MacAddress::from_uint64(0x020000000001ull);
  view.eth().set_ether_type(proto::EtherType::kPtp);
  auto payload = view.payload();
  auto* ptp = reinterpret_cast<proto::PtpHeader*>(payload.data());
  std::memset(ptp, 0, std::min(payload.size(), sizeof(proto::PtpHeader)));
  ptp->set_message_type(static_cast<proto::PtpMessageType>(message_type));
  ptp->set_version(proto::PtpHeader::kVersion2);
  return nic::make_frame(std::move(bytes));
}

}  // namespace moongen::core
