// Rate control: traffic patterns and the CRC-based gap filler.
//
// Section 8 of the paper introduces MoonGen's novel software rate control:
// instead of *waiting* between packets (which modern NICs' asynchronous
// push-pull DMA model executes imprecisely, Section 7.1), the generator
// keeps the transmit queue full at line rate and fills the time between
// valid packets with frames carrying an invalid CRC. The device under test
// drops those in hardware before they reach any receive queue, so the
// arrival pattern of *valid* packets is controlled with byte granularity
// (0.8 ns at 10 GbE).
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "nic/frame.hpp"
#include "nic/port.hpp"
#include "sim/time.hpp"
#include "telemetry/registry.hpp"

namespace moongen::core {

// ---------------------------------------------------------------------------
// Departure patterns
// ---------------------------------------------------------------------------

/// Produces the desired start-to-start spacing between consecutive valid
/// packets.
class DeparturePattern {
 public:
  virtual ~DeparturePattern() = default;
  virtual sim::SimTime next_gap_ps() = 0;
};

/// Constant bit rate: fixed inter-departure time.
class CbrPattern : public DeparturePattern {
 public:
  explicit CbrPattern(double mpps) : gap_ps_(1e6 / mpps) {}
  sim::SimTime next_gap_ps() override {
    // Round-with-carry, matching PoissonPattern's convention: truncation
    // would bias every gap low by up to 1 ps and each departure would lag
    // the ideal schedule by up to a picosecond; rounding centers the error
    // while the accumulator keeps the long-run rate exact.
    acc_ += gap_ps_;
    const auto gap = std::llround(acc_);
    acc_ -= static_cast<double>(gap);
    return gap > 0 ? static_cast<sim::SimTime>(gap) : 0;
  }

 private:
  double gap_ps_;  // 1e12 ps/s / (mpps * 1e6) = 1e6/mpps
  double acc_ = 0;
};

/// Poisson process: exponentially distributed inter-departure times
/// (Section 8.3).
class PoissonPattern : public DeparturePattern {
 public:
  PoissonPattern(double mpps, std::uint64_t seed) : dist_(mpps / 1e6), rng_(seed) {}
  sim::SimTime next_gap_ps() override {
    // Round to the nearest picosecond: truncation would bias the mean
    // inter-departure time low by ~0.5 ps per packet.
    return static_cast<sim::SimTime>(std::llround(dist_(rng_)));  // mean 1e6/mpps ps
  }

 private:
  std::exponential_distribution<double> dist_;  // rate per ps
  std::mt19937_64 rng_;
};

/// Bursts of `burst_size` back-to-back packets at an average rate
/// (l2-bursts.lua).
class BurstPattern : public DeparturePattern {
 public:
  BurstPattern(double avg_mpps, std::size_t burst_size, std::size_t frame_wire_bytes,
               std::uint64_t link_mbit)
      : burst_size_(burst_size),
        b2b_gap_ps_(frame_wire_bytes * sim::byte_time_ps(link_mbit)) {
    const double period_ps = 1e6 / avg_mpps * static_cast<double>(burst_size);
    const double used = static_cast<double>(b2b_gap_ps_) * static_cast<double>(burst_size - 1);
    // Nearest picosecond (clamped at 0 for over-committed bursts); plain
    // truncation would run every burst period slightly hot.
    const auto rest = std::llround(period_ps - used);
    inter_burst_gap_ps_ = rest > 0 ? static_cast<sim::SimTime>(rest) : 0;
  }

  sim::SimTime next_gap_ps() override {
    const bool in_burst = (++position_ % burst_size_) != 0;
    return in_burst ? b2b_gap_ps_ : inter_burst_gap_ps_;
  }

 private:
  std::size_t burst_size_;
  sim::SimTime b2b_gap_ps_;
  sim::SimTime inter_burst_gap_ps_;
  std::size_t position_ = 0;
};

// ---------------------------------------------------------------------------
// CRC-based gap filler (Section 8.1)
// ---------------------------------------------------------------------------

struct GapFillerConfig {
  /// Hardware floor: NICs refuse wire lengths below 33 bytes.
  std::size_t hw_min_wire_len = 33;
  /// MoonGen's default: sub-64 B frames overload the NIC's transmit path
  /// (max 15.6 Mpps), so invalid frames are at least 76 wire bytes.
  std::size_t min_wire_len = 76;
  /// Largest single filler frame (1518 B frame + 20 overhead).
  std::size_t max_wire_len = 1538;
};

/// Translates desired wire gaps (in bytes) into invalid-frame lengths.
/// Gaps that are too short to represent are carried over and added to a
/// later gap — average rate stays exact while short-gap precision degrades
/// (Section 8.4).
class CrcGapFiller {
 public:
  explicit CrcGapFiller(GapFillerConfig config = {}) : cfg_(config) {}

  /// Returns the wire lengths of the invalid frames filling `gap_bytes` of
  /// wire time. May return an empty vector (back-to-back, or carry-over).
  std::vector<std::size_t> fill(std::size_t gap_bytes);

  [[nodiscard]] std::size_t carry_bytes() const { return carry_; }
  [[nodiscard]] std::uint64_t skipped_gaps() const { return skipped_; }
  [[nodiscard]] const GapFillerConfig& config() const { return cfg_; }

 private:
  GapFillerConfig cfg_;
  std::size_t carry_ = 0;
  std::uint64_t skipped_ = 0;
};

// ---------------------------------------------------------------------------
// Simulated load generator
// ---------------------------------------------------------------------------

/// Drives a simulated transmit queue with one of MoonGen's two rate-control
/// mechanisms:
///  * hardware mode: the queue's HW rate limiter paces; the generator just
///    keeps the queue full (Section 7.2);
///  * CRC mode: the queue runs at line rate and the generator interleaves
///    valid packets with invalid filler frames per a DeparturePattern
///    (Section 8).
class SimLoadGen {
 public:
  /// Hardware rate control: keep `queue` full of copies of `frame`; pacing
  /// comes from queue.set_rate_*.
  static std::unique_ptr<SimLoadGen> hardware_paced(nic::TxQueueModel& queue, nic::Frame frame);

  /// CRC-based software rate control at line rate.
  static std::unique_ptr<SimLoadGen> crc_paced(nic::TxQueueModel& queue, nic::Frame frame,
                                               std::unique_ptr<DeparturePattern> pattern,
                                               std::uint64_t link_mbit,
                                               GapFillerConfig config = {});

  /// Replaces the valid-frame template (e.g. with a PTP-stampable variant)
  /// for the next `n` valid frames, then reverts. Used by the Timestamper's
  /// stream-sampling mode (Section 6.4).
  void mark_next_valid(nic::Frame stamped, int n = 1);

  /// Labels every valid frame this generator emits with `flow` (the RTT
  /// plane's flow-group id). Applies to the base template and to any
  /// cycling templates installed afterwards that left flow at 0.
  void set_flow(std::uint32_t flow);

  /// Installs a set of templates cycled round-robin across valid frames
  /// (one frame per template per cycle) — e.g. one VLAN-tagged template
  /// per tenant, each carrying its own Frame.flow label. Replaces the
  /// single base template for valid frames; marked frames still win.
  void set_templates(std::vector<nic::Frame> templates);

  [[nodiscard]] std::uint64_t valid_frames() const { return valid_frames_; }
  [[nodiscard]] std::uint64_t gap_frames() const { return gap_frames_; }

  /// Mirrors the real-packet vs. filler-packet split (Section 8.1) into
  /// `<prefix>.valid_frames` / `<prefix>.gap_frames` / `<prefix>.carry_bytes`.
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix);
  /// Convenience overload: binds into the registry's default tree (shard 0).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);

  ~SimLoadGen() = default;

 private:
  SimLoadGen() = default;
  nic::Frame next_frame();

  nic::Frame frame_;
  nic::Frame marked_frame_;
  std::vector<nic::Frame> templates_;  // round-robin when non-empty
  std::size_t template_index_ = 0;
  std::uint32_t flow_ = 0;
  int marked_remaining_ = 0;
  std::unique_ptr<DeparturePattern> pattern_;
  std::unique_ptr<CrcGapFiller> filler_;
  sim::SimTime byte_time_ps_ = 800;
  double acc_ps_ = 0;  // fractional wire-byte accumulator
  std::vector<std::size_t> pending_gaps_;
  std::size_t pending_index_ = 0;
  std::uint64_t valid_frames_ = 0;
  std::uint64_t gap_frames_ = 0;
  std::uint64_t frame_seq_ = 0;
  telemetry::CounterHandle tm_valid_;
  telemetry::CounterHandle tm_gap_;
  telemetry::GaugeHandle tm_carry_;
};

// ---------------------------------------------------------------------------
// Frame templates
// ---------------------------------------------------------------------------

struct UdpTemplateOptions {
  std::size_t frame_size = 124;  ///< buffer length (without FCS), Listing 2
  std::uint16_t udp_src = 1234;
  std::uint16_t udp_dst = 42;
  /// If true, insert an 802.1Q tag (vid/pcp below) after the Ethernet
  /// header. frame_size includes the 4 tag bytes.
  bool vlan = false;
  std::uint16_t vlan_vid = 0;
  std::uint8_t vlan_pcp = 0;
  /// Flow-group label stamped on the template (Frame.flow): selects the
  /// RTT plane histogram group this traffic is accounted under.
  std::uint32_t flow = 0;
  /// If true, append a PTP header after UDP (dst port forced to 319) so the
  /// NIC timestamp units can stamp the packet.
  bool ptp_payload = false;
  /// PTP message type: a type within the filter mask (0-3) is timestamped;
  /// MoonGen crafts background packets with a type outside the mask so the
  /// DuT cannot distinguish them from the sampled packets (Section 6.4).
  std::uint8_t ptp_message_type = 0;
};

/// Builds a UDP (optionally PTP-carrying) frame template for the simulated
/// generators.
nic::Frame make_udp_frame(const UdpTemplateOptions& opts);

/// Builds a PTP-over-Ethernet frame (EtherType 0x88F7), stampable at any
/// size >= 64 (Section 6.4).
nic::Frame make_ptp_ethernet_frame(std::size_t frame_size, std::uint8_t message_type = 0);

}  // namespace moongen::core
