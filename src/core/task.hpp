// Task system: the C++ face of `mg.launchLua` / `mg.waitForSlaves`.
//
// MoonGen spawns each slave as an independent LuaJIT VM pinned to a CPU
// core; tasks share nothing except explicit pipes (paper Section 3.4).
// Here every task is a pinned thread running a plain function; the global
// run flag mirrors `dpdk.running()` and pipes mirror MoonGen's inter-task
// communication facilities.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/registry.hpp"

namespace moongen::core {

/// Run/stop state of one experiment: the flag behind `dpdk.running()`.
///
/// Every testbed::Testbed owns a private RunState, so parallel shards and
/// back-to-back experiments in one process cannot race each other's resets;
/// the free functions below operate on the process-global instance for
/// script parity and legacy callers.
///
/// Memory ordering: running() is an acquire load and request_stop() a
/// release store, so a task that observes the stop also observes everything
/// the stopping thread wrote before it (final stats, shutdown markers) —
/// with the old relaxed loads that was only true by accident of x86.
class RunState {
 public:
  RunState();
  RunState(const RunState&) = delete;
  RunState& operator=(const RunState&) = delete;

  /// Equivalent of `dpdk.running()`: transmit/receive loops poll this.
  [[nodiscard]] bool running() const;

  /// Asks all tasks to wind down (mirrors MoonGen's SIGINT handling).
  void request_stop();

  /// Re-arms the run flag (between experiments in one process) and
  /// invalidates any timers armed by earlier stop_after calls.
  void reset();

  /// Requests stop after `seconds` of wall-clock time, from a helper
  /// thread. Returns immediately. The timer is generation-counted (a
  /// reset() makes a pending timer a no-op) and holds only a weak
  /// reference to this state, so it cannot fire into a destroyed testbed.
  void stop_after(double seconds);

  /// Generation of the run state; bumped by reset(). Exposed for tests of
  /// the stop_after invalidation contract.
  [[nodiscard]] std::uint64_t generation() const;

  /// The process-global instance the free functions delegate to.
  static RunState& global();

 private:
  struct State {
    std::atomic<bool> flag{true};
    std::atomic<std::uint64_t> generation{0};
  };
  /// Shared so detached stop_after timers can outlive the RunState safely.
  std::shared_ptr<State> state_;
};

/// Equivalent of `dpdk.running()` on the process-global run state.
bool running();

/// Asks all tasks to wind down (mirrors MoonGen's SIGINT handling).
void request_stop();

/// Re-arms the global run flag (between experiments in one process) and
/// invalidates any timers armed by earlier stop_after calls.
void reset_run_state();

/// RunState::stop_after on the process-global instance.
void stop_after(double seconds);

/// RunState::generation of the process-global instance.
std::uint64_t run_generation();

class TaskSet {
 public:
  TaskSet() = default;
  TaskSet(const TaskSet&) = delete;
  TaskSet& operator=(const TaskSet&) = delete;
  ~TaskSet() { wait(); }

  /// Launches `fn(args...)` in a new task pinned to the next CPU core
  /// (round-robin). Mirrors `mg.launchLua("slave", args...)`.
  template <typename F, typename... Args>
  void launch(std::string name, F&& fn, Args&&... args) {
    launch_impl(std::move(name),
                [fn = std::forward<F>(fn),
                 tup = std::make_tuple(std::forward<Args>(args)...)]() mutable {
                  std::apply(fn, std::move(tup));
                });
  }

  /// Joins all tasks (mirrors `mg.waitForSlaves()`).
  void wait();

  [[nodiscard]] std::size_t task_count() const { return threads_.size(); }

  /// Counts task lifecycle events in `registry`: `<prefix>.tasks_launched`
  /// and `<prefix>.tasks_finished` plus a `<prefix>.tasks_active` gauge.
  /// Bind before launching; the registry must outlive the task set.
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix);
  /// Convenience overload: binds into the registry's default tree (shard 0).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);

 private:
  void launch_impl(std::string name, std::function<void()> body);

  std::vector<std::thread> threads_;
  int next_core_ = 0;
  // Handles are bumped from both the launching thread and the worker
  // threads' epilogues; the counter slots are relaxed atomics, so the sums
  // are exact once wait() has joined everyone.
  telemetry::CounterHandle tm_launched_;
  telemetry::CounterHandle tm_finished_;
  telemetry::GaugeHandle tm_active_;
};

/// Bounded MPMC pipe for inter-task communication (MoonGen's `pipe`).
template <typename T>
class Pipe {
 public:
  explicit Pipe(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Blocks while full (unless stop was requested; then drops and returns
  /// false).
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return queue_.size() < capacity_ || !running(); });
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Pops with a timeout; empty optional on timeout or shutdown.
  std::optional<T> pop(std::chrono::nanoseconds timeout = std::chrono::milliseconds(100)) {
    std::unique_lock lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout, [&] { return !queue_.empty(); }))
      return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
};

}  // namespace moongen::core
