// Per-packet field randomization engine (paper Section 5.6.2, Table 2).
//
// Generator scripts vary header fields per packet either with a random
// number generator or with a wrapping counter. The paper measures both: a
// Tausworthe generator (LuaJIT's default) costs ~17 cycles per field, a
// wrapping counter ~1 cycle — so counters should be preferred when the
// traffic definition allows it. This module provides both generators plus
// the cheaper LCG the paper suggests, and a small "modifier program" that
// applies a list of field actions to each packet (the declarative
// equivalent of the per-packet script body).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace moongen::core {

/// Three-component Tausworthe generator (taus88, L'Ecuyer) — the same
/// family as LuaJIT's math.random.
class Tausworthe {
 public:
  explicit Tausworthe(std::uint32_t seed = 0x1234abcd) {
    // Seeds must satisfy the taus88 preconditions (>= 2/8/16).
    s1_ = seed | 0x10u;
    s2_ = (seed * 0x9e3779b9u) | 0x100u;
    s3_ = (seed * 0x85ebca6bu) | 0x1000u;
    for (int i = 0; i < 8; ++i) next();  // warm up
  }

  std::uint32_t next() {
    s1_ = ((s1_ & 0xFFFFFFFEu) << 12) ^ (((s1_ << 13) ^ s1_) >> 19);
    s2_ = ((s2_ & 0xFFFFFFF8u) << 4) ^ (((s2_ << 2) ^ s2_) >> 25);
    s3_ = ((s3_ & 0xFFFFFFF0u) << 17) ^ (((s3_ << 3) ^ s3_) >> 11);
    return s1_ ^ s2_ ^ s3_;
  }

 private:
  std::uint32_t s1_, s2_, s3_;
};

/// Linear congruential generator — the cheaper alternative the paper
/// suggests when the random-number quality does not matter.
class Lcg {
 public:
  explicit Lcg(std::uint32_t seed = 1) : state_(seed) {}
  std::uint32_t next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_;
  }

 private:
  std::uint32_t state_;
};

/// A field inside the packet buffer: byte offset and width (1, 2 or 4).
struct FieldRef {
  std::uint16_t offset = 0;
  std::uint8_t width = 4;
};

/// One per-packet action on a field.
struct FieldAction {
  enum class Kind : std::uint8_t {
    kConstant,   ///< write a fixed value (baseline in Table 2)
    kCounter,    ///< wrapping counter, +1 per packet
    kRandom,     ///< Tausworthe random draw per packet
    kFlowLabel,  ///< metadata action: record value (+ wrapping counter over
                 ///< [value, value+range) when range != 0) as the packet's
                 ///< flow-group label — no bytes are written; the caller
                 ///< reads it back via last_flow() and stamps Frame.flow
  };

  FieldRef field;
  Kind kind = Kind::kConstant;
  std::uint32_t value = 0;  ///< constant value / counter start
  std::uint32_t range = 0;  ///< counter wrap / random modulus (0 = full width)
};

/// Compiled list of field actions applied to every packet — the hot loop
/// body of a generator script.
class ModifierProgram {
 public:
  explicit ModifierProgram(std::vector<FieldAction> actions, std::uint32_t seed = 42)
      : actions_(std::move(actions)), rng_(seed) {
    counters_.resize(actions_.size(), 0);
    for (std::size_t i = 0; i < actions_.size(); ++i) counters_[i] = actions_[i].value;
  }

  /// Applies all actions to the packet at `data` (no bounds checks — the
  /// same deliberate tradeoff as MoonGen's userscripts, Section 5).
  void apply(std::uint8_t* data) {
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      const FieldAction& a = actions_[i];
      std::uint32_t v;
      switch (a.kind) {
        case FieldAction::Kind::kConstant:
          v = a.value;
          break;
        case FieldAction::Kind::kCounter:
          v = counters_[i]++;
          if (a.range != 0 && counters_[i] >= a.value + a.range) counters_[i] = a.value;
          break;
        case FieldAction::Kind::kFlowLabel:
          last_flow_ = counters_[i];
          if (a.range != 0 && ++counters_[i] >= a.value + a.range) counters_[i] = a.value;
          continue;  // metadata only, no byte write
        case FieldAction::Kind::kRandom:
        default:
          v = rng_.next();
          if (a.range != 0) v = a.value + v % a.range;
          break;
      }
      write_field(data + a.field.offset, a.field.width, v);
    }
  }

  /// Applies all actions using an externally supplied random source instead
  /// of the built-in Tausworthe. `draw` is any callable returning an
  /// unsigned integer; for kRandom actions with a modulus the reduction is
  /// performed on the full draw (`value + draw() % range`), so a 64-bit
  /// engine keeps its exact stream semantics. Used by the script trace
  /// specializer, whose kernels must consume the interpreter's math.random
  /// engine draw-for-draw.
  template <typename DrawFn>
  void apply_with_rng(std::uint8_t* data, DrawFn&& draw) {
    for (std::size_t i = 0; i < actions_.size(); ++i) {
      const FieldAction& a = actions_[i];
      std::uint32_t v;
      switch (a.kind) {
        case FieldAction::Kind::kConstant:
          v = a.value;
          break;
        case FieldAction::Kind::kCounter:
          v = counters_[i]++;
          if (a.range != 0 && counters_[i] >= a.value + a.range) counters_[i] = a.value;
          break;
        case FieldAction::Kind::kFlowLabel:
          last_flow_ = counters_[i];
          if (a.range != 0 && ++counters_[i] >= a.value + a.range) counters_[i] = a.value;
          continue;  // metadata only, no byte write
        case FieldAction::Kind::kRandom:
        default: {
          const std::uint64_t r = static_cast<std::uint64_t>(draw());
          v = a.range != 0 ? a.value + static_cast<std::uint32_t>(r % a.range)
                           : static_cast<std::uint32_t>(r);
          break;
        }
      }
      write_field(data + a.field.offset, a.field.width, v);
    }
  }

  /// Rewrites one action in place (keeping its slot in the program); used
  /// by specializer kernels that re-bind entry-dependent constants.
  void set_action(std::size_t i, std::uint32_t value, std::uint32_t range) {
    actions_[i].value = value;
    actions_[i].range = range;
  }

  /// Resets the wrapping counter backing action `i`.
  void set_counter(std::size_t i, std::uint32_t v) { counters_[i] = v; }

  [[nodiscard]] std::size_t action_count() const { return actions_.size(); }

  /// Flow-group label computed by the most recent apply() that executed a
  /// kFlowLabel action. The generator copies this onto Frame.flow so the
  /// RTT plane buckets the packet under the kernel-chosen group.
  [[nodiscard]] std::uint32_t last_flow() const { return last_flow_; }

 private:
  static void write_field(std::uint8_t* dst, std::uint8_t width, std::uint32_t v) {
    // Big-endian store, matching network header fields.
    switch (width) {
      case 1:
        dst[0] = static_cast<std::uint8_t>(v);
        break;
      case 2: {
        dst[0] = static_cast<std::uint8_t>(v >> 8);
        dst[1] = static_cast<std::uint8_t>(v);
        break;
      }
      default: {
        dst[0] = static_cast<std::uint8_t>(v >> 24);
        dst[1] = static_cast<std::uint8_t>(v >> 16);
        dst[2] = static_cast<std::uint8_t>(v >> 8);
        dst[3] = static_cast<std::uint8_t>(v);
        break;
      }
    }
  }

  std::vector<FieldAction> actions_;
  std::vector<std::uint32_t> counters_;
  std::uint32_t last_flow_ = 0;
  Tausworthe rng_;
};

}  // namespace moongen::core
