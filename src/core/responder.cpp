#include "core/responder.hpp"

#include <cstring>

#include "proto/checksum.hpp"
#include "proto/packet_view.hpp"

namespace moongen::core {

namespace {

constexpr std::size_t kArpFrameSize = 60;  // padded to Ethernet minimum

}  // namespace

Responder::Responder(nic::Port& port, Config config) : port_(port), cfg_(config) {
  if (cfg_.consume) port.rx_queue(cfg_.rx_queue).set_store(false);
  port.rx_queue(cfg_.rx_queue)
      .set_callback([this](const nic::RxQueueModel::Entry& entry) { handle(entry); });
}

void Responder::handle(const nic::RxQueueModel::Entry& entry) {
  const auto& bytes = *entry.frame.data;
  if (cfg_.answer_arp && try_arp(bytes)) return;
  if (cfg_.answer_icmp_echo && try_icmp(bytes)) return;
  ++ignored_;
}

bool Responder::try_arp(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < sizeof(proto::EthernetHeader) + sizeof(proto::ArpHeader)) return false;
  const auto* eth = reinterpret_cast<const proto::EthernetHeader*>(bytes.data());
  if (eth->ether_type() != proto::EtherType::kArp) return false;
  const auto* arp =
      reinterpret_cast<const proto::ArpHeader*>(bytes.data() + sizeof(proto::EthernetHeader));
  if (arp->oper() != proto::ArpHeader::kOperRequest) return false;
  if (arp->target_ip() != cfg_.ip) return false;

  // Craft the reply: swap roles, announce our MAC.
  std::vector<std::uint8_t> reply(kArpFrameSize, 0);
  auto* reth = reinterpret_cast<proto::EthernetHeader*>(reply.data());
  reth->dst = arp->sha;
  reth->src = cfg_.mac;
  reth->set_ether_type(proto::EtherType::kArp);
  auto* rarp =
      reinterpret_cast<proto::ArpHeader*>(reply.data() + sizeof(proto::EthernetHeader));
  rarp->set_ethernet_ipv4_defaults();
  rarp->oper_be = proto::hton16(proto::ArpHeader::kOperReply);
  rarp->sha = cfg_.mac;
  rarp->set_sender_ip(cfg_.ip);
  rarp->tha = arp->sha;
  rarp->tpa_be = arp->spa_be;

  port_.tx_queue(cfg_.tx_queue).post(nic::make_frame(std::move(reply)));
  ++arp_replies_;
  return true;
}

bool Responder::try_icmp(const std::vector<std::uint8_t>& bytes) {
  const auto pc = proto::classify({bytes.data(), bytes.size()});
  if (!pc.has_value() || pc->l4_protocol != proto::IpProtocol::kIcmp) return false;
  if (bytes.size() < pc->l4_offset + sizeof(proto::IcmpHeader)) return false;
  const auto* ip = reinterpret_cast<const proto::Ipv4Header*>(bytes.data() + pc->l3_offset);
  if (ip->dst() != cfg_.ip) return false;
  const auto* icmp = reinterpret_cast<const proto::IcmpHeader*>(bytes.data() + pc->l4_offset);
  if (icmp->type != proto::IcmpHeader::kEchoRequest) return false;

  // Echo reply: copy the packet, swap addresses, flip the type, re-checksum.
  std::vector<std::uint8_t> reply(bytes);
  auto* reth = reinterpret_cast<proto::EthernetHeader*>(reply.data());
  const auto* eth = reinterpret_cast<const proto::EthernetHeader*>(bytes.data());
  reth->dst = eth->src;
  reth->src = cfg_.mac;
  auto* rip = reinterpret_cast<proto::Ipv4Header*>(reply.data() + pc->l3_offset);
  rip->set_src(cfg_.ip);
  rip->set_dst(ip->src());
  rip->ttl = 64;
  proto::update_ipv4_checksum(*rip);
  auto* ricmp = reinterpret_cast<proto::IcmpHeader*>(reply.data() + pc->l4_offset);
  ricmp->type = proto::IcmpHeader::kEchoReply;
  ricmp->checksum_be = 0;
  ricmp->checksum_be =
      proto::internet_checksum({reply.data() + pc->l4_offset, reply.size() - pc->l4_offset});

  port_.tx_queue(cfg_.tx_queue).post(nic::make_frame(std::move(reply)));
  ++echo_replies_;
  return true;
}

nic::Frame make_arp_request(proto::MacAddress sender_mac, proto::IPv4Address sender_ip,
                            proto::IPv4Address target_ip) {
  std::vector<std::uint8_t> bytes(kArpFrameSize, 0);
  auto* eth = reinterpret_cast<proto::EthernetHeader*>(bytes.data());
  eth->dst = proto::kBroadcastMac;
  eth->src = sender_mac;
  eth->set_ether_type(proto::EtherType::kArp);
  auto* arp =
      reinterpret_cast<proto::ArpHeader*>(bytes.data() + sizeof(proto::EthernetHeader));
  arp->set_ethernet_ipv4_defaults();
  arp->oper_be = proto::hton16(proto::ArpHeader::kOperRequest);
  arp->sha = sender_mac;
  arp->set_sender_ip(sender_ip);
  arp->tha = proto::MacAddress{};  // unknown
  arp->set_target_ip(target_ip);
  return nic::make_frame(std::move(bytes));
}

nic::Frame make_icmp_echo_request(proto::MacAddress src_mac, proto::MacAddress dst_mac,
                                  proto::IPv4Address src_ip, proto::IPv4Address dst_ip,
                                  std::uint16_t ident, std::uint16_t seq,
                                  std::size_t payload_size) {
  const std::size_t total = sizeof(proto::EthernetHeader) + sizeof(proto::Ipv4Header) +
                            sizeof(proto::IcmpHeader) + payload_size;
  std::vector<std::uint8_t> bytes(std::max<std::size_t>(total, 60), 0);
  auto* eth = reinterpret_cast<proto::EthernetHeader*>(bytes.data());
  eth->dst = dst_mac;
  eth->src = src_mac;
  eth->set_ether_type(proto::EtherType::kIPv4);
  auto* ip =
      reinterpret_cast<proto::Ipv4Header*>(bytes.data() + sizeof(proto::EthernetHeader));
  ip->set_defaults();
  ip->protocol = static_cast<std::uint8_t>(proto::IpProtocol::kIcmp);
  ip->set_total_length(static_cast<std::uint16_t>(bytes.size() - sizeof(proto::EthernetHeader)));
  ip->set_src(src_ip);
  ip->set_dst(dst_ip);
  proto::update_ipv4_checksum(*ip);
  const std::size_t icmp_off = sizeof(proto::EthernetHeader) + sizeof(proto::Ipv4Header);
  auto* icmp = reinterpret_cast<proto::IcmpHeader*>(bytes.data() + icmp_off);
  icmp->type = proto::IcmpHeader::kEchoRequest;
  icmp->code = 0;
  icmp->identifier_be = proto::hton16(ident);
  icmp->sequence_be = proto::hton16(seq);
  for (std::size_t i = 0; i < payload_size; ++i)
    bytes[icmp_off + sizeof(proto::IcmpHeader) + i] = static_cast<std::uint8_t>('a' + i % 26);
  icmp->checksum_be = 0;
  icmp->checksum_be =
      proto::internet_checksum({bytes.data() + icmp_off, bytes.size() - icmp_off});
  return nic::make_frame(std::move(bytes));
}

}  // namespace moongen::core
