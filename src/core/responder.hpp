// Protocol responder: answers ARP requests and ICMP echo requests.
//
// MoonGen "can also be used for arbitrary packet processing tasks" and
// ships ARP/ICMP handling with its example scripts (Sections 3.4, 10);
// tests that respond to incoming traffic in real time are explicitly part
// of the design. This responder gives a simulated port a minimal host
// personality: it replies to ARP who-has queries for its address and
// echoes ICMP pings, which is what a load generator needs so that routers
// and L3 devices under test will actually forward traffic to it.
#pragma once

#include <cstdint>

#include "nic/port.hpp"
#include "proto/headers.hpp"

namespace moongen::core {

class Responder {
 public:
  struct Config {
    proto::IPv4Address ip;
    proto::MacAddress mac;
    bool answer_arp = true;
    bool answer_icmp_echo = true;
    /// Consume the RX queue (default): packets are handled in the callback
    /// and not stored, so an unread ring cannot fill up. Set false when the
    /// application also drains the queue itself.
    bool consume = true;
    int rx_queue = 0;
    int tx_queue = 0;
  };

  /// Attaches to the port's RX queue callback. Frames that are not handled
  /// are counted and ignored (they stay in the RX ring for the
  /// application).
  Responder(nic::Port& port, Config config);

  [[nodiscard]] std::uint64_t arp_replies() const { return arp_replies_; }
  [[nodiscard]] std::uint64_t echo_replies() const { return echo_replies_; }
  [[nodiscard]] std::uint64_t ignored() const { return ignored_; }

 private:
  void handle(const nic::RxQueueModel::Entry& entry);
  bool try_arp(const std::vector<std::uint8_t>& bytes);
  bool try_icmp(const std::vector<std::uint8_t>& bytes);

  nic::Port& port_;
  Config cfg_;
  std::uint64_t arp_replies_ = 0;
  std::uint64_t echo_replies_ = 0;
  std::uint64_t ignored_ = 0;
};

/// Builds an ARP who-has request frame (for tests and scripts).
nic::Frame make_arp_request(proto::MacAddress sender_mac, proto::IPv4Address sender_ip,
                            proto::IPv4Address target_ip);

/// Builds an ICMP echo-request frame with `payload_size` payload bytes.
nic::Frame make_icmp_echo_request(proto::MacAddress src_mac, proto::MacAddress dst_mac,
                                  proto::IPv4Address src_ip, proto::IPv4Address dst_ip,
                                  std::uint16_t ident, std::uint16_t seq,
                                  std::size_t payload_size = 32);

}  // namespace moongen::core
