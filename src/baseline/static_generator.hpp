// A config-driven packet generator in the style of Pktgen-DPDK.
//
// Comparison target for the paper's Section 5.2: Pktgen-DPDK is written in
// C and configured through commands, so its transmit loop is one generic
// code path that checks, per packet, which of the supported features are
// active — protocol selection, address/port ranges, size ranges, VLAN,
// payload fill — even when a test only needs one of them. MoonGen's
// argument (and the result of Section 5.2) is that a specialized per-test
// script beats this: "you only pay for the features you actually use."
//
// The generator here is an honest generic loop, not a strawman: each
// feature costs one predictable branch plus its work, like a well-written
// C generator with runtime configuration.
#pragma once

#include <cstdint>

#include "core/device.hpp"
#include "core/field_modifier.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"

namespace moongen::baseline {

/// Runtime configuration, equivalent to Pktgen-DPDK's per-port settings.
struct StaticGenConfig {
  enum class L3 : std::uint8_t { kIpv4, kIpv6 };
  enum class L4 : std::uint8_t { kUdp, kTcp };
  enum class RangeMode : std::uint8_t { kFixed, kIncrement, kRandom };

  std::size_t packet_size = 60;  ///< buffer size without FCS
  L3 l3 = L3::kIpv4;
  L4 l4 = L4::kUdp;

  RangeMode src_ip_mode = RangeMode::kFixed;
  std::uint32_t src_ip_base = 0x0a000001;  // 10.0.0.1
  std::uint32_t src_ip_count = 1;

  RangeMode dst_ip_mode = RangeMode::kFixed;
  std::uint32_t dst_ip_base = 0xc0a80101;  // 192.168.1.1
  std::uint32_t dst_ip_count = 1;

  RangeMode src_port_mode = RangeMode::kFixed;
  std::uint16_t src_port_base = 1234;
  std::uint16_t src_port_count = 1;

  RangeMode dst_port_mode = RangeMode::kFixed;
  std::uint16_t dst_port_base = 42;
  std::uint16_t dst_port_count = 1;

  bool vlan_enabled = false;
  std::uint16_t vlan_id = 1;

  RangeMode size_mode = RangeMode::kFixed;  ///< packet size sweeping
  std::size_t size_min = 60;
  std::size_t size_max = 60;

  bool fill_payload_pattern = false;  ///< rewrite payload bytes per packet
  bool checksum_offload = true;
  std::size_t batch_size = 64;
};

/// Pktgen-DPDK-like generator bound to one fast-path TX queue.
class StaticGenerator {
 public:
  StaticGenerator(core::Device& device, int tx_queue, StaticGenConfig config);

  /// Runs the generic main loop for `packets` packets; returns the number
  /// actually sent.
  std::uint64_t run_packets(std::uint64_t packets);

  [[nodiscard]] const StaticGenConfig& config() const { return cfg_; }

 private:
  void craft(membuf::PktBuf& buf);

  core::Device& device_;
  int tx_queue_;
  StaticGenConfig cfg_;
  membuf::Mempool pool_;
  core::Tausworthe rng_;

  // Range state (like pktgen's sequence counters).
  std::uint32_t src_ip_cur_ = 0;
  std::uint32_t dst_ip_cur_ = 0;
  std::uint16_t src_port_cur_ = 0;
  std::uint16_t dst_port_cur_ = 0;
  std::size_t size_cur_ = 0;
};

}  // namespace moongen::baseline
