#include "baseline/sw_paced.hpp"

namespace moongen::baseline {

ZsendLikePacer::ZsendLikePacer(sim::EventQueue& events, nic::TxQueueModel& queue,
                               nic::Frame frame, Config config)
    : events_(events), queue_(queue), frame_(std::move(frame)), cfg_(config), rng_(config.seed) {}

void ZsendLikePacer::start() {
  running_ = true;
  start_ps_ = events_.now();
  wake();
}

void ZsendLikePacer::wake() {
  if (!running_) return;
  // How many packets should have been sent by now at the target rate?
  const double elapsed_ps = static_cast<double>(events_.now() - start_ps_);
  const auto should_have = static_cast<std::uint64_t>(elapsed_ps * cfg_.mpps / 1e6);
  // Everything that became due since the last wake goes out in one go —
  // the NIC fetches the descriptors together and transmits them
  // back-to-back (the micro-burst bug of Section 7.3).
  while (due_total_ < should_have) {
    nic::Frame f = frame_;
    f.seq = ++posted_;
    queue_.post(std::move(f));
    ++due_total_;
  }
  events_.schedule_in(cfg_.wake_quantum_ps, [this] { wake(); });
}

}  // namespace moongen::baseline
