// Software-rate-controlled generators, modelling the comparison targets of
// the paper's rate-control evaluation (Section 7.3, Table 4, Figure 8).
//
// Both baselines try to control inter-departure times from software, which
// modern NICs execute imprecisely: the software can only post descriptors;
// *when* the NIC fetches them via DMA is outside its control (Section 7.1).
//
//  * PktgenLikePacer (Pktgen-DPDK style): a busy-wait deadline loop posts
//    one descriptor per packet at the target time, with a small software
//    jitter. Precision is limited by the DMA fetch jitter.
//  * ZsendLikePacer (zsend style): the pacing loop checks the clock only
//    once per wake quantum and posts everything that became due
//    back-to-back — the burst bug observed in the paper (28.6-52 % of
//    packets arrive as micro-bursts).
#pragma once

#include <cstdint>
#include <random>

#include "nic/frame.hpp"
#include "nic/port.hpp"
#include "sim/event_queue.hpp"

namespace moongen::baseline {

/// Pktgen-DPDK-style pacer: one deadline-scheduled post per packet.
class PktgenLikePacer {
 public:
  struct Config {
    double mpps = 0.5;
    /// Stddev of the busy-wait loop's own timing error.
    sim::SimTime sw_jitter_sigma_ps = 30'000;  // 30 ns
    /// Probability that an iteration misses its deadline entirely (cache
    /// miss burst, TLB shootdown, timer readout hiccup) — the heavy tail
    /// behind Pktgen-DPDK's 94.5 % +-512 ns column and its micro-bursts at
    /// higher rates (Table 4). A miss delays the next post by the stall
    /// time; at rates where the stall exceeds the inter-packet gap the
    /// catch-up packets go out back-to-back.
    double deadline_miss_probability = 0.025;
    sim::SimTime miss_delay_min_ps = 600'000;    // 0.6 us
    sim::SimTime miss_delay_max_ps = 1'900'000;  // 1.9 us
    std::uint64_t seed = 0xdadbeef;
  };

  PktgenLikePacer(sim::EventQueue& events, nic::TxQueueModel& queue, nic::Frame frame,
                  Config config);

  void start();
  void stop() { running_ = false; }
  [[nodiscard]] std::uint64_t posted() const { return posted_; }

 private:
  void tick();

  sim::EventQueue& events_;
  nic::TxQueueModel& queue_;
  nic::Frame frame_;
  Config cfg_;
  std::mt19937_64 rng_;
  std::normal_distribution<double> jitter_;
  double next_deadline_ps_ = 0;
  double gap_ps_ = 0;
  sim::SimTime busy_until_ps_ = 0;  // loop stalled by a deadline miss
  bool running_ = false;
  std::uint64_t posted_ = 0;
};

/// zsend-style pacer: coarse wake loop, posts all due packets per wake.
class ZsendLikePacer {
 public:
  struct Config {
    double mpps = 0.5;
    /// The loop only observes time once per quantum; everything that became
    /// due meanwhile goes out back-to-back.
    sim::SimTime wake_quantum_ps = 2'800'000;  // 2.8 us
    std::uint64_t seed = 0xabadcafe;
  };

  ZsendLikePacer(sim::EventQueue& events, nic::TxQueueModel& queue, nic::Frame frame,
                 Config config);

  void start();
  void stop() { running_ = false; }
  [[nodiscard]] std::uint64_t posted() const { return posted_; }

 private:
  void wake();

  sim::EventQueue& events_;
  nic::TxQueueModel& queue_;
  nic::Frame frame_;
  Config cfg_;
  std::mt19937_64 rng_;
  sim::SimTime start_ps_ = 0;
  std::uint64_t due_total_ = 0;
  bool running_ = false;
  std::uint64_t posted_ = 0;
};

}  // namespace moongen::baseline
