#include "baseline/static_generator.hpp"

#include <cstring>

#include "proto/checksum.hpp"
#include "proto/packet_view.hpp"

namespace moongen::baseline {

namespace {

std::uint32_t step_range(StaticGenConfig::RangeMode mode, std::uint32_t base,
                         std::uint32_t count, std::uint32_t& cursor, core::Tausworthe& rng) {
  switch (mode) {
    case StaticGenConfig::RangeMode::kFixed:
      return base;
    case StaticGenConfig::RangeMode::kIncrement: {
      const std::uint32_t v = base + cursor;
      if (++cursor >= count) cursor = 0;
      return v;
    }
    case StaticGenConfig::RangeMode::kRandom:
    default:
      return base + (count > 1 ? rng.next() % count : 0);
  }
}

}  // namespace

StaticGenerator::StaticGenerator(core::Device& device, int tx_queue, StaticGenConfig config)
    : device_(device), tx_queue_(tx_queue), cfg_(config), pool_(2048), rng_(0xbead5eed) {}

void StaticGenerator::craft(membuf::PktBuf& buf) {
  // Generic crafting path: every feature is consulted per packet, as in a
  // runtime-configured generator. The packet is rebuilt from the
  // configuration each time because any field may be range-controlled.
  std::size_t size = cfg_.packet_size;
  if (cfg_.size_mode != StaticGenConfig::RangeMode::kFixed) {
    std::uint32_t cur = static_cast<std::uint32_t>(size_cur_);
    size = cfg_.size_min +
           step_range(cfg_.size_mode, 0, static_cast<std::uint32_t>(cfg_.size_max - cfg_.size_min + 1),
                      cur, rng_);
    size_cur_ = cur;
  }
  buf.set_length(size);

  std::uint8_t* data = buf.data();
  std::size_t l3_offset = sizeof(proto::EthernetHeader);

  auto* eth = reinterpret_cast<proto::EthernetHeader*>(data);
  eth->src = device_.mac();
  eth->dst = proto::MacAddress::from_uint64(0x101112131415ull);

  if (cfg_.vlan_enabled) {
    eth->set_ether_type(proto::EtherType::kVlan);
    auto* vlan = reinterpret_cast<proto::VlanTag*>(data + l3_offset);
    vlan->set(cfg_.vlan_id, 0);
    vlan->ether_type_be =
        proto::hton16(static_cast<std::uint16_t>(cfg_.l3 == StaticGenConfig::L3::kIpv4
                                                     ? proto::EtherType::kIPv4
                                                     : proto::EtherType::kIPv6));
    l3_offset += sizeof(proto::VlanTag);
  } else {
    eth->set_ether_type(cfg_.l3 == StaticGenConfig::L3::kIpv4 ? proto::EtherType::kIPv4
                                                              : proto::EtherType::kIPv6);
  }

  const std::uint32_t src_ip =
      step_range(cfg_.src_ip_mode, cfg_.src_ip_base, cfg_.src_ip_count, src_ip_cur_, rng_);
  const std::uint32_t dst_ip =
      step_range(cfg_.dst_ip_mode, cfg_.dst_ip_base, cfg_.dst_ip_count, dst_ip_cur_, rng_);

  std::size_t l4_offset;
  if (cfg_.l3 == StaticGenConfig::L3::kIpv4) {
    auto* ip = reinterpret_cast<proto::Ipv4Header*>(data + l3_offset);
    ip->set_defaults();
    ip->protocol = static_cast<std::uint8_t>(
        cfg_.l4 == StaticGenConfig::L4::kUdp ? proto::IpProtocol::kUdp : proto::IpProtocol::kTcp);
    ip->set_total_length(static_cast<std::uint16_t>(size - l3_offset));
    ip->src_be = proto::hton32(src_ip);
    ip->dst_be = proto::hton32(dst_ip);
    if (!cfg_.checksum_offload) proto::update_ipv4_checksum(*ip);
    l4_offset = l3_offset + sizeof(proto::Ipv4Header);
  } else {
    auto* ip6 = reinterpret_cast<proto::Ipv6Header*>(data + l3_offset);
    ip6->set_defaults();
    ip6->next_header = static_cast<std::uint8_t>(
        cfg_.l4 == StaticGenConfig::L4::kUdp ? proto::IpProtocol::kUdp : proto::IpProtocol::kTcp);
    ip6->set_payload_length(
        static_cast<std::uint16_t>(size - l3_offset - sizeof(proto::Ipv6Header)));
    // Map the 32-bit range values into the low bytes of static prefixes.
    std::memset(ip6->src.bytes.data(), 0, 16);
    std::memset(ip6->dst.bytes.data(), 0, 16);
    ip6->src.bytes[0] = 0x20;
    ip6->dst.bytes[0] = 0x20;
    const std::uint32_t s_be = proto::hton32(src_ip);
    const std::uint32_t d_be = proto::hton32(dst_ip);
    std::memcpy(ip6->src.bytes.data() + 12, &s_be, 4);
    std::memcpy(ip6->dst.bytes.data() + 12, &d_be, 4);
    l4_offset = l3_offset + sizeof(proto::Ipv6Header);
  }

  std::uint32_t sp = src_port_cur_, dp = dst_port_cur_;
  const auto src_port = static_cast<std::uint16_t>(
      step_range(cfg_.src_port_mode, cfg_.src_port_base, cfg_.src_port_count, sp, rng_));
  const auto dst_port = static_cast<std::uint16_t>(
      step_range(cfg_.dst_port_mode, cfg_.dst_port_base, cfg_.dst_port_count, dp, rng_));
  src_port_cur_ = static_cast<std::uint16_t>(sp);
  dst_port_cur_ = static_cast<std::uint16_t>(dp);

  std::size_t payload_offset;
  if (cfg_.l4 == StaticGenConfig::L4::kUdp) {
    auto* udp = reinterpret_cast<proto::UdpHeader*>(data + l4_offset);
    udp->set_src_port(src_port);
    udp->set_dst_port(dst_port);
    udp->set_length(static_cast<std::uint16_t>(size - l4_offset));
    udp->checksum_be = 0;
    payload_offset = l4_offset + sizeof(proto::UdpHeader);
  } else {
    auto* tcp = reinterpret_cast<proto::TcpHeader*>(data + l4_offset);
    std::memset(tcp, 0, sizeof(*tcp));
    tcp->set_defaults();
    tcp->set_src_port(src_port);
    tcp->set_dst_port(dst_port);
    payload_offset = l4_offset + sizeof(proto::TcpHeader);
  }

  if (cfg_.fill_payload_pattern && payload_offset < size) {
    std::memset(data + payload_offset, 0x5a, size - payload_offset);
  }
}

std::uint64_t StaticGenerator::run_packets(std::uint64_t packets) {
  auto& queue = device_.get_tx_queue(tx_queue_);
  membuf::BufArray bufs(pool_, cfg_.batch_size);
  std::uint64_t sent = 0;
  while (sent < packets) {
    const std::size_t n =
        bufs.alloc(cfg_.packet_size, static_cast<std::size_t>(packets - sent));
    if (n == 0) break;
    for (auto* buf : bufs) craft(*buf);
    if (cfg_.checksum_offload) {
      if (cfg_.l3 == StaticGenConfig::L3::kIpv4 && cfg_.l4 == StaticGenConfig::L4::kUdp &&
          !cfg_.vlan_enabled) {
        bufs.offload_udp_checksums();
      } else {
        bufs.offload_ip_checksums();
      }
    }
    sent += queue.send(bufs);
  }
  return sent;
}

}  // namespace moongen::baseline
