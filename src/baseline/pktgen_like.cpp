#include "baseline/sw_paced.hpp"

#include <algorithm>

namespace moongen::baseline {

PktgenLikePacer::PktgenLikePacer(sim::EventQueue& events, nic::TxQueueModel& queue,
                                 nic::Frame frame, Config config)
    : events_(events),
      queue_(queue),
      frame_(std::move(frame)),
      cfg_(config),
      rng_(config.seed),
      jitter_(0.0, static_cast<double>(config.sw_jitter_sigma_ps)),
      gap_ps_(1e6 / config.mpps) {}

void PktgenLikePacer::start() {
  running_ = true;
  next_deadline_ps_ = static_cast<double>(events_.now()) + gap_ps_;
  tick();
}

void PktgenLikePacer::tick() {
  if (!running_) return;
  // The busy-wait loop hits its deadline with a small error; deadlines are
  // derived from the target grid, so the error does not accumulate. A
  // stalled loop (deadline miss) posts late — and the following deadlines,
  // if already due, go out immediately after: the NIC fetches those
  // descriptors together and emits a micro-burst.
  double post_at = next_deadline_ps_ + jitter_(rng_);
  post_at = std::max({post_at, static_cast<double>(events_.now()),
                      static_cast<double>(busy_until_ps_)});
  events_.schedule_at(static_cast<sim::SimTime>(post_at), [this] {
    if (!running_) return;
    nic::Frame f = frame_;
    f.seq = ++posted_;
    queue_.post(std::move(f));  // single descriptor: no batching possible (Section 7.1)
    next_deadline_ps_ += gap_ps_;
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    if (uni(rng_) < cfg_.deadline_miss_probability) {
      // Stall past the *next* deadline: that post goes out late by the
      // stall time.
      std::uniform_int_distribution<sim::SimTime> stall(cfg_.miss_delay_min_ps,
                                                        cfg_.miss_delay_max_ps);
      busy_until_ps_ =
          static_cast<sim::SimTime>(std::max(next_deadline_ps_, static_cast<double>(events_.now()))) +
          stall(rng_);
    }
    tick();
  });
}

}  // namespace moongen::baseline
