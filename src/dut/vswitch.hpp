// Multi-tenant virtual-switch DuT: the programmable software switch behind
// the QoS/DDoS scenario family (ROADMAP items 4+5).
//
// Models the datapath of a tagging+shaping end-host vswitch (the Chameleon
// line of work): frames arriving on one ingress port are matched against a
// five-tuple exact-match table, then a VLAN-id table; the owning tenant's
// token-bucket policer admits or drops; admitted frames sit in the
// tenant's preallocated egress ring until the egress scheduler — strict
// priority across classes, deficit round robin within a class — emits them
// on the tenant's vport, paced at the vport's wire rate so the priority
// decision is made per frame instead of being flattened by a deep TX ring.
//
// Invariants (audited by health::make_vswitch_checker at quiesced window
// boundaries):
//   ingress: received == matched + flooded + shaped_drops + queue_drops
//                        + fault_drops
//   egress:  matched + flooded == emitted + egress_ring_drops + queued()
// Every counter moves exactly once per frame, so both identities are exact
// at any quiesced instant.
//
// Steady state is allocation-free: match tables, egress rings, and DRR
// rotation lists are sized at construction; VLAN push/pop/retag reuses a
// per-tenant copy-on-write buffer cache keyed by the source buffer
// (generators cycle a handful of templates, so rewrites are computed once
// and shared by every subsequent frame off the same template).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "nic/port.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/handles.hpp"
#include "telemetry/rtt_plane.hpp"

namespace moongen::dut {

/// Token-bucket policer on wire bytes. Deterministic: refill is computed
/// from virtual time only. Exposed standalone for the conformance property
/// test (output never exceeds rate*t + burst over any interval).
class TokenBucket {
 public:
  TokenBucket() = default;
  /// `rate_mbit` in Mbit/s of wire bytes; `burst_bytes` is the bucket
  /// depth. rate_mbit <= 0 builds an unlimited bucket (admit everything).
  TokenBucket(double rate_mbit, std::size_t burst_bytes)
      : rate_bytes_per_ps_(rate_mbit * 1e6 / 8.0 / 1e12),
        burst_(static_cast<double>(burst_bytes)),
        tokens_(static_cast<double>(burst_bytes)) {}

  /// Refills up to `now_ps` and consumes `bytes` if the bucket holds them.
  bool admit(sim::SimTime now_ps, std::size_t bytes) {
    if (rate_bytes_per_ps_ <= 0.0) return true;
    if (now_ps > last_ps_) {
      tokens_ += static_cast<double>(now_ps - last_ps_) * rate_bytes_per_ps_;
      if (tokens_ > burst_) tokens_ = burst_;
      last_ps_ = now_ps;
    }
    const auto need = static_cast<double>(bytes);
    if (tokens_ < need) return false;
    tokens_ -= need;
    return true;
  }

  [[nodiscard]] bool unlimited() const { return rate_bytes_per_ps_ <= 0.0; }
  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  double rate_bytes_per_ps_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  sim::SimTime last_ps_ = 0;
};

/// Exact-match key of the five-tuple table (host byte order).
struct FiveTupleKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  bool operator==(const FiveTupleKey&) const = default;
};

/// One tenant: match identity (VLAN id), egress placement (vport +
/// priority class + DRR quantum), shaping, tag rewrite, and the flow-group
/// label its forwarded frames carry into the RTT plane.
struct TenantConfig {
  /// VLAN id owning this tenant in the VID table (the C-tag of a QinQ
  /// stack, i.e. the innermost tag). 0 = no VID table entry (five-tuple
  /// rules only).
  std::uint16_t vid = 0;
  /// Egress vport (index into the out_ports vector).
  int vport = 0;
  /// Strict-priority class, 0 = highest, up to kPriorityClasses-1.
  std::uint8_t priority = 0;
  /// DRR quantum in wire bytes within the priority class. Should be at
  /// least one max frame; smaller quanta still work (the deficit
  /// accumulates over rounds) but cost extra scheduler passes.
  std::uint32_t quantum_bytes = 1600;
  /// Token-bucket policer: rate in Mbit/s of wire bytes (0 = unshaped).
  double rate_mbit = 0.0;
  std::size_t burst_bytes = 16'000;
  /// VLAN rewrite on egress. kPush retags a tagged frame in place (TCI
  /// rewrite) or inserts a tag into an untagged one.
  enum class Tag : std::uint8_t { kKeep, kPop, kPush } tag = Tag::kKeep;
  std::uint16_t push_vid = 0;
  std::uint8_t push_pcp = 0;
  /// Frame.flow stamped on forwarded frames (0 = keep incoming label).
  std::uint32_t flow = 0;
  /// Egress ring capacity in frames.
  std::size_t queue_frames = 512;
};

struct VSwitchConfig {
  static constexpr std::uint8_t kPriorityClasses = 8;

  double cpu_hz = 3.3e9;
  /// Datapath cost per frame (parse + table lookup + enqueue); the vswitch
  /// core saturates at cpu_hz / cycles_per_packet frames per second.
  double cycles_per_packet = 450;
  /// RX notification until the service loop starts.
  sim::SimTime ingress_latency_ps = 500'000;  // 0.5 us
  int poll_budget = 64;
  /// Table-miss frames flood to this vport at the lowest priority class.
  int flood_vport = 0;
  std::size_t flood_queue_frames = 256;
  std::uint32_t flood_quantum_bytes = 1600;
  /// Five-tuple exact-match table capacity (rounded up to a power of two;
  /// add_flow throws when the table would exceed half full).
  std::size_t five_tuple_capacity = 1024;
  std::vector<TenantConfig> tenants;
};

/// Per-tenant books, readable at quiesced instants.
struct TenantCounters {
  std::uint64_t matched = 0;
  std::uint64_t emitted = 0;
  std::uint64_t emitted_wire_bytes = 0;
  std::uint64_t shaped_drops = 0;
  std::uint64_t queue_drops = 0;
  std::size_t queued = 0;
};

class VSwitch {
 public:
  /// Switches every frame arriving on (`in_port`, `in_queue`) to the
  /// tenants' vports (`out_ports`, TX queue 0 each). All ports must live
  /// on `events` (Scenario couples them).
  VSwitch(sim::EventQueue& events, nic::Port& in_port, int in_queue,
          std::vector<nic::Port*> out_ports, VSwitchConfig config);

  /// Installs a five-tuple exact-match rule owned by `tenant` (index into
  /// config.tenants). Five-tuple rules win over the VID table. Throws
  /// std::length_error when the table is at capacity (it never rehashes —
  /// steady state must not allocate).
  void add_flow(const FiveTupleKey& key, std::size_t tenant);

  // --- books (ingress identity) --------------------------------------------
  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t matched() const { return matched_; }
  [[nodiscard]] std::uint64_t flooded() const { return flooded_; }
  [[nodiscard]] std::uint64_t shaped_drops() const { return shaped_drops_; }
  [[nodiscard]] std::uint64_t queue_drops() const { return queue_drops_; }
  [[nodiscard]] std::uint64_t fault_drops() const { return fault_drops_; }
  // --- books (egress identity) ---------------------------------------------
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  [[nodiscard]] std::uint64_t egress_ring_drops() const { return egress_ring_drops_; }
  /// Frames currently sitting in tenant + flood egress rings.
  [[nodiscard]] std::size_t queued() const;

  [[nodiscard]] std::uint64_t polls() const { return polls_; }
  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }
  /// Configured tenants (the built-in flood queue is not counted).
  [[nodiscard]] std::size_t tenant_count() const { return cfg_.tenants.size(); }
  /// Books for tenant `tenant`; index tenant_count() reads the flood queue.
  [[nodiscard]] TenantCounters tenant_counters(std::size_t tenant) const;

  /// Arms `<site>.drop` (frame loss at ingress, before classification) and
  /// `<site>.stall` (service-loop freeze, like the forwarder's).
  void install_faults(fault::FaultPlane& plane, const std::string& site);

  /// Stamp-conservation accounting: dropped stamped frames are reported to
  /// `shard` so the RTT plane's in-flight count stays exact.
  void attach_rtt(telemetry::RttShard* shard) { rtt_ = shard; }

  /// Resolve-once handles: global books under `<prefix>.*`, per-tenant
  /// books under `<prefix>.t<k>.*`.
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix);

 private:
  struct FlowSlot {
    FiveTupleKey key;
    std::int32_t tenant = -1;  // -1 = empty
  };

  /// Fixed-capacity frame ring (vector + head/count, no allocation after
  /// construction).
  struct FrameRing {
    std::vector<nic::Frame> slots;
    std::size_t head = 0;
    std::size_t count = 0;

    [[nodiscard]] bool full() const { return count == slots.size(); }
    [[nodiscard]] bool empty() const { return count == 0; }
    void push(nic::Frame&& f) {
      slots[(head + count) % slots.size()] = std::move(f);
      ++count;
    }
    [[nodiscard]] const nic::Frame& front() const { return slots[head]; }
    nic::Frame pop() {
      nic::Frame f = std::move(slots[head]);
      head = (head + 1) % slots.size();
      --count;
      return f;
    }
  };

  struct RetagCacheEntry {
    const void* source = nullptr;
    std::shared_ptr<const std::vector<std::uint8_t>> rewritten;
  };

  /// One egress queue: a tenant's, or the flood queue (tenant index -1).
  struct QueueState {
    FrameRing ring;
    TokenBucket bucket;
    TenantConfig cfg;
    std::uint32_t deficit = 0;
    std::vector<RetagCacheEntry> retag_cache;
    std::size_t retag_evict = 0;
    // books
    std::uint64_t matched = 0;
    std::uint64_t emitted = 0;
    std::uint64_t emitted_wire_bytes = 0;
    std::uint64_t shaped_drops = 0;
    std::uint64_t queue_drops = 0;
    telemetry::CounterHandle tm_matched;
    telemetry::CounterHandle tm_emitted;
    telemetry::CounterHandle tm_shaped_drops;
    telemetry::CounterHandle tm_queue_drops;
  };

  /// One egress port: strict-priority classes, each a DRR rotation over
  /// the queues assigned to it.
  struct VportState {
    nic::Port* port = nullptr;
    nic::TxQueueModel* tx = nullptr;
    std::vector<std::vector<std::size_t>> members;  // per class: queue idxs
    std::vector<std::size_t> rr;                    // per class: DRR cursor
    std::vector<std::size_t> backlog;               // per class: queued frames
    std::size_t backlog_total = 0;
    bool busy = false;
  };

  void packet_arrived();
  void fire_service();
  void poll();
  void ingest(nic::Frame frame);
  /// Returns the queue index for the frame, or -1 when no table matched
  /// (flood). Sets `*vid_matched` for telemetry.
  [[nodiscard]] std::int32_t match(const nic::Frame& frame) const;
  void enqueue(std::size_t queue_idx, nic::Frame&& frame, bool is_flood);
  void kick_vport(std::size_t vp_idx);
  void drain_vport(std::size_t vp_idx);
  /// Applies the queue's VLAN rewrite + flow label; COW-cached per source
  /// buffer.
  void rewrite_frame(QueueState& q, nic::Frame& frame);
  void note_stamped_drop(const nic::Frame& frame);

  sim::EventQueue& events_;
  nic::Port& in_port_;
  nic::RxQueueModel& rx_;
  VSwitchConfig cfg_;
  sim::SimTime service_ps_;

  std::vector<nic::Port*> out_ports_;
  std::vector<VportState> vports_;
  /// tenants_[0..n-1] mirror cfg_.tenants; tenants_.back() is the flood
  /// queue when flood_vport >= 0.
  std::vector<QueueState> tenants_;
  std::size_t flood_queue_ = 0;  // index into tenants_ (== tenant count)

  std::vector<FlowSlot> flows_;
  std::size_t flow_mask_ = 0;
  std::size_t flow_count_ = 0;
  /// VID -> queue index (-1 miss); 4096 entries, built at construction.
  std::vector<std::int32_t> vid_table_;

  bool polling_ = false;
  bool service_scheduled_ = false;
  /// Reused RX burst array (cleared per poll); grows to poll_budget once.
  std::vector<nic::RxQueueModel::Entry> poll_scratch_;

  fault::FaultPoint fp_drop_;
  fault::FaultPoint fp_stall_;
  telemetry::RttShard* rtt_ = nullptr;

  std::uint64_t received_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t flooded_ = 0;
  std::uint64_t shaped_drops_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t egress_ring_drops_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t stalls_ = 0;

  telemetry::CounterHandle tm_received_;
  telemetry::CounterHandle tm_matched_;
  telemetry::CounterHandle tm_flooded_;
  telemetry::CounterHandle tm_shaped_drops_;
  telemetry::CounterHandle tm_queue_drops_;
  telemetry::CounterHandle tm_fault_drops_;
  telemetry::CounterHandle tm_emitted_;
};

}  // namespace moongen::dut
