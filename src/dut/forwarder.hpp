// Device-under-test model: a Linux server forwarding packets with Open
// vSwitch (the DuT of paper Sections 7.4, 8.2, 8.3).
//
// Models the parts of the software stack whose reactions the paper
// measures:
//  * NAPI: an interrupt schedules a poll loop; the poll drains up to a
//    budget of packets per pass and keeps polling while the ring is
//    non-empty, with interrupts disabled — so at overload the interrupt
//    rate collapses (Figure 7, right edge).
//  * Dynamic interrupt throttling (ixgbe ITR + Linux dynamic adaption
//    [10, 25]): the driver classifies traffic per poll and re-arms the
//    interrupt only after a class-dependent gap. Micro-bursts push the
//    estimator into the bulk class and its long re-arm gap, which is why
//    bursty generators produce a *low* interrupt rate (Figure 7) and
//    higher latencies.
//  * A single-core datapath with a fixed per-packet cost: the DuT saturates
//    at ~1.9-2.0 Mpps; beyond that the RX ring (4096 descriptors) fills and
//    the forwarding latency is bounded by the buffer, ~2 ms (Figure 11).
#pragma once

#include <cstdint>
#include <random>

#include "fault/fault.hpp"
#include "nic/port.hpp"
#include "sim/event_queue.hpp"
#include "stats/running_stats.hpp"

namespace moongen::dut {

struct ForwarderConfig {
  double cpu_hz = 3.3e9;             ///< Xeon E3-1230 v2 (Section 9)
  double cycles_per_packet = 1'700;  ///< OVS datapath cost -> ~1.94 Mpps capacity
  /// IRQ delivery + handler entry until the poll starts.
  sim::SimTime interrupt_latency_ps = 2'000'000;
  /// Fixed kernel path pipeline latency (skb handling, OVS lookup layers)
  /// added outside the CPU bottleneck.
  sim::SimTime base_pipeline_ps = 8'000'000;
  int poll_budget = 64;

  // Dynamic ITR: re-arm gaps per class. The classifier watches for
  // back-to-back arrivals (micro-bursts): polls that contain wire-adjacent
  // packets push the estimator toward the bulk class and its long re-arm
  // gap — this is how bad rate control collapses the DuT's interrupt rate
  // (Section 7.4, Figure 7).
  sim::SimTime itr_gap_lowest_ps = 8'000'000;    // ~125 k int/s ceiling
  sim::SimTime itr_gap_low_ps = 40'000'000;      // 25 k int/s
  sim::SimTime itr_gap_bulk_ps = 120'000'000;    // ~8 k int/s
  /// Relative jitter of the re-arm timer and IRQ delivery. Linux's dynamic
  /// interrupt adaption [25] re-tunes the throttle per interrupt and OS
  /// timers are not cycle-accurate; the resulting variation prevents phase
  /// locking between a CBR packet train and the interrupt cadence.
  double timer_jitter = 0.25;
  std::uint64_t seed = 0xd0075ffULL;
  double burst_low_threshold = 0.15;   ///< b2b-pair share above -> low class
  double burst_bulk_threshold = 0.45;  ///< b2b-pair share above -> bulk class
};

class Forwarder {
 public:
  /// Forwards every frame arriving on (`in_port`, `in_queue`) out of
  /// (`out_port`, `out_queue`), like OVS with a single static OpenFlow rule.
  Forwarder(sim::EventQueue& events, nic::Port& in_port, int in_queue, nic::Port& out_port,
            int out_queue, ForwarderConfig config = {});

  [[nodiscard]] std::uint64_t interrupts() const { return interrupts_; }
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t polls() const { return polls_; }
  /// Per-packet residence time inside the DuT (ring wait + service +
  /// pipeline), recorded for diagnostics; end-to-end latency is measured by
  /// the generator's timestamper as in the paper.
  [[nodiscard]] const stats::RunningStats& internal_latency_ns() const { return latency_ns_; }
  [[nodiscard]] int itr_class() const { return itr_class_; }

  /// Arms the stall fault site: a fire freezes the poll loop for the
  /// rule's `param` ps (default 50 us) — scheduler preemption, SMI, or cache
  /// trashing on the DuT core. Packets queue in the RX ring meanwhile.
  void install_faults(fault::FaultPlane& plane, const std::string& site);
  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }

  /// Interrupt count can be sampled and reset to compute rates per window.
  std::uint64_t take_interrupt_count() {
    const std::uint64_t n = interrupts_;
    interrupts_since_sample_ = interrupts_ - interrupts_since_sample_;
    return n;
  }

 private:
  void packet_arrived();
  void fire_interrupt();
  void poll();
  [[nodiscard]] sim::SimTime current_itr_gap() const;
  void update_itr(std::size_t pairs, std::size_t packets);

  sim::EventQueue& events_;
  nic::Port& in_port_;
  nic::RxQueueModel& rx_;
  nic::TxQueueModel& tx_;
  ForwarderConfig cfg_;
  sim::SimTime service_ps_;

  bool polling_ = false;
  bool interrupt_scheduled_ = false;
  sim::SimTime last_interrupt_ps_ = 0;

  int itr_class_ = 0;  // 0 = lowest latency, 1 = low latency, 2 = bulk
  double burst_share_ewma_ = 0.0;
  sim::SimTime last_arrival_ps_ = 0;
  std::mt19937_64 rng_;
  /// Reused RX burst array (cleared per poll); grows to poll_budget once.
  std::vector<nic::RxQueueModel::Entry> poll_scratch_;

  fault::FaultPoint fp_stall_;
  std::uint64_t stalls_ = 0;

  std::uint64_t interrupts_ = 0;
  std::uint64_t interrupts_since_sample_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t polls_ = 0;
  stats::RunningStats latency_ns_;
};

}  // namespace moongen::dut
