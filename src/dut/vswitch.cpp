#include "dut/vswitch.hpp"

#include <cstring>
#include <stdexcept>

#include "proto/packet_view.hpp"

namespace moongen::dut {

namespace {

constexpr std::size_t kRetagCacheCapacity = 16;

std::uint64_t hash_key(const FiveTupleKey& k) {
  // splitmix64 over the packed tuple; the table is power-of-two sized so
  // only the low bits are used, and splitmix mixes all input bits into
  // them.
  std::uint64_t z = (static_cast<std::uint64_t>(k.src_ip) << 32) | k.dst_ip;
  z ^= (static_cast<std::uint64_t>(k.src_port) << 24) ^
       (static_cast<std::uint64_t>(k.dst_port) << 8) ^ k.protocol;
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

VSwitch::VSwitch(sim::EventQueue& events, nic::Port& in_port, int in_queue,
                 std::vector<nic::Port*> out_ports, VSwitchConfig config)
    : events_(events),
      in_port_(in_port),
      rx_(in_port.rx_queue(in_queue)),
      cfg_(std::move(config)),
      service_ps_(static_cast<sim::SimTime>(cfg_.cycles_per_packet / cfg_.cpu_hz * 1e12)),
      out_ports_(std::move(out_ports)) {
  if (out_ports_.empty()) throw std::invalid_argument("VSwitch: no egress vports");
  for (const auto* p : out_ports_) {
    if (p == nullptr) throw std::invalid_argument("VSwitch: null egress vport");
  }
  const auto vport_count = static_cast<int>(out_ports_.size());
  if (cfg_.flood_vport < 0 || cfg_.flood_vport >= vport_count)
    throw std::invalid_argument("VSwitch: flood_vport out of range");

  // Five-tuple table: power-of-two slots, kept at most half full so probe
  // chains stay short and insertion never rehashes.
  std::size_t slots = 8;
  while (slots < cfg_.five_tuple_capacity * 2) slots <<= 1;
  flows_.resize(slots);
  flow_mask_ = slots - 1;

  vid_table_.assign(4096, -1);
  tenants_.reserve(cfg_.tenants.size() + 1);
  for (std::size_t i = 0; i < cfg_.tenants.size(); ++i) {
    const TenantConfig& tc = cfg_.tenants[i];
    if (tc.vport < 0 || tc.vport >= vport_count)
      throw std::invalid_argument("VSwitch: tenant vport out of range");
    if (tc.priority >= VSwitchConfig::kPriorityClasses)
      throw std::invalid_argument("VSwitch: tenant priority out of range");
    if (tc.quantum_bytes == 0)
      throw std::invalid_argument("VSwitch: tenant quantum must be positive");
    QueueState q;
    q.cfg = tc;
    q.bucket = TokenBucket(tc.rate_mbit, tc.burst_bytes);
    q.ring.slots.resize(std::max<std::size_t>(1, tc.queue_frames));
    q.retag_cache.reserve(kRetagCacheCapacity);
    if (tc.vid != 0) {
      auto& slot = vid_table_[tc.vid & 0x0fff];
      if (slot != -1) throw std::invalid_argument("VSwitch: duplicate tenant vid");
      slot = static_cast<std::int32_t>(i);
    }
    tenants_.push_back(std::move(q));
  }

  // The flood queue: table-miss frames fan out here at the lowest priority
  // class, unshaped.
  flood_queue_ = tenants_.size();
  {
    QueueState q;
    q.cfg.vport = cfg_.flood_vport;
    q.cfg.priority = VSwitchConfig::kPriorityClasses - 1;
    q.cfg.quantum_bytes = std::max<std::uint32_t>(1, cfg_.flood_quantum_bytes);
    q.ring.slots.resize(std::max<std::size_t>(1, cfg_.flood_queue_frames));
    q.retag_cache.reserve(kRetagCacheCapacity);
    tenants_.push_back(std::move(q));
  }

  vports_.resize(out_ports_.size());
  for (std::size_t v = 0; v < out_ports_.size(); ++v) {
    VportState& vp = vports_[v];
    vp.port = out_ports_[v];
    vp.tx = &out_ports_[v]->tx_queue(0);
    vp.members.resize(VSwitchConfig::kPriorityClasses);
    vp.rr.assign(VSwitchConfig::kPriorityClasses, 0);
    vp.backlog.assign(VSwitchConfig::kPriorityClasses, 0);
  }
  for (std::size_t qi = 0; qi < tenants_.size(); ++qi) {
    const QueueState& q = tenants_[qi];
    vports_[static_cast<std::size_t>(q.cfg.vport)].members[q.cfg.priority].push_back(qi);
  }

  rx_.set_callback([this](const nic::RxQueueModel::Entry&) { packet_arrived(); });
}

void VSwitch::add_flow(const FiveTupleKey& key, std::size_t tenant) {
  if (tenant >= cfg_.tenants.size())
    throw std::invalid_argument("VSwitch::add_flow: tenant index out of range");
  if (flow_count_ >= cfg_.five_tuple_capacity)
    throw std::length_error("VSwitch::add_flow: five-tuple table at capacity");
  std::size_t idx = hash_key(key) & flow_mask_;
  while (flows_[idx].tenant != -1) {
    if (flows_[idx].key == key) {
      flows_[idx].tenant = static_cast<std::int32_t>(tenant);  // re-point
      return;
    }
    idx = (idx + 1) & flow_mask_;
  }
  flows_[idx].key = key;
  flows_[idx].tenant = static_cast<std::int32_t>(tenant);
  ++flow_count_;
}

std::size_t VSwitch::queued() const {
  std::size_t n = 0;
  for (const QueueState& q : tenants_) n += q.ring.count;
  return n;
}

TenantCounters VSwitch::tenant_counters(std::size_t tenant) const {
  const QueueState& q = tenants_.at(tenant);
  return TenantCounters{q.matched,     q.emitted,     q.emitted_wire_bytes,
                        q.shaped_drops, q.queue_drops, q.ring.count};
}

void VSwitch::install_faults(fault::FaultPlane& plane, const std::string& site) {
  fp_drop_ = plane.point(fault::FaultKind::kFrameLoss, site + ".drop");
  fp_stall_ = plane.point(fault::FaultKind::kStall, site + ".stall");
}

void VSwitch::bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix) {
  if (tm_received_.valid()) return;  // already bound; re-seeding would double-count
  tm_received_ = tree.counter(prefix + ".received");
  tm_matched_ = tree.counter(prefix + ".matched");
  tm_flooded_ = tree.counter(prefix + ".flooded");
  tm_shaped_drops_ = tree.counter(prefix + ".shaped_drops");
  tm_queue_drops_ = tree.counter(prefix + ".queue_drops");
  tm_fault_drops_ = tree.counter(prefix + ".fault_drops");
  tm_emitted_ = tree.counter(prefix + ".emitted");
  tm_received_.add(received_);
  tm_matched_.add(matched_);
  tm_flooded_.add(flooded_);
  tm_shaped_drops_.add(shaped_drops_);
  tm_queue_drops_.add(queue_drops_);
  tm_fault_drops_.add(fault_drops_);
  tm_emitted_.add(emitted_);
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    QueueState& q = tenants_[i];
    const std::string tp =
        i == flood_queue_ ? prefix + ".flood" : prefix + ".t" + std::to_string(i);
    q.tm_matched = tree.counter(tp + ".matched");
    q.tm_emitted = tree.counter(tp + ".emitted");
    q.tm_shaped_drops = tree.counter(tp + ".shaped_drops");
    q.tm_queue_drops = tree.counter(tp + ".queue_drops");
    q.tm_matched.add(q.matched);
    q.tm_emitted.add(q.emitted);
    q.tm_shaped_drops.add(q.shaped_drops);
    q.tm_queue_drops.add(q.queue_drops);
  }
}

void VSwitch::packet_arrived() {
  if (polling_ || service_scheduled_) return;
  service_scheduled_ = true;
  events_.schedule_in_inline(cfg_.ingress_latency_ps, [this] { fire_service(); });
}

void VSwitch::fire_service() {
  service_scheduled_ = false;
  if (polling_) return;  // a service loop took over in the meantime
  polling_ = true;
  poll();
}

void VSwitch::poll() {
  if (fp_stall_.installed()) {
    if (const auto* rule = fp_stall_.fire(events_.now()); rule != nullptr) {
      // The switching core is preempted; the loop resumes after the stall
      // and finds a fuller RX ring.
      ++stalls_;
      const auto stall_ps =
          rule->param > 0 ? static_cast<sim::SimTime>(rule->param) : sim::SimTime{50'000'000};
      events_.schedule_in(stall_ps, [this] { poll(); });
      return;
    }
  }
  ++polls_;
  poll_scratch_.clear();
  rx_.drain_into(poll_scratch_, static_cast<std::size_t>(cfg_.poll_budget));

  sim::SimTime t = events_.now();
  for (auto& entry : poll_scratch_) {
    t += service_ps_;  // one switching core: frames are serviced in order
    events_.schedule_at_inline(t, [this, frame = std::move(entry.frame)]() mutable {
      ingest(std::move(frame));
    });
  }

  const bool budget_exhausted =
      poll_scratch_.size() >= static_cast<std::size_t>(cfg_.poll_budget);
  if (budget_exhausted || rx_.pending() > 0) {
    events_.schedule_at_inline(t, [this] { poll(); });
    return;
  }
  events_.schedule_at(t, [this] {
    polling_ = false;
    if (rx_.pending() > 0) packet_arrived();  // frames raced in meanwhile
  });
}

void VSwitch::note_stamped_drop(const nic::Frame& frame) {
  // A stamped frame dying inside the switch must be accounted to the RTT
  // plane, or the plane's in-flight count would leak (its conservation
  // checker audits exactly this).
  if (rtt_ != nullptr && frame.tx_stamp_ps != 0) rtt_->note_dropped();
}

void VSwitch::ingest(nic::Frame frame) {
  ++received_;
  tm_received_.add(1);
  if (fp_drop_.installed() && fp_drop_.fire(events_.now()) != nullptr) {
    ++fault_drops_;
    tm_fault_drops_.add(1);
    note_stamped_drop(frame);
    return;
  }
  const std::int32_t qi = match(frame);
  if (qi < 0) {
    enqueue(flood_queue_, std::move(frame), /*is_flood=*/true);
  } else {
    enqueue(static_cast<std::size_t>(qi), std::move(frame), /*is_flood=*/false);
  }
}

std::int32_t VSwitch::match(const nic::Frame& frame) const {
  const auto& bytes = *frame.data;
  const auto pc = proto::classify({bytes.data(), bytes.size()});
  if (!pc.has_value()) return -1;  // malformed: flood, let the sink count it

  // Five-tuple rules win over the VID table (a pinned flow overrides its
  // VLAN's tenant).
  if (flow_count_ > 0 && pc->ether_type == proto::EtherType::kIPv4 && pc->l4_offset != 0 &&
      pc->l4_protocol.has_value() &&
      (*pc->l4_protocol == proto::IpProtocol::kUdp ||
       *pc->l4_protocol == proto::IpProtocol::kTcp) &&
      bytes.size() >= pc->l4_offset + 4) {
    const auto* ip = reinterpret_cast<const proto::Ipv4Header*>(bytes.data() + pc->l3_offset);
    // UDP and TCP share the src/dst port layout in their first four bytes.
    const auto* l4 = reinterpret_cast<const proto::UdpHeader*>(bytes.data() + pc->l4_offset);
    FiveTupleKey key;
    key.src_ip = ip->src().value;
    key.dst_ip = ip->dst().value;
    key.src_port = l4->src_port();
    key.dst_port = l4->dst_port();
    key.protocol = static_cast<std::uint8_t>(*pc->l4_protocol);
    std::size_t idx = hash_key(key) & flow_mask_;
    while (flows_[idx].tenant != -1) {
      if (flows_[idx].key == key) return flows_[idx].tenant;
      idx = (idx + 1) & flow_mask_;
    }
  }

  if (pc->has_vlan) {
    // The innermost tag (C-tag of a QinQ stack) names the tenant; the
    // S-tag is the carrier's.
    const std::uint16_t vid = pc->vlan_tags == 2 ? pc->inner_vid : pc->outer_vid;
    return vid_table_[vid & 0x0fff];
  }
  return -1;
}

void VSwitch::enqueue(std::size_t queue_idx, nic::Frame&& frame, bool is_flood) {
  QueueState& q = tenants_[queue_idx];
  if (!is_flood && !q.bucket.admit(events_.now(), frame.wire_bytes())) {
    ++shaped_drops_;
    tm_shaped_drops_.add(1);
    ++q.shaped_drops;
    q.tm_shaped_drops.add(1);
    note_stamped_drop(frame);
    return;
  }
  if (q.ring.full()) {
    ++queue_drops_;
    tm_queue_drops_.add(1);
    ++q.queue_drops;
    q.tm_queue_drops.add(1);
    note_stamped_drop(frame);
    return;
  }
  // Rewrite at enqueue time so the DRR deficits and the egress pacing see
  // the frame's actual wire size after a tag push/pop.
  rewrite_frame(q, frame);
  if (is_flood) {
    ++flooded_;
    tm_flooded_.add(1);
  } else {
    ++matched_;
    tm_matched_.add(1);
  }
  ++q.matched;
  q.tm_matched.add(1);
  q.ring.push(std::move(frame));
  VportState& vp = vports_[static_cast<std::size_t>(q.cfg.vport)];
  ++vp.backlog[q.cfg.priority];
  ++vp.backlog_total;
  if (!vp.busy) {
    vp.busy = true;
    drain_vport(static_cast<std::size_t>(q.cfg.vport));
  }
}

void VSwitch::drain_vport(std::size_t vp_idx) {
  VportState& vp = vports_[vp_idx];
  if (vp.backlog_total == 0) {
    vp.busy = false;
    return;
  }
  // Strict priority: the lowest-numbered class with backlog is served
  // first, always.
  std::size_t cls = 0;
  while (vp.backlog[cls] == 0) ++cls;

  // Deficit round robin within the class. Each visit to a backlogged queue
  // with an insufficient deficit tops it up by one quantum and moves on;
  // the loop terminates because deficits only grow until a dequeue.
  const auto& members = vp.members[cls];
  std::size_t winner = 0;
  nic::Frame frame;
  for (;;) {
    std::size_t& rr = vp.rr[cls];
    QueueState& q = tenants_[members[rr]];
    if (q.ring.empty()) {
      q.deficit = 0;  // an idle queue must not bank credit (DRR rule)
      rr = (rr + 1) % members.size();
      continue;
    }
    const auto bytes = static_cast<std::uint32_t>(q.ring.front().wire_bytes());
    if (q.deficit >= bytes) {
      q.deficit -= bytes;
      winner = members[rr];
      frame = q.ring.pop();
      break;
    }
    q.deficit += q.cfg.quantum_bytes;
    rr = (rr + 1) % members.size();
  }

  QueueState& q = tenants_[winner];
  --vp.backlog[cls];
  --vp.backlog_total;
  const std::size_t wire = frame.wire_bytes();
  const bool stamped = frame.tx_stamp_ps != 0;
  if (vp.tx->post(std::move(frame))) {
    ++emitted_;
    tm_emitted_.add(1);
    ++q.emitted;
    q.emitted_wire_bytes += wire;
    q.tm_emitted.add(1);
  } else {
    // TX ring full despite pacing (e.g. the link is flapped down): the
    // frame is gone; both identities account it here.
    ++egress_ring_drops_;
    if (rtt_ != nullptr && stamped) rtt_->note_dropped();
  }
  // Self-pace at the vport's wire rate: the TX ring stays shallow, so the
  // *next* priority decision is made when this frame has serialized
  // instead of being queued behind a ring full of low-priority frames.
  events_.schedule_at_inline(events_.now() + wire * vp.port->byte_time_ps(),
                             [this, vp_idx] { drain_vport(vp_idx); });
}

void VSwitch::rewrite_frame(QueueState& q, nic::Frame& frame) {
  if (q.cfg.flow != 0) frame.flow = q.cfg.flow;
  if (q.cfg.tag == TenantConfig::Tag::kKeep) return;

  const void* source = frame.data.get();
  for (const RetagCacheEntry& e : q.retag_cache) {
    if (e.source == source) {
      frame.data = e.rewritten;
      return;
    }
  }

  const auto& bytes = *frame.data;
  const bool tagged =
      bytes.size() >= sizeof(proto::EthernetHeader) + sizeof(proto::VlanTag) &&
      (reinterpret_cast<const proto::EthernetHeader*>(bytes.data())->ether_type() ==
           proto::EtherType::kVlan ||
       reinterpret_cast<const proto::EthernetHeader*>(bytes.data())->ether_type() ==
           proto::EtherType::kQinQ);
  std::vector<std::uint8_t> out;
  constexpr std::size_t kTagOffset = 12;  // TPID lives where ether_type was
  if (q.cfg.tag == TenantConfig::Tag::kPop) {
    if (!tagged) return;  // nothing to pop; leave the frame as-is
    out.reserve(bytes.size() - sizeof(proto::VlanTag));
    out.insert(out.end(), bytes.begin(), bytes.begin() + kTagOffset);
    out.insert(out.end(), bytes.begin() + kTagOffset + sizeof(proto::VlanTag), bytes.end());
  } else {  // kPush: retag in place, or insert a tag into an untagged frame
    proto::VlanTag tag{};
    tag.set(q.cfg.push_vid, q.cfg.push_pcp);
    if (tagged) {
      out = bytes;
      std::memcpy(out.data() + kTagOffset + 2, &tag.tci_be, sizeof(tag.tci_be));
    } else {
      out.reserve(bytes.size() + sizeof(proto::VlanTag));
      out.insert(out.end(), bytes.begin(), bytes.begin() + kTagOffset);
      const std::uint16_t tpid =
          proto::hton16(static_cast<std::uint16_t>(proto::EtherType::kVlan));
      const auto* tpid_bytes = reinterpret_cast<const std::uint8_t*>(&tpid);
      out.insert(out.end(), tpid_bytes, tpid_bytes + 2);
      const auto* tci_bytes = reinterpret_cast<const std::uint8_t*>(&tag.tci_be);
      out.insert(out.end(), tci_bytes, tci_bytes + 2);
      out.insert(out.end(), bytes.begin() + kTagOffset, bytes.end());
    }
  }

  auto rewritten = std::make_shared<const std::vector<std::uint8_t>>(std::move(out));
  if (q.retag_cache.size() < kRetagCacheCapacity) {
    q.retag_cache.push_back(RetagCacheEntry{source, rewritten});
  } else {
    // Round-robin eviction: generators cycle a bounded template set, so a
    // hot source re-enters the cache within one cycle.
    q.retag_cache[q.retag_evict] = RetagCacheEntry{source, rewritten};
    q.retag_evict = (q.retag_evict + 1) % kRetagCacheCapacity;
  }
  frame.data = std::move(rewritten);
}

}  // namespace moongen::dut
