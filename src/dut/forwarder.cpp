#include "dut/forwarder.hpp"

namespace moongen::dut {

Forwarder::Forwarder(sim::EventQueue& events, nic::Port& in_port, int in_queue,
                     nic::Port& out_port, int out_queue, ForwarderConfig config)
    : events_(events),
      in_port_(in_port),
      rx_(in_port.rx_queue(in_queue)),
      tx_(out_port.tx_queue(out_queue)),
      cfg_(config),
      service_ps_(static_cast<sim::SimTime>(cfg_.cycles_per_packet / cfg_.cpu_hz * 1e12)),
      rng_(config.seed) {
  rx_.set_callback([this](const nic::RxQueueModel::Entry&) { packet_arrived(); });
}

sim::SimTime Forwarder::current_itr_gap() const {
  switch (itr_class_) {
    case 0:
      return cfg_.itr_gap_lowest_ps;
    case 1:
      return cfg_.itr_gap_low_ps;
    default:
      return cfg_.itr_gap_bulk_ps;
  }
}

void Forwarder::packet_arrived() {
  if (polling_ || interrupt_scheduled_) return;
  interrupt_scheduled_ = true;
  // The interrupt fires after IRQ delivery latency, but no earlier than the
  // ITR re-arm time relative to the previous interrupt. Both delays carry
  // OS-timer jitter, which keeps a CBR packet train from phase-locking to
  // the interrupt cadence.
  std::uniform_real_distribution<double> jitter(1.0 - cfg_.timer_jitter,
                                                1.0 + cfg_.timer_jitter);
  const auto gap = static_cast<sim::SimTime>(static_cast<double>(current_itr_gap()) * jitter(rng_));
  const auto lat =
      static_cast<sim::SimTime>(static_cast<double>(cfg_.interrupt_latency_ps) * jitter(rng_));
  const sim::SimTime earliest = last_interrupt_ps_ + gap;
  const sim::SimTime at = std::max(events_.now() + lat, earliest);
  events_.schedule_at_inline(at, [this] { fire_interrupt(); });
}

void Forwarder::fire_interrupt() {
  interrupt_scheduled_ = false;
  if (polling_) return;  // a poll loop took over in the meantime
  ++interrupts_;
  last_interrupt_ps_ = events_.now();
  polling_ = true;
  poll();
}

void Forwarder::install_faults(fault::FaultPlane& plane, const std::string& site) {
  fp_stall_ = plane.point(fault::FaultKind::kStall, site);
}

void Forwarder::poll() {
  if (fp_stall_.installed()) {
    if (const auto* rule = fp_stall_.fire(events_.now()); rule != nullptr) {
      // The DuT core is off doing something else; the poll resumes after
      // the stall and finds a fuller ring (latency spike, Figure 11 style).
      ++stalls_;
      const auto stall_ps =
          rule->param > 0 ? static_cast<sim::SimTime>(rule->param) : sim::SimTime{50'000'000};
      events_.schedule_in(stall_ps, [this] { poll(); });
      return;
    }
  }
  ++polls_;
  poll_scratch_.clear();
  rx_.drain_into(poll_scratch_, static_cast<std::size_t>(cfg_.poll_budget));
  const auto& entries = poll_scratch_;

  sim::SimTime t = events_.now();
  std::size_t pairs = 0;
  for (const auto& entry : entries) {
    // Back-to-back detection: arrival spacing equal to the frame's own
    // wire time (within one MAC cycle) marks a micro-burst.
    const sim::SimTime wire_ps = entry.frame.wire_bytes() * in_port_.byte_time_ps();
    if (last_arrival_ps_ != 0 &&
        entry.complete_ps - last_arrival_ps_ <= wire_ps + in_port_.spec().mac_cycle_ps) {
      ++pairs;
    }
    last_arrival_ps_ = entry.complete_ps;

    t += service_ps_;  // single core: packets are processed sequentially
    const sim::SimTime out_time = t + cfg_.base_pipeline_ps;
    latency_ns_.add(sim::to_ns(out_time - entry.complete_ps));
    events_.schedule_at_inline(out_time, [this, frame = entry.frame] { tx_.post(frame); });
    ++forwarded_;
  }
  if (!entries.empty()) update_itr(pairs, entries.size());

  const bool budget_exhausted = entries.size() >= static_cast<std::size_t>(cfg_.poll_budget);
  if (budget_exhausted || rx_.pending() > 0) {
    // Stay in polling mode (interrupts remain disabled); next pass after
    // this batch has been processed.
    events_.schedule_at_inline(t, [this] { poll(); });
    return;
  }
  // Ring drained: leave polling, re-enable interrupts at the end of the
  // processing pass.
  events_.schedule_at(t, [this] {
    polling_ = false;
    if (rx_.pending() > 0) packet_arrived();  // packets raced in meanwhile
  });
}

void Forwarder::update_itr(std::size_t pairs, std::size_t packets) {
  constexpr double kAlpha = 0.2;  // EWMA weight of the newest poll
  const double share = static_cast<double>(pairs) / static_cast<double>(packets);
  burst_share_ewma_ = (1.0 - kAlpha) * burst_share_ewma_ + kAlpha * share;
  if (burst_share_ewma_ > cfg_.burst_bulk_threshold) {
    itr_class_ = 2;
  } else if (burst_share_ewma_ > cfg_.burst_low_threshold) {
    itr_class_ = 1;
  } else {
    itr_class_ = 0;
  }
}

}  // namespace moongen::dut
