// Pcap capture: classic libpcap file format, writer and reader.
//
// MoonGen can capture traffic for offline analysis ("analyzing traffic in
// line rate", Section 10); this module provides the equivalent facility:
// frames from the simulation or the fast path are written as standard
// nanosecond-resolution pcap files readable by tcpdump/wireshark, and pcap
// files can be replayed into the generators.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nic/frame.hpp"
#include "nic/port.hpp"
#include "sim/time.hpp"

namespace moongen::capture {

/// Writes nanosecond-resolution pcap (magic 0xa1b23c4d, LINKTYPE_ETHERNET).
class PcapWriter {
 public:
  explicit PcapWriter(const std::string& path, std::uint32_t snaplen = 65'535);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Appends one frame with the given capture time. Returns false if the
  /// record could not be (fully) written — disk full, closed file, earlier
  /// stream error. Failed records are counted in write_errors() and NOT in
  /// packets_written(): a fault-run capture must not silently lose frames.
  bool write(std::span<const std::uint8_t> frame, std::uint64_t time_ns);

  /// Convenience for simulated frames (FCS is not part of the capture, as
  /// with real NIC captures).
  bool write(const nic::Frame& frame, sim::SimTime time_ps) {
    return write({frame.data->data(), frame.data->size()}, time_ps / sim::kPsPerNs);
  }

  /// Flushes buffered records; false if the underlying stream is in error.
  bool flush() {
    out_.flush();
    return out_.good();
  }
  [[nodiscard]] std::uint64_t packets_written() const { return packets_; }
  /// Records that failed to write (truncated or refused by the stream).
  [[nodiscard]] std::uint64_t write_errors() const { return write_errors_; }
  [[nodiscard]] bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
  std::uint32_t snaplen_;
  std::uint64_t packets_ = 0;
  std::uint64_t write_errors_ = 0;
};

struct PcapRecord {
  std::uint64_t time_ns = 0;
  std::uint32_t original_length = 0;  ///< wire length (may exceed captured)
  std::vector<std::uint8_t> data;
};

/// Reads both microsecond- (0xa1b2c3d4) and nanosecond- (0xa1b23c4d)
/// resolution pcap files, either byte order.
class PcapReader {
 public:
  explicit PcapReader(const std::string& path);

  /// True if the global header parsed as a pcap file.
  [[nodiscard]] bool valid() const { return valid_; }

  /// Next record; nullopt at end of file or on a truncated record.
  std::optional<PcapRecord> next();

  [[nodiscard]] std::uint64_t packets_read() const { return packets_; }

 private:
  [[nodiscard]] std::uint32_t fix32(std::uint32_t v) const;

  std::ifstream in_;
  bool valid_ = false;
  bool swapped_ = false;
  bool nanosecond_ = false;
  std::uint64_t packets_ = 0;
};

/// TX tap: captures every frame a port transmits, then forwards it to the
/// downstream sink (the link). Insert between port and link:
///   wire::Link link(a, b, cable, seed);   // link registers itself on a
///   capture::TxTee tee(a, writer);        // tee takes over, wraps link
class TxTee : public nic::FrameSink {
 public:
  /// Wraps `port`'s current TX sink.
  TxTee(nic::Port& port, PcapWriter& writer);

  void on_frame(const nic::Frame& frame, sim::SimTime tx_start_ps) override;

 private:
  PcapWriter& writer_;
  nic::FrameSink* downstream_;
};

/// RX capture: writes every frame placed into (`port`, `queue`) to the
/// writer. Occupies the queue's callback slot.
void capture_rx(nic::Port& port, int queue, PcapWriter& writer);

/// Loads up to `max_frames` Ethernet frames from a pcap file as simulation
/// frames (for replay through a generator).
std::vector<nic::Frame> load_frames(const std::string& path, std::size_t max_frames = SIZE_MAX);

}  // namespace moongen::capture
