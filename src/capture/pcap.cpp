#include "capture/pcap.hpp"

#include <bit>
#include <cstring>

namespace moongen::capture {

namespace {

constexpr std::uint32_t kMagicNs = 0xa1b23c4d;
constexpr std::uint32_t kMagicUs = 0xa1b2c3d4;
constexpr std::uint32_t kLinkTypeEthernet = 1;

struct [[gnu::packed]] GlobalHeader {
  std::uint32_t magic;
  std::uint16_t version_major;
  std::uint16_t version_minor;
  std::int32_t thiszone;
  std::uint32_t sigfigs;
  std::uint32_t snaplen;
  std::uint32_t network;
};
static_assert(sizeof(GlobalHeader) == 24);

struct [[gnu::packed]] RecordHeader {
  std::uint32_t ts_sec;
  std::uint32_t ts_frac;  // us or ns depending on magic
  std::uint32_t incl_len;
  std::uint32_t orig_len;
};
static_assert(sizeof(RecordHeader) == 16);

std::uint32_t byteswap(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0xff00) | ((v << 8) & 0xff0000) | (v << 24);
}

}  // namespace

// ---------------------------------------------------------------------------
// PcapWriter
// ---------------------------------------------------------------------------

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : out_(path, std::ios::binary | std::ios::trunc), snaplen_(snaplen) {
  const GlobalHeader hdr{kMagicNs, 2, 4, 0, 0, snaplen, kLinkTypeEthernet};
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
}

PcapWriter::~PcapWriter() { out_.flush(); }

bool PcapWriter::write(std::span<const std::uint8_t> frame, std::uint64_t time_ns) {
  if (!out_.good()) {
    // Stream already failed (bad path, disk full earlier): refuse instead
    // of silently pretending the record landed.
    ++write_errors_;
    return false;
  }
  const auto incl = static_cast<std::uint32_t>(
      std::min<std::size_t>(frame.size(), snaplen_));
  const RecordHeader rec{static_cast<std::uint32_t>(time_ns / 1'000'000'000ull),
                         static_cast<std::uint32_t>(time_ns % 1'000'000'000ull), incl,
                         static_cast<std::uint32_t>(frame.size())};
  out_.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
  out_.write(reinterpret_cast<const char*>(frame.data()), incl);
  if (!out_.good()) {
    // The record is truncated on disk; report it so the capture's consumer
    // knows the tail is not trustworthy.
    ++write_errors_;
    return false;
  }
  ++packets_;
  return true;
}

// ---------------------------------------------------------------------------
// PcapReader
// ---------------------------------------------------------------------------

PcapReader::PcapReader(const std::string& path) : in_(path, std::ios::binary) {
  GlobalHeader hdr{};
  if (!in_.read(reinterpret_cast<char*>(&hdr), sizeof(hdr))) return;
  switch (hdr.magic) {
    case kMagicNs:
      nanosecond_ = true;
      break;
    case kMagicUs:
      break;
    default:
      // Try the byte-swapped magics.
      if (byteswap(hdr.magic) == kMagicNs) {
        swapped_ = true;
        nanosecond_ = true;
      } else if (byteswap(hdr.magic) == kMagicUs) {
        swapped_ = true;
      } else {
        return;  // not a pcap file
      }
  }
  if (fix32(hdr.network) != kLinkTypeEthernet) return;
  valid_ = true;
}

std::uint32_t PcapReader::fix32(std::uint32_t v) const { return swapped_ ? byteswap(v) : v; }

std::optional<PcapRecord> PcapReader::next() {
  if (!valid_) return std::nullopt;
  RecordHeader rec{};
  if (!in_.read(reinterpret_cast<char*>(&rec), sizeof(rec))) return std::nullopt;
  const std::uint32_t incl = fix32(rec.incl_len);
  if (incl > 256 * 1024) return std::nullopt;  // corrupt record
  PcapRecord out;
  out.data.resize(incl);
  if (!in_.read(reinterpret_cast<char*>(out.data.data()), incl)) return std::nullopt;
  const std::uint64_t frac = fix32(rec.ts_frac);
  out.time_ns = static_cast<std::uint64_t>(fix32(rec.ts_sec)) * 1'000'000'000ull +
                (nanosecond_ ? frac : frac * 1'000ull);
  out.original_length = fix32(rec.orig_len);
  ++packets_;
  return out;
}

// ---------------------------------------------------------------------------
// Taps
// ---------------------------------------------------------------------------

TxTee::TxTee(nic::Port& port, PcapWriter& writer)
    : writer_(writer), downstream_(port.tx_sink()) {
  port.set_tx_sink(this);
}

void TxTee::on_frame(const nic::Frame& frame, sim::SimTime tx_start_ps) {
  writer_.write(frame, tx_start_ps);
  if (downstream_ != nullptr) downstream_->on_frame(frame, tx_start_ps);
}

void capture_rx(nic::Port& port, int queue, PcapWriter& writer) {
  port.rx_queue(queue).set_callback([&writer](const nic::RxQueueModel::Entry& entry) {
    writer.write(entry.frame, entry.complete_ps);
  });
}

std::vector<nic::Frame> load_frames(const std::string& path, std::size_t max_frames) {
  std::vector<nic::Frame> frames;
  PcapReader reader(path);
  while (frames.size() < max_frames) {
    auto rec = reader.next();
    if (!rec.has_value()) break;
    frames.push_back(nic::make_frame(std::move(rec->data)));
  }
  return frames;
}

}  // namespace moongen::capture
