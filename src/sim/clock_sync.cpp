#include "sim/clock_sync.hpp"

#include <algorithm>
#include <vector>

namespace moongen::sim {

namespace {

/// A single PCIe register read: returns the clock value and advances the
/// time cursor by the (possibly outlier-delayed) access time.
std::uint64_t pcie_read(const PtpClock& clock, SimTime* cursor, std::mt19937_64& rng,
                        const ClockSyncConfig& cfg) {
  SimTime access = cfg.pcie_read_ps;
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  if (uni(rng) < cfg.outlier_probability) {
    access += static_cast<SimTime>(uni(rng) * static_cast<double>(cfg.outlier_extra_ps));
  }
  // The value is latched at the start of the access; completion takes the
  // full round trip.
  const std::uint64_t value = clock.read(*cursor);
  *cursor += access;
  return value;
}

}  // namespace

std::int64_t measure_clock_difference(const PtpClock& a, const PtpClock& b, SimTime* cursor,
                                      std::mt19937_64& rng, const ClockSyncConfig& config) {
  // Read a then b: difference overestimates b by the access time.
  const auto a1 = static_cast<std::int64_t>(pcie_read(a, cursor, rng, config));
  const auto b1 = static_cast<std::int64_t>(pcie_read(b, cursor, rng, config));
  // Read b then a: difference underestimates b by the access time.
  const auto b2 = static_cast<std::int64_t>(pcie_read(b, cursor, rng, config));
  const auto a2 = static_cast<std::int64_t>(pcie_read(a, cursor, rng, config));
  // Averaging the two cancels the constant access time.
  return ((b1 - a1) + (b2 - a2)) / 2;
}

ClockSyncResult synchronize_clocks(const PtpClock& a, PtpClock& b, SimTime start,
                                   std::mt19937_64& rng, const ClockSyncConfig& config) {
  SimTime cursor = start;
  std::vector<std::int64_t> diffs;
  diffs.reserve(static_cast<std::size_t>(config.attempts));
  for (int i = 0; i < config.attempts; ++i)
    diffs.push_back(measure_clock_difference(a, b, &cursor, rng, config));

  std::nth_element(diffs.begin(), diffs.begin() + static_cast<std::ptrdiff_t>(diffs.size() / 2),
                   diffs.end());
  const std::int64_t median = diffs[diffs.size() / 2];

  ClockSyncResult result;
  result.applied_adjustment_ps = -median;
  b.adjust(-median);

  // Verify: outlier-free difference right after the adjustment.
  ClockSyncConfig clean = config;
  clean.outlier_probability = 0.0;
  result.residual_ps = measure_clock_difference(a, b, &cursor, rng, clean);
  result.elapsed_ps = cursor - start;
  return result;
}

}  // namespace moongen::sim
