// Sharded parallel simulation runtime (conservative synchronization).
//
// The sequential engine dispatches every port, wire, and DuT of a testbed
// from one EventQueue, so multi-port scaling experiments (paper Figures
// 3/4) serialize on one core. The ParallelRuntime splits a testbed into
// shards — each shard owns one EventQueue plus the components pinned to it
// — and advances all shards in lockstep windows:
//
//   window length W = min over cross-shard channels of their lookahead
//   (the smallest possible latency of the wire they carry). A frame sent
//   during window k arrives no earlier than k*W + L >= (k+1)*W, i.e. always
//   in a later window — so draining incoming channels at the window
//   boundary can never schedule into a shard's past. This is the classic
//   null-message/conservative-lookahead argument with the link latency as
//   the lookahead bound.
//
// Determinism contract (see DESIGN.md section 10):
//  * channels are FIFO and drained in registration order, exactly one
//    epoch per window — the interleaving of cross-shard deliveries into a
//    shard's event order does not depend on thread scheduling;
//  * producers close each window's epoch with a marker before the barrier,
//    so a drain consumes a well-defined prefix of the channel, never a
//    racy snapshot;
//  * global events (telemetry sampling ticks, experiment control) run in
//    the barrier's completion step, single-threaded, while every shard is
//    quiesced at the same virtual time.
//
// The runtime does not create threads itself: the caller injects an
// executor (testbed::Testbed supplies core::TaskSet pinned threads — the
// sim layer cannot depend on core). Without channels the window is
// unbounded and shards only meet at global events.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace moongen::sim {

class ParallelRuntime {
 public:
  using Work = std::function<void()>;
  /// Runs every element of `work` concurrently (one per shard) and returns
  /// after all of them finished. The default executor spawns plain
  /// std::threads.
  using Executor = std::function<void(std::vector<Work>&)>;

  explicit ParallelRuntime(std::size_t shards);

  ParallelRuntime(const ParallelRuntime&) = delete;
  ParallelRuntime& operator=(const ParallelRuntime&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] EventQueue& shard(std::size_t i) { return *shards_.at(i); }

  /// Registers a cross-shard channel. `lookahead_ps` must be > 0: it is the
  /// smallest latency a frame entering the channel can have, and bounds the
  /// synchronization window. `drain` delivers one published epoch into the
  /// destination shard (runs on the destination shard's thread); `flush`
  /// closes the current epoch on the producer side (runs on the source
  /// shard's thread). Channels must be registered before run_until.
  void add_channel(std::size_t from_shard, std::size_t to_shard, SimTime lookahead_ps,
                   std::function<void()> drain, std::function<void()> flush);

  /// Schedules `fn` at absolute virtual time `t`, executed single-threaded
  /// while all shards are quiesced at `t`. FIFO order for equal times. May
  /// only be called from the main thread (outside run_until) or from
  /// another global callback — never from shard events.
  void schedule_global(SimTime t, std::function<void()> fn);

  /// Registers a periodic hook on the global timeline: `fn(due)` runs
  /// single-threaded at every multiple of `period_ps` while all shards are
  /// quiesced there (the barrier completion step in parallel runs), starting
  /// with the first multiple strictly after now(). Hook due times bound the
  /// window target exactly like globals, so shards stop *at* the due time —
  /// a hook never observes a shard past its boundary. Hooks fire before any
  /// global events due at the same instant (window closers run before the
  /// sampling ticks that read them) and must be registered before run_until.
  /// This is the telemetry window-merge hook: RttPlane window closes and
  /// streaming-export ticks ride on it.
  void add_window_hook(SimTime period_ps, std::function<void(SimTime)> fn);

  [[nodiscard]] std::size_t window_hook_count() const { return hooks_.size(); }

  void set_executor(Executor executor) { executor_ = std::move(executor); }

  /// Advances every shard to `t`: all events with time <= t run, clocks end
  /// at t. With one shard this is inline and thread-free; with more, the
  /// executor runs one worker per shard in barrier-synchronized windows.
  void run_until(SimTime t);

  /// Global virtual time (the last window boundary reached).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Synchronization window length, or UINT64_MAX with no channels.
  [[nodiscard]] SimTime window_ps() const { return window_ps_; }
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  /// Barrier windows completed over the runtime's lifetime.
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }

  // --- health-plane observability (watchdog support) ------------------------
  /// Monotonic per-shard progress counter: bumped once per window iteration
  /// of the shard's worker loop (sequential runs bump shard 0 once per
  /// window/global boundary). Relaxed atomic — safe to sample from a
  /// wall-clock monitor thread without perturbing the run.
  [[nodiscard]] std::uint64_t heartbeat(std::size_t shard) const {
    return heartbeats_[shard].count.load(std::memory_order_relaxed);
  }
  /// True while run_until is advancing shards. A watchdog accumulates stall
  /// time only while this is set: a paused experiment is not a deadlock.
  /// Note that a one-shard run with no global events heartbeats only at
  /// run_until boundaries — schedule a periodic global (the health plane's
  /// checker tick does this) to give the watchdog a pulse.
  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct Channel {
    std::size_t from = 0;
    std::size_t to = 0;
    SimTime lookahead_ps = 0;
    std::function<void()> drain;
    std::function<void()> flush;
    /// Epochs published by the producer (release) vs. consumed (consumer-
    /// owned). The pair lets a drain catch up exactly on the epochs whose
    /// markers are guaranteed present — including leftovers from the final
    /// window of a previous run_until call.
    std::atomic<std::uint64_t> epochs_flushed{0};
    std::uint64_t epochs_drained = 0;
  };

  void run_sequential(SimTime t);
  void run_parallel(SimTime t);
  /// Runs all due global events at now_ (including ones scheduled by the
  /// callbacks themselves for the current time).
  void run_globals();
  /// Next window boundary: min(cur + W, end, first global event).
  [[nodiscard]] SimTime next_target(SimTime cur, SimTime end) const;
  static void default_executor(std::vector<Work>& work);

  /// Cache-line-isolated so shard heartbeat stores never false-share.
  struct alignas(64) Heartbeat {
    std::atomic<std::uint64_t> count{0};
  };

  struct WindowHook {
    SimTime period_ps = 0;
    SimTime next_due = 0;
    std::function<void(SimTime)> fn;
  };

  std::vector<std::unique_ptr<EventQueue>> shards_;
  std::unique_ptr<Heartbeat[]> heartbeats_;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::vector<Channel*>> incoming_;  // per destination shard
  std::vector<std::vector<Channel*>> outgoing_;  // per source shard
  SimTime window_ps_ = UINT64_MAX;
  std::multimap<SimTime, std::function<void()>> globals_;
  std::vector<WindowHook> hooks_;
  Executor executor_;
  SimTime now_ = 0;
  std::uint64_t windows_ = 0;
};

}  // namespace moongen::sim
