// Discrete-event simulation engine.
//
// A single-threaded event queue with deterministic ordering: events at the
// same virtual time run in scheduling (FIFO) order. All hardware models
// (NICs, wires, the DuT) and the "software" processes of the simulated
// generators are driven from this queue.
//
// Hot-path design (see DESIGN.md, "Event-engine fast path"):
//  * actions are InlineFunction — closures up to 48 bytes are stored inline
//    in the event record, no heap allocation per event;
//  * near-future timers (within ~268 us of the cursor) go into a timing
//    wheel of 4096 slots of 65.536 ns — schedule + dispatch are O(1)
//    bucket operations for the back-to-back frame cadence;
//  * far timers overflow into a binary heap and are merged event-by-event
//    with the wheel stream, preserving exact (time, seq) order across the
//    wheel/heap boundary;
//  * all pending events live in one contiguous node pool with LIFO reuse —
//    wheel slots and the heap hold 4-byte links/24-byte keys, so the few
//    in-flight events of a typical simulation stay in a few cache lines.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"
#include "telemetry/handles.hpp"

namespace moongen::telemetry {
class MetricRegistry;
}  // namespace moongen::telemetry

namespace moongen::sim {

/// Observer of executed events (the health plane's flight recorder). The
/// sink sees (time, seq) immediately before each action runs; it must not
/// schedule or mutate the queue. Null by default — one pointer check per
/// event when unset.
class EventTraceSink {
 public:
  virtual ~EventTraceSink() = default;
  virtual void on_event(SimTime time_ps, std::uint64_t seq) = 0;
};

class EventQueue {
 public:
  using Action = InlineFunction;

  // Wheel geometry: 4096 slots of 2^16 ps (65.536 ns) cover a horizon of
  // ~268 us — comfortably beyond every per-frame delay in the NIC models
  // (byte times, DMA latency, cable propagation), so only second-scale
  // timers (experiment stops, sampling ticks) hit the overflow heap.
  static constexpr unsigned kSlotShift = 16;
  static constexpr std::size_t kNumSlots = 4096;
  static constexpr SimTime kSlotWidth = SimTime{1} << kSlotShift;
  static constexpr SimTime kHorizonPs = kSlotWidth * kNumSlots;

  EventQueue() {
    slot_head_.fill(kNil);
    // Reserve pool headroom up front: growing the node pool relocates every
    // pending closure (an indirect call per node), which dominates bursty
    // schedule patterns. The reservation is virtual address space only —
    // pages are committed on first touch, so small sims stay small.
    pool_.reserve(32768);
  }

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `t` (>= now()).
  void schedule_at(SimTime t, Action action);

  /// Schedules `action` `delay` picoseconds from now.
  void schedule_in(SimTime delay, Action action) { schedule_at(now_ + delay, std::move(action)); }

  /// Hot-path variants: statically assert that the closure is stored inline
  /// (no heap allocation). Use these from per-frame code; a capture that
  /// grows beyond InlineFunction::kCapacity then fails to compile instead
  /// of silently reintroducing a malloc per event. The closure is emplaced
  /// directly into the pooled event record — zero relocations on the way in.
  template <typename F>
  void schedule_at_inline(SimTime t, F&& f) {
    static_assert(InlineFunction::fits_inline<std::decay_t<F>>(),
                  "hot-path event closure must fit InlineFunction's inline buffer");
    pool_[route_event(t)].ev.action.emplace(std::forward<F>(f));
  }
  template <typename F>
  void schedule_in_inline(SimTime delay, F&& f) {
    schedule_at_inline(now_ + delay, std::forward<F>(f));
  }

  /// Runs the next pending event; returns false if the queue is empty.
  bool step();

  /// Runs all events with time <= `t`, then advances the clock to `t`.
  void run_until(SimTime t);

  /// Runs until no events remain or `stop()` is called.
  void run();

  /// Requests `run`/`run_until` to return after the current event.
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::size_t pending() const {
    return bucket_count_ + (ready_.size() - ready_pos_) + heap_.size();
  }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Scheduling-route counters: events that entered the timer wheel vs. the
  /// overflow heap (engine-efficiency telemetry; wheel share should be ~1
  /// for frame-dominated workloads).
  [[nodiscard]] std::uint64_t wheel_scheduled() const { return wheel_scheduled_; }
  [[nodiscard]] std::uint64_t heap_scheduled() const { return heap_scheduled_; }
  /// Wall-clock nanoseconds spent inside run()/run_until().
  [[nodiscard]] std::uint64_t run_wall_ns() const { return run_wall_ns_; }

  /// Attaches (or detaches, with nullptr) an executed-event observer.
  /// Observation only: the sink never alters scheduling order or timing, so
  /// traced runs stay byte-identical to untraced ones.
  void set_trace_sink(EventTraceSink* sink) { trace_sink_ = sink; }
  [[nodiscard]] EventTraceSink* trace_sink() const { return trace_sink_; }

  /// Structural invariant audit (the health plane's engine checker). Walks
  /// the node pool, freelist, wheel slots, occupancy bitmap, ready buffer
  /// and overflow heap and cross-checks their accounting:
  ///   * freelist + wheel chains + ready tail + heap == pool size, with no
  ///     node reachable twice (a cycle or double-release corrupts this);
  ///   * bucket_count_ equals the summed wheel chain lengths and the
  ///     occupancy bitmap marks exactly the non-empty slots;
  ///   * no pending event is scheduled before now() (time monotonicity) and
  ///     every wheel-resident event lies within the wheel horizon of the
  ///     cursor slot.
  /// Returns an empty string when consistent, else a description of the
  /// first violated invariant. O(pool size) — call at window boundaries,
  /// not per event.
  [[nodiscard]] std::string audit() const;

  /// Registers `<prefix>.events_executed`, `<prefix>.wheel_scheduled`,
  /// `<prefix>.heap_scheduled` (counters) and
  /// `<prefix>.events_per_wall_second` (gauge) in `registry`. Metrics are
  /// NOT updated per event — call publish_telemetry() at sampling points /
  /// end of run to flush the deltas.
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix);
  /// Convenience overload: binds into the registry's default tree (shard 0).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);
  /// Flushes executed/scheduled deltas into the bound registry counters and
  /// refreshes the events-per-wall-second gauge.
  void publish_telemetry();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Pool node: every pending event lives in pool_; wheel slots chain nodes
  /// through `next` (also the freelist link). One contiguous allocation and
  /// LIFO node reuse keep the working set a few cache lines for the typical
  /// handful of in-flight events, instead of 4096 scattered slot vectors.
  struct Node {
    Event ev;
    std::uint32_t next = kNil;
  };
  /// Sort key plus pool reference — what ready_ and the overflow heap hold.
  /// Sorting and heap sifts move 24-byte keys and compare without touching
  /// the pool, never the event record itself.
  struct EventKey {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t node;
  };
  struct Sooner {
    bool operator()(const EventKey& a, const EventKey& b) const {
      return a.time != b.time ? a.time < b.time : a.seq < b.seq;
    }
  };
  struct Later {
    bool operator()(const EventKey& a, const EventKey& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::uint32_t acquire_node() {
    if (free_head_ != kNil) {
      const std::uint32_t idx = free_head_;
      free_head_ = pool_[idx].next;
      return idx;
    }
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }
  void release_node(std::uint32_t idx) {
    pool_[idx].next = free_head_;
    free_head_ = idx;
  }

  /// Allocates a pool node for an event at `t`, routes it into the wheel,
  /// ready_ or the overflow heap, and returns the node index; the caller
  /// fills in the action (by move, or in place via emplace).
  std::uint32_t route_event(SimTime t);

  /// Returns the next event in (time, seq) order without executing it, or
  /// nullptr when empty. May drain the next occupied wheel slot into
  /// `ready_`. Sets `from_heap` to where the event lives.
  const Event* peek_next(bool& from_heap);
  /// Pops the event returned by peek_next and runs it.
  void execute(bool from_heap);
  /// Advances the wheel cursor to now_'s slot, draining its bucket.
  void sync_cursor();
  /// Sorts bucket at absolute slot `abs_slot` into ready_, making it the
  /// cursor slot.
  void drain_slot(std::uint64_t abs_slot);
  /// Absolute index of the first occupied slot after cursor_, or UINT64_MAX.
  [[nodiscard]] std::uint64_t next_occupied_slot() const;

  // --- event storage --------------------------------------------------------
  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNil;  // head of the released-node LIFO

  // --- timer wheel (near future) -------------------------------------------
  std::array<std::uint32_t, kNumSlots> slot_head_;  // per-slot node chain
  std::array<std::uint64_t, kNumSlots / 64> occupied_{};
  std::size_t bucket_count_ = 0;  // events residing in wheel slots
  std::uint64_t cursor_ = 0;      // absolute slot index of ready_'s slot
  std::vector<EventKey> ready_;   // drained cursor slot, sorted (time, seq)
  std::size_t ready_pos_ = 0;

  // --- overflow heap (far future) ------------------------------------------
  std::vector<EventKey> heap_;  // binary min-heap via std::push_heap/pop_heap

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;

  std::uint64_t wheel_scheduled_ = 0;
  std::uint64_t heap_scheduled_ = 0;
  std::uint64_t run_wall_ns_ = 0;

  EventTraceSink* trace_sink_ = nullptr;

  // Telemetry bindings (invalid/no-op until bind_telemetry).
  telemetry::CounterHandle tm_executed_;
  telemetry::CounterHandle tm_wheel_;
  telemetry::CounterHandle tm_heap_;
  telemetry::GaugeHandle tm_rate_;
  std::uint64_t tm_executed_published_ = 0;
  std::uint64_t tm_wheel_published_ = 0;
  std::uint64_t tm_heap_published_ = 0;
};

}  // namespace moongen::sim
