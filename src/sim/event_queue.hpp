// Discrete-event simulation engine.
//
// A single-threaded event queue with deterministic ordering: events at the
// same virtual time run in scheduling (FIFO) order. All hardware models
// (NICs, wires, the DuT) and the "software" processes of the simulated
// generators are driven from this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace moongen::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `t` (>= now()).
  void schedule_at(SimTime t, Action action);

  /// Schedules `action` `delay` picoseconds from now.
  void schedule_in(SimTime delay, Action action) { schedule_at(now_ + delay, std::move(action)); }

  /// Runs the next pending event; returns false if the queue is empty.
  bool step();

  /// Runs all events with time <= `t`, then advances the clock to `t`.
  void run_until(SimTime t);

  /// Runs until no events remain or `stop()` is called.
  void run();

  /// Requests `run`/`run_until` to return after the current event.
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] std::size_t pending() const { return events_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace moongen::sim
