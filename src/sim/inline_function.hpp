// Small-buffer-optimized move-only callable for the event engine.
//
// std::function heap-allocates every closure larger than its tiny internal
// buffer (16 bytes in libstdc++) — at 3-5 events per simulated frame that
// is 3-5 malloc/free pairs per packet, the single largest cost in the
// discrete-event hot path. InlineFunction stores closures up to kCapacity
// bytes (sized for the serializer-completion event: a Frame, a timestamp
// and a `this` pointer) directly inside the object; only oversized or
// throwing-move callables fall back to the heap. Hot-path call sites
// static_assert the inline fit via fits_inline<F>() (see
// EventQueue::schedule_at_inline), so a capture that silently outgrows the
// buffer is a compile error, not a performance regression.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace moongen::sim {

class InlineFunction {
 public:
  /// Inline storage size: fits the largest hot-path closure (a Frame of
  /// 32 bytes plus a timestamp and an object pointer).
  static constexpr std::size_t kCapacity = 48;

  /// True if `F` will be stored inline (no heap allocation). Requires a
  /// nothrow move constructor: inline storage is relocated when the
  /// engine's event vectors grow or sort.
  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kCapacity && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  InlineFunction() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  InlineFunction(F&& f) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  /// Constructs `F` directly in the buffer, destroying any current callable
  /// first — the zero-move path for hot-path scheduling (the closure is
  /// built in place inside the event record, never relocated on the way in).
  template <typename F, typename D = std::decay_t<F>>
  void emplace(F&& f) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  ~InlineFunction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* self) { (*static_cast<D*>(self))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* self) noexcept { static_cast<D*>(self)->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* self) { (**static_cast<D**>(self))(); },
      [](void* dst, void* src) noexcept { *static_cast<D**>(dst) = *static_cast<D**>(src); },
      [](void* self) noexcept { delete *static_cast<D**>(self); },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace moongen::sim
