// PTP hardware clock model.
//
// Models the IEEE 1588 time registers of the Intel NICs evaluated in the
// paper (Section 6.1):
//   * 82599: the timestamp logic operates at 156.25 MHz (6.4 ns) but the
//     timer register increments only every *two* cycles, so readings are
//     quantized to 12.8 ns — the cause of the bimodal 8.5 m fiber result.
//   * X540:  the timer increments every 6.4 ns.
//   * 82580: readings are of the form t = n * 64 ns + k * 8 ns with k a
//     constant that changes between resets.
// Clocks can drift relative to true (simulation) time and can be adjusted
// with an atomic add, as required for PTP and used by MoonGen's
// clock-synchronization algorithm (Section 6.2).
#pragma once

#include <cstdint>
#include <random>

#include "sim/time.hpp"

namespace moongen::sim {

struct PtpClockConfig {
  /// Reading quantization step (timer increment period).
  SimTime increment_ps = 6'400;
  /// Additive constant applied to every reading, of the form k * phase_step
  /// with k randomized per reset (82580 behaviour). 0 disables.
  SimTime phase_step_ps = 0;
  /// Clock drift relative to true time in parts per billion. The worst
  /// case measured in the paper is 35 us/s = 35'000 ppb (Section 6.3).
  std::int64_t drift_ppb = 0;
};

class PtpClock {
 public:
  PtpClock(PtpClockConfig config, std::uint64_t seed);

  /// Simulates a hardware reset: re-randomizes the phase offset (the
  /// per-reset k of the 82580) and the timer start offset.
  void reset(std::uint64_t seed);

  /// Reads the time register at true (simulation) time `now`.
  [[nodiscard]] std::uint64_t read(SimTime now) const;

  /// Atomic read-modify-write adjustment (TIMADJ register): shifts the
  /// clock by `delta_ps` (positive or negative).
  void adjust(std::int64_t delta_ps);

  /// Changes the drift rate (TIMINCA reprogramming / oscillator fault) at
  /// true time `now`. The offset is rebased so the clock value is
  /// continuous at `now`: readings before the change are unaffected, the
  /// new rate applies from `now` on.
  void set_drift_ppb(std::int64_t ppb, SimTime now);

  [[nodiscard]] const PtpClockConfig& config() const { return config_; }

  /// Raw (unquantized) clock value at `now`; used internally and by tests.
  [[nodiscard]] double raw(SimTime now) const;

 private:
  PtpClockConfig config_;
  std::int64_t offset_ps_ = 0;    // accumulated adjustments + reset offset
  std::uint64_t phase_offset_ps_ = 0;  // k * phase_step per reset
};

}  // namespace moongen::sim
