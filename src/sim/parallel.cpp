#include "sim/parallel.hpp"

#include <barrier>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace moongen::sim {

ParallelRuntime::ParallelRuntime(std::size_t shards)
    : incoming_(shards == 0 ? 1 : shards), outgoing_(shards == 0 ? 1 : shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<EventQueue>());
  heartbeats_ = std::make_unique<Heartbeat[]>(shards);
  executor_ = &ParallelRuntime::default_executor;
}

void ParallelRuntime::add_channel(std::size_t from_shard, std::size_t to_shard,
                                  SimTime lookahead_ps, std::function<void()> drain,
                                  std::function<void()> flush) {
  if (from_shard >= shards_.size() || to_shard >= shards_.size())
    throw std::out_of_range("ParallelRuntime::add_channel: shard index out of range");
  if (from_shard == to_shard)
    throw std::invalid_argument("ParallelRuntime::add_channel: channel within one shard");
  if (lookahead_ps == 0)
    throw std::invalid_argument(
        "ParallelRuntime::add_channel: zero lookahead cannot bound a window");
  auto ch = std::make_unique<Channel>();
  ch->from = from_shard;
  ch->to = to_shard;
  ch->lookahead_ps = lookahead_ps;
  ch->drain = std::move(drain);
  ch->flush = std::move(flush);
  incoming_[to_shard].push_back(ch.get());
  outgoing_[from_shard].push_back(ch.get());
  if (lookahead_ps < window_ps_) window_ps_ = lookahead_ps;
  channels_.push_back(std::move(ch));
}

void ParallelRuntime::schedule_global(SimTime t, std::function<void()> fn) {
  if (t < now_) throw std::logic_error("ParallelRuntime: scheduling a global into the past");
  globals_.emplace(t, std::move(fn));
}

void ParallelRuntime::add_window_hook(SimTime period_ps, std::function<void(SimTime)> fn) {
  if (period_ps == 0)
    throw std::invalid_argument("ParallelRuntime::add_window_hook: zero period");
  WindowHook hook;
  hook.period_ps = period_ps;
  // First firing strictly after now(): a hook registered at t=0 first runs
  // at period_ps, so every window spans exactly one period.
  hook.next_due = (now_ / period_ps + 1) * period_ps;
  hook.fn = std::move(fn);
  hooks_.push_back(std::move(hook));
}

SimTime ParallelRuntime::next_target(SimTime cur, SimTime end) const {
  SimTime next = end;
  if (window_ps_ != UINT64_MAX && end - cur > window_ps_) next = cur + window_ps_;
  if (!globals_.empty() && globals_.begin()->first < next) next = globals_.begin()->first;
  for (const auto& hook : hooks_)
    if (hook.next_due < next) next = hook.next_due;
  return next;
}

void ParallelRuntime::run_globals() {
  // Periodic hooks first: a window closer must publish before the global
  // events (sampling ticks) due at the same instant read it. next_target
  // stops every run at each due time, so the catch-up loop runs at most
  // once per hook except when run_until jumps past due times with no
  // shards to advance (t == now_ fast path never does).
  for (auto& hook : hooks_) {
    while (hook.next_due <= now_) {
      const SimTime due = hook.next_due;
      hook.next_due += hook.period_ps;
      hook.fn(due);
    }
  }
  // Callbacks may schedule further globals at the current time; keep
  // draining until none are due (mirrors the event queue's same-time FIFO).
  while (!globals_.empty() && globals_.begin()->first <= now_) {
    auto fn = std::move(globals_.begin()->second);
    globals_.erase(globals_.begin());
    fn();
  }
}

void ParallelRuntime::run_sequential(SimTime t) {
  while (true) {
    const SimTime target = next_target(now_, t);
    shards_[0]->run_until(target);
    now_ = target;
    heartbeats_[0].count.fetch_add(1, std::memory_order_relaxed);
    run_globals();
    if (now_ >= t) return;
  }
}

void ParallelRuntime::run_parallel(SimTime t) {
  const std::size_t n = shards_.size();
  SimTime next = next_target(now_, t);
  bool done = false;
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  // Completion step: every shard is quiesced at `next` — advance global
  // time, run due globals single-threaded, pick the next window boundary.
  auto on_window = [&]() noexcept {
    now_ = next;
    ++windows_;
    if (!failed.load(std::memory_order_acquire)) {
      try {
        run_globals();
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
    }
    if (now_ >= t || failed.load(std::memory_order_acquire)) {
      done = true;
      return;
    }
    next = next_target(now_, t);
  };
  std::barrier sync(static_cast<std::ptrdiff_t>(n), on_window);

  std::vector<Work> work;
  work.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    work.emplace_back([this, s, &sync, &next, &done, &failed, &error_mutex, &first_error] {
      EventQueue& engine = *shards_[s];
      try {
        for (;;) {
          // Catch up on every published epoch: one from the previous
          // window in steady state, possibly more right after a previous
          // run_until left its final markers undrained.
          for (Channel* ch : incoming_[s]) {
            const std::uint64_t published = ch->epochs_flushed.load(std::memory_order_acquire);
            while (ch->epochs_drained < published) {
              ch->drain();
              ++ch->epochs_drained;
            }
          }
          engine.run_until(next);
          for (Channel* ch : outgoing_[s]) {
            ch->flush();
            ch->epochs_flushed.fetch_add(1, std::memory_order_release);
          }
          heartbeats_[s].count.fetch_add(1, std::memory_order_relaxed);
          sync.arrive_and_wait();
          if (done) return;
        }
      } catch (...) {
        {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_release);
        // Leave the barrier so the surviving shards cannot wait for this
        // thread; they stop at the next window boundary.
        sync.arrive_and_drop();
      }
    });
  }
  executor_(work);
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelRuntime::run_until(SimTime t) {
  if (t < now_) throw std::logic_error("ParallelRuntime: run_until into the past");
  if (t == now_) {
    run_globals();
    return;
  }
  // Flag the run for watchdog monitors; cleared even on exception so a
  // failed run is never mistaken for a stall.
  struct RunningGuard {
    std::atomic<bool>& flag;
    explicit RunningGuard(std::atomic<bool>& f) : flag(f) { flag.store(true, std::memory_order_release); }
    ~RunningGuard() { flag.store(false, std::memory_order_release); }
  } guard(running_);
  if (shards_.size() == 1) {
    run_sequential(t);
  } else {
    run_parallel(t);
  }
}

void ParallelRuntime::default_executor(std::vector<Work>& work) {
  std::vector<std::thread> threads;
  threads.reserve(work.size());
  for (auto& w : work) threads.emplace_back(w);
  for (auto& th : threads) th.join();
}

}  // namespace moongen::sim
