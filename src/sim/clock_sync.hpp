// MoonGen's clock-synchronization algorithm (paper Section 6.2).
//
// Two PTP clocks are synchronized by reading them in both orders over PCIe:
// the two resulting differences agree iff the clocks are synchronous
// (assuming constant PCIe access time). Roughly 5 % of reads are outliers,
// so the measurement is repeated 7 times (probability > 99.999 % of at
// least 3 good samples) and the median difference is applied with an atomic
// adjustment. Residual error: ±1 timer increment per clock.
#pragma once

#include <cstdint>
#include <random>

#include "sim/ptp_clock.hpp"
#include "sim/time.hpp"

namespace moongen::sim {

struct ClockSyncConfig {
  /// PCIe register read round-trip.
  SimTime pcie_read_ps = 300'000;  // 300 ns
  /// Probability that a single register read is delayed by contention.
  double outlier_probability = 0.05;
  /// Maximum extra delay of an outlier read.
  SimTime outlier_extra_ps = 5'000'000;  // 5 us
  /// Number of repeated difference measurements (paper: 7).
  int attempts = 7;
};

struct ClockSyncResult {
  /// Adjustment applied to clock `b` (b := b - median_difference).
  std::int64_t applied_adjustment_ps = 0;
  /// Residual b-a difference measured immediately after adjustment.
  std::int64_t residual_ps = 0;
  /// Virtual time consumed by all the register reads.
  SimTime elapsed_ps = 0;
};

/// Synchronizes clock `b` to clock `a`, starting at true time `start`.
ClockSyncResult synchronize_clocks(const PtpClock& a, PtpClock& b, SimTime start,
                                   std::mt19937_64& rng, const ClockSyncConfig& config = {});

/// One-shot difference measurement (b - a) using the order-swap trick, for
/// drift measurements (Section 6.3). Returns the measured difference and
/// advances `*cursor` by the read time.
std::int64_t measure_clock_difference(const PtpClock& a, const PtpClock& b, SimTime* cursor,
                                      std::mt19937_64& rng, const ClockSyncConfig& config = {});

}  // namespace moongen::sim
