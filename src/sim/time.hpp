// Simulation time base.
//
// Virtual time is counted in integer *picoseconds*: at 10 GbE one byte takes
// exactly 800 ps on the wire, at GbE 8000 ps, and all NIC timestamp
// granularities in the paper (6.4 ns, 12.8 ns, 64 ns) are integral in ps, so
// every quantity in the reproduced experiments is exact.
#pragma once

#include <cstdint>

namespace moongen::sim {

/// Virtual time / durations in picoseconds.
using SimTime = std::uint64_t;

inline constexpr SimTime kPsPerNs = 1'000;
inline constexpr SimTime kPsPerUs = 1'000'000;
inline constexpr SimTime kPsPerMs = 1'000'000'000;
inline constexpr SimTime kPsPerSec = 1'000'000'000'000ull;

constexpr SimTime from_ns(double ns) { return static_cast<SimTime>(ns * 1e3); }
constexpr double to_ns(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double to_us(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e12; }

/// Picoseconds to serialize one byte at `mbit_per_s` megabit/s.
constexpr SimTime byte_time_ps(std::uint64_t mbit_per_s) {
  // 8 bits / (mbit/s * 1e6 bit/s) seconds = 8e6/mbit ps.
  return 8'000'000ull / mbit_per_s;
}

static_assert(byte_time_ps(10'000) == 800);   // 10 GbE
static_assert(byte_time_ps(1'000) == 8'000);  // GbE
static_assert(byte_time_ps(40'000) == 200);   // 40 GbE

}  // namespace moongen::sim
