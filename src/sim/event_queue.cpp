#include "sim/event_queue.hpp"

#include <stdexcept>

namespace moongen::sim {

void EventQueue::schedule_at(SimTime t, Action action) {
  if (t < now_) throw std::logic_error("EventQueue: scheduling into the past");
  events_.push(Event{t, next_seq_++, std::move(action)});
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  // priority_queue::top returns const&; the action must be moved out before
  // pop, so copy the metadata and steal the closure.
  Event ev = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  now_ = ev.time;
  ++executed_;
  ev.action();
  return true;
}

void EventQueue::run_until(SimTime t) {
  while (!stopped_ && !events_.empty() && events_.top().time <= t) step();
  if (!stopped_ && now_ < t) now_ = t;
}

void EventQueue::run() {
  while (!stopped_ && step()) {
  }
}

}  // namespace moongen::sim
