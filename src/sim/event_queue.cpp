#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>

#include "telemetry/registry.hpp"

namespace moongen::sim {

namespace {

constexpr std::uint64_t kNoSlot = UINT64_MAX;

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

void EventQueue::schedule_at(SimTime t, Action action) {
  pool_[route_event(t)].ev.action = std::move(action);
}

std::uint32_t EventQueue::route_event(SimTime t) {
  if (t < now_) throw std::logic_error("EventQueue: scheduling into the past");
  const std::uint64_t seq = next_seq_++;
  const std::uint64_t abs_slot = t >> kSlotShift;
  const std::uint32_t node = acquire_node();
  Node& nd = pool_[node];
  nd.ev.time = t;
  nd.ev.seq = seq;
  if (abs_slot > cursor_ && abs_slot - cursor_ < kNumSlots) {
    // Wheel window: O(1) push onto the slot's node chain.
    ++wheel_scheduled_;
    const std::uint64_t idx = abs_slot & (kNumSlots - 1);
    nd.next = slot_head_[idx];
    slot_head_[idx] = node;
    occupied_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    ++bucket_count_;
  } else if (abs_slot <= cursor_) {
    // The target slot has already been drained into ready_ (events landing
    // at or before the cursor slot, e.g. schedule_in(0)); keep ready_
    // sorted by inserting behind everything that runs earlier. A new seq is
    // larger than every pending one, so upper_bound by time alone suffices.
    ++wheel_scheduled_;
    const auto pos = std::upper_bound(
        ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_), ready_.end(),
        EventKey{t, seq, node}, Sooner{});
    ready_.insert(pos, EventKey{t, seq, node});
  } else {
    ++heap_scheduled_;
    nd.next = kNil;
    heap_.push_back(EventKey{t, seq, node});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  return node;
}

std::uint64_t EventQueue::next_occupied_slot() const {
  if (bucket_count_ == 0) return kNoSlot;
  // Scan the occupancy bitmap circularly starting just past the cursor. The
  // active window is (cursor_, cursor_ + kNumSlots), so every set bit maps
  // to exactly one absolute slot in that range.
  const std::uint64_t start = cursor_ + 1;
  std::uint64_t bit = start & (kNumSlots - 1);
  std::uint64_t word_idx = bit >> 6;
  std::uint64_t word = occupied_[word_idx] & (~std::uint64_t{0} << (bit & 63));
  for (std::size_t scanned = 0;;) {
    if (word != 0) {
      const auto found_bit = (word_idx << 6) + static_cast<std::uint64_t>(std::countr_zero(word));
      // Map the ring position back to an absolute slot index in the window.
      const std::uint64_t delta = (found_bit - start) & (kNumSlots - 1);
      return start + delta;
    }
    ++scanned;
    if (scanned >= kNumSlots / 64 + 1) return kNoSlot;
    word_idx = (word_idx + 1) & (kNumSlots / 64 - 1);
    word = occupied_[word_idx];
  }
}

void EventQueue::drain_slot(std::uint64_t abs_slot) {
  const std::uint64_t idx = abs_slot & (kNumSlots - 1);
  occupied_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  ready_.clear();
  ready_pos_ = 0;
  std::uint32_t n = slot_head_[idx];
  slot_head_[idx] = kNil;
  while (n != kNil) {
    const Event& e = pool_[n].ev;
    ready_.push_back(EventKey{e.time, e.seq, n});
    n = pool_[n].next;
  }
  bucket_count_ -= ready_.size();
  // The chain is LIFO scheduling order; reversing it restores FIFO, which
  // for the common monotonically-scheduled bucket is already (time, seq)
  // order — the sort then only runs for out-of-order mixes.
  if (ready_.size() > 1) {
    std::reverse(ready_.begin(), ready_.end());
    if (!std::is_sorted(ready_.begin(), ready_.end(), Sooner{})) {
      std::sort(ready_.begin(), ready_.end(), Sooner{});
    }
  }
  cursor_ = abs_slot;
}

void EventQueue::sync_cursor() {
  const std::uint64_t target = now_ >> kSlotShift;
  if (target <= cursor_) return;
  // All ready_ events belong to slots <= cursor_ < target, i.e. they ran
  // before now_ advanced here; the buffer is fully consumed.
  if ((occupied_[(target & (kNumSlots - 1)) >> 6] >> (target & 63)) & 1u) {
    drain_slot(target);
  } else {
    ready_.clear();
    ready_pos_ = 0;
    cursor_ = target;
  }
}

const EventQueue::Event* EventQueue::peek_next(bool& from_heap) {
  const Event* wheel = nullptr;
  if (ready_pos_ < ready_.size()) {
    wheel = &pool_[ready_[ready_pos_].node].ev;
  } else {
    const std::uint64_t s = next_occupied_slot();
    if (s != kNoSlot) {
      const SimTime slot_start = static_cast<SimTime>(s) << kSlotShift;
      if (!heap_.empty() && heap_.front().time < slot_start) {
        // The heap event runs strictly before anything in slot s; do NOT
        // advance the cursor past slots that new events may still target.
        from_heap = true;
        return &pool_[heap_.front().node].ev;
      }
      drain_slot(s);
      wheel = &pool_[ready_[ready_pos_].node].ev;
    }
  }
  if (!heap_.empty()) {
    const EventKey& h = heap_.front();
    if (wheel == nullptr ||
        (h.time != wheel->time ? h.time < wheel->time : h.seq < wheel->seq)) {
      from_heap = true;
      return &pool_[h.node].ev;
    }
  }
  if (wheel != nullptr) {
    from_heap = false;
    return wheel;
  }
  return nullptr;
}

void EventQueue::execute(bool from_heap) {
  // Steal only the action: the node returns to the freelist before the
  // action runs, so a self-rescheduling timer reuses its own (cache-hot)
  // node. The action must be moved out first — the body may schedule, which
  // can grow pool_ and invalidate node references.
  std::uint32_t node;
  if (from_heap) {
    node = heap_.front().node;
    now_ = heap_.front().time;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  } else {
    const EventKey& k = ready_[ready_pos_++];
    node = k.node;
    now_ = k.time;
  }
  Action act(std::move(pool_[node].ev.action));
  const std::uint64_t seq = pool_[node].ev.seq;
  release_node(node);
  sync_cursor();
  ++executed_;
  if (trace_sink_ != nullptr) trace_sink_->on_event(now_, seq);
  act();
}

bool EventQueue::step() {
  bool from_heap = false;
  if (peek_next(from_heap) == nullptr) return false;
  execute(from_heap);
  return true;
}

void EventQueue::run_until(SimTime t) {
  const std::uint64_t t0 = wall_ns();
  while (!stopped_) {
    bool from_heap = false;
    const Event* next = peek_next(from_heap);
    if (next == nullptr || next->time > t) break;
    execute(from_heap);
  }
  if (!stopped_ && now_ < t) {
    now_ = t;
    sync_cursor();
  }
  run_wall_ns_ += wall_ns() - t0;
}

void EventQueue::run() {
  const std::uint64_t t0 = wall_ns();
  while (!stopped_ && step()) {
  }
  run_wall_ns_ += wall_ns() - t0;
}

std::string EventQueue::audit() const {
  std::vector<char> seen(pool_.size(), 0);
  const auto touch = [&](std::uint32_t node, const char* where) -> std::string {
    if (node >= pool_.size())
      return std::string(where) + ": node index " + std::to_string(node) +
             " outside pool of " + std::to_string(pool_.size());
    if (seen[node] != 0)
      return std::string(where) + ": node " + std::to_string(node) +
             " reachable twice (cycle or double release)";
    seen[node] = 1;
    return {};
  };

  // Freelist: bounded walk (a cycle would otherwise loop forever).
  std::size_t free_count = 0;
  for (std::uint32_t n = free_head_; n != kNil; n = pool_[n].next) {
    if (auto err = touch(n, "freelist"); !err.empty()) return err;
    if (++free_count > pool_.size()) return "freelist: longer than the pool (cycle)";
  }

  // Wheel slots: chain lengths vs. bucket_count_, occupancy bits, event
  // times within the horizon and not in the past.
  std::size_t wheel_count = 0;
  for (std::size_t idx = 0; idx < kNumSlots; ++idx) {
    const bool bit = ((occupied_[idx >> 6] >> (idx & 63)) & 1u) != 0;
    const bool has_chain = slot_head_[idx] != kNil;
    if (bit != has_chain)
      return "wheel slot " + std::to_string(idx) + ": occupancy bit " +
             (bit ? "set" : "clear") + " but chain " + (has_chain ? "non-empty" : "empty");
    for (std::uint32_t n = slot_head_[idx]; n != kNil; n = pool_[n].next) {
      if (auto err = touch(n, "wheel chain"); !err.empty()) return err;
      ++wheel_count;
      const Event& e = pool_[n].ev;
      if (e.time < now_)
        return "wheel event at t=" + std::to_string(e.time) + " ps is before now=" +
               std::to_string(now_) + " ps (monotonicity)";
      const std::uint64_t abs_slot = e.time >> kSlotShift;
      if ((abs_slot & (kNumSlots - 1)) != idx)
        return "wheel event at t=" + std::to_string(e.time) + " ps hashed to slot " +
               std::to_string(abs_slot & (kNumSlots - 1)) + " but found in slot " +
               std::to_string(idx);
      if (abs_slot <= cursor_ || abs_slot - cursor_ >= kNumSlots)
        return "wheel event at t=" + std::to_string(e.time) +
               " ps outside the horizon of cursor slot " + std::to_string(cursor_);
    }
  }
  if (wheel_count != bucket_count_)
    return "wheel holds " + std::to_string(wheel_count) + " events but bucket_count_ says " +
           std::to_string(bucket_count_);

  // Ready buffer tail (drained cursor slot, not yet executed).
  for (std::size_t i = ready_pos_; i < ready_.size(); ++i) {
    if (auto err = touch(ready_[i].node, "ready buffer"); !err.empty()) return err;
    const Event& e = pool_[ready_[i].node].ev;
    if (e.time < now_)
      return "ready event at t=" + std::to_string(e.time) + " ps is before now=" +
             std::to_string(now_) + " ps (monotonicity)";
  }

  // Overflow heap.
  for (const EventKey& k : heap_) {
    if (auto err = touch(k.node, "overflow heap"); !err.empty()) return err;
    if (pool_[k.node].ev.time < now_)
      return "heap event at t=" + std::to_string(pool_[k.node].ev.time) +
             " ps is before now=" + std::to_string(now_) + " ps (monotonicity)";
  }

  const std::size_t reachable =
      free_count + wheel_count + (ready_.size() - ready_pos_) + heap_.size();
  if (reachable != pool_.size())
    return "node conservation: freelist " + std::to_string(free_count) + " + wheel " +
           std::to_string(wheel_count) + " + ready " +
           std::to_string(ready_.size() - ready_pos_) + " + heap " +
           std::to_string(heap_.size()) + " != pool " + std::to_string(pool_.size());
  return {};
}

void EventQueue::bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix) {
  if (tm_executed_.valid()) return;  // already bound
  tm_executed_ = tree.counter(prefix + ".events_executed");
  tm_wheel_ = tree.counter(prefix + ".wheel_scheduled");
  tm_heap_ = tree.counter(prefix + ".heap_scheduled");
  tm_rate_ = tree.gauge(prefix + ".events_per_wall_second");
  publish_telemetry();
}

void EventQueue::bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix) {
  bind_telemetry(registry.shard(0), prefix);
}

void EventQueue::publish_telemetry() {
  if (!tm_executed_.valid()) return;
  tm_executed_.add(executed_ - tm_executed_published_);
  tm_wheel_.add(wheel_scheduled_ - tm_wheel_published_);
  tm_heap_.add(heap_scheduled_ - tm_heap_published_);
  tm_executed_published_ = executed_;
  tm_wheel_published_ = wheel_scheduled_;
  tm_heap_published_ = heap_scheduled_;
  if (run_wall_ns_ > 0) {
    tm_rate_.set(static_cast<double>(executed_) /
                 (static_cast<double>(run_wall_ns_) / 1e9));
  }
}

}  // namespace moongen::sim
