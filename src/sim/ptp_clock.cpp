#include "sim/ptp_clock.hpp"

#include <cmath>

namespace moongen::sim {

PtpClock::PtpClock(PtpClockConfig config, std::uint64_t seed) : config_(config) { reset(seed); }

void PtpClock::reset(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  // Timer starts at an arbitrary phase relative to true time.
  offset_ps_ = static_cast<std::int64_t>(rng() % config_.increment_ps);
  if (config_.phase_step_ps > 0) {
    const auto steps = config_.increment_ps / config_.phase_step_ps;
    phase_offset_ps_ = (rng() % steps) * config_.phase_step_ps;
  } else {
    phase_offset_ps_ = 0;
  }
}

double PtpClock::raw(SimTime now) const {
  const double drift_factor = 1.0 + static_cast<double>(config_.drift_ppb) * 1e-9;
  return static_cast<double>(now) * drift_factor + static_cast<double>(offset_ps_);
}

std::uint64_t PtpClock::read(SimTime now) const {
  const double r = raw(now);
  const auto ticks = static_cast<std::uint64_t>(r / static_cast<double>(config_.increment_ps));
  return ticks * config_.increment_ps + phase_offset_ps_;
}

void PtpClock::adjust(std::int64_t delta_ps) { offset_ps_ += delta_ps; }

void PtpClock::set_drift_ppb(std::int64_t ppb, SimTime now) {
  // Continuity at `now`: now*(1+d1e-9)+off1 == now*(1+d2e-9)+off2.
  offset_ps_ += static_cast<std::int64_t>(
      static_cast<double>(now) * static_cast<double>(config_.drift_ppb - ppb) * 1e-9);
  config_.drift_ppb = ppb;
}

}  // namespace moongen::sim
