// Lock-free single-producer / single-consumer channel for cross-shard
// frame traffic (see DESIGN.md, "Parallel sharded runtime").
//
// Design constraints, in order:
//  * the producer must NEVER block: a shard that fills a bounded ring while
//    its consumer waits at the window barrier would deadlock the whole
//    runtime, so the channel is unbounded — storage grows in chunks;
//  * a push is one store into the current chunk plus one release store of
//    the chunk's count; a pop is one acquire load plus a read. No CAS, no
//    shared head/tail indices — the producer and consumer each own their
//    cursor and meet only at the per-chunk count and next pointers;
//  * capacity is recycled: fully consumed chunks are freed by the consumer,
//    so a long run's footprint is bounded by the in-flight window, not by
//    the total traffic.
//
// Thread-safety contract: exactly one producer thread and one consumer
// thread (which may be the same thread, e.g. in the sequential fallback).
// No other concurrent access is allowed — this is what buys the two-load
// hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace moongen::sim {

template <typename T, std::size_t kChunkItems = 256>
class SpscChannel {
 public:
  SpscChannel() {
    auto* chunk = new Chunk();
    head_ = chunk;
    tail_ = chunk;
  }

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  ~SpscChannel() {
    Chunk* c = head_;
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_relaxed);
      delete c;
      c = next;
    }
  }

  /// Producer side. Never blocks; allocates a fresh chunk when the current
  /// one is full.
  void push(T value) {
    Chunk* chunk = tail_;
    const std::size_t n = chunk->count.load(std::memory_order_relaxed);
    if (n == kChunkItems) {
      auto* fresh = new Chunk();
      fresh->storage[0] = std::move(value);
      fresh->count.store(1, std::memory_order_relaxed);
      // Publish the chunk *after* its first item is in place.
      chunk->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
      ++pushed_;
      return;
    }
    chunk->storage[n] = std::move(value);
    // The count publish makes the item visible to the consumer.
    chunk->count.store(n + 1, std::memory_order_release);
    ++pushed_;
  }

  /// Consumer side. Returns false when no published item is available.
  bool try_pop(T& out) {
    Chunk* chunk = head_;
    if (read_ == chunk->count.load(std::memory_order_acquire)) {
      if (read_ < kChunkItems) return false;  // producer still filling this chunk
      Chunk* next = chunk->next.load(std::memory_order_acquire);
      if (next == nullptr) return false;  // successor not published yet
      delete chunk;
      head_ = next;
      read_ = 0;
      chunk = next;
      if (chunk->count.load(std::memory_order_acquire) == 0) return false;
    }
    out = std::move(chunk->storage[read_]);
    ++read_;
    ++popped_;
    return true;
  }

  /// Producer-side count of items pushed over the channel's lifetime.
  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }
  /// Consumer-side count of items popped over the channel's lifetime.
  [[nodiscard]] std::uint64_t popped() const { return popped_; }

 private:
  struct Chunk {
    T storage[kChunkItems];
    std::atomic<std::size_t> count{0};
    std::atomic<Chunk*> next{nullptr};
  };

  // Consumer-owned state.
  Chunk* head_;
  std::size_t read_ = 0;
  std::uint64_t popped_ = 0;

  // Producer-owned state (separate line from the consumer's cursor).
  alignas(64) Chunk* tail_;
  std::uint64_t pushed_ = 0;
};

}  // namespace moongen::sim
