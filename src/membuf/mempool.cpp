#include "membuf/mempool.hpp"

#include <algorithm>

#include "telemetry/registry.hpp"

namespace moongen::membuf {

Mempool::Mempool(std::size_t capacity, InitFn init) {
  storage_.reserve(capacity);
  free_list_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i) {
    auto buf = std::make_unique<PktBuf>();
    buf->pool_ = this;
    if (init) init(*buf);
    free_list_.push_back(buf.get());
    storage_.push_back(std::move(buf));
  }
  low_watermark_ = capacity;
}

void Mempool::note_exhausted() {
  ++exhausted_events_;
  tm_exhausted_.add(1);
}

std::size_t Mempool::alloc_batch(std::span<PktBuf*> out, std::size_t frame_length) {
  lock();
  if (fp_alloc_fail_.installed() && fp_alloc_fail_.fire(fault_plane_->now_ps()) != nullptr) {
    // Injected transient exhaustion: the whole request fails, exactly as if
    // another queue had momentarily drained the pool.
    note_exhausted();
    unlock();
    return 0;
  }
  const std::size_t n = std::min(out.size(), free_list_.size());
  for (std::size_t i = 0; i < n; ++i) {
    PktBuf* buf = free_list_.back();
    free_list_.pop_back();
    buf->set_length(frame_length);
    buf->flags_ = OffloadFlags{};
    out[i] = buf;
  }
  if (n < out.size()) note_exhausted();
  low_watermark_ = std::min(low_watermark_, free_list_.size());
  unlock();
  return n;
}

void Mempool::bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix) {
  if (tm_exhausted_.valid()) return;  // already bound
  auto counter = tree.counter(prefix + ".exhausted");
  lock();
  counter.add(exhausted_events_);  // seed with history, as elsewhere
  tm_exhausted_ = counter;
  unlock();
}

void Mempool::bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix) {
  bind_telemetry(registry.shard(0), prefix);
}

void Mempool::install_faults(fault::FaultPlane& plane, const std::string& site) {
  auto point = plane.point(fault::FaultKind::kAllocFail, site);
  lock();
  fp_alloc_fail_ = point;
  // Probes pass the plane's virtual clock so time-windowed alloc_fail
  // rules gate correctly (a clock-less plane reports 0, as before).
  fault_plane_ = &plane;
  unlock();
}

PktBuf* Mempool::alloc(std::size_t frame_length) {
  PktBuf* buf = nullptr;
  (void)alloc_batch({&buf, 1}, frame_length);
  return buf;
}

void Mempool::free_batch(std::span<PktBuf* const> bufs) {
  lock();
  // Push in reverse: the freelist is LIFO, so a batch freed in array order
  // would come back reversed on the next alloc_batch. Reversing here makes
  // the steady-state alloc/free cycle return the same buffers in the same
  // positions, which keeps caches (hardware and script-side buf wrappers)
  // hot across batches.
  for (std::size_t i = bufs.size(); i > 0; --i) {
    if (bufs[i - 1] != nullptr) free_list_.push_back(bufs[i - 1]);
  }
  unlock();
}

void Mempool::free(PktBuf* buf) { free_batch({&buf, 1}); }

std::size_t Mempool::available() const {
  lock();
  const std::size_t n = free_list_.size();
  unlock();
  return n;
}

std::string Mempool::audit() const {
  lock();
  std::string err;
  if (free_list_.size() > storage_.size()) {
    err = "free list holds " + std::to_string(free_list_.size()) +
          " buffers but the pool owns only " + std::to_string(storage_.size());
  } else {
    // Membership + duplicate detection: binary-search each free-list entry
    // against a sorted index of the owned buffers (O(n log n) per audit).
    std::vector<const PktBuf*> owned;
    owned.reserve(storage_.size());
    for (const auto& buf : storage_) owned.push_back(buf.get());
    std::sort(owned.begin(), owned.end());
    std::vector<char> seen(owned.size(), 0);
    for (const PktBuf* buf : free_list_) {
      const auto it = std::lower_bound(owned.begin(), owned.end(), buf);
      if (buf == nullptr || it == owned.end() || *it != buf || buf->pool_ != this) {
        err = "free list contains a buffer not owned by this pool";
        break;
      }
      const auto idx = static_cast<std::size_t>(it - owned.begin());
      if (seen[idx] != 0) {
        err = "a buffer appears twice on the free list (double free)";
        break;
      }
      seen[idx] = 1;
    }
  }
  unlock();
  return err;
}

}  // namespace moongen::membuf
