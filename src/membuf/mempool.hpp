// Fixed-size packet-buffer pool with a pre-fill callback.
//
// Equivalent of `memory.createMemPool(function(buf) ... end)` in MoonGen
// (paper Listing 2): every buffer is initialized once at pool creation, so
// the transmit loop only needs to touch the fields that change per packet.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "membuf/pktbuf.hpp"
#include "telemetry/handles.hpp"

namespace moongen::telemetry {
class MetricRegistry;
}  // namespace moongen::telemetry

namespace moongen::membuf {

class Mempool {
 public:
  /// Called once per buffer at construction to pre-fill default contents.
  using InitFn = std::function<void(PktBuf&)>;

  /// Creates a pool of `capacity` buffers. `init` may be empty.
  explicit Mempool(std::size_t capacity = kDefaultCapacity, InitFn init = {});

  Mempool(const Mempool&) = delete;
  Mempool& operator=(const Mempool&) = delete;

  /// DPDK's default per-queue pool size.
  static constexpr std::size_t kDefaultCapacity = 2048;

  /// Allocates up to `out.size()` buffers with `frame_length` set.
  /// Returns the number actually allocated (< out.size() if exhausted).
  std::size_t alloc_batch(std::span<PktBuf*> out, std::size_t frame_length);

  /// Allocates a single buffer; nullptr if the pool is exhausted.
  PktBuf* alloc(std::size_t frame_length);

  /// Returns buffers to the pool. Flags are reset; contents are *not*
  /// erased (as in DPDK, recycled packets keep their previous bytes).
  void free_batch(std::span<PktBuf* const> bufs);
  void free(PktBuf* buf);

  [[nodiscard]] std::size_t capacity() const { return storage_.size(); }
  [[nodiscard]] std::size_t available() const;
  /// Buffers currently held by callers (capacity - available): the "in use"
  /// side of the conservation identity the health plane checks against the
  /// holders' own accounting.
  [[nodiscard]] std::size_t in_use() const { return capacity() - available(); }
  /// Smallest number of free buffers ever observed (diagnostic watermark).
  [[nodiscard]] std::size_t low_watermark() const { return low_watermark_; }

  /// Structural invariant audit (health plane): the free list must hold only
  /// distinct buffers owned by this pool, and no more than capacity. A
  /// double free or a foreign pointer corrupts this. Returns an empty
  /// string when consistent, else a description of the first violation.
  /// O(capacity) — call at window boundaries, not per allocation.
  [[nodiscard]] std::string audit() const;

  /// Times an allocation came back short (pool genuinely empty or an
  /// injected transient failure) — the signal the TX path's retry logic and
  /// the `<prefix>.exhausted` telemetry counter are built on.
  [[nodiscard]] std::uint64_t exhausted_events() const { return exhausted_events_; }

  /// Mirrors exhaustion events into `<prefix>.exhausted` of `tree`,
  /// resolving the counter handle once (per-shard metric API).
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix);
  /// Convenience overload: binds into the registry's default tree (shard 0).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);

  /// Arms the alloc-failure fault site: a fire makes the next alloc_batch
  /// return 0, as if the pool were momentarily drained. Probes run under
  /// the pool lock, so multi-threaded pools stay deterministic per seed.
  void install_faults(fault::FaultPlane& plane, const std::string& site);

 private:
  /// Tells the CPU this is a spin-wait: on x86 PAUSE backs off the
  /// speculative pipeline and yields the core to the lock holder on SMT
  /// siblings; on ARM YIELD is the equivalent hint.
  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#endif
  }

  void lock() const {
    while (lock_.test_and_set(std::memory_order_acquire)) {
      // Spin on a plain load first: re-running test_and_set keeps the cache
      // line in exclusive state and starves the unlocking thread.
      while (lock_.test(std::memory_order_relaxed)) cpu_relax();
    }
  }
  void unlock() const { lock_.clear(std::memory_order_release); }

  void note_exhausted();

  std::vector<std::unique_ptr<PktBuf>> storage_;
  std::vector<PktBuf*> free_list_;
  std::size_t low_watermark_;
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::uint64_t exhausted_events_ = 0;  // guarded by lock_
  telemetry::CounterHandle tm_exhausted_;
  fault::FaultPoint fp_alloc_fail_;
  fault::FaultPlane* fault_plane_ = nullptr;  // set with fp_alloc_fail_
};

}  // namespace moongen::membuf
