#include "membuf/buf_array.hpp"

#include "proto/checksum.hpp"
#include "proto/packet_view.hpp"

namespace moongen::membuf {

namespace {

void backoff_spin(std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#endif
  }
}

}  // namespace

std::size_t BufArray::alloc(std::size_t frame_length) {
  size_ = pool_->alloc_batch({bufs_.data(), bufs_.size()}, frame_length);
  last_shortfall_ = bufs_.size() - size_;
  last_retries_ = 0;
  return size_;
}

std::size_t BufArray::alloc(std::size_t frame_length, std::size_t max_count) {
  const std::size_t want = std::min(max_count, bufs_.size());
  size_ = pool_->alloc_batch({bufs_.data(), want}, frame_length);
  last_shortfall_ = want - size_;
  last_retries_ = 0;
  return size_;
}

std::size_t BufArray::alloc_full(std::size_t frame_length, unsigned max_retries) {
  std::size_t n = pool_->alloc_batch({bufs_.data(), bufs_.size()}, frame_length);
  unsigned attempt = 0;
  std::uint64_t spin = 64;
  while (n < bufs_.size() && attempt < max_retries) {
    backoff_spin(spin);
    spin *= 2;
    ++attempt;
    n += pool_->alloc_batch({bufs_.data() + n, bufs_.size() - n}, frame_length);
  }
  size_ = n;
  last_shortfall_ = bufs_.size() - n;
  last_retries_ = attempt;
  return size_;
}

void BufArray::free_all() {
  if (size_ == 0) return;
  // Buffers may come from different pools on the RX path; group by pool.
  for (std::size_t i = 0; i < size_; ++i) {
    PktBuf* buf = bufs_[i];
    if (buf != nullptr) buf->pool()->free(buf);
    bufs_[i] = nullptr;
  }
  size_ = 0;
}

void BufArray::offload_ip_checksums() {
  for (std::size_t i = 0; i < size_; ++i) bufs_[i]->flags().ip_checksum = true;
}

namespace {

/// Writes the pseudo-header sum into the L4 checksum field so the NIC can
/// finish the checksum over the payload (the hardware contract of the
/// Intel X540 [13]).
template <typename Header>
void prepare_l4_offload(PktBuf& buf, std::size_t checksum_offset) {
  proto::Ipv4PacketView view{buf.bytes()};
  auto& ip = view.ip();
  const auto l4 = view.l4_bytes();
  const std::uint32_t pseudo =
      proto::ipv4_pseudo_header_sum(ip, static_cast<std::uint16_t>(l4.size()));
  // Fold without complement: the NIC continues the sum from here.
  std::uint32_t folded = pseudo;
  while (folded >> 16) folded = (folded & 0xffff) + (folded >> 16);
  auto* csum = l4.data() + checksum_offset;
  csum[0] = static_cast<std::uint8_t>(folded >> 8);
  csum[1] = static_cast<std::uint8_t>(folded & 0xff);
}

}  // namespace

void BufArray::offload_udp_checksums() {
  for (std::size_t i = 0; i < size_; ++i) {
    prepare_l4_offload<proto::UdpHeader>(*bufs_[i], offsetof(proto::UdpHeader, checksum_be));
    bufs_[i]->flags().udp_checksum = true;
    bufs_[i]->flags().ip_checksum = true;
  }
}

void BufArray::offload_tcp_checksums() {
  for (std::size_t i = 0; i < size_; ++i) {
    prepare_l4_offload<proto::TcpHeader>(*bufs_[i], offsetof(proto::TcpHeader, checksum_be));
    bufs_[i]->flags().tcp_checksum = true;
    bufs_[i]->flags().ip_checksum = true;
  }
}

}  // namespace moongen::membuf
