// Packet buffer: the DPDK-mbuf equivalent.
//
// A PktBuf is a fixed-capacity, cache-line-aligned buffer owned by a
// Mempool. Buffers handed to a transmit queue must not be touched until the
// queue recycles them (paper Section 4.2): transmission is asynchronous and
// the "NIC" may fetch the bytes later. The Mempool/TxQueue pair enforces the
// same recycle-on-later-send contract as DPDK.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace moongen::membuf {

class Mempool;

/// Checksum-offload and rate-control metadata carried per buffer, the
/// equivalent of DPDK's ol_flags.
struct OffloadFlags {
  bool ip_checksum : 1 = false;   ///< NIC fills the IPv4 header checksum.
  bool udp_checksum : 1 = false;  ///< NIC finishes the UDP checksum (pseudo-header precomputed).
  bool tcp_checksum : 1 = false;  ///< NIC finishes the TCP checksum.
  /// Transmit the frame with a deliberately corrupted FCS. Used by the
  /// CRC-based software rate control (paper Section 8): receivers drop such
  /// frames in hardware before they reach any receive queue.
  bool invalid_crc : 1 = false;
};

class PktBuf {
 public:
  /// Data room per buffer. 2 KiB fits any non-jumbo frame, as in DPDK's
  /// default mbuf size.
  static constexpr std::size_t kDataRoom = 2048;

  PktBuf() = default;
  PktBuf(const PktBuf&) = delete;
  PktBuf& operator=(const PktBuf&) = delete;

  [[nodiscard]] std::uint8_t* data() { return data_; }
  [[nodiscard]] const std::uint8_t* data() const { return data_; }

  /// Frame bytes excluding the FCS (the NIC appends/checks the FCS).
  [[nodiscard]] std::size_t length() const { return length_; }
  void set_length(std::size_t len) { length_ = static_cast<std::uint32_t>(len); }

  [[nodiscard]] std::span<std::uint8_t> bytes() { return {data_, length_}; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return {data_, length_}; }

  OffloadFlags& flags() { return flags_; }
  [[nodiscard]] const OffloadFlags& flags() const { return flags_; }

  /// Hardware RX timestamp prepended by NICs that support timestamping all
  /// received packets (Intel 82580, paper Section 6). 0 when absent.
  [[nodiscard]] std::uint64_t rx_timestamp_ns() const { return rx_timestamp_ns_; }
  void set_rx_timestamp_ns(std::uint64_t t) { rx_timestamp_ns_ = t; }

  [[nodiscard]] Mempool* pool() const { return pool_; }

 private:
  friend class Mempool;

  alignas(64) std::uint8_t data_[kDataRoom];
  std::uint32_t length_ = 0;
  OffloadFlags flags_{};
  std::uint64_t rx_timestamp_ns_ = 0;
  Mempool* pool_ = nullptr;
};

}  // namespace moongen::membuf
