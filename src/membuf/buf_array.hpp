// Batch wrapper over packet buffers — MoonGen's `bufArray` (Listing 2).
//
// High packet rates require batch processing (paper Sections 4.2, 7.1):
// buffers are allocated, modified, offloaded and sent in batches of
// typically 32-128 packets. BufArray also implements the checksum-offload
// preparation (`offloadUdpChecksums` etc.): the pseudo-header sum is
// computed in software and the flag set so the NIC model finishes the sum,
// exactly as MoonGen must do on the X540 (Section 5.6.1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "membuf/mempool.hpp"
#include "membuf/pktbuf.hpp"

namespace moongen::membuf {

class BufArray {
 public:
  /// Default batch size; the sweet spot found for DPDK-style IO.
  static constexpr std::size_t kDefaultBatch = 64;

  explicit BufArray(Mempool& pool, std::size_t batch_size = kDefaultBatch)
      : pool_(&pool), bufs_(batch_size, nullptr), size_(0) {}

  /// Creates a free-standing array for RX use (no owning pool needed before
  /// the first `recv`); buffers received into it belong to the RX queue's
  /// pool.
  explicit BufArray(std::size_t batch_size = kDefaultBatch)
      : pool_(nullptr), bufs_(batch_size, nullptr), size_(0) {}

  /// Allocates a full batch of buffers of `frame_length` bytes from the
  /// pool. Returns the number allocated (== capacity unless exhausted).
  std::size_t alloc(std::size_t frame_length);

  /// Allocates at most `max_count` buffers (for the tail of a bounded run).
  std::size_t alloc(std::size_t frame_length, std::size_t max_count);

  /// Like alloc(), but on a short return retries the missing tail with
  /// bounded exponential backoff (spin-wait, no syscalls) — buffers free up
  /// as the TX ring recycles the previous batch. Gives up after
  /// `max_retries` rounds; check last_shortfall() for what is still
  /// missing. Never deadlocks: the bound covers the case where nothing
  /// will ever be freed.
  std::size_t alloc_full(std::size_t frame_length, unsigned max_retries = 8);

  /// Buffers the most recent alloc call asked for but did not get.
  [[nodiscard]] std::size_t last_shortfall() const { return last_shortfall_; }
  /// Backoff rounds the most recent alloc_full() needed (0 = first try).
  [[nodiscard]] unsigned last_retries() const { return last_retries_; }

  /// Returns all held buffers to their pool and clears the array.
  void free_all();

  /// Enables IPv4 header checksum offloading on all held buffers.
  void offload_ip_checksums();
  /// Enables UDP checksum offloading: computes the IPv4 pseudo-header sum
  /// in software, stores it in the packet's checksum field, sets the flag.
  void offload_udp_checksums();
  /// Enables TCP checksum offloading (same split as UDP).
  void offload_tcp_checksums();

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return bufs_.size(); }
  void set_size(std::size_t n) { size_ = n; }

  PktBuf*& operator[](std::size_t i) { return bufs_[i]; }
  PktBuf* const& operator[](std::size_t i) const { return bufs_[i]; }

  [[nodiscard]] std::span<PktBuf*> packets() { return {bufs_.data(), size_}; }
  [[nodiscard]] std::span<PktBuf* const> packets() const { return {bufs_.data(), size_}; }
  [[nodiscard]] std::span<PktBuf*> storage() { return {bufs_.data(), bufs_.size()}; }

  [[nodiscard]] auto begin() { return bufs_.begin(); }
  [[nodiscard]] auto end() { return bufs_.begin() + static_cast<std::ptrdiff_t>(size_); }

  [[nodiscard]] Mempool* pool() const { return pool_; }

 private:
  Mempool* pool_;
  std::vector<PktBuf*> bufs_;
  std::size_t size_;
  std::size_t last_shortfall_ = 0;
  unsigned last_retries_ = 0;
};

}  // namespace moongen::membuf
