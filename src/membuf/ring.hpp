// Fixed-capacity ring buffers.
//
// SpscRing: lock-free single-producer/single-consumer ring — the fast-path
// equivalent of a DPDK rte_ring in SP/SC mode, used for the loopback wiring
// between fast-path devices and for inter-task pipes where exactly one
// producer and one consumer task exist (the normal MoonGen task topology).
//
// BoundedRing: single-threaded bounded FIFO — a descriptor-ring stand-in
// for std::deque in the event-driven NIC model. A deque allocates/frees
// 512-byte chunks as elements flow through; this ring touches the heap only
// when the capacity changes.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace moongen::membuf {

/// Single-threaded bounded FIFO over a power-of-two slot array. Capacity is
/// a hard bound (like a hardware descriptor ring): push_back on a full ring
/// is the caller's error, guarded only by full()/size() checks at the call
/// site. Storage is lazy: it grows geometrically up to the bound as elements
/// arrive, so an idle 4096-entry RX ring costs nothing (NIC models carry
/// one ring per hardware queue — eager allocation would page in megabytes
/// per port).
template <typename T>
class BoundedRing {
 public:
  explicit BoundedRing(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Sets the logical capacity, preserving (up to `capacity`) contents in
  /// order. Storage already allocated is kept.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    const std::size_t keep = size() < capacity ? size() : capacity;
    if (keep == size()) return;
    // Shrinking below the current fill: drop the newest elements.
    for (std::size_t i = tail_ + keep; i != head_; ++i) slots_[i & mask_] = T{};
    head_ = tail_ + keep;
  }

  void push_back(T value) {
    if (size() == slots_.size()) grow();
    slots_[head_ & mask_] = std::move(value);
    ++head_;
  }

  /// Eagerly allocates storage for at least `n` elements (capped at the
  /// capacity bound). Components with an allocation-free steady-state
  /// contract call this up front instead of relying on the lazy growth,
  /// which would otherwise allocate on the first deep fill mid-run.
  void reserve(std::size_t n) {
    n = n < capacity_ ? n : capacity_;
    while (slots_.size() < n) grow();
  }

  [[nodiscard]] T& front() { return slots_[tail_ & mask_]; }
  [[nodiscard]] const T& front() const { return slots_[tail_ & mask_]; }

  /// Removes and returns the oldest element.
  T pop_front() {
    T out = std::move(slots_[tail_ & mask_]);
    ++tail_;
    return out;
  }

  void clear() {
    for (std::size_t i = tail_; i != head_; ++i) slots_[i & mask_] = T{};
    tail_ = head_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return head_ - tail_; }
  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] bool full() const { return size() >= capacity_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  void grow() {
    const std::size_t next_slots = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> next(next_slots);
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) next[i] = std::move(slots_[(tail_ + i) & mask_]);
    slots_ = std::move(next);
    mask_ = next_slots - 1;
    tail_ = 0;
    head_ = n;
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  // monotonically increasing; index = value & mask_
  std::size_t tail_ = 0;
};

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two; one slot is reserved to
  /// distinguish full from empty.
  explicit SpscRing(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer-side burst pop into `out`; returns number popped.
  std::size_t pop_burst(T* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max && pop(out[n])) ++n;
    return n;
  }

  [[nodiscard]] bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace moongen::membuf
