// Lock-free single-producer/single-consumer ring.
//
// The fast-path equivalent of a DPDK rte_ring in SP/SC mode: used for the
// loopback wiring between fast-path devices and for inter-task pipes where
// exactly one producer and one consumer task exist (the normal MoonGen
// task topology).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace moongen::membuf {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two; one slot is reserved to
  /// distinguish full from empty.
  explicit SpscRing(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer-side burst pop into `out`; returns number popped.
  std::size_t pop_burst(T* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max && pop(out[n])) ++n;
    return n;
  }

  [[nodiscard]] bool empty() const {
    return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace moongen::membuf
