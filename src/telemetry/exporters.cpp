#include "telemetry/exporters.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>

namespace moongen::telemetry {

namespace {

constexpr double kQuantiles[] = {25.0, 50.0, 75.0, 90.0, 99.0, 99.9};
constexpr const char* kQuantileKeys[] = {"p25", "p50", "p75", "p90", "p99", "p999"};

void json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  os << buf;
}

void json_histogram(std::ostream& os, const LogLinearHistogram& h) {
  os << "{\"count\":" << h.total() << ",\"overflow\":" << h.overflow() << ",\"min\":" << h.min()
     << ",\"max\":" << h.max() << ",\"mean\":";
  json_number(os, h.mean());
  for (std::size_t q = 0; q < std::size(kQuantiles); ++q)
    os << ",\"" << kQuantileKeys[q] << "\":" << h.percentile(kQuantiles[q]);
  os << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket(i) == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"lower\":" << h.bucket_lower(i) << ",\"width\":" << h.bucket_width(i)
       << ",\"count\":" << h.bucket(i) << '}';
  }
  os << "]}";
}

std::string sanitize_prometheus(const std::string& prefix, const std::string& name) {
  std::string out = prefix;
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void csv_row(std::ostream& os, std::uint64_t ts, const std::string& metric, const char* type,
             const char* field, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  os << ts << ',' << metric << ',' << type << ',' << field << ',' << buf << '\n';
}

}  // namespace

void write_json(std::ostream& os, const Snapshot& snap) {
  os << "{\"schema\":\"moongen-telemetry-v1\",\"timestamp_ns\":" << snap.timestamp_ns;
  os << ",\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) os << ',';
    json_string(os, snap.counters[i].name);
    os << ':' << snap.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) os << ',';
    json_string(os, snap.gauges[i].name);
    os << ':';
    json_number(os, snap.gauges[i].value);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i > 0) os << ',';
    json_string(os, snap.histograms[i].name);
    os << ':';
    json_histogram(os, snap.histograms[i].hist);
  }
  os << "}}";
}

void write_json_series(std::ostream& os, const std::vector<Snapshot>& series) {
  os << "{\"schema\":\"moongen-telemetry-series-v1\",\"snapshots\":[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) os << ',';
    write_json(os, series[i]);
  }
  os << "]}";
}

void write_csv(std::ostream& os, const Snapshot& snap, bool header) {
  if (header) os << "timestamp_ns,metric,type,field,value\n";
  for (const auto& c : snap.counters)
    csv_row(os, snap.timestamp_ns, c.name, "counter", "value", static_cast<double>(c.value));
  for (const auto& g : snap.gauges) csv_row(os, snap.timestamp_ns, g.name, "gauge", "value", g.value);
  for (const auto& h : snap.histograms) {
    csv_row(os, snap.timestamp_ns, h.name, "histogram", "count",
            static_cast<double>(h.hist.total()));
    csv_row(os, snap.timestamp_ns, h.name, "histogram", "min", static_cast<double>(h.hist.min()));
    csv_row(os, snap.timestamp_ns, h.name, "histogram", "max", static_cast<double>(h.hist.max()));
    csv_row(os, snap.timestamp_ns, h.name, "histogram", "mean", h.hist.mean());
    for (std::size_t q = 0; q < std::size(kQuantiles); ++q)
      csv_row(os, snap.timestamp_ns, h.name, "histogram", kQuantileKeys[q],
              static_cast<double>(h.hist.percentile(kQuantiles[q])));
  }
}

void write_csv_series(std::ostream& os, const std::vector<Snapshot>& series) {
  for (std::size_t i = 0; i < series.size(); ++i) write_csv(os, series[i], i == 0);
}

void write_prometheus(std::ostream& os, const Snapshot& snap, const std::string& prefix) {
  for (const auto& c : snap.counters) {
    const auto name = sanitize_prometheus(prefix, c.name);
    os << "# TYPE " << name << " counter\n" << name << ' ' << c.value << '\n';
  }
  for (const auto& g : snap.gauges) {
    const auto name = sanitize_prometheus(prefix, g.name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", g.value);
    os << "# TYPE " << name << " gauge\n" << name << ' ' << buf << '\n';
  }
  for (const auto& h : snap.histograms) {
    const auto name = sanitize_prometheus(prefix, h.name);
    os << "# TYPE " << name << " summary\n";
    for (std::size_t q = 0; q < std::size(kQuantiles); ++q) {
      char qbuf[16];
      std::snprintf(qbuf, sizeof(qbuf), "%g", kQuantiles[q] / 100.0);
      os << name << "{quantile=\"" << qbuf << "\"} " << h.hist.percentile(kQuantiles[q]) << '\n';
    }
    char sum[32];
    std::snprintf(sum, sizeof(sum), "%.12g", h.hist.sum());
    os << name << "_sum " << sum << '\n';
    os << name << "_count " << h.hist.total() << '\n';
  }
}

void JsonExporter::write(std::ostream& os, const Snapshot& snapshot) {
  write_json(os, snapshot);
  os << '\n';
}

void CsvExporter::write(std::ostream& os, const Snapshot& snapshot) {
  write_csv(os, snapshot, !header_written_);
  header_written_ = true;
}

void PrometheusExporter::write(std::ostream& os, const Snapshot& snapshot) {
  write_prometheus(os, snapshot, prefix_);
}

std::unique_ptr<Exporter> make_exporter(std::string_view format) {
  if (format == "json") return std::make_unique<JsonExporter>();
  if (format == "csv") return std::make_unique<CsvExporter>();
  if (format == "prometheus" || format == "prom") return std::make_unique<PrometheusExporter>();
  return nullptr;
}

bool dump_json_to_file(const std::string& path, const Snapshot& snap) {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os, snap);
  os << '\n';
  return static_cast<bool>(os);
}

bool dump_json_series_to_file(const std::string& path, const std::vector<Snapshot>& series) {
  std::ofstream os(path);
  if (!os) return false;
  write_json_series(os, series);
  os << '\n';
  return static_cast<bool>(os);
}

}  // namespace moongen::telemetry
