// Resolve-once metric handles: the redesigned hot-path telemetry API.
//
// The original MetricRegistry hands out shared ShardedCounter references:
// every update pays a thread->shard index lookup, and every instrument
// carries shard_count() cache-line-padded atomics even when exactly one
// thread ever writes it. This header replaces that with a per-shard
// *metric tree* (MetricTree): each simulation shard owns one tree, a
// component resolves its named slots exactly once at wiring time
// (bind_telemetry), and a hot-path update through the returned handle is a
// single relaxed add on a slot no other shard writes. Trees are merged
// into one name-sorted Snapshot at quiesced window boundaries (the
// ParallelRuntime barrier), where cross-shard sums are exact.
//
// Contracts:
//  * Registration (counter()/gauge()/histogram()) takes the tree mutex and
//    may allocate; handles stay valid for the tree's lifetime.
//  * Counter/gauge slots are relaxed atomics: any thread may bump any
//    handle without tearing, and sums are exact once writers quiesce.
//  * A histogram slot is plain (recording is not atomic): it must have a
//    single writer thread — the shard that bound it. That is the same
//    discipline ShardedHistogram's per-thread shards encoded implicitly.
//  * Handles are null-tolerant: a default-constructed handle is a no-op
//    sink, so components can drop the `if (tm_ != nullptr)` dance.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "telemetry/log_linear_histogram.hpp"

namespace moongen::telemetry {

struct CounterSlot {
  std::atomic<std::uint64_t> value{0};
};

struct GaugeSlot {
  std::atomic<double> value{0.0};
};

/// Monotonic counter handle. One relaxed fetch_add per update; no shard
/// lookup, no name lookup, no allocation.
class CounterHandle {
 public:
  CounterHandle() = default;

  void add(std::uint64_t n = 1) {
    if (slot_ != nullptr) slot_->value.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return slot_ != nullptr ? slot_->value.load(std::memory_order_relaxed) : 0;
  }
  [[nodiscard]] bool valid() const { return slot_ != nullptr; }

 private:
  friend class MetricTree;
  explicit CounterHandle(CounterSlot* slot) : slot_(slot) {}
  CounterSlot* slot_ = nullptr;
};

/// Last-writer-wins scalar handle.
class GaugeHandle {
 public:
  GaugeHandle() = default;

  void set(double v) {
    if (slot_ != nullptr) slot_->value.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return slot_ != nullptr ? slot_->value.load(std::memory_order_relaxed) : 0.0;
  }
  [[nodiscard]] bool valid() const { return slot_ != nullptr; }

 private:
  friend class MetricTree;
  explicit GaugeHandle(GaugeSlot* slot) : slot_(slot) {}
  GaugeSlot* slot_ = nullptr;
};

/// Histogram handle: single-writer (the owning shard's thread), readers
/// only at quiesced instants.
class HistogramHandle {
 public:
  HistogramHandle() = default;

  void record(std::uint64_t value, std::uint64_t count = 1) {
    if (slot_ != nullptr) slot_->record(value, count);
  }
  /// Folds an identically-configured histogram into the slot (window
  /// publishers push merged windows this way). Same single-writer rule.
  void merge(const LogLinearHistogram& other) {
    if (slot_ != nullptr) slot_->merge(other);
  }
  [[nodiscard]] bool valid() const { return slot_ != nullptr; }
  /// Quiesced-read access (tests, checkers). Null when the handle is empty.
  [[nodiscard]] const LogLinearHistogram* get() const { return slot_; }

 private:
  friend class MetricTree;
  explicit HistogramHandle(LogLinearHistogram* slot) : slot_(slot) {}
  LogLinearHistogram* slot_ = nullptr;
};

/// One shard's namespace of metric slots. Owned by MetricRegistry (one per
/// simulation shard, grown on demand); components resolve handles once at
/// bind time and never touch the tree again from hot loops.
class MetricTree {
 public:
  MetricTree() = default;
  MetricTree(const MetricTree&) = delete;
  MetricTree& operator=(const MetricTree&) = delete;

  /// Returns a handle to the counter named `name`, creating the slot on
  /// first use. Resolving the same name twice yields the same slot.
  [[nodiscard]] CounterHandle counter(const std::string& name);

  [[nodiscard]] GaugeHandle gauge(const std::string& name);

  /// `config` applies on first creation; re-resolving with a different
  /// geometry throws std::invalid_argument (merging would corrupt).
  [[nodiscard]] HistogramHandle histogram(const std::string& name, HistogramConfig config = {});

  [[nodiscard]] std::size_t slot_count() const;

  /// Snapshot-side enumeration, used by MetricRegistry::snapshot to merge
  /// trees at quiesced instants. Callbacks run under the tree mutex.
  void visit_counters(const std::function<void(const std::string&, std::uint64_t)>& fn) const;
  void visit_gauges(const std::function<void(const std::string&, double)>& fn) const;
  void visit_histograms(
      const std::function<void(const std::string&, const LogLinearHistogram&)>& fn) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<CounterSlot>> counters_;
  std::map<std::string, std::unique_ptr<GaugeSlot>> gauges_;
  std::map<std::string, std::unique_ptr<LogLinearHistogram>> histograms_;
};

}  // namespace moongen::telemetry
