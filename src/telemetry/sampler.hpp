// Periodic registry snapshots into a bounded time-series ring.
//
// Works in both of the repo's time domains (DESIGN.md Section 1): driven by
// a wall-clock TimeSource from a background thread for the real-time
// benchmarks, or polled from a scheduled event against virtual time in the
// simulation (see examples/l2_load_latency). The ring keeps the most recent
// `capacity` snapshots; exporters turn the series into JSON/CSV.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "stats/counters.hpp"
#include "telemetry/registry.hpp"

namespace moongen::telemetry {

struct SamplerConfig {
  std::uint64_t period_ns = 1'000'000'000;  // 1 s, like the rate counters
  std::size_t capacity = 512;               // ring bound: oldest snapshots drop
};

class Sampler {
 public:
  Sampler(const MetricRegistry& registry, stats::TimeSource time_source,
          SamplerConfig config = {});
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Takes a snapshot if at least one period elapsed since the last one
  /// (catching up with a single snapshot after a long gap). Returns true if
  /// a snapshot was taken. Drive this from a simulation event or any loop.
  bool poll();

  /// Takes a snapshot unconditionally (e.g. one final sample at shutdown).
  void sample_now();

  /// Spawns a background thread that polls until stop(). For wall-clock
  /// time sources only.
  void start();
  void stop();

  /// Copy of the ring, oldest first.
  [[nodiscard]] std::vector<Snapshot> series() const;

  [[nodiscard]] std::size_t size() const;

 private:
  void push(Snapshot snap);

  const MetricRegistry& registry_;
  stats::TimeSource time_;
  SamplerConfig cfg_;
  std::uint64_t next_due_ns_;

  mutable std::mutex mutex_;
  std::deque<Snapshot> ring_;

  std::thread thread_;
  std::atomic<bool> thread_running_{false};
};

}  // namespace moongen::telemetry
