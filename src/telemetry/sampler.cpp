#include "telemetry/sampler.hpp"

#include <chrono>
#include <utility>

namespace moongen::telemetry {

Sampler::Sampler(const MetricRegistry& registry, stats::TimeSource time_source,
                 SamplerConfig config)
    : registry_(registry), time_(std::move(time_source)), cfg_(config), next_due_ns_(time_()) {}

Sampler::~Sampler() { stop(); }

bool Sampler::poll() {
  const std::uint64_t now = time_();
  if (now < next_due_ns_) return false;
  // One snapshot per poll even after a long gap: the ring records what was
  // observed, not a fabricated backfill.
  next_due_ns_ = now + cfg_.period_ns;
  push(registry_.snapshot(now));
  return true;
}

void Sampler::sample_now() { push(registry_.snapshot(time_())); }

void Sampler::start() {
  if (thread_running_.exchange(true)) return;
  thread_ = std::thread([this] {
    while (thread_running_.load(std::memory_order_relaxed)) {
      poll();
      // Sleep a fraction of the period so stop() stays responsive without
      // missing a due snapshot by much.
      std::this_thread::sleep_for(std::chrono::nanoseconds(cfg_.period_ns / 10 + 1));
    }
  });
}

void Sampler::stop() {
  if (!thread_running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void Sampler::push(Snapshot snap) {
  std::scoped_lock lock(mutex_);
  ring_.push_back(std::move(snap));
  while (ring_.size() > cfg_.capacity) ring_.pop_front();
}

std::vector<Snapshot> Sampler::series() const {
  std::scoped_lock lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::size_t Sampler::size() const {
  std::scoped_lock lock(mutex_);
  return ring_.size();
}

}  // namespace moongen::telemetry
