#include "telemetry/log_linear_histogram.hpp"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <stdexcept>

#include "telemetry/sharded_counter.hpp"

namespace moongen::telemetry {

LogLinearHistogram::LogLinearHistogram(HistogramConfig config) : cfg_(config) {
  if (cfg_.sub_bucket_bits < 1 || cfg_.sub_bucket_bits > 20)
    throw std::invalid_argument("LogLinearHistogram: sub_bucket_bits must be in [1, 20]");
  if (cfg_.max_value == 0)
    throw std::invalid_argument("LogLinearHistogram: max_value must be > 0");
  buckets_.resize(index_for(cfg_.max_value) + 1, 0);
}

std::size_t LogLinearHistogram::index_for(std::uint64_t value) const {
  value = std::min(value, cfg_.max_value);
  const std::uint64_t sub_count = 1ull << cfg_.sub_bucket_bits;
  if (value < sub_count) return static_cast<std::size_t>(value);
  // value has bit_width e + sub_bucket_bits for some e >= 1; shifting by e
  // places it into [sub_count/2, sub_count): one of sub_count/2 linear
  // sub-buckets of width 2^e within that power-of-two range.
  const unsigned e = static_cast<unsigned>(std::bit_width(value)) - cfg_.sub_bucket_bits;
  const std::uint64_t sub = (value >> e) - sub_count / 2;
  return static_cast<std::size_t>(sub_count + (e - 1) * (sub_count / 2) + sub);
}

std::uint64_t LogLinearHistogram::bucket_lower(std::size_t i) const {
  const std::uint64_t sub_count = 1ull << cfg_.sub_bucket_bits;
  if (i < sub_count) return i;
  const std::uint64_t off = i - sub_count;
  const unsigned e = static_cast<unsigned>(off / (sub_count / 2)) + 1;
  const std::uint64_t sub = off % (sub_count / 2);
  return (sub + sub_count / 2) << e;
}

std::uint64_t LogLinearHistogram::bucket_width(std::size_t i) const {
  const std::uint64_t sub_count = 1ull << cfg_.sub_bucket_bits;
  if (i < sub_count) return 1;
  const unsigned e = static_cast<unsigned>((i - sub_count) / (sub_count / 2)) + 1;
  return 1ull << e;
}

void LogLinearHistogram::record(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (value >= cfg_.max_value) {
    overflow_ += count;
  } else {
    buckets_[index_for(value)] += count;
  }
  total_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

std::uint64_t LogLinearHistogram::percentile(double p) const {
  if (total_ == 0) return 0;
  const auto target =
      static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(total_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return bucket_lower(i);
  }
  return cfg_.max_value;  // in overflow
}

void LogLinearHistogram::print(std::ostream& os, double min_fraction) const {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double frac = static_cast<double>(buckets_[i]) / static_cast<double>(total_);
    if (frac < min_fraction) continue;
    os << std::setw(10) << bucket_lower(i) << "  " << std::setw(10) << buckets_[i] << "  "
       << std::fixed << std::setprecision(2) << frac * 100.0 << "%\n";
  }
  if (overflow_ > 0) os << "  overflow  " << overflow_ << "\n";
}

void LogLinearHistogram::merge(const LogLinearHistogram& other) {
  if (other.cfg_.sub_bucket_bits != cfg_.sub_bucket_bits ||
      other.cfg_.max_value != cfg_.max_value)
    throw std::invalid_argument("LogLinearHistogram::merge: geometry mismatch");
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  overflow_ += other.overflow_;
  total_ += other.total_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

ShardedHistogram::ShardedHistogram(HistogramConfig config) : cfg_(config) {
  shards_.reserve(shard_count());
  for (std::size_t i = 0; i < shard_count(); ++i)
    shards_.push_back(std::make_unique<Shard>(cfg_));
}

void ShardedHistogram::record(std::uint64_t value, std::uint64_t count) {
  auto& shard = *shards_[shard_index_of_this_thread() % shards_.size()];
  std::scoped_lock lock(shard.mutex);
  shard.hist.record(value, count);
}

LogLinearHistogram ShardedHistogram::merged() const {
  LogLinearHistogram out(cfg_);
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    out.merge(shard->hist);
  }
  return out;
}

}  // namespace moongen::telemetry
