// HDR-style log-linear histogram for values spanning ns to ms.
//
// The fixed-width stats::Histogram is ideal when the bin width equals the
// NIC timestamp granularity (Figure 8), but a latency distribution that
// spans 300 ns of fiber loopback and 2 ms of DuT buffer bloat (Figure 11)
// either wastes memory or loses resolution with fixed bins. The log-linear
// layout keeps a bounded *relative* error instead: values below
// 2^sub_bucket_bits get exact unit-width bins, and every power-of-two range
// above is split into 2^(sub_bucket_bits-1) linear sub-buckets, so any
// recorded value lands in a bucket no wider than value * 2^(1-sub_bucket_bits).
//
// Histograms with identical geometry merge losslessly, which is what makes
// per-thread shards (ShardedHistogram) and cross-run aggregation work.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace moongen::telemetry {

struct HistogramConfig {
  /// Buckets per power-of-two range; relative error <= 2^(1-sub_bucket_bits)
  /// (default 1/16 = 6.25 %).
  unsigned sub_bucket_bits = 5;
  /// Values >= max_value are accumulated in a final overflow bin.
  std::uint64_t max_value = 10'000'000'000ull;  // 10 s in ns
};

class LogLinearHistogram {
 public:
  explicit LogLinearHistogram(HistogramConfig config = {});

  void record(std::uint64_t value, std::uint64_t count = 1);

  [[nodiscard]] const HistogramConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0; }
  [[nodiscard]] std::uint64_t min() const { return total_ > 0 ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return total_ > 0 ? max_ : 0; }

  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

  /// Bucket index containing `value` (values >= max_value are clamped into
  /// the last bucket; the overflow bin is separate).
  [[nodiscard]] std::size_t index_for(std::uint64_t value) const;
  /// Lowest value mapping into bucket i.
  [[nodiscard]] std::uint64_t bucket_lower(std::size_t i) const;
  /// Width of bucket i in value units.
  [[nodiscard]] std::uint64_t bucket_width(std::size_t i) const;

  /// p in [0, 100]; lower edge of the bucket holding the p-th percentile
  /// sample (same contract as stats::Histogram::percentile; overflow counts
  /// as max_value).
  [[nodiscard]] std::uint64_t percentile(double p) const;
  [[nodiscard]] std::uint64_t median() const { return percentile(50.0); }

  /// Prints "lower_edge count fraction%" rows for all non-empty buckets —
  /// the stats::Histogram::print contract.
  void print(std::ostream& os, double min_fraction = 0.0) const;

  /// Merges a histogram with identical geometry; throws
  /// std::invalid_argument on mismatching sub_bucket_bits or max_value.
  void merge(const LogLinearHistogram& other);

  /// Clears every bucket and statistic, keeping the geometry (and the
  /// bucket storage — no allocation). Windowed histograms (RttPlane) reset
  /// in place between windows.
  void reset() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
    overflow_ = 0;
    sum_ = 0.0;
    min_ = UINT64_MAX;
    max_ = 0;
  }

 private:
  HistogramConfig cfg_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t overflow_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

/// Thread-safe front for LogLinearHistogram: one shard per recording thread
/// (same thread->shard map as ShardedCounter), each guarded by its own
/// mutex, so a `record` takes an uncontended lock on a shard no other
/// thread writes. `merged()` folds all shards into one snapshot.
class ShardedHistogram {
 public:
  explicit ShardedHistogram(HistogramConfig config = {});
  ShardedHistogram(const ShardedHistogram&) = delete;
  ShardedHistogram& operator=(const ShardedHistogram&) = delete;

  void record(std::uint64_t value, std::uint64_t count = 1);

  [[nodiscard]] const HistogramConfig& config() const { return cfg_; }

  /// Merge of all shards at the time of the call.
  [[nodiscard]] LogLinearHistogram merged() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    LogLinearHistogram hist;
    explicit Shard(HistogramConfig cfg) : hist(cfg) {}
  };

  HistogramConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace moongen::telemetry
