// Machine-readable views of registry snapshots.
//
// Three formats, matching how the bench/fig* suite and external tooling
// consume measurements ("Tools for Network Traffic Generation" makes
// cross-tool comparison depend on structured output):
//  * JSON: full fidelity incl. histogram buckets — the `--json` path of the
//    benches/examples; schema documented in DESIGN.md ("Telemetry").
//  * CSV: flat `timestamp_ns,metric,type,field,value` rows for spreadsheets
//    and quick plotting.
//  * Prometheus text exposition: counters/gauges plus summary quantiles,
//    for scraping a long-running generator.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace moongen::telemetry {

/// One snapshot as a JSON object (schema "moongen-telemetry-v1").
void write_json(std::ostream& os, const Snapshot& snapshot);

/// A snapshot series as {"schema": "moongen-telemetry-series-v1",
/// "snapshots": [...]}.
void write_json_series(std::ostream& os, const std::vector<Snapshot>& series);

/// CSV rows for one snapshot; `header` prepends the column line.
void write_csv(std::ostream& os, const Snapshot& snapshot, bool header = true);

/// CSV rows for a series under a single header.
void write_csv_series(std::ostream& os, const std::vector<Snapshot>& series);

/// Prometheus text exposition format. Metric names are sanitized to
/// [a-zA-Z0-9_:] and prefixed with `prefix`.
void write_prometheus(std::ostream& os, const Snapshot& snapshot,
                      const std::string& prefix = "moongen_");

/// Convenience: open `path`, write one JSON snapshot, return false on I/O
/// failure instead of throwing (benches report and move on).
bool dump_json_to_file(const std::string& path, const Snapshot& snapshot);
bool dump_json_series_to_file(const std::string& path, const std::vector<Snapshot>& series);

}  // namespace moongen::telemetry
