// Machine-readable views of registry snapshots.
//
// Three formats, matching how the bench/fig* suite and external tooling
// consume measurements ("Tools for Network Traffic Generation" makes
// cross-tool comparison depend on structured output):
//  * JSON: full fidelity incl. histogram buckets — the `--json` path of the
//    benches/examples; schema documented in DESIGN.md ("Telemetry").
//  * CSV: flat `timestamp_ns,metric,type,field,value` rows for spreadsheets
//    and quick plotting.
//  * Prometheus text exposition: counters/gauges plus summary quantiles,
//    for scraping a long-running generator.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/registry.hpp"

namespace moongen::telemetry {

/// One serialization format behind a uniform interface: `write` renders a
/// single Snapshot to `os`, terminated by a newline, so a sequence of
/// calls produces a valid stream (newline-delimited JSON, CSV rows under
/// one header, repeated Prometheus expositions). The streaming telemetry
/// shard and the end-of-run `--json` path both go through the same
/// underlying serializers (write_json & friends below), so a metric
/// renders identically no matter which path exported it.
class Exporter {
 public:
  virtual ~Exporter() = default;
  virtual void write(std::ostream& os, const Snapshot& snapshot) = 0;
  /// Format tag ("json", "csv", "prometheus") — stream headers, file names.
  [[nodiscard]] virtual std::string_view format() const = 0;
};

/// Newline-delimited "moongen-telemetry-v1" objects.
class JsonExporter final : public Exporter {
 public:
  void write(std::ostream& os, const Snapshot& snapshot) override;
  [[nodiscard]] std::string_view format() const override { return "json"; }
};

/// Flat CSV rows; the column header is emitted once, before the first
/// snapshot, so a stream of writes forms one coherent CSV document.
class CsvExporter final : public Exporter {
 public:
  void write(std::ostream& os, const Snapshot& snapshot) override;
  [[nodiscard]] std::string_view format() const override { return "csv"; }

 private:
  bool header_written_ = false;
};

/// Prometheus text exposition (one full exposition per snapshot).
class PrometheusExporter final : public Exporter {
 public:
  explicit PrometheusExporter(std::string prefix = "moongen_") : prefix_(std::move(prefix)) {}
  void write(std::ostream& os, const Snapshot& snapshot) override;
  [[nodiscard]] std::string_view format() const override { return "prometheus"; }

 private:
  std::string prefix_;
};

/// Exporter for `format` in {"json", "csv", "prometheus"/"prom"}; nullptr
/// on an unknown format (callers report and fall back).
std::unique_ptr<Exporter> make_exporter(std::string_view format);

/// One snapshot as a JSON object (schema "moongen-telemetry-v1").
void write_json(std::ostream& os, const Snapshot& snapshot);

/// A snapshot series as {"schema": "moongen-telemetry-series-v1",
/// "snapshots": [...]}.
void write_json_series(std::ostream& os, const std::vector<Snapshot>& series);

/// CSV rows for one snapshot; `header` prepends the column line.
void write_csv(std::ostream& os, const Snapshot& snapshot, bool header = true);

/// CSV rows for a series under a single header.
void write_csv_series(std::ostream& os, const std::vector<Snapshot>& series);

/// Prometheus text exposition format. Metric names are sanitized to
/// [a-zA-Z0-9_:] and prefixed with `prefix`.
void write_prometheus(std::ostream& os, const Snapshot& snapshot,
                      const std::string& prefix = "moongen_");

/// Convenience: open `path`, write one JSON snapshot, return false on I/O
/// failure instead of throwing (benches report and move on).
bool dump_json_to_file(const std::string& path, const Snapshot& snapshot);
bool dump_json_series_to_file(const std::string& path, const std::vector<Snapshot>& series);

}  // namespace moongen::telemetry
