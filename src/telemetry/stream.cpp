#include "telemetry/stream.hpp"

#include <stdexcept>
#include <utility>

namespace moongen::telemetry {

TelemetryStream::TelemetryStream(MetricRegistry& registry, TelemetryStreamConfig cfg)
    : registry_(registry), cfg_(std::move(cfg)) {
  exporter_ = make_exporter(cfg_.format);
  if (exporter_ == nullptr)
    throw std::invalid_argument("TelemetryStream: unknown format '" + cfg_.format + "'");
  out_.open(cfg_.path, std::ios::out | std::ios::trunc);
  if (!out_.is_open())
    throw std::runtime_error("TelemetryStream: cannot open '" + cfg_.path + "'");
}

void TelemetryStream::tick(std::uint64_t now_ps) {
  const Snapshot snap = registry_.snapshot((now_ps + 500) / 1000);
  exporter_->write(out_, snap);
  if (plane_ != nullptr) {
    // Closed windows are retained in a bounded deque; stream whatever is
    // still held of the ones closed since the last tick. With any sane
    // tick period (>= window period) nothing is ever evicted unseen.
    const std::uint64_t closed = plane_->windows_closed();
    const auto& retained = plane_->windows();
    std::uint64_t first_retained = plane_->windows_evicted();
    std::uint64_t from = windows_streamed_ < first_retained ? first_retained : windows_streamed_;
    for (std::uint64_t i = from; i < closed; ++i)
      RttPlane::write_window_json(out_, retained[static_cast<std::size_t>(i - first_retained)]);
    windows_streamed_ = closed;
  }
  out_.flush();
  ++ticks_;
}

}  // namespace moongen::telemetry
