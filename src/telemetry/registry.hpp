// MetricRegistry: the process-wide namespace of telemetry instruments.
//
// Since the per-shard metric API redesign (DESIGN.md Section 15) the
// registry is a collection of per-shard MetricTrees (handles.hpp):
// components resolve CounterHandle/GaugeHandle/HistogramHandle once at
// wiring time from the tree of the simulation shard that owns them, and
// hot-path updates are raw slot bumps with no name or shard lookup.
// `snapshot()` merges every tree into one consistent, name-sorted view for
// the Sampler and the exporters: counters sum across trees, histograms
// merge losslessly (identical geometry enforced), gauges are
// last-writer-wins in shard order.
//
// The name-keyed shared-instrument accessors (`counter()` / `gauge()` /
// `histogram()`) were a one-release deprecated shim after the per-shard
// redesign; they are gone — resolve handles via `shard(i).counter(name)`.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/handles.hpp"
#include "telemetry/log_linear_histogram.hpp"

namespace moongen::telemetry {

struct CounterSample {
  std::string name;
  std::uint64_t value;
};

struct GaugeSample {
  std::string name;
  double value;
};

struct HistogramSample {
  std::string name;
  LogLinearHistogram hist;
};

/// Point-in-time view of every metric in a registry, name-sorted.
struct Snapshot {
  std::uint64_t timestamp_ns = 0;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The metric tree of simulation shard `index`, created on first use.
  /// Tree 0 doubles as the default tree for single-shard and main-thread
  /// components. References stay valid for the registry's lifetime.
  [[nodiscard]] MetricTree& shard(std::size_t index = 0);

  /// Number of shard trees created so far.
  [[nodiscard]] std::size_t tree_count() const;

  /// Merged view across every shard tree. Exact at quiesced instants
  /// (window boundaries, after run_until).
  [[nodiscard]] Snapshot snapshot(std::uint64_t timestamp_ns = 0) const;

  // --- shard-agnostic reads -------------------------------------------------
  // Sum/merge the named instrument across every tree, without creating it
  // (absent names read as zero/empty). These are the read-side replacement
  // for the old `registry.counter(name).value()` patterns: exact at
  // quiesced instants, no knowledge of which shard wrote it.

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  /// Last-writer-wins in (tree 0, tree 1, ...) order.
  [[nodiscard]] double gauge_value(const std::string& name) const;
  [[nodiscard]] LogLinearHistogram histogram_merged(const std::string& name) const;

  /// Distinct instrument names across all trees.
  [[nodiscard]] std::size_t metric_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<MetricTree>> trees_;
};

}  // namespace moongen::telemetry
