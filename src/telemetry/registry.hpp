// MetricRegistry: the process-wide namespace of telemetry instruments.
//
// Subsystems register named counters / gauges / histograms once (at wiring
// time, e.g. Port::bind_telemetry) and then write through the returned
// reference from their hot loops without ever touching the registry again:
// registration takes a mutex, updates are lock-free (ShardedCounter) or
// shard-local (ShardedHistogram). `snapshot()` materializes a consistent,
// name-sorted view for the Sampler and the exporters.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/log_linear_histogram.hpp"
#include "telemetry/sharded_counter.hpp"

namespace moongen::telemetry {

struct CounterSample {
  std::string name;
  std::uint64_t value;
};

struct GaugeSample {
  std::string name;
  double value;
};

struct HistogramSample {
  std::string name;
  LogLinearHistogram hist;
};

/// Point-in-time view of every metric in a registry, name-sorted.
struct Snapshot {
  std::uint64_t timestamp_ns = 0;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the counter named `name`, creating it on first use. The
  /// reference stays valid for the registry's lifetime.
  ShardedCounter& counter(const std::string& name);

  Gauge& gauge(const std::string& name);

  /// Returns the histogram named `name`; `config` applies on first creation
  /// and throws std::invalid_argument if a later caller asks for the same
  /// name with a different geometry (merging such shards would corrupt).
  ShardedHistogram& histogram(const std::string& name, HistogramConfig config = {});

  [[nodiscard]] Snapshot snapshot(std::uint64_t timestamp_ns = 0) const;

  [[nodiscard]] std::size_t metric_count() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<ShardedCounter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ShardedHistogram>> histograms_;
};

}  // namespace moongen::telemetry
