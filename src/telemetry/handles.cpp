#include "telemetry/handles.hpp"

#include <stdexcept>

namespace moongen::telemetry {

CounterHandle MetricTree::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<CounterSlot>();
  return CounterHandle{slot.get()};
}

GaugeHandle MetricTree::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<GaugeSlot>();
  return GaugeHandle{slot.get()};
}

HistogramHandle MetricTree::histogram(const std::string& name, HistogramConfig config) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<LogLinearHistogram>(config);
  } else if (slot->config().sub_bucket_bits != config.sub_bucket_bits ||
             slot->config().max_value != config.max_value) {
    throw std::invalid_argument("MetricTree: histogram '" + name +
                                "' re-registered with different geometry");
  }
  return HistogramHandle{slot.get()};
}

std::size_t MetricTree::slot_count() const {
  std::scoped_lock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricTree::visit_counters(
    const std::function<void(const std::string&, std::uint64_t)>& fn) const {
  std::scoped_lock lock(mutex_);
  for (const auto& [name, slot] : counters_)
    fn(name, slot->value.load(std::memory_order_relaxed));
}

void MetricTree::visit_gauges(const std::function<void(const std::string&, double)>& fn) const {
  std::scoped_lock lock(mutex_);
  for (const auto& [name, slot] : gauges_) fn(name, slot->value.load(std::memory_order_relaxed));
}

void MetricTree::visit_histograms(
    const std::function<void(const std::string&, const LogLinearHistogram&)>& fn) const {
  std::scoped_lock lock(mutex_);
  for (const auto& [name, slot] : histograms_) fn(name, *slot);
}

}  // namespace moongen::telemetry
