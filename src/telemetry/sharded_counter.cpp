#include "telemetry/sharded_counter.hpp"

#include <algorithm>
#include <bit>
#include <thread>

namespace moongen::telemetry {

namespace {

std::size_t compute_shard_count() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return std::min<std::size_t>(64, std::bit_ceil(static_cast<std::size_t>(hw)));
}

}  // namespace

std::size_t shard_count() {
  static const std::size_t n = compute_shard_count();
  return n;
}

std::size_t shard_index_of_this_thread() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

ShardedCounter::ShardedCounter()
    : shards_(std::make_unique<Shard[]>(shard_count())), mask_(shard_count() - 1) {}

}  // namespace moongen::telemetry
