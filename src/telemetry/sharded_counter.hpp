// Contention-free counters for the TX/RX hot loops.
//
// MoonGen pins one task per core (paper Section 3.4); a shared counter
// serialized by a mutex would put a lock acquisition on every batch of the
// transmit loop. A ShardedCounter instead gives every thread its own
// cache-line-padded atomic shard: an increment is one relaxed fetch_add on
// a line no other core writes, and readers sum the shards on demand. The
// sum is exact once the writers have quiesced (e.g. after TaskSet::wait)
// and a monotonic lower bound while they are running.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

namespace moongen::telemetry {

// Fixed rather than std::hardware_destructive_interference_size: the value
// sits in a header shared across TUs and GCC warns that the std constant
// varies with tuning flags. 64 B lines cover x86 and mainstream ARM.
inline constexpr std::size_t kCacheLineSize = 64;

/// Index of the calling thread into shard arrays. Assigned once per thread
/// (round-robin over process lifetime) and shared by all sharded metrics,
/// so one task hits the same line in every counter it touches.
std::size_t shard_index_of_this_thread();

/// Number of shards used by all sharded metrics (power of two, >= hardware
/// concurrency, capped at 64).
std::size_t shard_count();

class ShardedCounter {
 public:
  ShardedCounter();
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  /// One relaxed add on the calling thread's own cache line.
  void add(std::uint64_t n = 1) {
    shards_[shard_index_of_this_thread() & mask_].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards. Exact when writers are quiescent.
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i <= mask_; ++i) sum += shards_[i].v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Zeroes all shards (not linearizable against concurrent writers).
  void reset() {
    for (std::size_t i = 0; i <= mask_; ++i) shards_[i].v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineSize) Shard {
    std::atomic<std::uint64_t> v{0};
  };

  std::unique_ptr<Shard[]> shards_;
  std::size_t mask_;  // shard count - 1
};

/// Last-writer-wins scalar (rates, fitted constants, configuration values).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

}  // namespace moongen::telemetry
