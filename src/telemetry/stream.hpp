// TelemetryStream: push-based export without perturbing the run.
//
// A week-long soak cannot wait for an end-of-run snapshot, and polling the
// registry from another thread would race the shards. Instead the stream
// is ticked at quiesced window boundaries (a ParallelRuntime window hook):
// every tick appends one registry snapshot — stamped with virtual time —
// to the output file in the chosen exporter format, followed by every RTT
// window the plane closed since the previous tick as one JSON line each
// (schema "moongen-rtt-window-v1").
//
// Everything goes to the file, never stdout: an instrumented run's stdout
// stays byte-identical to an uninstrumented one, which is what the CI
// streaming-soak gate asserts.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "telemetry/exporters.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/rtt_plane.hpp"

namespace moongen::telemetry {

struct TelemetryStreamConfig {
  std::string path;
  /// Tick period in picoseconds of virtual time (informational here; the
  /// owner registers the window hook with this period).
  std::uint64_t period_ps = 100'000'000'000ull;
  /// "json", "csv" or "prometheus" (see make_exporter).
  std::string format = "json";
};

class TelemetryStream {
 public:
  /// Opens `cfg.path` for writing; throws std::runtime_error if the file
  /// cannot be opened or std::invalid_argument on an unknown format.
  TelemetryStream(MetricRegistry& registry, TelemetryStreamConfig cfg);
  TelemetryStream(const TelemetryStream&) = delete;
  TelemetryStream& operator=(const TelemetryStream&) = delete;

  /// Also stream the plane's closed windows (one JSON line per window).
  void attach_rtt(const RttPlane* plane) { plane_ = plane; }

  /// Appends one snapshot (timestamped `now_ps`, converted to ns) plus any
  /// newly closed RTT windows, then flushes. Must run at a quiesced
  /// instant — wire it as a ParallelRuntime window hook.
  void tick(std::uint64_t now_ps);

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] std::uint64_t windows_streamed() const { return windows_streamed_; }
  [[nodiscard]] const TelemetryStreamConfig& config() const { return cfg_; }

 private:
  MetricRegistry& registry_;
  TelemetryStreamConfig cfg_;
  const RttPlane* plane_ = nullptr;
  std::ofstream out_;
  std::unique_ptr<Exporter> exporter_;
  std::uint64_t ticks_ = 0;
  std::uint64_t windows_streamed_ = 0;
};

}  // namespace moongen::telemetry
