#include "telemetry/registry.hpp"

#include <stdexcept>

namespace moongen::telemetry {

ShardedCounter& MetricRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<ShardedCounter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

ShardedHistogram& MetricRegistry::histogram(const std::string& name, HistogramConfig config) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<ShardedHistogram>(config);
  } else if (slot->config().sub_bucket_bits != config.sub_bucket_bits ||
             slot->config().max_value != config.max_value) {
    throw std::invalid_argument("MetricRegistry: histogram '" + name +
                                "' re-registered with different geometry");
  }
  return *slot;
}

Snapshot MetricRegistry::snapshot(std::uint64_t timestamp_ns) const {
  std::scoped_lock lock(mutex_);
  Snapshot snap;
  snap.timestamp_ns = timestamp_ns;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) snap.histograms.push_back({name, h->merged()});
  return snap;
}

std::size_t MetricRegistry::metric_count() const {
  std::scoped_lock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace moongen::telemetry
